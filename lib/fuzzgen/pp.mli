(** Mini-C pretty-printer with a re-parse guarantee.

    [program ast] renders an AST as concrete Mini-C syntax such that
    [Hypar_minic.Parser.parse_program (program ast)] yields [ast] again,
    modulo source positions — the property the generator's round-trip
    oracle and the shrinker's re-compilation both rely on.  Compound
    expressions are fully parenthesised, so no precedence reasoning is
    needed; statement sugar (compound assignment, [++]) is never
    emitted, only the canonical forms it desugars to.

    Precondition: expression-position [Num] literals are non-negative
    (the parser reads [-5] as [Unary (Neg, Num 5)]); the generator and
    shrinker only produce such ASTs.  Global initialisers may be
    negative. *)

val program : Hypar_minic.Ast.program -> string

val stmt : Hypar_minic.Ast.stmt -> string
(** One statement at zero indentation (diagnostics, shrinker traces). *)

val expr : Hypar_minic.Ast.expr -> string

val strip : Hypar_minic.Ast.program -> Hypar_minic.Ast.program
(** The same program with every source position zeroed. *)

val equal_program : Hypar_minic.Ast.program -> Hypar_minic.Ast.program -> bool
(** Structural equality modulo source positions. *)
