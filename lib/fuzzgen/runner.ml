type config = {
  seed : int;
  count : int;
  budget_ms : int option;
  jobs : int;
  fuel : int;
  gen : Gen.config;
  shrink : bool;
  shrink_rounds : int;
  fail_on : string option;
}

let default =
  {
    seed = 1;
    count = 100;
    budget_ms = None;
    jobs = 1;
    fuel = 2_000_000;
    gen = Gen.default_config;
    shrink = true;
    shrink_rounds = 200;
    fail_on = None;
  }

type failure = {
  index : int;
  case_seed : int;
  finding : Oracle.finding;
  source : string;
  reduced : string;
}

type report = {
  seed : int;
  executed : int;
  unsafe : bool;
  passes : int;
  crashes : int;
  per_oracle : (string * int) list;
  failures : failure list;
}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let oracle_for (config : config) src =
  let real () =
    Oracle.run ~fuel:config.fuel ~expect_clean:(not config.gen.unsafe) src
  in
  match config.fail_on with
  | Some sub when contains src sub -> (
    (* only well-formed programs take the injected failure, so shrink
       candidates that break the frontend change signature and are
       rejected — the reduced reproducer always compiles *)
    match Hypar_minic.Driver.compile ~name:"fuzz" src with
    | Ok _ ->
      Oracle.Fail
        {
          oracle = "injected";
          signature = "injected";
          detail = Printf.sprintf "source contains %S" sub;
        }
    | Error _ -> real ())
  | _ -> real ()

(* Striped parallel map (the [Hypar_explore.Pool] discipline): worker
   [d] owns indices [d, d + jobs, ...], each slot is written by exactly
   one domain, and merging by index erases scheduling order. *)
let parallel_map jobs f n =
  let results = Array.make n None in
  let worker stride start () =
    let rec go i =
      if i < n then begin
        results.(i) <- Some (f i);
        go (i + stride)
      end
    in
    go start
  in
  if jobs <= 1 || n <= 1 then worker 1 0 ()
  else begin
    let spawned =
      List.init (jobs - 1) (fun d -> Domain.spawn (worker jobs (d + 1)))
    in
    worker jobs 0 ();
    List.iter Domain.join spawned
  end;
  Array.map Option.get results

let judge (config : config) index =
  let case_seed = Rng.derive ~seed:config.seed index in
  let src = Gen.source ~config:config.gen case_seed in
  (case_seed, src, oracle_for config src)

let shrink_failure (config : config) finding case_seed src =
  if not config.shrink then src
  else
    let keep ast =
      match oracle_for config (Pp.program ast) with
      | Oracle.Fail f -> f.Oracle.signature = finding.Oracle.signature
      | Oracle.Pass -> false
    in
    let ast = Gen.program ~config:config.gen case_seed in
    (* the printed generation is what failed; shrink from its AST *)
    if not (keep ast) then src
    else Pp.program (Shrink.minimize ~max_rounds:config.shrink_rounds ~keep ast)

let run (config : config) =
  let n = max 0 config.count in
  let cases =
    match config.budget_ms with
    | None -> parallel_map config.jobs (judge config) n
    | Some budget ->
      (* budgeted campaigns run sequentially: the executed count is then
         a deterministic prefix 0..k of the counted campaign, merely cut
         at a time-dependent k *)
      let deadline = Unix.gettimeofday () +. (float_of_int budget /. 1000.) in
      let acc = ref [] in
      (try
         for i = 0 to n - 1 do
           if Unix.gettimeofday () > deadline then raise Exit;
           acc := judge config i :: !acc
         done
       with Exit -> ());
      Array.of_list (List.rev !acc)
  in
  let failures =
    Array.to_list cases
    |> List.mapi (fun index (case_seed, src, verdict) ->
           match verdict with
           | Oracle.Pass -> None
           | Oracle.Fail finding ->
             let reduced = shrink_failure config finding case_seed src in
             Some { index; case_seed; finding; source = src; reduced })
    |> List.filter_map Fun.id
  in
  let per_oracle =
    List.fold_left
      (fun acc f ->
        let key = f.finding.Oracle.oracle in
        let n = Option.value ~default:0 (List.assoc_opt key acc) in
        (key, n + 1) :: List.remove_assoc key acc)
      [] failures
    |> List.sort compare
  in
  let crashes =
    List.length
      (List.filter
         (fun f ->
           String.length f.finding.Oracle.oracle >= 6
           && String.sub f.finding.Oracle.oracle 0 6 = "crash/")
         failures)
  in
  {
    seed = config.seed;
    executed = Array.length cases;
    unsafe = config.gen.Gen.unsafe;
    passes = Array.length cases - List.length failures;
    crashes;
    per_oracle;
    failures;
  }

(* --- rendering ---------------------------------------------------------- *)

let to_text (r : report) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "hypar fuzz: seed %d, %d programs, %s grammar\n" r.seed r.executed
    (if r.unsafe then "unsafe" else "safe");
  add "passes: %d\n" r.passes;
  add "divergences: %d\n" (List.length r.failures);
  add "crashes: %d\n" r.crashes;
  List.iter (fun (oracle, n) -> add "  %s: %d\n" oracle n) r.per_oracle;
  List.iter
    (fun f ->
      add "case %d (seed %d): %s\n" f.index f.case_seed f.finding.Oracle.signature;
      add "  oracle: %s\n" f.finding.Oracle.oracle;
      add "  detail: %s\n" f.finding.Oracle.detail;
      add "  reduced reproducer:\n";
      let n = String.length f.reduced in
      let src =
        if n > 0 && f.reduced.[n - 1] = '\n' then String.sub f.reduced 0 (n - 1)
        else f.reduced
      in
      String.split_on_char '\n' src
      |> List.iter (fun line -> add "    %s\n" line))
    r.failures;
  Buffer.contents buf

let to_json (r : report) =
  let module J = Hypar_obs.Jsonv in
  let num n = J.Num (float_of_int n) in
  J.to_string
    (J.Obj
       [
         ("seed", num r.seed);
         ("executed", num r.executed);
         ("unsafe", J.Bool r.unsafe);
         ("passes", num r.passes);
         ("divergences", num (List.length r.failures));
         ("crashes", num r.crashes);
         ( "per_oracle",
           J.Obj (List.map (fun (o, n) -> (o, num n)) r.per_oracle) );
         ( "failures",
           J.Arr
             (List.map
                (fun f ->
                  J.Obj
                    [
                      ("index", num f.index);
                      ("seed", num f.case_seed);
                      ("oracle", J.Str f.finding.Oracle.oracle);
                      ("signature", J.Str f.finding.Oracle.signature);
                      ("detail", J.Str f.finding.Oracle.detail);
                      ("reduced", J.Str f.reduced);
                    ])
                r.failures) );
       ])
  ^ "\n"
