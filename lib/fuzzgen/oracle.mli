(** Differential oracle matrix for one Mini-C program.

    [run src] pushes the source through the configuration cross-product
    the repository already promises equivalence over, and flags the
    first disagreement:

    - {b frontends}: direct Mini-C lowering ([-O0]) versus the same CDFG
      emitted to bytecode ([compile-bc]) and re-ingested through the
      bytecode frontend's CFG recovery;
    - {b optimisation}: the raw lowering versus {!Hypar_ir.Passes.optimize}
      ([-O]), with every intermediate checked by {!Hypar_ir.Verify};
    - {b backends}: on each CDFG variant, the tree-walking interpreter
      versus the compiled executor, which must agree on the {e entire}
      {!Hypar_profiling.Interp.result} — frequencies, counters, edge
      profile, final arrays, return value, and error behaviour.

    Backend comparisons demand full structural equality.  Cross-variant
    comparisons (raw vs [-O], raw vs bytecode) apply only when the
    baseline run is clean, and then demand semantic equality: same
    return value and same final contents for every baseline array.

    A failure carries a stable [signature] — the failure class, free of
    program-specific values — which the shrinker preserves while
    minimising, and which corpus replay matches against. *)

type finding = {
  oracle : string;  (** which comparison flagged, e.g. ["backend/-O"] *)
  signature : string;  (** stable failure class, shrink-invariant *)
  detail : string;  (** human-readable specifics *)
}

type verdict = Pass | Fail of finding

val run : ?fuel:int -> ?expect_clean:bool -> string -> verdict
(** Evaluates the whole matrix on [src].

    [fuel] (default [2_000_000]) bounds the baseline interpretation;
    variant runs get four times as much so a borderline budget cannot
    masquerade as a cross-variant divergence.  With [expect_clean]
    (default [true]) a baseline runtime error or fuel exhaustion is
    itself a finding — the safe generator guarantees termination, so
    either means a generator or frontend bug.  Pass [expect_clean:false]
    for [unsafe]-mode programs, where a failing baseline is legitimate
    and the backend oracles (which compare error behaviour exactly)
    still apply. *)

val verdict_to_string : verdict -> string
(** ["pass"], or ["FAIL <oracle>: <signature> (<detail>)"]. *)
