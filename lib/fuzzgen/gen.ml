module Ast = Hypar_minic.Ast

type config = {
  max_stmts : int;
  max_depth : int;
  max_expr_depth : int;
  max_loop_bound : int;
  max_helpers : int;
  unsafe : bool;
}

let default_config =
  {
    max_stmts = 8;
    max_depth = 3;
    max_expr_depth = 3;
    max_loop_bound = 8;
    max_helpers = 2;
    unsafe = false;
  }

(* [List.init]'s application order is unspecified; the generator threads
   a stateful stream through element construction, so ordering must be
   pinned down explicitly. *)
let init_list n f =
  let rec go i =
    if i >= n then []
    else
      let x = f i in
      x :: go (i + 1)
  in
  go 0

(* --- AST construction helpers ------------------------------------------- *)

let pos = { Hypar_minic.Token.line = 0; col = 0 }
let mk_e desc = { Ast.desc; epos = pos }
let mk_s sdesc = { Ast.sdesc; spos = pos }
let num n = mk_e (Ast.Num n)
let ident x = mk_e (Ast.Ident x)
let binary op a b = mk_e (Ast.Binary (op, a, b))

(* An array in scope: [mask] is the expression that wraps an index into
   bounds ([size - 1] for globals, the mask parameter for helper array
   params); [writable] permits stores. *)
type arr = { aname : string; mask : Ast.expr; writable : bool }

type env = {
  rng : Rng.t;
  cfg : config;
  arrays : arr list;
  helpers : helper list;  (* callable from this function's body *)
  counter : int ref;  (* fresh-name source, per function *)
  vars : string list;  (* assignable scalars in scope *)
  prot : string list;  (* loop counters: readable, never assigned *)
}

and helper = { hname : string; hscalars : int; harray : bool }

let fresh env prefix =
  let n = !(env.counter) in
  incr env.counter;
  Printf.sprintf "%s%d" prefix n

let readable env = env.vars @ env.prot

(* In unsafe mode each guard is dropped with probability 1/16; guard
   sites are frequent enough that this still makes roughly half of all
   programs fail at runtime while the other half stay well-defined and
   exercise the full oracle matrix. *)
let drop_guard env = env.cfg.unsafe && Rng.int env.rng 16 = 0

let arith_ops = [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor |]

let cmp_ops =
  [| Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne; Ast.Land; Ast.Lor |]

let widths = [| 16; 16; 16; 8; 32 |]

(* --- expressions -------------------------------------------------------- *)

let rec gen_expr env depth =
  if depth <= 0 then gen_leaf env
  else
    match Rng.int env.rng 10 with
    | 0 | 1 -> gen_leaf env
    | 2 ->
      let op = Rng.choose env.rng [| Ast.Neg; Ast.Bitnot; Ast.Lognot |] in
      mk_e (Ast.Unary (op, gen_expr env (depth - 1)))
    | 3 ->
      let op = if Rng.bool env.rng then Ast.Div else Ast.Mod in
      let d = gen_expr env (depth - 1) in
      let d = if drop_guard env then d else binary Ast.Bor d (num 1) in
      binary op (gen_expr env (depth - 1)) d
    | 4 ->
      let op = if Rng.bool env.rng then Ast.Shl else Ast.Shr in
      binary op
        (gen_expr env (depth - 1))
        (binary Ast.Band (gen_expr env (depth - 1)) (num 15))
    | 5 ->
      binary
        (Rng.choose env.rng cmp_ops)
        (gen_expr env (depth - 1))
        (gen_expr env (depth - 1))
    | 6 ->
      mk_e
        (Ast.Ternary
           ( gen_expr env (depth - 1),
             gen_expr env (depth - 1),
             gen_expr env (depth - 1) ))
    | 7 -> gen_call env depth
    | _ ->
      binary
        (Rng.choose env.rng arith_ops)
        (gen_expr env (depth - 1))
        (gen_expr env (depth - 1))

and gen_leaf env =
  let scalars = readable env in
  match Rng.int env.rng 4 with
  | 0 -> num (Rng.int env.rng 256)
  | 1 when env.arrays <> [] -> gen_load env
  | _ when scalars <> [] -> ident (Rng.choose env.rng (Array.of_list scalars))
  | _ -> num (Rng.int env.rng 256)

and gen_index env a depth =
  let ix = gen_expr env depth in
  if drop_guard env then ix else binary Ast.Band ix a.mask

and gen_load env =
  let a = Rng.choose env.rng (Array.of_list env.arrays) in
  mk_e (Ast.Index (a.aname, gen_index env a 1))

and gen_call env depth =
  let builtin () =
    match Rng.int env.rng 3 with
    | 0 -> mk_e (Ast.Call ("abs", [ gen_expr env (depth - 1) ]))
    | 1 ->
      mk_e
        (Ast.Call ("min", [ gen_expr env (depth - 1); gen_expr env (depth - 1) ]))
    | _ ->
      mk_e
        (Ast.Call ("max", [ gen_expr env (depth - 1); gen_expr env (depth - 1) ]))
  in
  match env.helpers with
  | [] -> builtin ()
  | hs when Rng.bool env.rng ->
    let h = Rng.choose env.rng (Array.of_list hs) in
    let scalars =
      init_list h.hscalars (fun _ -> gen_expr env (min 1 (depth - 1)))
    in
    if h.harray then (
      (* array helpers take (array, mask, scalars...); the mask argument
         keeps the callee's accesses in bounds for whichever array we
         pass, so pick one whose mask is a literal (a global). *)
      match
        List.filter (fun a -> match a.mask.Ast.desc with Ast.Num _ -> true | _ -> false) env.arrays
      with
      | [] -> builtin ()
      | globals ->
        let a = Rng.choose env.rng (Array.of_list globals) in
        mk_e (Ast.Call (h.hname, ident a.aname :: a.mask :: scalars)))
    else mk_e (Ast.Call (h.hname, scalars))
  | _ -> builtin ()

(* --- statements --------------------------------------------------------- *)

(* Bounded loops: the counter is fresh, starts at 0, strictly increases
   by 1 each iteration towards a static bound, and is placed in
   [env.prot] so no statement in the body can assign it. *)

let incr_stmt name = mk_s (Ast.Assign { name; value = binary Ast.Add (ident name) (num 1) })

let rec gen_stmt env depth : Ast.stmt * env =
  let stay = gen_stmt_simple env in
  if depth <= 0 then stay ()
  else
    match Rng.int env.rng 8 with
    | 0 ->
      let cond = gen_expr env env.cfg.max_expr_depth in
      let then_branch = gen_block env (depth - 1) in
      let else_branch =
        if Rng.bool env.rng then gen_block env (depth - 1) else []
      in
      (mk_s (Ast.If { cond; then_branch; else_branch }), env)
    | 1 ->
      let name = fresh env "i" in
      let bound = Rng.range env.rng 1 env.cfg.max_loop_bound in
      let body =
        gen_block { env with prot = name :: env.prot } (depth - 1)
      in
      ( mk_s
          (Ast.For
             {
               init =
                 Some (mk_s (Ast.Decl { name; width = 16; init = Some (num 0) }));
               cond = Some (binary Ast.Lt (ident name) (num bound));
               step = Some (incr_stmt name);
               body;
             }),
        env )
    | 2 ->
      let name = fresh env "w" in
      let bound = Rng.range env.rng 1 env.cfg.max_loop_bound in
      let decl = mk_s (Ast.Decl { name; width = 16; init = Some (num 0) }) in
      let body =
        gen_block { env with prot = name :: env.prot } (depth - 1)
        @ [ incr_stmt name ]
      in
      let loop =
        if Rng.bool env.rng then
          mk_s (Ast.While { cond = binary Ast.Lt (ident name) (num bound); body })
        else
          mk_s
            (Ast.Do_while { body; cond = binary Ast.Lt (ident name) (num bound) })
      in
      (mk_s (Ast.Block [ decl; loop ]), env)
    | _ -> stay ()

and gen_stmt_simple env () : Ast.stmt * env =
  let writable = List.filter (fun a -> a.writable) env.arrays in
  match Rng.int env.rng 4 with
  | 0 ->
    let name = fresh env "x" in
    let width = Rng.choose env.rng widths in
    let init =
      (* unsafe mode may leave a local uninitialised: reading it before
         any assignment is a runtime error both backends must share *)
      if drop_guard env then None else Some (gen_expr env env.cfg.max_expr_depth)
    in
    (mk_s (Ast.Decl { name; width; init }), { env with vars = name :: env.vars })
  | 1 when env.vars <> [] ->
    let name = Rng.choose env.rng (Array.of_list env.vars) in
    (mk_s (Ast.Assign { name; value = gen_expr env env.cfg.max_expr_depth }), env)
  | 2 when writable <> [] ->
    let a = Rng.choose env.rng (Array.of_list writable) in
    ( mk_s
        (Ast.Array_assign
           {
             arr = a.aname;
             index = gen_index env a 1;
             value = gen_expr env env.cfg.max_expr_depth;
           }),
      env )
  | _ ->
    ( mk_s (Ast.Expr_stmt (gen_call env env.cfg.max_expr_depth)),
      env )

and gen_block env depth =
  let n = Rng.range env.rng 1 3 in
  let rec go env k =
    if k = 0 then []
    else
      let st, env = gen_stmt env depth in
      st :: go env (k - 1)
  in
  go env n

(* --- globals and functions ---------------------------------------------- *)

let gen_globals rng =
  let n_arrays = Rng.range rng 1 3 in
  let arrays =
    init_list n_arrays (fun i ->
        let size = Rng.choose rng [| 4; 8; 16; 32 |] in
        (* the first array is always writable so every program has an
           observable output channel *)
        let is_const = i > 0 && Rng.int rng 4 = 0 in
        let ginit =
          if is_const || Rng.bool rng then
            Some (init_list size (fun _ -> Rng.range rng (-128) 127))
          else None
        in
        Ast.Global_array
          {
            gname = Printf.sprintf "g%d" i;
            size;
            ginit;
            is_const;
            gelem_width = Rng.choose rng widths;
          })
  in
  let n_scalars = Rng.int rng 3 in
  let scalars =
    init_list n_scalars (fun i ->
        Ast.Global_scalar
          {
            gname = Printf.sprintf "s%d" i;
            gwidth = Rng.choose rng widths;
            gvalue =
              (if Rng.bool rng then Some (Rng.range rng (-128) 127) else None);
          })
  in
  arrays @ scalars

let arr_of_global = function
  | Ast.Global_array { gname; size; is_const; _ } ->
    Some { aname = gname; mask = num (size - 1); writable = not is_const }
  | Ast.Global_scalar _ -> None

let scalar_of_global = function
  | Ast.Global_scalar { gname; _ } -> Some gname
  | Ast.Global_array _ -> None

(* Helpers are leaf value functions: a few scalar params (plus
   optionally an array param with its mask), straight-line simple
   statements, one trailing return.  They call only builtins, so the
   call graph is trivially acyclic and inlining stays cheap. *)
let gen_helper rng cfg index =
  let hname = Printf.sprintf "f%d" index in
  let hscalars = Rng.range rng 1 2 in
  let harray = Rng.int rng 3 = 0 in
  let params =
    (if harray then
       [
         Ast.Array_param { pname = "a"; pelem_width = 16 };
         Ast.Scalar_param { pname = "m"; pwidth = 16 };
       ]
     else [])
    @ init_list hscalars (fun i ->
          Ast.Scalar_param
            { pname = Printf.sprintf "p%d" i; pwidth = Rng.choose rng widths })
  in
  let arrays =
    if harray then [ { aname = "a"; mask = ident "m"; writable = false } ]
    else []
  in
  let env =
    {
      rng;
      cfg = { cfg with unsafe = false };
      arrays;
      helpers = [];
      counter = ref 0;
      vars = init_list hscalars (Printf.sprintf "p%d");
      prot = [];
    }
  in
  let rec straight env k =
    if k = 0 then ([], env)
    else
      let st, env = gen_stmt_simple env () in
      let rest, env = straight env (k - 1) in
      (st :: rest, env)
  in
  let body, env = straight env (Rng.range rng 1 3) in
  let ret = mk_s (Ast.Return (Some (gen_expr env cfg.max_expr_depth))) in
  ( { Ast.fname = hname; params; returns_value = true; body = body @ [ ret ]; fpos = pos },
    { hname; hscalars; harray } )

let gen_main rng cfg arrays scalars helpers =
  let env =
    {
      rng;
      cfg;
      arrays;
      helpers;
      counter = ref 0;
      vars = scalars;
      prot = [];
    }
  in
  let n = Rng.range rng (cfg.max_stmts / 2) cfg.max_stmts in
  let rec go env k =
    if k = 0 then ([], env)
    else
      let st, env = gen_stmt env cfg.max_depth in
      let rest, env = go env (k - 1) in
      (st :: rest, env)
  in
  let body, env = go env n in
  (* final store: a checksum of the scalar state into the first writable
     array, so divergence anywhere upstream reaches the observable
     arrays even if the generated statements were all dead *)
  let sink =
    match List.filter (fun a -> a.writable) arrays with
    | [] -> []
    | a :: _ ->
      let sum =
        List.fold_left
          (fun acc v -> binary Ast.Add acc (ident v))
          (num 1) (readable env)
      in
      [
        mk_s
          (Ast.Array_assign
             { arr = a.aname; index = gen_index env a 1; value = sum });
      ]
  in
  {
    Ast.fname = "main";
    params = [];
    returns_value = false;
    body = body @ sink;
    fpos = pos;
  }

let program ?(config = default_config) seed =
  let rng = Rng.create seed in
  let globals = gen_globals rng in
  let n_helpers = Rng.int rng (config.max_helpers + 1) in
  let helper_funcs, helpers =
    List.split (init_list n_helpers (gen_helper rng config))
  in
  let arrays = List.filter_map arr_of_global globals in
  let scalars = List.filter_map scalar_of_global globals in
  let main = gen_main rng config arrays scalars helpers in
  { Ast.globals; funcs = helper_funcs @ [ main ] }

let source ?(config = default_config) seed = Pp.program (program ~config seed)
