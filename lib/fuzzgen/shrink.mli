(** Delta-debugging shrinker for failing Mini-C programs.

    {!candidates} proposes one-step reductions of an AST — drop a
    statement, global or helper; flatten a branch or loop to its body;
    replace an expression by a subexpression, [0] or [1]; halve a
    literal.  Every candidate is strictly smaller under the measure
    (AST node count, then literal magnitude sum), so greedy descent
    terminates without an explicit visited set.

    {!minimize} drives them to a fixpoint: it keeps the first candidate
    the predicate accepts and restarts from it, stopping when no
    candidate is accepted or the round budget runs out.  With [keep] =
    "the oracle still fails with the same signature", the result is a
    minimal reproducer of the original failure.  Invalid candidates
    (e.g. removing a declaration whose variable is still used) need no
    special handling: they change the failure signature to a frontend
    error, so [keep] rejects them.

    Also the shrink half of the QCheck integration in [test_fuzz]. *)

val candidates : Hypar_minic.Ast.program -> Hypar_minic.Ast.program list
(** One-step reductions, coarsest first (whole-statement and
    whole-declaration removals before expression simplifications). *)

val minimize :
  ?max_rounds:int ->
  keep:(Hypar_minic.Ast.program -> bool) ->
  Hypar_minic.Ast.program ->
  Hypar_minic.Ast.program
(** Greedy fixpoint of [candidates] under [keep]; the input itself is
    assumed to satisfy [keep].  [max_rounds] (default [1000]) bounds the
    number of accepted reductions. *)
