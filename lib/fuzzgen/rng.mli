(** Deterministic pseudo-random stream for the fuzzing subsystem.

    A SplitMix64 generator: the same seed always yields the same stream,
    on every platform and for every [--jobs] value — determinism of the
    whole fuzzer reduces to determinism of this module.  Unlike
    [Random.State] there is no global state and no self-init: every
    stream is rooted in an explicit integer seed, and {!derive} maps a
    (campaign seed, program index) pair to an independent per-program
    seed so that workers can generate program [i] without having
    consumed programs [0..i-1]. *)

type t

val create : int -> t
(** A fresh stream rooted at [seed].  Equal seeds yield equal streams. *)

val int : t -> int -> int
(** [int t bound] draws a uniform value in [\[0, bound)].  [bound <= 1]
    yields [0] without consuming the stream's state irregularly. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws from the inclusive interval [\[lo, hi\]]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val split : t -> t
(** A statistically independent child stream; the parent advances by one
    draw.  Used to give nested generator scopes their own streams. *)

val derive : seed:int -> int -> int
(** [derive ~seed index] is the per-program seed of program [index] in a
    campaign rooted at [seed]: a non-negative value that depends on both
    arguments but not on any generator state, so any worker can compute
    it for any index. *)
