module Ast = Hypar_minic.Ast

(* Every compound expression is parenthesised, so the printed form
   re-parses to the same tree regardless of operator precedence; leaves
   (literals, identifiers, loads, calls) print bare because the parser
   treats them as primaries. *)
let rec expr (e : Ast.expr) =
  match e.desc with
  | Ast.Num n -> string_of_int n
  | Ast.Ident s -> s
  | Ast.Index (arr, ix) -> Printf.sprintf "%s[%s]" arr (expr ix)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Ast.Unary (op, a) ->
    let s = match op with Ast.Neg -> "-" | Ast.Lognot -> "!" | Ast.Bitnot -> "~" in
    Printf.sprintf "(%s%s)" s (expr a)
  | Ast.Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (Ast.binop_name op) (expr b)
  | Ast.Ternary (c, t, f) ->
    Printf.sprintf "(%s ? %s : %s)" (expr c) (expr t) (expr f)

let width_kw = function 8 -> "int8" | 32 -> "int32" | _ -> "int"

(* Simple statements (usable as a [for] init/step) print without the
   trailing semicolon; [stmt_lines] adds it for statement position. *)
let simple (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl { name; width; init } -> (
    match init with
    | None -> Printf.sprintf "%s %s" (width_kw width) name
    | Some e -> Printf.sprintf "%s %s = %s" (width_kw width) name (expr e))
  | Ast.Assign { name; value } -> Printf.sprintf "%s = %s" name (expr value)
  | Ast.Array_assign { arr; index; value } ->
    Printf.sprintf "%s[%s] = %s" arr (expr index) (expr value)
  | Ast.Expr_stmt e -> expr e
  | _ -> invalid_arg "Pp.simple: not a simple statement"

let rec stmt_lines buf indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  let add fmt = Printf.ksprintf (fun line -> Buffer.add_string buf (pad ^ line ^ "\n")) fmt in
  match s.sdesc with
  | Ast.Decl _ | Ast.Assign _ | Ast.Array_assign _ | Ast.Expr_stmt _ ->
    add "%s;" (simple s)
  | Ast.If { cond; then_branch; else_branch } ->
    add "if (%s) {" (expr cond);
    List.iter (stmt_lines buf (indent + 2)) then_branch;
    if else_branch = [] then add "}"
    else begin
      add "} else {";
      List.iter (stmt_lines buf (indent + 2)) else_branch;
      add "}"
    end
  | Ast.While { cond; body } ->
    add "while (%s) {" (expr cond);
    List.iter (stmt_lines buf (indent + 2)) body;
    add "}"
  | Ast.Do_while { body; cond } ->
    add "do {";
    List.iter (stmt_lines buf (indent + 2)) body;
    add "} while (%s);" (expr cond)
  | Ast.For { init; cond; step; body } ->
    add "for (%s; %s; %s) {"
      (match init with None -> "" | Some s0 -> simple s0)
      (match cond with None -> "" | Some e -> expr e)
      (match step with None -> "" | Some s0 -> simple s0);
    List.iter (stmt_lines buf (indent + 2)) body;
    add "}"
  | Ast.Return None -> add "return;"
  | Ast.Return (Some e) -> add "return %s;" (expr e)
  | Ast.Block body ->
    add "{";
    List.iter (stmt_lines buf (indent + 2)) body;
    add "}"

let stmt s =
  let buf = Buffer.create 64 in
  stmt_lines buf 0 s;
  Buffer.contents buf

let param = function
  | Ast.Scalar_param { pname; pwidth } ->
    Printf.sprintf "%s %s" (width_kw pwidth) pname
  | Ast.Array_param { pname; pelem_width } ->
    Printf.sprintf "%s %s[]" (width_kw pelem_width) pname

let global buf (g : Ast.global) =
  match g with
  | Ast.Global_array { gname; size; ginit; is_const; gelem_width } ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s[%d]%s;\n"
         (if is_const then "const " else "")
         (width_kw gelem_width) gname size
         (match ginit with
         | None -> ""
         | Some init ->
           Printf.sprintf " = { %s }"
             (String.concat ", " (List.map string_of_int init))))
  | Ast.Global_scalar { gname; gwidth; gvalue } ->
    Buffer.add_string buf
      (Printf.sprintf "%s %s%s;\n" (width_kw gwidth) gname
         (match gvalue with
         | None -> ""
         | Some v -> Printf.sprintf " = %d" v))

let func buf (f : Ast.func) =
  Buffer.add_string buf
    (Printf.sprintf "%s %s(%s) {\n"
       (if f.returns_value then "int" else "void")
       f.fname
       (String.concat ", " (List.map param f.params)));
  List.iter (stmt_lines buf 2) f.body;
  Buffer.add_string buf "}\n"

let program (p : Ast.program) =
  let buf = Buffer.create 512 in
  List.iter (global buf) p.globals;
  if p.globals <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      func buf f)
    p.funcs;
  Buffer.contents buf

(* --- position-erased structural equality -------------------------------- *)

let zero = { Hypar_minic.Token.line = 0; col = 0 }

let rec strip_expr (e : Ast.expr) =
  let desc =
    match e.desc with
    | (Ast.Num _ | Ast.Ident _) as d -> d
    | Ast.Index (a, ix) -> Ast.Index (a, strip_expr ix)
    | Ast.Call (f, args) -> Ast.Call (f, List.map strip_expr args)
    | Ast.Unary (op, a) -> Ast.Unary (op, strip_expr a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, strip_expr a, strip_expr b)
    | Ast.Ternary (a, b, c) ->
      Ast.Ternary (strip_expr a, strip_expr b, strip_expr c)
  in
  { Ast.desc; epos = zero }

let rec strip_stmt (s : Ast.stmt) =
  let sdesc =
    match s.sdesc with
    | Ast.Decl { name; width; init } ->
      Ast.Decl { name; width; init = Option.map strip_expr init }
    | Ast.Assign { name; value } -> Ast.Assign { name; value = strip_expr value }
    | Ast.Array_assign { arr; index; value } ->
      Ast.Array_assign
        { arr; index = strip_expr index; value = strip_expr value }
    | Ast.If { cond; then_branch; else_branch } ->
      Ast.If
        {
          cond = strip_expr cond;
          then_branch = List.map strip_stmt then_branch;
          else_branch = List.map strip_stmt else_branch;
        }
    | Ast.While { cond; body } ->
      Ast.While { cond = strip_expr cond; body = List.map strip_stmt body }
    | Ast.Do_while { body; cond } ->
      Ast.Do_while { body = List.map strip_stmt body; cond = strip_expr cond }
    | Ast.For { init; cond; step; body } ->
      Ast.For
        {
          init = Option.map strip_stmt init;
          cond = Option.map strip_expr cond;
          step = Option.map strip_stmt step;
          body = List.map strip_stmt body;
        }
    | Ast.Return v -> Ast.Return (Option.map strip_expr v)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (strip_expr e)
    | Ast.Block body -> Ast.Block (List.map strip_stmt body)
  in
  { Ast.sdesc; spos = zero }

let strip (p : Ast.program) =
  {
    Ast.globals = p.globals;
    funcs =
      List.map
        (fun (f : Ast.func) ->
          { f with Ast.body = List.map strip_stmt f.body; fpos = zero })
        p.funcs;
  }

let equal_program a b = strip a = strip b
