(** Seeded generator of typed, well-formed Mini-C programs.

    Every program produced in the default (safe) configuration
    typechecks, compiles through both frontends, and terminates within a
    modest fuel budget by construction:

    - loops use fresh counters that the body cannot assign, with static
      bounds of at most {!config.max_loop_bound} iterations and nesting
      limited by {!config.max_depth};
    - array indices are masked with [size - 1] (sizes are powers of
      two), divisors are forced odd with [| 1], and shift amounts are
      masked with [15], so no runtime error is reachable;
    - every local is declared with an initialiser, and global scalars
      are always defined before use by the frontend's entry-block
      initialisation.

    With [unsafe = true] those three guards are each dropped with some
    probability, deliberately producing programs that may divide by
    zero, index out of bounds, or overrun the fuel budget — useful for
    differential testing of error behaviour between backends, where the
    oracle only demands that both interpreters fail identically.

    Determinism: [program ~seed] is a pure function of [config] and
    [seed]. *)

type config = {
  max_stmts : int;  (** statement budget for [main]'s top-level body *)
  max_depth : int;  (** maximum loop/branch nesting depth *)
  max_expr_depth : int;  (** maximum expression tree depth *)
  max_loop_bound : int;  (** static iteration bound per loop *)
  max_helpers : int;  (** number of callable helper functions *)
  unsafe : bool;  (** drop safety guards with some probability *)
}

val default_config : config
(** [{max_stmts = 8; max_depth = 3; max_expr_depth = 3; max_loop_bound = 8;
     max_helpers = 2; unsafe = false}] *)

val program : ?config:config -> int -> Hypar_minic.Ast.program
(** [program seed] is the program of [seed] under [config]; equal
    inputs yield equal ASTs. *)

val source : ?config:config -> int -> string
(** [source seed] is [Pp.program (program seed)]: concrete Mini-C text
    that re-parses to the same AST. *)
