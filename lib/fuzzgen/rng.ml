(* SplitMix64 (Steele, Lea & Flood): a tiny, fast, well-mixed generator
   whose output is a pure function of its 64-bit state.  The whole
   fuzzing subsystem keys off this stream, so portability matters more
   than period: Int64 arithmetic behaves identically on every platform,
   unlike [Random] whose implementation is version-dependent. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

(* top 62 bits, always non-negative as a native int *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)
let int t bound = if bound <= 1 then 0 else bits t mod bound
let range t lo hi = lo + int t (hi - lo + 1)
let bool t = Int64.logand (next t) 1L = 1L
let choose t arr = arr.(int t (Array.length arr))
let split t = { state = next t }

let derive ~seed index =
  let t =
    {
      state =
        Int64.logxor
          (Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL)
          (Int64.mul (Int64.of_int (index + 1)) golden);
    }
  in
  bits t
