(** Replayable crash corpus: minimal reproducers as [.mc] files.

    Each entry is a plain Mini-C source file prefixed by a comment
    header the Mini-C lexer skips, so every entry is simultaneously a
    compilable program and a self-describing record:

    {v
    // hypar-fuzz reproducer
    // seed: 7731
    // signature: optimize:semantics
    // note: found by hypar fuzz; fixed in the same change
    <source>
    v}

    [signature] records the oracle failure class the program {e used to}
    reproduce; after the underlying bug is fixed the entry must pass the
    whole oracle matrix, which is exactly what {!replay} asserts — the
    corpus is a regression suite, replayed by [dune runtest] and CI, not
    a museum of open failures. *)

type entry = {
  name : string;  (** file stem, e.g. ["opt-licm-div"] *)
  seed : int option;  (** generator seed that produced the original *)
  signature : string;  (** oracle signature before the fix *)
  note : string option;
  source : string;  (** Mini-C text, header excluded *)
}

val to_string : entry -> string
(** The on-disk form: header comments followed by the source. *)

val parse : name:string -> string -> (entry, string) result
(** Inverse of {!to_string}; tolerates missing [seed]/[note] lines but
    requires the [// hypar-fuzz reproducer] magic and a [signature]. *)

val save : dir:string -> entry -> string
(** Writes [<dir>/<name>.mc] (creating [dir] if needed) and returns the
    path. *)

val load_file : string -> (entry, string) result

val load_dir : string -> (entry list, string) result
(** All [.mc] entries under a directory, sorted by name; [Error] if the
    directory is unreadable or any entry is malformed. *)

val replay : ?fuel:int -> entry -> Oracle.verdict
(** Runs the full oracle matrix on the entry's source.  Baseline
    runtime errors are tolerated ([expect_clean:false]): entries may
    deliberately be unsafe programs whose point is error-behaviour
    equality across backends. *)
