(** Campaign driver: generate, judge, shrink, report.

    A campaign is a pure function of its {!config}: case [i] is judged
    on the program of seed [Rng.derive ~seed i], so any worker can
    evaluate any case without consuming the cases before it, and the
    merged report is byte-identical for every [--jobs] value.  Wall
    clock never enters the report; [budget_ms] only decides {e how many}
    cases run (and forces sequential evaluation), so a budgeted
    campaign's prefix matches the corresponding counted one.

    Failing cases are re-generated, shrunk sequentially (in case order)
    with {!Shrink.minimize} preserving the oracle signature, and
    reported with both the original seed and the reduced reproducer. *)

type config = {
  seed : int;  (** campaign seed *)
  count : int;  (** cases to run (upper bound under [budget_ms]) *)
  budget_ms : int option;  (** stop after this much wall time *)
  jobs : int;  (** worker domains; never affects report bytes *)
  fuel : int;  (** baseline interpretation budget per case *)
  gen : Gen.config;
  shrink : bool;
  shrink_rounds : int;  (** accepted-reduction budget per failure *)
  fail_on : string option;
      (** testing hook: any program whose source contains this substring
          and still compiles is flagged with the synthetic [injected]
          oracle — a deterministic failure for exercising the shrinking
          and reporting pipeline end to end *)
}

val default : config
(** seed 1, count 100, no budget, 1 job, fuel 2_000_000,
    {!Gen.default_config}, shrinking on with 200 rounds. *)

type failure = {
  index : int;
  case_seed : int;
  finding : Oracle.finding;
  source : string;  (** the program as generated *)
  reduced : string;  (** minimal reproducer (equals [source] if shrinking
                         is off or no reduction survived) *)
}

type report = {
  seed : int;
  executed : int;
  unsafe : bool;
  passes : int;
  crashes : int;  (** failures whose oracle is a [crash/*] stage *)
  per_oracle : (string * int) list;
      (** failure counts keyed by oracle name, sorted; a case counts
          against the first oracle that flagged it *)
  failures : failure list;
}

val oracle_for : config -> string -> Oracle.verdict
(** The judged verdict for one source under this configuration —
    {!Oracle.run} composed with the [fail_on] injection.  Exposed so
    the corpus-persistence path and tests judge exactly as the campaign
    does. *)

val run : config -> report

val to_text : report -> string
val to_json : report -> string
(** Deterministic renderings: equal reports yield equal bytes. *)
