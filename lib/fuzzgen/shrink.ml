module Ast = Hypar_minic.Ast

let pos = { Hypar_minic.Token.line = 0; col = 0 }
let mk_e desc = { Ast.desc; epos = pos }
let mk_s sdesc = { Ast.sdesc; spos = pos }

(* Variants of a list where exactly one element is removed or replaced
   by one of its own variants; removals are proposed before in-place
   replacements so coarse reductions are tried first. *)
let list_variants elem_variants xs =
  let rec removals prefix = function
    | [] -> []
    | x :: rest -> List.rev_append prefix rest :: removals (x :: prefix) rest
  in
  let rec replacements prefix = function
    | [] -> []
    | x :: rest ->
      List.map
        (fun x' -> List.rev_append prefix (x' :: rest))
        (elem_variants x)
      @ replacements (x :: prefix) rest
  in
  removals [] xs @ replacements [] xs

let option_variants elem_variants = function
  | None -> []
  | Some x -> List.map (fun x' -> Some x') (elem_variants x)

(* As {!list_variants} but replacement-only: used where list length is
   fixed (call arguments, the function list). *)
let list_variants_no_removal elem_variants xs =
  let rec go prefix = function
    | [] -> []
    | x :: rest ->
      List.map (fun x' -> List.rev_append prefix (x' :: rest)) (elem_variants x)
      @ go (x :: prefix) rest
  in
  go [] xs

(* --- expressions -------------------------------------------------------- *)

let rec expr_variants (e : Ast.expr) : Ast.expr list =
  let sub =
    (* direct children: always strictly smaller *)
    match e.desc with
    | Ast.Num _ | Ast.Ident _ -> []
    | Ast.Index (_, ix) -> [ ix ]
    | Ast.Call (_, args) -> args
    | Ast.Unary (_, a) -> [ a ]
    | Ast.Binary (_, a, b) -> [ a; b ]
    | Ast.Ternary (a, b, c) -> [ a; b; c ]
  in
  let consts =
    match e.desc with
    | Ast.Num n ->
      (* strictly decreasing literal magnitude keeps descent finite *)
      List.filter_map
        (fun v -> if abs v < abs n then Some (mk_e (Ast.Num v)) else None)
        [ 0; 1; n / 2 ]
    | _ -> [ mk_e (Ast.Num 0); mk_e (Ast.Num 1) ]
  in
  let nested =
    match e.desc with
    | Ast.Num _ | Ast.Ident _ -> []
    | Ast.Index (a, ix) ->
      List.map (fun ix' -> mk_e (Ast.Index (a, ix'))) (expr_variants ix)
    | Ast.Call (f, args) ->
      List.map
        (fun args' -> mk_e (Ast.Call (f, args')))
        (list_variants_no_removal expr_variants args)
    | Ast.Unary (op, a) ->
      List.map (fun a' -> mk_e (Ast.Unary (op, a'))) (expr_variants a)
    | Ast.Binary (op, a, b) ->
      List.map (fun a' -> mk_e (Ast.Binary (op, a', b))) (expr_variants a)
      @ List.map (fun b' -> mk_e (Ast.Binary (op, a, b'))) (expr_variants b)
    | Ast.Ternary (a, b, c) ->
      List.map (fun a' -> mk_e (Ast.Ternary (a', b, c))) (expr_variants a)
      @ List.map (fun b' -> mk_e (Ast.Ternary (a, b', c))) (expr_variants b)
      @ List.map (fun c' -> mk_e (Ast.Ternary (a, b, c'))) (expr_variants c)
  in
  sub @ consts @ nested

(* --- statements --------------------------------------------------------- *)

let rec stmt_variants (s : Ast.stmt) : Ast.stmt list =
  let structural =
    (* flatten control structure to its body; [Block] keeps the result a
       single statement and scopes any declarations the body relies on *)
    match s.sdesc with
    | Ast.If { then_branch; else_branch; _ } ->
      [ mk_s (Ast.Block then_branch) ]
      @ (if else_branch = [] then [] else [ mk_s (Ast.Block else_branch) ])
    | Ast.While { body; _ } | Ast.Do_while { body; _ } ->
      [ mk_s (Ast.Block body) ]
    | Ast.For { init; body; _ } ->
      [ mk_s (Ast.Block ((match init with None -> [] | Some i -> [ i ]) @ body)) ]
    | Ast.Block [ inner ] -> [ inner ]
    | _ -> []
  in
  let nested =
    match s.sdesc with
    | Ast.Decl { name; width; init } ->
      List.map
        (fun init' -> mk_s (Ast.Decl { name; width; init = init' }))
        (option_variants expr_variants init)
    | Ast.Assign { name; value } ->
      List.map
        (fun value' -> mk_s (Ast.Assign { name; value = value' }))
        (expr_variants value)
    | Ast.Array_assign { arr; index; value } ->
      List.map
        (fun index' -> mk_s (Ast.Array_assign { arr; index = index'; value }))
        (expr_variants index)
      @ List.map
          (fun value' -> mk_s (Ast.Array_assign { arr; index; value = value' }))
          (expr_variants value)
    | Ast.If { cond; then_branch; else_branch } ->
      List.map
        (fun cond' -> mk_s (Ast.If { cond = cond'; then_branch; else_branch }))
        (expr_variants cond)
      @ List.map
          (fun tb -> mk_s (Ast.If { cond; then_branch = tb; else_branch }))
          (list_variants stmt_variants then_branch)
      @ List.map
          (fun eb -> mk_s (Ast.If { cond; then_branch; else_branch = eb }))
          (list_variants stmt_variants else_branch)
    | Ast.While { cond; body } ->
      List.map
        (fun cond' -> mk_s (Ast.While { cond = cond'; body }))
        (expr_variants cond)
      @ List.map
          (fun body' -> mk_s (Ast.While { cond; body = body' }))
          (list_variants stmt_variants body)
    | Ast.Do_while { body; cond } ->
      List.map
        (fun cond' -> mk_s (Ast.Do_while { body; cond = cond' }))
        (expr_variants cond)
      @ List.map
          (fun body' -> mk_s (Ast.Do_while { body = body'; cond }))
          (list_variants stmt_variants body)
    | Ast.For { init; cond; step; body } ->
      List.map
        (fun cond' -> mk_s (Ast.For { init; cond = cond'; step; body }))
        (option_variants expr_variants cond)
      @ List.map
          (fun body' -> mk_s (Ast.For { init; cond; step; body = body' }))
          (list_variants stmt_variants body)
    | Ast.Return v ->
      List.map
        (fun v' -> mk_s (Ast.Return v'))
        (option_variants expr_variants v)
    | Ast.Expr_stmt e ->
      List.map (fun e' -> mk_s (Ast.Expr_stmt e')) (expr_variants e)
    | Ast.Block body ->
      List.map
        (fun body' -> mk_s (Ast.Block body'))
        (list_variants stmt_variants body)
  in
  structural @ nested

(* --- programs ----------------------------------------------------------- *)

let global_variants (g : Ast.global) =
  match g with
  | Ast.Global_array ({ ginit = Some _; _ } as r) ->
    [ Ast.Global_array { r with ginit = None } ]
  | Ast.Global_array { ginit = None; _ } -> []
  | Ast.Global_scalar ({ gvalue = Some _; _ } as r) ->
    [ Ast.Global_scalar { r with gvalue = None } ]
  | Ast.Global_scalar { gvalue = None; _ } -> []

let func_variants (f : Ast.func) =
  List.map
    (fun body' -> { f with Ast.body = body' })
    (list_variants stmt_variants f.Ast.body)

let candidates (p : Ast.program) : Ast.program list =
  (* helper/global removal first (coarsest), then per-function body
     reductions; [main] must survive, so removals keep the last
     function (the generator always places [main] last, and candidates
     that drop a still-needed definition are rejected by [keep]) *)
  let drop_funcs =
    match List.rev p.funcs with
    | [] | [ _ ] -> []
    | main :: helpers_rev ->
      let helpers = List.rev helpers_rev in
      List.map
        (fun hs -> { p with Ast.funcs = hs @ [ main ] })
        (list_variants (fun _ -> []) helpers)
  in
  let drop_globals =
    List.map
      (fun gs -> { p with Ast.globals = gs })
      (list_variants global_variants p.globals)
  in
  let bodies =
    List.map
      (fun fs -> { p with Ast.funcs = fs })
      (list_variants_no_removal func_variants p.funcs)
  in
  drop_funcs @ drop_globals @ bodies

let minimize ?(max_rounds = 1000) ~keep prog =
  let rec go prog rounds =
    if rounds <= 0 then prog
    else
      match List.find_opt keep (candidates prog) with
      | Some smaller -> go smaller (rounds - 1)
      | None -> prog
  in
  go prog max_rounds
