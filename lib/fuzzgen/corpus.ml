type entry = {
  name : string;
  seed : int option;
  signature : string;
  note : string option;
  source : string;
}

let magic = "// hypar-fuzz reproducer"

let to_string e =
  let buf = Buffer.create (String.length e.source + 128) in
  Buffer.add_string buf (magic ^ "\n");
  (match e.seed with
  | Some s -> Buffer.add_string buf (Printf.sprintf "// seed: %d\n" s)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "// signature: %s\n" e.signature);
  (match e.note with
  | Some n -> Buffer.add_string buf (Printf.sprintf "// note: %s\n" n)
  | None -> ());
  Buffer.add_string buf e.source;
  Buffer.contents buf

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix)
               (String.length s - String.length prefix))
  else None

let parse ~name text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.trim first = magic ->
    let seed = ref None and signature = ref None and note = ref None in
    let rec header = function
      | line :: rest -> (
        match strip_prefix ~prefix:"// seed: " line with
        | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n ->
            seed := Some n;
            header rest
          | None -> Error (Printf.sprintf "%s: malformed seed line" name))
        | None -> (
          match strip_prefix ~prefix:"// signature: " line with
          | Some v ->
            signature := Some (String.trim v);
            header rest
          | None -> (
            match strip_prefix ~prefix:"// note: " line with
            | Some v ->
              note := Some (String.trim v);
              header rest
            | None -> Ok (line :: rest))))
      | [] -> Ok []
    in
    Result.bind (header rest) (fun body ->
        match !signature with
        | None -> Error (Printf.sprintf "%s: missing '// signature:' line" name)
        | Some signature ->
          Ok
            {
              name;
              seed = !seed;
              signature;
              note = !note;
              source = String.concat "\n" body;
            })
  | _ -> Error (Printf.sprintf "%s: missing %S header" name magic)

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.name ^ ".mc") in
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_file path =
  match read_file path with
  | text -> parse ~name:Filename.(remove_extension (basename path)) text
  | exception Sys_error m -> Error m

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error m -> Error m
  | names ->
    let names =
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".mc")
      |> List.sort compare
    in
    List.fold_left
      (fun acc n ->
        Result.bind acc (fun entries ->
            Result.map
              (fun e -> e :: entries)
              (load_file (Filename.concat dir n))))
      (Ok []) names
    |> Result.map List.rev

let replay ?fuel e = Oracle.run ?fuel ~expect_clean:false e.source
