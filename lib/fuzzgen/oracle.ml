module Interp = Hypar_profiling.Interp

type finding = { oracle : string; signature : string; detail : string }
type verdict = Pass | Fail of finding

exception Found of finding

let fail oracle signature detail = raise (Found { oracle; signature; detail })

(* Everything a run can do, with errors reified so outcomes can be
   compared across backends and variants. *)
type outcome =
  | Value of Interp.result
  | Runtime of string
  | Exhausted of int

let describe = function
  | Value _ -> "a clean run"
  | Runtime m -> Printf.sprintf "runtime error %S" m
  | Exhausted steps -> Printf.sprintf "fuel exhaustion after %d steps" steps

(* Each pipeline stage runs under a label so a crash or a Verify failure
   is attributed to the stage that raised it rather than to the oracle
   as a whole. *)
let stage name f =
  match f () with
  | v -> v
  | exception Found f -> raise (Found f)
  | exception Hypar_ir.Verify.Failed { context; violations } ->
    fail ("verify/" ^ name)
      ("verify/" ^ name)
      (Printf.sprintf "%s: %s" context (Hypar_ir.Verify.report violations))
  | exception e ->
    fail ("crash/" ^ name)
      ("crash:" ^ Printexc.to_string e)
      (Printexc.to_string e)

let outcome backend fuel cdfg =
  let run =
    match backend with
    | `Tree -> Interp.run ?fuel:None ~max_steps:fuel
    | `Compiled -> Hypar_profiling.Exec.run ?fuel:None ~max_steps:fuel
  in
  match run cdfg with
  | r -> Value r
  | exception Interp.Runtime_error m -> Runtime m
  | exception Interp.Fuel_exhausted { steps } -> Exhausted steps

(* Which result field disagrees first, for the human-readable detail. *)
let field_diff (a : Interp.result) (b : Interp.result) =
  if a.return_value <> b.return_value then "return_value differs"
  else if a.arrays <> b.arrays then "final array contents differ"
  else if a.exec_freq <> b.exec_freq then "exec_freq differs"
  else if a.mem_reads <> b.mem_reads then "mem_reads differs"
  else if a.mem_writes <> b.mem_writes then "mem_writes differs"
  else if a.edge_freq <> b.edge_freq then "edge_freq differs"
  else "instrs/blocks counters differ"

(* Tree walker vs compiled executor on one CDFG: the contract is full
   structural equality of the result, including error behaviour. *)
let backend_oracle variant fuel cdfg =
  let name = "backend/" ^ variant in
  let tree = stage name (fun () -> outcome `Tree fuel cdfg) in
  let compiled = stage name (fun () -> outcome `Compiled fuel cdfg) in
  (match (tree, compiled) with
  | Value a, Value b ->
    if a <> b then fail name (name ^ ":result") (field_diff a b)
  | a, b ->
    if a <> b then
      fail name
        (name ^ ":outcome")
        (Printf.sprintf "tree produced %s, compiled produced %s" (describe a)
           (describe b)));
  tree

(* Cross-variant comparison on a clean baseline: same return value and
   same final contents for every baseline array (variants may add
   internal state, but must preserve everything the baseline exposes). *)
let semantic_oracle name base variant =
  match variant with
  | Runtime _ | Exhausted _ ->
    fail name
      (name ^ ":outcome")
      (Printf.sprintf "clean baseline but the %s variant produced %s" name
         (describe variant))
  | Value v ->
    let b =
      match base with Value b -> b | _ -> assert false (* caller checked *)
    in
    if b.Interp.return_value <> v.Interp.return_value then
      fail name
        (name ^ ":semantics")
        (Printf.sprintf "return value diverged: %s vs %s"
           (match b.return_value with Some n -> string_of_int n | None -> "none")
           (match v.return_value with Some n -> string_of_int n | None -> "none"));
    List.iter
      (fun (aname, contents) ->
        match List.assoc_opt aname v.Interp.arrays with
        | None ->
          fail name
            (name ^ ":semantics")
            (Printf.sprintf "array %S missing from the %s variant" aname name)
        | Some c ->
          if c <> contents then
            fail name
              (name ^ ":semantics")
              (Printf.sprintf "array %S diverged" aname))
      b.Interp.arrays

let run ?(fuel = 2_000_000) ?(expect_clean = true) src =
  try
    let raw =
      stage "minic" (fun () ->
          match
            Hypar_minic.Driver.compile ~name:"fuzz" ~simplify:false
              ~verify_ir:true src
          with
          | Ok cdfg -> cdfg
          | Error e ->
            fail "frontend/minic" "frontend:minic"
              (Hypar_minic.Driver.string_of_error e))
    in
    let opt =
      stage "optimize" (fun () -> Hypar_ir.Passes.optimize ~verify:true raw)
    in
    let bc =
      stage "bytecode" (fun () ->
          let hbc = Hypar_bytecode.Emit.to_string raw in
          match
            Hypar_bytecode.Driver.compile ~name:"fuzz" ~verify_ir:true hbc
          with
          | Ok cdfg -> cdfg
          | Error e ->
            fail "frontend/bytecode" "frontend:bytecode"
              (Hypar_bytecode.Driver.string_of_error e))
    in
    let base = backend_oracle "-O0" fuel raw in
    (* variants get slack so a borderline baseline budget cannot read as
       a cross-variant divergence *)
    let o_opt = backend_oracle "-O" (fuel * 4) opt in
    let o_bc = backend_oracle "bytecode" (fuel * 4) bc in
    (match base with
    | Value _ ->
      semantic_oracle "optimize" base o_opt;
      semantic_oracle "bytecode" base o_bc
    | Runtime m ->
      if expect_clean then fail "termination" "runtime-error" m
    | Exhausted steps ->
      if expect_clean then
        fail "termination" "fuel-exhausted"
          (Printf.sprintf "baseline ran out of fuel after %d steps" steps));
    Pass
  with Found f -> Fail f

let verdict_to_string = function
  | Pass -> "pass"
  | Fail { oracle; signature; detail } ->
    Printf.sprintf "FAIL %s: %s (%s)" oracle signature detail
