module Ir = Hypar_ir

type partition = { index : int; node_ids : int list; area_used : int }

type t = { partitions : partition list; assignment : int array }

(* Tracing wrapper shared by both algorithms: a span per call plus the
   running total of partitions created (the "temporal-partition count"
   the --stats breakdown reports). *)
let traced span_name impl ~area ~size dfg =
  if not (Hypar_obs.Sink.enabled ()) then impl ~area ~size dfg
  else
    Hypar_obs.Span.with_ ~cat:"fine" span_name (fun () ->
        let tp = impl ~area ~size dfg in
        Hypar_obs.Counter.incr
          ~by:(List.length tp.partitions)
          "fine.temporal_partitions";
        tp)

(* Direct transcription of Figure 3:
     i = 1; area_covered = 0;
     for level = 1 .. max_level:
       for each node u with level(u) = level:
         if area_covered + size(u) <= A then partition(u) = i; accumulate
         else i = i+1; partition(u) = i; area_covered = size(u) *)
let partition_figure3 ~area ~size dfg =
  if area <= 0 then invalid_arg "Temporal.partition: area must be positive";
  let n = Ir.Dfg.node_count dfg in
  let assignment = Array.make n 0 in
  let current = ref 1 in
  let area_covered = ref 0 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let areas : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let assign node_id node_area part =
    assignment.(node_id) <- part;
    let prev = match Hashtbl.find_opt members part with Some l -> l | None -> [] in
    Hashtbl.replace members part (node_id :: prev);
    let a = match Hashtbl.find_opt areas part with Some a -> a | None -> 0 in
    Hashtbl.replace areas part (a + node_area)
  in
  for level = 1 to Ir.Dfg.max_level dfg do
    List.iter
      (fun u ->
        let current_area = size (Ir.Dfg.node dfg u).Ir.Dfg.instr in
        if !area_covered + current_area <= area then begin
          assign u current_area !current;
          area_covered := !area_covered + current_area
        end
        else begin
          incr current;
          assign u current_area !current;
          area_covered := current_area
        end)
      (Ir.Dfg.nodes_at_level dfg level)
  done;
  (* The paper's pseudocode can leave the first partition empty (an
     oversized first node immediately opens partition 2); only non-empty
     partitions exist physically, so empty ones are dropped. *)
  let partitions =
    if n = 0 then []
    else
      List.filter_map
        (fun k ->
          let index = k + 1 in
          match Hashtbl.find_opt members index with
          | Some l ->
            Some
              {
                index;
                node_ids = List.rev l;
                area_used =
                  (match Hashtbl.find_opt areas index with
                  | Some a -> a
                  | None -> 0);
              }
          | None -> None)
        (List.init !current Fun.id)
  in
  { partitions; assignment }

let partition = traced "fine.temporal" partition_figure3

(* Baseline: first-fit with backfill.  Visiting nodes in the same
   level-by-level order, place each node into the lowest-indexed
   partition with room, at or after all its predecessors' partitions. *)
let partition_best_fit_impl ~area ~size dfg =
  if area <= 0 then invalid_arg "Temporal.partition_best_fit: area must be positive";
  let n = Ir.Dfg.node_count dfg in
  let assignment = Array.make n 0 in
  let used : int array ref = ref (Array.make 8 0) in
  let highest = ref 0 in
  let ensure p =
    if p >= Array.length !used then begin
      let bigger = Array.make (2 * (p + 1)) 0 in
      Array.blit !used 0 bigger 0 (Array.length !used);
      used := bigger
    end
  in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  for level = 1 to Ir.Dfg.max_level dfg do
    List.iter
      (fun u ->
        let node_area = size (Ir.Dfg.node dfg u).Ir.Dfg.instr in
        let earliest =
          List.fold_left
            (fun acc p -> max acc assignment.(p))
            1 (Ir.Dfg.preds dfg u)
        in
        let rec place p =
          ensure p;
          if p > !highest then begin
            (* a fresh partition always accepts the node *)
            highest := p;
            p
          end
          else if !used.(p) + node_area <= area then p
          else place (p + 1)
        in
        let p = place earliest in
        ensure p;
        !used.(p) <- !used.(p) + node_area;
        assignment.(u) <- p;
        let prev = match Hashtbl.find_opt members p with Some l -> l | None -> [] in
        Hashtbl.replace members p (u :: prev))
      (Ir.Dfg.nodes_at_level dfg level)
  done;
  let partitions =
    if n = 0 then []
    else
      List.filter_map
        (fun k ->
          let index = k + 1 in
          match Hashtbl.find_opt members index with
          | Some l ->
            Some
              { index; node_ids = List.rev l; area_used = !used.(index) }
          | None -> None)
        (List.init !highest Fun.id)
  in
  { partitions; assignment }

let partition_best_fit = traced "fine.temporal" partition_best_fit_impl

let count t = List.length t.partitions

let is_valid dfg t =
  let ok = ref true in
  List.iter
    (fun (nd : Ir.Dfg.node) ->
      List.iter
        (fun v -> if t.assignment.(nd.id) > t.assignment.(v) then ok := false)
        (Ir.Dfg.succs dfg nd.id))
    (Ir.Dfg.nodes dfg);
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>%d temporal partition(s):@," (count t);
  List.iter
    (fun p ->
      Format.fprintf ppf "  #%d area=%-5d nodes=[%s]@," p.index p.area_used
        (String.concat ";" (List.map string_of_int p.node_ids)))
    t.partitions;
  Format.fprintf ppf "@]"
