module Ir = Hypar_ir

type block_mapping = {
  block_id : int;
  partition_count : int;
  compute_cycles : int;
  reconfig_cycles : int;
  cycles_per_iteration : int;
  partitions : Temporal.t;
}

(* Cycles of one DFG mapping: group nodes by (partition, ASAP level);
   each group costs the max delay among its members. *)
let compute_cycles_of fpga dfg (tp : Temporal.t) =
  let asap = Ir.Dfg.asap dfg in
  let group_cost : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (nd : Ir.Dfg.node) ->
      let key = (tp.Temporal.assignment.(nd.id), asap.(nd.id)) in
      let d = Fpga.op_delay fpga nd.instr in
      let prev = match Hashtbl.find_opt group_cost key with Some c -> c | None -> 0 in
      if d > prev then Hashtbl.replace group_cost key d)
    (Ir.Dfg.nodes dfg);
  Hashtbl.fold (fun _ cost acc -> acc + cost) group_cost 0

let map_dfg_id fpga ~block_id dfg =
  Hypar_obs.Span.with_ ~cat:"fine" "fine.map_block"
    ~args:[ ("block", Hypar_obs.Event.Int block_id) ]
  @@ fun () ->
  let tp = Temporal.partition ~area:fpga.Fpga.area ~size:(Fpga.op_area fpga) dfg in
  let parts = Temporal.count tp in
  let compute = compute_cycles_of fpga dfg tp in
  let reconfig =
    List.fold_left
      (fun acc (p : Temporal.partition) ->
        acc + Fpga.partition_reconfig_cycles fpga ~partition_area:p.area_used)
      0 tp.Temporal.partitions
  in
  {
    block_id;
    partition_count = parts;
    compute_cycles = compute;
    reconfig_cycles = reconfig;
    cycles_per_iteration = compute + reconfig;
    partitions = tp;
  }

let map_dfg fpga dfg = map_dfg_id fpga ~block_id:(-1) dfg

let map_block fpga cdfg i =
  map_dfg_id fpga ~block_id:i (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg

let map_cdfg fpga cdfg =
  Array.of_list (List.map (map_block fpga cdfg) (Ir.Cdfg.block_ids cdfg))

let app_cycles fpga cdfg ~freq ~on_fpga =
  List.fold_left
    (fun acc i ->
      if on_fpga i && freq i > 0 then
        acc + ((map_block fpga cdfg i).cycles_per_iteration * freq i)
      else acc)
    0 (Ir.Cdfg.block_ids cdfg)

let pp_block_mapping ppf m =
  Format.fprintf ppf
    "BB%d: %d partition(s), compute=%d reconfig=%d cycles/iter=%d" m.block_id
    m.partition_count m.compute_cycles m.reconfig_cycles m.cycles_per_iteration
