(** Lattice-parameterised forward/backward data-flow solver over {!Cfg.t}.

    The paper's flow leans on clean CDFGs; SUIF gave the authors global
    data-flow analyses for free.  This module is our equivalent: one
    worklist solver, parameterised by a first-class {!module-type:ANALYSIS}
    module (lattice value, join, transfer), shared by liveness
    ({!Live}), the global optimiser passes in {!Passes}
    (constant/copy propagation, CSE, DCE) and the [hypar analyze]
    diagnostics engine.

    The solver iterates blocks in reverse postorder (postorder for
    backward analyses), keeps a priority worklist, and caches block
    inputs: a block whose join-of-predecessors did not change since its
    last visit is not re-transferred.  Blocks unreachable from the entry
    are never visited and keep {!ANALYSIS.init} on both sides.  When the
    {!Hypar_obs} sink is enabled each solve runs under a
    [dataflow.<name>] span and publishes a
    [dataflow.<name>.iterations] counter. *)

type direction = Forward | Backward

type pos = { block : int; index : int }
(** Position of an instruction: dense block id and index in the block. *)

(** One data-flow analysis: a join-semilattice of facts and transfer
    functions over instructions and terminators. *)
module type ANALYSIS = sig
  type t
  (** A lattice fact. *)

  val name : string
  (** Used for spans/counters and error messages. *)

  val direction : direction

  val init : t
  (** Optimistic value assumed for a block not yet visited (the lattice
      bottom for may-analyses, top for must-analyses: [All]-style values
      make intersection joins start optimistically). *)

  val boundary : t
  (** The value holding at the program boundary: at the entry block's
      entry for a forward analysis, after every [Return] terminator for a
      backward one. *)

  val join : t -> t -> t
  val equal : t -> t -> bool

  val transfer : pos -> Instr.t -> t -> t
  (** Fact after (forward) / before (backward) one instruction. *)

  val transfer_term : int -> Block.terminator -> t -> t
  (** Same for the block's terminator; the [int] is the block id. *)

  val edge : (Block.t -> Block.label -> t -> t) option
  (** Optional edge refinement: [f pred target v] filters the fact
      flowing along the CFG edge from block [pred] to the block labelled
      [target] (e.g. pruning the not-taken side of a branch whose
      condition is a known constant, or narrowing an interval under the
      branch condition).  Must only lower the value (return something
      [<= v] in the lattice order) to keep the fixpoint sound. *)

  val widen : (t -> t -> t) option
  (** Optional widening [widen old_input new_input], applied to a block's
      input after it has been visited {!widen_threshold} times.  Required
      for infinite-height lattices (intervals); [None] for finite ones. *)
end

val widen_threshold : int
(** Number of visits to a block before {!ANALYSIS.widen} kicks in. *)

type 'a solution = {
  at_entry : 'a array;  (** fact at each block's entry, in program order *)
  at_exit : 'a array;  (** fact at each block's exit, in program order *)
  iterations : int;  (** block transfers the worklist performed *)
}

val solve : (module ANALYSIS with type t = 'a) -> Cfg.t -> 'a solution
(** Maximal-fixpoint solution.  For a backward analysis [at_exit] is the
    join over successors and [at_entry] the result of transferring the
    block — the program-order naming is kept in both directions. *)

val refine :
  (module ANALYSIS with type t = 'a) -> Cfg.t -> 'a solution -> 'a solution
(** One decreasing (narrowing) sweep: every block's input is recomputed
    from the current neighbour facts (edge refinement included) and its
    transfer replayed, unconditionally.  A {!solve} result sits at or
    above the least fixpoint, and monotone transfers keep each sweep
    there, so calling this a bounded number of times after a widened
    solve is sound — and recovers the precision (branch-derived bounds in
    particular) that {!ANALYSIS.widen} discarded.  Analyses without
    [widen] gain nothing: {!solve} already reached their fixpoint. *)

val instr_facts :
  (module ANALYSIS with type t = 'a) -> Cfg.t -> 'a solution -> int ->
  (Instr.t * 'a) list
(** Replay the block's transfer to recover per-instruction facts: for a
    forward analysis each instruction is paired with the fact holding
    immediately {e before} it; for a backward analysis with the fact
    holding immediately {e after} it (in program order) — exactly the
    side a rewriting or diagnostic client needs. *)

val term_fact :
  (module ANALYSIS with type t = 'a) -> Cfg.t -> 'a solution -> int -> 'a
(** The fact holding between the last instruction and the terminator. *)

module Int_map : Map.S with type key = int
module String_map : Map.S with type key = string
module Int_set : Set.S with type elt = int

module Pos_set : Set.S with type elt = pos

(** {2 The classic global analyses}

    Each is a plain module satisfying {!module-type:ANALYSIS}, so it can be
    passed to {!solve} as [(module Reaching)] and its [transfer] reused
    directly by rewriting passes threading facts through a block. *)

(** Reaching definitions (forward, may): which definition sites can
    produce the current value of each register. *)
module Reaching : sig
  type reaching = Pos_set.t Int_map.t
  (** register id -> the definition sites that may reach this point. *)

  include ANALYSIS with type t = reaching

  val sites : int -> reaching -> pos list
  (** Definition sites of a register id, sorted; [[]] when none reach. *)
end

(** Available expressions (forward, must): pure expressions already
    computed on every path, keyed by {!Instr.expr_key}, with the register
    still holding each result.  Loads are available until a store to the
    same array; any expression dies when an operand or its cached
    register is redefined. *)
module Avail : sig
  type avail =
    | All  (** top: unvisited — every expression optimistically available *)
    | Known of Instr.var String_map.t

  include ANALYSIS with type t = avail

  val find : string -> avail -> Instr.var option
  (** The register holding an available expression key, if any. *)
end

(** Constant lattice (forward, conditional): registers with one known
    compile-time value.  The {!ANALYSIS.edge} hook prunes branch edges
    whose condition is a known constant, so code behind a statically
    decided branch keeps (rather than pollutes) the constant facts. *)
module Consts : sig
  type consts =
    | Unreached  (** bottom: no execution reaches this point *)
    | Env of int Int_map.t  (** register id -> known value; absent = varying *)

  include ANALYSIS with type t = consts

  val find : int -> consts -> int option
end

(** Copy lattice (forward, must): registers currently holding an exact
    copy of another operand ([x = y] or [x = 7]).  A fact dies when
    either side is redefined. *)
module Copies : sig
  type copies =
    | All  (** top: unvisited *)
    | Env of Instr.operand Int_map.t

  include ANALYSIS with type t = copies

  val find : int -> copies -> Instr.operand option
end

(** Definite assignment (forward, must): registers assigned on {e every}
    path from the entry — the complement is "possibly read before
    assignment" ([hypar analyze] code A001). *)
module Assigned : sig
  type assigned =
    | All  (** top: unvisited *)
    | Known of Int_set.t

  include ANALYSIS with type t = assigned

  val mem : int -> assigned -> bool
end

(** Liveness (backward, may): registers whose current value may still be
    read.  {!Live} wraps this into the block-level API the partitioning
    engine consumes. *)
module Liveness : sig
  type live = Instr.var Int_map.t
  (** register id -> the variable (kept for name/width reporting). *)

  include ANALYSIS with type t = live
end
