module Var_map = Dataflow.Int_map

type var_set = Instr.var Var_map.t

type t = { cfg : Cfg.t; live_in : var_set array; live_out : var_set array }

let to_sorted_list set = List.map snd (Var_map.bindings set)

(* use = upward-exposed reads; def = all variables written in the block. *)
let use_def_sets (b : Block.t) =
  let defs = ref Var_map.empty in
  let uses = ref Var_map.empty in
  let see_use (v : Instr.var) =
    if not (Var_map.mem v.vid !defs) then uses := Var_map.add v.vid v !uses
  in
  List.iter
    (fun instr ->
      List.iter see_use (Instr.used_vars instr);
      match Instr.def instr with
      | Some v -> defs := Var_map.add v.vid v !defs
      | None -> ())
    b.Block.instrs;
  List.iter see_use (Block.terminator_uses b);
  (!uses, !defs)

let use_set cfg i = to_sorted_list (fst (use_def_sets (Cfg.block cfg i)))

(* The fixpoint itself lives in {!Dataflow}: liveness is the backward
   may-analysis [Dataflow.Liveness], and this module only repackages the
   solution into the block-level sets the partitioning engine consumes.
   [Dataflow.Liveness.live] and [var_set] are the same map type. *)
let analyse cfg =
  let sol = Dataflow.solve (module Dataflow.Liveness) cfg in
  { cfg; live_in = sol.Dataflow.at_entry; live_out = sol.Dataflow.at_exit }

let live_in t i = to_sorted_list t.live_in.(i)
let live_out t i = to_sorted_list t.live_out.(i)

let defs_live_out t i =
  let b = Cfg.block t.cfg i in
  let defs = ref Var_map.empty in
  List.iter
    (fun instr ->
      match Instr.def instr with
      | Some v -> defs := Var_map.add v.vid v !defs
      | None -> ())
    b.Block.instrs;
  to_sorted_list
    (Var_map.filter (fun vid _ -> Var_map.mem vid t.live_out.(i)) !defs)
