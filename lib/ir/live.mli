(** Backward scalar liveness over the CFG.

    The partitioning engine prices the shared-memory traffic of a kernel
    moved to the coarse-grain data-path (Eq. 2's [t_comm]) from the
    kernel's live-in and live-out scalar sets, which this module
    computes.  The fixpoint is {!Dataflow.Liveness} solved by
    {!Dataflow.solve}; this module exposes the block-level view. *)

type t

val analyse : Cfg.t -> t

val live_in : t -> int -> Instr.var list
(** Variables live on entry to the block (sorted by id). *)

val live_out : t -> int -> Instr.var list
(** Variables live on exit from the block (sorted by id). *)

val defs_live_out : t -> int -> Instr.var list
(** Variables defined inside the block that are live on exit — the values
    the block must publish (its "outputs"). *)

val use_set : Cfg.t -> int -> Instr.var list
(** Upward-exposed uses of the block (reads before any local def,
    including the terminator's reads). *)
