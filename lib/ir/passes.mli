(** Classic scalar optimisation passes over the CDFG.

    The frontend's lowering is deliberately naive (one temporary per
    expression node); these passes clean the result up before analysis and
    mapping, playing the role of the SUIF/MachineSUIF optimisation passes
    the authors relied on.  All passes are semantics-preserving.  The
    local passes rewrite one block at a time; the [global_*] passes seed
    the same rewrites with facts from a {!Dataflow} solve, so values
    propagate across block boundaries (dead-code elimination was already
    global via {!Live}). *)

val verify_passes : bool ref
(** Global default for pass-boundary IR verification ({!Verify.check}
    after every pass inside {!simplify} and {!optimize}).  Initialised
    from the [HYPAR_VERIFY_IR] environment variable ([1]/[true]/[yes]/
    [on]); the test runner turns it on for the whole suite, the CLI
    exposes it as [--verify-ir]. *)

val checked : ?verify:bool -> string -> (Cdfg.t -> Cdfg.t) -> Cdfg.t -> Cdfg.t
(** [checked name pass cdfg] runs [pass] and, when verification is on
    ([verify] overrides {!verify_passes}), checks the result, raising
    {!Verify.Failed} with [name] as the context on any violation. *)

val const_fold : Cdfg.t -> Cdfg.t
(** Propagates constants within each block and folds operations whose
    operands are all constant (divisions by a constant zero are left in
    place). *)

val copy_propagate : Cdfg.t -> Cdfg.t
(** Forwards [Mov] sources to later uses within the block. *)

val algebraic_simplify : Cdfg.t -> Cdfg.t
(** Identity/absorption rewrites and strength reduction within each
    block: [x+0], [x-0], [x*1], [x/1], [x&x], [x|x], [x^x], [x*0],
    [x&0], shifts by 0, multiplication by a power of two (to a shift),
    [min]/[max]/[select] with equal operands, and comparisons of a
    variable with itself. *)

val common_subexpressions : Cdfg.t -> Cdfg.t
(** Local (per-block) common-subexpression elimination: a pure operation
    recomputing an available expression becomes a move from the earlier
    result.  Loads are reused only while no store to the same array
    intervenes; expressions are invalidated when an operand is
    redefined. *)

val dead_code_eliminate : Cdfg.t -> Cdfg.t
(** Removes instructions whose result is never used (backed by global
    liveness); stores and division/remainder instructions are always
    kept. *)

val simplify_cfg : Cdfg.t -> Cdfg.t
(** Control-flow clean-up, to a fixpoint:
    - unreachable blocks are deleted;
    - a jump to an empty forwarding block is threaded past it;
    - a block whose unique successor has no other predecessor is merged
      with it (the entry block keeps its position and label);
    - branches with identical targets become jumps.
    Runs after branch folding leaves dead arms behind. *)

val loop_invariant_motion : Cdfg.t -> Cdfg.t
(** Hoists loop-invariant computations into the loop preheader.

    A pure instruction (no load/store/division) is hoisted from a natural
    loop when: every variable it reads is defined outside the loop (or by
    an instruction already hoisted), its destination has exactly one
    definition in the loop, and the destination is not live into the loop
    header (not loop-carried).  Loads may trap on an out-of-bounds
    index, so they are only hoisted when no store in the loop touches
    their array *and* the loop is guaranteed to execute them whenever it
    runs at all (their block dominates every latch and every exiting
    block) — hoisting a branch-guarded load would introduce a runtime
    error on executions that never take the branch (found by
    [hypar fuzz --unsafe]).  The preheader must be the
    unique out-of-loop predecessor of the header — which the frontend's
    rotated-loop shape guarantees. *)

val global_const_propagate : Cdfg.t -> Cdfg.t
(** Global (conditional) constant propagation: runs {!const_fold}'s
    block rewrite seeded with the {!Dataflow.Consts} facts at each block
    entry.  Constants flow across block boundaries, branches on a
    constant condition fold to jumps, and edges pruned by the constant
    analysis do not pollute the facts of the surviving paths. *)

val global_copy_propagate : Cdfg.t -> Cdfg.t
(** Global copy propagation: {!copy_propagate}'s block rewrite seeded
    with the {!Dataflow.Copies} facts at each block entry, forwarding
    [Mov] sources across block boundaries. *)

val global_cse : Cdfg.t -> Cdfg.t
(** Global common-subexpression elimination: a pure instruction
    recomputing an expression the {!Dataflow.Avail} must-analysis proves
    available on every path becomes a move from the register still
    holding it. *)

val simplify : ?max_rounds:int -> ?verify:bool -> Cdfg.t -> Cdfg.t
(** [const_fold → algebraic_simplify → copy_propagate →
    common_subexpressions → dead_code_eliminate] to a fixpoint (at most
    [max_rounds] rounds, default 8).  With verification on (see
    {!verify_passes}) every constituent pass is {!checked}. *)

val optimize : ?verify:bool -> Cdfg.t -> Cdfg.t
(** The default frontend pipeline: {!simplify} → {!simplify_cfg} → one
    global round ({!global_const_propagate} → {!global_copy_propagate} →
    {!global_cse} → {!simplify} → {!simplify_cfg}) →
    {!loop_invariant_motion} (innermost loops first) → a second global
    round.  With verification on the input and every pass output are
    {!checked}. *)
