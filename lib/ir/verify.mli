(** Structural invariant verification for the IR.

    The optimisation pipeline ({!Passes}) rewrites the CDFG aggressively;
    every rewrite must preserve the structural properties the analysis,
    mapping and partitioning stages silently rely on.  This module checks
    those properties explicitly and returns a typed list of violations, so
    a broken pass is caught at the pass boundary (with the pass name in
    the error) instead of as a wrong number three stages later.

    Invariants checked on a {!Cdfg.t}:
    - {b entry-reachable}: the block list is non-empty and the entry block
      is reachable (trivially, block 0);
    - {b terminators-resolve}: every terminator targets an existing block
      label, and labels are unique;
    - {b dfg-well-formed}: each block's DFG is acyclic with intra-block
      edges only (all edges forward in program order), and has exactly one
      node per instruction of its block, in order;
    - {b defs-before-uses}: no register is live into the entry block —
      i.e. there is no path from the entry to a use of a register that
      does not first pass a definition;
    - {b liveness-consistent}: the per-block live-in/live-out sets of
      {!Live} satisfy the backward data-flow equations
      [live_in = use + (live_out - def)] and
      [live_out = U live_in(succ)];
    - {b arrays-declared}: every accessed array is declared and no store
      targets a [const] array (the {!Cdfg.validate} checks);
    - {b roundtrip-stable}: {!Serialize.of_string} of
      {!Serialize.to_string} reproduces the same name, arrays and
      blocks. *)

type invariant =
  | Entry_reachable
  | Terminators_resolve
  | Dfg_well_formed
  | Defs_before_uses
  | Liveness_consistent
  | Arrays_declared
  | Roundtrip_stable

val all_invariants : invariant list

val invariant_name : invariant -> string
(** Stable kebab-case identifier, e.g. ["defs-before-uses"]. *)

type violation = {
  invariant : invariant;
  where : string;  (** block label / register / array involved *)
  detail : string;
}

exception Failed of { context : string; violations : violation list }
(** Raised by {!check_exn}; [context] names the pass (or pipeline stage)
    whose output failed.  A human-readable printer is registered. *)

val check : Cdfg.t -> violation list
(** All violations of all invariants, in a deterministic order.  An empty
    list means the CDFG is well-formed. *)

val check_exn : context:string -> Cdfg.t -> unit
(** Raises {!Failed} when {!check} finds violations. *)

val report : violation list -> string
(** One line per violation: [invariant(where): detail]. *)

val pp_violation : Format.formatter -> violation -> unit

(** {2 Finer-grained checkers}

    The pieces {!check} is assembled from, exposed so tests can aim each
    invariant at hand-built (possibly broken) structures that the smart
    constructors of {!Cfg} and {!Cdfg} would reject. *)

val check_blocks : Block.t list -> violation list
(** [Entry_reachable] and [Terminators_resolve] over a raw block list,
    before any {!Cfg.of_blocks} construction. *)

val check_dfg_against : Block.t -> Dfg.t -> violation list
(** [Dfg_well_formed]: does the DFG have one node per instruction of the
    block, in program order, with forward-only edges? *)

val check_liveness :
  Cfg.t ->
  live_in:(int -> Instr.var list) ->
  live_out:(int -> Instr.var list) ->
  violation list
(** [Liveness_consistent] for externally supplied live sets (production
    callers pass {!Live}'s; tests can inject broken ones). *)

val structural_diff : Cdfg.t -> Cdfg.t -> violation list
(** [Roundtrip_stable] violations describing how the second CDFG differs
    from the first (name, arrays, block count, per-block contents). *)
