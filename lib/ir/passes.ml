(* --- pass-boundary verification ---------------------------------------- *)

let verify_passes =
  ref
    (match Sys.getenv_opt "HYPAR_VERIFY_IR" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let checked ?verify name pass cdfg =
  let run () =
    let out = pass cdfg in
    if Option.value verify ~default:!verify_passes then
      Verify.check_exn ~context:name out;
    if Hypar_obs.Sink.enabled () then begin
      Hypar_obs.Counter.set "ir.blocks" (Cdfg.block_count out);
      Hypar_obs.Counter.set "ir.instrs" (Cdfg.total_instrs out);
      (* per-pass shrink accounting, surfaced by [hypar ... --stats] *)
      let di = Cdfg.total_instrs cdfg - Cdfg.total_instrs out in
      if di > 0 then
        Hypar_obs.Counter.incr ("ir.shrink." ^ name ^ ".instrs") ~by:di;
      let db = Cdfg.block_count cdfg - Cdfg.block_count out in
      if db > 0 then
        Hypar_obs.Counter.incr ("ir.shrink." ^ name ^ ".blocks") ~by:db
    end;
    out
  in
  if Hypar_obs.Sink.enabled () then
    Hypar_obs.Span.with_ ~cat:"ir" ("ir.pass." ^ name) run
  else run ()

let rebuild cdfg blocks =
  Cdfg.make ~name:(Cdfg.name cdfg) ~arrays:(Cdfg.arrays cdfg)
    (Cfg.of_blocks blocks)

let map_blocks f cdfg =
  let blocks =
    List.map
      (fun i -> f ((Cdfg.info cdfg i).Cdfg.block))
      (Cdfg.block_ids cdfg)
  in
  rebuild cdfg blocks

(* --- constant folding ------------------------------------------------ *)

let const_fold_block ?(seed = []) (b : Block.t) =
  let known : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (vid, n) -> Hashtbl.replace known vid n) seed;
  let subst = function
    | Instr.Imm n -> Instr.Imm n
    | Instr.Var v -> (
      match Hashtbl.find_opt known v.vid with
      | Some n -> Instr.Imm n
      | None -> Instr.Var v)
  in
  let learn (dst : Instr.var) = function
    | Some n -> Hashtbl.replace known dst.vid n
    | None -> Hashtbl.remove known dst.vid
  in
  let fold_instr (instr : Instr.t) : Instr.t =
    match instr with
    | Bin { dst; op; a; b } -> (
      let a = subst a and b = subst b in
      match (a, b) with
      | Imm x, Imm y ->
        let n = Types.eval_alu_op op x y in
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | _ ->
        learn dst None;
        Bin { dst; op; a; b })
    | Mul { dst; a; b } -> (
      let a = subst a and b = subst b in
      match (a, b) with
      | Imm x, Imm y ->
        let n = x * y in
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | _ ->
        learn dst None;
        Mul { dst; a; b })
    | Div { dst; a; b } -> (
      let a = subst a and b = subst b in
      match (a, b) with
      | Imm x, Imm y when y <> 0 ->
        let n = x / y in
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | _ ->
        learn dst None;
        Div { dst; a; b })
    | Rem { dst; a; b } -> (
      let a = subst a and b = subst b in
      match (a, b) with
      | Imm x, Imm y when y <> 0 ->
        let n = x mod y in
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | _ ->
        learn dst None;
        Rem { dst; a; b })
    | Un { dst; op; a } -> (
      match subst a with
      | Imm x ->
        let n = Types.eval_un_op op x in
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | a ->
        learn dst None;
        Un { dst; op; a })
    | Mov { dst; src } -> (
      match subst src with
      | Imm n ->
        learn dst (Some n);
        Mov { dst; src = Imm n }
      | src ->
        learn dst None;
        Mov { dst; src })
    | Select { dst; cond; if_true; if_false } -> (
      let cond = subst cond
      and if_true = subst if_true
      and if_false = subst if_false in
      match cond with
      | Imm c ->
        let src = if c <> 0 then if_true else if_false in
        (match src with
        | Imm n -> learn dst (Some n)
        | Var _ -> learn dst None);
        Mov { dst; src }
      | Var _ ->
        learn dst None;
        Select { dst; cond; if_true; if_false })
    | Load { dst; arr; index } ->
      learn dst None;
      Load { dst; arr; index = subst index }
    | Store { arr; index; value } ->
      Store { arr; index = subst index; value = subst value }
  in
  let instrs = List.map fold_instr b.Block.instrs in
  let subst_term = function
    | Block.Branch { cond; if_true; if_false } -> (
      match subst cond with
      | Imm c -> Block.Jump (if c <> 0 then if_true else if_false)
      | cond -> Block.Branch { cond; if_true; if_false })
    | Block.Jump _ as t -> t
    | Block.Return None as t -> t
    | Block.Return (Some op) -> Block.Return (Some (subst op))
  in
  { b with instrs; term = subst_term b.Block.term }

let const_fold cdfg = map_blocks (const_fold_block ?seed:None) cdfg

(* --- algebraic simplification / strength reduction -------------------- *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let same_var a b =
  match (a, b) with
  | Instr.Var v1, Instr.Var v2 -> Instr.var_equal v1 v2
  | (Instr.Var _ | Instr.Imm _), (Instr.Var _ | Instr.Imm _) -> false

let algebraic_instr (instr : Instr.t) : Instr.t =
  match instr with
  | Instr.Bin { dst; op; a; b } -> (
    let mov src = Instr.Mov { dst; src } in
    match (op, a, b) with
    | Types.Add, x, Imm 0 | Types.Add, Imm 0, x -> mov x
    | Types.Sub, x, Imm 0 -> mov x
    | Types.Sub, x, y when same_var x y -> mov (Imm 0)
    | Types.Xor, x, y when same_var x y -> mov (Imm 0)
    | Types.Xor, x, Imm 0 | Types.Xor, Imm 0, x -> mov x
    | Types.And, x, y when same_var x y -> mov x
    | Types.And, _, Imm 0 | Types.And, Imm 0, _ -> mov (Imm 0)
    | Types.Or, x, y when same_var x y -> mov x
    | Types.Or, x, Imm 0 | Types.Or, Imm 0, x -> mov x
    | (Types.Shl | Types.Shr | Types.Ashr), x, Imm 0 -> mov x
    | Types.Min, x, y | Types.Max, x, y when same_var x y -> mov x
    | (Types.Le | Types.Ge | Types.Eq), x, y when same_var x y -> mov (Imm 1)
    | (Types.Lt | Types.Gt | Types.Ne), x, y when same_var x y -> mov (Imm 0)
    | _, _, _ -> instr)
  | Instr.Mul { dst; a; b } -> (
    match (a, b) with
    | x, Imm 1 | Imm 1, x -> Instr.Mov { dst; src = x }
    | _, Imm 0 | Imm 0, _ -> Instr.Mov { dst; src = Imm 0 }
    | x, Imm n when is_power_of_two n ->
      Instr.Bin { dst; op = Types.Shl; a = x; b = Imm (log2_exact n) }
    | Imm n, x when is_power_of_two n ->
      Instr.Bin { dst; op = Types.Shl; a = x; b = Imm (log2_exact n) }
    | _, _ -> instr)
  | Instr.Div { dst; a; b } -> (
    match b with Imm 1 -> Instr.Mov { dst; src = a } | _ -> instr)
  | Instr.Select { dst; if_true; if_false; _ } when same_var if_true if_false ->
    Instr.Mov { dst; src = if_true }
  | Instr.Rem _ | Instr.Un _ | Instr.Mov _ | Instr.Select _ | Instr.Load _
  | Instr.Store _ ->
    instr

let algebraic_simplify cdfg =
  map_blocks
    (fun b -> { b with Block.instrs = List.map algebraic_instr b.Block.instrs })
    cdfg

(* --- local common-subexpression elimination ---------------------------- *)

(* the canonical keys now live in {!Instr} so {!Dataflow.Avail} can share
   them *)
let expr_key = Instr.expr_key

let cse_block (b : Block.t) =
  let available : (string, Instr.var) Hashtbl.t = Hashtbl.create 32 in
  (* for invalidation: var vid -> keys mentioning it; array -> load keys *)
  let keys_by_var : (int, string list) Hashtbl.t = Hashtbl.create 32 in
  let keys_by_arr : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let remember_deps key instr =
    List.iter
      (fun (v : Instr.var) ->
        let prev =
          match Hashtbl.find_opt keys_by_var v.vid with Some l -> l | None -> []
        in
        Hashtbl.replace keys_by_var v.vid (key :: prev))
      (Instr.used_vars instr);
    match Instr.accessed_array instr with
    | Some arr ->
      let prev =
        match Hashtbl.find_opt keys_by_arr arr with Some l -> l | None -> []
      in
      Hashtbl.replace keys_by_arr arr (key :: prev)
    | None -> ()
  in
  let kill_var (v : Instr.var) =
    (match Hashtbl.find_opt keys_by_var v.vid with
    | Some keys -> List.iter (Hashtbl.remove available) keys
    | None -> ());
    Hashtbl.remove keys_by_var v.vid;
    (* results cached under this destination are stale too *)
    let stale =
      Hashtbl.fold
        (fun key cached acc -> if Instr.var_equal cached v then key :: acc else acc)
        available []
    in
    List.iter (Hashtbl.remove available) stale
  in
  let kill_array arr =
    (match Hashtbl.find_opt keys_by_arr arr with
    | Some keys -> List.iter (Hashtbl.remove available) keys
    | None -> ());
    Hashtbl.remove keys_by_arr arr
  in
  let process (instr : Instr.t) : Instr.t =
    if Instr.is_store instr then begin
      (match Instr.accessed_array instr with
      | Some arr -> kill_array arr
      | None -> ());
      instr
    end
    else
      let key = expr_key instr in
      let replacement =
        match key with
        | Some k -> Hashtbl.find_opt available k
        | None -> None
      in
      match (replacement, Instr.def instr) with
      | Some cached, Some dst ->
        kill_var dst;
        Instr.Mov { dst; src = Var cached }
      | _, def ->
        (match def with Some dst -> kill_var dst | None -> ());
        (match (key, Instr.def instr) with
        | Some k, Some dst ->
          (* an expression reading its own destination (x = x + 1) is
             stale the moment it is computed: don't cache it *)
          let self_referential =
            List.exists (fun v -> Instr.var_equal v dst) (Instr.used_vars instr)
          in
          if not self_referential then begin
            Hashtbl.replace available k dst;
            remember_deps k instr
          end
        | _, _ -> ());
        instr
  in
  { b with Block.instrs = List.map process b.Block.instrs }

let common_subexpressions cdfg = map_blocks cse_block cdfg

(* --- copy propagation ------------------------------------------------ *)

let copy_propagate_block ?(seed = []) (b : Block.t) =
  (* copies: dst id -> source operand still valid at this point *)
  let copies : (int, Instr.operand) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (vid, src) -> Hashtbl.replace copies vid src) seed;
  let subst = function
    | Instr.Imm n -> Instr.Imm n
    | Instr.Var v -> (
      match Hashtbl.find_opt copies v.vid with
      | Some src -> src
      | None -> Instr.Var v)
  in
  let invalidate (dst : Instr.var) =
    Hashtbl.remove copies dst.vid;
    (* any copy whose source is dst becomes stale *)
    let stale =
      Hashtbl.fold
        (fun k src acc ->
          match src with
          | Instr.Var v when v.vid = dst.vid -> k :: acc
          | Instr.Var _ | Instr.Imm _ -> acc)
        copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  let prop (instr : Instr.t) : Instr.t =
    match instr with
    | Bin { dst; op; a; b } ->
      let a = subst a and b = subst b in
      invalidate dst;
      Bin { dst; op; a; b }
    | Mul { dst; a; b } ->
      let a = subst a and b = subst b in
      invalidate dst;
      Mul { dst; a; b }
    | Div { dst; a; b } ->
      let a = subst a and b = subst b in
      invalidate dst;
      Div { dst; a; b }
    | Rem { dst; a; b } ->
      let a = subst a and b = subst b in
      invalidate dst;
      Rem { dst; a; b }
    | Un { dst; op; a } ->
      let a = subst a in
      invalidate dst;
      Un { dst; op; a }
    | Mov { dst; src } ->
      let src = subst src in
      invalidate dst;
      (match src with
      | Var v when v.vid = dst.vid -> ()
      | src' -> Hashtbl.replace copies dst.vid src');
      Mov { dst; src }
    | Select { dst; cond; if_true; if_false } ->
      let cond = subst cond
      and if_true = subst if_true
      and if_false = subst if_false in
      invalidate dst;
      Select { dst; cond; if_true; if_false }
    | Load { dst; arr; index } ->
      let index = subst index in
      invalidate dst;
      Load { dst; arr; index }
    | Store { arr; index; value } ->
      Store { arr; index = subst index; value = subst value }
  in
  let instrs = List.map prop b.Block.instrs in
  let term =
    match b.Block.term with
    | Block.Branch { cond; if_true; if_false } ->
      Block.Branch { cond = subst cond; if_true; if_false }
    | Block.Jump _ as t -> t
    | Block.Return None as t -> t
    | Block.Return (Some op) -> Block.Return (Some (subst op))
  in
  { b with instrs; term }

let copy_propagate cdfg = map_blocks (copy_propagate_block ?seed:None) cdfg

(* --- global (dataflow-backed) passes ----------------------------------- *)

(* Each global pass solves one {!Dataflow} analysis and re-runs the
   corresponding local rewrite seeded with the facts holding at block
   entry, so code straddling block boundaries optimises exactly like
   straight-line code.  Blocks the analysis proves unreachable
   ([Unreached]/[All] at entry) are rewritten without a seed: their facts
   are vacuous and seeding from them would be meaningless. *)

let global_const_propagate cdfg =
  let sol = Dataflow.solve (module Dataflow.Consts) (Cdfg.cfg cdfg) in
  let blocks =
    List.map
      (fun i ->
        let b = (Cdfg.info cdfg i).Cdfg.block in
        match sol.Dataflow.at_entry.(i) with
        | Dataflow.Consts.Env m ->
          const_fold_block ~seed:(Dataflow.Int_map.bindings m) b
        | Dataflow.Consts.Unreached -> const_fold_block b)
      (Cdfg.block_ids cdfg)
  in
  rebuild cdfg blocks

let global_copy_propagate cdfg =
  let sol = Dataflow.solve (module Dataflow.Copies) (Cdfg.cfg cdfg) in
  let blocks =
    List.map
      (fun i ->
        let b = (Cdfg.info cdfg i).Cdfg.block in
        match sol.Dataflow.at_entry.(i) with
        | Dataflow.Copies.Env m ->
          copy_propagate_block ~seed:(Dataflow.Int_map.bindings m) b
        | Dataflow.Copies.All -> copy_propagate_block b)
      (Cdfg.block_ids cdfg)
  in
  rebuild cdfg blocks

let global_cse cdfg =
  let cfg = Cdfg.cfg cdfg in
  let sol = Dataflow.solve (module Dataflow.Avail) cfg in
  let rewrite i (b : Block.t) =
    match sol.Dataflow.at_entry.(i) with
    | Dataflow.Avail.All -> b (* unreachable: no facts to seed from *)
    | Dataflow.Avail.Known _ ->
      (* thread Avail's own transfer over the original instructions; a
         pure instruction recomputing an expression available here
         becomes a move from the register still holding it *)
      let fact = ref sol.Dataflow.at_entry.(i) in
      let instrs =
        List.mapi
          (fun k instr ->
            let replacement =
              match (Instr.expr_key instr, Instr.def instr) with
              | Some key, Some dst -> (
                match Dataflow.Avail.find key !fact with
                | Some cached when not (Instr.var_equal cached dst) ->
                  Some (Instr.Mov { dst; src = Var cached })
                | Some _ | None -> None)
              | _ -> None
            in
            fact :=
              Dataflow.Avail.transfer
                { Dataflow.block = i; index = k }
                instr !fact;
            Option.value replacement ~default:instr)
          b.Block.instrs
      in
      { b with Block.instrs }
  in
  let blocks =
    List.map (fun i -> rewrite i (Cdfg.info cdfg i).Cdfg.block)
      (Cdfg.block_ids cdfg)
  in
  rebuild cdfg blocks

(* --- dead-code elimination ------------------------------------------- *)

let dead_code_eliminate cdfg =
  let cfg = Cdfg.cfg cdfg in
  let live = Live.analyse cfg in
  let eliminate i (b : Block.t) =
    let live_now : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    List.iter (fun (v : Instr.var) -> Hashtbl.replace live_now v.vid ())
      (Live.live_out live i);
    List.iter (fun (v : Instr.var) -> Hashtbl.replace live_now v.vid ())
      (Block.terminator_uses b);
    let keep instr =
      let needed =
        match Instr.def instr with
        | None -> true (* stores *)
        | Some dst -> (
          match instr with
          | Instr.Div _ | Instr.Rem _ ->
            true (* may trap: never removed *)
          | Instr.Store _ -> true
          | Instr.Bin _ | Instr.Mul _ | Instr.Un _ | Instr.Mov _
          | Instr.Select _ | Instr.Load _ ->
            Hashtbl.mem live_now dst.vid)
      in
      if needed then begin
        (match Instr.def instr with
        | Some dst -> Hashtbl.remove live_now dst.vid
        | None -> ());
        List.iter
          (fun (v : Instr.var) -> Hashtbl.replace live_now v.vid ())
          (Instr.used_vars instr)
      end;
      needed
    in
    let kept_rev =
      List.fold_left
        (fun acc instr -> if keep instr then instr :: acc else acc)
        []
        (List.rev b.Block.instrs)
    in
    { b with Block.instrs = kept_rev }
  in
  let blocks =
    List.map (fun i -> eliminate i (Cdfg.info cdfg i).Cdfg.block)
      (Cdfg.block_ids cdfg)
  in
  rebuild cdfg blocks

(* --- control-flow clean-up --------------------------------------------- *)

let same_program c1 c2 =
  let b1 = Array.to_list (Cfg.blocks (Cdfg.cfg c1)) in
  let b2 = Array.to_list (Cfg.blocks (Cdfg.cfg c2)) in
  b1 = b2

let simplify_cfg_once cdfg =
  let cfg = Cdfg.cfg cdfg in
  let reachable = Cfg.reachable cfg in
  let blocks =
    List.filteri (fun i _ -> reachable.(i)) (Array.to_list (Cfg.blocks cfg))
  in
  let cfg = Cfg.of_blocks blocks in
  let blocks = Array.copy (Cfg.blocks cfg) in
  let n = Array.length blocks in
  (* collapse branches with identical arms *)
  for i = 0 to n - 1 do
    match blocks.(i).Block.term with
    | Block.Branch { if_true; if_false; _ } when if_true = if_false ->
      blocks.(i) <- { (blocks.(i)) with Block.term = Block.Jump if_true }
    | Block.Branch _ | Block.Jump _ | Block.Return _ -> ()
  done;
  (* thread jumps through empty forwarding blocks (not self-referential) *)
  let forward = Hashtbl.create 8 in
  Array.iteri
    (fun i (b : Block.t) ->
      match (b.instrs, b.term) with
      | [], Block.Jump target
        when target <> b.label && i <> Cfg.entry cfg ->
        Hashtbl.replace forward b.label target
      | _ -> ())
    blocks;
  let rec resolve seen l =
    if List.mem l seen then l
    else
      match Hashtbl.find_opt forward l with
      | Some next -> resolve (l :: seen) next
      | None -> l
  in
  for i = 0 to n - 1 do
    let term = blocks.(i).Block.term in
    let new_term =
      match term with
      | Block.Jump l -> Block.Jump (resolve [] l)
      | Block.Branch { cond; if_true; if_false } ->
        Block.Branch
          { cond; if_true = resolve [] if_true; if_false = resolve [] if_false }
      | Block.Return _ -> term
    in
    blocks.(i) <- { (blocks.(i)) with Block.term = new_term }
  done;
  (* merge one block into its unique Jump successor per pass: a merge
     rewrites the surviving block's terminator, so predecessor sets must
     be recomputed before attempting another — the surrounding fixpoint
     drives convergence *)
  let cfg = Cfg.of_blocks (Array.to_list blocks) in
  let blocks = Array.copy (Cfg.blocks cfg) in
  let removed = Array.make (Array.length blocks) false in
  (try
     for i = 0 to Array.length blocks - 1 do
       match blocks.(i).Block.term with
       | Block.Jump succ_label when succ_label <> blocks.(i).Block.label ->
         let j = Cfg.id_of_label cfg succ_label in
         if j <> Cfg.entry cfg && j <> i && Cfg.predecessors cfg j = [ i ] then begin
           let a = blocks.(i) and b = blocks.(j) in
           blocks.(i) <-
             { a with Block.instrs = a.Block.instrs @ b.Block.instrs;
               term = b.Block.term };
           removed.(j) <- true;
           raise Exit
         end
       | Block.Jump _ | Block.Branch _ | Block.Return _ -> ()
     done
   with Exit -> ());
  let kept =
    List.filteri (fun i _ -> not removed.(i)) (Array.to_list blocks)
  in
  rebuild cdfg kept

let simplify_cfg cdfg =
  (* one merge can happen per pass; loops are deep enough at 64 rounds *)
  let rec go round c =
    if round >= 64 then c
    else
      let c' = simplify_cfg_once c in
      if same_program c c' then c else go (round + 1) c'
  in
  go 0 cdfg

(* --- loop-invariant code motion ---------------------------------------- *)

module Int_map = Map.Make (Int)

(* Hoist from one loop; returns the rebuilt block list and whether
   anything moved. *)
let hoist_loop (blocks : Block.t array) (loop : Loop.t) =
  let cfg = Cfg.of_blocks (Array.to_list blocks) in
  let in_loop = Array.make (Array.length blocks) false in
  List.iter (fun b -> in_loop.(b) <- true) loop.Loop.body;
  (* unique out-of-loop predecessor of the header *)
  let outside_preds =
    List.filter (fun p -> not in_loop.(p)) (Cfg.predecessors cfg loop.Loop.header)
  in
  match outside_preds with
  | [ preheader ] ->
    let live = Live.analyse cfg in
    let live_in_header =
      List.fold_left
        (fun acc (v : Instr.var) -> Int_map.add v.vid () acc)
        Int_map.empty
        (Live.live_in live loop.Loop.header)
    in
    (* definition counts and array stores inside the loop *)
    let def_count : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let stored_arrays : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun b ->
        List.iter
          (fun instr ->
            (match Instr.def instr with
            | Some v ->
              Hashtbl.replace def_count v.vid
                (1 + Option.value (Hashtbl.find_opt def_count v.vid) ~default:0)
            | None -> ());
            if Instr.is_store instr then
              match Instr.accessed_array instr with
              | Some arr -> Hashtbl.replace stored_arrays arr ()
              | None -> ())
          blocks.(b).Block.instrs)
      loop.Loop.body;
    let hoisted_vids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let operand_invariant = function
      | Instr.Imm _ -> true
      | Instr.Var v ->
        (not (Hashtbl.mem def_count v.vid)) || Hashtbl.mem hoisted_vids v.vid
    in
    (* A load may trap (out-of-bounds index), so it can only move to the
       preheader if the loop already executes it whenever it runs at all:
       its block must dominate every latch and every exiting block.
       Hoisting a load that only runs under a branch would *introduce*
       the trap on executions that never take the branch — the ALU ops
       are total (shifts clamp, Div/Rem are never hoisted), so they may
       speculate freely. *)
    let guaranteed_each_iteration =
      let exiting =
        List.filter
          (fun b ->
            List.exists (fun s -> not in_loop.(s)) (Cfg.successors cfg b))
          loop.Loop.body
      in
      let must_dominate = loop.Loop.latches @ exiting in
      fun b -> List.for_all (fun d -> Cfg.dominates cfg b d) must_dominate
    in
    let is_hoistable b instr =
      let pure =
        match instr with
        | Instr.Bin _ | Instr.Mul _ | Instr.Un _ | Instr.Mov _ | Instr.Select _ ->
          true
        | Instr.Load { arr; _ } ->
          (not (Hashtbl.mem stored_arrays arr)) && guaranteed_each_iteration b
        | Instr.Div _ | Instr.Rem _ | Instr.Store _ -> false
      in
      pure
      && (match Instr.def instr with
         | Some dst ->
           Hashtbl.find_opt def_count dst.vid = Some 1
           && (not (Int_map.mem dst.vid live_in_header))
           && not (Hashtbl.mem hoisted_vids dst.vid)
         | None -> false)
      && List.for_all operand_invariant (Instr.uses instr)
    in
    (* iterate to a fixpoint so chains of invariant ops hoist together *)
    let to_hoist : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          List.iteri
            (fun k instr ->
              if (not (Hashtbl.mem to_hoist (b, k))) && is_hoistable b instr then begin
                Hashtbl.replace to_hoist (b, k) ();
                (match Instr.def instr with
                | Some dst -> Hashtbl.replace hoisted_vids dst.vid ()
                | None -> ());
                changed := true
              end)
            blocks.(b).Block.instrs)
        loop.Loop.body
    done;
    if Hashtbl.length to_hoist = 0 then (blocks, false)
    else begin
      let moved = ref [] in
      let blocks =
        Array.mapi
          (fun b (blk : Block.t) ->
            if not in_loop.(b) then blk
            else begin
              let keep =
                List.filteri
                  (fun k instr ->
                    if Hashtbl.mem to_hoist (b, k) then begin
                      moved := instr :: !moved;
                      false
                    end
                    else true)
                  blk.Block.instrs
              in
              { blk with Block.instrs = keep }
            end)
          blocks
      in
      (* moved instructions keep their original (block-major) order *)
      let moved = List.rev !moved in
      let ph = blocks.(preheader) in
      blocks.(preheader) <- { ph with Block.instrs = ph.Block.instrs @ moved };
      (blocks, true)
    end
  | [] | _ :: _ :: _ -> (blocks, false)

let loop_invariant_motion cdfg =
  let blocks = Array.copy (Cfg.blocks (Cdfg.cfg cdfg)) in
  (* innermost loops first: larger depth before smaller, then smaller body *)
  let cfg = Cdfg.cfg cdfg in
  let depth = Loop.depth_map cfg in
  let loops =
    List.sort
      (fun (l1 : Loop.t) (l2 : Loop.t) ->
        match compare depth.(l2.Loop.header) depth.(l1.Loop.header) with
        | 0 -> compare (List.length l1.Loop.body) (List.length l2.Loop.body)
        | c -> c)
      (Loop.find cfg)
  in
  let blocks = ref blocks in
  List.iter
    (fun loop ->
      let updated, _ = hoist_loop !blocks loop in
      blocks := updated)
    loops;
  rebuild cdfg (Array.to_list !blocks)

(* --- fixpoint --------------------------------------------------------- *)

let simplify ?(max_rounds = 8) ?verify cdfg =
  let step = checked ?verify in
  let rec go round c =
    if round >= max_rounds then c
    else
      let c' =
        step "dead_code_eliminate" dead_code_eliminate
          (step "common_subexpressions" common_subexpressions
             (step "copy_propagate" copy_propagate
                (step "algebraic_simplify" algebraic_simplify
                   (step "const_fold" const_fold c))))
      in
      if same_program c c' then c else go (round + 1) c'
  in
  go 0 cdfg

(* one global round: propagate facts across block boundaries, then let
   the local fixpoint and the CFG clean-up collect the now-dead code and
   the arms of statically decided branches *)
let global_round ?verify c =
  let step = checked ?verify in
  step "global_const_propagate" global_const_propagate c
  |> step "global_copy_propagate" global_copy_propagate
  |> step "global_cse" global_cse
  |> simplify ?verify
  |> step "simplify_cfg" simplify_cfg

let optimize ?verify cdfg =
  let step = checked ?verify in
  step "input" Fun.id cdfg
  |> simplify ?verify
  |> step "simplify_cfg" simplify_cfg
  |> global_round ?verify
  |> step "loop_invariant_motion" loop_invariant_motion
  |> global_round ?verify
