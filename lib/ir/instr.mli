(** Three-address instructions.

    A basic block is a sequence of these instructions followed by a
    terminator ({!Block.terminator}); the per-block data-flow graph
    ({!Dfg}) has one node per instruction. *)

type var = { vname : string; vid : int; vwidth : Types.width }
(** A scalar register. [vid] is the identity used by def/use analysis;
    [vname] is for printing only. *)

type operand = Var of var | Imm of int

type t =
  | Bin of { dst : var; op : Types.alu_op; a : operand; b : operand }
  | Mul of { dst : var; a : operand; b : operand }
  | Div of { dst : var; a : operand; b : operand }
  | Rem of { dst : var; a : operand; b : operand }
  | Un of { dst : var; op : Types.un_op; a : operand }
  | Mov of { dst : var; src : operand }
  | Select of { dst : var; cond : operand; if_true : operand; if_false : operand }
  | Load of { dst : var; arr : string; index : operand }
  | Store of { arr : string; index : operand; value : operand }

val def : t -> var option
(** Variable defined by the instruction, if any (stores define none). *)

val uses : t -> operand list
(** Operands read by the instruction, in syntactic order. *)

val used_vars : t -> var list
(** Variables among {!uses}. *)

val op_class : t -> Types.op_class
(** Classification used by the weight, delay, area and scheduling models. *)

val accessed_array : t -> string option
(** Array touched by a load or store. *)

val is_store : t -> bool
val is_load : t -> bool

val mnemonic : t -> string
(** Short opcode name, e.g. ["add"], ["mul"], ["load"]. *)

val var_equal : var -> var -> bool

val operand_key : operand -> string
(** Canonical textual key of an operand: ["v<id>"] or ["#<imm>"]. *)

val expr_key : t -> string option
(** Canonical value-numbering key of a pure expression, commutative
    operations normalised; [None] for instructions that are impure
    (divisions may trap, stores write memory) or carry no expression
    (moves).  Shared by local and global CSE and the available-expressions
    lattice ({!Dataflow.Avail}). *)

val pp_var : Format.formatter -> var -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
