type direction = Forward | Backward

type pos = { block : int; index : int }

module type ANALYSIS = sig
  type t

  val name : string
  val direction : direction
  val init : t
  val boundary : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val transfer : pos -> Instr.t -> t -> t
  val transfer_term : int -> Block.terminator -> t -> t
  val edge : (Block.t -> Block.label -> t -> t) option
  val widen : (t -> t -> t) option
end

let widen_threshold = 4

type 'a solution = {
  at_entry : 'a array;
  at_exit : 'a array;
  iterations : int;
}

(* --- the worklist solver ------------------------------------------------ *)

module Worklist = Set.Make (struct
  type t = int * int (* priority, block id *)

  let compare = compare
end)

let solve_raw (type a) (module A : ANALYSIS with type t = a) cfg : a solution =
  let n = Cfg.block_count cfg in
  let at_entry = Array.make n A.init in
  let at_exit = Array.make n A.init in
  (* processing order: reverse postorder for forward analyses, its
     reverse (postorder) for backward ones; blocks unreachable from the
     entry are absent and never visited *)
  let order =
    match A.direction with
    | Forward -> Cfg.reverse_postorder cfg
    | Backward -> List.rev (Cfg.reverse_postorder cfg)
  in
  let priority = Array.make n (-1) in
  List.iteri (fun k i -> priority.(i) <- k) order;
  let visits = Array.make n 0 in
  let iterations = ref 0 in
  let work = ref Worklist.empty in
  let push i = if priority.(i) >= 0 then work := Worklist.add (priority.(i), i) !work in
  List.iter push order;
  (* stored input/output arrays in *analysis* order *)
  let stored_in =
    match A.direction with Forward -> at_entry | Backward -> at_exit
  in
  let stored_out =
    match A.direction with Forward -> at_exit | Backward -> at_entry
  in
  let refine_edge pred_id target_id v =
    match A.edge with
    | None -> v
    | Some f ->
      f (Cfg.block cfg pred_id) (Cfg.block cfg target_id).Block.label v
  in
  (* join of the facts flowing into block [i] along analysis-order edges *)
  let input_of i =
    match A.direction with
    | Forward ->
      let base = if i = Cfg.entry cfg then A.boundary else A.init in
      List.fold_left
        (fun acc p -> A.join acc (refine_edge p i at_exit.(p)))
        base (Cfg.predecessors cfg i)
    | Backward -> (
      match Cfg.successors cfg i with
      | [] -> A.boundary (* Return terminator *)
      | succs ->
        List.fold_left
          (fun acc s -> A.join acc (refine_edge i s at_entry.(s)))
          A.init succs)
  in
  let apply_block i input =
    let b = Cfg.block cfg i in
    match A.direction with
    | Forward ->
      let acc = ref input in
      List.iteri
        (fun k instr -> acc := A.transfer { block = i; index = k } instr !acc)
        b.Block.instrs;
      A.transfer_term i b.Block.term !acc
    | Backward ->
      let acc = ref (A.transfer_term i b.Block.term input) in
      let instrs = Array.of_list b.Block.instrs in
      for k = Array.length instrs - 1 downto 0 do
        acc := A.transfer { block = i; index = k } instrs.(k) !acc
      done;
      !acc
  in
  let dependents i =
    match A.direction with
    | Forward -> Cfg.successors cfg i
    | Backward -> Cfg.predecessors cfg i
  in
  while not (Worklist.is_empty !work) do
    let ((_, i) as item) = Worklist.min_elt !work in
    work := Worklist.remove item !work;
    let input = input_of i in
    let input =
      match A.widen with
      | Some w when visits.(i) >= widen_threshold -> w stored_in.(i) input
      | Some _ | None -> input
    in
    let first = visits.(i) = 0 in
    visits.(i) <- visits.(i) + 1;
    (* block-level cache: an unchanged input needs no re-transfer *)
    if first || not (A.equal input stored_in.(i)) then begin
      incr iterations;
      stored_in.(i) <- input;
      let out = apply_block i input in
      let out_changed = not (A.equal out stored_out.(i)) in
      stored_out.(i) <- out;
      if first || out_changed then List.iter push (dependents i)
    end
  done;
  { at_entry; at_exit; iterations = !iterations }

let solve (type a) (module A : ANALYSIS with type t = a) cfg : a solution =
  if not (Hypar_obs.Sink.enabled ()) then solve_raw (module A) cfg
  else
    Hypar_obs.Span.with_ ~cat:"dataflow" ("dataflow." ^ A.name) (fun () ->
        let sol = solve_raw (module A) cfg in
        Hypar_obs.Counter.incr
          ("dataflow." ^ A.name ^ ".iterations")
          ~by:sol.iterations;
        sol)

(* One decreasing (narrowing) sweep.  A widened fixpoint sits above the
   least fixpoint; re-applying the (monotone) transfer functions from it
   descends back towards the least fixpoint while staying above it, so
   stopping after any number of sweeps is sound.  Edge refinement runs
   again too — this is what recovers branch-derived bounds that widening
   blew away. *)
let refine (type a) (module A : ANALYSIS with type t = a) cfg
    (sol : a solution) : a solution =
  let at_entry = Array.copy sol.at_entry in
  let at_exit = Array.copy sol.at_exit in
  let order =
    match A.direction with
    | Forward -> Cfg.reverse_postorder cfg
    | Backward -> List.rev (Cfg.reverse_postorder cfg)
  in
  let stored_in =
    match A.direction with Forward -> at_entry | Backward -> at_exit
  in
  let stored_out =
    match A.direction with Forward -> at_exit | Backward -> at_entry
  in
  let refine_edge pred_id target_id v =
    match A.edge with
    | None -> v
    | Some f ->
      f (Cfg.block cfg pred_id) (Cfg.block cfg target_id).Block.label v
  in
  let input_of i =
    match A.direction with
    | Forward ->
      let base = if i = Cfg.entry cfg then A.boundary else A.init in
      List.fold_left
        (fun acc p -> A.join acc (refine_edge p i at_exit.(p)))
        base (Cfg.predecessors cfg i)
    | Backward -> (
      match Cfg.successors cfg i with
      | [] -> A.boundary
      | succs ->
        List.fold_left
          (fun acc s -> A.join acc (refine_edge i s at_entry.(s)))
          A.init succs)
  in
  let apply_block i input =
    let b = Cfg.block cfg i in
    match A.direction with
    | Forward ->
      let acc = ref input in
      List.iteri
        (fun k instr -> acc := A.transfer { block = i; index = k } instr !acc)
        b.Block.instrs;
      A.transfer_term i b.Block.term !acc
    | Backward ->
      let acc = ref (A.transfer_term i b.Block.term input) in
      let instrs = Array.of_list b.Block.instrs in
      for k = Array.length instrs - 1 downto 0 do
        acc := A.transfer { block = i; index = k } instrs.(k) !acc
      done;
      !acc
  in
  List.iter
    (fun i ->
      let input = input_of i in
      stored_in.(i) <- input;
      stored_out.(i) <- apply_block i input)
    order;
  { at_entry; at_exit; iterations = sol.iterations }

let instr_facts (type a) (module A : ANALYSIS with type t = a) cfg
    (sol : a solution) i =
  let b = Cfg.block cfg i in
  match A.direction with
  | Forward ->
    (* fact immediately before each instruction *)
    let acc = ref sol.at_entry.(i) in
    List.mapi
      (fun k instr ->
        let before = !acc in
        acc := A.transfer { block = i; index = k } instr before;
        (instr, before))
      b.Block.instrs
  | Backward ->
    (* fact immediately after each instruction, in program order *)
    let instrs = Array.of_list b.Block.instrs in
    let m = Array.length instrs in
    let facts = Array.make m sol.at_exit.(i) in
    let acc = ref (A.transfer_term i b.Block.term sol.at_exit.(i)) in
    for k = m - 1 downto 0 do
      facts.(k) <- !acc;
      acc := A.transfer { block = i; index = k } instrs.(k) !acc
    done;
    Array.to_list (Array.mapi (fun k instr -> (instr, facts.(k))) instrs)

let term_fact (type a) (module A : ANALYSIS with type t = a) cfg
    (sol : a solution) i =
  let b = Cfg.block cfg i in
  match A.direction with
  | Forward ->
    let acc = ref sol.at_entry.(i) in
    List.iteri
      (fun k instr -> acc := A.transfer { block = i; index = k } instr !acc)
      b.Block.instrs;
    !acc
  | Backward -> A.transfer_term i b.Block.term sol.at_exit.(i)

(* --- shared containers -------------------------------------------------- *)

module Int_map = Map.Make (Int)
module String_map = Map.Make (String)
module Int_set = Set.Make (Int)

module Pos_set = Set.Make (struct
  type t = pos

  let compare = compare
end)

(* --- reaching definitions ----------------------------------------------- *)

module Reaching = struct
  type reaching = Pos_set.t Int_map.t
  type t = reaching

  let name = "reaching"
  let direction = Forward
  let init = Int_map.empty
  let boundary = Int_map.empty
  let join = Int_map.union (fun _ a b -> Some (Pos_set.union a b))
  let equal = Int_map.equal Pos_set.equal

  let transfer p instr env =
    match Instr.def instr with
    | Some d -> Int_map.add d.Instr.vid (Pos_set.singleton p) env
    | None -> env

  let transfer_term _ _ env = env
  let edge = None
  let widen = None

  let sites vid env =
    match Int_map.find_opt vid env with
    | Some s -> Pos_set.elements s
    | None -> []
end

(* --- available expressions ---------------------------------------------- *)

module Avail = struct
  type avail = All | Known of Instr.var String_map.t
  type t = avail

  let name = "avail"
  let direction = Forward
  let init = All
  let boundary = Known String_map.empty

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Known m1, Known m2 ->
      Known
        (String_map.merge
           (fun _ a b ->
             match (a, b) with
             | Some v1, Some v2 when Instr.var_equal v1 v2 -> Some v1
             | _ -> None)
           m1 m2)

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Known m1, Known m2 -> String_map.equal Instr.var_equal m1 m2
    | All, Known _ | Known _, All -> false

  (* does an expression key read this register?  operand keys are
     colon-separated ["v<id>"] / ["#<imm>"] atoms (see Instr.expr_key) *)
  let key_mentions key vid =
    let atom = "v" ^ string_of_int vid in
    List.mem atom (String.split_on_char ':' key)

  let kill_var m (v : Instr.var) =
    String_map.filter
      (fun key cached ->
        (not (Instr.var_equal cached v)) && not (key_mentions key v.Instr.vid))
      m

  let kill_array m arr =
    String_map.filter
      (fun key _ ->
        match String.split_on_char ':' key with
        | "load" :: a :: _ -> a <> arr
        | _ -> true)
      m

  let transfer _ instr t =
    match t with
    | All -> All
    | Known m ->
      if Instr.is_store instr then
        Known
          (match Instr.accessed_array instr with
          | Some arr -> kill_array m arr
          | None -> m)
      else
        let m =
          match Instr.def instr with Some d -> kill_var m d | None -> m
        in
        Known
          (match (Instr.expr_key instr, Instr.def instr) with
          | Some key, Some dst ->
            (* x = x + 1 is stale the moment it is computed *)
            let self_referential =
              List.exists
                (fun v -> Instr.var_equal v dst)
                (Instr.used_vars instr)
            in
            if self_referential then m else String_map.add key dst m
          | _ -> m)

  let transfer_term _ _ t = t
  let edge = None
  let widen = None

  let find key = function
    | All -> None
    | Known m -> String_map.find_opt key m
end

(* --- constant lattice ---------------------------------------------------- *)

module Consts = struct
  type consts = Unreached | Env of int Int_map.t
  type t = consts

  let name = "consts"
  let direction = Forward
  let init = Unreached
  let boundary = Env Int_map.empty

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env m1, Env m2 ->
      Env
        (Int_map.merge
           (fun _ a b ->
             match (a, b) with
             | Some x, Some y when x = y -> Some x
             | _ -> None)
           m1 m2)

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env m1, Env m2 -> Int_map.equal ( = ) m1 m2
    | Unreached, Env _ | Env _, Unreached -> false

  let value m = function
    | Instr.Imm n -> Some n
    | Instr.Var v -> Int_map.find_opt v.Instr.vid m

  let set (d : Instr.var) v m =
    match v with
    | Some n -> Int_map.add d.Instr.vid n m
    | None -> Int_map.remove d.Instr.vid m

  (* mirrors the folding decisions of Passes.const_fold: divisions only
     fold on a non-zero constant divisor, selects only on a constant
     condition *)
  let transfer _ instr t =
    match t with
    | Unreached -> Unreached
    | Env m ->
      Env
        (match instr with
        | Instr.Bin { dst; op; a; b } ->
          set dst
            (match (value m a, value m b) with
            | Some x, Some y -> Some (Types.eval_alu_op op x y)
            | _ -> None)
            m
        | Instr.Mul { dst; a; b } ->
          set dst
            (match (value m a, value m b) with
            | Some x, Some y -> Some (x * y)
            | _ -> None)
            m
        | Instr.Div { dst; a; b } ->
          set dst
            (match (value m a, value m b) with
            | Some x, Some y when y <> 0 -> Some (x / y)
            | _ -> None)
            m
        | Instr.Rem { dst; a; b } ->
          set dst
            (match (value m a, value m b) with
            | Some x, Some y when y <> 0 -> Some (x mod y)
            | _ -> None)
            m
        | Instr.Un { dst; op; a } ->
          set dst
            (match value m a with
            | Some x -> Some (Types.eval_un_op op x)
            | None -> None)
            m
        | Instr.Mov { dst; src } -> set dst (value m src) m
        | Instr.Select { dst; cond; if_true; if_false } ->
          set dst
            (match value m cond with
            | Some c -> value m (if c <> 0 then if_true else if_false)
            | None -> None)
            m
        | Instr.Load { dst; _ } -> set dst None m
        | Instr.Store _ -> m)

  let transfer_term _ _ t = t

  (* conditional constant propagation: the not-taken side of a branch
     whose condition is a known constant contributes nothing *)
  let edge =
    Some
      (fun (pred : Block.t) target v ->
        match v with
        | Unreached -> Unreached
        | Env m -> (
          match pred.Block.term with
          | Block.Branch { cond; if_true; if_false } when if_true <> if_false
            -> (
            match value m cond with
            | Some c ->
              let taken = if c <> 0 then if_true else if_false in
              if target = taken then v else Unreached
            | None -> v)
          | Block.Branch _ | Block.Jump _ | Block.Return _ -> v))

  let widen = None

  let find vid = function
    | Unreached -> None
    | Env m -> Int_map.find_opt vid m
end

(* --- copy lattice -------------------------------------------------------- *)

module Copies = struct
  type copies = All | Env of Instr.operand Int_map.t
  type t = copies

  let name = "copies"
  let direction = Forward
  let init = All
  let boundary = Env Int_map.empty

  let operand_equal a b =
    match (a, b) with
    | Instr.Var v1, Instr.Var v2 -> Instr.var_equal v1 v2
    | Instr.Imm n1, Instr.Imm n2 -> n1 = n2
    | (Instr.Var _ | Instr.Imm _), (Instr.Var _ | Instr.Imm _) -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Env m1, Env m2 ->
      Env
        (Int_map.merge
           (fun _ a b ->
             match (a, b) with
             | Some s1, Some s2 when operand_equal s1 s2 -> Some s1
             | _ -> None)
           m1 m2)

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Env m1, Env m2 -> Int_map.equal operand_equal m1 m2
    | All, Env _ | Env _, All -> false

  (* a redefinition of [d] kills both the copy *of* d and every copy
     *from* d *)
  let kill m (d : Instr.var) =
    Int_map.filter
      (fun vid src ->
        vid <> d.Instr.vid
        &&
        match src with
        | Instr.Var v -> v.Instr.vid <> d.Instr.vid
        | Instr.Imm _ -> true)
      m

  let transfer _ instr t =
    match t with
    | All -> All
    | Env m ->
      Env
        (match instr with
        | Instr.Mov { dst; src } -> (
          let m = kill m dst in
          match src with
          | Instr.Var v when v.Instr.vid = dst.Instr.vid -> m
          | src -> Int_map.add dst.Instr.vid src m)
        | instr -> (
          match Instr.def instr with Some d -> kill m d | None -> m))

  let transfer_term _ _ t = t
  let edge = None
  let widen = None

  let find vid = function
    | All -> None
    | Env m -> Int_map.find_opt vid m
end

(* --- definite assignment ------------------------------------------------- *)

module Assigned = struct
  type assigned = All | Known of Int_set.t
  type t = assigned

  let name = "assigned"
  let direction = Forward
  let init = All
  let boundary = Known Int_set.empty

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Known s1, Known s2 -> Known (Int_set.inter s1 s2)

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Known s1, Known s2 -> Int_set.equal s1 s2
    | All, Known _ | Known _, All -> false

  let transfer _ instr t =
    match t with
    | All -> All
    | Known s -> (
      match Instr.def instr with
      | Some d -> Known (Int_set.add d.Instr.vid s)
      | None -> t)

  let transfer_term _ _ t = t
  let edge = None
  let widen = None

  let mem vid = function All -> true | Known s -> Int_set.mem vid s
end

(* --- liveness ------------------------------------------------------------ *)

module Liveness = struct
  type live = Instr.var Int_map.t
  type t = live

  let name = "liveness"
  let direction = Backward
  let init = Int_map.empty
  let boundary = Int_map.empty
  let join = Int_map.union (fun _ v _ -> Some v)
  let equal = Int_map.equal (fun _ _ -> true)

  let add_operand op live =
    match op with
    | Instr.Var v -> Int_map.add v.Instr.vid v live
    | Instr.Imm _ -> live

  (* live-before = uses U (live-after \ def) *)
  let transfer _ instr live =
    let live =
      match Instr.def instr with
      | Some d -> Int_map.remove d.Instr.vid live
      | None -> live
    in
    List.fold_left
      (fun acc (v : Instr.var) -> Int_map.add v.Instr.vid v acc)
      live (Instr.used_vars instr)

  let transfer_term _ term live =
    match term with
    | Block.Jump _ | Block.Return None -> live
    | Block.Branch { cond; _ } -> add_operand cond live
    | Block.Return (Some op) -> add_operand op live

  let edge = None
  let widen = None
end
