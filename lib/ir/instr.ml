type var = { vname : string; vid : int; vwidth : Types.width }
type operand = Var of var | Imm of int

type t =
  | Bin of { dst : var; op : Types.alu_op; a : operand; b : operand }
  | Mul of { dst : var; a : operand; b : operand }
  | Div of { dst : var; a : operand; b : operand }
  | Rem of { dst : var; a : operand; b : operand }
  | Un of { dst : var; op : Types.un_op; a : operand }
  | Mov of { dst : var; src : operand }
  | Select of { dst : var; cond : operand; if_true : operand; if_false : operand }
  | Load of { dst : var; arr : string; index : operand }
  | Store of { arr : string; index : operand; value : operand }

let def = function
  | Bin { dst; _ }
  | Mul { dst; _ }
  | Div { dst; _ }
  | Rem { dst; _ }
  | Un { dst; _ }
  | Mov { dst; _ }
  | Select { dst; _ }
  | Load { dst; _ } ->
    Some dst
  | Store _ -> None

let uses = function
  | Bin { a; b; _ } | Mul { a; b; _ } | Div { a; b; _ } | Rem { a; b; _ } ->
    [ a; b ]
  | Un { a; _ } -> [ a ]
  | Mov { src; _ } -> [ src ]
  | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]
  | Load { index; _ } -> [ index ]
  | Store { index; value; _ } -> [ index; value ]

let used_vars i =
  List.filter_map (function Var v -> Some v | Imm _ -> None) (uses i)

let op_class = function
  | Bin _ | Un _ -> Types.Class_alu
  | Mul _ -> Types.Class_mul
  | Div _ | Rem _ -> Types.Class_div
  | Load _ | Store _ -> Types.Class_mem
  | Mov _ | Select _ -> Types.Class_move

let accessed_array = function
  | Load { arr; _ } | Store { arr; _ } -> Some arr
  | Bin _ | Mul _ | Div _ | Rem _ | Un _ | Mov _ | Select _ -> None

let is_store = function
  | Store _ -> true
  | Bin _ | Mul _ | Div _ | Rem _ | Un _ | Mov _ | Select _ | Load _ -> false

let is_load = function
  | Load _ -> true
  | Bin _ | Mul _ | Div _ | Rem _ | Un _ | Mov _ | Select _ | Store _ -> false

let mnemonic = function
  | Bin { op; _ } -> Types.string_of_alu_op op
  | Mul _ -> "mul"
  | Div _ -> "div"
  | Rem _ -> "rem"
  | Un { op; _ } -> Types.string_of_un_op op
  | Mov _ -> "mov"
  | Select _ -> "select"
  | Load _ -> "load"
  | Store _ -> "store"

let var_equal v1 v2 = v1.vid = v2.vid

let operand_key = function
  | Var v -> Printf.sprintf "v%d" v.vid
  | Imm n -> Printf.sprintf "#%d" n

let expr_key (instr : t) : string option =
  match instr with
  | Bin { op; a; b; _ } ->
    (* exploit commutativity for a canonical key *)
    let ka = operand_key a and kb = operand_key b in
    let ka, kb =
      match op with
      | Types.Add | Types.And | Types.Or | Types.Xor | Types.Eq | Types.Ne
      | Types.Min | Types.Max ->
        if ka <= kb then (ka, kb) else (kb, ka)
      | Types.Sub | Types.Shl | Types.Shr | Types.Ashr | Types.Lt | Types.Le
      | Types.Gt | Types.Ge ->
        (ka, kb)
    in
    Some (Printf.sprintf "bin:%s:%s:%s" (Types.string_of_alu_op op) ka kb)
  | Mul { a; b; _ } ->
    let ka = operand_key a and kb = operand_key b in
    let ka, kb = if ka <= kb then (ka, kb) else (kb, ka) in
    Some (Printf.sprintf "mul:%s:%s" ka kb)
  | Un { op; a; _ } ->
    Some (Printf.sprintf "un:%s:%s" (Types.string_of_un_op op) (operand_key a))
  | Select { cond; if_true; if_false; _ } ->
    Some
      (Printf.sprintf "sel:%s:%s:%s" (operand_key cond) (operand_key if_true)
         (operand_key if_false))
  | Load { arr; index; _ } ->
    Some (Printf.sprintf "load:%s:%s" arr (operand_key index))
  | Div _ | Rem _ | Mov _ | Store _ -> None

let pp_var ppf v = Format.fprintf ppf "%s#%d" v.vname v.vid

let pp_operand ppf = function
  | Var v -> pp_var ppf v
  | Imm n -> Format.pp_print_int ppf n

let pp ppf i =
  let p fmt = Format.fprintf ppf fmt in
  match i with
  | Bin { dst; op; a; b } ->
    p "%a = %s %a, %a" pp_var dst (Types.string_of_alu_op op) pp_operand a
      pp_operand b
  | Mul { dst; a; b } -> p "%a = mul %a, %a" pp_var dst pp_operand a pp_operand b
  | Div { dst; a; b } -> p "%a = div %a, %a" pp_var dst pp_operand a pp_operand b
  | Rem { dst; a; b } -> p "%a = rem %a, %a" pp_var dst pp_operand a pp_operand b
  | Un { dst; op; a } ->
    p "%a = %s %a" pp_var dst (Types.string_of_un_op op) pp_operand a
  | Mov { dst; src } -> p "%a = %a" pp_var dst pp_operand src
  | Select { dst; cond; if_true; if_false } ->
    p "%a = select %a ? %a : %a" pp_var dst pp_operand cond pp_operand if_true
      pp_operand if_false
  | Load { dst; arr; index } -> p "%a = %s[%a]" pp_var dst arr pp_operand index
  | Store { arr; index; value } ->
    p "%s[%a] = %a" arr pp_operand index pp_operand value

let to_string i = Format.asprintf "%a" pp i
