type invariant =
  | Entry_reachable
  | Terminators_resolve
  | Dfg_well_formed
  | Defs_before_uses
  | Liveness_consistent
  | Arrays_declared
  | Roundtrip_stable

let all_invariants =
  [
    Entry_reachable; Terminators_resolve; Dfg_well_formed; Defs_before_uses;
    Liveness_consistent; Arrays_declared; Roundtrip_stable;
  ]

let invariant_name = function
  | Entry_reachable -> "entry-reachable"
  | Terminators_resolve -> "terminators-resolve"
  | Dfg_well_formed -> "dfg-well-formed"
  | Defs_before_uses -> "defs-before-uses"
  | Liveness_consistent -> "liveness-consistent"
  | Arrays_declared -> "arrays-declared"
  | Roundtrip_stable -> "roundtrip-stable"

type violation = { invariant : invariant; where : string; detail : string }

exception Failed of { context : string; violations : violation list }

let violation invariant where fmt =
  Format.kasprintf (fun detail -> { invariant; where; detail }) fmt

let pp_violation ppf v =
  Format.fprintf ppf "%s(%s): %s" (invariant_name v.invariant) v.where v.detail

let report violations =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_violation) violations)

let () =
  Printexc.register_printer (function
    | Failed { context; violations } ->
      Some
        (Printf.sprintf "IR verification failed after %S:\n%s" context
           (report violations))
    | _ -> None)

(* --- raw block lists ---------------------------------------------------- *)

let check_blocks (blocks : Block.t list) =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  (match blocks with
  | [] -> add (violation Entry_reachable "<program>" "no blocks: no entry block")
  | _ :: _ -> ());
  let labels : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem labels b.label then
        add (violation Terminators_resolve b.label "duplicate block label")
      else Hashtbl.replace labels b.label ())
    blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun target ->
          if not (Hashtbl.mem labels target) then
            add
              (violation Terminators_resolve b.label
                 "terminator targets unknown label %S" target))
        (Block.successor_labels b))
    blocks;
  List.rev !acc

(* --- per-block DFGs ----------------------------------------------------- *)

let check_dfg_against (block : Block.t) (dfg : Dfg.t) =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  let where = block.Block.label in
  let n = Dfg.node_count dfg in
  let instrs = Array.of_list block.Block.instrs in
  if n <> Array.length instrs then
    add
      (violation Dfg_well_formed where "%d DFG nodes for %d instructions" n
         (Array.length instrs))
  else
    List.iter
      (fun (node : Dfg.node) ->
        if node.instr <> instrs.(node.id) then
          add
            (violation Dfg_well_formed where
               "node %d is %s but instruction %d is %s" node.id
               (Instr.to_string node.instr) node.id
               (Instr.to_string instrs.(node.id))))
      (Dfg.nodes dfg);
  if not (Dfg.is_well_formed dfg) then
    add (violation Dfg_well_formed where "a dependence edge points backward");
  for i = 0 to n - 1 do
    List.iter
      (fun j ->
        if j < 0 || j >= n then
          add (violation Dfg_well_formed where "edge %d->%d leaves the block" i j)
        else begin
          if j <= i then
            add
              (violation Dfg_well_formed where
                 "edge %d->%d is not forward in program order" i j);
          if not (List.mem i (Dfg.preds dfg j)) then
            add
              (violation Dfg_well_formed where
                 "edge %d->%d missing from predecessor lists" i j)
        end)
      (Dfg.succs dfg i)
  done;
  List.rev !acc

(* --- register definition discipline ------------------------------------- *)

let var_set_of_list vars =
  List.sort_uniq compare
    (List.map (fun (v : Instr.var) -> (v.vid, v.vname)) vars)

let pp_var_set vars =
  String.concat ", "
    (List.map (fun (vid, vname) -> Printf.sprintf "%s#%d" vname vid) vars)

let defs_before_uses (cfg : Cfg.t) =
  let live = Live.analyse cfg in
  match var_set_of_list (Live.live_in live (Cfg.entry cfg)) with
  | [] -> []
  | undefined ->
    let entry_label = (Cfg.block cfg (Cfg.entry cfg)).Block.label in
    [
      violation Defs_before_uses entry_label
        "registers read before any definition: %s" (pp_var_set undefined);
    ]

(* --- liveness data-flow equations ---------------------------------------- *)

let block_defs (b : Block.t) =
  List.filter_map Instr.def b.Block.instrs

let reachable_set cfg =
  let seen = Array.make (Cfg.block_count cfg) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (Cfg.successors cfg i)
    end
  in
  go (Cfg.entry cfg);
  seen

let check_liveness cfg ~live_in ~live_out =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  (* the data-flow equations only constrain blocks the fixpoint visits:
     blocks a pass has disconnected (constant-folded branches, before
     simplify_cfg prunes them) carry no liveness obligations *)
  let reachable = reachable_set cfg in
  for b = 0 to Cfg.block_count cfg - 1 do
    if reachable.(b) then begin
      let block = Cfg.block cfg b in
      let where = block.Block.label in
      let defs = var_set_of_list (block_defs block) in
      let uses = var_set_of_list (Live.use_set cfg b) in
      let l_in = var_set_of_list (live_in b) in
      let l_out = var_set_of_list (live_out b) in
      let expect_in =
        List.sort_uniq compare
          (uses @ List.filter (fun v -> not (List.mem v defs)) l_out)
      in
      if l_in <> expect_in then
        add
          (violation Liveness_consistent where
             "live-in {%s} but use+(out-def) gives {%s}" (pp_var_set l_in)
             (pp_var_set expect_in));
      let expect_out =
        List.sort_uniq compare
          (List.concat_map
             (fun s -> var_set_of_list (live_in s))
             (Cfg.successors cfg b))
      in
      if l_out <> expect_out then
        add
          (violation Liveness_consistent where
             "live-out {%s} but successors give {%s}" (pp_var_set l_out)
             (pp_var_set expect_out))
    end
  done;
  List.rev !acc

(* --- array discipline ---------------------------------------------------- *)

let check_arrays (cdfg : Cdfg.t) =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  Array.iter
    (fun (bi : Cdfg.block_info) ->
      List.iter
        (fun instr ->
          match Instr.accessed_array instr with
          | None -> ()
          | Some arr -> (
            match Cdfg.array_decl cdfg arr with
            | None ->
              add
                (violation Arrays_declared bi.block.Block.label
                   "access to undeclared array %S" arr)
            | Some d ->
              if d.Cdfg.is_const && Instr.is_store instr then
                add
                  (violation Arrays_declared bi.block.Block.label
                     "store to const array %S" arr)))
        bi.block.Block.instrs)
    (Cdfg.infos cdfg);
  List.rev !acc

(* --- serialisation round-trip -------------------------------------------- *)

let structural_diff (a : Cdfg.t) (b : Cdfg.t) =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  if Cdfg.name a <> Cdfg.name b then
    add
      (violation Roundtrip_stable "<program>" "name %S became %S" (Cdfg.name a)
         (Cdfg.name b));
  if Cdfg.arrays a <> Cdfg.arrays b then
    add (violation Roundtrip_stable "<program>" "array declarations differ");
  let ba = Cfg.blocks (Cdfg.cfg a) and bb = Cfg.blocks (Cdfg.cfg b) in
  if Array.length ba <> Array.length bb then
    add
      (violation Roundtrip_stable "<program>" "%d blocks became %d"
         (Array.length ba) (Array.length bb))
  else
    Array.iteri
      (fun i (orig : Block.t) ->
        let got = bb.(i) in
        if orig.Block.label <> got.Block.label then
          add
            (violation Roundtrip_stable orig.Block.label "label became %S"
               got.Block.label)
        else if orig <> got then
          add
            (violation Roundtrip_stable orig.Block.label
               "instructions or terminator changed"))
      ba;
  List.rev !acc

let check_roundtrip cdfg =
  match Serialize.of_string (Serialize.to_string cdfg) with
  | reparsed -> structural_diff cdfg reparsed
  | exception Serialize.Parse_error msg ->
    [ violation Roundtrip_stable "<program>" "reparse failed: %s" msg ]
  | exception Cfg.Malformed msg ->
    [ violation Roundtrip_stable "<program>" "reparse rejected the CFG: %s" msg ]

(* --- the full check ------------------------------------------------------ *)

let check (cdfg : Cdfg.t) =
  let cfg = Cdfg.cfg cdfg in
  let blocks = Array.to_list (Cfg.blocks cfg) in
  let structural = check_blocks blocks in
  (* downstream checks assume a resolvable CFG *)
  if structural <> [] then structural
  else begin
    let live = Live.analyse cfg in
    List.concat
      [
        List.concat_map
          (fun (bi : Cdfg.block_info) -> check_dfg_against bi.block bi.dfg)
          (Array.to_list (Cdfg.infos cdfg));
        defs_before_uses cfg;
        check_liveness cfg
          ~live_in:(Live.live_in live)
          ~live_out:(Live.live_out live);
        check_arrays cdfg;
        check_roundtrip cdfg;
      ]
  end

let check_exn ~context cdfg =
  match check cdfg with
  | [] -> ()
  | violations -> raise (Failed { context; violations })
