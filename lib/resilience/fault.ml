type unit_kind = Mult | Alu | Both

type fault =
  | Dead_node of { cgc : int; row : int; col : int; unit_kind : unit_kind }
  | Dead_cgc of int
  | Area_loss of [ `Percent of int | `Units of int ]
  | Comm_slowdown of int
  | Transient of { permille : int; max_failures : int }

type spec = { seed : int; faults : fault list }

let empty = { seed = 0; faults = [] }

let unit_kind_string = function Mult -> "mult" | Alu -> "alu" | Both -> "both"

let fault_string = function
  | Dead_node { cgc; row; col; unit_kind } ->
    Printf.sprintf "dead-node %d %d %d %s" cgc row col
      (unit_kind_string unit_kind)
  | Dead_cgc k -> Printf.sprintf "dead-cgc %d" k
  | Area_loss (`Percent p) -> Printf.sprintf "area-loss %d%%" p
  | Area_loss (`Units u) -> Printf.sprintf "area-loss %d" u
  | Comm_slowdown pct -> Printf.sprintf "comm-slowdown %d" pct
  | Transient { permille; max_failures } ->
    Printf.sprintf "transient %d %d" permille max_failures

let transient spec =
  List.find_map
    (function
      | Transient { permille; max_failures } -> Some (permille, max_failures)
      | _ -> None)
    spec.faults

(* FNV-1a over the seed, the point key and the attempt number: transient
   failures are a pure function of (spec, point, attempt), so a re-run —
   and a resumed run — sees exactly the same fault pattern. *)
let hash seed key attempt =
  let h = ref 0x811c9dc5 in
  let mix byte = h := (!h lxor byte) * 0x01000193 land 0x3FFFFFFF in
  let mix_int n =
    mix (n land 0xff);
    mix ((n lsr 8) land 0xff);
    mix ((n lsr 16) land 0xff);
    mix ((n lsr 24) land 0xff)
  in
  mix_int seed;
  String.iter (fun c -> mix (Char.code c)) key;
  mix_int attempt;
  !h

let transient_should_fail spec ~key ~attempt =
  match transient spec with
  | None -> false
  | Some (permille, max_failures) ->
    attempt <= max_failures && hash spec.seed key attempt mod 1000 < permille

let pp_fault ppf f = Format.pp_print_string ppf (fault_string f)

let pp ppf spec =
  Format.fprintf ppf "@[<v>seed %d@,%a@]" spec.seed
    (Format.pp_print_list pp_fault)
    spec.faults
