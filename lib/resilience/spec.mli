(** Text and JSON representations of fault specifications.

    The text syntax is one directive per line ([#] starts a comment):
    {v
    seed N
    dead-node CGC ROW COL [mult|alu|both]
    dead-cgc CGC
    area-loss N%  |  area-loss N
    comm-slowdown PCT
    transient PERMILLE MAX
    v}
    {!of_string} and {!to_text} round-trip: parsing the printed form of
    any spec yields the same spec. *)

val syntax_help : string
(** Human-readable summary of the grammar above. *)

val of_string : string -> (Fault.spec, string) result
(** Parse a spec; errors are located as ["line N: message"]. *)

val load : string -> (Fault.spec, string) result
(** {!of_string} on a file's contents; errors are prefixed with the
    path. *)

val to_text : Fault.spec -> string
(** Canonical text form ([seed] line first, faults in order). *)

val to_json : Fault.spec -> string
(** One-line JSON object [{"seed": N, "faults": [...]}]. *)
