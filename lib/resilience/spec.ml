let syntax_help =
  "fault spec syntax (one directive per line, '#' starts a comment):\n\
  \  seed N                          deterministic seed for transient faults\n\
  \  dead-node CGC ROW COL [KIND]    kill a node (KIND: mult|alu|both)\n\
  \  dead-cgc CGC                    kill a whole CGC component\n\
  \  area-loss N% | area-loss N      shrink the FPGA area\n\
  \  comm-slowdown PCT               scale comm costs to PCT% (>= 100)\n\
  \  transient PERMILLE MAX          fail evaluations PERMILLE/1000 of the\n\
  \                                  time, at most MAX times per point"

let error line fmt =
  Format.kasprintf (fun msg -> Error (Printf.sprintf "line %d: %s" line msg)) fmt

let int_arg line what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> error line "%s: expected an integer, got %S" what s

let nat_arg line what s =
  match int_arg line what s with
  | Ok n when n >= 0 -> Ok n
  | Ok n -> error line "%s: must be non-negative, got %d" what n
  | Error _ as e -> e

let ( let* ) = Result.bind

let parse_fault line words =
  match words with
  | [ "dead-cgc"; k ] ->
    let* k = nat_arg line "dead-cgc" k in
    Ok (Fault.Dead_cgc k)
  | "dead-cgc" :: _ -> error line "dead-cgc takes exactly one argument"
  | "dead-node" :: cgc :: row :: col :: rest ->
    let* cgc = nat_arg line "dead-node cgc" cgc in
    let* row = nat_arg line "dead-node row" row in
    let* col = nat_arg line "dead-node col" col in
    let* unit_kind =
      match rest with
      | [] | [ "both" ] -> Ok Fault.Both
      | [ "mult" ] -> Ok Fault.Mult
      | [ "alu" ] -> Ok Fault.Alu
      | [ k ] -> error line "dead-node: unknown unit kind %S (mult|alu|both)" k
      | _ -> error line "dead-node takes at most four arguments"
    in
    Ok (Fault.Dead_node { cgc; row; col; unit_kind })
  | "dead-node" :: _ ->
    error line "dead-node needs CGC ROW COL [mult|alu|both]"
  | [ "area-loss"; amount ] ->
    if String.length amount > 1 && amount.[String.length amount - 1] = '%' then
      let* p =
        nat_arg line "area-loss" (String.sub amount 0 (String.length amount - 1))
      in
      if p > 100 then error line "area-loss: percentage must be <= 100"
      else Ok (Fault.Area_loss (`Percent p))
    else
      let* u = nat_arg line "area-loss" amount in
      Ok (Fault.Area_loss (`Units u))
  | "area-loss" :: _ -> error line "area-loss takes exactly one argument"
  | [ "comm-slowdown"; pct ] ->
    let* pct = int_arg line "comm-slowdown" pct in
    if pct < 100 then error line "comm-slowdown: percentage must be >= 100"
    else Ok (Fault.Comm_slowdown pct)
  | "comm-slowdown" :: _ -> error line "comm-slowdown takes exactly one argument"
  | [ "transient"; permille; max_failures ] ->
    let* permille = nat_arg line "transient permille" permille in
    let* max_failures = nat_arg line "transient max-failures" max_failures in
    if permille > 1000 then error line "transient: permille must be <= 1000"
    else Ok (Fault.Transient { permille; max_failures })
  | "transient" :: _ -> error line "transient needs PERMILLE MAX-FAILURES"
  | directive :: _ -> error line "unknown directive %S" directive
  | [] -> assert false

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let words_of s =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno seed faults = function
    | [] -> Ok { Fault.seed; faults = List.rev faults }
    | raw :: rest -> (
      match words_of (strip_comment raw) with
      | [] -> go (lineno + 1) seed faults rest
      | [ "seed"; n ] ->
        let* n = nat_arg lineno "seed" n in
        go (lineno + 1) n faults rest
      | "seed" :: _ -> error lineno "seed takes exactly one argument"
      | words ->
        let* f = parse_fault lineno words in
        go (lineno + 1) seed (f :: faults) rest)
  in
  go 1 0 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match of_string text with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let to_text (spec : Fault.spec) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "seed %d\n" spec.Fault.seed);
  List.iter
    (fun f -> Buffer.add_string buf (Fault.fault_string f ^ "\n"))
    spec.Fault.faults;
  Buffer.contents buf

let json_fault f =
  let obj fields =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
    ^ "}"
  in
  match f with
  | Fault.Dead_node { cgc; row; col; unit_kind } ->
    obj
      [
        ("kind", {|"dead-node"|});
        ("cgc", string_of_int cgc);
        ("row", string_of_int row);
        ("col", string_of_int col);
        ("unit", Printf.sprintf "%S" (Fault.unit_kind_string unit_kind));
      ]
  | Fault.Dead_cgc k -> obj [ ("kind", {|"dead-cgc"|}); ("cgc", string_of_int k) ]
  | Fault.Area_loss (`Percent p) ->
    obj [ ("kind", {|"area-loss"|}); ("percent", string_of_int p) ]
  | Fault.Area_loss (`Units u) ->
    obj [ ("kind", {|"area-loss"|}); ("units", string_of_int u) ]
  | Fault.Comm_slowdown pct ->
    obj [ ("kind", {|"comm-slowdown"|}); ("percent", string_of_int pct) ]
  | Fault.Transient { permille; max_failures } ->
    obj
      [
        ("kind", {|"transient"|});
        ("permille", string_of_int permille);
        ("max_failures", string_of_int max_failures);
      ]

let to_json (spec : Fault.spec) =
  Printf.sprintf "{\"seed\": %d, \"faults\": [%s]}" spec.Fault.seed
    (String.concat ", " (List.map json_fault spec.Fault.faults))
