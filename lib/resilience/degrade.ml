module Cgc = Hypar_coarsegrain.Cgc
module Fpga = Hypar_finegrain.Fpga
module Platform = Hypar_core.Platform
module Comm = Hypar_core.Comm

let counter_of = function
  | Fault.Dead_node _ -> "resilience.fault.dead_node"
  | Fault.Dead_cgc _ -> "resilience.fault.dead_cgc"
  | Fault.Area_loss _ -> "resilience.fault.area_loss"
  | Fault.Comm_slowdown _ -> "resilience.fault.comm_slowdown"
  | Fault.Transient _ -> "resilience.fault.transient"

let ceil_pct v pct = ((v * pct) + 99) / 100

type state = {
  health : Cgc.health;
  fpga : Fpga.t;
  comm : Comm.model;
  touched : bool;  (* any platform-affecting fault applied *)
}

let apply_fault ~strict cgc st f =
  let skip msg = if strict then Error msg else Ok st in
  match f with
  | Fault.Dead_node { cgc = k; row; col; unit_kind } ->
    if k < 0 || k >= cgc.Cgc.cgcs then
      skip (Printf.sprintf "dead-node: CGC %d out of range [0, %d)" k cgc.Cgc.cgcs)
    else if row < 0 || row >= cgc.Cgc.rows then
      skip (Printf.sprintf "dead-node: row %d out of range [0, %d)" row cgc.Cgc.rows)
    else if col < 0 || col >= cgc.Cgc.cols then
      skip (Printf.sprintf "dead-node: col %d out of range [0, %d)" col cgc.Cgc.cols)
    else
      let health =
        match unit_kind with
        | Fault.Both -> Cgc.kill_node cgc st.health ~cgc:k ~row ~col
        | Fault.Mult -> Cgc.kill_unit cgc st.health ~cgc:k ~row ~col ~mul:true
        | Fault.Alu -> Cgc.kill_unit cgc st.health ~cgc:k ~row ~col ~mul:false
      in
      Ok { st with health; touched = true }
  | Fault.Dead_cgc k ->
    if k < 0 || k >= cgc.Cgc.cgcs then
      skip (Printf.sprintf "dead-cgc: CGC %d out of range [0, %d)" k cgc.Cgc.cgcs)
    else Ok { st with health = Cgc.kill_cgc cgc st.health ~cgc:k; touched = true }
  | Fault.Area_loss loss ->
    let area =
      match loss with
      | `Percent p -> st.fpga.Fpga.area - ceil_pct st.fpga.Fpga.area p
      | `Units u -> st.fpga.Fpga.area - u
    in
    (* never drop below one CLB: a 100% loss leaves a minimal FPGA rather
       than an unconstructible platform *)
    let fpga = { st.fpga with Fpga.area = max 1 area } in
    Ok { st with fpga; touched = true }
  | Fault.Comm_slowdown pct ->
    let comm =
      {
        st.comm with
        Comm.cycles_per_word = ceil_pct st.comm.Comm.cycles_per_word pct;
        fixed_overhead = ceil_pct st.comm.Comm.fixed_overhead pct;
      }
    in
    Ok { st with comm; touched = true }
  | Fault.Transient _ ->
    (* injected at evaluation time, not a platform property *)
    Ok st

let apply ?(strict = true) (spec : Fault.spec) (platform : Platform.t) =
  let cgc = platform.Platform.cgc in
  let init =
    {
      health =
        (match platform.Platform.cgc_health with
        | Some h ->
          {
            Cgc.col_rows = Array.copy h.Cgc.col_rows;
            no_mul = h.Cgc.no_mul;
            no_alu = h.Cgc.no_alu;
          }
        | None -> Cgc.full_health cgc);
      fpga = platform.Platform.fpga;
      comm = platform.Platform.comm;
      touched = false;
    }
  in
  let rec fold st = function
    | [] -> Ok st
    | f :: rest -> (
      match apply_fault ~strict cgc st f with
      | Ok st' ->
        if st' != st then Hypar_obs.Counter.incr (counter_of f);
        fold st' rest
      | Error _ as e -> e)
  in
  match fold init spec.Fault.faults with
  | Error _ as e -> e
  | Ok st ->
    if not st.touched then Ok platform
    else
      Ok
        {
          platform with
          Platform.name = platform.Platform.name ^ " [degraded]";
          fpga = st.fpga;
          comm = st.comm;
          cgc_health = Some st.health;
        }
