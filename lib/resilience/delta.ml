module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform

type t = {
  healthy : Engine.t;
  degraded : Engine.t;
  fallback_kernels : int list;
  t_total_delta : int;
  slowdown_percent : float;
}

let of_runs ~healthy ~degraded =
  let fallback_kernels =
    List.filter
      (fun b -> not (List.mem b degraded.Engine.moved))
      healthy.Engine.moved
  in
  let t_total_delta =
    degraded.Engine.final.Engine.t_total - healthy.Engine.final.Engine.t_total
  in
  let slowdown_percent =
    if healthy.Engine.final.Engine.t_total = 0 then 0.0
    else
      100.0 *. float_of_int t_total_delta
      /. float_of_int healthy.Engine.final.Engine.t_total
  in
  { healthy; degraded; fallback_kernels; t_total_delta; slowdown_percent }

let run ?comm_pricing ?cgc_pipelining ?granularity (spec : Fault.spec)
    (platform : Platform.t) ~timing_constraint cdfg profile =
  match Degrade.apply spec platform with
  | Error _ as e -> e
  | Ok degraded_platform ->
    Hypar_obs.Span.with_ ~cat:"resilience" "resilience.delta" @@ fun () ->
    let go p =
      Engine.run ?comm_pricing ?cgc_pipelining ?granularity p
        ~timing_constraint cdfg profile
    in
    Ok (of_runs ~healthy:(go platform) ~degraded:(go degraded_platform))

let status_string = function
  | Engine.Met_without_partitioning -> "met without partitioning"
  | Engine.Met_after k -> Printf.sprintf "met after %d movement(s)" k
  | Engine.Infeasible -> "infeasible"

let pp ppf t =
  Format.fprintf ppf "@[<v>degradation delta for %s:@,"
    t.healthy.Engine.cdfg_name;
  Format.fprintf ppf "  healthy : t_total=%d (%s)@,"
    t.healthy.Engine.final.Engine.t_total
    (status_string t.healthy.Engine.status);
  Format.fprintf ppf "  degraded: t_total=%d (%s)@,"
    t.degraded.Engine.final.Engine.t_total
    (status_string t.degraded.Engine.status);
  Format.fprintf ppf "  delta   : %+d cycles (%+.1f%%)@," t.t_total_delta
    t.slowdown_percent;
  (match t.fallback_kernels with
  | [] -> Format.fprintf ppf "  fallback: none@,"
  | ks ->
    Format.fprintf ppf "  fallback: %s@,"
      (String.concat ", "
         (List.map (fun b -> Printf.sprintf "BB%d" b) ks)));
  List.iter
    (fun (b, reason) ->
      Format.fprintf ppf "  degraded skip BB%d: %s@," b
        (Engine.skip_reason_string reason))
    t.degraded.Engine.skipped;
  Format.fprintf ppf "@]"

let to_json t =
  Printf.sprintf
    "{\"app\": %S, \"healthy_t_total\": %d, \"degraded_t_total\": %d, \
     \"delta\": %d, \"slowdown_percent\": %.1f, \"fallback_kernels\": [%s], \
     \"healthy_status\": %S, \"degraded_status\": %S}"
    t.healthy.Engine.cdfg_name t.healthy.Engine.final.Engine.t_total
    t.degraded.Engine.final.Engine.t_total t.t_total_delta t.slowdown_percent
    (String.concat ", " (List.map string_of_int t.fallback_kernels))
    (status_string t.healthy.Engine.status)
    (status_string t.degraded.Engine.status)
