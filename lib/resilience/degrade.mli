(** Apply a fault specification to a platform.

    The transform is pure: the input platform is never mutated; the
    result carries a fresh {!Hypar_coarsegrain.Cgc.health} mask, a
    possibly shrunken FPGA and a possibly slowed communication model, and
    its name gains a [" [degraded]"] suffix when any platform-affecting
    fault applied.  [Transient] faults are evaluation-time phenomena and
    leave the platform untouched.

    Each applied fault increments a [resilience.fault.*] counter
    ({!Hypar_obs.Counter}). *)

val apply :
  ?strict:bool ->
  Fault.spec ->
  Hypar_core.Platform.t ->
  (Hypar_core.Platform.t, string) result
(** [apply spec platform] degrades [platform] per [spec].  With [strict]
    (the default) a fault naming hardware the platform does not have
    (CGC/row/col out of range) is an error; with [~strict:false] such
    faults are silently skipped — the right mode for design-space sweeps
    where the same spec is applied across differently-sized platforms.
    FPGA area is clamped to at least one unit. *)
