(** Healthy-vs-degraded partitioning comparison.

    Runs the Figure-2 engine twice — once on the intact platform, once on
    the {!Degrade}d one — and reports the damage: the [t_total] delta,
    the relative slowdown, and the kernels that moved to the CGC on the
    healthy platform but fell back to the FPGA under degradation. *)

type t = {
  healthy : Hypar_core.Engine.t;
  degraded : Hypar_core.Engine.t;
  fallback_kernels : int list;
      (** moved on the healthy platform, not on the degraded one *)
  t_total_delta : int;  (** degraded minus healthy final [t_total] *)
  slowdown_percent : float;
}

val of_runs :
  healthy:Hypar_core.Engine.t -> degraded:Hypar_core.Engine.t -> t

val run :
  ?comm_pricing:[ `Transition | `Per_invocation ] ->
  ?cgc_pipelining:bool ->
  ?granularity:[ `Block | `Loop ] ->
  Fault.spec ->
  Hypar_core.Platform.t ->
  timing_constraint:int ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  (t, string) result
(** Degrades the platform ({!Degrade.apply}, strict) and partitions on
    both.  [Error] only when the spec does not fit the platform. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
