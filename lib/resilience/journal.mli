(** Crash-safe, append-only line journal.

    The file starts with a header line identifying the journal kind;
    every entry is a single length-prefixed line, flushed on write.  A
    process killed mid-append leaves at most one torn line, which
    {!load} silently drops — so a journal written up to any kill point
    loads cleanly and a resumed run continues from the last complete
    entry.  [append] is safe to call from multiple domains (an internal
    mutex serialises writers). *)

type t

val create : ?resume:bool -> header:string -> string -> (t, string) result
(** [create ~header path] opens a fresh journal, truncating any existing
    file and writing the header.  With [~resume:true] an existing file is
    validated against [header] and opened for append instead (a missing
    file is created fresh). *)

val append : t -> string -> unit
(** Append one entry and flush.  The payload must not contain newlines
    ([Invalid_argument] otherwise, also after {!close}). *)

val close : t -> unit
(** Idempotent. *)

val load : header:string -> string -> (string list, string) result
(** Entries of a journal file, in write order, torn trailing line
    dropped.  A missing file is [Ok []]; a file with a different header
    is an [Error]. *)
