(** Bounded retry with deterministic exponential backoff.

    Wraps a fallible computation and re-runs it on [Error] up to a fixed
    number of times.  Each retry increments the [resilience.retry]
    counter and waits [backoff_us * 2^(attempt-1)] microseconds — with
    the default [backoff_us = 0] no time passes, so retried runs stay
    fully deterministic. *)

val delay_us : backoff_us:int -> attempt:int -> int
(** The backoff schedule itself: [backoff_us * 2^(attempt-1)], with the
    exponent capped at 20 so the wait never overflows.  Exposed so other
    supervisory loops (the serve pool's worker respawn) share one policy
    instead of reinventing it.  Raises [Invalid_argument] when
    [attempt < 1]. *)

val run :
  ?retries:int ->
  ?backoff_us:int ->
  ?on_retry:(attempt:int -> string -> unit) ->
  (int -> ('a, string) result) ->
  ('a, string) result
(** [run f] calls [f attempt] with 1-based attempt numbers until it
    returns [Ok] or [retries] (default 0) re-attempts are exhausted; the
    last [Error] is returned as-is.  [on_retry] observes each failure
    that will be retried.  Raises [Invalid_argument] on negative
    [retries]; exceptions from [f] propagate — convert them to [Error]
    first if they should be retried. *)
