type t = { oc : out_channel; lock : Mutex.t; mutable closed : bool }

let header_line header = "# " ^ header

(* Each entry is written as "LEN:PAYLOAD\n".  A crash mid-append leaves a
   short final line whose payload length disagrees with its prefix; [load]
   drops exactly those, so a journal is always usable after a kill. *)
let encode payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.append: payload must not contain newlines";
  Printf.sprintf "%d:%s" (String.length payload) payload

let decode line =
  match String.index_opt line ':' with
  | None -> None
  | Some i -> (
    let payload = String.sub line (i + 1) (String.length line - i - 1) in
    match int_of_string_opt (String.sub line 0 i) with
    | Some len when len = String.length payload -> Some payload
    | Some _ | None -> None)

let read_lines path =
  In_channel.with_open_text path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

let load ~header path =
  if not (Sys.file_exists path) then Ok []
  else
    match read_lines path with
    | exception Sys_error msg -> Error msg
    | [] -> Ok []
    | first :: rest ->
      if first <> header_line header then
        Error
          (Printf.sprintf "%s: not a %s journal (header %S)" path header first)
      else Ok (List.filter_map decode rest)

let create ?(resume = false) ~header path =
  let fresh () =
    match open_out path with
    | exception Sys_error msg -> Error msg
    | oc ->
      output_string oc (header_line header ^ "\n");
      flush oc;
      Ok { oc; lock = Mutex.create (); closed = false }
  in
  if not resume then fresh ()
  else if not (Sys.file_exists path) then fresh ()
  else
    (* validate the header before blindly appending to a foreign file *)
    match load ~header path with
    | Error _ as e -> e
    | Ok _ -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | exception Sys_error msg -> Error msg
      | oc -> Ok { oc; lock = Mutex.create (); closed = false })

let append t payload =
  let line = encode payload in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.closed then invalid_arg "Journal.append: journal is closed";
      output_string t.oc (line ^ "\n");
      (* flush per entry: crash-safety is the whole point *)
      flush t.oc)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out t.oc
      end)
