(** Declarative fault model for hybrid-platform resilience studies.

    A {!spec} is a seeded list of faults describing what broke: dead CGC
    nodes or functional units, whole-CGC loss, FPGA area degradation,
    communication-channel slowdown, and transient per-evaluation
    failures.  Specs are parsed and printed by {!Spec}, applied to a
    platform by {!Degrade}, and consulted by the hardened explore driver
    for transient-failure injection. *)

type unit_kind =
  | Mult  (** only the node's multiplier is dead *)
  | Alu  (** only the node's ALU is dead *)
  | Both  (** the whole node is dead — its column truncates there *)

type fault =
  | Dead_node of { cgc : int; row : int; col : int; unit_kind : unit_kind }
      (** a node of CGC [cgc] at [row],[col] (0-based) lost [unit_kind] *)
  | Dead_cgc of int  (** a whole CGC component is dead *)
  | Area_loss of [ `Percent of int | `Units of int ]
      (** FPGA area shrinks by a percentage or an absolute CLB count *)
  | Comm_slowdown of int
      (** communication costs scale to this percentage (>= 100) *)
  | Transient of { permille : int; max_failures : int }
      (** each evaluation fails with probability [permille]/1000, at most
          [max_failures] times per point — deterministic given the seed *)

type spec = { seed : int; faults : fault list }

val empty : spec
(** Seed 0, no faults. *)

val unit_kind_string : unit_kind -> string

val fault_string : fault -> string
(** One fault in the {!Spec} text syntax, e.g. ["dead-node 0 1 1 mult"]. *)

val transient : spec -> (int * int) option
(** The first transient fault's [(permille, max_failures)], if any. *)

val transient_should_fail : spec -> key:string -> attempt:int -> bool
(** Whether the [attempt]-th (1-based) evaluation of the work item
    identified by [key] should be failed by fault injection.  Pure
    function of [(spec.seed, key, attempt)]: re-runs and resumed runs see
    the same fault pattern. *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> spec -> unit
