let delay_us ~backoff_us ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_us: attempt must be >= 1";
  backoff_us * (1 lsl min (attempt - 1) 20)

let run ?(retries = 0) ?(backoff_us = 0) ?on_retry f =
  if retries < 0 then invalid_arg "Retry.run: retries must be non-negative";
  let rec go attempt =
    match f attempt with
    | Ok _ as ok -> ok
    | Error msg when attempt <= retries ->
      Hypar_obs.Counter.incr "resilience.retry";
      (match on_retry with
      | Some cb -> cb ~attempt msg
      | None -> ());
      (* deterministic exponential backoff: attempt k waits
         backoff_us * 2^(k-1); the default of zero keeps retried runs
         bit-identical in time-insensitive contexts (tests, resume) *)
      let wait_us = delay_us ~backoff_us ~attempt in
      if wait_us > 0 then Unix.sleepf (float_of_int wait_us /. 1_000_000.);
      go (attempt + 1)
    | Error _ as e -> e
  in
  go 1
