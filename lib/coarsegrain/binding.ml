module Ir = Hypar_ir

type slot = { node : int; cgc : int; row : int; col : int; cycle : int }

type t = {
  slots : slot list;
  mem_ports : (int * int) list;
  max_live : int;
  fits_register_bank : bool;
}

let bind (cgc : Cgc.t) dfg (sched : Schedule.t) =
  Hypar_obs.Span.with_ ~cat:"cgc" "cgc.bind" @@ fun () ->
  let slots = ref [] in
  let mem_ports = ref [] in
  let port_in_cycle : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun v (p : Schedule.placement) ->
      let instr = (Ir.Dfg.node dfg v).Ir.Dfg.instr in
      if p.chain >= 0 then
        (* node op: chain -> (CGC, column), chain position -> row *)
        slots :=
          {
            node = v;
            cgc = p.chain / cgc.Cgc.cols;
            col = p.chain mod cgc.Cgc.cols;
            row = p.depth - 1;
            cycle = p.cycle;
          }
          :: !slots
      else if Ir.Instr.op_class instr = Ir.Types.Class_mem then begin
        let used =
          match Hashtbl.find_opt port_in_cycle p.cycle with
          | Some u -> u
          | None -> 0
        in
        Hashtbl.replace port_in_cycle p.cycle (used + 1);
        mem_ports := (v, used) :: !mem_ports
      end
      (* pure moves are routed by the steering interconnect: no resource *))
    sched.Schedule.placements;
  (* register-bank pressure: values crossing a cycle boundary *)
  let makespan = sched.Schedule.makespan in
  let live = Array.make (makespan + 2) 0 in
  Array.iteri
    (fun v (p : Schedule.placement) ->
      let consumers = Ir.Dfg.succs dfg v in
      let last_use =
        List.fold_left
          (fun acc s -> max acc sched.Schedule.placements.(s).cycle)
          p.cycle consumers
      in
      if last_use > p.cycle then
        for c = p.cycle + 1 to min last_use (makespan + 1) do
          live.(c) <- live.(c) + 1
        done)
    sched.Schedule.placements;
  let max_live = Array.fold_left max 0 live in
  {
    slots = List.rev !slots;
    mem_ports = List.rev !mem_ports;
    max_live;
    fits_register_bank = max_live <= cgc.Cgc.register_bank;
  }

let is_valid ?health (cgc : Cgc.t) t =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun s ->
      if s.cgc < 0 || s.cgc >= cgc.Cgc.cgcs then ok := false;
      if s.row < 0 || s.row >= cgc.Cgc.rows then ok := false;
      if s.col < 0 || s.col >= cgc.Cgc.cols then ok := false;
      (match health with
      | None -> ()
      | Some (h : Cgc.health) ->
        (* a slot on dead hardware (beyond its column's usable depth) is
           a binding bug under degradation *)
        let chain = Cgc.chain_of cgc ~cgc:s.cgc ~col:s.col in
        if
          chain >= Array.length h.Cgc.col_rows
          || s.row + 1 > h.Cgc.col_rows.(chain)
        then ok := false);
      let key = (s.cycle, s.cgc, s.row, s.col) in
      if Hashtbl.mem seen key then ok := false;
      Hashtbl.replace seen key ())
    t.slots;
  List.iter
    (fun (_node, port) -> if port < 0 || port >= cgc.Cgc.mem_ports then ok := false)
    t.mem_ports;
  !ok

let render_gantt (cgc : Cgc.t) dfg (sched : Schedule.t) t =
  let makespan = max 1 sched.Schedule.makespan in
  let cell_width = 7 in
  let buf = Buffer.create 1024 in
  let mnemonic v = Ir.Instr.mnemonic (Ir.Dfg.node dfg v).Ir.Dfg.instr in
  let pad s =
    let s = if String.length s > cell_width then String.sub s 0 cell_width else s in
    s ^ String.make (cell_width - String.length s) ' '
  in
  Buffer.add_string buf (pad "cycle:");
  for c = 1 to makespan do
    Buffer.add_string buf (pad (string_of_int c))
  done;
  Buffer.add_char buf '\n';
  let row label cells =
    Buffer.add_string buf (pad label);
    Array.iter (fun c -> Buffer.add_string buf (pad c)) cells;
    Buffer.add_char buf '\n'
  in
  for k = 0 to cgc.Cgc.cgcs - 1 do
    for r = 0 to cgc.Cgc.rows - 1 do
      for col = 0 to cgc.Cgc.cols - 1 do
        let cells = Array.make makespan "." in
        List.iter
          (fun s ->
            if s.cgc = k && s.row = r && s.col = col then
              cells.(s.cycle - 1) <- mnemonic s.node)
          t.slots;
        row (Printf.sprintf "c%d[%d,%d]" k r col) cells
      done
    done
  done;
  (* memory ports *)
  let placements = sched.Schedule.placements in
  for port = 0 to cgc.Cgc.mem_ports - 1 do
    let cells = Array.make makespan "." in
    List.iter
      (fun (node, p) ->
        if p = port then begin
          let cycle = placements.(node).Schedule.cycle in
          if cycle >= 1 && cycle <= makespan then cells.(cycle - 1) <- mnemonic node
        end)
      t.mem_ports;
    row (Printf.sprintf "mem%d" port) cells
  done;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>binding: %d slots, %d mem ops, max_live=%d%s@,"
    (List.length t.slots) (List.length t.mem_ports) t.max_live
    (if t.fits_register_bank then "" else " (SPILLS)");
  List.iter
    (fun s ->
      Format.fprintf ppf "  n%-3d @cycle %-3d cgc%d[%d,%d]@," s.node s.cycle
        s.cgc s.row s.col)
    t.slots;
  Format.fprintf ppf "@]"
