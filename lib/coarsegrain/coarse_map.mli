(** Mapping to the coarse-grain data-path and Eq. 3 cycle accounting.

    The latency of a block is its schedule makespan in [T_CGC] cycles
    (at least 1); CDFGs are handled by iterating over their DFGs.
    Blocks containing divisions cannot execute on CGC nodes and are
    reported as unmappable — the partitioning engine keeps them on the
    fine-grain side. *)

type block_mapping = {
  block_id : int;
  latency : int;  (** per invocation, in CGC cycles *)
  schedule : Schedule.t;
  binding : Binding.t;
}

val map_dfg : ?health:Cgc.health -> Cgc.t -> Hypar_ir.Dfg.t -> block_mapping option
(** [None] when the DFG is not CGC-executable: divisions, or — under a
    degraded [health] — no live slot for an operation kind it needs
    ({!Schedule.supported_on}). *)

val map_block :
  ?health:Cgc.health -> Cgc.t -> Hypar_ir.Cdfg.t -> int -> block_mapping option

val app_cycles :
  ?health:Cgc.health ->
  Cgc.t -> Hypar_ir.Cdfg.t -> freq:(int -> int) -> on_cgc:(int -> bool) -> int
(** Eq. 3: [t_coarse = Σ t_to_coarse(BB_i) · Iter(BB_i)] over the blocks
    selected by [on_cgc], in CGC cycles. Raises [Invalid_argument] if a
    selected block is unmappable. *)

val pp_block_mapping : Format.formatter -> block_mapping -> unit
