(** Coarse-Grain Component (CGC) data-path model, after the authors'
    FPL'04 design used as the coarse-grain hardware in the paper.

    The data-path is a set of [cgcs] identical CGC components, a
    reconfigurable interconnect and a register bank.  Each CGC is an
    [rows]×[cols] array of nodes; every node contains a multiplier and an
    ALU (one active per cycle), and the steering logic chains nodes along
    a column so that up to [rows] *dependent* operations (e.g. a
    multiply-add) complete within a single CGC cycle.  All node operations
    have unit delay in [T_CGC] ("this period is set for having unit
    execution delay for the CGCs"). *)

type t = {
  cgcs : int;  (** number of CGC components *)
  rows : int;  (** chain depth executable in one cycle *)
  cols : int;  (** independent chains per CGC per cycle *)
  mem_ports : int;  (** shared-data-memory ports per CGC cycle *)
  register_bank : int;  (** capacity of the register bank (for stats) *)
}

val make :
  ?mem_ports:int -> ?register_bank:int -> cgcs:int -> rows:int -> cols:int
  -> unit -> t
(** Defaults: 2 memory ports, 64 registers. Raises [Invalid_argument] on
    non-positive dimensions. *)

val two_by_two : int -> t
(** [two_by_two k] — the paper's data-path of [k] 2×2 CGCs. *)

val chains : t -> int
(** Total chains available per cycle: [cgcs * cols]. *)

val node_slots : t -> int
(** Total node slots per cycle: [cgcs * rows * cols]. *)

(** {2 Degraded data-paths}

    A [health] value describes which parts of the data-path still work; it
    is threaded through {!Schedule} and {!Coarse_map} so a degraded
    platform schedules around dead hardware instead of crashing.  Columns
    are indexed in chain space ([cgc * cols + col]); slots are
    [(chain, depth)] with depth 1-based as in {!Schedule.placement}. *)

type health = {
  col_rows : int array;  (** usable chain depth per column, [0..rows] *)
  no_mul : (int * int) list;  (** slots whose multiplier is dead *)
  no_alu : (int * int) list;  (** slots whose ALU is dead *)
}

val full_health : t -> health
(** Every node of every CGC works. *)

val healthy : t -> health -> bool
(** [true] iff the health equals {!full_health}. *)

val usable_slots : health -> int
(** Sum of usable chain depths — 0 means no node op can execute at all. *)

val chain_of : t -> cgc:int -> col:int -> int
(** Chain-space index of a CGC column. *)

val kill_node : t -> health -> cgc:int -> row:int -> col:int -> health
(** Whole node dead: truncates its column's usable depth to [row] (the
    steering chain cannot route around a dead node). *)

val kill_unit : t -> health -> cgc:int -> row:int -> col:int -> mul:bool -> health
(** One functional unit dead: the slot can no longer host multiplies
    ([mul:true]) or ALU operations ([mul:false]) but still chains. *)

val kill_cgc : t -> health -> cgc:int -> health
(** Whole CGC component dead: all its columns drop to depth 0. *)

val pp_health : Format.formatter -> health -> unit

val describe : t -> string
(** e.g. ["two 2x2"] / ["three 2x2"] / ["4x 3x2"]. *)

val pp : Format.formatter -> t -> unit
