(** Resource-constrained list scheduling onto the CGC data-path
    (paper §3.3, step (a) of the coarse-grain mapping).

    Cycle-driven list scheduling with ALAP-based priority.  Per CGC cycle
    the data-path offers [Cgc.chains cgc] columns of [rows] node slots:
    independent operations may share a column (every CGC node is a full
    compute unit), while a *same-cycle dependent* operation must extend
    its producer's column below the current chain tail — the steering
    logic's row chaining, realising the paper's single-cycle "complex
    operations (like a multiply-add)".  Loads/stores use the
    shared-memory ports; register moves are realised by the steering
    interconnect and cost no cycle.  Divisions are not executable by CGC
    nodes: {!schedule} rejects DFGs containing them. *)

type placement = {
  cycle : int;  (** 1-based start cycle; 0 for free moves of constants *)
  chain : int;  (** column id within the cycle; -1 for moves and memory ops *)
  depth : int;  (** 1-based row slot in the column; 0 for moves/memory *)
}

type t = {
  placements : placement array;  (** per node id *)
  makespan : int;  (** latency in CGC cycles *)
}

exception Unsupported of string
(** Raised for DFGs containing divisions/remainders. *)

val schedule :
  ?priority:[ `Alap | `Asap | `Program ] ->
  ?health:Cgc.health ->
  Cgc.t ->
  Hypar_ir.Dfg.t ->
  t
(** [priority] selects the list-scheduling order (default [`Alap] —
    most critical first, the choice the [ablation:priority] bench
    justifies).  [health] (default: fully healthy) restricts placements to
    live slots: columns are truncated to their usable depth and slots with
    a dead multiplier/ALU never host the corresponding operations.
    Raises [Invalid_argument] when the health does not match the CGC
    geometry or {!supported_on} is false for it. *)

val supported : Hypar_ir.Dfg.t -> bool
(** [true] when the DFG contains no division/remainder. *)

val supported_on : ?health:Cgc.health -> Cgc.t -> Hypar_ir.Dfg.t -> bool
(** {!supported}, plus: every node-op kind the DFG uses (multiply / ALU)
    has at least one live column whose first slot can host it, so the
    degraded data-path can actually execute the block. *)

val is_valid : ?health:Cgc.health -> Cgc.t -> Hypar_ir.Dfg.t -> t -> bool
(** Re-checks all constraints: dependences respected (same-cycle only via
    chaining), chain count and depth per cycle, memory ports per cycle —
    and, when [health] is given, that no placement lands on dead
    hardware. *)

val chains_in_cycle : t -> int -> int
(** Number of distinct columns used in the given cycle. *)

val pp : Format.formatter -> t -> unit
