module Ir = Hypar_ir

type placement = { cycle : int; chain : int; depth : int }

type t = { placements : placement array; makespan : int }

exception Unsupported of string

type kind = Free | Mem | Node

let kind_of instr =
  match instr with
  | Ir.Instr.Mov _ -> Free
  | Ir.Instr.Load _ | Ir.Instr.Store _ -> Mem
  | Ir.Instr.Bin _ | Ir.Instr.Un _ | Ir.Instr.Mul _ | Ir.Instr.Select _ -> Node
  | Ir.Instr.Div _ | Ir.Instr.Rem _ ->
    raise (Unsupported "CGC nodes cannot execute division/remainder")

let supported dfg =
  List.for_all
    (fun (nd : Ir.Dfg.node) ->
      match nd.instr with
      | Ir.Instr.Div _ | Ir.Instr.Rem _ -> false
      | Ir.Instr.Mov _ | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Bin _
      | Ir.Instr.Un _ | Ir.Instr.Mul _ | Ir.Instr.Select _ ->
        true)
    (Ir.Dfg.nodes dfg)

let is_mul = function Ir.Instr.Mul _ -> true | _ -> false

(* Supported on a (possibly degraded) data-path: op support as above, plus
   every node-op kind present must have at least one live column whose
   first slot can host it — that column is reachable at the start of any
   cycle, which also guarantees the greedy scheduler below terminates. *)
let supported_on ?health cgc dfg =
  supported dfg
  &&
  match health with
  | None -> true
  | Some (h : Cgc.health) ->
    let needs_mul = ref false and needs_alu = ref false in
    List.iter
      (fun (nd : Ir.Dfg.node) ->
        match nd.Ir.Dfg.instr with
        | Ir.Instr.Mul _ -> needs_mul := true
        | Ir.Instr.Bin _ | Ir.Instr.Un _ | Ir.Instr.Select _ -> needs_alu := true
        | Ir.Instr.Mov _ | Ir.Instr.Load _ | Ir.Instr.Store _
        | Ir.Instr.Div _ | Ir.Instr.Rem _ ->
          ())
      (Ir.Dfg.nodes dfg);
    let columns = min (Cgc.chains cgc) (Array.length h.Cgc.col_rows) in
    let some_column pred =
      let found = ref false in
      for c = 0 to columns - 1 do
        if h.Cgc.col_rows.(c) >= 1 && pred c then found := true
      done;
      !found
    in
    (not !needs_mul || some_column (fun c -> not (List.mem (c, 1) h.Cgc.no_mul)))
    && (not !needs_alu || some_column (fun c -> not (List.mem (c, 1) h.Cgc.no_alu)))

(* Priority: by default most critical first (smallest ALAP), then most
   successors, then program order.  `Asap and `Program are the ablation
   baselines. *)
let priority_order ?(priority = `Alap) dfg =
  let ids = List.init (Ir.Dfg.node_count dfg) Fun.id in
  match priority with
  | `Program -> ids
  | (`Alap | `Asap) as p ->
    let level = match p with `Alap -> Ir.Dfg.alap dfg | `Asap -> Ir.Dfg.asap dfg in
    List.sort
      (fun a b ->
        match compare level.(a) level.(b) with
        | 0 -> (
          match
            compare
              (List.length (Ir.Dfg.succs dfg b))
              (List.length (Ir.Dfg.succs dfg a))
          with
          | 0 -> compare a b
          | c -> c)
        | c -> c)
      ids

(* Per-cycle resources: [Cgc.chains cgc] columns, each with [rows] node
   slots.  Independent operations may share a column (each node of a CGC
   is a full compute unit); a *same-cycle dependent* operation must sit in
   its producer's column, below it — the steering-logic chaining — and
   only onto the current tail of that dependency chain. *)
let schedule ?priority ?health cgc dfg =
  Hypar_obs.Span.with_ ~cat:"cgc" "cgc.schedule" @@ fun () ->
  let n = Ir.Dfg.node_count dfg in
  let kinds =
    Array.init n (fun i -> kind_of (Ir.Dfg.node dfg i).Ir.Dfg.instr)
  in
  let placements = Array.make n { cycle = -1; chain = -1; depth = 0 } in
  let finish = Array.make n (-1) in
  let scheduled = Array.make n false in
  let order = priority_order ?priority dfg in
  let remaining = ref n in
  let columns = Cgc.chains cgc in
  (match health with
  | Some (h : Cgc.health) when Array.length h.Cgc.col_rows <> columns ->
    invalid_arg "Schedule.schedule: health does not match the CGC geometry"
  | Some h when not (supported_on ~health:h cgc dfg) ->
    invalid_arg "Schedule.schedule: DFG not executable on this degraded CGC"
  | _ -> ());
  (* usable depth per column and per-slot functional-unit capability; the
     healthy defaults make the constrained code paths below coincide
     exactly with the unconstrained ones *)
  let cap =
    match health with
    | None -> Array.make columns cgc.Cgc.rows
    | Some h -> Array.copy h.Cgc.col_rows
  in
  let slot_ok v c depth =
    match health with
    | None -> true
    | Some (h : Cgc.health) ->
      let dead = if is_mul (Ir.Dfg.node dfg v).Ir.Dfg.instr then h.Cgc.no_mul else h.Cgc.no_alu in
      not (List.mem (c, depth) dead)
  in
  let bound = (10 * n) + 100 + (2 * n * columns) in
  let t = ref 1 in
  while !remaining > 0 do
    if !t > bound then
      invalid_arg "Schedule.schedule: no progress (internal error)";
    (* per-cycle resource state *)
    let column_used = Array.make columns 0 in
    let chain_tail = Array.make n false in
    (* chain tails this cycle, by node id *)
    let mem_used = ref 0 in
    let preds_scheduled v =
      List.for_all (fun p -> scheduled.(p)) (Ir.Dfg.preds dfg v)
    in
    (* emptiest column first, so later chain extensions find room; a
       column qualifies only if its next depth slot is alive for [v] *)
    let pick_column v =
      let best = ref (-1) in
      for c = columns - 1 downto 0 do
        if
          column_used.(c) < cap.(c)
          && slot_ok v c (column_used.(c) + 1)
          && (!best = -1 || column_used.(c) < column_used.(!best))
        then best := c
      done;
      !best
    in
    let place v column =
      column_used.(column) <- column_used.(column) + 1;
      placements.(v) <- { cycle = !t; chain = column; depth = column_used.(column) };
      finish.(v) <- !t;
      chain_tail.(v) <- true
    in
    let try_schedule v =
      match kinds.(v) with
      | Free ->
        let f =
          List.fold_left (fun acc p -> max acc finish.(p)) 0 (Ir.Dfg.preds dfg v)
        in
        placements.(v) <- { cycle = f; chain = -1; depth = 0 };
        finish.(v) <- f;
        true
      | Mem ->
        let ready =
          List.for_all (fun p -> finish.(p) < !t) (Ir.Dfg.preds dfg v)
        in
        if ready && !mem_used < cgc.Cgc.mem_ports then begin
          incr mem_used;
          placements.(v) <- { cycle = !t; chain = -1; depth = 0 };
          finish.(v) <- !t;
          true
        end
        else false
      | Node -> (
        let same_cycle_node_preds =
          List.filter
            (fun p -> finish.(p) = !t && kinds.(p) = Node)
            (Ir.Dfg.preds dfg v)
        in
        let others_ready =
          List.for_all
            (fun p -> finish.(p) < !t || (finish.(p) = !t && kinds.(p) = Node))
            (Ir.Dfg.preds dfg v)
        in
        if not others_ready then false
        else
          match same_cycle_node_preds with
          | [] -> (
            match pick_column v with
            | -1 -> false
            | c ->
              place v c;
              true)
          | [ p ] ->
            let c = placements.(p).chain in
            if
              c >= 0 && chain_tail.(p)
              && column_used.(c) < cap.(c)
              && slot_ok v c (column_used.(c) + 1)
            then begin
              chain_tail.(p) <- false;
              place v c;
              true
            end
            else false
          | _ :: _ :: _ -> false (* cannot chain from two producers *))
    in
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun v ->
          if (not scheduled.(v)) && preds_scheduled v && try_schedule v then begin
            scheduled.(v) <- true;
            decr remaining;
            progress := true
          end)
        order
    done;
    incr t
  done;
  let makespan = Array.fold_left max 0 finish in
  if Hypar_obs.Sink.enabled () then
    Hypar_obs.Counter.set "cgc.schedule_length" makespan;
  { placements; makespan }

let chains_in_cycle t cycle =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p -> if p.cycle = cycle && p.chain >= 0 then Hashtbl.replace seen p.chain ())
    t.placements;
  Hashtbl.length seen

let is_valid ?health cgc dfg t =
  let ok = ref true in
  let n = Ir.Dfg.node_count dfg in
  (match health with
  | None -> ()
  | Some (h : Cgc.health) ->
    Array.iteri
      (fun v (p : placement) ->
        if p.chain >= 0 then begin
          if
            p.chain >= Array.length h.Cgc.col_rows
            || p.depth > h.Cgc.col_rows.(p.chain)
          then ok := false;
          let dead =
            if is_mul (Ir.Dfg.node dfg v).Ir.Dfg.instr then h.Cgc.no_mul
            else h.Cgc.no_alu
          in
          if List.mem (p.chain, p.depth) dead then ok := false
        end)
      t.placements);
  if Array.length t.placements <> n then ok := false
  else begin
    let kinds = Array.init n (fun i -> kind_of (Ir.Dfg.node dfg i).Ir.Dfg.instr) in
    (* dependences *)
    for v = 0 to n - 1 do
      let pv = t.placements.(v) in
      List.iter
        (fun p ->
          let pp = t.placements.(p) in
          let chained =
            kinds.(v) = Node && kinds.(p) = Node && pp.cycle = pv.cycle
            && pp.chain = pv.chain
            && pp.depth < pv.depth
          in
          let before = pp.cycle < pv.cycle in
          let free_ok = kinds.(v) = Free && pp.cycle <= pv.cycle in
          if not (before || chained || free_ok) then ok := false)
        (Ir.Dfg.preds dfg v)
    done;
    (* per-cycle resources *)
    let by_cycle = Hashtbl.create 16 in
    Array.iteri
      (fun v p ->
        if kinds.(v) <> Free then begin
          let l =
            match Hashtbl.find_opt by_cycle p.cycle with Some l -> l | None -> []
          in
          Hashtbl.replace by_cycle p.cycle ((v, p) :: l)
        end)
      t.placements;
    Hashtbl.iter
      (fun _cycle entries ->
        let mem = List.length (List.filter (fun (v, _) -> kinds.(v) = Mem) entries) in
        if mem > cgc.Cgc.mem_ports then ok := false;
        let chain_ids =
          List.sort_uniq compare
            (List.filter_map
               (fun (_, (p : placement)) -> if p.chain >= 0 then Some p.chain else None)
               entries)
        in
        if List.length chain_ids > Cgc.chains cgc then ok := false;
        List.iter
          (fun c ->
            let depths =
              List.sort compare
                (List.filter_map
                   (fun (_, (p : placement)) ->
                     if p.chain = c then Some p.depth else None)
                   entries)
            in
            if List.length depths > cgc.Cgc.rows then ok := false;
            List.iteri (fun i d -> if d <> i + 1 then ok := false) depths)
          chain_ids)
      by_cycle
  end;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule: makespan=%d@," t.makespan;
  Array.iteri
    (fun v p ->
      Format.fprintf ppf "  n%-3d cycle=%-4d chain=%-3d depth=%d@," v p.cycle
        p.chain p.depth)
    t.placements;
  Format.fprintf ppf "@]"
