type t = {
  cgcs : int;
  rows : int;
  cols : int;
  mem_ports : int;
  register_bank : int;
}

let make ?(mem_ports = 2) ?(register_bank = 64) ~cgcs ~rows ~cols () =
  if cgcs <= 0 || rows <= 0 || cols <= 0 || mem_ports <= 0 then
    invalid_arg "Cgc.make: dimensions must be positive";
  { cgcs; rows; cols; mem_ports; register_bank }

let two_by_two k = make ~cgcs:k ~rows:2 ~cols:2 ()

let chains t = t.cgcs * t.cols
let node_slots t = t.cgcs * t.rows * t.cols

(* ---- degraded data-paths (resilience layer) ---------------------------- *)

type health = {
  col_rows : int array;
  no_mul : (int * int) list;
  no_alu : (int * int) list;
}

let full_health t =
  { col_rows = Array.make (chains t) t.rows; no_mul = []; no_alu = [] }

let healthy t h =
  Array.for_all (fun r -> r = t.rows) h.col_rows
  && h.no_mul = [] && h.no_alu = []

let usable_slots h = Array.fold_left ( + ) 0 h.col_rows

let chain_of t ~cgc ~col = (cgc * t.cols) + col

(* depth slots are filled bottom-up, so a dead node at row [r] of a column
   truncates its usable chain depth to [r] (the steering logic cannot skip
   over a dead node) *)
let kill_node t h ~cgc ~row ~col =
  let c = chain_of t ~cgc ~col in
  { h with col_rows = Array.mapi (fun i r -> if i = c then min r row else r) h.col_rows }

let kill_unit t h ~cgc ~row ~col ~mul =
  let slot = (chain_of t ~cgc ~col, row + 1) in
  if mul then { h with no_mul = slot :: List.filter (( <> ) slot) h.no_mul }
  else { h with no_alu = slot :: List.filter (( <> ) slot) h.no_alu }

let kill_cgc t h ~cgc =
  {
    h with
    col_rows =
      Array.mapi
        (fun i r -> if i / t.cols = cgc then 0 else r)
        h.col_rows;
  }

let pp_health ppf h =
  Format.fprintf ppf "health{cols=[%s]%s%s}"
    (String.concat ";" (Array.to_list (Array.map string_of_int h.col_rows)))
    (if h.no_mul = [] then ""
     else
       " no_mul=" ^ String.concat ","
         (List.map (fun (c, d) -> Printf.sprintf "%d.%d" c d) h.no_mul))
    (if h.no_alu = [] then ""
     else
       " no_alu=" ^ String.concat ","
         (List.map (fun (c, d) -> Printf.sprintf "%d.%d" c d) h.no_alu))

let describe t =
  let count =
    match t.cgcs with
    | 1 -> "one"
    | 2 -> "two"
    | 3 -> "three"
    | 4 -> "four"
    | n -> string_of_int n ^ "x"
  in
  Printf.sprintf "%s %dx%d" count t.rows t.cols

let pp ppf t =
  Format.fprintf ppf "cgc{%d x %dx%d, mem_ports=%d, regs=%d}" t.cgcs t.rows
    t.cols t.mem_ports t.register_bank
