module Ir = Hypar_ir

type block_mapping = {
  block_id : int;
  latency : int;
  schedule : Schedule.t;
  binding : Binding.t;
}

let map_dfg_id ?health cgc ~block_id dfg =
  if not (Schedule.supported_on ?health cgc dfg) then None
  else begin
    let schedule = Schedule.schedule ?health cgc dfg in
    let binding = Binding.bind cgc dfg schedule in
    Some
      {
        block_id;
        latency = max 1 schedule.Schedule.makespan;
        schedule;
        binding;
      }
  end

let map_dfg ?health cgc dfg = map_dfg_id ?health cgc ~block_id:(-1) dfg

let map_block ?health cgc cdfg i =
  map_dfg_id ?health cgc ~block_id:i (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg

let app_cycles ?health cgc cdfg ~freq ~on_cgc =
  List.fold_left
    (fun acc i ->
      if on_cgc i && freq i > 0 then
        match map_block ?health cgc cdfg i with
        | Some m -> acc + (m.latency * freq i)
        | None ->
          invalid_arg
            (Printf.sprintf "Coarse_map.app_cycles: block %d is not CGC-executable" i)
      else acc)
    0 (Ir.Cdfg.block_ids cdfg)

let pp_block_mapping ppf m =
  Format.fprintf ppf "BB%d: latency=%d CGC cycles, max_live=%d" m.block_id
    m.latency m.binding.Binding.max_live
