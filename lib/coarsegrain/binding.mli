(** Binding of a CGC schedule onto physical resources (paper §3.3,
    step (b) of the coarse-grain mapping).

    Chains are assigned to (CGC, column) pairs, chain positions to rows,
    and memory operations to shared-memory ports.  The register-bank
    pressure (values produced in one cycle and consumed in a later one)
    is measured against the bank capacity. *)

type slot = { node : int; cgc : int; row : int; col : int; cycle : int }

type t = {
  slots : slot list;  (** node-op placements, ascending (cycle, cgc, col, row) *)
  mem_ports : (int * int) list;  (** (node, port) for loads/stores *)
  max_live : int;  (** peak register-bank occupancy *)
  fits_register_bank : bool;
}

val bind : Cgc.t -> Hypar_ir.Dfg.t -> Schedule.t -> t

val is_valid : ?health:Cgc.health -> Cgc.t -> t -> bool
(** No two slots share (cycle, cgc, row, col); no two memory ops share
    (cycle, port); coordinates within bounds.  With [health], also checks
    that no slot occupies dead hardware (a position beyond its column's
    usable chain depth). *)

val pp : Format.formatter -> t -> unit

val render_gantt : Cgc.t -> Hypar_ir.Dfg.t -> Schedule.t -> t -> string
(** Text Gantt chart of the bound schedule: one row per physical node
    (cgcN[row,col]) and memory port, one column per CGC cycle, cells
    showing the mnemonic of the operation executing there. *)
