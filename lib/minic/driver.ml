type error = { line : int; col : int; msg : string }

exception Frontend_error of { name : string option; err : error }

let string_of_error e = Printf.sprintf "%d:%d: %s" e.line e.col e.msg

let () =
  Printexc.register_printer (function
    | Frontend_error { name; err } ->
      Some
        (Printf.sprintf "%s%s"
           (match name with Some n -> n ^ ":" | None -> "")
           (string_of_error err))
    | _ -> None)

let of_pos (pos : Token.pos) msg = { line = pos.line; col = pos.col; msg }

let span name f = Hypar_obs.Span.with_ ~cat:"minic" name f

let compile ?name ?(simplify = true) ?verify_ir src =
  let verify =
    Option.value verify_ir ~default:!Hypar_ir.Passes.verify_passes
  in
  try
    span "minic.compile" @@ fun () ->
    let ast = span "minic.parse" (fun () -> Parser.parse_program src) in
    match span "minic.typecheck" (fun () -> Typecheck.check ast) with
    | Error e -> Error (of_pos e.Typecheck.pos e.Typecheck.msg)
    | Ok () ->
      let inlined = span "minic.inline" (fun () -> Inline.program ast) in
      let cdfg = span "minic.lower" (fun () -> Lower.program ?name inlined) in
      (match Hypar_ir.Cdfg.validate cdfg with
      | Error msg -> Error { line = 0; col = 0; msg = "lowering produced: " ^ msg }
      | Ok () ->
        if verify then Hypar_ir.Verify.check_exn ~context:"lower" cdfg;
        let cdfg =
          if simplify then
            span "minic.optimize" (fun () ->
                Hypar_ir.Passes.optimize ~verify cdfg)
          else cdfg
        in
        Ok cdfg)
  with
  | Lexer.Error { pos; msg } -> Error (of_pos pos msg)
  | Parser.Error { pos; msg } -> Error (of_pos pos msg)
  | Inline.Recursive f ->
    Error { line = 0; col = 0; msg = Printf.sprintf "recursive function %S" f }
  | Invalid_argument msg -> Error { line = 0; col = 0; msg }

let compile_exn ?name ?simplify ?verify_ir src =
  match compile ?name ?simplify ?verify_ir src with
  | Ok cdfg -> cdfg
  | Error err -> raise (Frontend_error { name; err })
