(** Abstract syntax of Mini-C.

    Mini-C is the integer-C subset needed by the paper's two benchmark
    applications: global (optionally [const]-initialised) arrays, global
    scalars, functions over scalars and arrays, [for]/[while]/[do-while]
    loops, [if]/[else], the full C integer operator set, the ternary
    operator, and [min]/[max]/[abs] builtins.  [&&], [||] and [?:]
    evaluate all their (pure) operands — there is no short-circuiting,
    matching the data-flow-graph execution model. *)

type pos = Token.pos

type unop = Neg | Lognot | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type expr = { desc : expr_desc; epos : pos }

and expr_desc =
  | Num of int
  | Ident of string
  | Index of string * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of { name : string; width : int; init : expr option }
  | Assign of { name : string; value : expr }
  | Array_assign of { arr : string; index : expr; value : expr }
  | If of { cond : expr; then_branch : stmt list; else_branch : stmt list }
  | While of { cond : expr; body : stmt list }
  | Do_while of { body : stmt list; cond : expr }
  | For of {
      init : stmt option;
      cond : expr option;
      step : stmt option;
      body : stmt list;
    }
  | Return of expr option
  | Expr_stmt of expr
  | Block of stmt list

type param =
  | Scalar_param of { pname : string; pwidth : int }
  | Array_param of { pname : string; pelem_width : int }

type func = {
  fname : string;
  params : param list;
  returns_value : bool;
  body : stmt list;
  fpos : pos;
}

type global =
  | Global_array of {
      gname : string;
      size : int;
      ginit : int list option;
      is_const : bool;
      gelem_width : int;
    }
  | Global_scalar of { gname : string; gwidth : int; gvalue : int option }

type program = { globals : global list; funcs : func list }

val builtins : string list
(** Names treated as intrinsic functions: ["min"; "max"; "abs"]. *)

val expr_calls : expr -> string list
(** All non-builtin callee names in an expression, in evaluation order. *)

val binop_name : binop -> string
(** The operator's concrete syntax, e.g. ["+"] for [Add]. *)

val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit
