(** One-call frontend: source text to CDFG. *)

type error = { line : int; col : int; msg : string }

exception Frontend_error of { name : string option; err : error }
(** The single typed error raised by {!compile_exn}: every frontend
    failure — lexer, parser, type checker, inliner, lowering — surfaces
    as this exception so callers (the CLI in particular) can render a
    located [file:line:col: message] diagnostic instead of a backtrace.
    [name] is the [?name] the caller compiled under, when any. *)

val compile :
  ?name:string ->
  ?simplify:bool ->
  ?verify_ir:bool ->
  string ->
  (Hypar_ir.Cdfg.t, error) result
(** [compile src] lexes, parses, type checks, inlines and lowers a Mini-C
    program.  With [simplify] (default [true]) the optimisation pipeline
    ({!Hypar_ir.Passes.optimize}: clean-up passes + loop-invariant code
    motion) runs on the result.  With [verify_ir] (default
    {!Hypar_ir.Passes.verify_passes}) the lowered CDFG and every pass
    output are checked by {!Hypar_ir.Verify}, raising
    {!Hypar_ir.Verify.Failed} on a broken invariant. *)

val compile_exn :
  ?name:string -> ?simplify:bool -> ?verify_ir:bool -> string -> Hypar_ir.Cdfg.t
(** Like {!compile} but raises {!Frontend_error} on failure. *)

val string_of_error : error -> string
