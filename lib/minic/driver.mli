(** One-call frontend: source text to CDFG. *)

type error = { line : int; col : int; msg : string }

val compile :
  ?name:string ->
  ?simplify:bool ->
  ?verify_ir:bool ->
  string ->
  (Hypar_ir.Cdfg.t, error) result
(** [compile src] lexes, parses, type checks, inlines and lowers a Mini-C
    program.  With [simplify] (default [true]) the optimisation pipeline
    ({!Hypar_ir.Passes.optimize}: clean-up passes + loop-invariant code
    motion) runs on the result.  With [verify_ir] (default
    {!Hypar_ir.Passes.verify_passes}) the lowered CDFG and every pass
    output are checked by {!Hypar_ir.Verify}, raising
    {!Hypar_ir.Verify.Failed} on a broken invariant. *)

val compile_exn :
  ?name:string -> ?simplify:bool -> ?verify_ir:bool -> string -> Hypar_ir.Cdfg.t
(** Like {!compile} but raises [Failure] with a formatted message. *)

val string_of_error : error -> string
