module Ir = Hypar_ir

type operand =
  | Imm of int
  | Reg of int * string  (* register index (vid) + name, for diagnostics *)

type instr =
  | Bin of { dst : int; op : Ir.Types.alu_op; a : operand; b : operand }
  | Mul of { dst : int; a : operand; b : operand }
  | Div of { dst : int; a : operand; b : operand }
  | Rem of { dst : int; a : operand; b : operand }
  | Un of { dst : int; op : Ir.Types.un_op; a : operand }
  | Mov of { dst : int; src : operand }
  | Select of { dst : int; cond : operand; if_true : operand; if_false : operand }
  | Load of { dst : int; arr : int; aname : string; index : operand }
  | Store of { arr : int; aname : string; const : bool; index : operand; value : operand }

type terminator =
  | Jump of { target : int; edge : int }
  | Branch of {
      cond : operand;
      if_true : int;
      edge_true : int;
      if_false : int;
      edge_false : int;
    }
  | Return of operand option

type block = { body : instr array; static_loads : int; static_stores : int; term : terminator }

type t = {
  entry : int;
  blocks : block array;
  nregs : int;
  decls : Ir.Cdfg.array_decl array;  (* handle = index, declaration order *)
  handle_of : (string, int) Hashtbl.t;  (* name -> handle; later decls win *)
  const_names : (string, unit) Hashtbl.t;
  edge_keys : (int * int) array;  (* edge slot -> (src, dst) block ids *)
}

let compile cdfg =
  let cfg = Ir.Cdfg.cfg cdfg in
  let n = Ir.Cfg.block_count cfg in
  (* Register-file size: highest vid over every def, use and terminator
     read (a superset of the tree-walker's scan, which covers only
     instruction operands). *)
  let max_vid = ref 0 in
  let note (v : Ir.Instr.var) = if v.vid > !max_vid then max_vid := v.vid in
  for i = 0 to n - 1 do
    let b = Ir.Cfg.block cfg i in
    List.iter
      (fun ins ->
        (match Ir.Instr.def ins with Some v -> note v | None -> ());
        List.iter note (Ir.Instr.used_vars ins))
      b.Ir.Block.instrs;
    List.iter note (Ir.Block.terminator_uses b)
  done;
  let decls = Array.of_list (Ir.Cdfg.arrays cdfg) in
  let handle_of = Hashtbl.create 16 in
  Array.iteri
    (fun h (d : Ir.Cdfg.array_decl) -> Hashtbl.replace handle_of d.aname h)
    decls;
  let const_names = Hashtbl.create 16 in
  Array.iter
    (fun (d : Ir.Cdfg.array_decl) ->
      if d.is_const then Hashtbl.replace const_names d.aname ())
    decls;
  (* Accesses to undeclared arrays stay a *runtime* error (handle -1), so
     a program that never executes the faulty instruction still runs. *)
  let handle name =
    match Hashtbl.find_opt handle_of name with Some h -> h | None -> -1
  in
  let cop = function
    | Ir.Instr.Imm k -> Imm k
    | Ir.Instr.Var v -> Reg (v.vid, v.vname)
  in
  let cinstr = function
    | Ir.Instr.Bin { dst; op; a; b } ->
      Bin { dst = dst.vid; op; a = cop a; b = cop b }
    | Ir.Instr.Mul { dst; a; b } -> Mul { dst = dst.vid; a = cop a; b = cop b }
    | Ir.Instr.Div { dst; a; b } -> Div { dst = dst.vid; a = cop a; b = cop b }
    | Ir.Instr.Rem { dst; a; b } -> Rem { dst = dst.vid; a = cop a; b = cop b }
    | Ir.Instr.Un { dst; op; a } -> Un { dst = dst.vid; op; a = cop a }
    | Ir.Instr.Mov { dst; src } -> Mov { dst = dst.vid; src = cop src }
    | Ir.Instr.Select { dst; cond; if_true; if_false } ->
      Select
        {
          dst = dst.vid;
          cond = cop cond;
          if_true = cop if_true;
          if_false = cop if_false;
        }
    | Ir.Instr.Load { dst; arr; index } ->
      Load { dst = dst.vid; arr = handle arr; aname = arr; index = cop index }
    | Ir.Instr.Store { arr; index; value } ->
      Store
        {
          arr = handle arr;
          aname = arr;
          const = Hashtbl.mem const_names arr;
          index = cop index;
          value = cop value;
        }
  in
  let edge_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let edge_keys = ref [] in
  let nedges = ref 0 in
  let slot src dst =
    match Hashtbl.find_opt edge_tbl (src, dst) with
    | Some s -> s
    | None ->
      let s = !nedges in
      incr nedges;
      Hashtbl.add edge_tbl (src, dst) s;
      edge_keys := (src, dst) :: !edge_keys;
      s
  in
  let blocks =
    Array.init n (fun i ->
        let b = Ir.Cfg.block cfg i in
        let body = Array.of_list (List.map cinstr b.Ir.Block.instrs) in
        let static_loads =
          List.length (List.filter Ir.Instr.is_load b.Ir.Block.instrs)
        in
        let static_stores =
          List.length (List.filter Ir.Instr.is_store b.Ir.Block.instrs)
        in
        let term =
          match b.Ir.Block.term with
          | Ir.Block.Jump l ->
            let j = Ir.Cfg.id_of_label cfg l in
            Jump { target = j; edge = slot i j }
          | Ir.Block.Branch { cond; if_true; if_false } ->
            let t = Ir.Cfg.id_of_label cfg if_true in
            let f = Ir.Cfg.id_of_label cfg if_false in
            Branch
              {
                cond = cop cond;
                if_true = t;
                edge_true = slot i t;
                if_false = f;
                edge_false = slot i f;
              }
          | Ir.Block.Return op -> Return (Option.map cop op)
        in
        { body; static_loads; static_stores; term })
  in
  {
    entry = Ir.Cfg.entry cfg;
    blocks;
    nregs = !max_vid + 1;
    decls;
    handle_of;
    const_names;
    edge_keys = Array.of_list (List.rev !edge_keys);
  }
