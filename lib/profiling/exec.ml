module Ir = Hypar_ir

let error fmt =
  Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* Executes a flattened program with semantics byte-identical to
   [Interp.run]: same tick ordering (max_steps check, poll cadence, fuel
   check, decrement), same evaluation order inside instructions (operands
   right-to-left, matching the oracle's application order), same error
   messages, same result assembly.  The only licensed shortcut: when
   neither [max_steps] nor [poll] is present and enough fuel remains for a
   whole block, the per-unit tick is batched into one subtraction — the
   intermediate step counter is unobservable in that configuration. *)
let exec ?(fuel = 400_000_000) ?max_steps ?poll ?(inputs = [])
    (p : Compile.t) =
  let regs = Array.make p.nregs 0 in
  let defined = Bytes.make p.nregs '\000' in
  let data =
    Array.map
      (fun (d : Ir.Cdfg.array_decl) ->
        match d.init with
        | Some init ->
          let a = Array.make d.size 0 in
          Array.blit init 0 a 0 (min (Array.length init) d.size);
          a
        | None -> Array.make d.size 0)
      p.decls
  in
  List.iter
    (fun (name, values) ->
      match Hashtbl.find_opt p.handle_of name with
      | None -> error "input for undeclared array %S" name
      | Some h ->
        if Hashtbl.mem p.const_names name then
          error "input for const array %S" name;
        let a = data.(h) in
        Array.blit values 0 a 0 (min (Array.length values) (Array.length a)))
    inputs;
  let nblocks = Array.length p.blocks in
  let exec_freq = Array.make nblocks 0 in
  let edge_counts = Array.make (Array.length p.edge_keys) 0 in
  let budget = ref fuel in
  let steps = ref 0 in
  let fast = max_steps = None && poll = None in
  let tick () =
    (match max_steps with
    | Some limit when !steps >= limit ->
      raise (Interp.Fuel_exhausted { steps = !steps })
    | Some _ | None -> ());
    (match poll with
    | Some check when !steps land 1023 = 0 -> check ()
    | Some _ | None -> ());
    if !budget <= 0 then error "fuel exhausted (infinite loop?)";
    decr budget;
    incr steps
  in
  let get = function
    | Compile.Imm n -> n
    | Compile.Reg (r, name) ->
      if Bytes.unsafe_get defined r = '\001' then Array.unsafe_get regs r
      else error "read of undefined variable %s#%d" name r
  in
  let set r v =
    Array.unsafe_set regs r v;
    Bytes.unsafe_set defined r '\001'
  in
  let exec_one ins =
    match ins with
    | Compile.Bin { dst; op; a; b } ->
      let vb = get b in
      let va = get a in
      set dst (Ir.Types.eval_alu_op op va vb)
    | Compile.Mul { dst; a; b } ->
      let vb = get b in
      let va = get a in
      set dst (va * vb)
    | Compile.Div { dst; a; b } ->
      let d = get b in
      if d = 0 then error "division by zero";
      set dst (get a / d)
    | Compile.Rem { dst; a; b } ->
      let d = get b in
      if d = 0 then error "remainder by zero";
      set dst (get a mod d)
    | Compile.Un { dst; op; a } -> set dst (Ir.Types.eval_un_op op (get a))
    | Compile.Mov { dst; src } -> set dst (get src)
    | Compile.Select { dst; cond; if_true; if_false } ->
      set dst (if get cond <> 0 then get if_true else get if_false)
    | Compile.Load { dst; arr; aname; index } ->
      if arr < 0 then error "access to undeclared array %S" aname;
      let a = Array.unsafe_get data arr in
      let i = get index in
      if i < 0 || i >= Array.length a then
        error "array %S index %d out of bounds [0, %d)" aname i
          (Array.length a);
      set dst (Array.unsafe_get a i)
    | Compile.Store { arr; aname; const; index; value } ->
      if const then error "store to const array %S" aname;
      if arr < 0 then error "access to undeclared array %S" aname;
      let a = Array.unsafe_get data arr in
      let i = get index in
      if i < 0 || i >= Array.length a then
        error "array %S index %d out of bounds [0, %d)" aname i
          (Array.length a);
      Array.unsafe_set a i (get value)
  in
  let rec exec_block i =
    exec_freq.(i) <- exec_freq.(i) + 1;
    let b = Array.unsafe_get p.blocks i in
    let body = b.Compile.body in
    let len = Array.length body in
    if fast && !budget > len + 1 then begin
      budget := !budget - (len + 1);
      for k = 0 to len - 1 do
        exec_one (Array.unsafe_get body k)
      done
    end
    else begin
      tick ();
      for k = 0 to len - 1 do
        tick ();
        exec_one (Array.unsafe_get body k)
      done
    end;
    match b.Compile.term with
    | Compile.Jump { target; edge } ->
      edge_counts.(edge) <- edge_counts.(edge) + 1;
      exec_block target
    | Compile.Branch { cond; if_true; edge_true; if_false; edge_false } ->
      if get cond <> 0 then begin
        edge_counts.(edge_true) <- edge_counts.(edge_true) + 1;
        exec_block if_true
      end
      else begin
        edge_counts.(edge_false) <- edge_counts.(edge_false) + 1;
        exec_block if_false
      end
    | Compile.Return None -> None
    | Compile.Return (Some op) -> Some (get op)
  in
  let return_value = exec_block p.entry in
  (* Per-block memory traffic and the executed-unit totals are products
     of the visit counts: every *completed* run executed each block's
     full body [exec_freq] times, and an aborted run never reaches this
     point.  This keeps three counter bumps off the hot loop. *)
  let mem_reads = Array.make nblocks 0 in
  let mem_writes = Array.make nblocks 0 in
  let instrs_executed = ref 0 in
  let blocks_executed = ref 0 in
  for i = 0 to nblocks - 1 do
    let b = p.blocks.(i) in
    mem_reads.(i) <- exec_freq.(i) * b.Compile.static_loads;
    mem_writes.(i) <- exec_freq.(i) * b.Compile.static_stores;
    instrs_executed :=
      !instrs_executed + (exec_freq.(i) * Array.length b.Compile.body);
    blocks_executed := !blocks_executed + exec_freq.(i)
  done;
  let arrays =
    Array.to_list
      (Array.map
         (fun (d : Ir.Cdfg.array_decl) ->
           (d.aname, data.(Hashtbl.find p.handle_of d.aname)))
         p.decls)
  in
  let edge_freq = ref [] in
  for s = Array.length edge_counts - 1 downto 0 do
    if edge_counts.(s) > 0 then
      edge_freq := (p.edge_keys.(s), edge_counts.(s)) :: !edge_freq
  done;
  let edge_freq = List.sort compare !edge_freq in
  if Hypar_obs.Sink.enabled () then begin
    Hypar_obs.Counter.incr ~by:!instrs_executed "profile.instrs_executed";
    Hypar_obs.Counter.incr ~by:!blocks_executed "profile.blocks_executed"
  end;
  {
    Interp.exec_freq;
    mem_reads;
    mem_writes;
    edge_freq;
    instrs_executed = !instrs_executed;
    blocks_executed = !blocks_executed;
    return_value;
    arrays;
  }

let run ?fuel ?max_steps ?poll ?inputs cdfg =
  Hypar_obs.Span.with_ ~cat:"profile" "profile.run" @@ fun () ->
  exec ?fuel ?max_steps ?poll ?inputs (Compile.compile cdfg)
