(** Flattening compiler for the profiling interpreter's compiled backend.

    [compile] turns a CDFG into preallocated flat arrays so the executor
    ({!Exec}) touches no lists, labels or hashtables on the hot path:

    - register operands are pre-resolved to dense [vid] indices into one
      flat register file (the variable name rides along only for the
      "read of undefined variable" diagnostic);
    - array accesses are pre-resolved to integer handles into a flat
      table of data arrays ([-1] marks an access to an undeclared array,
      which must stay a runtime error, and stores carry their const-ness
      as a compiled flag);
    - branch targets are integer block ids, and every static CFG edge
      owns a preallocated counter slot ([edge] fields), deduplicated per
      (src, dst) pair exactly like the oracle's hashtable keying. *)

type operand =
  | Imm of int
  | Reg of int * string  (** register index (vid) + name, for diagnostics *)

type instr =
  | Bin of { dst : int; op : Hypar_ir.Types.alu_op; a : operand; b : operand }
  | Mul of { dst : int; a : operand; b : operand }
  | Div of { dst : int; a : operand; b : operand }
  | Rem of { dst : int; a : operand; b : operand }
  | Un of { dst : int; op : Hypar_ir.Types.un_op; a : operand }
  | Mov of { dst : int; src : operand }
  | Select of { dst : int; cond : operand; if_true : operand; if_false : operand }
  | Load of { dst : int; arr : int; aname : string; index : operand }
  | Store of { arr : int; aname : string; const : bool; index : operand; value : operand }

type terminator =
  | Jump of { target : int; edge : int }
  | Branch of {
      cond : operand;
      if_true : int;
      edge_true : int;
      if_false : int;
      edge_false : int;
    }
  | Return of operand option

type block = {
  body : instr array;
  static_loads : int;  (** loads per execution of the block *)
  static_stores : int;  (** stores per execution of the block *)
  term : terminator;
}

type t = {
  entry : int;
  blocks : block array;
  nregs : int;
  decls : Hypar_ir.Cdfg.array_decl array;
      (** handle = index, declaration order *)
  handle_of : (string, int) Hashtbl.t;
      (** name -> handle; later duplicate declarations win, matching the
          oracle's [Hashtbl.replace] semantics *)
  const_names : (string, unit) Hashtbl.t;
  edge_keys : (int * int) array;  (** edge slot -> (src, dst) block ids *)
}

val compile : Hypar_ir.Cdfg.t -> t
