module Ir = Hypar_ir

exception Runtime_error of string
exception Fuel_exhausted of { steps : int }

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let () =
  Printexc.register_printer (function
    | Fuel_exhausted { steps } ->
      Some (Printf.sprintf "Fuel_exhausted(%d steps)" steps)
    | _ -> None)

type result = {
  exec_freq : int array;
  mem_reads : int array;
  mem_writes : int array;
  edge_freq : ((int * int) * int) list;
  instrs_executed : int;
  blocks_executed : int;
  return_value : int option;
  arrays : (string * int array) list;
}

type machine = {
  regs : int array;  (* indexed by vid; [defined] tracks initialisation *)
  defined : Bytes.t;
  arrays : (string, int array) Hashtbl.t;
  const_arrays : (string, unit) Hashtbl.t;
}

let max_vid cdfg =
  let m = ref 0 in
  Array.iter
    (fun (bi : Ir.Cdfg.block_info) ->
      List.iter
        (fun instr ->
          (match Ir.Instr.def instr with
          | Some v -> m := max !m v.Ir.Instr.vid
          | None -> ());
          List.iter
            (fun (v : Ir.Instr.var) -> m := max !m v.Ir.Instr.vid)
            (Ir.Instr.used_vars instr))
        bi.Ir.Cdfg.block.Ir.Block.instrs)
    (Ir.Cdfg.infos cdfg);
  !m

let read_reg mach (v : Ir.Instr.var) =
  if Bytes.get mach.defined v.vid = '\001' then mach.regs.(v.vid)
  else error "read of undefined variable %s#%d" v.vname v.vid

let write_reg mach (v : Ir.Instr.var) value =
  mach.regs.(v.vid) <- value;
  Bytes.set mach.defined v.vid '\001'

let operand mach = function
  | Ir.Instr.Imm n -> n
  | Ir.Instr.Var v -> read_reg mach v

let array_ref mach arr =
  match Hashtbl.find_opt mach.arrays arr with
  | Some a -> a
  | None -> error "access to undeclared array %S" arr

let check_bounds arr a i =
  if i < 0 || i >= Array.length a then
    error "array %S index %d out of bounds [0, %d)" arr i (Array.length a)

let exec_instr mach instr =
  match instr with
  | Ir.Instr.Bin { dst; op; a; b } ->
    write_reg mach dst (Ir.Types.eval_alu_op op (operand mach a) (operand mach b))
  | Ir.Instr.Mul { dst; a; b } ->
    write_reg mach dst (operand mach a * operand mach b)
  | Ir.Instr.Div { dst; a; b } ->
    let d = operand mach b in
    if d = 0 then error "division by zero";
    write_reg mach dst (operand mach a / d)
  | Ir.Instr.Rem { dst; a; b } ->
    let d = operand mach b in
    if d = 0 then error "remainder by zero";
    write_reg mach dst (operand mach a mod d)
  | Ir.Instr.Un { dst; op; a } ->
    write_reg mach dst (Ir.Types.eval_un_op op (operand mach a))
  | Ir.Instr.Mov { dst; src } -> write_reg mach dst (operand mach src)
  | Ir.Instr.Select { dst; cond; if_true; if_false } ->
    let v =
      if operand mach cond <> 0 then operand mach if_true
      else operand mach if_false
    in
    write_reg mach dst v
  | Ir.Instr.Load { dst; arr; index } ->
    let a = array_ref mach arr in
    let i = operand mach index in
    check_bounds arr a i;
    write_reg mach dst a.(i)
  | Ir.Instr.Store { arr; index; value } ->
    if Hashtbl.mem mach.const_arrays arr then
      error "store to const array %S" arr;
    let a = array_ref mach arr in
    let i = operand mach index in
    check_bounds arr a i;
    a.(i) <- operand mach value

let run ?(fuel = 400_000_000) ?max_steps ?poll ?(inputs = []) cdfg =
  Hypar_obs.Span.with_ ~cat:"profile" "profile.run" @@ fun () ->
  let cfg = Ir.Cdfg.cfg cdfg in
  let n = Ir.Cdfg.block_count cdfg in
  let mach =
    {
      regs = Array.make (max_vid cdfg + 1) 0;
      defined = Bytes.make (max_vid cdfg + 1) '\000';
      arrays = Hashtbl.create 16;
      const_arrays = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (d : Ir.Cdfg.array_decl) ->
      let a =
        match d.init with
        | Some init ->
          let a = Array.make d.size 0 in
          Array.blit init 0 a 0 (min (Array.length init) d.size);
          a
        | None -> Array.make d.size 0
      in
      Hashtbl.replace mach.arrays d.aname a;
      if d.is_const then Hashtbl.replace mach.const_arrays d.aname ())
    (Ir.Cdfg.arrays cdfg);
  List.iter
    (fun (name, values) ->
      match Hashtbl.find_opt mach.arrays name with
      | None -> error "input for undeclared array %S" name
      | Some a ->
        if Hashtbl.mem mach.const_arrays name then
          error "input for const array %S" name;
        Array.blit values 0 a 0 (min (Array.length values) (Array.length a)))
    inputs;
  let exec_freq = Array.make n 0 in
  let mem_reads = Array.make n 0 in
  let mem_writes = Array.make n 0 in
  let edges : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let count_edge src dst =
    let prev = match Hashtbl.find_opt edges (src, dst) with Some c -> c | None -> 0 in
    Hashtbl.replace edges (src, dst) (prev + 1)
  in
  let instrs_executed = ref 0 in
  let blocks_executed = ref 0 in
  let budget = ref fuel in
  let steps = ref 0 in
  (* [fuel] preserves the legacy untyped diagnostic; [max_steps] is the
     typed per-evaluation budget the hardened explore driver threads in *)
  let tick () =
    (match max_steps with
    | Some limit when !steps >= limit -> raise (Fuel_exhausted { steps = !steps })
    | Some _ | None -> ());
    (* cooperative cancellation: a long-running profile stays responsive
       to wall-clock deadlines without paying a syscall per step *)
    (match poll with
    | Some check when !steps land 1023 = 0 -> check ()
    | Some _ | None -> ());
    if !budget <= 0 then error "fuel exhausted (infinite loop?)";
    decr budget;
    incr steps
  in
  let rec exec_block i =
    tick ();
    exec_freq.(i) <- exec_freq.(i) + 1;
    incr blocks_executed;
    let b = Ir.Cfg.block cfg i in
    List.iter
      (fun instr ->
        tick ();
        incr instrs_executed;
        if Ir.Instr.is_load instr then mem_reads.(i) <- mem_reads.(i) + 1;
        if Ir.Instr.is_store instr then mem_writes.(i) <- mem_writes.(i) + 1;
        exec_instr mach instr)
      b.Ir.Block.instrs;
    match b.Ir.Block.term with
    | Ir.Block.Jump l ->
      let j = Ir.Cfg.id_of_label cfg l in
      count_edge i j;
      exec_block j
    | Ir.Block.Branch { cond; if_true; if_false } ->
      let target = if operand mach cond <> 0 then if_true else if_false in
      let j = Ir.Cfg.id_of_label cfg target in
      count_edge i j;
      exec_block j
    | Ir.Block.Return op -> Option.map (operand mach) op
  in
  let return_value = exec_block (Ir.Cfg.entry cfg) in
  let arrays =
    List.map
      (fun (d : Ir.Cdfg.array_decl) -> (d.aname, Hashtbl.find mach.arrays d.aname))
      (Ir.Cdfg.arrays cdfg)
  in
  let edge_freq =
    List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) edges [])
  in
  if Hypar_obs.Sink.enabled () then begin
    Hypar_obs.Counter.incr ~by:!instrs_executed "profile.instrs_executed";
    Hypar_obs.Counter.incr ~by:!blocks_executed "profile.blocks_executed"
  end;
  {
    exec_freq;
    mem_reads;
    mem_writes;
    edge_freq;
    instrs_executed = !instrs_executed;
    blocks_executed = !blocks_executed;
    return_value;
    arrays;
  }

let array_exn (r : result) name = List.assoc name r.arrays
