(** Executor for flattened programs ({!Compile}) — the compiled backend
    of the profiling interpreter.

    Produces {!Interp.result} values byte-identical to {!Interp.run} on
    the same program and inputs: identical frequencies and counters,
    identical final array/return state, identical error messages
    ({!Interp.Runtime_error}) and identical {!Interp.Fuel_exhausted}
    step counts, and the same [poll] cadence (at least once every 1024
    executed units).  The differential suites ([test/test_compile.ml],
    the QCheck property in [test/test_fuzz.ml]) and the [interp] bench
    section enforce this equivalence. *)

val exec :
  ?fuel:int ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  Compile.t ->
  Interp.result
(** Runs an already-compiled program.  Parameters and exceptions exactly
    as {!Interp.run}.  Emits the same [profile.*] counters; does not open
    a span (callers that want the [profile.run] span use {!run}). *)

val run :
  ?fuel:int ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  Hypar_ir.Cdfg.t ->
  Interp.result
(** [compile] + [exec] under the same [profile.run] span the tree-walker
    emits, so [--stats] output is backend-independent. *)
