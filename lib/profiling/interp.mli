(** CDFG interpreter — the dynamic-analysis substrate.

    The paper gathers per-basic-block execution frequencies by compiling
    Lex-instrumented source and running it on typical inputs.  Here the
    lowered CDFG itself is executed: each block's visit count is the
    paper's [exec_freq], and the final array/return state doubles as a
    functional oracle for the benchmark applications. *)

exception Runtime_error of string
(** Division by zero, out-of-bounds access, read of an undefined scalar,
    store to a const array, or fuel exhaustion. *)

exception Fuel_exhausted of { steps : int }
(** The typed budget of [?max_steps] ran out after [steps] executed
    units (instructions + blocks).  Unlike the legacy [?fuel] overflow —
    which raises {!Runtime_error} — this is meant to be caught and
    handled (e.g. by the hardened explore driver's per-point budget). *)

type result = {
  exec_freq : int array;  (** per-block visit counts *)
  mem_reads : int array;  (** per-block dynamic load counts *)
  mem_writes : int array;  (** per-block dynamic store counts *)
  edge_freq : ((int * int) * int) list;  (** CFG edge traversal counts *)
  instrs_executed : int;
  blocks_executed : int;
  return_value : int option;
  arrays : (string * int array) list;  (** final contents, including ROMs *)
}

val run :
  ?fuel:int ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  Hypar_ir.Cdfg.t ->
  result
(** Executes the program from its entry block.

    [inputs] preloads (non-const) arrays before execution; shorter inputs
    fill the array prefix.  [fuel] bounds the number of executed
    instructions + blocks (default [400_000_000]) and overflows as an
    untyped {!Runtime_error}; [max_steps] (default unlimited) bounds the
    same units but raises the typed {!Fuel_exhausted} instead.

    [poll] is a cooperative cancellation hook: it is invoked at least
    once every 1024 executed units and may raise to abort the run —
    this is how [hypar serve] enforces per-request wall-clock deadlines
    without a watchdog thread.  The exception propagates unchanged.

    @raise Runtime_error on the conditions above.
    @raise Fuel_exhausted when [max_steps] runs out. *)

val array_exn : result -> string -> int array
(** Final contents of a named array. Raises [Not_found]. *)
