(** Profiles: the dynamic-analysis product handed to the analysis step.

    Combines the interpreter's per-block execution frequencies with static
    per-block operation counts — the two ingredients of the paper's Eq. 1
    ([total_weight = exec_freq * bb_weight]). *)

type block_stats = {
  block_id : int;
  label : string;
  freq : int;  (** dynamic execution count, the paper's [exec_freq] *)
  static_ops : int;  (** instructions in the block *)
  dynamic_ops : int;  (** freq * static_ops *)
  loads : int;  (** dynamic load count *)
  stores : int;  (** dynamic store count *)
  loop_depth : int;
}

type t = {
  cdfg_name : string;
  blocks : block_stats array;
  edges : ((int * int) * int) list;  (** CFG edge traversal counts *)
  total_instrs_executed : int;
  return_value : int option;
}

type backend = [ `Compiled | `Tree ]
(** Execution backend of the profiling interpreter.  [`Compiled]
    (default) flattens the CDFG once ({!Compile}) and executes the flat
    program ({!Exec}); [`Tree] is the original tree-walking oracle
    ({!Interp.run}).  Both produce byte-identical {!Interp.result}s. *)

val backend_of_env : unit -> backend
(** Backend selected by the [HYPAR_INTERP] environment variable:
    ["tree"] picks the oracle, anything else (or unset) the compiled
    backend.  This is the default of {!run} and what [hypar serve]
    honours. *)

val run :
  ?backend:backend ->
  ?fuel:int ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  Hypar_ir.Cdfg.t ->
  Interp.result
(** Executes the program on the selected backend (default
    {!backend_of_env}).  Parameters and exceptions as {!Interp.run}. *)

val collect :
  ?backend:backend ->
  ?fuel:int ->
  ?inputs:(string * int array) list ->
  Hypar_ir.Cdfg.t ->
  t
(** Runs the program (see {!run}) and assembles per-block stats. *)

val of_result : Hypar_ir.Cdfg.t -> Interp.result -> t
(** Assembles a profile from an existing interpreter run. *)

val freq : t -> int -> int
(** Execution frequency of a block id (0 when never executed). *)

val hottest : ?limit:int -> t -> block_stats list
(** Blocks sorted by decreasing [dynamic_ops] (default all). *)

val edge_freq : t -> int -> int -> int
(** Traversal count of the CFG edge (src, dst); 0 when never taken. *)

val pp : Format.formatter -> t -> unit
