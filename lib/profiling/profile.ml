module Ir = Hypar_ir

type block_stats = {
  block_id : int;
  label : string;
  freq : int;
  static_ops : int;
  dynamic_ops : int;
  loads : int;
  stores : int;
  loop_depth : int;
}

type t = {
  cdfg_name : string;
  blocks : block_stats array;
  edges : ((int * int) * int) list;
  total_instrs_executed : int;
  return_value : int option;
}

let of_result cdfg (r : Interp.result) =
  let blocks =
    Array.mapi
      (fun i (bi : Ir.Cdfg.block_info) ->
        let static_ops = Ir.Block.instr_count bi.block in
        {
          block_id = i;
          label = bi.block.Ir.Block.label;
          freq = r.exec_freq.(i);
          static_ops;
          dynamic_ops = r.exec_freq.(i) * static_ops;
          loads = r.mem_reads.(i);
          stores = r.mem_writes.(i);
          loop_depth = bi.loop_depth;
        })
      (Ir.Cdfg.infos cdfg)
  in
  {
    cdfg_name = Ir.Cdfg.name cdfg;
    blocks;
    edges = r.edge_freq;
    total_instrs_executed = r.instrs_executed;
    return_value = r.return_value;
  }

type backend = [ `Compiled | `Tree ]

let backend_of_env () =
  match Sys.getenv_opt "HYPAR_INTERP" with
  | Some s when String.lowercase_ascii (String.trim s) = "tree" -> `Tree
  | Some _ | None -> `Compiled

let run ?backend ?fuel ?max_steps ?poll ?inputs cdfg =
  match
    match backend with Some b -> b | None -> backend_of_env ()
  with
  | `Tree -> Interp.run ?fuel ?max_steps ?poll ?inputs cdfg
  | `Compiled -> Exec.run ?fuel ?max_steps ?poll ?inputs cdfg

let collect ?backend ?fuel ?inputs cdfg =
  of_result cdfg (run ?backend ?fuel ?inputs cdfg)

let freq t i = if i >= 0 && i < Array.length t.blocks then t.blocks.(i).freq else 0

let hottest ?limit t =
  let sorted =
    List.sort
      (fun a b -> compare b.dynamic_ops a.dynamic_ops)
      (Array.to_list t.blocks)
  in
  match limit with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted

let edge_freq t src dst =
  match List.assoc_opt (src, dst) t.edges with Some c -> c | None -> 0

let pp ppf t =
  Format.fprintf ppf "@[<v>profile of %s: %d instrs executed@," t.cdfg_name
    t.total_instrs_executed;
  Array.iter
    (fun b ->
      Format.fprintf ppf
        "  BB%-3d %-20s freq=%-9d ops=%-4d dyn=%-10d ld=%-8d st=%-8d depth=%d@,"
        b.block_id b.label b.freq b.static_ops b.dynamic_ops b.loads b.stores
        b.loop_depth)
    t.blocks;
  Format.fprintf ppf "@]"
