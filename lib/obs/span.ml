let with_ ?(cat = "hypar") ?(args = []) name f =
  if not (Sink.enabled ()) then f ()
  else begin
    let tid = Sink.tid () in
    Sink.emit
      { Event.name; ts = Sink.now (); tid; kind = Event.Begin { cat; args } };
    Fun.protect
      ~finally:(fun () ->
        Sink.emit { Event.name; ts = Sink.now (); tid; kind = Event.End })
      f
  end

let instant ?(cat = "hypar") name =
  if Sink.enabled () then
    Sink.emit
      {
        Event.name;
        ts = Sink.now ();
        tid = Sink.tid ();
        kind = Event.Instant { cat };
      }

type summary = {
  events : int;
  spans : int;
  max_depth : int;
  names : (string * int) list;
}

(* Structural validation: per-tid stacks; every End must close the most
   recent open Begin of its thread, and no span may stay open. *)
let validate events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let max_depth = ref 0 in
  let exception Bad of string in
  try
    List.iter
      (fun (e : Event.t) ->
        let stack =
          Option.value (Hashtbl.find_opt stacks e.Event.tid) ~default:[]
        in
        match e.Event.kind with
        | Event.Begin _ ->
          let stack = e.Event.name :: stack in
          if List.length stack > !max_depth then
            max_depth := List.length stack;
          Hashtbl.replace stacks e.Event.tid stack
        | Event.End -> (
          match stack with
          | [] ->
            raise
              (Bad
                 (Printf.sprintf "end of %S (tid %d) with no open span"
                    e.Event.name e.Event.tid))
          | top :: rest ->
            if top <> e.Event.name then
              raise
                (Bad
                   (Printf.sprintf
                      "end of %S (tid %d) does not match innermost open span \
                       %S"
                      e.Event.name e.Event.tid top));
            if not (Hashtbl.mem counts top) then order := top :: !order;
            Hashtbl.replace counts top
              (1 + Option.value (Hashtbl.find_opt counts top) ~default:0);
            Hashtbl.replace stacks e.Event.tid rest)
        | Event.Counter _ | Event.Gauge _ | Event.Instant _ -> ())
      events;
    Hashtbl.iter
      (fun tid stack ->
        match stack with
        | [] -> ()
        | top :: _ ->
          raise
            (Bad (Printf.sprintf "span %S (tid %d) never closed" top tid)))
      stacks;
    Ok
      {
        events = List.length events;
        spans = Hashtbl.fold (fun _ c acc -> acc + c) counts 0;
        max_depth = !max_depth;
        names =
          List.rev_map (fun n -> (n, Hashtbl.find counts n)) !order;
      }
  with Bad msg -> Error msg
