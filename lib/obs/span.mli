(** Scoped spans over the sink.

    [with_ name f] emits a [Begin] event, runs [f], and always emits the
    matching [End] (also when [f] raises), so a recorded stream is
    balanced by construction.  When the sink is disabled it calls [f]
    directly — one atomic load of overhead. *)

val with_ :
  ?cat:string -> ?args:(string * Event.arg) list -> string -> (unit -> 'a) -> 'a

val instant : ?cat:string -> string -> unit
(** A zero-duration marker event. *)

type summary = {
  events : int;  (** total events, of any kind *)
  spans : int;  (** completed spans *)
  max_depth : int;  (** deepest nesting seen on any thread *)
  names : (string * int) list;
      (** completed-span count per name, in first-completion order *)
}

val validate : Event.t list -> (summary, string) result
(** Check structural well-formedness: per thread, every [End] closes the
    most recently opened [Begin] of the same name, and nothing stays
    open.  This is what [hypar trace] runs over an exported file. *)
