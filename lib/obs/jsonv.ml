type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Parse of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* our emitters only write \u for control chars *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | c -> fail (Printf.sprintf "bad escape %C" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse msg -> Error msg
  (* total over byte soup: even a parser bug must surface as Error *)
  | exception Stack_overflow -> Error "nesting too deep"

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr els ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ',';
          go e)
        els;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, e) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go e)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr els -> Some els | _ -> None
