(** Exporters over an event stream, plus a parser for validating
    exported Chrome traces. *)

val chrome : Event.t list -> string
(** Chrome [trace_event] JSON (loadable in chrome://tracing and
    Perfetto): spans as "B"/"E" phase pairs, counters and gauges as "C"
    phase with [args.value] (counters as running totals), instants as
    "i".  [pid] is always 0 and timestamps are microseconds, so two
    runs differ only in [ts] values. *)

val json : Event.t list -> string
(** Native dump, schema ["hypar-obs/1"]: one object per event with
    [type], [name], [tid], [ts] and kind-specific fields ([cat]/[args],
    [delta], [value]). *)

val text : Event.t list -> string
(** Human-readable listing, one event per line, indented by span depth:
    [>]/[<] open/close spans, [+] counters, [=] gauges, [!] instants. *)

val parse_chrome : string -> (Event.t list, string) result
(** Parse a {!chrome} export back into events ("C" phases come back as
    gauges carrying the running total).  Used by [hypar trace] to
    validate a written file. *)

val write_file : string -> string -> unit
(** [write_file path data] writes atomically: the bytes go to a
    temporary sibling first and land at [path] via [Sys.rename], so a
    crash mid-export never leaves a torn file.  Used for every rendered
    artefact the CLI writes to disk ([--trace], [explore --out]).
    Raises [Sys_error] on I/O failure (the temp file is removed). *)
