let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let clock : Clock.t ref = ref Clock.default
let now () = !clock ()

let with_clock c f =
  let old = !clock in
  clock := c;
  Fun.protect ~finally:(fun () -> clock := old) f

let tid () = (Domain.self () :> int)

(* The process-wide buffer, newest first.  A mutex (not an atomic list)
   because emission must be ordered with respect to concurrent drains. *)
let mutex = Mutex.create ()
let global : Event.t list ref = ref []

(* Redirection stack for [collect]: domain-local, so parallel workers
   capture their own events privately without touching the global
   buffer (or its lock) at all. *)
let redirect : Event.t list ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let emit e =
  match !(Domain.DLS.get redirect) with
  | buf :: _ -> buf := e :: !buf
  | [] ->
    Mutex.lock mutex;
    global := e :: !global;
    Mutex.unlock mutex

let collect f =
  if not (enabled ()) then (f (), [])
  else begin
    let stack = Domain.DLS.get redirect in
    let buf = ref [] in
    stack := buf :: !stack;
    let pop () =
      match !stack with _ :: tl -> stack := tl | [] -> ()
    in
    match f () with
    | v ->
      pop ();
      (v, List.rev !buf)
    | exception e ->
      pop ();
      raise e
  end

let replay events =
  let t = tid () in
  List.iter (fun (e : Event.t) -> emit { e with Event.tid = t }) events

let events () =
  Mutex.lock mutex;
  let es = List.rev !global in
  Mutex.unlock mutex;
  es

let clear () =
  Mutex.lock mutex;
  global := [];
  Mutex.unlock mutex
