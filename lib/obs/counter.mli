(** Named counters (monotonic deltas) and gauges (last-write values).

    [incr]/[set] are no-ops when the sink is disabled — a single atomic
    load and no allocation, safe on hot paths. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val set : string -> int -> unit
(** Record an absolute gauge value (e.g. a schedule length). *)

val totals : Event.t list -> (string * int) list
(** Sum of deltas per counter name, in first-appearance order. *)

val gauges : Event.t list -> (string * int) list
(** Last recorded value per gauge name, in first-appearance order. *)
