(** Aggregated per-stage statistics over an event stream — the [--stats]
    breakdown. *)

type span_stat = {
  name : string;
  count : int;
  total_us : float;  (** summed wall time of all spans with this name *)
  self_us : float;  (** total minus time spent in child spans *)
}

val spans : Event.t list -> span_stat list
(** Per-name aggregates in first-completion order.  Tolerates unbalanced
    streams (drops the broken tail); use {!Span.validate} to detect
    them. *)

val render : Event.t list -> string
(** Human-readable breakdown: span table, counter totals, gauge values.
    Counts are deterministic for a deterministic run; only the [_us]
    columns vary (tests scrub them). *)
