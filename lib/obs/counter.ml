let incr ?(by = 1) name =
  if Sink.enabled () then
    Sink.emit
      {
        Event.name;
        ts = Sink.now ();
        tid = Sink.tid ();
        kind = Event.Counter { delta = by };
      }

let set name value =
  if Sink.enabled () then
    Sink.emit
      {
        Event.name;
        ts = Sink.now ();
        tid = Sink.tid ();
        kind = Event.Gauge { value };
      }

(* assoc-list accumulation keeps first-appearance order; counter and
   gauge name sets are small *)
let update_assoc acc name f =
  let rec go = function
    | [] -> [ (name, f None) ]
    | (n, old) :: tl when n = name -> (n, f (Some old)) :: tl
    | hd :: tl -> hd :: go tl
  in
  go acc

let totals events =
  List.fold_left
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Counter { delta } ->
        update_assoc acc e.Event.name (fun old ->
            delta + Option.value old ~default:0)
      | Event.Begin _ | Event.End | Event.Gauge _ | Event.Instant _ -> acc)
    [] events

let gauges events =
  List.fold_left
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Gauge { value } ->
        update_assoc acc e.Event.name (fun _ -> value)
      | Event.Begin _ | Event.End | Event.Counter _ | Event.Instant _ -> acc)
    [] events
