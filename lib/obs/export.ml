(* --- JSON emission helpers -------------------------------------------- *)

let json_escape = Jsonv.escape

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k)
             (match v with
             | Event.Int n -> string_of_int n
             | Event.Str s -> Printf.sprintf "\"%s\"" (json_escape s)))
         args)
  ^ "}"

(* --- Chrome trace_event format ----------------------------------------- *)

(* One event per line; counters/gauges both map to "C" phase with their
   running total / absolute value under args.value.  pid is a constant 0
   so two runs of the same pipeline produce comparable files. *)
let chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let n = List.length events in
  List.iteri
    (fun i (e : Event.t) ->
      let common =
        Printf.sprintf "\"pid\":0,\"tid\":%d,\"ts\":%.3f" e.Event.tid e.Event.ts
      in
      let line =
        match e.Event.kind with
        | Event.Begin { cat; args } ->
          Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",%s%s}"
            (json_escape e.Event.name) (json_escape cat) common
            (if args = [] then "" else ",\"args\":" ^ json_args args)
        | Event.End ->
          Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",%s}"
            (json_escape e.Event.name) common
        | Event.Counter { delta } ->
          let total =
            delta + Option.value (Hashtbl.find_opt totals e.Event.name) ~default:0
          in
          Hashtbl.replace totals e.Event.name total;
          Printf.sprintf
            "{\"name\":\"%s\",\"ph\":\"C\",%s,\"args\":{\"value\":%d}}"
            (json_escape e.Event.name) common total
        | Event.Gauge { value } ->
          Printf.sprintf
            "{\"name\":\"%s\",\"ph\":\"C\",%s,\"args\":{\"value\":%d}}"
            (json_escape e.Event.name) common value
        | Event.Instant { cat } ->
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s}"
            (json_escape e.Event.name) (json_escape cat) common
      in
      Buffer.add_string buf line;
      if i < n - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    events;
  Buffer.add_string buf "],\n\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* --- native JSON dump --------------------------------------------------- *)

let json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"hypar-obs/1\",\"events\":[\n";
  let n = List.length events in
  List.iteri
    (fun i (e : Event.t) ->
      let common =
        Printf.sprintf "\"name\":\"%s\",\"tid\":%d,\"ts\":%.3f"
          (json_escape e.Event.name) e.Event.tid e.Event.ts
      in
      let line =
        match e.Event.kind with
        | Event.Begin { cat; args } ->
          Printf.sprintf "{\"type\":\"begin\",%s,\"cat\":\"%s\"%s}" common
            (json_escape cat)
            (if args = [] then "" else ",\"args\":" ^ json_args args)
        | Event.End -> Printf.sprintf "{\"type\":\"end\",%s}" common
        | Event.Counter { delta } ->
          Printf.sprintf "{\"type\":\"counter\",%s,\"delta\":%d}" common delta
        | Event.Gauge { value } ->
          Printf.sprintf "{\"type\":\"gauge\",%s,\"value\":%d}" common value
        | Event.Instant { cat } ->
          Printf.sprintf "{\"type\":\"instant\",%s,\"cat\":\"%s\"}" common
            (json_escape cat)
      in
      Buffer.add_string buf line;
      if i < n - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* --- human-readable text ------------------------------------------------ *)

let text events =
  let buf = Buffer.create 4096 in
  let depth : (int, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      let d = Option.value (Hashtbl.find_opt depth e.Event.tid) ~default:0 in
      let line indent marker rest =
        Buffer.add_string buf
          (Printf.sprintf "%12.3f %d %s%s %s\n" e.Event.ts e.Event.tid
             (String.make (2 * indent) ' ')
             marker rest)
      in
      match e.Event.kind with
      | Event.Begin { cat; args } ->
        line d ">"
          (Printf.sprintf "%s [%s]%s" e.Event.name cat
             (if args = [] then ""
              else
                " "
                ^ String.concat " "
                    (List.map
                       (fun (k, v) -> k ^ "=" ^ Event.string_of_arg v)
                       args)));
        Hashtbl.replace depth e.Event.tid (d + 1)
      | Event.End ->
        let d = max 0 (d - 1) in
        Hashtbl.replace depth e.Event.tid d;
        line d "<" e.Event.name
      | Event.Counter { delta } ->
        line d "+" (Printf.sprintf "%s %+d" e.Event.name delta)
      | Event.Gauge { value } ->
        line d "=" (Printf.sprintf "%s %d" e.Event.name value)
      | Event.Instant { cat } ->
        line d "!" (Printf.sprintf "%s [%s]" e.Event.name cat))
    events;
  Buffer.contents buf

(* --- parsing exported chrome traces back (see Jsonv) -------------------- *)

exception Bad_event of string

let parse_chrome data =
  match Jsonv.parse data with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok (Jsonv.Obj fields) -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Jsonv.Arr raw_events) -> (
      let to_event i ev =
        let str name =
          match Jsonv.member name ev with Some (Jsonv.Str s) -> Some s | _ -> None
        in
        let num name =
          match Jsonv.member name ev with Some (Jsonv.Num f) -> Some f | _ -> None
        in
        let require what = function
          | Some v -> v
          | None ->
            raise
              (Bad_event (Printf.sprintf "event %d: missing or bad %S" i what))
        in
        let name = require "name" (str "name") in
        let ts = require "ts" (num "ts") in
        let tid = int_of_float (require "tid" (num "tid")) in
        let cat = Option.value (str "cat") ~default:"" in
        let args () =
          match Jsonv.member "args" ev with
          | Some (Jsonv.Obj fs) ->
            List.map
              (fun (k, v) ->
                match v with
                | Jsonv.Num f -> (k, Event.Int (int_of_float f))
                | Jsonv.Str s -> (k, Event.Str s)
                | _ ->
                  raise
                    (Bad_event
                       (Printf.sprintf "event %d: unsupported arg %S" i k)))
              fs
          | Some _ ->
            raise (Bad_event (Printf.sprintf "event %d: args is not an object" i))
          | None -> []
        in
        match require "ph" (str "ph") with
        | "B" ->
          { Event.name; ts; tid; kind = Event.Begin { cat; args = args () } }
        | "E" -> { Event.name; ts; tid; kind = Event.End }
        | "C" -> (
          match List.assoc_opt "value" (args ()) with
          | Some (Event.Int v) ->
            { Event.name; ts; tid; kind = Event.Gauge { value = v } }
          | _ ->
            raise
              (Bad_event (Printf.sprintf "event %d: counter without args.value" i)))
        | "i" | "I" -> { Event.name; ts; tid; kind = Event.Instant { cat } }
        | ph ->
          raise (Bad_event (Printf.sprintf "event %d: unknown phase %S" i ph))
      in
      match List.mapi to_event raw_events with
      | events -> Ok events
      | exception Bad_event msg -> Error msg)
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "no traceEvents field")
  | Ok _ -> Error "top level is not an object"

(* --- atomic file output -------------------------------------------------- *)

(* Write-to-temp + rename(2): a crash (or signal) mid-export leaves either
   the previous file or a stray .tmp sibling, never a torn target. *)
let write_file path data =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp"
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
