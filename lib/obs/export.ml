(* --- JSON emission helpers -------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k)
             (match v with
             | Event.Int n -> string_of_int n
             | Event.Str s -> Printf.sprintf "\"%s\"" (json_escape s)))
         args)
  ^ "}"

(* --- Chrome trace_event format ----------------------------------------- *)

(* One event per line; counters/gauges both map to "C" phase with their
   running total / absolute value under args.value.  pid is a constant 0
   so two runs of the same pipeline produce comparable files. *)
let chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let n = List.length events in
  List.iteri
    (fun i (e : Event.t) ->
      let common =
        Printf.sprintf "\"pid\":0,\"tid\":%d,\"ts\":%.3f" e.Event.tid e.Event.ts
      in
      let line =
        match e.Event.kind with
        | Event.Begin { cat; args } ->
          Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",%s%s}"
            (json_escape e.Event.name) (json_escape cat) common
            (if args = [] then "" else ",\"args\":" ^ json_args args)
        | Event.End ->
          Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",%s}"
            (json_escape e.Event.name) common
        | Event.Counter { delta } ->
          let total =
            delta + Option.value (Hashtbl.find_opt totals e.Event.name) ~default:0
          in
          Hashtbl.replace totals e.Event.name total;
          Printf.sprintf
            "{\"name\":\"%s\",\"ph\":\"C\",%s,\"args\":{\"value\":%d}}"
            (json_escape e.Event.name) common total
        | Event.Gauge { value } ->
          Printf.sprintf
            "{\"name\":\"%s\",\"ph\":\"C\",%s,\"args\":{\"value\":%d}}"
            (json_escape e.Event.name) common value
        | Event.Instant { cat } ->
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s}"
            (json_escape e.Event.name) (json_escape cat) common
      in
      Buffer.add_string buf line;
      if i < n - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    events;
  Buffer.add_string buf "],\n\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* --- native JSON dump --------------------------------------------------- *)

let json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"hypar-obs/1\",\"events\":[\n";
  let n = List.length events in
  List.iteri
    (fun i (e : Event.t) ->
      let common =
        Printf.sprintf "\"name\":\"%s\",\"tid\":%d,\"ts\":%.3f"
          (json_escape e.Event.name) e.Event.tid e.Event.ts
      in
      let line =
        match e.Event.kind with
        | Event.Begin { cat; args } ->
          Printf.sprintf "{\"type\":\"begin\",%s,\"cat\":\"%s\"%s}" common
            (json_escape cat)
            (if args = [] then "" else ",\"args\":" ^ json_args args)
        | Event.End -> Printf.sprintf "{\"type\":\"end\",%s}" common
        | Event.Counter { delta } ->
          Printf.sprintf "{\"type\":\"counter\",%s,\"delta\":%d}" common delta
        | Event.Gauge { value } ->
          Printf.sprintf "{\"type\":\"gauge\",%s,\"value\":%d}" common value
        | Event.Instant { cat } ->
          Printf.sprintf "{\"type\":\"instant\",%s,\"cat\":\"%s\"}" common
            (json_escape cat)
      in
      Buffer.add_string buf line;
      if i < n - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* --- human-readable text ------------------------------------------------ *)

let text events =
  let buf = Buffer.create 4096 in
  let depth : (int, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      let d = Option.value (Hashtbl.find_opt depth e.Event.tid) ~default:0 in
      let line indent marker rest =
        Buffer.add_string buf
          (Printf.sprintf "%12.3f %d %s%s %s\n" e.Event.ts e.Event.tid
             (String.make (2 * indent) ' ')
             marker rest)
      in
      match e.Event.kind with
      | Event.Begin { cat; args } ->
        line d ">"
          (Printf.sprintf "%s [%s]%s" e.Event.name cat
             (if args = [] then ""
              else
                " "
                ^ String.concat " "
                    (List.map
                       (fun (k, v) -> k ^ "=" ^ Event.string_of_arg v)
                       args)));
        Hashtbl.replace depth e.Event.tid (d + 1)
      | Event.End ->
        let d = max 0 (d - 1) in
        Hashtbl.replace depth e.Event.tid d;
        line d "<" e.Event.name
      | Event.Counter { delta } ->
        line d "+" (Printf.sprintf "%s %+d" e.Event.name delta)
      | Event.Gauge { value } ->
        line d "=" (Printf.sprintf "%s %d" e.Event.name value)
      | Event.Instant { cat } ->
        line d "!" (Printf.sprintf "%s [%s]" e.Event.name cat))
    events;
  Buffer.contents buf

(* --- minimal JSON parser (for validating exported chrome traces) -------- *)

type jv =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of jv list
  | Jobj of (string * jv) list

exception Parse of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* our emitter only writes \u for control chars *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | c -> fail (Printf.sprintf "bad escape %C" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (elements [])
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let parse_chrome data =
  match parse_json data with
  | exception Parse msg -> Error ("not valid JSON: " ^ msg)
  | Jobj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Jarr raw_events) -> (
      let field name = function
        | Jobj fs -> List.assoc_opt name fs
        | _ -> None
      in
      let to_event i ev =
        let str name =
          match field name ev with Some (Jstr s) -> Some s | _ -> None
        in
        let num name =
          match field name ev with Some (Jnum f) -> Some f | _ -> None
        in
        let require what = function
          | Some v -> v
          | None ->
            raise
              (Parse (Printf.sprintf "event %d: missing or bad %S" i what))
        in
        let name = require "name" (str "name") in
        let ts = require "ts" (num "ts") in
        let tid = int_of_float (require "tid" (num "tid")) in
        let cat = Option.value (str "cat") ~default:"" in
        let args () =
          match field "args" ev with
          | Some (Jobj fs) ->
            List.map
              (fun (k, v) ->
                match v with
                | Jnum f -> (k, Event.Int (int_of_float f))
                | Jstr s -> (k, Event.Str s)
                | _ ->
                  raise
                    (Parse
                       (Printf.sprintf "event %d: unsupported arg %S" i k)))
              fs
          | Some _ ->
            raise (Parse (Printf.sprintf "event %d: args is not an object" i))
          | None -> []
        in
        match require "ph" (str "ph") with
        | "B" ->
          { Event.name; ts; tid; kind = Event.Begin { cat; args = args () } }
        | "E" -> { Event.name; ts; tid; kind = Event.End }
        | "C" -> (
          match List.assoc_opt "value" (args ()) with
          | Some (Event.Int v) ->
            { Event.name; ts; tid; kind = Event.Gauge { value = v } }
          | _ ->
            raise
              (Parse (Printf.sprintf "event %d: counter without args.value" i)))
        | "i" | "I" -> { Event.name; ts; tid; kind = Event.Instant { cat } }
        | ph -> raise (Parse (Printf.sprintf "event %d: unknown phase %S" i ph))
      in
      match List.mapi to_event raw_events with
      | events -> Ok events
      | exception Parse msg -> Error msg)
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "no traceEvents field")
  | _ -> Error "top level is not an object"
