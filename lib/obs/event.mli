(** Trace events: the single record type flowing through the sink.

    Spans are recorded as paired [Begin]/[End] events (Chrome
    trace_event "B"/"E" phases); counters as deltas, gauges as absolute
    values.  [ts] is in microseconds as produced by the sink's clock and
    [tid] is the emitting domain's id (rewritten by {!Sink.replay} when
    captured worker events are merged back deterministically). *)

type arg = Int of int | Str of string

type kind =
  | Begin of { cat : string; args : (string * arg) list }
  | End
  | Counter of { delta : int }
  | Gauge of { value : int }
  | Instant of { cat : string }

type t = { name : string; ts : float; tid : int; kind : kind }

val kind_label : kind -> string
val string_of_arg : arg -> string
