type t = unit -> float

let t0 = Unix.gettimeofday ()

(* Wall time since process start, in microseconds, monotonised: a reading
   never goes backwards even if the system clock is stepped. The CAS loop
   keeps the watermark correct when several domains read concurrently. *)
let watermark = Atomic.make 0.0

let default () =
  let now = (Unix.gettimeofday () -. t0) *. 1e6 in
  let rec fix () =
    let prev = Atomic.get watermark in
    if now >= prev then
      if Atomic.compare_and_set watermark prev now then now else fix ()
    else prev
  in
  fix ()

let counter ?(start = 0.0) ?(step = 1.0) () =
  let state = Atomic.make start in
  fun () ->
    let rec go () =
      let v = Atomic.get state in
      if Atomic.compare_and_set state v (v +. step) then v else go ()
    in
    go ()
