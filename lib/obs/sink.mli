(** The process-wide event sink.

    Disabled by default: every emission point in the pipeline first
    checks {!enabled}, so a disabled run performs one atomic load per
    potential event and records nothing.  When enabled, events go to a
    mutex-protected process-wide buffer — or, inside {!collect}, to a
    domain-local capture buffer, which is how the parallel explorer
    merges worker traces back deterministically. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val now : unit -> float
(** Current timestamp (microseconds) from the active clock. *)

val with_clock : Clock.t -> (unit -> 'a) -> 'a
(** Run [f] with the given clock installed; restores the previous clock
    afterwards (also on exceptions).  Tests inject {!Clock.counter} here
    for deterministic timestamps. *)

val tid : unit -> int
(** The calling domain's id, recorded on each event. *)

val emit : Event.t -> unit
(** Append an event.  Callers are expected to have checked {!enabled};
    emitting while disabled still records the event. *)

val collect : (unit -> 'a) -> 'a * Event.t list
(** [collect f] runs [f] with this domain's emissions redirected to a
    private buffer and returns them (oldest first) alongside [f]'s
    result.  Nests; a no-op returning [[]] when the sink is disabled. *)

val replay : Event.t list -> unit
(** Re-emit previously captured events, rewriting their [tid] to the
    replaying domain — the deterministic merge step: replaying worker
    captures in a fixed order yields the same stream for any [--jobs]. *)

val events : unit -> Event.t list
(** Snapshot of the process-wide buffer, oldest first. *)

val clear : unit -> unit
