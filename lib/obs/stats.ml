type span_stat = { name : string; count : int; total_us : float; self_us : float }

(* Per-tid stacks of (name, start_ts, child time accumulator): on close,
   the span's duration feeds the per-name totals and its parent's child
   accumulator, giving self = total - children. *)
let spans events =
  let stacks : (int, (string * float * float ref) list) Hashtbl.t =
    Hashtbl.create 4
  in
  let agg : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Event.t) ->
      let stack =
        Option.value (Hashtbl.find_opt stacks e.Event.tid) ~default:[]
      in
      match e.Event.kind with
      | Event.Begin _ ->
        Hashtbl.replace stacks e.Event.tid
          ((e.Event.name, e.Event.ts, ref 0.0) :: stack)
      | Event.End -> (
        match stack with
        | (name, start, children) :: rest when name = e.Event.name ->
          let dur = e.Event.ts -. start in
          let self = dur -. !children in
          (match rest with
          | (_, _, parent_children) :: _ ->
            parent_children := !parent_children +. dur
          | [] -> ());
          if not (Hashtbl.mem agg name) then order := name :: !order;
          let c, t, s =
            Option.value (Hashtbl.find_opt agg name) ~default:(0, 0.0, 0.0)
          in
          Hashtbl.replace agg name (c + 1, t +. dur, s +. self);
          Hashtbl.replace stacks e.Event.tid rest
        | _ -> (* unbalanced stream: ignore, validation reports it *) ())
      | Event.Counter _ | Event.Gauge _ | Event.Instant _ -> ())
    events;
  List.rev_map
    (fun name ->
      let count, total_us, self_us = Hashtbl.find agg name in
      { name; count; total_us; self_us })
    !order

let render events =
  let buf = Buffer.create 1024 in
  let span_stats = spans events in
  Buffer.add_string buf "== hypar stats ==\n";
  if span_stats <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-32s %7s %14s %14s\n" "span" "count" "total_us"
         "self_us");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%-32s %7d %14.1f %14.1f\n" s.name s.count
             s.total_us s.self_us))
      span_stats
  end;
  let totals = Counter.totals events in
  if totals <> [] then begin
    Buffer.add_string buf (Printf.sprintf "%-32s %7s\n" "counter" "total");
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %7d\n" n v))
      totals
  end;
  let gauges = Counter.gauges events in
  if gauges <> [] then begin
    Buffer.add_string buf (Printf.sprintf "%-32s %7s\n" "gauge" "last");
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %7d\n" n v))
      gauges
  end;
  Buffer.contents buf
