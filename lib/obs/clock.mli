(** Clock abstraction for the tracing sink.

    A clock returns a timestamp in microseconds.  The default clock is
    wall time since process start, monotonised so successive readings
    never decrease (even across domains or if the system clock steps).
    Tests inject {!counter} through {!Sink.with_clock} for fully
    deterministic event streams. *)

type t = unit -> float

val default : t
(** Monotonised wall-clock microseconds since process start. *)

val counter : ?start:float -> ?step:float -> unit -> t
(** A fake clock: returns [start], [start +. step], [start +. 2. *. step],
    … on successive calls.  Thread-safe (atomic fetch-and-add), so a run
    under a fake clock is still well-ordered per domain. *)
