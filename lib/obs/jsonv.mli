(** Minimal JSON values: a recursive-descent parser, a compact one-line
    renderer and an escaping helper.

    Originally private to {!Export} (validating exported Chrome traces);
    extracted so other JSON-speaking layers — notably the [hypar serve]
    request protocol — parse with the same total, exception-free code
    path.  No floats are ever produced for integral numbers by
    {!to_string}, so a parse/render round-trip of integer-valued
    documents is stable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  Errors are located as
    ["... at offset N"] and never raised: arbitrary byte soup yields
    [Error], not an exception. *)

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON
    (quotes, backslashes, control characters). *)

val to_string : t -> string
(** Compact single-line rendering.  Numbers that are exact integers
    print without a fractional part; other numbers use [%.12g]. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option
(** [Some n] for an integral [Num]. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
