type arg = Int of int | Str of string

type kind =
  | Begin of { cat : string; args : (string * arg) list }
  | End
  | Counter of { delta : int }
  | Gauge of { value : int }
  | Instant of { cat : string }

type t = { name : string; ts : float; tid : int; kind : kind }

let kind_label = function
  | Begin _ -> "begin"
  | End -> "end"
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Instant _ -> "instant"

let string_of_arg = function Int n -> string_of_int n | Str s -> s
