(** Robust evaluation of one design-space point.

    Builds the platform the point describes, runs the Figure-2 flow
    ({!Hypar_core.Flow.partition}) on the shared prepared application and
    distils the result into a flat {!metrics} record (timing components,
    moved set, Eq.-2 reduction, and the energy of the partitioned
    execution under {!Hypar_core.Energy.default}).

    A point whose evaluation raises — an invalid platform
    ([Invalid_argument] from the device models), a failed IR invariant
    ({!Hypar_ir.Verify.Failed}), or any other exception — is returned as
    [Error reason] instead of aborting the sweep. *)

type metrics = {
  cgc_desc : string;  (** e.g. ["two 2x2"], {!Hypar_coarsegrain.Cgc.describe} *)
  initial : Hypar_core.Engine.times;  (** the all-FPGA mapping *)
  final : Hypar_core.Engine.times;
  coarse_cgc_cycles : int;  (** "Cycles in CGC" row, CGC cycles *)
  moved : int list;  (** moved kernels, in move order *)
  skipped : int;  (** kernels that could not move *)
  status : Hypar_core.Engine.status;
  met : bool;
  reduction : float;  (** percent vs the all-FPGA mapping *)
  energy : int;  (** partitioned-execution energy, {!Hypar_core.Energy} units *)
}

val platform_of : Space.point -> Hypar_core.Platform.t
(** Raises [Invalid_argument] on non-positive dimensions (the device
    models' own validation). *)

val evaluate :
  ?faults:Hypar_resilience.Fault.spec ->
  ?point_fuel:int ->
  Hypar_core.Flow.prepared ->
  Space.point ->
  (metrics, string) result
(** [faults] degrades the point's platform first
    ({!Hypar_resilience.Degrade.apply}, non-strict: faults naming
    hardware this point does not have are skipped).  [point_fuel] bounds
    the engine's kernel-movement search for this point (the companion
    interpreter budget is applied once at preparation time, see
    {!Hypar_core.Flow.prepare}). *)

val status_string : Hypar_core.Engine.status -> string
(** ["met-without-partitioning"] / ["met-after-N"] / ["infeasible"]. *)

val error_string : Space.point -> exn -> string
(** The message recorded for a failed point: the raising exception's
    constructor, its message, and the point's {!Space.point_key} — e.g.
    ["Invalid_argument: ... [point a0/k2/g2x2/r3/t500]"]. *)
