(** Robust evaluation of one design-space point.

    Builds the platform the point describes, runs the Figure-2 flow
    ({!Hypar_core.Flow.partition}) on the shared prepared application and
    distils the result into a flat {!metrics} record (timing components,
    moved set, Eq.-2 reduction, and the energy of the partitioned
    execution under {!Hypar_core.Energy.default}).

    A point whose evaluation raises — an invalid platform
    ([Invalid_argument] from the device models), a failed IR invariant
    ({!Hypar_ir.Verify.Failed}), or any other exception — is returned as
    [Error reason] instead of aborting the sweep. *)

type metrics = {
  cgc_desc : string;  (** e.g. ["two 2x2"], {!Hypar_coarsegrain.Cgc.describe} *)
  initial : Hypar_core.Engine.times;  (** the all-FPGA mapping *)
  final : Hypar_core.Engine.times;
  coarse_cgc_cycles : int;  (** "Cycles in CGC" row, CGC cycles *)
  moved : int list;  (** moved kernels, in move order *)
  skipped : int;  (** kernels that could not move *)
  status : Hypar_core.Engine.status;
  met : bool;
  reduction : float;  (** percent vs the all-FPGA mapping *)
  energy : int;  (** partitioned-execution energy, {!Hypar_core.Energy} units *)
}

val platform_of : Space.point -> Hypar_core.Platform.t
(** Raises [Invalid_argument] on non-positive dimensions (the device
    models' own validation). *)

val evaluate : Hypar_core.Flow.prepared -> Space.point -> (metrics, string) result

val status_string : Hypar_core.Engine.status -> string
(** ["met-without-partitioning"] / ["met-after-N"] / ["infeasible"]. *)

val error_string : exn -> string
(** The message recorded for a failed point. *)
