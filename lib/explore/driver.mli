(** The exploration engine: space in, evaluated + analysed summary out.

    [run] expands the space, deduplicates the points against the memo
    cache (shared CDFG digest × platform key), fans the unique
    configurations out over {!Pool.map}, and reassembles per-point
    results in enumeration order — so the summary (and anything rendered
    from it) is byte-identical for every [jobs] value.

    Failed points (see {!Eval.evaluate}) are carried in the result list
    with their error string; {!all_failed} is the only condition callers
    should treat as fatal.

    Analysis: the Pareto frontier minimises (A_FPGA area, final t_total,
    energy) over the successful points, and one best point is selected
    per objective — among constraint-meeting points when any exists,
    otherwise among all successful ones. *)

type point_result = {
  point : Space.point;
  outcome : (Eval.metrics, string) result;
  cached : bool;  (** served from an earlier identical configuration *)
}

type t = {
  workload : string;
  digest : string;  (** CDFG digest shared by every cache key *)
  jobs : int;
  results : point_result array;  (** in {!Space.points} order *)
  cache : Cache.stats;
  pareto : bool array;  (** frontier membership per result (failed: false) *)
  best_time : int option;  (** result index minimising final [t_total] *)
  best_area : int option;  (** result index minimising A_FPGA *)
  best_energy : int option;  (** result index minimising energy *)
}

val run :
  ?jobs:int ->
  ?workload:string ->
  ?faults:Hypar_resilience.Fault.spec ->
  ?retries:int ->
  ?point_fuel:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  Hypar_core.Flow.prepared ->
  Space.t ->
  (t, string) result
(** [jobs] defaults to 1; [workload] (default the CDFG name) labels the
    reports.  [Error] for an invalid space (empty, or larger than
    [max_points]) or an unusable checkpoint file.

    Resilience hardening: [faults] evaluates every point on the
    {!Hypar_resilience.Degrade}d platform and injects the spec's
    transient failures; [retries] (default 0) re-attempts a failed point
    evaluation with deterministic backoff ({!Hypar_resilience.Retry});
    [point_fuel] bounds each point's engine search ({!Eval.evaluate}).
    [checkpoint] journals every completed point to a crash-safe file;
    with [resume] (default false) outcomes already journalled there are
    restored instead of re-evaluated (counted by the
    [explore.resumed_points] counter) and the rendered summary is
    byte-identical to an uninterrupted run. *)

val ok_count : t -> int
val failed_count : t -> int
val all_failed : t -> bool
(** No point evaluated successfully (and the space was non-empty). *)
