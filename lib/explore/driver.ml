module Flow = Hypar_core.Flow
module Fault = Hypar_resilience.Fault
module Retry = Hypar_resilience.Retry
module Journal = Hypar_resilience.Journal

type point_result = {
  point : Space.point;
  outcome : (Eval.metrics, string) result;
  cached : bool;
}

type t = {
  workload : string;
  digest : string;
  jobs : int;
  results : point_result array;
  cache : Cache.stats;
  pareto : bool array;
  best_time : int option;
  best_area : int option;
  best_energy : int option;
}

let ok_count t =
  Array.fold_left
    (fun n r -> if Result.is_ok r.outcome then n + 1 else n)
    0 t.results

let failed_count t = Array.length t.results - ok_count t
let all_failed t = Array.length t.results > 0 && ok_count t = 0

(* analysis over the successful points only: frontier flags mapped back to
   result indices, plus one best index per objective (met points first) *)
let analyse results =
  let ok =
    Array.to_list results
    |> List.mapi (fun i r -> (i, r.outcome))
    |> List.filter_map (function i, Ok m -> Some (i, m) | _, Error _ -> None)
    |> Array.of_list
  in
  let n = Array.length results in
  let pareto = Array.make n false in
  let objectives (i, (m : Eval.metrics)) =
    [| results.(i).point.Space.area; m.Eval.final.Hypar_core.Engine.t_total; m.Eval.energy |]
  in
  Array.iteri
    (fun k flag -> if flag then pareto.(fst ok.(k)) <- true)
    (Pareto.frontier_flags objectives ok);
  let candidates =
    let met = Array.of_list (List.filter (fun (_, m) -> m.Eval.met) (Array.to_list ok)) in
    if Array.length met > 0 then met else ok
  in
  let best f =
    Option.map (fun k -> fst candidates.(k)) (Pareto.best_by f candidates)
  in
  ( pareto,
    best (fun (_, m) -> m.Eval.final.Hypar_core.Engine.t_total),
    best (fun (i, _) -> results.(i).point.Space.area),
    best (fun (_, m) -> m.Eval.energy) )

exception Checkpoint_error of string

let run ?(jobs = 1) ?workload ?faults ?(retries = 0) ?point_fuel ?checkpoint
    ?(resume = false) (prepared : Flow.prepared) space =
  Hypar_obs.Span.with_ ~cat:"explore" "explore.run" @@ fun () ->
  try
    match Space.points space with
    | Error _ as e -> e
    | Ok pts ->
    let workload =
      match workload with
      | Some w -> w
      | None -> Hypar_ir.Cdfg.name prepared.Flow.cdfg
    in
    let digest = Cache.digest_of_cdfg prepared.Flow.cdfg in
    let cache = Cache.create () in
    (* deduplicate before fanning out: the cache maps each configuration
       key to the index of its unique evaluation job *)
    let unique = ref [] in
    let n_unique = ref 0 in
    let slots =
      List.map
        (fun p ->
          let k = Cache.key ~digest p in
          match Cache.find cache k with
          | Some j ->
            Hypar_obs.Counter.incr "explore.cache_hits";
            (p, j, true)
          | None ->
            Hypar_obs.Counter.incr "explore.cache_misses";
            let j = !n_unique in
            incr n_unique;
            unique := p :: !unique;
            Cache.add cache k j;
            (p, j, false))
        pts
    in
    let unique = Array.of_list (List.rev !unique) in
    (* crash recovery: outcomes journalled by an interrupted run are
       restored by key and their points never re-evaluated *)
    let restored : (string, (Eval.metrics, string) result) Hashtbl.t =
      Hashtbl.create 16
    in
    (match checkpoint with
    | Some path when resume -> (
      match Checkpoint.load path with
      | Ok entries ->
        List.iter (fun (k, outcome) -> Hashtbl.replace restored k outcome) entries
      | Error msg -> raise (Checkpoint_error msg))
    | Some _ | None -> ());
    let journal =
      match checkpoint with
      | None -> None
      | Some path -> (
        match Journal.create ~resume ~header:Checkpoint.header path with
        | Ok j -> Some j
        | Error msg -> raise (Checkpoint_error msg))
    in
    (* one attempt of one point, with transient-fault injection: the
       injected failures are a pure function of (seed, point, attempt),
       so a retried — or resumed — sweep stays deterministic *)
    let attempt_point p attempt =
      match faults with
      | Some spec
        when Fault.transient_should_fail spec ~key:(Space.point_key p) ~attempt
        ->
        Hypar_obs.Counter.incr "resilience.fault.transient";
        Error
          (Printf.sprintf "injected transient fault (attempt %d) [point %s]"
             attempt (Space.point_key p))
      | _ -> Eval.evaluate ?faults ?point_fuel prepared p
    in
    let evaluate_fresh p =
      let outcome = Retry.run ~retries (attempt_point p) in
      (match journal with
      | Some j ->
        Journal.append j (Checkpoint.encode ~key:(Cache.key ~digest p) outcome)
      | None -> ());
      outcome
    in
    let resumed = Array.map (fun p -> Hashtbl.find_opt restored (Cache.key ~digest p)) unique in
    let fresh =
      Array.of_list
        (List.filteri
           (fun j _ -> resumed.(j) = None)
           (Array.to_list unique))
    in
    let n_resumed = Array.length unique - Array.length fresh in
    if n_resumed > 0 then
      Hypar_obs.Counter.incr ~by:n_resumed "explore.resumed_points";
    (* Under tracing, each worker captures its point's events privately and
       the coordinator replays them in unique-point order, so the merged
       trace is identical whatever [jobs] is (modulo timestamps). *)
    (* close the journal even when an evaluation raises (Sys.Break from an
       interactive interrupt included): every appended entry is already
       flushed, so an interrupted sweep leaves a resumable file behind *)
    let fresh_outcomes =
      Fun.protect
        ~finally:(fun () -> Option.iter Journal.close journal)
        (fun () ->
          if not (Hypar_obs.Sink.enabled ()) then
            Pool.map ~jobs evaluate_fresh fresh
          else
            Pool.map ~jobs
              (fun p -> Hypar_obs.Sink.collect (fun () -> evaluate_fresh p))
              fresh
            |> Array.map (fun (outcome, events) ->
                   Hypar_obs.Sink.replay events;
                   outcome))
    in
    let outcomes =
      let next = ref 0 in
      Array.map
        (function
          | Some outcome -> outcome
          | None ->
            let o = fresh_outcomes.(!next) in
            incr next;
            o)
        resumed
    in
    let results =
      Array.of_list
        (List.map
           (fun (point, j, cached) -> { point; outcome = outcomes.(j); cached })
           slots)
    in
    let pareto, best_time, best_area, best_energy = analyse results in
    Ok
      {
        workload;
        digest;
        jobs;
        results;
        cache = Cache.stats cache;
        pareto;
        best_time;
        best_area;
        best_energy;
      }
  with Checkpoint_error msg -> Error msg
