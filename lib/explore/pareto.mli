(** Pareto analysis over integer objective vectors (minimisation).

    [a] dominates [b] when it is no worse on every objective and strictly
    better on at least one; points with {e equal} vectors do not dominate
    each other, so ties (and cache-shared duplicate configurations) all
    stay on the frontier. *)

val dominates : int array -> int array -> bool
(** [dominates a b] — [a] weakly better everywhere, strictly somewhere.
    Raises [Invalid_argument] on mismatched lengths. *)

val frontier_flags : ('a -> int array) -> 'a array -> bool array
(** Per-index membership of the Pareto frontier (O(n²) pairwise scan). *)

val frontier : ('a -> int array) -> 'a list -> 'a list
(** The non-dominated subset, in input order. *)

val best_by : ('a -> int) -> 'a array -> int option
(** Index of the minimum (first on ties); [None] on an empty array. *)
