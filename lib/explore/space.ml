type point = {
  area : int;
  cgcs : int;
  rows : int;
  cols : int;
  clock_ratio : int;
  timing : int;
}

type t = {
  areas : int list;
  cgcs : int list;
  rows : int list;
  cols : int list;
  clock_ratios : int list;
  timings : int list;
  max_points : int;
}

let default_max_points = 4096

let make ?(areas = [ 500; 1500; 5000 ]) ?(cgcs = [ 1; 2; 3 ]) ?(rows = [ 2 ])
    ?(cols = [ 2 ]) ?(clock_ratios = [ 3 ]) ?(max_points = default_max_points)
    ~timings () =
  { areas; cgcs; rows; cols; clock_ratios; timings; max_points }

let ( let* ) = Result.bind

let parse_int s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "invalid integer %S in axis" s)

(* index of the first ".." in [s], if any *)
let range_split s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '.' && s.[i + 1] = '.' then Some i
    else go (i + 1)
  in
  go 0

let item_values item =
  match range_split item with
  | None ->
    let* v = parse_int item in
    Ok [ v ]
  | Some i ->
    let lo_s = String.sub item 0 i in
    let rest = String.sub item (i + 2) (String.length item - i - 2) in
    let hi_s, step_s =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some j ->
        (String.sub rest 0 j, Some (String.sub rest (j + 1) (String.length rest - j - 1)))
    in
    let* lo = parse_int lo_s in
    let* hi = parse_int hi_s in
    let* step = match step_s with None -> Ok 1 | Some s -> parse_int s in
    if step <= 0 then
      Error (Printf.sprintf "range %S: step must be positive" (String.trim item))
    else if hi < lo then
      Error (Printf.sprintf "range %S: end is below start" (String.trim item))
    else begin
      let acc = ref [] in
      let v = ref lo in
      while !v <= hi do
        acc := !v :: !acc;
        v := !v + step
      done;
      Ok (List.rev !acc)
    end

let axis_of_string s =
  let items = String.split_on_char ',' s in
  let* values =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* vs = item_values item in
        Ok (acc @ vs))
      (Ok []) items
  in
  if values = [] then Error "empty axis" else Ok values

let size t =
  List.fold_left
    (fun acc axis -> acc * List.length axis)
    1
    [ t.areas; t.cgcs; t.rows; t.cols; t.clock_ratios; t.timings ]

let points t =
  let n = size t in
  if n = 0 then Error "design space is empty (an axis has no values)"
  else if n > t.max_points then
    Error
      (Printf.sprintf "design space has %d points, above the bound of %d \
                       (raise --max-points)" n t.max_points)
  else
    Ok
      (List.concat_map
         (fun area ->
           List.concat_map
             (fun cgcs ->
               List.concat_map
                 (fun rows ->
                   List.concat_map
                     (fun cols ->
                       List.concat_map
                         (fun clock_ratio ->
                           List.map
                             (fun timing ->
                               { area; cgcs; rows; cols; clock_ratio; timing })
                             t.timings)
                         t.clock_ratios)
                     t.cols)
                 t.rows)
             t.cgcs)
         t.areas)

let point_key p =
  Printf.sprintf "a%d/k%d/g%dx%d/r%d/t%d" p.area p.cgcs p.rows p.cols
    p.clock_ratio p.timing

let pp_point ppf p =
  Format.fprintf ppf "A_FPGA=%d cgcs=%d %dx%d ratio=%d timing=%d" p.area p.cgcs
    p.rows p.cols p.clock_ratio p.timing
