type stats = { hits : int; misses : int }

type 'a t = {
  tbl : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let digest_of_cdfg cdfg =
  Digest.to_hex (Digest.string (Hypar_ir.Serialize.to_string cdfg))

let key ~digest point = digest ^ "|" ^ Space.point_key point

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some _ as v ->
    t.hits <- t.hits + 1;
    v
  | None ->
    t.misses <- t.misses + 1;
    None

let add t k v = Hashtbl.replace t.tbl k v
let stats t = { hits = t.hits; misses = t.misses }
