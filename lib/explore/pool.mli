(** Multicore fan-out over the stdlib [Domain] API (no domainslib).

    Work is dealt to at most [jobs] domains round-robin by index; every
    worker writes only its own slots of the result array, so no locking
    is needed and the merged result is in input order regardless of
    scheduling — [map ~jobs:n] is observationally identical to
    [map ~jobs:1] for a pure [f]. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element.  [jobs <= 1] runs
    sequentially in the calling domain (no domain is spawned); otherwise
    [min jobs (length xs)] domains (the caller included) share the work.
    An exception raised by [f] is re-raised after all workers join. *)
