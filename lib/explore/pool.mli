(** Multicore fan-out over the stdlib [Domain] API (no domainslib).

    Two layers: {!fork}/{!join} is the raw spawn-and-reap discipline
    (exceptions parked per domain and re-raised only after every domain
    has been joined — nothing leaks, nothing double-raises), and {!map}
    is the static round-robin fan-out built on it.

    Work is dealt to at most [jobs] domains round-robin by index; every
    worker writes only its own slots of the result array, so no locking
    is needed and the merged result is in input order regardless of
    scheduling — [map ~jobs:n] is observationally identical to
    [map ~jobs:1] for a pure [f].

    [hypar serve] reuses {!fork}/{!join} for its request worker pool:
    the same park-then-reraise discipline, but pulling work from a
    bounded queue instead of a precomputed array. *)

type handle
(** A group of spawned domains. *)

val fork : domains:int -> (int -> unit) -> handle
(** [fork ~domains:n f] spawns [n] domains running [f 0 .. f (n-1)].
    An exception raised by [f i] is recorded, not propagated; {!join}
    re-raises the first one (by domain index).  [n <= 0] spawns
    nothing. *)

val finished : handle -> int
(** Number of domains that have finished (normally or with a parked
    exception).  Lock-free; usable from a drain loop polling for
    completion against a timeout. *)

val join : handle -> unit
(** Join every domain, then re-raise the first parked exception if any.
    Blocks until all domains finish. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element.  [jobs <= 1] runs
    sequentially in the calling domain (no domain is spawned); otherwise
    [min jobs (length xs)] domains (the caller included) share the work.
    An exception raised by [f] is re-raised after all workers join. *)
