module Engine = Hypar_core.Engine

let selected_indices ?(pareto_only = false) (t : Driver.t) =
  let all = List.init (Array.length t.Driver.results) Fun.id in
  if pareto_only then List.filter (fun i -> t.Driver.pareto.(i)) all else all

let point_geom (p : Space.point) =
  Printf.sprintf "%d x %dx%d" p.Space.cgcs p.Space.rows p.Space.cols

let moved_string moved = String.concat " " (List.map string_of_int moved)

let met_counts (t : Driver.t) =
  Array.fold_left
    (fun n r ->
      match r.Driver.outcome with Ok m when m.Eval.met -> n + 1 | _ -> n)
    0 t.Driver.results

let pareto_count (t : Driver.t) =
  Array.fold_left (fun n f -> if f then n + 1 else n) 0 t.Driver.pareto

(* ---- text ---------------------------------------------------------------- *)

let text ?pareto_only (t : Driver.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* no jobs count here: reports are byte-identical across --jobs levels *)
  add "explore %s — %d points\n" t.Driver.workload
    (Array.length t.Driver.results);
  add "%8s %10s %6s %9s %24s %12s %12s %9s %12s %6s %6s %7s\n" "A_FPGA" "CGCs"
    "ratio" "timing" "status" "initial" "final" "reduction" "energy" "moved"
    "cache" "pareto";
  List.iter
    (fun i ->
      let r = t.Driver.results.(i) in
      let p = r.Driver.point in
      let cache = if r.Driver.cached then "hit" else "miss" in
      match r.Driver.outcome with
      | Ok m ->
        add "%8d %10s %6d %9d %24s %12d %12d %8.1f%% %12d %6d %6s %7s\n"
          p.Space.area m.Eval.cgc_desc p.Space.clock_ratio p.Space.timing
          (Eval.status_string m.Eval.status)
          m.Eval.initial.Engine.t_total m.Eval.final.Engine.t_total
          m.Eval.reduction m.Eval.energy
          (List.length m.Eval.moved)
          cache
          (if t.Driver.pareto.(i) then "*" else "")
      | Error msg ->
        add "%8d %10s %6d %9d %24s %s\n" p.Space.area (point_geom p)
          p.Space.clock_ratio p.Space.timing "FAILED" msg)
    (selected_indices ?pareto_only t);
  add "summary: %d/%d ok (%d met constraint), %d failed; cache: %d misses, %d hits\n"
    (Driver.ok_count t)
    (Array.length t.Driver.results)
    (met_counts t) (Driver.failed_count t) t.Driver.cache.Cache.misses
    t.Driver.cache.Cache.hits;
  add "pareto frontier (A_FPGA, t_total, energy): %d point%s\n" (pareto_count t)
    (if pareto_count t = 1 then "" else "s");
  let best label = function
    | None -> add "best %s: none\n" label
    | Some i ->
      let r = t.Driver.results.(i) in
      (match r.Driver.outcome with
      | Ok m ->
        add "best %s: %s -> t_total=%d energy=%d\n" label
          (Space.point_key r.Driver.point)
          m.Eval.final.Engine.t_total m.Eval.energy
      | Error _ -> ())
  in
  best "t_total" t.Driver.best_time;
  best "A_FPGA " t.Driver.best_area;
  best "energy " t.Driver.best_energy;
  Buffer.contents buf

(* ---- csv ----------------------------------------------------------------- *)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv ?pareto_only (t : Driver.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "area,cgcs,rows,cols,clock_ratio,timing,status,met,initial,final,t_fpga,\
     t_coarse,t_comm,cycles_in_cgc,moved,reduction,energy,cache,pareto,error\n";
  List.iter
    (fun i ->
      let r = t.Driver.results.(i) in
      let p = r.Driver.point in
      let cache = if r.Driver.cached then "hit" else "miss" in
      let row =
        match r.Driver.outcome with
        | Ok m ->
          Printf.sprintf "%s,%b,%d,%d,%d,%d,%d,%d,%s,%.1f,%d,%s,%b,"
            (Eval.status_string m.Eval.status)
            m.Eval.met m.Eval.initial.Engine.t_total
            m.Eval.final.Engine.t_total m.Eval.final.Engine.t_fpga
            m.Eval.final.Engine.t_coarse m.Eval.final.Engine.t_comm
            m.Eval.coarse_cgc_cycles
            (moved_string m.Eval.moved)
            m.Eval.reduction m.Eval.energy cache
            t.Driver.pareto.(i)
        | Error msg ->
          Printf.sprintf "failed,,,,,,,,,,,%s,%b,%s" cache false
            (csv_field msg)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%s\n" p.Space.area p.Space.cgcs
           p.Space.rows p.Space.cols p.Space.clock_ratio p.Space.timing row))
    (selected_indices ?pareto_only t);
  Buffer.contents buf

(* ---- json ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json ?pareto_only (t : Driver.t) =
  let selected = selected_indices ?pareto_only t in
  (* original result index -> position in the emitted array *)
  let emitted_pos =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun pos i -> Hashtbl.replace tbl i pos) selected;
    tbl
  in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"workload\": \"%s\",\n" (json_escape t.Driver.workload);
  add "  \"digest\": \"%s\",\n" t.Driver.digest;
  add "  \"points\": %d,\n" (Array.length t.Driver.results);
  add "  \"ok\": %d,\n" (Driver.ok_count t);
  add "  \"met\": %d,\n" (met_counts t);
  add "  \"failed\": %d,\n" (Driver.failed_count t);
  add "  \"cache\": {\"hits\": %d, \"misses\": %d},\n" t.Driver.cache.Cache.hits
    t.Driver.cache.Cache.misses;
  add "  \"results\": [\n";
  let entry i =
    let r = t.Driver.results.(i) in
    let p = r.Driver.point in
    let config =
      Printf.sprintf
        "\"area\": %d, \"cgcs\": %d, \"rows\": %d, \"cols\": %d, \
         \"clock_ratio\": %d, \"timing\": %d"
        p.Space.area p.Space.cgcs p.Space.rows p.Space.cols p.Space.clock_ratio
        p.Space.timing
    in
    let cache = if r.Driver.cached then "hit" else "miss" in
    match r.Driver.outcome with
    | Ok m ->
      Printf.sprintf
        "    {%s, \"status\": \"ok\", \"engine\": \"%s\", \"met\": %b, \
         \"initial\": %d, \"final\": %d, \"t_fpga\": %d, \"t_coarse\": %d, \
         \"t_comm\": %d, \"cycles_in_cgc\": %d, \"moved\": [%s], \
         \"reduction\": %.1f, \"energy\": %d, \"cache\": \"%s\", \
         \"pareto\": %b}"
        config
        (Eval.status_string m.Eval.status)
        m.Eval.met m.Eval.initial.Engine.t_total m.Eval.final.Engine.t_total
        m.Eval.final.Engine.t_fpga m.Eval.final.Engine.t_coarse
        m.Eval.final.Engine.t_comm m.Eval.coarse_cgc_cycles
        (String.concat ", " (List.map string_of_int m.Eval.moved))
        m.Eval.reduction m.Eval.energy cache
        t.Driver.pareto.(i)
    | Error msg ->
      Printf.sprintf
        "    {%s, \"status\": \"failed\", \"cache\": \"%s\", \"error\": \"%s\"}"
        config cache (json_escape msg)
  in
  Buffer.add_string buf (String.concat ",\n" (List.map entry selected));
  add "\n  ],\n";
  add "  \"pareto\": [%s],\n"
    (String.concat ", "
       (List.filter_map
          (fun i ->
            if t.Driver.pareto.(i) then
              Option.map string_of_int (Hashtbl.find_opt emitted_pos i)
            else None)
          (List.init (Array.length t.Driver.results) Fun.id)));
  let best_json = function
    | None -> "null"
    | Some i -> (
      match Hashtbl.find_opt emitted_pos i with
      | Some pos -> string_of_int pos
      | None -> "null")
  in
  add "  \"best\": {\"t_total\": %s, \"area\": %s, \"energy\": %s}\n"
    (best_json t.Driver.best_time)
    (best_json t.Driver.best_area)
    (best_json t.Driver.best_energy);
  add "}\n";
  Buffer.contents buf

(* ---- markdown ------------------------------------------------------------ *)

let markdown ?pareto_only (t : Driver.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Design-space exploration — %s\n\n" t.Driver.workload;
  add "%d points; %d ok (%d met constraint), %d failed; cache %d misses / \
       %d hits.\n\n"
    (Array.length t.Driver.results)
    (Driver.ok_count t) (met_counts t) (Driver.failed_count t)
    t.Driver.cache.Cache.misses t.Driver.cache.Cache.hits;
  add
    "| A_FPGA | CGCs | ratio | timing | status | initial | final | reduction \
     | energy | moved | cache | pareto |\n";
  add "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun i ->
      let r = t.Driver.results.(i) in
      let p = r.Driver.point in
      let cache = if r.Driver.cached then "hit" else "miss" in
      match r.Driver.outcome with
      | Ok m ->
        add "| %d | %s | %d | %d | %s | %d | %d | %.1f%% | %d | %s | %s | %s |\n"
          p.Space.area m.Eval.cgc_desc p.Space.clock_ratio p.Space.timing
          (Eval.status_string m.Eval.status)
          m.Eval.initial.Engine.t_total m.Eval.final.Engine.t_total
          m.Eval.reduction m.Eval.energy
          (moved_string m.Eval.moved)
          cache
          (if t.Driver.pareto.(i) then "yes" else "")
      | Error msg ->
        add "| %d | %s | %d | %d | **failed**: %s | | | | | | %s | |\n"
          p.Space.area (point_geom p) p.Space.clock_ratio p.Space.timing msg
          cache)
    (selected_indices ?pareto_only t);
  let best label = function
    | None -> ()
    | Some i ->
      add "- best %s: `%s`\n" label (Space.point_key t.Driver.results.(i).Driver.point)
  in
  add "\n";
  best "t_total" t.Driver.best_time;
  best "A_FPGA" t.Driver.best_area;
  best "energy" t.Driver.best_energy;
  Buffer.contents buf
