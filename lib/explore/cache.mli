(** Memo cache for point evaluations.

    Keys pair the workload with the platform configuration: the CDFG
    digest (MD5 of the canonical serialisation, so two compilations of
    the same source share a digest) and the stable {!Space.point_key}.
    A sweep whose axes repeat a configuration evaluates it once; the
    hit/miss counters are surfaced in the exploration summary.

    The table is used from the coordinating domain only — the parallel
    evaluator deduplicates points against it {e before} fanning out, so
    no synchronisation is needed. *)

type stats = { hits : int; misses : int }

type 'a t

val create : unit -> 'a t

val digest_of_cdfg : Hypar_ir.Cdfg.t -> string
(** Hex MD5 of {!Hypar_ir.Serialize.to_string}. *)

val key : digest:string -> Space.point -> string
(** ["<digest>|<point_key>"]. *)

val find : 'a t -> string -> 'a option
(** Counts a hit when the key is present, a miss otherwise. *)

val add : 'a t -> string -> 'a -> unit

val stats : 'a t -> stats
