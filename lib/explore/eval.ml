module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Energy = Hypar_core.Energy

type metrics = {
  cgc_desc : string;
  initial : Engine.times;
  final : Engine.times;
  coarse_cgc_cycles : int;
  moved : int list;
  skipped : int;
  status : Engine.status;
  met : bool;
  reduction : float;
  energy : int;
}

let platform_of (p : Space.point) =
  Platform.make ~clock_ratio:p.clock_ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area:p.area ())
    ~cgc:(Hypar_coarsegrain.Cgc.make ~cgcs:p.cgcs ~rows:p.rows ~cols:p.cols ())
    ()

let status_string = function
  | Engine.Met_without_partitioning -> "met-without-partitioning"
  | Engine.Met_after n -> Printf.sprintf "met-after-%d" n
  | Engine.Infeasible -> "infeasible"

(* every failed point names the raising constructor and its own
   coordinates, so a failure in a JSON/CSV report is reproducible without
   the sweep's command line *)
let error_string (p : Space.point) exn =
  let message =
    match exn with
    | Invalid_argument msg -> "Invalid_argument: " ^ msg
    | Failure msg -> "Failure: " ^ msg
    | Hypar_profiling.Interp.Fuel_exhausted { steps } ->
      Printf.sprintf "Fuel_exhausted: point budget spent after %d steps" steps
    | Engine.Delta_mismatch { field; full; incremental; moved } ->
      (* the debug cross-check tripped: the engine's delta-updated time
         diverged from the full recharacterisation at this point *)
      Printf.sprintf
        "Delta_mismatch: incremental %s=%d but full recompute=%d after \
         moving [%s]"
        field incremental full
        (String.concat ";" (List.map string_of_int moved))
    | Hypar_ir.Verify.Failed { context; violations } ->
      Printf.sprintf "Verify.Failed: IR verification failed after %S: %s"
        context
        (String.concat "; "
           (String.split_on_char '\n'
              (String.trim (Hypar_ir.Verify.report violations))))
    | exn -> Printexc.to_string exn
  in
  Printf.sprintf "%s [point %s]" message (Space.point_key p)

let evaluate ?faults ?point_fuel (prepared : Flow.prepared) (p : Space.point) =
  Hypar_obs.Span.with_ ~cat:"explore" "explore.point"
    ~args:
      [
        ("area", Hypar_obs.Event.Int p.area);
        ("cgcs", Hypar_obs.Event.Int p.cgcs);
        ("rows", Hypar_obs.Event.Int p.rows);
        ("cols", Hypar_obs.Event.Int p.cols);
        ("timing", Hypar_obs.Event.Int p.timing);
      ]
  @@ fun () ->
  match
    let platform = platform_of p in
    let platform =
      match faults with
      | None -> platform
      | Some spec -> (
        (* non-strict: a sweep point smaller than the faulted hardware
           simply ignores the inapplicable faults *)
        match Hypar_resilience.Degrade.apply ~strict:false spec platform with
        | Ok pl -> pl
        | Error msg -> failwith msg)
    in
    let r =
      Engine.run ?max_moves:point_fuel platform ~timing_constraint:p.timing
        prepared.Flow.cdfg prepared.Flow.profile
    in
    let energy =
      Energy.app_energy Energy.default platform prepared.Flow.cdfg
        ~freq:(fun b -> r.Engine.freq.(b))
        ~moved:r.Engine.moved
    in
    {
      cgc_desc = Hypar_coarsegrain.Cgc.describe platform.Platform.cgc;
      initial = r.Engine.initial;
      final = r.Engine.final;
      coarse_cgc_cycles = Engine.coarse_cycles_of_moved r;
      moved = r.Engine.moved;
      skipped = List.length r.Engine.skipped;
      status = r.Engine.status;
      met = Engine.met r;
      reduction = Engine.reduction_percent r;
      energy;
    }
  with
  | m -> Ok m
  | exception e -> Error (error_string p e)
