module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Energy = Hypar_core.Energy

type metrics = {
  cgc_desc : string;
  initial : Engine.times;
  final : Engine.times;
  coarse_cgc_cycles : int;
  moved : int list;
  skipped : int;
  status : Engine.status;
  met : bool;
  reduction : float;
  energy : int;
}

let platform_of (p : Space.point) =
  Platform.make ~clock_ratio:p.clock_ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area:p.area ())
    ~cgc:(Hypar_coarsegrain.Cgc.make ~cgcs:p.cgcs ~rows:p.rows ~cols:p.cols ())
    ()

let status_string = function
  | Engine.Met_without_partitioning -> "met-without-partitioning"
  | Engine.Met_after n -> Printf.sprintf "met-after-%d" n
  | Engine.Infeasible -> "infeasible"

let error_string = function
  | Invalid_argument msg | Failure msg -> msg
  | Hypar_ir.Verify.Failed { context; violations } ->
    Printf.sprintf "IR verification failed after %S: %s" context
      (String.concat "; "
         (String.split_on_char '\n'
            (String.trim (Hypar_ir.Verify.report violations))))
  | exn -> Printexc.to_string exn

let evaluate (prepared : Flow.prepared) (p : Space.point) =
  Hypar_obs.Span.with_ ~cat:"explore" "explore.point"
    ~args:
      [
        ("area", Hypar_obs.Event.Int p.area);
        ("cgcs", Hypar_obs.Event.Int p.cgcs);
        ("rows", Hypar_obs.Event.Int p.rows);
        ("cols", Hypar_obs.Event.Int p.cols);
        ("timing", Hypar_obs.Event.Int p.timing);
      ]
  @@ fun () ->
  match
    let platform = platform_of p in
    let r = Flow.partition platform ~timing_constraint:p.timing prepared in
    let energy =
      Energy.app_energy Energy.default platform prepared.Flow.cdfg
        ~freq:(fun b -> r.Engine.freq.(b))
        ~moved:r.Engine.moved
    in
    {
      cgc_desc = Hypar_coarsegrain.Cgc.describe platform.Platform.cgc;
      initial = r.Engine.initial;
      final = r.Engine.final;
      coarse_cgc_cycles = Engine.coarse_cycles_of_moved r;
      moved = r.Engine.moved;
      skipped = List.length r.Engine.skipped;
      status = r.Engine.status;
      met = Engine.met r;
      reduction = Engine.reduction_percent r;
      energy;
    }
  with
  | m -> Ok m
  | exception e -> Error (error_string e)
