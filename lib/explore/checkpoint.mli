(** Checkpoint codec for the hardened explore driver.

    Each completed point is journalled as one line —
    [(cache key, outcome)] — through the crash-safe
    {!Hypar_resilience.Journal}.  Decoding is exact: every integer field
    round-trips verbatim, and the two derived fields ([met],
    [reduction]) are recomputed from the stored status and totals, so a
    resumed sweep renders byte-identically to an uninterrupted one.
    Undecodable entries (from an older format, or hand-edited) are
    silently dropped, like torn journal lines. *)

val header : string
(** Journal header identifying explore checkpoints. *)

val encode : key:string -> (Eval.metrics, string) result -> string
(** One journal payload for a completed point. *)

val decode : string -> (string * (Eval.metrics, string) result) option

val load :
  string -> ((string * (Eval.metrics, string) result) list, string) result
(** All decodable entries of a checkpoint file, in write order; a
    missing file is [Ok []]. *)
