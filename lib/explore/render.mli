(** Exporters for exploration summaries.

    All four formats carry the same data: one record per point (platform
    configuration, status, timing components, moved set, reduction,
    energy, cache hit/miss, frontier membership), the cache counters and
    the per-objective best points.  The [jobs] count is deliberately never
    rendered: output depends only on the evaluated results, which
    {!Driver.run} makes independent of [jobs] — so every format is
    byte-identical across parallelism levels.

    [pareto_only] restricts the per-point listing to the Pareto frontier
    (failed points are never on it); the summary counters still describe
    the full run. *)

val text : ?pareto_only:bool -> Driver.t -> string
(** Aligned columns plus a summary block. *)

val csv : ?pareto_only:bool -> Driver.t -> string
(** One header row; fields with commas/quotes are RFC-4180 quoted. *)

val json : ?pareto_only:bool -> Driver.t -> string
(** One top-level object; [results] in point order, each with a
    ["status"] of ["ok"] or ["failed"], plus ["cache"] counters,
    ["pareto"] indices and per-objective ["best"] indices (into the
    emitted [results] array). *)

val markdown : ?pareto_only:bool -> Driver.t -> string
(** A GitHub-style table plus the summary. *)
