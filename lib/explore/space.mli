(** Declarative design-space specification.

    The paper's §4 evaluation is a hand-run exploration over the platform
    axes (A_FPGA, CGC count, array geometry, clock ratio) against a
    timing constraint.  A {!t} makes that grid explicit: one integer axis
    per platform parameter, each written as a comma-separated composition
    of scalars and [lo..hi[:step]] ranges, expanded as a cartesian
    product bounded by [max_points].

    Enumeration order is deterministic and documented — areas outermost,
    then CGC count, rows, cols, clock ratio, and the timing constraint
    innermost — so every consumer (cache, parallel evaluator, renderers)
    sees the same point order. *)

type point = {
  area : int;  (** A_FPGA, usable fine-grain area units *)
  cgcs : int;  (** CGC components in the coarse-grain data-path *)
  rows : int;  (** CGC array rows (chain depth) *)
  cols : int;  (** CGC array columns (chains per CGC) *)
  clock_ratio : int;  (** T_FPGA / T_CGC *)
  timing : int;  (** timing constraint, FPGA cycles *)
}

type t = {
  areas : int list;
  cgcs : int list;
  rows : int list;
  cols : int list;
  clock_ratios : int list;
  timings : int list;
  max_points : int;
}

val default_max_points : int
(** 4096. *)

val make :
  ?areas:int list ->
  ?cgcs:int list ->
  ?rows:int list ->
  ?cols:int list ->
  ?clock_ratios:int list ->
  ?max_points:int ->
  timings:int list ->
  unit ->
  t
(** Defaults: areas [[500; 1500; 5000]], cgcs [[1; 2; 3]], rows [[2]],
    cols [[2]], clock ratios [[3]], {!default_max_points}. *)

val axis_of_string : string -> (int list, string) result
(** Parses an axis: comma-separated scalars and ranges, e.g.
    ["500,1500,5000"], ["1..4"], ["500..5000:500"],
    ["500,1000..3000:1000"].  Duplicates are preserved (the evaluation
    cache deduplicates them).  Errors on malformed integers, non-positive
    steps and descending ranges. *)

val size : t -> int
(** Number of points the space expands to (product of axis lengths). *)

val points : t -> (point list, string) result
(** Expands the cartesian product in the documented order.  Errors when
    the space is empty or [size] exceeds [max_points]. *)

val point_key : point -> string
(** Canonical configuration key, e.g. ["a1500/k2/g2x2/r3/t8000"].  The
    format is stable — the memo cache and its tests rely on it. *)

val pp_point : Format.formatter -> point -> unit
(** e.g. [A_FPGA=1500 cgcs=2 2x2 ratio=3 timing=8000]. *)
