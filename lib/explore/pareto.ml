let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: mismatched objective vectors";
  let no_worse = ref true and better = ref false in
  Array.iteri
    (fun i x ->
      if x > b.(i) then no_worse := false else if x < b.(i) then better := true)
    a;
  !no_worse && !better

let frontier_flags objectives xs =
  let vecs = Array.map objectives xs in
  Array.map (fun v -> not (Array.exists (fun w -> dominates w v) vecs)) vecs

let frontier objectives l =
  let xs = Array.of_list l in
  let flags = frontier_flags objectives xs in
  List.filteri (fun i _ -> flags.(i)) l

let best_by f xs =
  let best = ref None in
  Array.iteri
    (fun i x ->
      match !best with
      | Some (_, v) when v <= f x -> ()
      | _ -> best := Some (i, f x))
    xs;
  Option.map fst !best
