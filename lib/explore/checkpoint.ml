module Engine = Hypar_core.Engine
module Journal = Hypar_resilience.Journal

let header = "hypar-explore-checkpoint v1"

(* Tab-separated fields; free-text fields (CGC description, error
   message) escape tabs and backslashes so any message round-trips. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\t' -> Buffer.add_string buf "\\t"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let times_fields (t : Engine.times) =
  List.map string_of_int
    [ t.Engine.t_fpga; t.t_coarse_cgc; t.t_coarse; t.t_comm; t.t_total ]

let status_of_string s =
  match s with
  | "met-without-partitioning" -> Some Engine.Met_without_partitioning
  | "infeasible" -> Some Engine.Infeasible
  | _ ->
    let prefix = "met-after-" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      Option.map
        (fun n -> Engine.Met_after n)
        (int_of_string_opt (String.sub s pl (String.length s - pl)))
    else None

let encode ~key outcome =
  let fields =
    match outcome with
    | Error msg -> [ "err"; escape key; escape msg ]
    | Ok (m : Eval.metrics) ->
      [ "ok"; escape key; escape m.Eval.cgc_desc ]
      @ times_fields m.Eval.initial @ times_fields m.Eval.final
      @ [
          string_of_int m.Eval.coarse_cgc_cycles;
          String.concat "," (List.map string_of_int m.Eval.moved);
          string_of_int m.Eval.skipped;
          Eval.status_string m.Eval.status;
          string_of_int m.Eval.energy;
        ]
  in
  String.concat "\t" fields

let times_of = function
  | [ a; b; c; d; e ] ->
    Option.bind (int_of_string_opt a) @@ fun t_fpga ->
    Option.bind (int_of_string_opt b) @@ fun t_coarse_cgc ->
    Option.bind (int_of_string_opt c) @@ fun t_coarse ->
    Option.bind (int_of_string_opt d) @@ fun t_comm ->
    Option.bind (int_of_string_opt e) @@ fun t_total ->
    Some { Engine.t_fpga; t_coarse_cgc; t_coarse; t_comm; t_total }
  | _ -> None

let moved_of s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let ints = List.filter_map int_of_string_opt parts in
    if List.length ints = List.length parts then Some ints else None

let decode line =
  match String.split_on_char '\t' line with
  | [ "err"; key; msg ] -> Some (unescape key, Error (unescape msg))
  | "ok" :: key :: cgc_desc :: i1 :: i2 :: i3 :: i4 :: i5 :: f1 :: f2 :: f3
    :: f4 :: f5 :: [ coarse; moved; skipped; status; energy ] ->
    Option.bind (times_of [ i1; i2; i3; i4; i5 ]) @@ fun initial ->
    Option.bind (times_of [ f1; f2; f3; f4; f5 ]) @@ fun final ->
    Option.bind (int_of_string_opt coarse) @@ fun coarse_cgc_cycles ->
    Option.bind (moved_of moved) @@ fun moved ->
    Option.bind (int_of_string_opt skipped) @@ fun skipped ->
    Option.bind (status_of_string status) @@ fun status ->
    Option.bind (int_of_string_opt energy) @@ fun energy ->
    (* [met] and [reduction] are recomputed rather than serialised: the
       status determines the former, and the latter is a pure function of
       the stored totals, so no float ever round-trips through text *)
    let met =
      match status with
      | Engine.Met_without_partitioning | Engine.Met_after _ -> true
      | Engine.Infeasible -> false
    in
    let reduction =
      if initial.Engine.t_total = 0 then 0.0
      else
        100.0
        *. float_of_int (initial.Engine.t_total - final.Engine.t_total)
        /. float_of_int initial.Engine.t_total
    in
    Some
      ( unescape key,
        Ok
          {
            Eval.cgc_desc = unescape cgc_desc;
            initial;
            final;
            coarse_cgc_cycles;
            moved;
            skipped;
            status;
            met;
            reduction;
            energy;
          } )
  | _ -> None

let load path =
  match Journal.load ~header path with
  | Error _ as e -> e
  | Ok entries -> Ok (List.filter_map decode entries)
