type handle = {
  domains : unit Domain.t list;
  errors : exn option array;
  done_count : int Atomic.t;
}

let fork ~domains:n f =
  let n = max n 0 in
  let errors = Array.make (max n 1) None in
  let done_count = Atomic.make 0 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            (* errors are parked, never propagated out of the domain: the
               joiner re-raises them after everyone has finished *)
            (try f i with e -> errors.(i) <- Some e);
            Atomic.incr done_count))
  in
  { domains; errors; done_count }

let finished h = Atomic.get h.done_count

let join h =
  List.iter Domain.join h.domains;
  Array.iter (function Some e -> raise e | None -> ()) h.errors

let map ~jobs f xs =
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let workers = min jobs n in
    let out = Array.make n None in
    (* worker [d] owns indices d, d+workers, d+2*workers, ... — disjoint
       slots, so the unsynchronised writes below never race *)
    let worker d =
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (f xs.(!i));
        i := !i + workers
      done
    in
    let h = fork ~domains:(workers - 1) (fun d -> worker (d + 1)) in
    let own = try Ok (worker 0) with e -> Error e in
    (* join everyone before re-raising, or spawned domains would leak *)
    let joined = try Ok (join h) with e -> Error e in
    (match own with Error e -> raise e | Ok () -> ());
    (match joined with Error e -> raise e | Ok () -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end
