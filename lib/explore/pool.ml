let map ~jobs f xs =
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let workers = min jobs n in
    let out = Array.make n None in
    (* worker [d] owns indices d, d+workers, d+2*workers, ... — disjoint
       slots, so the unsynchronised writes below never race *)
    let worker d () =
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (f xs.(!i));
        i := !i + workers
      done
    in
    let spawned =
      List.init (workers - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    let own = try Ok (worker 0 ()) with e -> Error e in
    (* join everyone before re-raising, or spawned domains would leak *)
    let joined = List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
    List.iter (function Error e -> raise e | Ok () -> ()) (own :: joined);
    Array.map (function Some v -> v | None -> assert false) out
  end
