(** Self-healing worker pool: supervision, retry, and quarantine.

    The supervisor owns the worker domains of a pooled serve session.  A
    dedicated monitor domain watches per-worker phase/heartbeat atomics
    and heals two failure classes:

    - {b crashed} workers — an exception escaped the execute callback
      (or a chaos [crash] fired).  The dead domain is joined and a fresh
      one spawned with bounded exponential backoff (the
      {!Hypar_resilience.Retry.delay_us} schedule, reset whenever any
      request settles, capped at 200 ms per wait);
    - {b wedged} workers — still running but past the request's deadline
      budget plus [grace_ms] with no poll progress (no heartbeat).
      Domains cannot be killed, so the worker is {e abandoned}: a flag
      tells it to exit without delivering, its domain moves to an orphan
      list joined at drain, and a replacement takes the slot.

    The in-flight request of a crashed or wedged worker is re-enqueued —
    at most [max_retries] times.  A request that keeps killing workers
    is {e quarantined}: it settles with a typed [poisoned] envelope
    carrying the crash signature, its id-independent digest
    ({!Protocol.digest}) goes into an in-memory table consulted on every
    admission, and — when [quarantine_path] is set — into a crash-safe
    {!Hypar_resilience.Journal}, so a restarted server refuses the
    poison without sacrificing another worker.

    Every admitted request settles exactly once (a CAS guards delivery),
    even when an abandoned worker finishes late and races its own retry.

    Supervision events increment [server.supervisor.*] counters when the
    observability sink is enabled. *)

type options = {
  max_retries : int;
      (** failed executions re-enqueued per request before quarantine *)
  grace_ms : int option;
      (** wedge detection threshold; [None] disables detection *)
  backoff_us : int;  (** base of the respawn backoff schedule *)
  chaos : Chaos.spec option;  (** injected faults, [None] in production *)
  quarantine_path : string option;  (** journal for quarantined digests *)
  resume_quarantine : bool;
      (** reload an existing journal instead of truncating it *)
}

val default_options : options
(** [max_retries = 1], no grace (wedge detection off), 20 ms base
    backoff, no chaos, no journal, [resume_quarantine = true]. *)

type outcome = { resp : Protocol.response; events : Hypar_obs.Event.t list }
(** What one execution produced: the response envelope plus the
    observability events captured while computing it (replayed in
    sequence order by the session so traces stay jobs-independent). *)

type stats = {
  respawns : int;  (** worker domains spawned beyond the initial pool *)
  retries : int;  (** requests re-enqueued after a crash or wedge *)
  quarantines : int;  (** requests settled as [poisoned] *)
  wedges : int;  (** workers abandoned by wedge detection *)
  crashes : int;  (** worker domains that died with an exception *)
  live_workers : int;  (** pool size at observation time *)
  max_heartbeat_age_ms : int;
      (** worst observed poll gap — how close the pool came to the
          wedge threshold *)
}

type admission =
  | Admitted  (** queued, quarantine-answered, or already settled *)
  | Rejected of int  (** queue full; payload is the depth *)
  | Draining  (** the queue is closed *)

type t

val quarantine_header : string
(** Journal header identifying a quarantine journal file. *)

val validate_quarantine : string -> (unit, string) result
(** Check that [path] is absent or a loadable quarantine journal —
    the CLI validates before starting the server for a clean exit. *)

val start :
  jobs:int ->
  options ->
  queue_capacity:int ->
  deadline_ms:(Protocol.request -> int option) ->
  execute:(heartbeat:(unit -> unit) -> Protocol.request -> outcome) ->
  deliver:(seq:int -> Protocol.response -> Hypar_obs.Event.t list -> unit) ->
  (t, string) result
(** Spawn [jobs] workers plus the monitor.  [execute] runs a request on
    a worker domain and must call [heartbeat] from its poll hook;
    exceptions escaping it are treated as worker crashes.  [deliver] is
    called exactly once per admitted request, from whichever domain
    settles it — it must be thread-safe.  [deadline_ms] reports a
    request's wall budget for the wedge threshold ([None] = no
    deadline).  [Error] means the quarantine journal could not be
    opened. *)

val submit : t -> seq:int -> Protocol.request -> admission
(** Admit a request.  A digest already quarantined settles immediately
    as [poisoned] (attempts 0) without touching a worker — that still
    counts as [Admitted]. *)

val depth : t -> int
(** Current queue depth, for overload envelopes and health. *)

val live_workers : t -> int

val stats : t -> stats

val drain : t -> stats
(** Close the queue, wait until every admitted request has settled,
    stop the monitor, join every worker — including abandoned orphans,
    which by then have noticed the abandon flag and exited — and close
    the journal.  Returns the final statistics; [live_workers] is the
    healed pool size. *)
