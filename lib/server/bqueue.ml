type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity = max 1 capacity;
    closed = false;
  }

type push_result = Pushed of int | Full of int | Closed

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t @@ fun () ->
  if t.closed then Closed
  else if Queue.length t.items >= t.capacity then Full (Queue.length t.items)
  else begin
    Queue.add x t.items;
    Condition.signal t.nonempty;
    Pushed (Queue.length t.items)
  end

let pop t =
  with_lock t @@ fun () ->
  let rec wait () =
    if not (Queue.is_empty t.items) then Some (Queue.take t.items)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.lock;
      wait ()
    end
  in
  wait ()

(* Unconditional enqueue: bypasses both the capacity bound and the
   closed flag.  Reserved for the supervisor's retry path — a request
   already admitted once must be re-runnable during drain without being
   re-refused as overloaded or draining. *)
let requeue t x =
  with_lock t @@ fun () ->
  Queue.add x t.items;
  Condition.signal t.nonempty

let close t =
  with_lock t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty

let depth t = with_lock t @@ fun () -> Queue.length t.items
