(** Shutdown coordination and session statistics.

    A drain is requested exactly once — by end-of-input ([Eof]) or by
    SIGINT/SIGTERM ([Signal]); later requests keep the first reason.  A
    signal-initiated drain also stamps a cancellation deadline
    [now + drain_timeout_ms]: workers fold it into their per-request
    deadline so in-flight work that outlives the grace period is
    cancelled cooperatively instead of being killed.

    The counters are atomics shared across worker domains; [record]
    classifies each response and mirrors it into [Hypar_obs] counters so
    [health] and the final stats line agree. *)

type t

type reason = Eof | Signal

val create : drain_timeout_ms:int -> t
val request : t -> reason -> unit
val draining : t -> bool
val reason : t -> reason option

val cancel_deadline : t -> Deadline.t
(** [Never] until a [Signal] drain is requested. *)

val accepted : t -> unit
(** Count a request admitted for execution. *)

val record : t -> Protocol.response -> unit
(** Classify a response into completed / errors / deadline-exceeded /
    rejected / poisoned. *)

val uptime_ms : t -> int

val health_payload : t -> queue_depth:int -> string
(** The [health] verb's payload: uptime, queue depth and the counters,
    as one-line JSON. *)

val stats_line : t -> string
(** The final line printed to stderr on exit, e.g.
    ["hypar serve: drained (eof): accepted=4 completed=3 errors=1 deadline-exceeded=0 rejected=0 poisoned=0"]. *)
