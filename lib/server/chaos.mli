(** Declarative, seeded chaos injection for the serve pool.

    A chaos spec is a list of fault directives with per-directive
    probabilities, parsed from the same line-oriented text format as
    fault specs ({!Hypar_resilience.Spec}) and printable back with
    {!to_text} (a parse/print round-trip is stable).  Faults:

    - [crash P%] — the worker domain dies before executing the attempt;
    - [crash-on SEQ] — deterministic crash of one request's first
      attempt (regression fixtures);
    - [wedge P% MS] / [wedge-on SEQ MS] — the worker stalls for [MS]
      milliseconds {e without} heartbeating, so supervision must detect
      it and reassign the request;
    - [delay P% MS|MIN..MAX] — an innocent slow request: the stall
      keeps heartbeating and must {e not} trip wedge detection;
    - [drop P%] / [truncate P%] — the first write attempt of a response
      transfers nothing / only a prefix, exercising the full-write
      healing loop (the client still receives the complete line);
    - [slowloris P% MS] — the soak harness dribbles the request bytes
      [MS] ms per chunk, exercising the buffered line reader.

    Every decision is a pure FNV-1a hash of (seed, fault kind, request
    digest, attempt) — never of worker identity or arrival order — so a
    campaign makes identical choices for every [--jobs] value and every
    rerun under the same seed. *)

type fault =
  | Crash of int  (** percent of attempts *)
  | Crash_on of int  (** request sequence number; first attempt only *)
  | Wedge of { percent : int; ms : int }
  | Wedge_on of { seq : int; ms : int }
  | Delay of { percent : int; min_ms : int; max_ms : int }
  | Drop of int
  | Truncate of int
  | Slowloris of { percent : int; ms : int }

type spec = { seed : int; faults : fault list }

val none : spec
val active : spec -> bool

val default : spec
(** The built-in [--chaos default] mix: moderate crash/wedge/delay plus
    write and read interference, seed 0. *)

(* decisions, all deterministic in (spec, key, attempt) *)

val crashes : spec -> seq:int -> key:string -> attempt:int -> bool
val wedge_ms : spec -> seq:int -> key:string -> attempt:int -> int option
val delay_ms : spec -> key:string -> attempt:int -> int option
val drop_write : spec -> key:string -> bool
val truncate_write : spec -> key:string -> bool
val slowloris_ms : spec -> key:string -> int option

(* parse / print *)

val syntax_help : string
val fault_string : fault -> string
val to_text : spec -> string

val of_string : string -> (spec, string) result
(** Inverse of {!to_text}; errors carry a line number. *)

val load : string -> (spec, string) result

val of_arg : string -> (spec option, string) result
(** The CLI's [--chaos] argument: ["none"]/["off"] → [None],
    ["default"] → the built-in spec, anything else → {!load}. *)
