module Sink = Hypar_obs.Sink
module Pool = Hypar_explore.Pool

type config = {
  jobs : int;
  max_queue : int;
  drain_timeout_ms : int;
  faults : Hypar_resilience.Fault.spec option;
  backend : Hypar_profiling.Profile.backend option;
  default_deadline_ms : int option;
  default_fuel : int option;
}

let retry_after_ms = 100

(* Full, EINTR-safe write of one response line.  EPIPE is swallowed (the
   peer went away; the session winds down at the next read) — it must
   not escape a worker domain and take the server with it. *)
let write_line lock fd s =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let s = s ^ "\n" in
      let rec go off len =
        if len > 0 then
          match Unix.write_substring fd s off len with
          | n -> go (off + n) (len - n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      in
      try go 0 (String.length s)
      with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ())

let run_session ?(drain_on_eof = true) ?(execute = Worker.execute) config drain
    in_fd out_fd =
  let jobs = max 1 config.jobs in
  let lines = Lines.create in_fd in
  let out_lock = Mutex.create () in
  let queue = Bqueue.create ~capacity:config.max_queue in
  let wconfig =
    {
      Worker.faults = config.faults;
      backend = config.backend;
      default_deadline_ms = config.default_deadline_ms;
      default_fuel = config.default_fuel;
      drain;
      queue_depth = (fun () -> if jobs > 1 then Bqueue.depth queue else 0);
    }
  in
  (* Worker domains capture their trace events per request and park them
     under the request's sequence number; replaying the captures in
     sequence order at session end makes the merged stream independent
     of scheduling (the explore pool's merge discipline). *)
  let captures = ref [] in
  let captures_lock = Mutex.create () in
  let worker_loop _i =
    let rec loop () =
      match Bqueue.pop queue with
      | None -> ()
      | Some (seq, req) ->
        (* record inside the capture so the response-class counters
           replay in request order, exactly as the inline mode emits
           them — counter totals stay byte-identical across [jobs] *)
        let resp, events =
          Sink.collect (fun () ->
              let resp = execute wconfig req in
              Drain.record drain resp;
              resp)
        in
        if events <> [] then begin
          Mutex.lock captures_lock;
          captures := (seq, events) :: !captures;
          Mutex.unlock captures_lock
        end;
        write_line out_lock out_fd (Protocol.render resp);
        loop ()
    in
    loop ()
  in
  let pool = if jobs > 1 then Some (Pool.fork ~domains:jobs worker_loop) else None in
  let seq = ref 0 in
  (* Reader-side responses (parse errors, overloaded rejections) record
     under the line's sequence number like worker responses, so the
     replayed counter stream keeps input order regardless of [jobs]. *)
  let respond_reader seq resp =
    (match pool with
    | None -> Drain.record drain resp
    | Some _ ->
      let (), events = Sink.collect (fun () -> Drain.record drain resp) in
      if events <> [] then begin
        Mutex.lock captures_lock;
        captures := (seq, events) :: !captures;
        Mutex.unlock captures_lock
      end);
    write_line out_lock out_fd (Protocol.render resp)
  in
  let rec read_loop () =
    match Lines.next ~stop:(fun () -> Drain.draining drain) lines with
    | Lines.Stopped -> ()
    | Lines.Eof -> if drain_on_eof then Drain.request drain Eof
    | Lines.Line line ->
      if String.trim line <> "" then begin
        Drain.accepted drain;
        incr seq;
        match Protocol.parse_request line with
        | Error msg ->
          respond_reader !seq
            (Protocol.Failed { id = None; kind = "parse-error"; message = msg })
        | Ok req -> (
          match pool with
          | None ->
            let resp = execute wconfig req in
            Drain.record drain resp;
            write_line out_lock out_fd (Protocol.render resp)
          | Some _ -> (
            match Bqueue.push queue (!seq, req) with
            | Bqueue.Pushed depth ->
              if Sink.enabled () then
                Hypar_obs.Counter.set "server.queue.depth" depth
            | Bqueue.Full depth ->
              respond_reader !seq
                (Protocol.Overloaded
                   { id = req.Protocol.id; depth; retry_after_ms })
            | Bqueue.Closed ->
              respond_reader !seq
                (Protocol.Failed
                   {
                     id = req.Protocol.id;
                     kind = "draining";
                     message = "server is draining";
                   })))
      end;
      read_loop ()
  in
  read_loop ();
  (match pool with
  | None -> ()
  | Some pool ->
    Bqueue.close queue;
    (* Workers exit once the queue drains; a signal drain's cancellation
       deadline cuts in-flight work short cooperatively, so the join is
       bounded by the drain timeout plus one poll interval. *)
    Pool.join pool);
  if Sink.enabled () then
    List.iter
      (fun (_, events) -> Sink.replay events)
      (List.sort (fun (a, _) (b, _) -> compare a b) !captures)

let install_signal_handlers drain =
  let request _ = Drain.request drain Signal in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request);
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run_pipe config =
  let drain = Drain.create ~drain_timeout_ms:config.drain_timeout_ms in
  install_signal_handlers drain;
  run_session config drain Unix.stdin Unix.stdout;
  prerr_endline (Drain.stats_line drain);
  0

let rec accept_ready sock =
  match Unix.select [ sock ] [] [] 0.1 with
  | [], _, _ -> None
  | _ -> (
    match Unix.accept sock with
    | fd, _ -> Some fd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> None)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_ready sock

let run_socket config path =
  if Sys.file_exists path then begin
    Printf.eprintf "hypar: serve: socket path %s already exists\n" path;
    2
  end
  else
    match
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind sock (Unix.ADDR_UNIX path);
         Unix.listen sock 8
       with e ->
         Unix.close sock;
         raise e);
      sock
    with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "hypar: serve: cannot bind %s: %s\n" path
        (Unix.error_message err);
      2
    | sock ->
      let drain = Drain.create ~drain_timeout_ms:config.drain_timeout_ms in
      install_signal_handlers drain;
      let finish () =
        Unix.close sock;
        (try Sys.remove path with Sys_error _ -> ());
        prerr_endline (Drain.stats_line drain)
      in
      Fun.protect ~finally:finish (fun () ->
          (* Connections are served one at a time, each as its own
             session (workers inside a session still honour [jobs]);
             a client hanging up never drains the server. *)
          while not (Drain.draining drain) do
            match accept_ready sock with
            | None -> ()
            | Some fd ->
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> run_session ~drain_on_eof:false config drain fd fd)
          done);
      0
