module Sink = Hypar_obs.Sink
module Pool = Hypar_explore.Pool

type config = {
  jobs : int;
  max_queue : int;
  drain_timeout_ms : int;
  retry_after_ms : int;
  faults : Hypar_resilience.Fault.spec option;
  backend : Hypar_profiling.Profile.backend option;
  default_deadline_ms : int option;
  default_fuel : int option;
  supervisor : Supervisor.options option;
}

(* The overload hint scales with how far behind the pool is: a queue one
   pool-width deep clears in roughly one service interval, so the base
   hint is multiplied by ceil(depth / jobs). *)
let retry_after_hint ~base ~jobs ~depth =
  let jobs = max 1 jobs in
  base * max 1 ((depth + jobs - 1) / jobs)

(* Full, EINTR-safe write of one response line.  EPIPE is swallowed (the
   peer went away; the session winds down at the next read) — it must
   not escape a worker domain and take the server with it.  [first]
   caps how many bytes the first write attempt may transfer (chaos
   [drop]/[truncate] injection); the loop heals the remainder, so the
   client receives the complete line either way. *)
let write_line ?first lock fd s =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let s = s ^ "\n" in
      let rec go cap off len =
        if len > 0 then
          match
            let n = match cap with Some c -> min c len | None -> len in
            if n = 0 then 0 else Unix.write_substring fd s off n
          with
          | n -> go None (off + n) (len - n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go cap off len
      in
      try go first 0 (String.length s)
      with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ())

let run_session ?(drain_on_eof = true) ?(execute = Worker.execute) ?on_stats
    config drain in_fd out_fd =
  let jobs = max 1 config.jobs in
  let lines = Lines.create in_fd in
  let out_lock = Mutex.create () in
  (* Worker domains capture their trace events per request and park them
     under the request's sequence number; replaying the captures in
     sequence order at session end makes the merged stream independent
     of scheduling (the explore pool's merge discipline). *)
  let captures = ref [] in
  let captures_lock = Mutex.create () in
  let capture seq events =
    if events <> [] then begin
      Mutex.lock captures_lock;
      captures := (seq, events) :: !captures;
      Mutex.unlock captures_lock
    end
  in
  let replay () =
    if Sink.enabled () then
      List.iter
        (fun (_, events) -> Sink.replay events)
        (List.sort (fun (a, _) (b, _) -> compare a b) !captures)
  in
  let chaos =
    match config.supervisor with
    | Some { Supervisor.chaos = Some spec; _ } when Chaos.active spec ->
      Some spec
    | _ -> None
  in
  let write_response line =
    match chaos with
    | Some spec when Chaos.drop_write spec ~key:line ->
      if Sink.enabled () then
        Hypar_obs.Counter.incr "server.chaos.dropped_writes";
      write_line ~first:0 out_lock out_fd line
    | Some spec when Chaos.truncate_write spec ~key:line ->
      if Sink.enabled () then
        Hypar_obs.Counter.incr "server.chaos.truncated_writes";
      write_line ~first:(String.length line / 2) out_lock out_fd line
    | _ -> write_line out_lock out_fd line
  in
  (* Reader-side responses (parse errors, overloaded rejections) record
     under the line's sequence number like worker responses, so the
     replayed counter stream keeps input order regardless of [jobs]. *)
  let respond_reader ~pooled seq resp =
    (if not pooled then Drain.record drain resp
     else begin
       let (), events = Sink.collect (fun () -> Drain.record drain resp) in
       capture seq events
     end);
    write_response (Protocol.render resp)
  in
  let read_loop ~pooled ~admit =
    let seq = ref 0 in
    let rec go () =
      match Lines.next ~stop:(fun () -> Drain.draining drain) lines with
      | Lines.Stopped -> ()
      | Lines.Eof -> if drain_on_eof then Drain.request drain Eof
      | Lines.Line line ->
        if String.trim line <> "" then begin
          Drain.accepted drain;
          incr seq;
          match Protocol.parse_request line with
          | Error msg ->
            respond_reader ~pooled !seq
              (Protocol.Failed { id = None; kind = "parse-error"; message = msg })
          | Ok req -> admit !seq req
        end;
        go ()
    in
    go ()
  in
  let overloaded seq (req : Protocol.request) depth =
    respond_reader ~pooled:true seq
      (Protocol.Overloaded
         {
           id = req.Protocol.id;
           depth;
           retry_after_ms =
             retry_after_hint ~base:config.retry_after_ms ~jobs ~depth;
         })
  in
  let draining_failed seq (req : Protocol.request) =
    respond_reader ~pooled:true seq
      (Protocol.Failed
         {
           id = req.Protocol.id;
           kind = "draining";
           message = "server is draining";
         })
  in
  let base_wconfig queue_depth =
    {
      Worker.faults = config.faults;
      backend = config.backend;
      default_deadline_ms = config.default_deadline_ms;
      default_fuel = config.default_fuel;
      drain;
      queue_depth;
      on_poll = None;
    }
  in
  match config.supervisor with
  | Some opts -> (
    (* self-healing pool: the supervisor owns the queue and the worker
       domains; the session supplies execution, delivery and admission *)
    let sup_ref = ref None in
    let queue_depth () =
      match !sup_ref with Some s -> Supervisor.depth s | None -> 0
    in
    let base = base_wconfig queue_depth in
    let exec ~heartbeat req =
      let resp, events =
        Sink.collect (fun () ->
            execute { base with Worker.on_poll = Some heartbeat } req)
      in
      { Supervisor.resp; events }
    in
    let deliver ~seq resp events =
      let (), record_events = Sink.collect (fun () -> Drain.record drain resp) in
      capture seq (events @ record_events);
      write_response (Protocol.render resp)
    in
    match
      Supervisor.start ~jobs opts ~queue_capacity:config.max_queue
        ~deadline_ms:(Worker.request_deadline_ms base) ~execute:exec ~deliver
    with
    | Error msg -> failwith (Printf.sprintf "hypar serve: %s" msg)
    | Ok sup ->
      sup_ref := Some sup;
      let admit seq req =
        match Supervisor.submit sup ~seq req with
        | Supervisor.Admitted -> ()
        | Supervisor.Rejected depth -> overloaded seq req depth
        | Supervisor.Draining -> draining_failed seq req
      in
      read_loop ~pooled:true ~admit;
      let sstats = Supervisor.drain sup in
      replay ();
      match on_stats with Some f -> f sstats | None -> ())
  | None ->
    let queue = Bqueue.create ~capacity:config.max_queue in
    let wconfig =
      base_wconfig (fun () -> if jobs > 1 then Bqueue.depth queue else 0)
    in
    let worker_loop _i =
      let rec loop () =
        match Bqueue.pop queue with
        | None -> ()
        | Some (seq, req) ->
          (* record inside the capture so the response-class counters
             replay in request order, exactly as the inline mode emits
             them — counter totals stay byte-identical across [jobs] *)
          let resp, events =
            Sink.collect (fun () ->
                let resp = execute wconfig req in
                Drain.record drain resp;
                resp)
          in
          capture seq events;
          write_response (Protocol.render resp);
          loop ()
      in
      loop ()
    in
    let pool =
      if jobs > 1 then Some (Pool.fork ~domains:jobs worker_loop) else None
    in
    let admit seq req =
      match pool with
      | None ->
        let resp = execute wconfig req in
        Drain.record drain resp;
        write_response (Protocol.render resp)
      | Some _ -> (
        match Bqueue.push queue (seq, req) with
        | Bqueue.Pushed depth ->
          if Sink.enabled () then
            Hypar_obs.Counter.set "server.queue.depth" depth
        | Bqueue.Full depth -> overloaded seq req depth
        | Bqueue.Closed -> draining_failed seq req)
    in
    read_loop ~pooled:(pool <> None) ~admit;
    (match pool with
    | None -> ()
    | Some pool ->
      Bqueue.close queue;
      (* Workers exit once the queue drains; a signal drain's cancellation
         deadline cuts in-flight work short cooperatively, so the join is
         bounded by the drain timeout plus one poll interval. *)
      Pool.join pool);
    replay ();
    ignore on_stats

let supervisor_line (s : Supervisor.stats) =
  Printf.sprintf
    "hypar serve: supervisor: respawns=%d retries=%d quarantines=%d wedges=%d \
     crashes=%d workers=%d"
    s.Supervisor.respawns s.Supervisor.retries s.Supervisor.quarantines
    s.Supervisor.wedges s.Supervisor.crashes s.Supervisor.live_workers

let install_signal_handlers drain =
  let request _ = Drain.request drain Signal in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request);
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run_pipe config =
  let drain = Drain.create ~drain_timeout_ms:config.drain_timeout_ms in
  install_signal_handlers drain;
  let sup_stats = ref None in
  run_session ~on_stats:(fun s -> sup_stats := Some s) config drain Unix.stdin
    Unix.stdout;
  prerr_endline (Drain.stats_line drain);
  (match !sup_stats with
  | Some s -> prerr_endline (supervisor_line s)
  | None -> ());
  0

let rec accept_ready sock =
  match Unix.select [ sock ] [] [] 0.1 with
  | [], _, _ -> None
  | _ -> (
    match Unix.accept sock with
    | fd, _ -> Some fd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> None)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_ready sock

let run_socket config path =
  if Sys.file_exists path then begin
    Printf.eprintf "hypar: serve: socket path %s already exists\n" path;
    2
  end
  else
    match
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind sock (Unix.ADDR_UNIX path);
         Unix.listen sock 8
       with e ->
         Unix.close sock;
         raise e);
      sock
    with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "hypar: serve: cannot bind %s: %s\n" path
        (Unix.error_message err);
      2
    | sock ->
      let drain = Drain.create ~drain_timeout_ms:config.drain_timeout_ms in
      install_signal_handlers drain;
      let finish () =
        Unix.close sock;
        (try Sys.remove path with Sys_error _ -> ());
        prerr_endline (Drain.stats_line drain)
      in
      Fun.protect ~finally:finish (fun () ->
          (* Connections are served one at a time, each as its own
             session (workers inside a session still honour [jobs]);
             a client hanging up never drains the server. *)
          while not (Drain.draining drain) do
            match accept_ready sock with
            | None -> ()
            | Some fd ->
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> run_session ~drain_on_eof:false config drain fd fd)
          done);
      0
