type reason = Eof | Signal

type t = {
  drain_timeout_ms : int;
  started_at : float;
  state : reason option Atomic.t;
  cancel_at : Deadline.t Atomic.t;
  accepted : int Atomic.t;
  completed : int Atomic.t;
  errors : int Atomic.t;
  deadline_exceeded : int Atomic.t;
  rejected : int Atomic.t;
  poisoned : int Atomic.t;
}

let create ~drain_timeout_ms =
  {
    drain_timeout_ms;
    started_at = Unix.gettimeofday ();
    state = Atomic.make None;
    cancel_at = Atomic.make Deadline.never;
    accepted = Atomic.make 0;
    completed = Atomic.make 0;
    errors = Atomic.make 0;
    deadline_exceeded = Atomic.make 0;
    rejected = Atomic.make 0;
    poisoned = Atomic.make 0;
  }

let request t why =
  if Atomic.compare_and_set t.state None (Some why) && why = Signal then
    Atomic.set t.cancel_at (Deadline.after_ms t.drain_timeout_ms)

let draining t = Atomic.get t.state <> None
let reason t = Atomic.get t.state
let cancel_deadline t = Atomic.get t.cancel_at

let accepted t =
  Atomic.incr t.accepted;
  if Hypar_obs.Sink.enabled () then
    Hypar_obs.Counter.incr "server.requests.accepted"

let record t (resp : Protocol.response) =
  let cell, counter =
    match resp with
    | Protocol.Done _ -> (t.completed, "server.requests.completed")
    | Protocol.Failed _ -> (t.errors, "server.requests.errors")
    | Protocol.Deadline_exceeded _ ->
      (t.deadline_exceeded, "server.requests.deadline_exceeded")
    | Protocol.Overloaded _ -> (t.rejected, "server.requests.rejected")
    | Protocol.Poisoned _ -> (t.poisoned, "server.requests.poisoned")
  in
  Atomic.incr cell;
  if Hypar_obs.Sink.enabled () then Hypar_obs.Counter.incr counter

let uptime_ms t =
  int_of_float (Float.round ((Unix.gettimeofday () -. t.started_at) *. 1000.))

let health_payload t ~queue_depth =
  Printf.sprintf
    {|{"uptime_ms":%d,"queue_depth":%d,"draining":%b,"accepted":%d,"completed":%d,"errors":%d,"deadline_exceeded":%d,"rejected":%d,"poisoned":%d}|}
    (uptime_ms t) queue_depth (draining t)
    (Atomic.get t.accepted)
    (Atomic.get t.completed)
    (Atomic.get t.errors)
    (Atomic.get t.deadline_exceeded)
    (Atomic.get t.rejected)
    (Atomic.get t.poisoned)

let stats_line t =
  let why =
    match Atomic.get t.state with
    | Some Eof -> "eof"
    | Some Signal -> "signal"
    | None -> "exit"
  in
  Printf.sprintf
    "hypar serve: drained (%s): accepted=%d completed=%d errors=%d \
     deadline-exceeded=%d rejected=%d poisoned=%d"
    why
    (Atomic.get t.accepted)
    (Atomic.get t.completed)
    (Atomic.get t.errors)
    (Atomic.get t.deadline_exceeded)
    (Atomic.get t.rejected)
    (Atomic.get t.poisoned)
