module Sink = Hypar_obs.Sink
module Counter = Hypar_obs.Counter
module Journal = Hypar_resilience.Journal
module Retry = Hypar_resilience.Retry

type options = {
  max_retries : int;
  grace_ms : int option;
  backoff_us : int;
  chaos : Chaos.spec option;
  quarantine_path : string option;
  resume_quarantine : bool;
}

let default_options =
  {
    max_retries = 1;
    grace_ms = None;
    backoff_us = 20_000;
    chaos = None;
    quarantine_path = None;
    resume_quarantine = true;
  }

type outcome = { resp : Protocol.response; events : Hypar_obs.Event.t list }

type job = {
  seq : int;
  req : Protocol.request;
  digest : string;
  deadline_ms : int option;
  attempt : int Atomic.t;  (* 1-based; bumped by the monitor on retry *)
  settled : bool Atomic.t;
}

(* Worker lifecycle, advertised through one atomic per slot.  [Crashed]
   is the only state a worker leaves behind on an escaping exception (or
   an injected chaos crash): the domain returns immediately after
   setting it, so the monitor's join is always prompt. *)
type phase =
  | Idle
  | Busy of { job : job; started : float }
  | Crashed of { job : job option; exn_name : string }
  | Exited

type slot = {
  mutable domain : unit Domain.t option;
  phase : phase Atomic.t;
  hb : float Atomic.t;
  abandoned : bool Atomic.t;
}

type stats = {
  respawns : int;
  retries : int;
  quarantines : int;
  wedges : int;
  crashes : int;
  live_workers : int;
  max_heartbeat_age_ms : int;
}

type admission = Admitted | Rejected of int | Draining

type t = {
  jobs : int;
  opts : options;
  queue : job Bqueue.t;
  execute : heartbeat:(unit -> unit) -> Protocol.request -> outcome;
  deliver :
    seq:int -> Protocol.response -> Hypar_obs.Event.t list -> unit;
  deadline_ms : Protocol.request -> int option;
  quarantined : (string, string) Hashtbl.t;
  q_lock : Mutex.t;
  journal : Journal.t option;
  inflight : int Atomic.t;  (* admitted but not yet settled *)
  settled_total : int Atomic.t;
  shutdown : bool Atomic.t;
  slots_lock : Mutex.t;
  mutable slots : slot list;
  mutable orphans : unit Domain.t list;
  mutable monitor : unit Domain.t option;
  (* statistics *)
  respawns : int Atomic.t;
  retries : int Atomic.t;
  quarantines : int Atomic.t;
  wedges : int Atomic.t;
  crashes : int Atomic.t;
  max_hb_age_us : int Atomic.t;
}

let quarantine_header = "hypar-quarantine"

let validate_quarantine path =
  Result.map ignore (Journal.load ~header:quarantine_header path)

(* Quarantine entries are "DIGEST SIGNATURE" lines; the digest is hex
   and the signature a short crash class, so a single space splits
   unambiguously. *)
let load_quarantine opts =
  match opts.quarantine_path with
  | None -> Ok (Hashtbl.create 16, None)
  | Some path ->
    let ( let* ) = Result.bind in
    let* entries =
      if opts.resume_quarantine then Journal.load ~header:quarantine_header path
      else Ok []
    in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun entry ->
        match String.index_opt entry ' ' with
        | Some i ->
          Hashtbl.replace tbl
            (String.sub entry 0 i)
            (String.sub entry (i + 1) (String.length entry - i - 1))
        | None -> Hashtbl.replace tbl entry "unknown")
      entries;
    let* journal =
      Journal.create ~resume:opts.resume_quarantine ~header:quarantine_header
        path
    in
    Ok (tbl, Some journal)

let quarantine_signature t digest =
  Mutex.lock t.q_lock;
  let s = Hashtbl.find_opt t.quarantined digest in
  Mutex.unlock t.q_lock;
  s

let poisoned_response job ~signature ~attempts =
  {
    resp = Protocol.Poisoned { id = job.req.Protocol.id; signature; attempts };
    events = [];
  }

(* Exactly-one-response: whoever wins the CAS delivers; every other
   path (an abandoned worker finishing late, a raced retry) loses the
   CAS and stays silent.  [inflight] is decremented only after the
   delivery completes, so drain waits for the write too. *)
let settle t job outcome =
  if Atomic.compare_and_set job.settled false true then begin
    t.deliver ~seq:job.seq outcome.resp outcome.events;
    Atomic.incr t.settled_total;
    Atomic.decr t.inflight
  end

let quarantine t job ~signature =
  Mutex.lock t.q_lock;
  let fresh = not (Hashtbl.mem t.quarantined job.digest) in
  if fresh then Hashtbl.replace t.quarantined job.digest signature;
  Mutex.unlock t.q_lock;
  if fresh then begin
    (match t.journal with
    | Some j -> Journal.append j (job.digest ^ " " ^ signature)
    | None -> ());
    Atomic.incr t.quarantines;
    if Sink.enabled () then Counter.incr "server.supervisor.quarantines"
  end;
  settle t job
    (poisoned_response job ~signature ~attempts:(Atomic.get job.attempt))

(* A failed attempt either earns a retry (re-enqueued unconditionally —
   the queue may be closed mid-drain, and an admitted request must
   still be answered) or crosses [max_retries] and is quarantined. *)
let handle_failure t job ~signature =
  if not (Atomic.get job.settled) then begin
    if Atomic.get job.attempt > t.opts.max_retries then
      quarantine t job ~signature
    else begin
      Atomic.incr job.attempt;
      Atomic.incr t.retries;
      if Sink.enabled () then Counter.incr "server.supervisor.retries";
      Bqueue.requeue t.queue job
    end
  end

(* --- worker domains ------------------------------------------------------ *)

let beat slot = Atomic.set slot.hb (Unix.gettimeofday ())

(* Sleep [ms] in short chunks, optionally heartbeating each chunk (a
   chaos [delay] heartbeats, a chaos [wedge] does not); returns early
   once the monitor has abandoned the slot. *)
let stall slot ~heartbeating ms =
  let rec go ms =
    if Atomic.get slot.abandoned then true
    else if ms <= 0 then Atomic.get slot.abandoned
    else begin
      let chunk = min ms 5 in
      Unix.sleepf (float_of_int chunk /. 1000.);
      if heartbeating then beat slot;
      go (ms - chunk)
    end
  in
  go ms

let worker_loop t slot =
  let chaos_for job =
    match t.opts.chaos with
    | None -> (false, None, None)
    | Some spec ->
      let attempt = Atomic.get job.attempt in
      ( Chaos.crashes spec ~seq:job.seq ~key:job.digest ~attempt,
        Chaos.wedge_ms spec ~seq:job.seq ~key:job.digest ~attempt,
        Chaos.delay_ms spec ~key:job.digest ~attempt )
  in
  let rec loop () =
    if Atomic.get slot.abandoned then Atomic.set slot.phase Exited
    else begin
      Atomic.set slot.phase Idle;
      beat slot;
      match Bqueue.pop t.queue with
      | None -> Atomic.set slot.phase Exited
      | Some job -> run job
    end
  and run job =
    if Atomic.get job.settled then loop ()
    else
      match quarantine_signature t job.digest with
      | Some signature ->
        (* a sibling request with the same digest was quarantined while
           this one sat in the queue *)
        settle t job (poisoned_response job ~signature ~attempts:0);
        loop ()
      | None -> (
        beat slot;
        Atomic.set slot.phase (Busy { job; started = Unix.gettimeofday () });
        let crash, wedge, delay = chaos_for job in
        if crash then
          (* die exactly as an escaping exception would: advertise the
             crash, return from the domain, let the monitor heal *)
          Atomic.set slot.phase (Crashed { job = Some job; exn_name = "injected" })
        else begin
          (match delay with
          | Some ms -> ignore (stall slot ~heartbeating:true ms)
          | None -> ());
          let abandoned_mid_wedge =
            match wedge with
            | Some ms -> stall slot ~heartbeating:false ms
            | None -> false
          in
          if abandoned_mid_wedge || Atomic.get slot.abandoned then
            (* the monitor gave up on us and reassigned the job; exit
               without executing so no duplicate response can race *)
            Atomic.set slot.phase Exited
          else
            match t.execute ~heartbeat:(fun () -> beat slot) job.req with
            | outcome ->
              settle t job outcome;
              loop ()
            | exception e ->
              Atomic.set slot.phase
                (Crashed { job = Some job; exn_name = Printexc.exn_slot_name e })
        end)
  in
  try loop ()
  with e ->
    Atomic.set slot.phase
      (Crashed { job = None; exn_name = Printexc.exn_slot_name e })

let spawn_slot t =
  let slot =
    {
      domain = None;
      phase = Atomic.make Idle;
      hb = Atomic.make (Unix.gettimeofday ());
      abandoned = Atomic.make false;
    }
  in
  slot.domain <- Some (Domain.spawn (fun () -> worker_loop t slot));
  slot

(* --- the monitor domain -------------------------------------------------- *)

let note_hb_age t age_s =
  let us = int_of_float (age_s *. 1e6) in
  let rec bump () =
    let cur = Atomic.get t.max_hb_age_us in
    if us > cur && not (Atomic.compare_and_set t.max_hb_age_us cur us) then
      bump ()
  in
  bump ()

let monitor_loop t =
  (* consecutive respawns without an intervening settled request drive
     the bounded exponential backoff; any progress resets it *)
  let consecutive = ref 0 in
  let last_settled = ref (Atomic.get t.settled_total) in
  let respawn_backoff () =
    let settled_now = Atomic.get t.settled_total in
    if settled_now <> !last_settled then consecutive := 0;
    last_settled := settled_now;
    incr consecutive;
    let wait_us =
      min 200_000
        (Retry.delay_us ~backoff_us:t.opts.backoff_us ~attempt:!consecutive)
    in
    if wait_us > 0 then Unix.sleepf (float_of_int wait_us /. 1e6)
  in
  let count_respawn () =
    Atomic.incr t.respawns;
    if Sink.enabled () then Counter.incr "server.supervisor.respawns"
  in
  while not (Atomic.get t.shutdown) do
    let now = Unix.gettimeofday () in
    Mutex.lock t.slots_lock;
    let slots = t.slots in
    Mutex.unlock t.slots_lock;
    let slots' =
      List.map
        (fun slot ->
          match Atomic.get slot.phase with
          | Crashed { job; exn_name } ->
            (match slot.domain with
            | Some d -> Domain.join d
            | None -> ());
            Atomic.incr t.crashes;
            if Sink.enabled () then Counter.incr "server.supervisor.crashes";
            (match job with
            | Some job ->
              handle_failure t job ~signature:("crash:" ^ exn_name)
            | None -> ());
            count_respawn ();
            respawn_backoff ();
            spawn_slot t
          | Busy { job; started } -> (
            let hb_age = now -. Atomic.get slot.hb in
            note_hb_age t hb_age;
            match t.opts.grace_ms with
            | Some grace_ms when not (Atomic.get job.settled) ->
              let grace = float_of_int grace_ms /. 1000. in
              let budget =
                match job.deadline_ms with
                | Some ms -> float_of_int ms /. 1000.
                | None -> 0.
              in
              if hb_age > grace && now -. started > budget +. grace then begin
                (* wedged: no poll progress past deadline + grace.  A
                   domain cannot be killed, so the worker is abandoned —
                   it will exit on its own without delivering — and a
                   fresh one takes its slot *)
                Atomic.set slot.abandoned true;
                Atomic.incr t.wedges;
                if Sink.enabled () then Counter.incr "server.supervisor.wedges";
                handle_failure t job ~signature:"wedge";
                Mutex.lock t.slots_lock;
                (match slot.domain with
                | Some d -> t.orphans <- d :: t.orphans
                | None -> ());
                Mutex.unlock t.slots_lock;
                count_respawn ();
                respawn_backoff ();
                spawn_slot t
              end
              else slot
            | _ -> slot)
          | Idle | Exited -> slot)
        slots
    in
    (* a retry re-enqueued after every worker already exited (the queue
       was momentarily closed and empty) still needs a live worker *)
    let slots' =
      if
        Bqueue.depth t.queue > 0
        && not
             (List.exists
                (fun s -> Atomic.get s.phase <> Exited)
                slots')
      then spawn_slot t :: slots'
      else slots'
    in
    Mutex.lock t.slots_lock;
    t.slots <- slots';
    Mutex.unlock t.slots_lock;
    Unix.sleepf 0.002
  done

(* --- lifecycle ----------------------------------------------------------- *)

let start ~jobs opts ~queue_capacity ~deadline_ms ~execute ~deliver =
  match load_quarantine opts with
  | Error msg -> Error (Printf.sprintf "quarantine journal: %s" msg)
  | Ok (quarantined, journal) ->
    let t =
      {
        jobs = max 1 jobs;
        opts;
        queue = Bqueue.create ~capacity:queue_capacity;
        execute;
        deliver;
        deadline_ms;
        quarantined;
        q_lock = Mutex.create ();
        journal;
        inflight = Atomic.make 0;
        settled_total = Atomic.make 0;
        shutdown = Atomic.make false;
        slots_lock = Mutex.create ();
        slots = [];
        orphans = [];
        monitor = None;
        respawns = Atomic.make 0;
        retries = Atomic.make 0;
        quarantines = Atomic.make 0;
        wedges = Atomic.make 0;
        crashes = Atomic.make 0;
        max_hb_age_us = Atomic.make 0;
      }
    in
    t.slots <- List.init t.jobs (fun _ -> spawn_slot t);
    t.monitor <- Some (Domain.spawn (fun () -> monitor_loop t));
    Ok t

let submit t ~seq req =
  let digest = Protocol.digest req in
  let job =
    {
      seq;
      req;
      digest;
      deadline_ms = t.deadline_ms req;
      attempt = Atomic.make 1;
      settled = Atomic.make false;
    }
  in
  match quarantine_signature t digest with
  | Some signature ->
    (* known-poisonous: answer immediately, never risk a worker *)
    Atomic.incr t.inflight;
    settle t job (poisoned_response job ~signature ~attempts:0);
    Admitted
  | None -> (
    Atomic.incr t.inflight;
    match Bqueue.push t.queue job with
    | Bqueue.Pushed depth ->
      if Sink.enabled () then Counter.set "server.queue.depth" depth;
      Admitted
    | Bqueue.Full depth ->
      Atomic.decr t.inflight;
      Rejected depth
    | Bqueue.Closed ->
      Atomic.decr t.inflight;
      Draining)

let depth t = Bqueue.depth t.queue

let live_workers t =
  Mutex.lock t.slots_lock;
  let n = List.length t.slots in
  Mutex.unlock t.slots_lock;
  n

let stats t =
  {
    respawns = Atomic.get t.respawns;
    retries = Atomic.get t.retries;
    quarantines = Atomic.get t.quarantines;
    wedges = Atomic.get t.wedges;
    crashes = Atomic.get t.crashes;
    live_workers = live_workers t;
    max_heartbeat_age_ms = Atomic.get t.max_hb_age_us / 1000;
  }

let drain t =
  Bqueue.close t.queue;
  (* every admitted job settles eventually: a queued job is popped by a
     live worker (the monitor keeps at least one alive while work
     remains), a running job settles or crashes, a crashed/wedged job is
     retried or quarantined — all of which end in exactly one settle *)
  while Atomic.get t.inflight > 0 do
    Unix.sleepf 0.002
  done;
  Atomic.set t.shutdown true;
  (match t.monitor with Some d -> Domain.join d | None -> ());
  t.monitor <- None;
  List.iter
    (fun slot -> match slot.domain with Some d -> Domain.join d | None -> ())
    t.slots;
  List.iter Domain.join t.orphans;
  t.orphans <- [];
  (match t.journal with Some j -> Journal.close j | None -> ());
  if Sink.enabled () then
    Counter.set "server.supervisor.max_heartbeat_age_ms"
      (Atomic.get t.max_hb_age_us / 1000);
  stats t
