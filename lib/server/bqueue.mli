(** The admission-controlled request queue: bounded, multi-producer,
    multi-consumer, with an explicit close for drain.

    {!push} never blocks — when the queue is at capacity the request is
    refused and the caller answers with a typed [overloaded] envelope
    (backpressure instead of unbounded memory growth).  {!pop} blocks
    until an item arrives or the queue is closed and empty, which is how
    drain lets workers finish queued work and then exit. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

type push_result =
  | Pushed of int  (** accepted; queue depth after the push *)
  | Full of int  (** refused; current depth (= capacity) *)
  | Closed  (** refused; the queue is draining *)

val push : 'a t -> 'a -> push_result
val pop : 'a t -> 'a option
(** Blocks.  [None] means closed and fully drained — the worker should
    exit. *)

val requeue : 'a t -> 'a -> unit
(** Unconditional enqueue, bypassing both the capacity bound and
    {!close}: the supervisor's retry path re-enqueues an
    already-admitted request even mid-drain.  Never refuses. *)

val close : 'a t -> unit
(** Stop accepting; queued items remain poppable.  Idempotent; wakes
    every blocked {!pop}. *)

val depth : 'a t -> int
