(** A line reader that stays responsive to shutdown.

    A plain [input_line] blocks indefinitely, so a SIGTERM arriving while
    the server waits for input would not be noticed until the next line.
    [next] instead polls the descriptor with select(2) at a short
    interval and re-checks [stop] between polls — the drain flag set by a
    signal handler is observed within one interval.  EINTR is retried,
    ['\r'] before the newline is stripped, and a trailing partial line is
    delivered before [Eof]. *)

type t

val create : Unix.file_descr -> t

type item =
  | Line of string
  | Eof
  | Stopped  (** [stop ()] became true before a full line arrived *)

val next : ?poll_interval:float -> stop:(unit -> bool) -> t -> item
(** Blocks until a line, end-of-file, or [stop].  [poll_interval]
    defaults to 0.1s. *)
