(** The chaos soak harness behind [hypar soak].

    Drives [count] seeded requests — over a pool of fuzz-generated
    Mini-C programs plus (optionally) the crash corpus — through an
    in-process supervised server session with chaos injection, and
    asserts the supervision invariants:

    - exactly one response per request, no duplicate and no missing ids
      (crashed and wedged attempts were retried or quarantined, never
      dropped, and never answered twice);
    - the pool ends the session with [jobs] live workers (every killed
      worker was respawned);
    - the drain completes within the budget;
    - with chaos disabled, the supervised responses are identical to an
      unsupervised baseline run over the same requests (supervision is
      pure overhead, not behaviour).

    Generated programs are written to a directory derived from the seed
    alone and each request body carries a unique tag, so request
    digests — and with them every chaos decision — are reproducible
    across reruns and identical for every [--jobs] value. *)

type config = {
  seed : int;
  count : int;
  budget_ms : int;  (** wall budget for the whole campaign *)
  jobs : int;
  chaos : Chaos.spec option;
  corpus_dir : string option;  (** mix in [test/corpus]-style entries *)
  max_retries : int;
  grace_ms : int;  (** wedge-detection grace of the supervised pool *)
  fuel : int;  (** per-request interpreter fuel cap *)
  compare_baseline : bool;
      (** run the chaos-free baseline comparison (ignored when chaos is
          active) *)
}

val default_config : config
(** seed 0, 100 requests, 60 s budget, 4 jobs, {!Chaos.default}, no
    corpus, 1 retry, 2 s grace (comfortably above the longest
    legitimate poll gap), 50k fuel, baseline comparison on. *)

type report = {
  seed : int;
  count : int;
  jobs : int;
  chaos_active : bool;
  responses : int;
  missing : int;
  duplicates : int;
  classes : (string * int) list;  (** responses per ["status"] value *)
  stats : Supervisor.stats;
  digest : string;  (** MD5 of the sorted response lines *)
  baseline_match : bool option;
  elapsed_ms : int;
  budget_ms : int;
  failures : string list;  (** empty iff the campaign passed *)
}

val passed : report -> bool

val run : config -> (report, string) result
(** [Error] is a setup failure (unreadable corpus); invariant violations
    land in [failures] instead. *)

val to_text : report -> string
(** Multi-line human summary ending in [result: PASS|FAIL].  The
    [digest:] line is stable across [--jobs] for a fixed seed, which is
    what the cram test compares. *)
