(** Wall-clock deadlines for request execution.

    A deadline is an absolute point in time (or {!never}); checks are a
    [gettimeofday] comparison, cheap enough for the interpreter's
    cooperative [poll] hook.  The worker combines a request's own budget
    with the server-wide drain deadline via {!earliest}, so one check
    covers both cancellation sources. *)

type t

exception Expired
(** Raised by {!check}; caught at the worker boundary and reported as a
    [deadline_exceeded] envelope. *)

val never : t

val after_ms : int -> t
(** A deadline [ms] milliseconds from now. *)

val earliest : t -> t -> t

val expired : t -> bool
(** [false] for {!never}. *)

val check : t -> unit
(** @raise Expired when the deadline has passed. *)

val remaining_ms : t -> int option
(** Milliseconds left ([Some 0] once expired); [None] for {!never}. *)
