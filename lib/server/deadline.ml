type t = Never | At of float  (* absolute epoch seconds *)

exception Expired

let () =
  Printexc.register_printer (function
    | Expired -> Some "Deadline.Expired"
    | _ -> None)

let never = Never
let now () = Unix.gettimeofday ()
let after_ms ms = At (now () +. (float_of_int ms /. 1000.))

let earliest a b =
  match (a, b) with
  | Never, d | d, Never -> d
  | At x, At y -> At (Float.min x y)

let expired = function Never -> false | At t -> now () >= t
let check d = if expired d then raise Expired

let remaining_ms = function
  | Never -> None
  | At t -> Some (max 0 (int_of_float (Float.ceil ((t -. now ()) *. 1000.))))
