module Jsonv = Hypar_obs.Jsonv
module Gen = Hypar_fuzzgen.Gen
module Rng = Hypar_fuzzgen.Rng
module Corpus = Hypar_fuzzgen.Corpus

type config = {
  seed : int;
  count : int;
  budget_ms : int;
  jobs : int;
  chaos : Chaos.spec option;
  corpus_dir : string option;
  max_retries : int;
  grace_ms : int;
  fuel : int;
  compare_baseline : bool;
}

let default_config =
  {
    seed = 0;
    count = 100;
    budget_ms = 60_000;
    jobs = 4;
    chaos = Some Chaos.default;
    corpus_dir = None;
    max_retries = 1;
    grace_ms = 2000;
    fuel = 50_000;
    compare_baseline = true;
  }

type report = {
  seed : int;
  count : int;
  jobs : int;
  chaos_active : bool;
  responses : int;
  missing : int;
  duplicates : int;
  classes : (string * int) list;
  stats : Supervisor.stats;
  digest : string;  (** MD5 of the sorted response lines *)
  baseline_match : bool option;
  elapsed_ms : int;
  budget_ms : int;
  failures : string list;
}

let passed r = r.failures = []

(* --- the program pool ---------------------------------------------------- *)

let write_file_atomic path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
  Sys.rename tmp path

(* Generated programs land in a directory named after the seed alone, so
   every soak process with the same seed sees the same paths — request
   digests, and with them every chaos decision, are identical across
   [--jobs] values and reruns.  Concurrent same-seed soaks write the
   same bytes, and the write is atomic, so sharing the directory is
   safe. *)
let program_pool (cfg : config) =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hypar-soak-%d" cfg.seed)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let generated =
    List.init 6 (fun i ->
        let seed = Rng.derive ~seed:cfg.seed i in
        let path = Filename.concat dir (Printf.sprintf "gen-%d.mc" i) in
        write_file_atomic path (Gen.source seed);
        path)
  in
  match cfg.corpus_dir with
  | None -> Ok (Array.of_list generated)
  | Some d -> (
    (* corpus entries are plain compilable Mini-C files — reference them
       in place; their repo paths are as stable as the seed directory *)
    match Corpus.load_dir d with
    | Error msg -> Error (Printf.sprintf "corpus %s: %s" d msg)
    | Ok entries ->
      let paths =
        List.map (fun (e : Corpus.entry) -> Filename.concat d (e.name ^ ".mc"))
          entries
      in
      Ok (Array.of_list (generated @ paths)))

(* --- request generation -------------------------------------------------- *)

let num i = Jsonv.Num (float_of_int i)

(* Each body carries a unique ["tag"] so every request has a distinct
   {!Protocol.digest} even when it reuses a pooled program: chaos
   decisions and quarantine entries then affect exactly the request they
   were rolled for. *)
let requests (cfg : config) programs =
  let rng = Rng.create cfg.seed in
  List.init cfg.count (fun i ->
      let id = i + 1 in
      let file = programs.(Rng.int rng (Array.length programs)) in
      let body =
        if Rng.int rng 100 < 60 then
          Jsonv.Obj
            [
              ("id", num id);
              ("verb", Jsonv.Str "analyze");
              ("file", Jsonv.Str file);
              ("top", num 4);
              ("tag", num id);
            ]
        else
          Jsonv.Obj
            [
              ("id", num id);
              ("verb", Jsonv.Str "partition");
              ("file", Jsonv.Str file);
              ("timing", num (Rng.range rng 50 400));
              ("tag", num id);
            ]
      in
      Jsonv.to_string body)

(* --- plumbing ------------------------------------------------------------ *)

let write_all fd s off len =
  let rec go off len =
    if len > 0 then
      match Unix.write_substring fd s off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

(* The feeder side of chaos: [slowloris] dribbles the request bytes a
   few at a time with a pause per chunk, exercising the server's
   buffered line reassembly. *)
let feed_line chaos fd line =
  let s = line ^ "\n" in
  let slow =
    match chaos with
    | Some spec -> Chaos.slowloris_ms spec ~key:line
    | None -> None
  in
  match slow with
  | None -> write_all fd s 0 (String.length s)
  | Some ms ->
    let n = String.length s in
    let rec go off =
      if off < n then begin
        let chunk = min 7 (n - off) in
        write_all fd s off chunk;
        if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.);
        go (off + chunk)
      end
    in
    go 0

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let no_stats =
  {
    Supervisor.respawns = 0;
    retries = 0;
    quarantines = 0;
    wedges = 0;
    crashes = 0;
    live_workers = 0;
    max_heartbeat_age_ms = 0;
  }

(* One in-process server session over a pipe pair: a feeder domain
   writes the request lines (with slow-loris interference when chaos
   says so), a collector domain gathers the response bytes, the session
   runs on the calling domain. *)
let run_server (cfg : config) ~supervised lines =
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let chaos = if supervised then cfg.chaos else None in
  let sconfig =
    {
      Server.jobs = cfg.jobs;
      max_queue = max 64 cfg.count;
      drain_timeout_ms = cfg.budget_ms;
      retry_after_ms = 100;
      faults = None;
      backend = None;
      default_deadline_ms = None;
      default_fuel = Some cfg.fuel;
      supervisor =
        (if supervised then
           Some
             {
               Supervisor.default_options with
               max_retries = cfg.max_retries;
               grace_ms = Some cfg.grace_ms;
               chaos;
             }
         else None);
    }
  in
  let drain = Drain.create ~drain_timeout_ms:cfg.budget_ms in
  let feeder =
    Domain.spawn (fun () ->
        List.iter (fun line -> feed_line chaos req_w line) lines;
        Unix.close req_w)
  in
  let collector = Domain.spawn (fun () -> read_all resp_r) in
  let stats = ref no_stats in
  Server.run_session ~on_stats:(fun s -> stats := s) sconfig drain req_r resp_w;
  Unix.close resp_w;
  Domain.join feeder;
  let out = Domain.join collector in
  Unix.close req_r;
  Unix.close resp_r;
  (out, !stats)

(* --- invariants ---------------------------------------------------------- *)

let response_lines out =
  String.split_on_char '\n' out |> List.filter (fun l -> String.trim l <> "")

let id_and_status line =
  match Jsonv.parse line with
  | Error _ -> (None, "unparseable")
  | Ok v ->
    let id = Option.bind (Jsonv.member "id" v) Jsonv.to_int in
    let status =
      match Jsonv.member "status" v with
      | Some (Jsonv.Str s) -> s
      | _ -> "missing-status"
    in
    (id, status)

let digest_of lines =
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare lines)))

let check (cfg : config) lines stats =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let n = List.length lines in
  if n <> cfg.count then
    fail "expected %d responses, got %d" cfg.count n;
  let seen = Hashtbl.create cfg.count in
  let duplicates = ref 0 in
  List.iter
    (fun line ->
      match id_and_status line with
      | Some id, _ ->
        if Hashtbl.mem seen id then begin
          incr duplicates;
          fail "duplicate response for id %d" id
        end
        else Hashtbl.replace seen id ()
      | None, status -> fail "response without id (status %s)" status)
    lines;
  let missing = ref 0 in
  for id = 1 to cfg.count do
    if not (Hashtbl.mem seen id) then begin
      incr missing;
      fail "no response for id %d" id
    end
  done;
  if stats.Supervisor.live_workers <> max 1 cfg.jobs then
    fail "pool ended with %d live workers, expected %d"
      stats.Supervisor.live_workers (max 1 cfg.jobs);
  (List.rev !failures, !duplicates, !missing)

let classes_of lines =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let _, status = id_and_status line in
      Hashtbl.replace tbl status (1 + Option.value ~default:0 (Hashtbl.find_opt tbl status)))
    lines;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

(* --- the campaign -------------------------------------------------------- *)

let run (cfg : config) =
  let cfg = { cfg with jobs = max 1 cfg.jobs; count = max 1 cfg.count } in
  match program_pool cfg with
  | Error _ as e -> e
  | Ok programs ->
    let lines = requests cfg programs in
    let started = Unix.gettimeofday () in
    let out, stats = run_server cfg ~supervised:true lines in
    let elapsed_ms =
      int_of_float ((Unix.gettimeofday () -. started) *. 1000.)
    in
    let resp = response_lines out in
    let failures, duplicates, missing = check cfg resp stats in
    let chaos_active =
      match cfg.chaos with Some s -> Chaos.active s | None -> false
    in
    let failures =
      if elapsed_ms > cfg.budget_ms then
        failures
        @ [ Printf.sprintf "budget exceeded: %d ms > %d ms" elapsed_ms cfg.budget_ms ]
      else failures
    in
    (* With chaos off, the supervised pool must be a pure refactoring of
       the plain pool: byte-identical responses (modulo completion
       order, which was never deterministic for jobs > 1). *)
    let baseline_match, failures =
      if chaos_active || not cfg.compare_baseline then (None, failures)
      else begin
        let base_out, _ = run_server cfg ~supervised:false lines in
        let base = response_lines base_out in
        if List.sort compare base = List.sort compare resp then
          (Some true, failures)
        else
          ( Some false,
            failures
            @ [ "chaos-free supervised output differs from the unsupervised \
                 baseline" ] )
      end
    in
    Ok
      {
        seed = cfg.seed;
        count = cfg.count;
        jobs = cfg.jobs;
        chaos_active;
        responses = List.length resp;
        missing;
        duplicates;
        classes = classes_of resp;
        stats;
        digest = digest_of resp;
        baseline_match;
        elapsed_ms;
        budget_ms = cfg.budget_ms;
        failures;
      }

let to_text r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "hypar soak: seed=%d count=%d jobs=%d chaos=%s\n" r.seed r.count r.jobs
    (if r.chaos_active then "on" else "off");
  add "  responses: %d/%d (%s)\n" r.responses r.count
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.classes));
  add "  supervisor: respawns=%d retries=%d quarantines=%d wedges=%d \
       crashes=%d workers=%d max-heartbeat-age-ms=%d\n"
    r.stats.Supervisor.respawns r.stats.Supervisor.retries
    r.stats.Supervisor.quarantines r.stats.Supervisor.wedges
    r.stats.Supervisor.crashes r.stats.Supervisor.live_workers
    r.stats.Supervisor.max_heartbeat_age_ms;
  add "  digest: %s\n" r.digest;
  (match r.baseline_match with
  | Some true -> add "  baseline: match\n"
  | Some false -> add "  baseline: MISMATCH\n"
  | None -> ());
  List.iter (fun f -> add "  failure: %s\n" f) r.failures;
  add "result: %s\n" (if passed r then "PASS" else "FAIL");
  Buffer.contents buf
