(** The JSON-lines wire protocol of [hypar serve].

    One request per input line, one response envelope per output line.
    A request is a JSON object with a mandatory string ["verb"], an
    optional integer ["id"] (echoed verbatim in the response) and
    verb-specific fields read by {!Worker}.

    {!parse_request} is total: byte soup, truncated JSON and non-object
    documents all come back as [Error] — the server answers with a
    [parse-error] envelope and keeps serving, never dies.

    Response envelopes, all single-line JSON objects with an ["id"]
    (integer or [null]) and a ["status"] discriminator:
    - [ok]: ["verb"] plus the verb's ["payload"] object;
    - [error]: ["kind"] (the exception constructor or a protocol error
      class) and a human-readable ["message"];
    - [overloaded]: the bounded queue refused admission —
      ["queue_depth"] and a ["retry_after_ms"] hint;
    - [deadline_exceeded]: the request ran out of wall-clock budget
      (["reason":"wall-clock"]) or of its typed interpreter fuel cap
      (["reason":"fuel-exhausted"] with ["steps"]);
    - [poisoned]: the request repeatedly killed worker domains and was
      quarantined by the supervisor — ["signature"] names the crash
      class and ["attempts"] how many executions were tried (0 when the
      digest was already quarantined on arrival). *)

type request = {
  id : int option;
  verb : string;
  body : Hypar_obs.Jsonv.t;  (** the whole request object *)
}

val parse_request : string -> (request, string) result

exception Bad_request of string
(** Raised by the field accessors below on missing/ill-typed fields;
    reported as an [error] envelope with kind ["bad-request"]. *)

val int_field : ?default:int -> Hypar_obs.Jsonv.t -> string -> int
val opt_int_field : Hypar_obs.Jsonv.t -> string -> int option
val bool_field : ?default:bool -> Hypar_obs.Jsonv.t -> string -> bool
val str_field : Hypar_obs.Jsonv.t -> string -> string
val opt_str_field : Hypar_obs.Jsonv.t -> string -> string option

type deadline_reason =
  | Wall_clock
  | Fuel of int  (** steps executed when the typed fuel cap fired *)

type response =
  | Done of { id : int option; verb : string; payload : string }
      (** [payload] is raw, pre-rendered JSON *)
  | Failed of { id : int option; kind : string; message : string }
  | Overloaded of { id : int option; depth : int; retry_after_ms : int }
  | Deadline_exceeded of { id : int option; reason : deadline_reason }
  | Poisoned of { id : int option; signature : string; attempts : int }

val render : response -> string
(** One line, no trailing newline. *)

val digest : request -> string
(** The id-independent identity of a request: an MD5 hex digest of the
    request object with the ["id"] member dropped.  Quarantine entries
    and chaos decisions are keyed by it, so they are stable across ids,
    [--jobs] values and server restarts. *)
