module Jsonv = Hypar_obs.Jsonv
module Flow = Hypar_core.Flow
module Platform = Hypar_core.Platform
module Engine = Hypar_core.Engine
module P = Protocol

type config = {
  faults : Hypar_resilience.Fault.spec option;
  backend : Hypar_profiling.Profile.backend option;
  default_deadline_ms : int option;
  default_fuel : int option;
  drain : Drain.t;
  queue_depth : unit -> int;
  on_poll : (unit -> unit) option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Mirrors the CLI loader: .ir files are deserialised, .hbc goes through
   the bytecode frontend, .mc through Mini-C — anything else is a typed
   failure envelope, not a parse error.  Every path profiles under the
   same poll hook and fuel cap so deadlines reach the interpreter. *)
let prepare ?backend ~poll ?max_steps path =
  let profile_of cdfg =
    let interp = Hypar_profiling.Profile.run ?backend ?max_steps ~poll cdfg in
    let profile = Hypar_profiling.Profile.of_result cdfg interp in
    { Flow.cdfg; profile; interp }
  in
  if Filename.check_suffix path ".ir" then
    profile_of (Hypar_ir.Serialize.of_string (read_file path))
  else if Filename.check_suffix path ".hbc" then
    profile_of
      (Hypar_bytecode.Driver.compile_exn ~name:(Filename.basename path)
         (read_file path))
  else if Filename.check_suffix path ".mc" then
    Flow.prepare ?backend ~name:(Filename.basename path) ?max_steps ~poll
      (read_file path)
  else
    raise
      (P.Bad_request
         (Printf.sprintf
            "%s: unsupported input (expected .mc Mini-C, .hbc bytecode or \
             .ir serialised CDFG)"
            path))

(* --- request budget ----------------------------------------------------- *)

let deadline_of config body =
  match
    match P.opt_int_field body "deadline_ms" with
    | Some _ as ms -> ms
    | None -> config.default_deadline_ms
  with
  | None -> Deadline.never
  | Some ms -> Deadline.after_ms ms

let fuel_of config body =
  match P.opt_int_field body "fuel" with
  | Some _ as f -> f
  | None -> config.default_fuel

(* The effective deadline is recomputed on every poll: a signal drain
   arriving mid-request tightens the budget of already-running work.
   [on_poll] is the supervisor's heartbeat: every poll proves the worker
   is making progress, which is what separates a slow request from a
   wedged one. *)
let poll_hook config deadline () =
  (match config.on_poll with Some beat -> beat () | None -> ());
  Deadline.check (Deadline.earliest deadline (Drain.cancel_deadline config.drain))

(* The wall-clock budget a request asked for, without starting the
   clock: the supervisor adds it to its wedge-detection threshold so a
   long-deadline request is not mistaken for a stuck one. *)
let request_deadline_ms config (req : P.request) =
  match P.opt_int_field req.P.body "deadline_ms" with
  | Some _ as ms -> ms
  | None -> config.default_deadline_ms
  | exception P.Bad_request _ -> config.default_deadline_ms

(* --- payload rendering -------------------------------------------------- *)

let num i = Jsonv.Num (float_of_int i)

let times_json (t : Engine.times) =
  Jsonv.Obj
    [
      ("t_fpga", num t.Engine.t_fpga);
      ("t_coarse_cgc", num t.Engine.t_coarse_cgc);
      ("t_coarse", num t.Engine.t_coarse);
      ("t_comm", num t.Engine.t_comm);
      ("t_total", num t.Engine.t_total);
    ]

let status_string = function
  | Engine.Met_without_partitioning -> "met-without-partitioning"
  | Engine.Met_after n -> Printf.sprintf "met-after-%d" n
  | Engine.Infeasible -> "infeasible"

let platform_of ~area ~cgcs ~rows ~cols ~ratio =
  Platform.make ~clock_ratio:ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area ())
    ~cgc:(Hypar_coarsegrain.Cgc.make ~cgcs ~rows ~cols ())
    ()

let degrade config platform =
  match config.faults with
  | None -> platform
  | Some spec -> (
    match Hypar_resilience.Degrade.apply spec platform with
    | Ok degraded -> degraded
    | Error msg ->
      raise (P.Bad_request (Printf.sprintf "fault spec does not apply: %s" msg)))

(* --- verbs -------------------------------------------------------------- *)

let partition config body =
  let file = P.str_field body "file" in
  let timing = P.int_field body "timing" in
  let area = P.int_field ~default:1500 body "area" in
  let cgcs = P.int_field ~default:2 body "cgcs" in
  let rows = P.int_field ~default:2 body "rows" in
  let cols = P.int_field ~default:2 body "cols" in
  let ratio = P.int_field ~default:3 body "clock_ratio" in
  let granularity = if P.bool_field body "loops" then `Loop else `Block in
  let pipelined = P.bool_field body "pipelined" in
  let deadline = deadline_of config body in
  let poll = poll_hook config deadline in
  let platform = degrade config (platform_of ~area ~cgcs ~rows ~cols ~ratio) in
  let prepared = prepare ?backend:config.backend ~poll ?max_steps:(fuel_of config body) file in
  poll ();
  let r =
    Engine.run ~granularity ~cgc_pipelining:pipelined platform
      ~timing_constraint:timing prepared.Flow.cdfg prepared.Flow.profile
  in
  poll ();
  Jsonv.to_string
    (Jsonv.Obj
       [
         ("file", Jsonv.Str (Filename.basename file));
         ("status", Jsonv.Str (status_string r.Engine.status));
         ("met", Jsonv.Bool (Engine.met r));
         ("timing_constraint", num timing);
         ("initial", times_json r.Engine.initial);
         ("final", times_json r.Engine.final);
         ("reduction_percent", Jsonv.Num (Engine.reduction_percent r));
         ("moved", Jsonv.Arr (List.map num r.Engine.moved));
         ("steps", num (List.length r.Engine.steps));
       ])

let analyze config body =
  let file = P.str_field body "file" in
  let top = P.int_field ~default:8 body "top" in
  let deadline = deadline_of config body in
  let poll = poll_hook config deadline in
  let prepared = prepare ?backend:config.backend ~poll ?max_steps:(fuel_of config body) file in
  poll ();
  let analysis =
    Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
  in
  let entry (e : Hypar_analysis.Kernel.entry) =
    Jsonv.Obj
      [
        ("block_id", num e.Hypar_analysis.Kernel.block_id);
        ("label", Jsonv.Str e.Hypar_analysis.Kernel.label);
        ("exec_freq", num e.Hypar_analysis.Kernel.exec_freq);
        ("bb_weight", num e.Hypar_analysis.Kernel.bb_weight);
        ("total_weight", num e.Hypar_analysis.Kernel.total_weight);
        ("loop_depth", num e.Hypar_analysis.Kernel.loop_depth);
      ]
  in
  Jsonv.to_string
    (Jsonv.Obj
       [
         ("file", Jsonv.Str (Filename.basename file));
         ( "kernels",
           Jsonv.Arr (List.map entry (Hypar_analysis.Kernel.top analysis top))
         );
       ])

let axis_field body name ~default =
  match Jsonv.member name body with
  | None -> default
  | Some (Jsonv.Str s) -> (
    match Hypar_explore.Space.axis_of_string s with
    | Ok axis -> axis
    | Error e -> raise (P.Bad_request (Printf.sprintf "field %S: %s" name e)))
  | Some v -> (
    match Jsonv.to_int v with
    | Some i -> [ i ]
    | None ->
      raise
        (P.Bad_request
           (Printf.sprintf "field %S must be an axis string or an integer" name)))

let explore config body =
  let module Driver = Hypar_explore.Driver in
  let file = P.str_field body "file" in
  let timings = axis_field body "timings" ~default:[] in
  if timings = [] then raise (P.Bad_request "missing axis field \"timings\"");
  let areas = axis_field body "areas" ~default:[ 500; 1500; 5000 ] in
  let cgcs = axis_field body "cgcs" ~default:[ 1; 2; 3 ] in
  let rows = axis_field body "rows" ~default:[ 2 ] in
  let cols = axis_field body "cols" ~default:[ 2 ] in
  let ratios = axis_field body "clock_ratios" ~default:[ 3 ] in
  let retries = P.int_field ~default:0 body "retries" in
  let pareto_only = P.bool_field body "pareto_only" in
  let fuel = fuel_of config body in
  let deadline = deadline_of config body in
  let poll = poll_hook config deadline in
  let prepared = prepare ?backend:config.backend ~poll ?max_steps:fuel file in
  poll ();
  let space =
    Hypar_explore.Space.make ~areas ~cgcs ~rows ~cols ~clock_ratios:ratios
      ~timings ()
  in
  match
    Driver.run ~workload:(Filename.basename file) ?faults:config.faults
      ~retries ?point_fuel:fuel prepared space
  with
  | Error msg -> raise (P.Bad_request msg)
  | Ok summary -> (
    poll ();
    (* Render.json is pretty-printed; envelopes are one line each, so
       re-render it compactly. *)
    let rendered = Hypar_explore.Render.json ~pareto_only summary in
    match Jsonv.parse rendered with
    | Ok v -> Jsonv.to_string v
    | Error _ -> rendered)

let faults body =
  let text =
    match P.opt_str_field body "text" with
    | Some text -> Hypar_resilience.Spec.of_string text
    | None -> Hypar_resilience.Spec.load (P.str_field body "file")
  in
  match text with
  | Error msg -> raise (P.Bad_request msg)
  | Ok spec ->
    Printf.sprintf {|{"spec":%s}|} (Hypar_resilience.Spec.to_json spec)

let dispatch config (req : P.request) =
  match req.P.verb with
  | "health" ->
    Drain.health_payload config.drain ~queue_depth:(config.queue_depth ())
  | "partition" -> partition config req.P.body
  | "analyze" -> analyze config req.P.body
  | "explore" -> explore config req.P.body
  | "faults" -> faults req.P.body
  | verb -> raise (P.Bad_request (Printf.sprintf "unknown verb %S" verb))

(* --- the isolation boundary --------------------------------------------- *)

let exn_kind = function
  | Hypar_ir.Verify.Failed _ -> "Verify.Failed"
  | Hypar_minic.Driver.Frontend_error _
  | Hypar_bytecode.Driver.Frontend_error _ ->
    "Frontend_error"
  | Hypar_profiling.Interp.Runtime_error _ -> "Runtime_error"
  | e -> Printexc.exn_slot_name e

let exn_message = function
  | Hypar_ir.Verify.Failed { context; violations } ->
    Printf.sprintf "IR verification failed after %S: %s" context
      (String.trim (Hypar_ir.Verify.report violations))
  | Hypar_minic.Driver.Frontend_error { name; err } ->
    Printf.sprintf "%s%d:%d: %s"
      (match name with Some n -> n ^ ":" | None -> "")
      err.Hypar_minic.Driver.line err.Hypar_minic.Driver.col
      err.Hypar_minic.Driver.msg
  | Hypar_bytecode.Driver.Frontend_error { name; err } ->
    Printf.sprintf "%s%d:%d: %s"
      (match name with Some n -> n ^ ":" | None -> "")
      err.Hypar_bytecode.Driver.line err.Hypar_bytecode.Driver.col
      err.Hypar_bytecode.Driver.msg
  | Hypar_profiling.Interp.Runtime_error msg -> msg
  | e -> Printexc.to_string e

let request_label = function
  | Some n -> string_of_int n
  | None -> "without id"

let envelope_of_exn id = function
  | Deadline.Expired -> P.Deadline_exceeded { id; reason = P.Wall_clock }
  | Hypar_profiling.Interp.Fuel_exhausted { steps } ->
    P.Deadline_exceeded { id; reason = P.Fuel steps }
  | P.Bad_request msg -> P.Failed { id; kind = "bad-request"; message = msg }
  | (Stack_overflow | Out_of_memory) as e ->
    (* resource-exhaustion crashes are a different severity class from a
       verb reporting a domain error: rank them as [crash:*] so clients
       and operators can tell a dying evaluation from a diagnostic, and
       name the request so the offender is identifiable in logs *)
    P.Failed
      {
        id;
        kind = "crash:" ^ Printexc.exn_slot_name e;
        message =
          Printf.sprintf "evaluation aborted by %s (request %s)"
            (Printexc.exn_slot_name e) (request_label id);
      }
  (* I/O failures inside a verb handler are environmental, not a bug in
     the request: rank them as [io:*] and name the request so operators
     can separate a missing input file from a malformed request *)
  | Sys_error msg ->
    P.Failed
      {
        id;
        kind = "io:Sys_error";
        message = Printf.sprintf "%s (request %s)" msg (request_label id);
      }
  | Unix.Unix_error (err, fn, arg) ->
    P.Failed
      {
        id;
        kind = "io:Unix_error";
        message =
          Printf.sprintf "%s%s: %s (request %s)" fn
            (if arg = "" then "" else " " ^ arg)
            (Unix.error_message err) (request_label id);
      }
  | e -> P.Failed { id; kind = exn_kind e; message = exn_message e }

let execute config (req : P.request) =
  let id = req.P.id in
  Hypar_obs.Span.with_ ~cat:"server"
    ~args:[ ("verb", Hypar_obs.Event.Str req.P.verb) ]
    "server.request"
  @@ fun () ->
  match dispatch config req with
  | payload -> P.Done { id; verb = req.P.verb; payload }
  | exception e -> envelope_of_exn id e
