(** Request execution: one verb in, one response envelope out, never an
    escaping exception.

    {!execute} is the isolation boundary: whatever a verb raises —
    frontend diagnostics, IR verification failures, interpreter runtime
    errors, [Sys_error] on a missing file, or anything else — is caught
    here and reported as a typed [error] envelope carrying the exception
    constructor, so one poisonous request can never take a worker (or
    the server) down.

    Deadlines are enforced two ways, matching the CLI's budget model:
    the wall-clock budget ([deadline_ms], default from the config) via a
    cooperative poll hook threaded into the profiling interpreter
    ({!Hypar_profiling.Interp.run}'s [?poll]), and the typed fuel cap
    ([fuel]) via {!Hypar_profiling.Interp.Fuel_exhausted}.  A
    signal-initiated drain folds its cancellation deadline into every
    in-flight request's budget ({!Drain.cancel_deadline}).

    Verbs: [partition], [analyze], [explore], [faults], [health] — see
    [docs/server.md] for their request fields and payloads. *)

type config = {
  faults : Hypar_resilience.Fault.spec option;
      (** degrade the platform for [partition]/[explore], as [--faults] *)
  backend : Hypar_profiling.Profile.backend option;
      (** profiling interpreter backend; [None] defers to
          {!Hypar_profiling.Profile.backend_of_env} ([HYPAR_INTERP]) *)
  default_deadline_ms : int option;
  default_fuel : int option;
  drain : Drain.t;
  queue_depth : unit -> int;  (** sampled by the [health] verb *)
  on_poll : (unit -> unit) option;
      (** supervision heartbeat, invoked on every cooperative poll;
          [None] outside a supervised pool *)
}

val execute : config -> Protocol.request -> Protocol.response
(** Total: never raises. *)

val request_deadline_ms : config -> Protocol.request -> int option
(** The wall-clock budget the request asked for ([deadline_ms], falling
    back to the config default), without starting it: the supervisor
    folds it into its wedge-detection threshold. *)

val envelope_of_exn : int option -> exn -> Protocol.response
(** The envelope {!execute} produces when a verb raises, keyed by the
    request id: deadline and fuel exceptions become typed
    [deadline_exceeded] envelopes, [Bad_request] becomes a
    [bad-request] failure, resource exhaustion ([Stack_overflow],
    [Out_of_memory]) is ranked as a [crash:*] failure naming the
    request, and I/O failures ([Sys_error], [Unix.Unix_error]) as
    [io:*] failures naming the request — not swallowed into the
    generic error shape.  Exposed so the rankings are testable without
    actually exhausting the stack inside the test runner. *)
