module Jsonv = Hypar_obs.Jsonv

type request = { id : int option; verb : string; body : Jsonv.t }

exception Bad_request of string

let () =
  Printexc.register_printer (function
    | Bad_request msg -> Some (Printf.sprintf "Bad_request(%S)" msg)
    | _ -> None)

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let parse_request line =
  match Jsonv.parse line with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok (Jsonv.Obj _ as body) -> (
    let id_ok =
      match Jsonv.member "id" body with
      | None | Some Jsonv.Null -> Ok None
      | Some v -> (
        match Jsonv.to_int v with
        | Some i -> Ok (Some i)
        | None -> Error "\"id\" must be an integer")
    in
    match id_ok with
    | Error _ as e -> e |> Result.map_error Fun.id
    | Ok id -> (
      match Jsonv.member "verb" body with
      | Some (Jsonv.Str verb) -> Ok { id; verb; body }
      | Some _ -> Error "\"verb\" must be a string"
      | None -> Error "missing \"verb\""))
  | Ok _ -> Error "request is not a JSON object"

(* --- typed field accessors (raise Bad_request) -------------------------- *)

let int_field ?default body name =
  match Jsonv.member name body with
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing integer field %S" name)
  | Some v -> (
    match Jsonv.to_int v with
    | Some i -> i
    | None -> bad "field %S must be an integer" name)

let opt_int_field body name =
  match Jsonv.member name body with
  | None | Some Jsonv.Null -> None
  | Some v -> (
    match Jsonv.to_int v with
    | Some i -> Some i
    | None -> bad "field %S must be an integer" name)

let bool_field ?(default = false) body name =
  match Jsonv.member name body with
  | None -> default
  | Some v -> (
    match Jsonv.to_bool v with
    | Some b -> b
    | None -> bad "field %S must be a boolean" name)

let opt_str_field body name =
  match Jsonv.member name body with
  | None | Some Jsonv.Null -> None
  | Some v -> (
    match Jsonv.to_str v with
    | Some s -> Some s
    | None -> bad "field %S must be a string" name)

let str_field body name =
  match opt_str_field body name with
  | Some s -> s
  | None -> bad "missing string field %S" name

(* --- response envelopes ------------------------------------------------- *)

type deadline_reason = Wall_clock | Fuel of int

type response =
  | Done of { id : int option; verb : string; payload : string }
  | Failed of { id : int option; kind : string; message : string }
  | Overloaded of { id : int option; depth : int; retry_after_ms : int }
  | Deadline_exceeded of { id : int option; reason : deadline_reason }
  | Poisoned of { id : int option; signature : string; attempts : int }

let id_json = function None -> "null" | Some i -> string_of_int i

let render = function
  | Done { id; verb; payload } ->
    Printf.sprintf {|{"id":%s,"status":"ok","verb":"%s","payload":%s}|}
      (id_json id) (Jsonv.escape verb) payload
  | Failed { id; kind; message } ->
    Printf.sprintf {|{"id":%s,"status":"error","kind":"%s","message":"%s"}|}
      (id_json id) (Jsonv.escape kind) (Jsonv.escape message)
  | Overloaded { id; depth; retry_after_ms } ->
    Printf.sprintf
      {|{"id":%s,"status":"overloaded","queue_depth":%d,"retry_after_ms":%d}|}
      (id_json id) depth retry_after_ms
  | Deadline_exceeded { id; reason = Wall_clock } ->
    Printf.sprintf
      {|{"id":%s,"status":"deadline_exceeded","reason":"wall-clock"}|}
      (id_json id)
  | Deadline_exceeded { id; reason = Fuel steps } ->
    Printf.sprintf
      {|{"id":%s,"status":"deadline_exceeded","reason":"fuel-exhausted","steps":%d}|}
      (id_json id) steps
  | Poisoned { id; signature; attempts } ->
    Printf.sprintf
      {|{"id":%s,"status":"poisoned","signature":"%s","attempts":%d}|}
      (id_json id) (Jsonv.escape signature) attempts

(* The id-independent identity of a request: the digest of its rendered
   body with the "id" member removed.  Retrying a poisonous request
   under a fresh id hits the same quarantine entry, and chaos decisions
   keyed by it are reproducible across [--jobs] and across restarts. *)
let digest (req : request) =
  let body =
    match req.body with
    | Jsonv.Obj fields ->
      Jsonv.Obj (List.filter (fun (k, _) -> k <> "id") fields)
    | v -> v
  in
  Digest.to_hex (Digest.string (Jsonv.to_string body))
