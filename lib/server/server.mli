(** The serving loop: JSON-lines requests in, envelopes out, with
    admission control, a worker-domain pool and graceful drain.

    Pipe mode ({!run_pipe}) reads stdin and writes stdout; socket mode
    ({!run_socket}) binds a Unix-domain socket and serves connections
    one at a time, each as its own session.  Both install SIGINT/SIGTERM
    handlers that request a signal drain: the reader stops accepting,
    queued work finishes or is cancelled against the drain timeout
    (cooperatively, through every request's deadline), a final stats
    line goes to stderr and the process exits 0.

    With [jobs = 1] requests execute inline in the read loop, so
    response order equals request order — the mode cram tests rely on.
    With [jobs > 1] well-formed requests go through the bounded queue to
    a {!Pool.fork}ed domain pool; when the queue is full the request is
    refused with a typed [overloaded] envelope instead of queueing
    without bound.  Worker trace events are captured per request
    ({!Hypar_obs.Sink.collect}) and replayed in request order at session
    end, so merged traces and counter totals are independent of [jobs].

    With [supervisor = Some opts] the pool is owned by {!Supervisor}
    instead: worker crashes and wedges are healed, failing requests are
    retried and ultimately quarantined, and chaos faults from
    [opts.chaos] are injected — see {!Supervisor} and {!Chaos}. *)

type config = {
  jobs : int;
  max_queue : int;
  drain_timeout_ms : int;
  retry_after_ms : int;
      (** base of the [overloaded] envelope's retry hint (the CLI
          default is 100); scaled by queue depth via
          {!retry_after_hint} *)
  faults : Hypar_resilience.Fault.spec option;
  backend : Hypar_profiling.Profile.backend option;
      (** profiling backend override; [None] honours [HYPAR_INTERP] *)
  default_deadline_ms : int option;
  default_fuel : int option;
  supervisor : Supervisor.options option;
      (** [Some] serves through the self-healing supervised pool *)
}

val retry_after_hint : base:int -> jobs:int -> depth:int -> int
(** Load-aware backoff hint: [base * ceil(depth / jobs)].  A queue one
    pool-width deep clears in about one service interval, so the hint
    grows linearly with how many such intervals are already queued. *)

val run_session :
  ?drain_on_eof:bool ->
  ?execute:(Worker.config -> Protocol.request -> Protocol.response) ->
  ?on_stats:(Supervisor.stats -> unit) ->
  config ->
  Drain.t ->
  Unix.file_descr ->
  Unix.file_descr ->
  unit
(** One session over a descriptor pair.  [drain_on_eof] (default [true])
    requests an [Eof] drain when input ends — socket connections pass
    [false] so a disconnecting client does not stop the server.
    [execute] (default {!Worker.execute}) is a test seam for injecting
    deterministic or blocking workloads.  [on_stats] observes the
    supervisor's final statistics (supervised sessions only). *)

val supervisor_line : Supervisor.stats -> string
(** The one-line stderr summary of a supervised session. *)

val run_pipe : config -> int
(** Serve stdin/stdout until EOF or a signal; returns the exit code
    (always 0 — per-request failures are envelopes, not exits). *)

val run_socket : config -> string -> int
(** Serve a Unix-domain socket at the given path until a signal.
    Returns 2 when the path already exists or cannot be bound, else 0;
    the socket file is removed on the way out. *)
