type fault =
  | Crash of int
  | Crash_on of int
  | Wedge of { percent : int; ms : int }
  | Wedge_on of { seq : int; ms : int }
  | Delay of { percent : int; min_ms : int; max_ms : int }
  | Drop of int
  | Truncate of int
  | Slowloris of { percent : int; ms : int }

type spec = { seed : int; faults : fault list }

let none = { seed = 0; faults = [] }

let active spec = spec.faults <> []

(* A moderate everything-at-once mix for soak campaigns.  The wedge
   stall (5 s) deliberately dwarfs the soak harness's default grace
   (2 s) so wedge detection wins the race deterministically — and the
   grace in turn dwarfs the longest legitimate poll gap (the
   partitioning engine can run for several hundred ms between polls). *)
let default =
  {
    seed = 0;
    faults =
      [
        Crash 5;
        Wedge { percent = 3; ms = 5000 };
        Delay { percent = 10; min_ms = 1; max_ms = 5 };
        Drop 5;
        Truncate 5;
        Slowloris { percent = 5; ms = 1 };
      ];
  }

(* --- seeded decisions ---------------------------------------------------- *)

(* FNV-1a over (seed, fault kind, request key, attempt) — the same
   deterministic-transient idiom as Fault.Transient.  Decisions are keyed
   by the request digest, never by worker id or arrival order, so a
   chaos campaign makes the same choices for every [--jobs] value. *)
let hash spec ~kind ~key ~salt =
  let h = ref 0x811c9dc5 in
  let mix byte = h := (!h lxor byte) * 0x01000193 land 0x3FFFFFFF in
  let mix_int n =
    mix (n land 0xff);
    mix ((n lsr 8) land 0xff);
    mix ((n lsr 16) land 0xff);
    mix ((n lsr 24) land 0xff)
  in
  mix_int spec.seed;
  String.iter (fun c -> mix (Char.code c)) kind;
  mix 0x2f;
  String.iter (fun c -> mix (Char.code c)) key;
  mix 0x2f;
  mix_int salt;
  !h

let roll spec ~kind ~key ~salt ~percent =
  percent > 0
  && (percent >= 100 || hash spec ~kind ~key ~salt mod 100 < percent)

let crashes spec ~seq ~key ~attempt =
  List.exists
    (function
      | Crash percent -> roll spec ~kind:"crash" ~key ~salt:attempt ~percent
      | Crash_on n -> seq = n && attempt = 1
      | _ -> false)
    spec.faults

let wedge_ms spec ~seq ~key ~attempt =
  List.fold_left
    (fun acc fault ->
      match (acc, fault) with
      | Some _, _ -> acc
      | None, Wedge { percent; ms } ->
        if roll spec ~kind:"wedge" ~key ~salt:attempt ~percent then Some ms
        else None
      | None, Wedge_on { seq = n; ms } ->
        if seq = n && attempt = 1 then Some ms else None
      | None, _ -> None)
    None spec.faults

let delay_ms spec ~key ~attempt =
  List.fold_left
    (fun acc fault ->
      match (acc, fault) with
      | Some _, _ -> acc
      | None, Delay { percent; min_ms; max_ms } ->
        if roll spec ~kind:"delay" ~key ~salt:attempt ~percent then
          let span = max 0 (max_ms - min_ms) in
          let extra =
            if span = 0 then 0
            else hash spec ~kind:"delay-ms" ~key ~salt:attempt mod (span + 1)
          in
          Some (min_ms + extra)
        else None
      | None, _ -> None)
    None spec.faults

let drop_write spec ~key =
  List.exists
    (function
      | Drop percent -> roll spec ~kind:"drop" ~key ~salt:0 ~percent
      | _ -> false)
    spec.faults

let truncate_write spec ~key =
  List.exists
    (function
      | Truncate percent -> roll spec ~kind:"truncate" ~key ~salt:0 ~percent
      | _ -> false)
    spec.faults

let slowloris_ms spec ~key =
  List.fold_left
    (fun acc fault ->
      match (acc, fault) with
      | Some _, _ -> acc
      | None, Slowloris { percent; ms } ->
        if roll spec ~kind:"slowloris" ~key ~salt:0 ~percent then Some ms
        else None
      | None, _ -> None)
    None spec.faults

(* --- parse / print ------------------------------------------------------- *)

let syntax_help =
  "chaos spec syntax (one directive per line, '#' starts a comment):\n\
  \  seed N                deterministic seed for every probabilistic choice\n\
  \  crash P%              crash the worker before P% of request attempts\n\
  \  crash-on SEQ          crash the first attempt of request number SEQ\n\
  \  wedge P% MS           stall P% of attempts for MS ms without heartbeats\n\
  \  wedge-on SEQ MS       stall the first attempt of request SEQ for MS ms\n\
  \  delay P% MS           delay P% of attempts by MS ms (heartbeats continue)\n\
  \  delay P% MIN..MAX     like delay, with a seeded duration in [MIN,MAX]\n\
  \  drop P%               void the first write attempt of P% of responses\n\
  \  truncate P%           cut the first write of P% of responses short\n\
  \  slowloris P% MS       dribble P% of soak request writes, MS ms per chunk"

let fault_string = function
  | Crash p -> Printf.sprintf "crash %d%%" p
  | Crash_on seq -> Printf.sprintf "crash-on %d" seq
  | Wedge { percent; ms } -> Printf.sprintf "wedge %d%% %d" percent ms
  | Wedge_on { seq; ms } -> Printf.sprintf "wedge-on %d %d" seq ms
  | Delay { percent; min_ms; max_ms } ->
    if min_ms = max_ms then Printf.sprintf "delay %d%% %d" percent min_ms
    else Printf.sprintf "delay %d%% %d..%d" percent min_ms max_ms
  | Drop p -> Printf.sprintf "drop %d%%" p
  | Truncate p -> Printf.sprintf "truncate %d%%" p
  | Slowloris { percent; ms } -> Printf.sprintf "slowloris %d%% %d" percent ms

let to_text spec =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "seed %d\n" spec.seed);
  List.iter
    (fun f -> Buffer.add_string buf (fault_string f ^ "\n"))
    spec.faults;
  Buffer.contents buf

let error line fmt =
  Format.kasprintf (fun msg -> Error (Printf.sprintf "line %d: %s" line msg)) fmt

let ( let* ) = Result.bind

let nat_arg line what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some n -> error line "%s: must be non-negative, got %d" what n
  | None -> error line "%s: expected an integer, got %S" what s

let percent_arg line what s =
  if String.length s < 2 || s.[String.length s - 1] <> '%' then
    error line "%s: expected a percentage like 5%%, got %S" what s
  else
    let* p = nat_arg line what (String.sub s 0 (String.length s - 1)) in
    if p > 100 then error line "%s: percentage must be <= 100" what else Ok p

(* "MS" or "MIN..MAX" *)
let span_arg line what s =
  match String.index_opt s '.' with
  | None ->
    let* ms = nat_arg line what s in
    Ok (ms, ms)
  | Some i ->
    if i + 1 >= String.length s || s.[i + 1] <> '.' then
      error line "%s: expected MS or MIN..MAX, got %S" what s
    else
      let* lo = nat_arg line what (String.sub s 0 i) in
      let* hi =
        nat_arg line what (String.sub s (i + 2) (String.length s - i - 2))
      in
      if lo > hi then error line "%s: empty range %d..%d" what lo hi
      else Ok (lo, hi)

let parse_fault line words =
  match words with
  | [ "crash"; p ] ->
    let* p = percent_arg line "crash" p in
    Ok (Crash p)
  | "crash" :: _ -> error line "crash takes exactly one percentage"
  | [ "crash-on"; seq ] ->
    let* seq = nat_arg line "crash-on" seq in
    Ok (Crash_on seq)
  | "crash-on" :: _ -> error line "crash-on takes exactly one request number"
  | [ "wedge"; p; ms ] ->
    let* percent = percent_arg line "wedge" p in
    let* ms = nat_arg line "wedge duration" ms in
    Ok (Wedge { percent; ms })
  | "wedge" :: _ -> error line "wedge needs PERCENT MS"
  | [ "wedge-on"; seq; ms ] ->
    let* seq = nat_arg line "wedge-on" seq in
    let* ms = nat_arg line "wedge-on duration" ms in
    Ok (Wedge_on { seq; ms })
  | "wedge-on" :: _ -> error line "wedge-on needs SEQ MS"
  | [ "delay"; p; span ] ->
    let* percent = percent_arg line "delay" p in
    let* min_ms, max_ms = span_arg line "delay duration" span in
    Ok (Delay { percent; min_ms; max_ms })
  | "delay" :: _ -> error line "delay needs PERCENT MS|MIN..MAX"
  | [ "drop"; p ] ->
    let* p = percent_arg line "drop" p in
    Ok (Drop p)
  | "drop" :: _ -> error line "drop takes exactly one percentage"
  | [ "truncate"; p ] ->
    let* p = percent_arg line "truncate" p in
    Ok (Truncate p)
  | "truncate" :: _ -> error line "truncate takes exactly one percentage"
  | [ "slowloris"; p; ms ] ->
    let* percent = percent_arg line "slowloris" p in
    let* ms = nat_arg line "slowloris pause" ms in
    Ok (Slowloris { percent; ms })
  | "slowloris" :: _ -> error line "slowloris needs PERCENT MS"
  | directive :: _ -> error line "unknown directive %S" directive
  | [] -> assert false

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let words_of s =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno seed faults = function
    | [] -> Ok { seed; faults = List.rev faults }
    | raw :: rest -> (
      match words_of (strip_comment raw) with
      | [] -> go (lineno + 1) seed faults rest
      | [ "seed"; n ] ->
        let* n = nat_arg lineno "seed" n in
        go (lineno + 1) n faults rest
      | "seed" :: _ -> error lineno "seed takes exactly one argument"
      | words ->
        let* f = parse_fault lineno words in
        go (lineno + 1) seed (f :: faults) rest)
  in
  go 1 0 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match of_string text with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* The CLI's --chaos argument: a built-in name or a spec file. *)
let of_arg = function
  | "none" | "off" -> Ok None
  | "default" -> Ok (Some default)
  | path -> Result.map Option.some (load path)
