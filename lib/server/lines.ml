type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet returned *)
  chunk : Bytes.t;
  mutable eof : bool;
}

let create fd =
  { fd; buf = Buffer.create 256; chunk = Bytes.create 4096; eof = false }

type item = Line of string | Eof | Stopped

(* Extract the first complete line from [t.buf], if any. *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    let line = if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
               else String.sub s 0 i in
    Some line

let rec select_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_readable fd 0.

let rec read_once t =
  match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> t.eof <- true
  | n -> Buffer.add_subbytes t.buf t.chunk 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once t

let rec next ?(poll_interval = 0.1) ~stop t =
  match take_line t with
  | Some line -> Line line
  | None ->
    if t.eof then
      if Buffer.length t.buf > 0 then begin
        let line = Buffer.contents t.buf in
        Buffer.clear t.buf;
        Line line
      end
      else Eof
    else if stop () then Stopped
    else begin
      if select_readable t.fd poll_interval then read_once t;
      next ~poll_interval ~stop t
    end
