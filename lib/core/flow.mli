(** One-call driver for the whole prototype framework: Mini-C source in,
    partitioning result out (the paper's "prototype software framework"). *)

type prepared = {
  cdfg : Hypar_ir.Cdfg.t;
  profile : Hypar_profiling.Profile.t;
  interp : Hypar_profiling.Interp.result;
}

val prepare :
  ?backend:Hypar_profiling.Profile.backend ->
  ?name:string ->
  ?simplify:bool ->
  ?verify_ir:bool ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  string ->
  prepared
(** Compiles the source (frontend + clean-up passes) and profiles it on
    the given inputs. Raises {!Hypar_minic.Driver.Frontend_error} on
    frontend errors and {!Hypar_profiling.Interp.Runtime_error} on
    execution errors.  [backend] selects the profiling execution backend
    (default {!Hypar_profiling.Profile.backend_of_env}: compiled, unless
    [HYPAR_INTERP=tree]).  [max_steps] bounds the profiling interpreter
    (default unlimited), raising
    {!Hypar_profiling.Interp.Fuel_exhausted} when exceeded; [poll] is
    the interpreter's cooperative cancellation hook (see
    {!Hypar_profiling.Interp.run}).
    [verify_ir] (default {!Hypar_ir.Passes.verify_passes}) checks the IR
    at every pass boundary, raising {!Hypar_ir.Verify.Failed}. *)

val partition :
  ?weights:Hypar_analysis.Weights.t ->
  Platform.t ->
  timing_constraint:int ->
  prepared ->
  Engine.t
(** The Figure 2 flow on a prepared application. *)

val partition_source :
  ?name:string ->
  ?inputs:(string * int array) list ->
  ?weights:Hypar_analysis.Weights.t ->
  Platform.t ->
  timing_constraint:int ->
  string ->
  Engine.t
(** [prepare] + [partition]. *)
