module Kernel = Hypar_analysis.Kernel

let markdown ?(top_kernels = 8) (r : Engine.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# Partitioning report — %s" r.Engine.cdfg_name;
  line "";
  line "- platform: %s" r.Engine.platform.Platform.name;
  line "- clock ratio: T_FPGA = %d x T_CGC" r.Engine.platform.Platform.clock_ratio;
  line "- timing constraint: %d FPGA cycles" r.Engine.timing_constraint;
  line "- status: %s"
    (match r.Engine.status with
    | Engine.Met_without_partitioning -> "met by the all-FPGA mapping"
    | Engine.Met_after k -> Printf.sprintf "met after %d kernel movement(s)" k
    | Engine.Infeasible -> "infeasible (all kernels moved)");
  line "- cycle reduction: %.1f%%" (Engine.reduction_percent r);
  line "";
  line "## Kernel analysis (Eq. 1)";
  line "";
  line "| BB | exec. freq | op weight | total weight |";
  line "|---:|-----------:|----------:|-------------:|";
  List.iter
    (fun (e : Kernel.entry) ->
      line "| %d | %d | %d | %d |" e.block_id e.exec_freq e.bb_weight
        e.total_weight)
    (Kernel.top r.Engine.analysis top_kernels);
  line "";
  line "## Engine trace (Eq. 2 after each movement)";
  line "";
  line "| step | moved BB | t_FPGA | t_coarse (CGC cyc) | t_comm | t_total | met |";
  line "|-----:|---------:|-------:|-------------------:|-------:|--------:|:---:|";
  line "| 0 | — | %d | %d (%d) | %d | %d | %s |" r.Engine.initial.Engine.t_fpga
    r.Engine.initial.Engine.t_coarse r.Engine.initial.Engine.t_coarse_cgc
    r.Engine.initial.Engine.t_comm r.Engine.initial.Engine.t_total
    (if r.Engine.initial.Engine.t_total <= r.Engine.timing_constraint then "yes"
     else "no");
  List.iter
    (fun (s : Engine.step) ->
      line "| %d | %d | %d | %d (%d) | %d | %d | %s |" s.Engine.step_index
        s.Engine.moved_block s.Engine.times.Engine.t_fpga
        s.Engine.times.Engine.t_coarse s.Engine.times.Engine.t_coarse_cgc
        s.Engine.times.Engine.t_comm s.Engine.times.Engine.t_total
        (if s.Engine.meets_constraint then "yes" else "no"))
    r.Engine.steps;
  (match r.Engine.skipped with
  | [] -> ()
  | skipped ->
    line "";
    line "Skipped kernels:";
    List.iter
      (fun (b, reason) ->
        line "- BB%d: %s" b (Engine.skip_reason_string reason))
      skipped);
  line "";
  line "## Final assignment";
  line "";
  line "| BB | side | freq | cycles/iteration | total cycles |";
  line "|---:|:----:|-----:|-----------------:|-------------:|";
  Array.iteri
    (fun i freq ->
      if freq > 0 then begin
        let moved = List.mem i r.Engine.moved in
        let per_iter =
          if moved then
            match r.Engine.coarse_latency.(i) with
            | Some lat -> Platform.cgc_to_fpga_cycles r.Engine.platform lat
            | None -> 0
          else r.Engine.fine_cycles_per_iter.(i)
        in
        line "| %d | %s | %d | %d | %d |" i
          (if moved then "CGC" else "FPGA")
          freq per_iter (per_iter * freq)
      end)
    r.Engine.freq;
  Buffer.contents buf
