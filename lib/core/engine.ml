module Ir = Hypar_ir
module Analysis = Hypar_analysis
module Profiling = Hypar_profiling
module Finegrain = Hypar_finegrain
module Coarsegrain = Hypar_coarsegrain

type times = {
  t_fpga : int;
  t_coarse_cgc : int;
  t_coarse : int;
  t_comm : int;
  t_total : int;
}

type step = {
  step_index : int;
  moved_block : int;
  kernel : Analysis.Kernel.entry;
  on_cgc : int list;
  times : times;
  meets_constraint : bool;
}

type status = Met_without_partitioning | Met_after of int | Infeasible

type skip_reason = Not_cgc_executable | No_cgc_capacity

let skip_reason_string = function
  | Not_cgc_executable -> "not CGC-executable (division)"
  | No_cgc_capacity -> "no live CGC capacity (degraded data-path)"

type t = {
  platform : Platform.t;
  timing_constraint : int;
  cdfg_name : string;
  initial : times;
  analysis : Analysis.Kernel.t;
  steps : step list;
  skipped : (int * skip_reason) list;
  status : status;
  final : times;
  moved : int list;
  fine_cycles_per_iter : int array;
  coarse_latency : int option array;
  comm_cycles_per_iter : int array;
  freq : int array;
}

let times_of platform ~pricing ~fine ~coarse ~pipeline ~entries ~comm ~live
    ~edges ~freq ~moved n =
  let is_moved = Array.make n false in
  List.iter (fun i -> is_moved.(i) <- true) moved;
  let t_fpga = ref 0 and t_coarse_cgc = ref 0 in
  for i = 0 to n - 1 do
    if freq.(i) > 0 then
      if is_moved.(i) then
        match (coarse.(i), pipeline.(i)) with
        | _, Some (ii, lat) ->
          (* software-pipelined kernel: each loop entry pays the full
             latency once, every further iteration only the II *)
          let starts = max 1 (min entries.(i) freq.(i)) in
          t_coarse_cgc :=
            !t_coarse_cgc + ((freq.(i) - starts) * ii) + (starts * lat)
        | Some lat, None -> t_coarse_cgc := !t_coarse_cgc + (lat * freq.(i))
        | None, None -> invalid_arg "Engine: moved an unmappable block"
      else t_fpga := !t_fpga + (fine.(i) * freq.(i))
  done;
  let t_comm =
    match pricing with
    | `Transition ->
      Comm.transition_cycles platform.Platform.comm live ~edges
        ~on_cgc:(fun i -> is_moved.(i))
    | `Per_invocation ->
      List.fold_left (fun acc i -> acc + (comm.(i) * freq.(i))) 0 moved
  in
  let t_coarse = Platform.cgc_to_fpga_cycles platform !t_coarse_cgc in
  {
    t_fpga = !t_fpga;
    t_coarse_cgc = !t_coarse_cgc;
    t_coarse;
    t_comm;
    t_total = !t_fpga + t_coarse + t_comm;
  }

exception
  Delta_mismatch of {
    moved : int list;
    field : string;
    full : int;
    incremental : int;
  }

let () =
  Printexc.register_printer (function
    | Delta_mismatch { moved; field; full; incremental } ->
      Some
        (Printf.sprintf
           "Delta_mismatch(%s: full=%d incremental=%d, moved=[%s])" field full
           incremental
           (String.concat ";" (List.map string_of_int moved)))
    | _ -> None)

let check_incremental =
  ref
    (match Sys.getenv_opt "HYPAR_ENGINE_CHECK" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let characterise ?(cgc_pipelining = false) (platform : Platform.t) cdfg profile
    =
  Hypar_obs.Span.with_ ~cat:"engine" "engine.characterise" @@ fun () ->
  let n = Ir.Cdfg.block_count cdfg in
  let freq = Array.init n (fun i -> Profiling.Profile.freq profile i) in
  let fine =
    Array.init n (fun i ->
        (Finegrain.Fine_map.map_block platform.Platform.fpga cdfg i)
          .Finegrain.Fine_map.cycles_per_iteration)
  in
  let health = platform.Platform.cgc_health in
  let coarse =
    Array.init n (fun i ->
        Option.map
          (fun (m : Coarsegrain.Coarse_map.block_mapping) ->
            m.Coarsegrain.Coarse_map.latency)
          (Coarsegrain.Coarse_map.map_block ?health platform.Platform.cgc cdfg
             i))
  in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let cfg = Ir.Cdfg.cfg cdfg in
  (* pipelining applies to self-looping kernels only; on a degraded
     data-path the modulo scheduler would over-claim dead resources, so
     moved kernels conservatively fall back to non-pipelined pricing *)
  let pipeline =
    Array.init n (fun i ->
        if (not cgc_pipelining) || Platform.degraded platform then None
        else if not (List.mem i (Ir.Cfg.successors cfg i)) then None
        else
          match
            Coarsegrain.Modulo.analyse platform.Platform.cgc
              (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg
              ~carried:(Ir.Live.live_in live i)
          with
          | Some m -> Some (m.Coarsegrain.Modulo.ii, m.Coarsegrain.Modulo.latency)
          | None -> None)
  in
  let entries = Array.make n 0 in
  List.iter
    (fun (((src, dst), c) : (int * int) * int) ->
      if src <> dst then entries.(dst) <- entries.(dst) + c)
    profile.Profiling.Profile.edges;
  let comm =
    Array.init n (fun i -> Comm.block_cycles platform.Platform.comm live i)
  in
  let edges = profile.Profiling.Profile.edges in
  (freq, fine, coarse, pipeline, entries, comm, live, edges)

let evaluate ?(comm_pricing = `Transition) ?cgc_pipelining
    (platform : Platform.t) cdfg profile =
  let freq, fine, coarse, pipeline, entries, comm, live, edges =
    characterise ?cgc_pipelining platform cdfg profile
  in
  let n = Ir.Cdfg.block_count cdfg in
  fun moved ->
    times_of platform ~pricing:comm_pricing ~fine ~coarse ~pipeline ~entries
      ~comm ~live ~edges ~freq ~moved n

(* Incremental recharacterisation: [times_of] walks every block and every
   profile edge on each call; over a whole greedy trajectory that is
   O(moves * (blocks + edges)).  [Inc] keeps the running sums and updates
   them per move in O(degree of the moved block): the moved block's own
   fine/coarse contribution flips sides, and only its incident CFG edges
   can change boundary state.  The invariants the delta update relies on:

   - a block's fine and coarse prices are independent of the moved set;
   - [`Transition] comm prices are per-edge and depend only on whether
     the edge crosses the partition boundary and in which direction;
   - [`Per_invocation] comm prices are per-block and additive;
   - self edges never cross the boundary, so they are dropped up front.

   With [check_incremental] set (or HYPAR_ENGINE_CHECK=1), every [times]
   read is cross-checked against the full [times_of] recompute and a
   mismatch raises {!Delta_mismatch}. *)
module Inc = struct
  type t = {
    platform : Platform.t;
    pricing : [ `Transition | `Per_invocation ];
    n : int;
    freq : int array;
    fine : int array;
    coarse : int option array;
    pipeline : (int * int) option array;
    entries : int array;
    comm : int array;
    live : Ir.Live.t;
    edges : ((int * int) * int) list;
    (* inter-block profile edges, flattened, with both boundary prices
       precomputed (count * words_cost of the crossing direction) *)
    edge_src : int array;
    edge_dst : int array;
    edge_cost_dst_cgc : int array;
    edge_cost_src_cgc : int array;
    incident : int list array;  (* block -> incident inter-block edges *)
    is_moved : bool array;
    mutable moved_rev : int list;
    mutable t_fpga : int;
    mutable t_coarse_cgc : int;
    mutable t_comm : int;
  }

  let initial_fpga ~freq ~fine n =
    let s = ref 0 in
    for i = 0 to n - 1 do
      if freq.(i) > 0 then s := !s + (fine.(i) * freq.(i))
    done;
    !s

  let make ~platform ~pricing ~freq ~fine ~coarse ~pipeline ~entries ~comm
      ~live ~edges n =
    let inter = List.filter (fun ((s, d), _) -> s <> d) edges in
    let ne = List.length inter in
    let edge_src = Array.make ne 0 in
    let edge_dst = Array.make ne 0 in
    let edge_cost_dst_cgc = Array.make ne 0 in
    let edge_cost_src_cgc = Array.make ne 0 in
    let incident = Array.make n [] in
    let model = platform.Platform.comm in
    List.iteri
      (fun e ((s, d), count) ->
        edge_src.(e) <- s;
        edge_dst.(e) <- d;
        edge_cost_dst_cgc.(e) <-
          count * Comm.words_cost model (List.length (Ir.Live.live_in live d));
        edge_cost_src_cgc.(e) <-
          count
          * Comm.words_cost model (List.length (Ir.Live.defs_live_out live s));
        incident.(s) <- e :: incident.(s);
        incident.(d) <- e :: incident.(d))
      inter;
    {
      platform;
      pricing;
      n;
      freq;
      fine;
      coarse;
      pipeline;
      entries;
      comm;
      live;
      edges;
      edge_src;
      edge_dst;
      edge_cost_dst_cgc;
      edge_cost_src_cgc;
      incident;
      is_moved = Array.make n false;
      moved_rev = [];
      t_fpga = initial_fpga ~freq ~fine n;
      t_coarse_cgc = 0;
      t_comm = 0;
    }

  let reset t =
    Array.fill t.is_moved 0 t.n false;
    t.moved_rev <- [];
    t.t_fpga <- initial_fpga ~freq:t.freq ~fine:t.fine t.n;
    t.t_coarse_cgc <- 0;
    t.t_comm <- 0

  let moved t = List.rev t.moved_rev

  let edge_contrib t e =
    match (t.is_moved.(t.edge_src.(e)), t.is_moved.(t.edge_dst.(e))) with
    | true, true | false, false -> 0
    | false, true -> t.edge_cost_dst_cgc.(e)
    | true, false -> t.edge_cost_src_cgc.(e)

  let coarse_cycles t i =
    match (t.coarse.(i), t.pipeline.(i)) with
    | _, Some (ii, lat) ->
      let starts = max 1 (min t.entries.(i) t.freq.(i)) in
      ((t.freq.(i) - starts) * ii) + (starts * lat)
    | Some lat, None -> lat * t.freq.(i)
    | None, None -> invalid_arg "Engine: moved an unmappable block"

  let flip t i target =
    if t.is_moved.(i) = target then
      invalid_arg "Engine.Inc: block already on that side";
    (match t.pricing with
    | `Transition ->
      List.iter
        (fun e -> t.t_comm <- t.t_comm - edge_contrib t e)
        t.incident.(i)
    | `Per_invocation -> ());
    t.is_moved.(i) <- target;
    let sign = if target then 1 else -1 in
    (* freq-0 blocks price to zero on both sides and [times_of] never
       inspects their mappability, so neither do we *)
    if t.freq.(i) > 0 then begin
      t.t_fpga <- t.t_fpga - (sign * t.fine.(i) * t.freq.(i));
      t.t_coarse_cgc <- t.t_coarse_cgc + (sign * coarse_cycles t i)
    end;
    match t.pricing with
    | `Transition ->
      List.iter
        (fun e -> t.t_comm <- t.t_comm + edge_contrib t e)
        t.incident.(i)
    | `Per_invocation -> t.t_comm <- t.t_comm + (sign * t.comm.(i) * t.freq.(i))

  let move t i =
    flip t i true;
    t.moved_rev <- i :: t.moved_rev

  let unmove t i =
    flip t i false;
    t.moved_rev <- List.filter (fun j -> j <> i) t.moved_rev

  let times t =
    let t_coarse = Platform.cgc_to_fpga_cycles t.platform t.t_coarse_cgc in
    let r =
      {
        t_fpga = t.t_fpga;
        t_coarse_cgc = t.t_coarse_cgc;
        t_coarse;
        t_comm = t.t_comm;
        t_total = t.t_fpga + t_coarse + t.t_comm;
      }
    in
    if !check_incremental then begin
      let full =
        times_of t.platform ~pricing:t.pricing ~fine:t.fine ~coarse:t.coarse
          ~pipeline:t.pipeline ~entries:t.entries ~comm:t.comm ~live:t.live
          ~edges:t.edges ~freq:t.freq ~moved:(moved t) t.n
      in
      let check field full_v inc_v =
        if full_v <> inc_v then
          raise
            (Delta_mismatch
               { moved = moved t; field; full = full_v; incremental = inc_v })
      in
      check "t_fpga" full.t_fpga r.t_fpga;
      check "t_coarse_cgc" full.t_coarse_cgc r.t_coarse_cgc;
      check "t_coarse" full.t_coarse r.t_coarse;
      check "t_comm" full.t_comm r.t_comm;
      check "t_total" full.t_total r.t_total
    end;
    r

  let create ?(comm_pricing = `Transition) ?cgc_pipelining platform cdfg
      profile =
    let freq, fine, coarse, pipeline, entries, comm, live, edges =
      characterise ?cgc_pipelining platform cdfg profile
    in
    make ~platform ~pricing:comm_pricing ~freq ~fine ~coarse ~pipeline
      ~entries ~comm ~live ~edges
      (Ir.Cdfg.block_count cdfg)
end

let mappable (platform : Platform.t) cdfg i =
  Coarsegrain.Schedule.supported_on ?health:platform.Platform.cgc_health
    platform.Platform.cgc
    (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg
  && platform.Platform.cgc.Coarsegrain.Cgc.cgcs > 0

(* Group the kernel worklist by innermost loop when the engine runs at
   loop granularity: each movement then transfers a whole loop body. *)
let group_kernels_by_loop cdfg (kernels : Analysis.Kernel.entry list) =
  let cfg = Ir.Cdfg.cfg cdfg in
  let loops = Ir.Loop.find cfg in
  let innermost_of b =
    List.fold_left
      (fun acc (l : Ir.Loop.t) ->
        if List.mem b l.Ir.Loop.body then
          match acc with
          | Some (best : Ir.Loop.t)
            when List.length best.Ir.Loop.body <= List.length l.Ir.Loop.body ->
            acc
          | _ -> Some l
        else acc)
      None loops
  in
  let groups : (int, Analysis.Kernel.entry list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (k : Analysis.Kernel.entry) ->
      let key =
        match innermost_of k.block_id with
        | Some l -> l.Ir.Loop.header
        | None -> -1 - k.block_id
      in
      if not (Hashtbl.mem groups key) then order := key :: !order;
      Hashtbl.replace groups key
        (k :: Option.value (Hashtbl.find_opt groups key) ~default:[]))
    kernels;
  let group_weight g =
    List.fold_left
      (fun acc (k : Analysis.Kernel.entry) -> acc + k.total_weight)
      0 g
  in
  List.rev_map (fun key -> List.rev (Hashtbl.find groups key)) !order
  |> List.sort (fun g1 g2 -> compare (group_weight g2) (group_weight g1))

let run ?weights ?max_moves ?(comm_pricing = `Transition) ?cgc_pipelining
    ?(granularity = `Block) ?verify_ir (platform : Platform.t)
    ~timing_constraint cdfg profile =
  Hypar_obs.Span.with_ ~cat:"engine" "engine.run"
    ~args:
      [
        ("app", Hypar_obs.Event.Str (Ir.Cdfg.name cdfg));
        ("constraint", Hypar_obs.Event.Int timing_constraint);
      ]
  @@ fun () ->
  if Option.value verify_ir ~default:!Ir.Passes.verify_passes then
    Ir.Verify.check_exn ~context:"engine input" cdfg;
  let n = Ir.Cdfg.block_count cdfg in
  let freq, fine, coarse, pipeline, entries, comm, live, edges =
    characterise ?cgc_pipelining platform cdfg profile
  in
  let inc =
    Inc.make ~platform ~pricing:comm_pricing ~freq ~fine ~coarse ~pipeline
      ~entries ~comm ~live ~edges n
  in
  (* each read is O(1) off the running sums (and cross-checked against the
     full recompute when [check_incremental] is set) *)
  let read_times () =
    Hypar_obs.Counter.incr "engine.evaluations";
    Inc.times inc
  in
  let initial = read_times () in
  let analysis = Analysis.Kernel.analyse ?weights cdfg profile in
  let base =
    {
      platform;
      timing_constraint;
      cdfg_name = Ir.Cdfg.name cdfg;
      initial;
      analysis;
      steps = [];
      skipped = [];
      status = Met_without_partitioning;
      final = initial;
      moved = [];
      fine_cycles_per_iter = fine;
      coarse_latency = coarse;
      comm_cycles_per_iter = comm;
      freq;
    }
  in
  if initial.t_total <= timing_constraint then base
  else begin
    (* at loop granularity, each "kernel" below is a whole loop's worth of
       blocks, still ordered by (summed) Eq.-1 weight *)
    let worklist =
      match granularity with
      | `Block ->
        List.map (fun k -> [ k ]) analysis.Analysis.Kernel.kernels
      | `Loop -> group_kernels_by_loop cdfg analysis.Analysis.Kernel.kernels
    in
    let max_moves =
      match max_moves with Some m -> m | None -> List.length worklist
    in
    let rec go kernels steps skipped moved count =
      match kernels with
      | [] ->
        let final =
          match steps with [] -> initial | s :: _ -> s.times
        in
        {
          base with
          steps = List.rev steps;
          skipped = List.rev skipped;
          status = Infeasible;
          final;
          moved = List.rev moved;
        }
      | group :: rest ->
        if count >= max_moves then
          let final = match steps with [] -> initial | s :: _ -> s.times in
          {
            base with
            steps = List.rev steps;
            skipped = List.rev skipped;
            status = Infeasible;
            final;
            moved = List.rev moved;
          }
        else begin
        let movable, unmovable =
          List.partition
            (fun (k : Analysis.Kernel.entry) -> coarse.(k.block_id) <> None)
            group
        in
        let skipped =
          List.fold_left
            (fun acc (k : Analysis.Kernel.entry) ->
              Hypar_obs.Counter.incr "engine.skipped";
              let reason =
                (* distinguish a DFG the CGC can never run (division)
                   from one only the current degradation rules out *)
                if
                  Coarsegrain.Schedule.supported
                    (Ir.Cdfg.info cdfg k.block_id).Ir.Cdfg.dfg
                then begin
                  Hypar_obs.Counter.incr "resilience.fault.fallback";
                  No_cgc_capacity
                end
                else Not_cgc_executable
              in
              (k.block_id, reason) :: acc)
            skipped unmovable
        in
        match movable with
        | [] -> go rest steps skipped moved count
        | (k : Analysis.Kernel.entry) :: _ ->
          let moved =
            List.rev_append
              (List.rev_map (fun (k : Analysis.Kernel.entry) -> k.block_id) movable)
              moved
          in
          let step =
            Hypar_obs.Span.with_ ~cat:"engine" "engine.move"
              ~args:
                [
                  ("block", Hypar_obs.Event.Int k.block_id);
                  ("step", Hypar_obs.Event.Int (count + 1));
                ]
            @@ fun () ->
            Hypar_obs.Counter.incr "engine.moves";
            List.iter
              (fun (k : Analysis.Kernel.entry) -> Inc.move inc k.block_id)
              movable;
            let times = read_times () in
            {
              step_index = count + 1;
              moved_block = k.block_id;
              kernel = k;
              on_cgc = List.rev moved;
              times;
              meets_constraint = times.t_total <= timing_constraint;
            }
          in
          if step.meets_constraint then
            {
              base with
              steps = List.rev (step :: steps);
              skipped = List.rev skipped;
              status = Met_after (count + 1);
              final = step.times;
              moved = List.rev moved;
            }
          else go rest (step :: steps) skipped moved (count + 1)
        end
    in
    go worklist [] [] [] 0
  end

let reduction_percent t =
  if t.initial.t_total = 0 then 0.0
  else
    100.0
    *. float_of_int (t.initial.t_total - t.final.t_total)
    /. float_of_int t.initial.t_total

let coarse_cycles_of_moved t = t.final.t_coarse_cgc

let met t =
  match t.status with
  | Met_without_partitioning | Met_after _ -> true
  | Infeasible -> false

let pp_times ppf x =
  Format.fprintf ppf
    "t_fpga=%d t_coarse=%d (=%d CGC cycles) t_comm=%d t_total=%d" x.t_fpga
    x.t_coarse x.t_coarse_cgc x.t_comm x.t_total

let pp ppf t =
  Format.fprintf ppf "@[<v>partitioning of %s on %s (constraint %d):@,"
    t.cdfg_name t.platform.Platform.name t.timing_constraint;
  Format.fprintf ppf "  initial (all-FPGA): %a@," pp_times t.initial;
  List.iter
    (fun s ->
      Format.fprintf ppf "  step %d: move BB%d -> %a%s@," s.step_index
        s.moved_block pp_times s.times
        (if s.meets_constraint then "  [met]" else ""))
    t.steps;
  List.iter
    (fun (b, reason) ->
      Format.fprintf ppf "  skipped BB%d: %s@," b (skip_reason_string reason))
    t.skipped;
  (match t.status with
  | Met_without_partitioning ->
    Format.fprintf ppf "  met without partitioning@,"
  | Met_after k -> Format.fprintf ppf "  met after %d movement(s)@," k
  | Infeasible -> Format.fprintf ppf "  INFEASIBLE@,");
  Format.fprintf ppf "  reduction: %.1f%%@]" (reduction_percent t)
