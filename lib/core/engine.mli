(** The partitioning engine — the complete Figure 2 flow.

    1. Map the whole application to the fine-grain hardware; exit if the
       timing constraint is already met.
    2. Run the analysis step (Eq. 1 kernels, decreasing total weight).
    3. Move kernels one by one to the coarse-grain data-path; after each
       movement recompute [t_total = t_FPGA + t_coarse + t_comm] (Eq. 2)
       and stop at the first satisfied constraint.

    All times are reported in FPGA clock-cycle units; the coarse-grain
    contribution is additionally reported raw, in CGC cycles (the paper's
    "Cycles in CGC" row), before conversion by the platform clock ratio.
    Kernels whose DFGs the CGC cannot execute (divisions) are skipped and
    recorded. *)

type times = {
  t_fpga : int;  (** Eq. 4, fine-grain part *)
  t_coarse_cgc : int;  (** Eq. 3 in CGC cycles *)
  t_coarse : int;  (** Eq. 3 converted to FPGA cycle units *)
  t_comm : int;  (** shared-memory transfer cycles *)
  t_total : int;  (** Eq. 2 *)
}

type step = {
  step_index : int;  (** 1-based *)
  moved_block : int;  (** kernel moved in this step *)
  kernel : Hypar_analysis.Kernel.entry;
  on_cgc : int list;  (** cumulative moved set, in move order *)
  times : times;
  meets_constraint : bool;
}

type status =
  | Met_without_partitioning  (** all-FPGA mapping already meets timing *)
  | Met_after of int  (** satisfied after this many kernel movements *)
  | Infeasible  (** kernels exhausted without meeting the constraint *)

type skip_reason =
  | Not_cgc_executable
      (** the DFG contains operations no CGC can run (division) *)
  | No_cgc_capacity
      (** the CGC could run it, but the platform's degraded data-path
          ({!Platform.t.cgc_health}) has no live resources for it — the
          kernel falls back to the FPGA *)

val skip_reason_string : skip_reason -> string

type t = {
  platform : Platform.t;
  timing_constraint : int;
  cdfg_name : string;
  initial : times;  (** the all-fine-grain mapping *)
  analysis : Hypar_analysis.Kernel.t;
  steps : step list;  (** in execution order *)
  skipped : (int * skip_reason) list;
      (** kernels that could not move, with reason *)
  status : status;
  final : times;
  moved : int list;  (** final moved set, in move order *)
  fine_cycles_per_iter : int array;  (** per block *)
  coarse_latency : int option array;  (** per block, CGC cycles; [None] = unmappable *)
  comm_cycles_per_iter : int array;  (** per block *)
  freq : int array;  (** per block *)
}

val run :
  ?weights:Hypar_analysis.Weights.t ->
  ?max_moves:int ->
  ?comm_pricing:[ `Transition | `Per_invocation ] ->
  ?cgc_pipelining:bool ->
  ?granularity:[ `Block | `Loop ] ->
  ?verify_ir:bool ->
  Platform.t ->
  timing_constraint:int ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  t
(** Runs the flow. [max_moves] bounds the number of kernel movements
    (default: all kernels); [comm_pricing] selects the [t_comm] model
    (default [`Transition], see {!Comm}); [cgc_pipelining] (default off)
    prices self-looping moved kernels with modulo scheduling
    ({!Hypar_coarsegrain.Modulo}): each loop entry pays the full latency
    once and every further iteration only the initiation interval.
    [granularity] (default [`Block], the paper's) moves either single
    kernels or whole innermost loops per step — the [ablation:strategy]
    bench motivates [`Loop] for multi-block loop bodies.
    [verify_ir] (default {!Hypar_ir.Passes.verify_passes}) runs
    {!Hypar_ir.Verify.check} on the input CDFG before partitioning. *)

val evaluate :
  ?comm_pricing:[ `Transition | `Per_invocation ] ->
  ?cgc_pipelining:bool ->
  Platform.t ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  (int list -> times)
(** [evaluate platform cdfg profile] precomputes the per-block
    characterisation once and returns a function pricing any moved set
    (Eq. 2).  Used by the baseline selection strategies
    ({!Baselines}) and the ablation benches.  Raises [Invalid_argument]
    when a moved block is not CGC-executable. *)

exception
  Delta_mismatch of {
    moved : int list;
    field : string;
    full : int;
    incremental : int;
  }
(** Raised by {!Inc.times} under {!check_incremental} when a delta-updated
    time disagrees with the full {!evaluate}-style recompute. *)

val check_incremental : bool ref
(** Debug cross-check switch (also set by [HYPAR_ENGINE_CHECK=1]): every
    {!Inc.times} read — including the ones inside {!run} — recomputes the
    times from scratch and raises {!Delta_mismatch} on disagreement.  The
    test suite runs with this on. *)

module Inc : sig
  (** Incremental recharacterisation state.  Where {!evaluate} prices a
      moved set by walking every block and profile edge, [Inc] maintains
      the running [t_fpga]/[t_coarse_cgc]/[t_comm] sums and updates them
      per {!move} in O(degree of the moved block): only the moved
      kernel's own contribution flips sides and only its incident CFG
      edges can change boundary state.  {!run} is built on this. *)

  type t

  val create :
    ?comm_pricing:[ `Transition | `Per_invocation ] ->
    ?cgc_pipelining:bool ->
    Platform.t ->
    Hypar_ir.Cdfg.t ->
    Hypar_profiling.Profile.t ->
    t
  (** Characterises once (like {!evaluate}) and starts from the all-FPGA
      mapping. *)

  val move : t -> int -> unit
  (** Moves a block to the coarse-grain data-path.  Raises
      [Invalid_argument] if it is already there, or (like {!evaluate})
      when the block executes but is not CGC-mappable. *)

  val unmove : t -> int -> unit
  (** Moves a block back to the FPGA — deltas are symmetric. *)

  val times : t -> times
  (** Current Eq. 2 times, O(1) off the running sums. *)

  val moved : t -> int list
  (** Current moved set, in move order. *)

  val reset : t -> unit
  (** Back to the all-FPGA mapping without recharacterising. *)
end

val mappable : Platform.t -> Hypar_ir.Cdfg.t -> int -> bool
(** Whether a block can execute on the platform's CGC data-path. *)

val reduction_percent : t -> float
(** Cycle reduction of the final partitioning relative to the all-FPGA
    mapping, in percent (the paper's last table row). *)

val coarse_cycles_of_moved : t -> int
(** The "Cycles in CGC" row: Σ latency×freq over moved kernels, in CGC
    cycles. *)

val met : t -> bool
val pp_times : Format.formatter -> times -> unit
val pp : Format.formatter -> t -> unit
