(** Shared-data-memory communication model (the [t_comm] term of Eq. 2).

    When a kernel executes on the coarse-grain data-path, its live-in
    scalars must be read from — and its live-out results written back
    to — the shared data memory of the platform (Figure 1).  The cost per
    kernel invocation is a fixed synchronisation overhead plus the word
    count divided by the number of memory ports. *)

type model = {
  cycles_per_word : int;  (** FPGA cycles to move one word *)
  ports : int;  (** words transferable in parallel *)
  fixed_overhead : int;  (** per-invocation synchronisation cost *)
}

val default : model
(** 1 cycle/word, 2 ports, 4 cycles of overhead. *)

val make : ?cycles_per_word:int -> ?ports:int -> ?fixed_overhead:int -> unit -> model

val block_words : Hypar_ir.Live.t -> int -> int
(** Words a block exchanges per invocation: |live-in| + |defs live-out|. *)

val block_cycles : model -> Hypar_ir.Live.t -> int -> int
(** Per-invocation transfer cost of one block, in FPGA cycles. *)

val total_cycles :
  model -> Hypar_ir.Live.t -> freq:(int -> int) -> moved:int list -> int
(** Per-invocation pricing: [t_comm] over all moved kernels, weighted by
    execution frequency.  Pessimistic — it ignores that consecutive
    iterations of a moved kernel keep their values in the CGC register
    bank.  Kept for the communication-model ablation. *)

val words_cost : model -> int -> int
(** Cost of one boundary crossing moving [words] words: the fixed
    synchronisation overhead plus the port-parallel transfer time.  The
    per-edge unit {!transition_cycles} sums — exposed so the incremental
    engine ({!Engine.Inc}) can precompute both crossing directions of an
    edge once. *)

val transition_cycles :
  model ->
  Hypar_ir.Live.t ->
  edges:((int * int) * int) list ->
  on_cgc:(int -> bool) ->
  int
(** Transition-based pricing (the default engine model): a transfer is
    paid only when control crosses the fine/coarse boundary.  Entering a
    coarse block [j] moves its live-in scalars; leaving a coarse block
    [i] publishes its live-out definitions.  Each crossing also pays the
    fixed synchronisation overhead.  Self-loops of a moved kernel are
    free — its state lives in the CGC register bank. *)
