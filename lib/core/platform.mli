(** The generic hybrid reconfigurable platform of Figure 1: fine-grain
    (FPGA) blocks, a coarse-grain CGC data-path, a shared data memory and
    the clock relationship between the two domains. *)

type t = {
  name : string;
  fpga : Hypar_finegrain.Fpga.t;
  cgc : Hypar_coarsegrain.Cgc.t;
  cgc_health : Hypar_coarsegrain.Cgc.health option;
      (** [None] (the default) means fully healthy; [Some h] restricts the
          coarse-grain mapping to the live slots of [h] — see
          [Hypar_resilience.Degrade]. *)
  clock_ratio : int;  (** [T_FPGA / T_CGC]; the paper assumes 3 *)
  comm : Comm.model;
}

val make :
  ?name:string ->
  ?clock_ratio:int ->
  ?comm:Comm.model ->
  ?cgc_health:Hypar_coarsegrain.Cgc.health ->
  fpga:Hypar_finegrain.Fpga.t ->
  cgc:Hypar_coarsegrain.Cgc.t ->
  unit ->
  t
(** Defaults: clock ratio 3 (paper §4), {!Comm.default}, healthy CGC
    data-path.  Raises [Invalid_argument] when [cgc_health] does not match
    the CGC geometry. *)

val degraded : t -> bool
(** [true] when the platform carries a health mask that actually disables
    hardware. *)

val paper_configs : unit -> t list
(** The four platform configurations of Tables 2–3:
    [A_FPGA ∈ {1500, 5000}] × data-paths of two / three 2×2 CGCs. *)

val cgc_to_fpga_cycles : t -> int -> int
(** Convert CGC cycles to FPGA cycle units (ceiling division by the clock
    ratio). *)

val pp : Format.formatter -> t -> unit
