module Profiling = Hypar_profiling

type prepared = {
  cdfg : Hypar_ir.Cdfg.t;
  profile : Profiling.Profile.t;
  interp : Profiling.Interp.result;
}

let prepare ?backend ?name ?simplify ?verify_ir ?max_steps ?poll ?(inputs = [])
    source =
  let cdfg = Hypar_minic.Driver.compile_exn ?name ?simplify ?verify_ir source in
  let interp = Profiling.Profile.run ?backend ?max_steps ?poll ~inputs cdfg in
  let profile = Profiling.Profile.of_result cdfg interp in
  { cdfg; profile; interp }

let partition ?weights platform ~timing_constraint prepared =
  Engine.run ?weights platform ~timing_constraint prepared.cdfg prepared.profile

let partition_source ?name ?inputs ?weights platform ~timing_constraint source =
  partition ?weights platform ~timing_constraint (prepare ?name ?inputs source)
