module Fpga = Hypar_finegrain.Fpga
module Cgc = Hypar_coarsegrain.Cgc

type t = {
  name : string;
  fpga : Fpga.t;
  cgc : Cgc.t;
  cgc_health : Cgc.health option;
  clock_ratio : int;
  comm : Comm.model;
}

let make ?name ?(clock_ratio = 3) ?(comm = Comm.default) ?cgc_health ~fpga ~cgc
    () =
  if clock_ratio <= 0 then invalid_arg "Platform.make: clock_ratio must be positive";
  (match cgc_health with
  | Some h when Array.length h.Cgc.col_rows <> Cgc.chains cgc ->
    invalid_arg "Platform.make: cgc_health does not match the CGC geometry"
  | _ -> ());
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "A_FPGA=%d, %s CGCs" fpga.Fpga.area (Cgc.describe cgc)
  in
  { name; fpga; cgc; cgc_health; clock_ratio; comm }

let degraded t =
  match t.cgc_health with
  | Some h when not (Cgc.healthy t.cgc h) -> true
  | Some _ | None -> false

let paper_configs () =
  let mk area k =
    make ~fpga:(Fpga.make ~area ()) ~cgc:(Cgc.two_by_two k) ()
  in
  [ mk 1500 2; mk 1500 3; mk 5000 2; mk 5000 3 ]

let cgc_to_fpga_cycles t cgc_cycles =
  (cgc_cycles + t.clock_ratio - 1) / t.clock_ratio

let pp ppf t =
  Format.fprintf ppf "platform %s: %a, %a, T_FPGA=%d*T_CGC" t.name Fpga.pp
    t.fpga Cgc.pp t.cgc t.clock_ratio
