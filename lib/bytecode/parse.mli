(** Assembler-style parser for the textual `.hbc` bytecode format.

    The format is line oriented:
    - [; ...] and [# ...] are comments;
    - [.array NAME SIZE WIDTH [= v0 v1 ...]] declares a shared-memory
      array ([.const ...] a ROM with the same shape);
    - [.local NAME WIDTH] declares a scalar slot (implicitly zero at
      entry, like Mini-C declarations);
    - [NAME:] on a line of its own labels the next instruction;
    - everything else is [mnemonic [operand]] (see {!Insn}).

    Errors carry 1-based line/column positions, mirroring
    [Hypar_minic.Driver]. *)

type error = { line : int; col : int; msg : string }

val program : ?name:string -> string -> (Prog.t, error) result
(** Parses a whole `.hbc` source.  [name] defaults to ["bytecode"].
    Reports the first syntactic error (unknown mnemonic, malformed
    operand, bad directive, duplicate declaration); whole-program
    properties — label resolution, stack discipline — are checked by
    {!Recover}. *)

val string_of_error : error -> string
