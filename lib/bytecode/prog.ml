type pos = { line : int; col : int }

type array_decl = {
  aname : string;
  size : int;
  elem_width : int;
  init : int array option;
  is_const : bool;
}

type local_decl = { lname : string; lwidth : int }
type item = Label of string | Insn of Insn.t

type t = {
  name : string;
  arrays : array_decl list;
  locals : local_decl list;
  code : (pos * item) list;
}

let to_string t =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun a ->
      let dir = if a.is_const then ".const" else ".array" in
      pr "%s %s %d %d" dir a.aname a.size a.elem_width;
      (match a.init with
      | None -> ()
      | Some vs ->
        Buffer.add_string buf " =";
        Array.iter (fun v -> pr " %d" v) vs);
      Buffer.add_char buf '\n')
    t.arrays;
  List.iter (fun l -> pr ".local %s %d\n" l.lname l.lwidth) t.locals;
  List.iter
    (fun (_, item) ->
      match item with
      | Label l -> pr "%s:\n" l
      | Insn i -> pr "  %s\n" (Insn.to_string i))
    t.code;
  Buffer.contents buf

let equal a b =
  let item_eq x y =
    match (x, y) with
    | Label l, Label m -> String.equal l m
    | Insn i, Insn j -> i = j
    | _ -> false
  in
  String.equal a.name b.name
  && a.arrays = b.arrays && a.locals = b.locals
  && List.length a.code = List.length b.code
  && List.for_all2 (fun (_, x) (_, y) -> item_eq x y) a.code b.code

let pp ppf t = Format.pp_print_string ppf (to_string t)
