(** The HYPAR bytecode instruction set.

    A small stack machine in the spirit of the binaries the
    decompilation-partitioning line of work starts from: immediates and
    named local slots feed an operand stack; arithmetic pops its operands
    and pushes the result; arrays are the same shared-memory objects the
    CDFG models.  The set maps 1:1 onto {!Hypar_ir.Instr} operations so
    stack-to-register recovery loses nothing. *)

type t =
  | Push of int  (** push an immediate *)
  | Load of string  (** push the value of a local slot *)
  | Store of string  (** pop into a local slot *)
  | Aload of string  (** pop an index, push [arr[index]] *)
  | Astore of string  (** pop a value, pop an index, [arr[index] := value] *)
  | Alu of Hypar_ir.Types.alu_op  (** pop b, pop a, push [a op b] *)
  | Mul  (** pop b, pop a, push [a * b] *)
  | Div  (** pop b, pop a, push [a / b] (traps on 0) *)
  | Rem  (** pop b, pop a, push [a mod b] (traps on 0) *)
  | Un of Hypar_ir.Types.un_op  (** pop a, push [op a] *)
  | Select  (** pop f, pop t, pop c, push [c ? t : f] *)
  | Dup  (** duplicate the top of stack *)
  | Pop  (** drop the top of stack *)
  | Swap  (** exchange the two topmost values *)
  | Jmp of string  (** unconditional jump *)
  | Brt of string  (** pop c; jump when [c <> 0], else fall through *)
  | Brf of string  (** pop c; jump when [c = 0], else fall through *)
  | Ret  (** return, no value *)
  | Retv  (** pop a value and return it *)

val mnemonic : t -> string

val to_string : t -> string
(** Mnemonic plus operand, exactly as the assembler parses it. *)

val pops : t -> int
(** Values consumed from the operand stack. *)

val pushes : t -> int
(** Values produced onto the operand stack. *)

val ends_block : t -> bool
(** Does this instruction terminate a basic block?  True for [Jmp],
    [Brt], [Brf], [Ret] and [Retv]. *)

val falls_through : t -> bool
(** May control continue to the next instruction?  False only for
    [Jmp], [Ret] and [Retv]. *)

val branch_target : t -> string option
(** The label a [Jmp]/[Brt]/[Brf] transfers to. *)

val pp : Format.formatter -> t -> unit
