(** CFG recovery and stack-to-register lowering.

    Turns the flat instruction stream of a parsed program back into a
    structured {!Hypar_ir.Cdfg.t}:

    - the stream is split at leaders (the first instruction, every branch
      target, every labelled instruction and every instruction after a
      block ender) into {!Hypar_ir.Block}s; a block that ends because the
      next instruction is a leader gets a synthesised fall-through jump;
    - the operand stack is simulated symbolically per block: pushes put
      immediates or temporaries on a compile-time stack, operations pop
      them and emit three-address instructions into fresh SSA-ish
      temporaries (Mini-C width rules), and values still on the stack at
      a block exit are spilled to canonical [stk_<i>] registers that the
      successor reloads — a parallel move, so swaps are safe.  Each
      [stk_<i>] register is sized (by fixpoint) to the widest operand
      any edge spills into that position; unreachable blocks are lowered
      under an assumed empty entry stack, with underflow padded by fresh
      registers rather than rejected;
    - declared locals are zero-initialised once at entry (the machine's
      semantics, and what makes {!Hypar_ir.Verify}'s defs-before-uses
      invariant hold by construction) — in the first block, or in a
      synthetic entry block when some branch targets instruction 0, so a
      back edge to the top of the program cannot re-run the init;
    - loop structure is recovered by {!Hypar_ir.Cdfg.make} from the
      rebuilt CFG's back edges.

    The deliberately copy-heavy lowering is decompilation residue;
    {!Hypar_ir.Passes.optimize}'s global copy/const propagation and CSE
    erase it (measured by the bench [bytecode] section).

    Ill-formed programs are rejected with a typed, positioned
    diagnostic. *)

type kind =
  | Empty_program  (** no instructions at all *)
  | Duplicate_label of string
  | Unknown_label of string  (** a branch targets no instruction *)
  | Label_past_end of string  (** label after the last instruction *)
  | Fallthrough_off_end  (** the last instruction can fall through *)
  | Stack_underflow of string  (** operation pops an empty stack *)
  | Stack_overflow of int  (** static stack depth exceeds the limit *)
  | Stack_mismatch of { label : string; expected : int; got : int }
      (** two paths reach [label] with different stack depths *)
  | Unknown_array of string
  | Unknown_local of string
  | Const_store of string  (** [astore] to a [.const] array *)

type diag = { dpos : Prog.pos; dkind : kind }

val stack_limit : int
(** Maximum static operand-stack depth (1024). *)

val message : kind -> string

val cdfg : Prog.t -> (Hypar_ir.Cdfg.t, diag) result
(** Recovers the CDFG, or reports the first diagnostic.  The result
    satisfies {!Hypar_ir.Verify} invariants by construction (checked by
    the driver when verification is on). *)
