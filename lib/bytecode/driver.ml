type error = Parse.error = { line : int; col : int; msg : string }

exception Frontend_error of { name : string option; err : error }

let string_of_error = Parse.string_of_error

let () =
  Printexc.register_printer (function
    | Frontend_error { name; err } ->
      Some
        (Printf.sprintf "%s%s"
           (match name with Some n -> n ^ ":" | None -> "")
           (string_of_error err))
    | _ -> None)

let span name f = Hypar_obs.Span.with_ ~cat:"bytecode" name f

let error_of_diag (d : Recover.diag) =
  { line = d.dpos.Prog.line; col = d.dpos.Prog.col; msg = Recover.message d.dkind }

let parse ?name src = Parse.program ?name src

let compile ?name ?(optimize = true) ?verify_ir src =
  let verify = Option.value verify_ir ~default:!Hypar_ir.Passes.verify_passes in
  try
    span "bytecode.compile" @@ fun () ->
    match span "bytecode.parse" (fun () -> Parse.program ?name src) with
    | Error e -> Error e
    | Ok prog -> (
      match span "bytecode.recover" (fun () -> Recover.cdfg prog) with
      | Error d -> Error (error_of_diag d)
      | Ok cdfg ->
        if verify then Hypar_ir.Verify.check_exn ~context:"recover" cdfg;
        let cdfg =
          if optimize then
            span "bytecode.optimize" (fun () -> Hypar_ir.Passes.optimize ~verify cdfg)
          else cdfg
        in
        Ok cdfg)
  with Hypar_ir.Cfg.Malformed msg ->
    Error { line = 0; col = 0; msg = "recovery produced: " ^ msg }

let compile_exn ?name ?optimize ?verify_ir src =
  match compile ?name ?optimize ?verify_ir src with
  | Ok cdfg -> cdfg
  | Error err -> raise (Frontend_error { name; err })
