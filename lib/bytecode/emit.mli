(** CDFG → bytecode compiler: the back half of `hypar compile-bc`.

    Every three-address instruction becomes a push/operate/store sequence;
    block labels become bytecode labels, jumps to the next emitted block
    become fall-throughs.  Re-ingesting the result through {!Parse} and
    {!Recover} yields a CDFG with identical observable behaviour (the
    differential property in the test suite), which is what turns every
    Mini-C example and generated program into a bytecode test input. *)

val program : Hypar_ir.Cdfg.t -> Prog.t
(** Variable names are mangled to [<sanitised-name>_<vid>] so distinct
    registers with the same display name stay distinct slots. *)

val to_string : Hypar_ir.Cdfg.t -> string
(** [Prog.to_string] of {!program}. *)
