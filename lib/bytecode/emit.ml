module Ir = Hypar_ir

let nopos = { Prog.line = 0; col = 0 }

let sanitize s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "v"
  else match s.[0] with '0' .. '9' -> "v" ^ s | _ -> s

let clamp_width w = if w > 64 then 64 else if w < 1 then 1 else w

let program cdfg =
  let cfg = Ir.Cdfg.cfg cdfg in
  let blocks = Ir.Cfg.blocks cfg in
  (* every register becomes a slot; the vid suffix keeps same-named
     registers distinct *)
  let slots = Hashtbl.create 64 in
  let locals = ref [] in
  let array_names = Hashtbl.create 8 in
  List.iter
    (fun (a : Ir.Cdfg.array_decl) -> Hashtbl.replace array_names a.aname ())
    (Ir.Cdfg.arrays cdfg);
  let slot (v : Ir.Instr.var) =
    match Hashtbl.find_opt slots v.vid with
    | Some s -> s
    | None ->
      let s = Printf.sprintf "%s_%d" (sanitize v.vname) v.vid in
      (* the vid suffix makes slots unique among themselves; only a
         clash with an array name needs breaking *)
      let rec free s = if Hashtbl.mem array_names s then free (s ^ "_s") else s in
      let s = free s in
      Hashtbl.replace slots v.vid s;
      locals := { Prog.lname = s; lwidth = clamp_width v.vwidth } :: !locals;
      s
  in
  (* stable label names: sanitised, uniquified in block order *)
  let label_names = Hashtbl.create 16 in
  let taken = Hashtbl.create 16 in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let base = sanitize b.label in
      let rec pick cand i =
        if Hashtbl.mem taken cand then pick (Printf.sprintf "%s_%d" base i) (i + 1)
        else cand
      in
      let name = pick base 0 in
      Hashtbl.replace taken name ();
      Hashtbl.replace label_names b.label name)
    blocks;
  let label l = Hashtbl.find label_names l in
  let code = ref [] in
  let emit i = code := (nopos, Prog.Insn i) :: !code in
  let push = function
    | Ir.Instr.Imm n -> emit (Insn.Push n)
    | Ir.Instr.Var v -> emit (Insn.Load (slot v))
  in
  let instr = function
    | Ir.Instr.Bin { dst; op; a; b } ->
      push a; push b; emit (Insn.Alu op); emit (Insn.Store (slot dst))
    | Ir.Instr.Mul { dst; a; b } ->
      push a; push b; emit Insn.Mul; emit (Insn.Store (slot dst))
    | Ir.Instr.Div { dst; a; b } ->
      push a; push b; emit Insn.Div; emit (Insn.Store (slot dst))
    | Ir.Instr.Rem { dst; a; b } ->
      push a; push b; emit Insn.Rem; emit (Insn.Store (slot dst))
    | Ir.Instr.Un { dst; op; a } ->
      push a; emit (Insn.Un op); emit (Insn.Store (slot dst))
    | Ir.Instr.Mov { dst; src } -> push src; emit (Insn.Store (slot dst))
    | Ir.Instr.Select { dst; cond; if_true; if_false } ->
      push cond; push if_true; push if_false; emit Insn.Select;
      emit (Insn.Store (slot dst))
    | Ir.Instr.Load { dst; arr; index } ->
      push index; emit (Insn.Aload arr); emit (Insn.Store (slot dst))
    | Ir.Instr.Store { arr; index; value } ->
      push index; push value; emit (Insn.Astore arr)
  in
  let nblocks = Array.length blocks in
  Array.iteri
    (fun k (b : Ir.Block.t) ->
      let next = if k + 1 < nblocks then Some blocks.(k + 1).Ir.Block.label else None in
      code := (nopos, Prog.Label (label b.label)) :: !code;
      List.iter instr b.instrs;
      match b.term with
      | Ir.Block.Jump l -> if next <> Some l then emit (Insn.Jmp (label l))
      | Ir.Block.Branch { cond; if_true; if_false } ->
        push cond;
        if next = Some if_false then emit (Insn.Brt (label if_true))
        else if next = Some if_true then emit (Insn.Brf (label if_false))
        else begin
          emit (Insn.Brt (label if_true));
          emit (Insn.Jmp (label if_false))
        end
      | Ir.Block.Return None -> emit Insn.Ret
      | Ir.Block.Return (Some op) -> push op; emit Insn.Retv)
    blocks;
  let arrays =
    List.map
      (fun (a : Ir.Cdfg.array_decl) ->
        {
          Prog.aname = a.aname;
          size = a.size;
          elem_width = clamp_width a.elem_width;
          init = a.init;
          is_const = a.is_const;
        })
      (Ir.Cdfg.arrays cdfg)
  in
  {
    Prog.name = Ir.Cdfg.name cdfg;
    arrays;
    locals = List.rev !locals;
    code = List.rev !code;
  }

let to_string cdfg = Prog.to_string (program cdfg)
