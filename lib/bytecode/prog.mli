(** A parsed bytecode program: declarations plus a flat, labelled
    instruction stream.  This is the shape `.hbc` files describe and the
    shape {!Recover} turns back into a structured {!Hypar_ir.Cdfg.t}. *)

type pos = { line : int; col : int }

type array_decl = {
  aname : string;
  size : int;
  elem_width : int;
  init : int array option;  (** [Some _] for initialised arrays *)
  is_const : bool;  (** [.const] arrays reject [astore] *)
}

type local_decl = { lname : string; lwidth : int }

type item =
  | Label of string  (** a branch target naming the next instruction *)
  | Insn of Insn.t

type t = {
  name : string;  (** program name, defaults to the file basename *)
  arrays : array_decl list;
  locals : local_decl list;
  code : (pos * item) list;  (** in file order *)
}

val to_string : t -> string
(** Render in the exact syntax {!Parse.program} accepts; parsing the
    result yields a program [equal] to the input. *)

val equal : t -> t -> bool
(** Structural equality ignoring source positions. *)

val pp : Format.formatter -> t -> unit
