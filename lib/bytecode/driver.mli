(** One-call bytecode frontend: `.hbc` text to CDFG.

    The mirror of [Hypar_minic.Driver] for the second frontend: same
    error shape, same exception discipline, so the CLI renders bytecode
    diagnostics exactly like Mini-C ones. *)

type error = Parse.error = { line : int; col : int; msg : string }

exception Frontend_error of { name : string option; err : error }
(** Raised by {!compile_exn} for every frontend failure — parse error or
    CFG-recovery diagnostic — so callers can render a located
    [file:line:col: message]. *)

val compile :
  ?name:string ->
  ?optimize:bool ->
  ?verify_ir:bool ->
  string ->
  (Hypar_ir.Cdfg.t, error) result
(** [compile src] parses and recovers the CDFG.  With [optimize]
    (default [true]) the full {!Hypar_ir.Passes.optimize} pipeline runs
    on the result — decompiled IR is exactly the copy/const-heavy input
    the global passes exist to clean up, so this default matters more
    than for Mini-C.  With [verify_ir] (default
    {!Hypar_ir.Passes.verify_passes}) the recovered CDFG and every pass
    output are checked by {!Hypar_ir.Verify}. *)

val compile_exn :
  ?name:string -> ?optimize:bool -> ?verify_ir:bool -> string -> Hypar_ir.Cdfg.t
(** Like {!compile} but raises {!Frontend_error} on failure. *)

val parse : ?name:string -> string -> (Prog.t, error) result
(** Parse only (no recovery); for tools that inspect the stream. *)

val string_of_error : error -> string
