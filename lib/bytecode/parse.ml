module Types = Hypar_ir.Types

type error = { line : int; col : int; msg : string }

let string_of_error e = Printf.sprintf "%d:%d: %s" e.line e.col e.msg

exception Fail of error

let fail line col fmt =
  Printf.ksprintf (fun msg -> raise (Fail { line; col; msg })) fmt

(* A token with its 1-based starting column. *)
type tok = { col : int; text : string }

let strip_comment line =
  let n = String.length line in
  let rec scan i =
    if i >= n then line
    else
      match line.[i] with
      | ';' | '#' -> String.sub line 0 i
      | _ -> scan (i + 1)
  in
  scan 0

let tokens line =
  let n = String.length line in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip (i + 1) else i in
  let rec word i = if i < n && line.[i] <> ' ' && line.[i] <> '\t' then word (i + 1) else i in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else
      let j = word i in
      go ({ col = i + 1; text = String.sub line i (j - i) } :: acc) j
  in
  go [] 0

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* The fixed part of the mnemonic table; ALU/unary operations are added
   from the shared [Types] name tables so the two stay in sync. *)
let mnemonics : (string, string option -> int -> int -> Insn.t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let no_operand name insn =
    Hashtbl.replace tbl name (fun arg line col ->
        match arg with
        | None -> insn
        | Some _ -> fail line col "%s takes no operand" name)
  in
  let with_name name mk =
    Hashtbl.replace tbl name (fun arg line col ->
        match arg with
        | Some a when is_ident a -> mk a
        | Some a -> fail line col "%s: invalid name %S" name a
        | None -> fail line col "%s expects a name" name)
  in
  Hashtbl.replace tbl "push" (fun arg line col ->
      match arg with
      | Some a -> (
        match int_of_string_opt a with
        | Some n -> Insn.Push n
        | None -> fail line col "push: invalid integer %S" a)
      | None -> fail line col "push expects an integer");
  with_name "load" (fun s -> Insn.Load s);
  with_name "store" (fun s -> Insn.Store s);
  with_name "aload" (fun s -> Insn.Aload s);
  with_name "astore" (fun s -> Insn.Astore s);
  with_name "jmp" (fun s -> Insn.Jmp s);
  with_name "brt" (fun s -> Insn.Brt s);
  with_name "brf" (fun s -> Insn.Brf s);
  List.iter
    (fun op -> no_operand (Types.string_of_alu_op op) (Insn.Alu op))
    Types.all_alu_ops;
  List.iter
    (fun op -> no_operand (Types.string_of_un_op op) (Insn.Un op))
    Types.all_un_ops;
  no_operand "mul" Insn.Mul;
  no_operand "div" Insn.Div;
  no_operand "rem" Insn.Rem;
  no_operand "select" Insn.Select;
  no_operand "dup" Insn.Dup;
  no_operand "pop" Insn.Pop;
  no_operand "swap" Insn.Swap;
  no_operand "ret" Insn.Ret;
  no_operand "retv" Insn.Retv;
  tbl

type state = {
  mutable arrays : Prog.array_decl list;  (* reversed *)
  mutable locals : Prog.local_decl list;  (* reversed *)
  mutable code : (Prog.pos * Prog.item) list;  (* reversed *)
}

let check_fresh_name st line col name =
  if List.exists (fun (a : Prog.array_decl) -> a.aname = name) st.arrays then
    fail line col "duplicate declaration of %S" name;
  if List.exists (fun (l : Prog.local_decl) -> l.lname = name) st.locals then
    fail line col "duplicate declaration of %S" name

let parse_int (t : tok) line what =
  match int_of_string_opt t.text with
  | Some n -> n
  | None -> fail line t.col "%s: invalid integer %S" what t.text

let parse_name (t : tok) line what =
  if is_ident t.text then t.text
  else fail line t.col "%s: invalid name %S" what t.text

let parse_width (t : tok) line what =
  let w = parse_int t line what in
  if w < 1 || w > 64 then fail line t.col "%s: width %d out of range 1..64" what w;
  w

let parse_array st line ~is_const dir rest =
  match rest with
  | name :: size_t :: width_t :: tail ->
    let aname = parse_name name line dir in
    check_fresh_name st line name.col aname;
    let size = parse_int size_t line dir in
    if size < 1 then fail line size_t.col "%s: size must be positive" dir;
    let elem_width = parse_width width_t line dir in
    let init =
      match tail with
      | [] -> None
      | { text = "="; _ } :: vals ->
        let vs = List.map (fun t -> parse_int t line dir) vals in
        if List.length vs > size then
          fail line (List.hd vals).col "%s %s: %d initialisers for %d elements"
            dir aname (List.length vs) size;
        let arr = Array.make size 0 in
        List.iteri (fun i v -> arr.(i) <- v) vs;
        Some arr
      | t :: _ -> fail line t.col "%s: expected '=' before initialisers" dir
    in
    st.arrays <- { Prog.aname; size; elem_width; init; is_const } :: st.arrays
  | t :: _ -> fail line t.col "%s expects NAME SIZE WIDTH" dir
  | [] -> fail line 1 "%s expects NAME SIZE WIDTH" dir

let parse_local st line rest =
  match rest with
  | [ name; width ] ->
    let lname = parse_name name line ".local" in
    check_fresh_name st line name.col lname;
    let lwidth = parse_width width line ".local" in
    st.locals <- { Prog.lname; lwidth } :: st.locals
  | t :: _ -> fail line t.col ".local expects NAME WIDTH"
  | [] -> fail line 1 ".local expects NAME WIDTH"

let parse_line st line toks =
  match toks with
  | [] -> ()
  | { text; col } :: rest -> (
    if String.length text > 0 && text.[0] = '.' then
      match text with
      | ".array" -> parse_array st line ~is_const:false ".array" rest
      | ".const" -> parse_array st line ~is_const:true ".const" rest
      | ".local" -> parse_local st line rest
      | other -> fail line col "unknown directive %S" other
    else if String.length text > 1 && text.[String.length text - 1] = ':' then begin
      let label = String.sub text 0 (String.length text - 1) in
      if not (is_ident label) then fail line col "invalid label %S" label;
      match rest with
      | [] ->
        st.code <- ({ Prog.line; col }, Prog.Label label) :: st.code
      | t :: _ -> fail line t.col "label must be alone on its line"
    end
    else
      match Hashtbl.find_opt mnemonics text with
      | None -> fail line col "unknown mnemonic %S" text
      | Some mk ->
        let arg =
          match rest with
          | [] -> None
          | [ t ] -> Some t.text
          | _ :: t :: _ -> fail line t.col "%s: trailing tokens" text
        in
        let insn = mk arg line (match rest with t :: _ -> t.col | [] -> col) in
        st.code <- ({ Prog.line; col }, Prog.Insn insn) :: st.code)

let program ?(name = "bytecode") src =
  let st = { arrays = []; locals = []; code = [] } in
  try
    String.split_on_char '\n' src
    |> List.iteri (fun i raw -> parse_line st (i + 1) (tokens (strip_comment raw)));
    Ok
      {
        Prog.name;
        arrays = List.rev st.arrays;
        locals = List.rev st.locals;
        code = List.rev st.code;
      }
  with Fail e -> Error e
