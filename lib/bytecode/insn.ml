module Types = Hypar_ir.Types

type t =
  | Push of int
  | Load of string
  | Store of string
  | Aload of string
  | Astore of string
  | Alu of Types.alu_op
  | Mul
  | Div
  | Rem
  | Un of Types.un_op
  | Select
  | Dup
  | Pop
  | Swap
  | Jmp of string
  | Brt of string
  | Brf of string
  | Ret
  | Retv

let mnemonic = function
  | Push _ -> "push"
  | Load _ -> "load"
  | Store _ -> "store"
  | Aload _ -> "aload"
  | Astore _ -> "astore"
  | Alu op -> Types.string_of_alu_op op
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Un op -> Types.string_of_un_op op
  | Select -> "select"
  | Dup -> "dup"
  | Pop -> "pop"
  | Swap -> "swap"
  | Jmp _ -> "jmp"
  | Brt _ -> "brt"
  | Brf _ -> "brf"
  | Ret -> "ret"
  | Retv -> "retv"

let to_string i =
  match i with
  | Push n -> Printf.sprintf "push %d" n
  | Load s | Store s | Aload s | Astore s | Jmp s | Brt s | Brf s ->
    Printf.sprintf "%s %s" (mnemonic i) s
  | Alu _ | Mul | Div | Rem | Un _ | Select | Dup | Pop | Swap | Ret | Retv ->
    mnemonic i

let pops = function
  | Push _ | Load _ -> 0
  | Store _ | Aload _ | Un _ | Dup | Pop | Brt _ | Brf _ | Retv -> 1
  | Astore _ | Alu _ | Mul | Div | Rem | Swap -> 2
  | Select -> 3
  | Jmp _ | Ret -> 0

let pushes = function
  | Push _ | Load _ | Aload _ | Alu _ | Mul | Div | Rem | Un _ | Select -> 1
  | Dup | Swap -> 2
  | Store _ | Astore _ | Pop | Jmp _ | Brt _ | Brf _ | Ret | Retv -> 0

let ends_block = function
  | Jmp _ | Brt _ | Brf _ | Ret | Retv -> true
  | _ -> false

let falls_through = function Jmp _ | Ret | Retv -> false | _ -> true

let branch_target = function
  | Jmp l | Brt l | Brf l -> Some l
  | _ -> None

let pp ppf i = Format.pp_print_string ppf (to_string i)
