module Ir = Hypar_ir

type kind =
  | Empty_program
  | Duplicate_label of string
  | Unknown_label of string
  | Label_past_end of string
  | Fallthrough_off_end
  | Stack_underflow of string
  | Stack_overflow of int
  | Stack_mismatch of { label : string; expected : int; got : int }
  | Unknown_array of string
  | Unknown_local of string
  | Const_store of string

type diag = { dpos : Prog.pos; dkind : kind }

exception Reject of diag

let stack_limit = 1024
let reject pos kind = raise (Reject { dpos = pos; dkind = kind })

let message = function
  | Empty_program -> "empty program: no instructions"
  | Duplicate_label l -> Printf.sprintf "duplicate label %S" l
  | Unknown_label l -> Printf.sprintf "jump to unknown label %S" l
  | Label_past_end l -> Printf.sprintf "label %S points past the last instruction" l
  | Fallthrough_off_end -> "control falls through past the last instruction"
  | Stack_underflow m -> Printf.sprintf "%s: operand stack underflow" m
  | Stack_overflow limit -> Printf.sprintf "operand stack exceeds %d values" limit
  | Stack_mismatch { label; expected; got } ->
    Printf.sprintf "stack depth mismatch at %S: %d here, %d on another path" label
      got expected
  | Unknown_array a -> Printf.sprintf "undeclared array %S" a
  | Unknown_local l -> Printf.sprintf "undeclared local %S" l
  | Const_store a -> Printf.sprintf "astore to const array %S" a

(* --- widths (Mini-C rules, see lib/minic/lower.ml) ---------------------- *)

let width_of_int n =
  let n = abs n in
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  let w = 1 + bits 0 n in
  if w > 32 then 32 else w

let width_of_operand = function
  | Ir.Instr.Var v -> v.Ir.Instr.vwidth
  | Ir.Instr.Imm n -> width_of_int n

let clamp_width w = if w > 32 then 32 else if w < 1 then 1 else w

let alu_width op a b =
  let wa = width_of_operand a and wb = width_of_operand b in
  match (op : Ir.Types.alu_op) with
  | Lt | Le | Eq | Ne | Gt | Ge -> 1
  | Add | Sub -> clamp_width (1 + max wa wb)
  | And | Or | Xor | Shl | Shr | Ashr | Min | Max -> clamp_width (max wa wb)

let un_width op a =
  let w = width_of_operand a in
  match (op : Ir.Types.un_op) with
  | Neg -> clamp_width (1 + w)
  | Not | Abs -> w

(* --- the stream, labels and leaders ------------------------------------- *)

type stream = {
  insns : (Prog.pos * Insn.t) array;
  (* user label -> instruction index (may equal [Array.length insns] until
     checked) *)
  label_index : (string, int) Hashtbl.t;
  (* leader index -> canonical block label *)
  canon : (int, string) Hashtbl.t;
  leaders : int array;  (* sorted ascending, first is 0 *)
  (* [Some l] when some branch targets instruction 0: the CFG then gets a
     synthetic entry block labelled [l] holding the local zero-init, so a
     back edge to the top of the program cannot re-execute it *)
  entry : string option;
}

let scan (prog : Prog.t) =
  let insns = ref [] and count = ref 0 in
  let label_index = Hashtbl.create 16 in
  let label_pos = Hashtbl.create 16 in
  let label_order = ref [] in
  List.iter
    (fun (pos, item) ->
      match item with
      | Prog.Insn i ->
        insns := (pos, i) :: !insns;
        incr count
      | Prog.Label l ->
        if Hashtbl.mem label_index l then reject pos (Duplicate_label l);
        Hashtbl.replace label_index l !count;
        Hashtbl.replace label_pos l pos;
        label_order := l :: !label_order)
    prog.code;
  let insns = Array.of_list (List.rev !insns) in
  let n = Array.length insns in
  if n = 0 then reject { Prog.line = 1; col = 1 } Empty_program;
  let labels_in_order = List.rev !label_order in
  List.iter
    (fun l ->
      if Hashtbl.find label_index l >= n then
        reject (Hashtbl.find label_pos l) (Label_past_end l))
    labels_in_order;
  let last_pos, last = insns.(n - 1) in
  if Insn.falls_through last then reject last_pos Fallthrough_off_end;
  (* resolve targets; mark leaders *)
  let is_leader = Array.make n false in
  is_leader.(0) <- true;
  let entry_is_target = ref false in
  Array.iteri
    (fun i (pos, insn) ->
      (match Insn.branch_target insn with
      | Some l -> (
        match Hashtbl.find_opt label_index l with
        | None -> reject pos (Unknown_label l)
        | Some idx ->
          is_leader.(idx) <- true;
          if idx = 0 then entry_is_target := true)
      | None -> ());
      if Insn.ends_block insn && i + 1 < n then is_leader.(i + 1) <- true)
    insns;
  List.iter (fun l -> is_leader.(Hashtbl.find label_index l) <- true) labels_in_order;
  (* canonical labels: first user label at the leader, else a fresh bb<i> *)
  let user_names = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace user_names l ()) labels_in_order;
  let canon = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let idx = Hashtbl.find label_index l in
      if not (Hashtbl.mem canon idx) then Hashtbl.replace canon idx l)
    labels_in_order;
  let leaders = ref [] in
  for i = n - 1 downto 0 do
    if is_leader.(i) then leaders := i :: !leaders
  done;
  let leaders = Array.of_list !leaders in
  let rec fresh_name base suffix =
    let cand = if suffix < 0 then base else Printf.sprintf "%s_%d" base suffix in
    if Hashtbl.mem user_names cand then fresh_name base (suffix + 1) else cand
  in
  Array.iter
    (fun li ->
      if not (Hashtbl.mem canon li) then begin
        let name = fresh_name (Printf.sprintf "bb%d" li) (-1) in
        Hashtbl.replace user_names name ();
        Hashtbl.replace canon li name
      end)
    leaders;
  let entry =
    if not !entry_is_target then None
    else begin
      let name = fresh_name "entry" (-1) in
      Hashtbl.replace user_names name ();
      Some name
    end
  in
  { insns; label_index; canon; leaders; entry }

(* --- lowering ------------------------------------------------------------ *)

type env = {
  stream : stream;
  arrays : (string, Ir.Cdfg.array_decl) Hashtbl.t;
  locals : (string, Ir.Instr.var) Hashtbl.t;
  local_order : Ir.Instr.var list;
  mutable next_var : int;
  stk_vars : (int, Ir.Instr.var) Hashtbl.t;  (* stack position -> register *)
  stk_ids : (int, int) Hashtbl.t;  (* vid -> stack position *)
  stk_widths : (int, int) Hashtbl.t;  (* stack position -> register width *)
  stk_observed : (int, int) Hashtbl.t;  (* widest operand spilled per position *)
}

let fresh env ?(width = 16) name =
  let v = { Ir.Instr.vname = name; vid = env.next_var; vwidth = width } in
  env.next_var <- env.next_var + 1;
  v

let stk_var env j =
  match Hashtbl.find_opt env.stk_vars j with
  | Some v -> v
  | None ->
    let width = Option.value (Hashtbl.find_opt env.stk_widths j) ~default:32 in
    let v = fresh env ~width (Printf.sprintf "stk_%d" j) in
    Hashtbl.replace env.stk_vars j v;
    Hashtbl.replace env.stk_ids v.Ir.Instr.vid j;
    v

let canon_of_label env l =
  Hashtbl.find env.stream.canon (Hashtbl.find env.stream.label_index l)

let find_array env pos a =
  match Hashtbl.find_opt env.arrays a with
  | Some d -> d
  | None -> reject pos (Unknown_array a)

let find_local env pos l =
  match Hashtbl.find_opt env.locals l with
  | Some v -> v
  | None -> reject pos (Unknown_local l)

let with_dst dst = function
  | Ir.Instr.Bin b -> Ir.Instr.Bin { b with dst }
  | Ir.Instr.Mul m -> Ir.Instr.Mul { m with dst }
  | Ir.Instr.Div d -> Ir.Instr.Div { d with dst }
  | Ir.Instr.Rem r -> Ir.Instr.Rem { r with dst }
  | Ir.Instr.Un u -> Ir.Instr.Un { u with dst }
  | Ir.Instr.Mov m -> Ir.Instr.Mov { m with dst }
  | Ir.Instr.Select s -> Ir.Instr.Select { s with dst }
  | Ir.Instr.Load l -> Ir.Instr.Load { l with dst }
  | Ir.Instr.Store _ as s -> s

(* One lowered block: its [Block.t] plus the (successor label, stack depth,
   source position) of every out edge, for depth propagation.  [strict] is
   false only for unreachable blocks, whose entry depth is a guess. *)
let lower_block env ~block_id ~entry_depth ~strict =
  let stream = env.stream in
  let lo = stream.leaders.(block_id) in
  let hi =
    if block_id + 1 < Array.length stream.leaders then stream.leaders.(block_id + 1)
    else Array.length stream.insns
  in
  let label = Hashtbl.find stream.canon lo in
  let next_label () = Hashtbl.find stream.canon hi in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  (* the entry block zero-initialises every declared local — unless some
     branch targets instruction 0, in which case the init lives in the
     synthetic entry block [stream.entry] built by [cdfg_exn] instead *)
  if lo = 0 && stream.entry = None then
    List.iter
      (fun v -> emit (Ir.Instr.Mov { dst = v; src = Ir.Instr.Imm 0 }))
      env.local_order;
  (* head of [stack] is the top; stk_<j> counts from the bottom *)
  let stack = ref [] and depth = ref 0 in
  for j = 0 to entry_depth - 1 do
    stack := Ir.Instr.Var (stk_var env j) :: !stack
  done;
  depth := entry_depth;
  let push pos op =
    if !depth >= stack_limit then reject pos (Stack_overflow stack_limit);
    stack := op :: !stack;
    incr depth
  in
  let pop pos insn =
    match !stack with
    | [] ->
      (* an unreachable block is lowered under an assumed empty entry
         stack; pad its underflow with fresh (undefined) registers rather
         than rejecting code that can never execute *)
      if strict then reject pos (Stack_underflow (Insn.mnemonic insn))
      else Ir.Instr.Var (fresh env ~width:32 "u")
    | op :: rest ->
      stack := rest;
      decr depth;
      op
  in
  (* Spill the remaining stack to the canonical stk_<j> registers: a
     parallel move — operands that are themselves stk registers are read
     into temporaries first so swapped positions do not clobber each
     other. *)
  let spill () =
    let ops = Array.of_list (List.rev !stack) in
    let moves = ref [] in
    Array.iteri
      (fun j op ->
        let w = width_of_operand op in
        let seen = Option.value (Hashtbl.find_opt env.stk_observed j) ~default:0 in
        if w > seen then Hashtbl.replace env.stk_observed j w;
        let target = stk_var env j in
        let same =
          match op with
          | Ir.Instr.Var v -> v.Ir.Instr.vid = target.Ir.Instr.vid
          | Ir.Instr.Imm _ -> false
        in
        if not same then moves := (j, target, op) :: !moves)
      ops;
    let staged =
      List.rev_map
        (fun (j, target, op) ->
          match op with
          | Ir.Instr.Var v when Hashtbl.mem env.stk_ids v.Ir.Instr.vid ->
            let t = fresh env ~width:v.Ir.Instr.vwidth "stk_t" in
            emit (Ir.Instr.Mov { dst = t; src = op });
            (j, target, Ir.Instr.Var t)
          | _ -> (j, target, op))
        !moves
    in
    List.iter (fun (_, target, op) -> emit (Ir.Instr.Mov { dst = target; src = op }))
      staged
  in
  (* a branch condition must survive the spill rewriting the stk registers *)
  let protect_cond cond =
    match cond with
    | Ir.Instr.Var v when Hashtbl.mem env.stk_ids v.Ir.Instr.vid ->
      let t = fresh env ~width:v.Ir.Instr.vwidth "t_cond" in
      emit (Ir.Instr.Mov { dst = t; src = cond });
      Ir.Instr.Var t
    | _ -> cond
  in
  let term = ref None and succs = ref [] in
  let finish t out = term := Some t; succs := out in
  for i = lo to hi - 1 do
    let pos, insn = stream.insns.(i) in
    match insn with
    | Insn.Push n -> push pos (Ir.Instr.Imm n)
    | Insn.Load slot ->
      let v = find_local env pos slot in
      let t = fresh env ~width:v.Ir.Instr.vwidth slot in
      emit (Ir.Instr.Mov { dst = t; src = Ir.Instr.Var v });
      push pos (Ir.Instr.Var t)
    | Insn.Store slot ->
      let v = find_local env pos slot in
      let x = pop pos insn in
      (* store-back coalescing: a compute-then-store pair writes the slot
         register directly (what the Mini-C frontend emits), instead of
         computing into a temporary and copying — the one decompilation
         residue global copy propagation cannot erase when the slot is
         loop-carried.  Safe only when the temporary was defined by the
         instruction just emitted and survives nowhere else (not dup'ed
         onto the stack). *)
      let coalesced =
        match (x, !instrs) with
        | Ir.Instr.Var t, last :: rest
          when (match Ir.Instr.def last with
               | Some d -> d.Ir.Instr.vid = t.Ir.Instr.vid
               | None -> false)
               && (not (Hashtbl.mem env.stk_ids t.Ir.Instr.vid))
               && not
                    (List.exists
                       (function
                         | Ir.Instr.Var u -> u.Ir.Instr.vid = t.Ir.Instr.vid
                         | Ir.Instr.Imm _ -> false)
                       !stack) ->
          instrs := with_dst v last :: rest;
          true
        | _ -> false
      in
      if not coalesced then emit (Ir.Instr.Mov { dst = v; src = x })
    | Insn.Aload arr ->
      let d = find_array env pos arr in
      let index = pop pos insn in
      let t = fresh env ~width:d.Ir.Cdfg.elem_width "t_load" in
      emit (Ir.Instr.Load { dst = t; arr; index });
      push pos (Ir.Instr.Var t)
    | Insn.Astore arr ->
      let d = find_array env pos arr in
      if d.Ir.Cdfg.is_const then reject pos (Const_store arr);
      let value = pop pos insn in
      let index = pop pos insn in
      emit (Ir.Instr.Store { arr; index; value })
    | Insn.Alu op ->
      let b = pop pos insn in
      let a = pop pos insn in
      let t = fresh env ~width:(alu_width op a b) "t" in
      emit (Ir.Instr.Bin { dst = t; op; a; b });
      push pos (Ir.Instr.Var t)
    | Insn.Mul ->
      let b = pop pos insn in
      let a = pop pos insn in
      let width = clamp_width (width_of_operand a + width_of_operand b) in
      let t = fresh env ~width "t_mul" in
      emit (Ir.Instr.Mul { dst = t; a; b });
      push pos (Ir.Instr.Var t)
    | Insn.Div ->
      let b = pop pos insn in
      let a = pop pos insn in
      let width = clamp_width (max (width_of_operand a) (width_of_operand b)) in
      let t = fresh env ~width "t_div" in
      emit (Ir.Instr.Div { dst = t; a; b });
      push pos (Ir.Instr.Var t)
    | Insn.Rem ->
      let b = pop pos insn in
      let a = pop pos insn in
      let width = clamp_width (max (width_of_operand a) (width_of_operand b)) in
      let t = fresh env ~width "t_rem" in
      emit (Ir.Instr.Rem { dst = t; a; b });
      push pos (Ir.Instr.Var t)
    | Insn.Un op ->
      let a = pop pos insn in
      let t = fresh env ~width:(un_width op a) ("t_" ^ Ir.Types.string_of_un_op op) in
      emit (Ir.Instr.Un { dst = t; op; a });
      push pos (Ir.Instr.Var t)
    | Insn.Select ->
      let if_false = pop pos insn in
      let if_true = pop pos insn in
      let cond = pop pos insn in
      let width = max (width_of_operand if_true) (width_of_operand if_false) in
      let t = fresh env ~width "t_sel" in
      emit (Ir.Instr.Select { dst = t; cond; if_true; if_false });
      push pos (Ir.Instr.Var t)
    | Insn.Dup ->
      let x = pop pos insn in
      push pos x;
      push pos x
    | Insn.Pop -> ignore (pop pos insn)
    | Insn.Swap ->
      let b = pop pos insn in
      let a = pop pos insn in
      push pos b;
      push pos a
    | Insn.Jmp l ->
      let target = canon_of_label env l in
      spill ();
      finish (Ir.Block.Jump target) [ (target, !depth, pos) ]
    | Insn.Brt l | Insn.Brf l ->
      let cond = protect_cond (pop pos insn) in
      let target = canon_of_label env l in
      let fall = next_label () in
      spill ();
      let if_true, if_false =
        match insn with Insn.Brt _ -> (target, fall) | _ -> (fall, target)
      in
      finish
        (Ir.Block.Branch { cond; if_true; if_false })
        [ (target, !depth, pos); (fall, !depth, pos) ]
    | Insn.Ret -> finish (Ir.Block.Return None) []
    | Insn.Retv ->
      let v = pop pos insn in
      finish (Ir.Block.Return (Some v)) []
  done;
  let term, succs =
    match !term with
    | Some t -> (t, !succs)
    | None ->
      (* the next instruction is a leader: synthesised fall-through *)
      let pos, _ = stream.insns.(hi - 1) in
      let fall = next_label () in
      spill ();
      (Ir.Block.Jump fall, [ (fall, !depth, pos) ])
  in
  (Ir.Block.make ~label ~instrs:(List.rev !instrs) ~term, succs)

let cdfg_exn (prog : Prog.t) =
  let stream = scan prog in
  let arrays = Hashtbl.create 8 in
  List.iter
    (fun (a : Prog.array_decl) ->
      Hashtbl.replace arrays a.aname
        {
          Ir.Cdfg.aname = a.aname;
          size = a.size;
          init = a.init;
          is_const = a.is_const;
          elem_width = a.elem_width;
        })
    prog.arrays;
  (* [stk_widths] sizes the stk_<j> registers; it starts empty (32-bit
     default) and grows to the widest operand any edge actually spills
     into each position, found by fixpoint over the (deterministic)
     lowering below *)
  let stk_widths = Hashtbl.create 8 in
  let build () =
    let env =
      {
        stream;
        arrays;
        locals = Hashtbl.create 16;
        local_order = [];
        next_var = 0;
        stk_vars = Hashtbl.create 8;
        stk_ids = Hashtbl.create 8;
        stk_widths;
        stk_observed = Hashtbl.create 8;
      }
    in
    let local_order =
      List.map
        (fun (l : Prog.local_decl) ->
          let v = fresh env ~width:l.lwidth l.lname in
          Hashtbl.replace env.locals l.lname v;
          v)
        prog.locals
    in
    let env = { env with local_order } in
    let nblocks = Array.length stream.leaders in
    let blocks = Array.make nblocks None in
    let depth_in = Array.make nblocks None in
    let block_of_canon = Hashtbl.create 16 in
    Array.iteri
      (fun k li -> Hashtbl.replace block_of_canon (Hashtbl.find stream.canon li) k)
      stream.leaders;
    let queue = Queue.create () in
    let schedule ~strict (label, depth, pos) =
      let k = Hashtbl.find block_of_canon label in
      match depth_in.(k) with
      | None ->
        depth_in.(k) <- Some depth;
        Queue.add (k, strict) queue
      | Some expected ->
        if strict && expected <> depth then
          reject pos (Stack_mismatch { label; expected; got = depth })
    in
    let drain () =
      while not (Queue.is_empty queue) do
        let k, strict = Queue.pop queue in
        if blocks.(k) = None then begin
          let entry_depth = Option.value depth_in.(k) ~default:0 in
          let block, succs = lower_block env ~block_id:k ~entry_depth ~strict in
          blocks.(k) <- Some block;
          List.iter (schedule ~strict) succs
        end
      done
    in
    schedule ~strict:true (Hashtbl.find stream.canon 0, 0, { Prog.line = 1; col = 1 });
    drain ();
    (* unreachable code is lowered too (with an empty entry stack) so the
       CDFG is complete; Passes.simplify_cfg deletes it when optimising *)
    for k = 0 to nblocks - 1 do
      if blocks.(k) = None then begin
        if depth_in.(k) = None then depth_in.(k) <- Some 0;
        Queue.add (k, false) queue;
        drain ()
      end
    done;
    (env, Array.to_list blocks |> List.map Option.get)
  in
  (* rebuild until the stk widths stop growing: widths are monotone and
     bounded by 64, so this terminates (one extra pass in practice, only
     when a >32-bit value crosses a block edge) *)
  let rec converge () =
    let env, blocks = build () in
    let grew = ref false in
    Hashtbl.iter
      (fun j w ->
        let cur = Option.value (Hashtbl.find_opt stk_widths j) ~default:32 in
        if w > cur then begin
          Hashtbl.replace stk_widths j w;
          grew := true
        end)
      env.stk_observed;
    if !grew then converge () else (env, blocks)
  in
  let env, blocks = converge () in
  (* if instruction 0 is a branch target, the local zero-init goes in a
     synthetic entry block so the back edge cannot re-execute it *)
  let blocks =
    match stream.entry with
    | None -> blocks
    | Some label ->
      let instrs =
        List.map
          (fun v -> Ir.Instr.Mov { dst = v; src = Ir.Instr.Imm 0 })
          env.local_order
      in
      Ir.Block.make ~label ~instrs ~term:(Ir.Block.Jump (Hashtbl.find stream.canon 0))
      :: blocks
  in
  let cfg = Ir.Cfg.of_blocks blocks in
  Ir.Cdfg.make ~name:prog.name
    ~arrays:(List.map (fun (a : Prog.array_decl) -> Hashtbl.find arrays a.aname) prog.arrays)
    cfg

let cdfg prog = try Ok (cdfg_exn prog) with Reject d -> Error d
