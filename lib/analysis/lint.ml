module Ast = Hypar_minic.Ast
module Token = Hypar_minic.Token

type code =
  | Unused_variable
  | Unused_parameter
  | Dead_assignment
  | Unreachable_code
  | Constant_condition
  | Division_by_zero
  | Shift_out_of_range
  | Width_overflow
  | Induction_write

let all_codes =
  [
    Unused_variable; Unused_parameter; Dead_assignment; Unreachable_code;
    Constant_condition; Division_by_zero; Shift_out_of_range; Width_overflow;
    Induction_write;
  ]

let code_id = function
  | Unused_variable -> "W001"
  | Unused_parameter -> "W002"
  | Dead_assignment -> "W003"
  | Unreachable_code -> "W004"
  | Constant_condition -> "W005"
  | Division_by_zero -> "W006"
  | Shift_out_of_range -> "W007"
  | Width_overflow -> "W008"
  | Induction_write -> "W009"

let code_mnemonic = function
  | Unused_variable -> "unused-variable"
  | Unused_parameter -> "unused-parameter"
  | Dead_assignment -> "dead-assignment"
  | Unreachable_code -> "unreachable-code"
  | Constant_condition -> "constant-condition"
  | Division_by_zero -> "possible-div-by-zero"
  | Shift_out_of_range -> "shift-out-of-range"
  | Width_overflow -> "width-overflow"
  | Induction_write -> "induction-write"

let code_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun c ->
      String.lowercase_ascii (code_id c) = s || code_mnemonic c = s)
    all_codes

type diagnostic = { code : code; line : int; col : int; message : string }

let diag code (pos : Token.pos) fmt =
  Format.kasprintf
    (fun message -> { code; line = pos.line; col = pos.col; message })
    fmt

let sort_diags ds =
  List.sort_uniq
    (fun a b ->
      compare
        (a.line, a.col, code_id a.code, a.message)
        (b.line, b.col, code_id b.code, b.message))
    ds

(* --- AST walking helpers ------------------------------------------------ *)

let rec expr_reads acc (e : Ast.expr) =
  match e.desc with
  | Ast.Num _ -> acc
  | Ast.Ident x -> x :: acc
  | Ast.Index (_, i) -> expr_reads acc i
  | Ast.Call (_, args) -> List.fold_left expr_reads acc args
  | Ast.Unary (_, a) -> expr_reads acc a
  | Ast.Binary (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ast.Ternary (c, t, f) -> expr_reads (expr_reads (expr_reads acc c) t) f

let rec expr_arrays acc (e : Ast.expr) =
  match e.desc with
  | Ast.Num _ | Ast.Ident _ -> acc
  | Ast.Index (arr, i) -> expr_arrays (arr :: acc) i
  | Ast.Call (_, args) -> List.fold_left expr_arrays acc args
  | Ast.Unary (_, a) -> expr_arrays acc a
  | Ast.Binary (_, a, b) -> expr_arrays (expr_arrays acc a) b
  | Ast.Ternary (c, t, f) -> expr_arrays (expr_arrays (expr_arrays acc c) t) f

(* shallow: the expressions a statement itself evaluates *)
let stmt_exprs (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl { init; _ } -> Option.to_list init
  | Ast.Assign { value; _ } -> [ value ]
  | Ast.Array_assign { index; value; _ } -> [ index; value ]
  | Ast.If { cond; _ } -> [ cond ]
  | Ast.While { cond; _ } | Ast.Do_while { cond; _ } -> [ cond ]
  | Ast.For { cond; _ } -> Option.to_list cond
  | Ast.Return e -> Option.to_list e
  | Ast.Expr_stmt e -> [ e ]
  | Ast.Block _ -> []

(* every statement, in source order, including nested ones *)
let rec iter_stmts f stmts = List.iter (iter_stmt f) stmts

and iter_stmt f (s : Ast.stmt) =
  f s;
  match s.sdesc with
  | Ast.If { then_branch; else_branch; _ } ->
    iter_stmts f then_branch;
    iter_stmts f else_branch
  | Ast.While { body; _ } | Ast.Do_while { body; _ } -> iter_stmts f body
  | Ast.For { init; step; body; _ } ->
    Option.iter (iter_stmt f) init;
    Option.iter (iter_stmt f) step;
    iter_stmts f body
  | Ast.Block body -> iter_stmts f body
  | Ast.Decl _ | Ast.Assign _ | Ast.Array_assign _ | Ast.Return _
  | Ast.Expr_stmt _ ->
    ()

let rec iter_exprs f (e : Ast.expr) =
  f e;
  match e.desc with
  | Ast.Num _ | Ast.Ident _ -> ()
  | Ast.Index (_, i) -> iter_exprs f i
  | Ast.Call (_, args) -> List.iter (iter_exprs f) args
  | Ast.Unary (_, a) -> iter_exprs f a
  | Ast.Binary (_, a, b) ->
    iter_exprs f a;
    iter_exprs f b
  | Ast.Ternary (c, t, f') ->
    iter_exprs f c;
    iter_exprs f t;
    iter_exprs f f'

(* --- constant folding over expressions ---------------------------------- *)

let eval_const_binop (op : Ast.binop) x y =
  let bool b = if b then 1 else 0 in
  match op with
  | Ast.Add -> Some (x + y)
  | Ast.Sub -> Some (x - y)
  | Ast.Mul -> Some (x * y)
  | Ast.Div -> if y = 0 then None else Some (x / y)
  | Ast.Mod -> if y = 0 then None else Some (x mod y)
  | Ast.Band -> Some (x land y)
  | Ast.Bor -> Some (x lor y)
  | Ast.Bxor -> Some (x lxor y)
  | Ast.Shl -> if y < 0 || y > 62 then None else Some (x lsl y)
  | Ast.Shr -> if y < 0 || y > 62 then None else Some (x asr y)
  | Ast.Lt -> Some (bool (x < y))
  | Ast.Le -> Some (bool (x <= y))
  | Ast.Gt -> Some (bool (x > y))
  | Ast.Ge -> Some (bool (x >= y))
  | Ast.Eq -> Some (bool (x = y))
  | Ast.Ne -> Some (bool (x <> y))
  | Ast.Land -> Some (bool (x <> 0 && y <> 0))
  | Ast.Lor -> Some (bool (x <> 0 || y <> 0))

let rec const_value (e : Ast.expr) =
  match e.desc with
  | Ast.Num n -> Some n
  | Ast.Unary (Ast.Neg, a) -> Option.map (fun n -> -n) (const_value a)
  | Ast.Unary (Ast.Lognot, a) ->
    Option.map (fun n -> if n = 0 then 1 else 0) (const_value a)
  | Ast.Unary (Ast.Bitnot, a) -> Option.map lnot (const_value a)
  | Ast.Binary (op, a, b) -> (
    match (const_value a, const_value b) with
    | Some x, Some y -> eval_const_binop op x y
    | (Some _ | None), (Some _ | None) -> None)
  | Ast.Ternary (c, t, f) -> (
    match const_value c with
    | Some n -> const_value (if n <> 0 then t else f)
    | None -> None)
  | Ast.Ident _ | Ast.Index _ | Ast.Call _ -> None

(* --- W001 / W002: unused variables and parameters ------------------------ *)

let reads_of_func (f : Ast.func) =
  let reads : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let arrays : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  iter_stmts
    (fun s ->
      List.iter
        (fun e ->
          List.iter (fun x -> Hashtbl.replace reads x ()) (expr_reads [] e);
          List.iter (fun a -> Hashtbl.replace arrays a ()) (expr_arrays [] e))
        (stmt_exprs s);
      match s.sdesc with
      | Ast.Array_assign { arr; _ } -> Hashtbl.replace arrays arr ()
      | _ -> ())
    f.body;
  (reads, arrays)

let unused_rules (f : Ast.func) =
  let reads, arrays = reads_of_func f in
  let diags = ref [] in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Ast.Decl { name; _ } when not (Hashtbl.mem reads name) ->
        diags :=
          diag Unused_variable s.spos "variable %S is never read" name :: !diags
      | _ -> ())
    f.body;
  List.iter
    (fun p ->
      match p with
      | Ast.Scalar_param { pname; _ } when not (Hashtbl.mem reads pname) ->
        diags :=
          diag Unused_parameter f.fpos "parameter %S of %S is never read" pname
            f.fname
          :: !diags
      | Ast.Array_param { pname; _ }
        when (not (Hashtbl.mem arrays pname)) && not (Hashtbl.mem reads pname) ->
        diags :=
          diag Unused_parameter f.fpos "array parameter %S of %S is never used"
            pname f.fname
          :: !diags
      | Ast.Scalar_param _ | Ast.Array_param _ -> ())
    f.params;
  !diags

(* --- W003: assignments never read ---------------------------------------- *)

let dead_assignment_rules (f : Ast.func) =
  let diags = ref [] in
  let locals : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Ast.Decl { name; _ } -> Hashtbl.replace locals name ()
      | _ -> ())
    f.body;
  let report (pos : Token.pos) name =
    diags :=
      diag Dead_assignment pos "value assigned to %S is never read" name
      :: !diags
  in
  (* names read or written anywhere inside a compound statement: its entry
     invalidates what we know about them on the straight-line path *)
  let mentioned stmts =
    let acc : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    iter_stmts
      (fun s ->
        List.iter
          (fun e ->
            List.iter (fun x -> Hashtbl.replace acc x ()) (expr_reads [] e))
          (stmt_exprs s);
        match s.sdesc with
        | Ast.Assign { name; _ } | Ast.Decl { name; _ } ->
          Hashtbl.replace acc name ()
        | _ -> ())
      stmts;
    acc
  in
  let rec scan_list pending stmts = List.iter (scan pending) stmts
  and scan (pending : (string, Token.pos) Hashtbl.t) (s : Ast.stmt) =
    let clear_reads e =
      List.iter (Hashtbl.remove pending) (expr_reads [] e)
    in
    let enter_compound nested =
      Hashtbl.iter (fun n () -> Hashtbl.remove pending n) (mentioned nested);
      (* a fresh table per branch: overwrites inside it are still caught,
         without leaking branch-local state onto the fall-through path *)
      scan_list (Hashtbl.create 16) nested
    in
    match s.sdesc with
    | Ast.Decl { name; init; _ } -> (
      match init with
      | Some e ->
        clear_reads e;
        (match Hashtbl.find_opt pending name with
        | Some pos -> report pos name
        | None -> ());
        Hashtbl.replace pending name s.spos
      | None -> Hashtbl.remove pending name)
    | Ast.Assign { name; value } ->
      clear_reads value;
      (match Hashtbl.find_opt pending name with
      | Some pos -> report pos name
      | None -> ());
      Hashtbl.replace pending name s.spos
    | Ast.Array_assign { index; value; _ } ->
      clear_reads index;
      clear_reads value
    | Ast.Expr_stmt e -> clear_reads e
    | Ast.Return (Some e) -> clear_reads e
    | Ast.Return None -> ()
    | Ast.Block body -> scan_list pending body
    | Ast.If { cond; then_branch; else_branch } ->
      clear_reads cond;
      enter_compound (then_branch @ else_branch)
    | Ast.While { cond; body } ->
      clear_reads cond;
      enter_compound body
    | Ast.Do_while { body; cond } ->
      clear_reads cond;
      enter_compound body
    | Ast.For { init; cond; step; body } ->
      Option.iter (scan pending) init;
      Option.iter clear_reads cond;
      enter_compound (body @ Option.to_list step)
  in
  let top : (string, Token.pos) Hashtbl.t = Hashtbl.create 16 in
  scan_list top f.body;
  (* a value still pending at the end of the function is dead (scalars do
     not outlive main) — but only blame locals, not params or globals *)
  Hashtbl.iter (fun name pos -> if Hashtbl.mem locals name then report pos name) top;
  !diags

(* --- W004 / W005: unreachable code and constant conditions ---------------- *)

let describe_const n = if n <> 0 then "true" else "false"

let constant_condition_rules (f : Ast.func) =
  let diags = ref [] in
  let check_cond (e : Ast.expr) =
    match const_value e with
    | Some n ->
      diags :=
        diag Constant_condition e.epos "condition is always %s"
          (describe_const n)
        :: !diags
    | None -> ()
  in
  iter_stmts
    (fun s ->
      (match s.sdesc with
      | Ast.If { cond; _ } | Ast.While { cond; _ } | Ast.Do_while { cond; _ } ->
        check_cond cond
      | Ast.For { cond = Some cond; _ } -> check_cond cond
      | _ -> ());
      List.iter
        (iter_exprs (fun e ->
             match e.desc with
             | Ast.Ternary (c, _, _) -> check_cond c
             | _ -> ()))
        (stmt_exprs s))
    f.body;
  !diags

let unreachable_rules (f : Ast.func) =
  let diags = ref [] in
  let report (pos : Token.pos) why =
    diags := diag Unreachable_code pos "statement is unreachable (%s)" why :: !diags
  in
  (* does control never continue past this statement? (Mini-C has no
     break: a constant-true loop condition means the loop never exits,
     and a return leaves the function) *)
  let terminal (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Return _ -> Some "follows a return"
    | Ast.While { cond; _ } -> (
      match const_value cond with
      | Some n when n <> 0 -> Some "follows an infinite loop"
      | Some _ | None -> None)
    | Ast.For { cond = None; _ } -> Some "follows an infinite loop"
    | Ast.For { cond = Some c; _ } -> (
      match const_value c with
      | Some n when n <> 0 -> Some "follows an infinite loop"
      | Some _ | None -> None)
    | _ -> None
  in
  let rec scan_list stmts =
    match stmts with
    | [] -> ()
    | s :: rest -> (
      recurse s;
      match (terminal s, rest) with
      | Some why, next :: _ ->
        report next.Ast.spos why;
        (* one report per dead tail; still lint inside it *)
        List.iter recurse rest
      | (Some _ | None), _ -> scan_list rest)
  and recurse (s : Ast.stmt) =
    match s.sdesc with
    | Ast.If { cond; then_branch; else_branch } ->
      (match const_value cond with
      | Some 0 -> (
        match then_branch with
        | s0 :: _ -> report s0.Ast.spos "condition is always false"
        | [] -> ())
      | Some _ -> (
        match else_branch with
        | s0 :: _ -> report s0.Ast.spos "condition is always true"
        | [] -> ())
      | None -> ());
      scan_list then_branch;
      scan_list else_branch
    | Ast.While { cond; body } ->
      (match const_value cond with
      | Some 0 -> (
        match body with
        | s0 :: _ -> report s0.Ast.spos "loop condition is always false"
        | [] -> ())
      | Some _ | None -> ());
      scan_list body
    | Ast.For { cond; body; init; step } ->
      (match cond with
      | Some c -> (
        match const_value c with
        | Some 0 -> (
          match body with
          | s0 :: _ -> report s0.Ast.spos "loop condition is always false"
          | [] -> ())
        | Some _ | None -> ())
      | None -> ());
      Option.iter recurse init;
      Option.iter recurse step;
      scan_list body
    | Ast.Do_while { body; _ } -> scan_list body
    | Ast.Block body -> scan_list body
    | Ast.Decl _ | Ast.Assign _ | Ast.Array_assign _ | Ast.Return _
    | Ast.Expr_stmt _ ->
      ()
  in
  scan_list f.body;
  !diags

(* --- W009: writes to a loop induction variable ---------------------------- *)

let induction_write_rules (f : Ast.func) =
  let diags = ref [] in
  let rec scan stmts = List.iter scan_stmt stmts
  and scan_stmt (s : Ast.stmt) =
    match s.sdesc with
    | Ast.For { init; step; body; _ } ->
      (match step with
      | Some { Ast.sdesc = Ast.Assign { name; _ }; _ } ->
        iter_stmts
          (fun inner ->
            match inner.Ast.sdesc with
            | Ast.Assign { name = n; _ } when n = name ->
              diags :=
                diag Induction_write inner.Ast.spos
                  "loop induction variable %S is written inside the loop body"
                  name
                :: !diags
            | _ -> ())
          body
      | Some _ | None -> ());
      Option.iter scan_stmt init;
      scan body
    | Ast.If { then_branch; else_branch; _ } ->
      scan then_branch;
      scan else_branch
    | Ast.While { body; _ } | Ast.Do_while { body; _ } -> scan body
    | Ast.Block body -> scan body
    | Ast.Decl _ | Ast.Assign _ | Ast.Array_assign _ | Ast.Return _
    | Ast.Expr_stmt _ ->
      ()
  in
  scan f.body;
  !diags

(* --- the syntactic rule set ---------------------------------------------- *)

let check_ast (prog : Ast.program) =
  sort_diags
    (List.concat_map
       (fun f ->
         List.concat
           [
             unused_rules f;
             dead_assignment_rules f;
             constant_condition_rules f;
             unreachable_rules f;
             induction_write_rules f;
           ])
       prog.funcs)

(* --- range-powered rules (W006-W008) -------------------------------------- *)

(* the inliner renames copied locals to name__N; recover the source name *)
let strip_inline_suffix name =
  let len = String.length name in
  let is_digit c = c >= '0' && c <= '9' in
  let rec all_digits i =
    if i >= len then true else is_digit name.[i] && all_digits (i + 1)
  in
  let rec find p =
    if p < 1 then name
    else if
      name.[p - 1] = '_' && name.[p] = '_' && p + 1 < len && all_digits (p + 1)
    then String.sub name 0 (p - 1)
    else find (p - 1)
  in
  if len < 4 then name else find (len - 2)

type range_env = {
  vars : (string, Range.interval) Hashtbl.t;  (* source name -> range *)
  widths : (string, int) Hashtbl.t;  (* declared scalar widths *)
  elem_widths : (string, int) Hashtbl.t;  (* array element widths *)
}

let build_range_env (prog : Ast.program) cdfg =
  let vars = Hashtbl.create 64 in
  List.iter
    (fun (r : Range.report) ->
      let base = strip_inline_suffix r.var.vname in
      let range =
        match Hashtbl.find_opt vars base with
        | Some prev -> Range.join prev r.range
        | None -> r.range
      in
      Hashtbl.replace vars base range)
    (Range.analyse cdfg);
  let widths = Hashtbl.create 32 in
  let elem_widths = Hashtbl.create 8 in
  List.iter
    (fun g ->
      match g with
      | Ast.Global_scalar { gname; gwidth; _ } ->
        Hashtbl.replace widths gname gwidth
      | Ast.Global_array { gname; gelem_width; _ } ->
        Hashtbl.replace elem_widths gname gelem_width)
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (fun p ->
          match p with
          | Ast.Scalar_param { pname; pwidth } ->
            Hashtbl.replace widths pname pwidth
          | Ast.Array_param { pname; pelem_width } ->
            Hashtbl.replace elem_widths pname pelem_width)
        f.params;
      iter_stmts
        (fun s ->
          match s.Ast.sdesc with
          | Ast.Decl { name; width; _ } -> Hashtbl.replace widths name width
          | _ -> ())
        f.body)
    prog.funcs;
  ignore cdfg;
  { vars; widths; elem_widths }

let bool_interval = Range.join (Range.const 0) (Range.const 1)

let rec eval_interval env (e : Ast.expr) : Range.interval =
  match e.desc with
  | Ast.Num n -> Range.const n
  | Ast.Ident x -> (
    match Hashtbl.find_opt env.vars x with
    | Some i -> i
    | None -> (
      match Hashtbl.find_opt env.widths x with
      | Some w -> Range.width_range w
      | None -> Range.top))
  | Ast.Index (arr, _) -> (
    match Hashtbl.find_opt env.elem_widths arr with
    | Some w -> Range.width_range w
    | None -> Range.top)
  | Ast.Call (("min" | "max"), [ a; b ]) ->
    Range.join (eval_interval env a) (eval_interval env b)
  | Ast.Call ("abs", [ a ]) ->
    let i = eval_interval env a in
    Range.join (Range.const 0) (Range.join i (Range.neg i))
  | Ast.Call _ -> Range.top
  | Ast.Unary (Ast.Neg, a) -> Range.neg (eval_interval env a)
  | Ast.Unary (Ast.Bitnot, a) ->
    Range.sub (Range.const (-1)) (eval_interval env a)
  | Ast.Unary (Ast.Lognot, _) -> bool_interval
  | Ast.Ternary (_, t, f) ->
    Range.join (eval_interval env t) (eval_interval env f)
  | Ast.Binary (op, a, b) -> (
    let ia = eval_interval env a and ib = eval_interval env b in
    let open Range in
    match op with
    | Ast.Add -> add ia ib
    | Ast.Sub -> sub ia ib
    | Ast.Mul -> mul ia ib
    | Ast.Div | Ast.Mod ->
      (* magnitude can only shrink; result may be any sign and zero *)
      join (const 0) (join ia (neg ia))
    | Ast.Band ->
      if ia.lo >= 0 && ib.lo >= 0 then { lo = 0; hi = min ia.hi ib.hi }
      else if ia.lo >= 0 then { lo = 0; hi = ia.hi }
      else if ib.lo >= 0 then { lo = 0; hi = ib.hi }
      else top
    | Ast.Bor | Ast.Bxor ->
      if ia.lo >= 0 && ib.lo >= 0 then
        (* no result bit above the operands' highest bit *)
        let m = mul (const 2) (join ia ib) in
        { lo = 0; hi = m.hi }
      else top
    | Ast.Shl ->
      if ib.lo >= 0 && ib.hi <= 45 then
        mul ia { lo = 1 lsl ib.lo; hi = 1 lsl ib.hi }
      else top
    | Ast.Shr ->
      if ia.lo >= 0 && ib.lo >= 0 && ib.lo <= 62 then
        { lo = 0; hi = ia.hi asr ib.lo }
      else top
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land
    | Ast.Lor ->
      bool_interval)

let binop_symbol = function
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | _ -> "?"

let interval_rules env (f : Ast.func) =
  let diags = ref [] in
  let on_expr (e : Ast.expr) =
    match e.desc with
    | Ast.Binary ((Ast.Div | Ast.Mod) as op, _, rhs) ->
      let i = eval_interval env rhs in
      if Range.contains i 0 then
        diags :=
          (if i.Range.lo = 0 && i.Range.hi = 0 then
             diag Division_by_zero e.epos
               "right operand of '%s' is always zero" (binop_symbol op)
           else
             diag Division_by_zero e.epos
               "right operand of '%s' may be zero (range [%d, %d])"
               (binop_symbol op) i.Range.lo i.Range.hi)
          :: !diags
    | Ast.Binary ((Ast.Shl | Ast.Shr) as op, _, rhs) ->
      let i = eval_interval env rhs in
      if i.Range.lo < 0 || i.Range.hi > 31 then
        diags :=
          diag Shift_out_of_range e.epos
            "shift amount of '%s' may be outside 0..31 (range [%d, %d])"
            (binop_symbol op) i.Range.lo i.Range.hi
          :: !diags
    | _ -> ()
  in
  iter_stmts
    (fun s -> List.iter (iter_exprs on_expr) (stmt_exprs s))
    f.body;
  !diags

let width_overflow_rules (prog : Ast.program) cdfg =
  (* first declaration position of each source-level scalar *)
  let decl_pos : (string, Token.pos) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (fun p ->
          match p with
          | Ast.Scalar_param { pname; _ } ->
            if not (Hashtbl.mem decl_pos pname) then
              Hashtbl.replace decl_pos pname f.fpos
          | Ast.Array_param _ -> ())
        f.params;
      iter_stmts
        (fun s ->
          match s.Ast.sdesc with
          | Ast.Decl { name; _ } ->
            if not (Hashtbl.mem decl_pos name) then
              Hashtbl.replace decl_pos name s.Ast.spos
          | _ -> ())
        f.body)
    prog.funcs;
  let global_names =
    List.filter_map
      (function
        | Ast.Global_scalar { gname; _ } -> Some gname
        | Ast.Global_array _ -> None)
      prog.globals
  in
  (* group overflow reports by source name, join their ranges *)
  let grouped : (string, Range.report) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Range.report) ->
      let base = strip_inline_suffix r.var.vname in
      if Hashtbl.mem decl_pos base || List.mem base global_names then
        match Hashtbl.find_opt grouped base with
        | Some prev ->
          Hashtbl.replace grouped base
            { prev with Range.range = Range.join prev.Range.range r.Range.range }
        | None -> Hashtbl.replace grouped base r)
    (Range.overflow_risks cdfg);
  Hashtbl.fold
    (fun base (r : Range.report) acc ->
      let pos =
        match Hashtbl.find_opt decl_pos base with
        | Some p -> p
        | None -> { Token.line = 0; col = 0 }
      in
      diag Width_overflow pos
        "%S (width %d) may overflow: inferred range [%d, %d] exceeds [%d, %d]"
        base r.var.vwidth r.range.Range.lo r.range.Range.hi
        r.declared.Range.lo r.declared.Range.hi
      :: acc)
    grouped []

let range_rules (prog : Ast.program) cdfg =
  let env = build_range_env prog cdfg in
  List.concat_map (interval_rules env) prog.funcs
  @ width_overflow_rules prog cdfg

(* --- entry points --------------------------------------------------------- *)

let check ?(name = "program") src =
  match Hypar_minic.Parser.parse_program src with
  | exception Hypar_minic.Lexer.Error { pos; msg } ->
    Error (Printf.sprintf "%d:%d: %s" pos.line pos.col msg)
  | exception Hypar_minic.Parser.Error { pos; msg } ->
    Error (Printf.sprintf "%d:%d: %s" pos.line pos.col msg)
  | ast ->
    let syntactic = check_ast ast in
    let ranged =
      (* the range rules need a semantically valid program; skip them on
         programs that only parse *)
      match
        Hypar_minic.Driver.compile ~name ~simplify:false ~verify_ir:false src
      with
      | Ok cdfg -> range_rules ast cdfg
      | Error _ | (exception _) -> []
    in
    Ok (sort_diags (syntactic @ ranged))

let pp_diagnostic ppf d =
  Format.fprintf ppf "%d:%d: warning %s [%s]: %s" d.line d.col (code_id d.code)
    (code_mnemonic d.code) d.message

let render ?(file = "<source>") ds =
  String.concat ""
    (List.map (fun d -> Format.asprintf "%s:%a\n" file pp_diagnostic d) ds)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ?(file = "<source>") ds =
  let entry d =
    Printf.sprintf
      "    {\"code\": %S, \"name\": %S, \"line\": %d, \"col\": %d, \
       \"message\": \"%s\"}"
      (code_id d.code) (code_mnemonic d.code) d.line d.col
      (json_escape d.message)
  in
  Printf.sprintf
    "{\n  \"file\": \"%s\",\n  \"count\": %d,\n  \"diagnostics\": [\n%s\n  ]\n}\n"
    (json_escape file) (List.length ds)
    (String.concat ",\n" (List.map entry ds))
