module Ir = Hypar_ir

type interval = { lo : int; hi : int }

(* bounds kept well inside native ints so interval arithmetic cannot
   overflow (|bound| <= 2^45, products of clamped operands <= 2^62) *)
let limit = 1 lsl 45

let clamp v = if v > limit then limit else if v < -limit then -limit else v

let top = { lo = -limit; hi = limit }

let make lo hi = { lo = clamp lo; hi = clamp hi }

let width_range w =
  (* width-1 registers are comparison flags: unsigned 0/1 *)
  if w <= 1 then { lo = 0; hi = 1 }
  else
    let w = if w > 45 then 45 else w in
    { lo = -(1 lsl (w - 1)); hi = (1 lsl (w - 1)) - 1 }

let join a b = make (min a.lo b.lo) (max a.hi b.hi)

let const n = make n n

let add a b = make (a.lo + b.lo) (a.hi + b.hi)
let sub a b = make (a.lo - b.hi) (a.hi - b.lo)
let neg a = make (-a.hi) (-a.lo)

let mul a b =
  (* clamp operands first so products stay in range *)
  let a = make a.lo a.hi and b = make b.lo b.hi in
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi and p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  make (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))

let abs_iv a =
  if a.lo >= 0 then a
  else if a.hi <= 0 then neg a
  else make 0 (max (-a.lo) a.hi)

(* next power of two at or above n (n >= 0) *)
let next_pow2 n =
  let rec go p = if p > n then p else go (p * 2) in
  if n >= limit then limit else go 1

let bitwise_or_xor a b =
  (* both operands in [0, m]: no result bit above next_pow2(m) *)
  if a.lo >= 0 && b.lo >= 0 then make 0 (next_pow2 (max a.hi b.hi) - 1)
  else top

let bitwise_and a b =
  if a.lo >= 0 && b.lo >= 0 then make 0 (min a.hi b.hi)
  else if a.lo >= 0 then make 0 a.hi
  else if b.lo >= 0 then make 0 b.hi
  else top

let shift_left a b =
  if b.lo < 0 || b.hi > 45 then top
  else mul a (make (1 lsl b.lo) (1 lsl b.hi))

let shift_right_arith a b =
  if b.lo < 0 || b.hi > 62 then top
  else make (a.lo asr b.lo) (a.hi asr b.lo)

let shift_right_logical a b =
  if a.lo < 0 then top
  else if b.lo < 0 then top
  else make 0 (a.hi asr b.lo)

let contains i n = i.lo <= n && n <= i.hi

let compare_result = make 0 1

let eval_bin (op : Ir.Types.alu_op) a b =
  match op with
  | Ir.Types.Add -> add a b
  | Ir.Types.Sub -> sub a b
  | Ir.Types.And -> bitwise_and a b
  | Ir.Types.Or | Ir.Types.Xor -> bitwise_or_xor a b
  | Ir.Types.Shl -> shift_left a b
  | Ir.Types.Shr -> shift_right_logical a b
  | Ir.Types.Ashr -> shift_right_arith a b
  | Ir.Types.Lt | Ir.Types.Le | Ir.Types.Eq | Ir.Types.Ne | Ir.Types.Gt
  | Ir.Types.Ge ->
    compare_result
  | Ir.Types.Min -> make (min a.lo b.lo) (min a.hi b.hi)
  | Ir.Types.Max -> make (max a.lo b.lo) (max a.hi b.hi)

let eval_un (op : Ir.Types.un_op) a =
  match op with
  | Ir.Types.Neg -> neg a
  | Ir.Types.Not -> sub (const (-1)) a
  | Ir.Types.Abs -> abs_iv a

let div_iv a b =
  (* magnitude can only shrink (|divisor| >= 1) *)
  let m = max (abs a.lo) (abs a.hi) in
  ignore b;
  make (-m) m

type report = {
  var : Ir.Instr.var;
  range : interval;
  declared : interval;
  fits : bool;
}

(* Rotated-loop counter caps: for a self-looping block B entered only
   under a guard/latch condition [i < k] (or [<=]), the increment
   [i' = i + s] inside B can never produce more than [k - 1 + s]
   ([k + s] for [<=]).  This recovers the precision a flow-insensitive
   fixpoint loses on loop counters, soundly: the cap constrains the
   *increment instruction's result*, which only executes after the entry
   test. *)
let counter_caps cdfg =
  let cfg = Ir.Cdfg.cfg cdfg in
  let caps : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let entry_bound (b : Ir.Block.t) target_label =
    match b.Ir.Block.term with
    | Ir.Block.Branch { cond = Ir.Instr.Var c; if_true; _ }
      when if_true = target_label -> (
      let def =
        List.find_opt
          (fun instr ->
            match Ir.Instr.def instr with
            | Some d -> Ir.Instr.var_equal d c
            | None -> false)
          b.Ir.Block.instrs
      in
      match def with
      | Some (Ir.Instr.Bin { op = Ir.Types.Lt; a = Ir.Instr.Var i; b = Ir.Instr.Imm k; _ })
        ->
        Some (i.Ir.Instr.vid, k - 1)
      | Some (Ir.Instr.Bin { op = Ir.Types.Le; a = Ir.Instr.Var i; b = Ir.Instr.Imm k; _ })
        ->
        Some (i.Ir.Instr.vid, k)
      | _ -> None)
    | Ir.Block.Branch _ | Ir.Block.Jump _ | Ir.Block.Return _ -> None
  in
  List.iter
    (fun (l : Ir.Loop.t) ->
      let header = l.Ir.Loop.header in
      let header_label = (Ir.Cfg.block cfg header).Ir.Block.label in
      let bounds =
        List.map
          (fun p -> entry_bound (Ir.Cfg.block cfg p) header_label)
          (Ir.Cfg.predecessors cfg header)
      in
      let conditional = List.filter_map Fun.id bounds in
      match conditional with
      | (vid0, b0) :: rest when List.for_all (fun (v, _) -> v = vid0) rest ->
        let entry_hi =
          List.fold_left (fun acc (_, b) -> max acc b) b0 rest
        in
        (* an entry edge without a condition is fine when that block's
           last write to the counter is a constant within the bound
           (constant-folded guards leave exactly this shape) *)
        let unconditional_ok =
          List.for_all2
            (fun p bound ->
              match bound with
              | Some _ -> true
              | None ->
                let last_def = ref None in
                List.iter
                  (fun instr ->
                    match Ir.Instr.def instr with
                    | Some d when d.Ir.Instr.vid = vid0 -> last_def := Some instr
                    | Some _ | None -> ())
                  (Ir.Cfg.block cfg p).Ir.Block.instrs;
                (match !last_def with
                | Some (Ir.Instr.Mov { src = Ir.Instr.Imm c; _ }) -> c <= entry_hi
                | _ -> false))
            (Ir.Cfg.predecessors cfg header)
            bounds
        in
        if not unconditional_ok then ()
        else
        (* the counter must have exactly one definition inside the loop:
           its positive constant-step increment *)
        let defs = ref [] in
        List.iter
          (fun bi ->
            List.iteri
              (fun idx instr ->
                match Ir.Instr.def instr with
                | Some d when d.Ir.Instr.vid = vid0 ->
                  defs := (bi, idx, instr) :: !defs
                | Some _ | None -> ())
              (Ir.Cfg.block cfg bi).Ir.Block.instrs)
          l.Ir.Loop.body;
        (match !defs with
        | [ (bi, idx,
             Ir.Instr.Bin
               { op = Ir.Types.Add; a = Ir.Instr.Var i; b = Ir.Instr.Imm st; _ }) ]
          when i.Ir.Instr.vid = vid0 && st > 0 ->
          Hashtbl.replace caps (bi, idx) (entry_hi + st)
        | _ -> ())
      | _ -> ())
    (Ir.Loop.find cfg);
  caps

(* flow-insensitive per-array content range *)
let array_ranges cdfg =
  let tbl : (string, interval) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Ir.Cdfg.array_decl) ->
      let base =
        match (d.is_const, d.init) with
        | true, Some init ->
          Array.fold_left (fun acc v -> join acc (const v)) (const init.(0)) init
        | _ -> width_range d.elem_width
      in
      Hashtbl.replace tbl d.aname base)
    (Ir.Cdfg.arrays cdfg);
  tbl

let analyse cdfg =
  let cfg = Ir.Cdfg.cfg cdfg in
  let n = Ir.Cfg.block_count cfg in
  let arrays = array_ranges cdfg in
  (* global (flow-insensitive across blocks, flow-sensitive inside) var
     environment with widening after repeated growth *)
  let env : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let grow_count : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let vars : (int, Ir.Instr.var) Hashtbl.t = Hashtbl.create 64 in
  let read = function
    | Ir.Instr.Imm k -> const k
    | Ir.Instr.Var v -> (
      match Hashtbl.find_opt env v.vid with Some i -> i | None -> width_range v.vwidth)
  in
  let write ?cap (v : Ir.Instr.var) range =
    Hashtbl.replace vars v.vid v;
    let old = Hashtbl.find_opt env v.vid in
    let merged = match old with Some o -> join o range | None -> range in
    let changed =
      match old with Some o -> merged.lo < o.lo || merged.hi > o.hi | None -> true
    in
    if changed then begin
      let g = 1 + Option.value (Hashtbl.find_opt grow_count v.vid) ~default:0 in
      Hashtbl.replace grow_count v.vid g;
      (* directional widening after a few rounds of growth: only the
         bound that keeps moving is blown up *)
      let final =
        if g > 4 then
          match old with
          | Some o ->
            {
              lo = (if merged.lo < o.lo then -limit else o.lo);
              hi = (if merged.hi > o.hi then limit else o.hi);
            }
          | None -> merged
        else merged
      in
      (* loop-counter caps survive widening *)
      let final =
        match cap with
        | Some c -> { final with hi = min final.hi c }
        | None -> final
      in
      let actually_changed =
        match old with
        | Some o -> final.lo < o.lo || final.hi > o.hi
        | None -> true
      in
      if actually_changed then begin
        Hashtbl.replace env v.vid final;
        true
      end
      else false
    end
    else false
  in
  let caps = counter_caps cdfg in
  let transfer_instr changed block_id idx (instr : Ir.Instr.t) =
    let cap = Hashtbl.find_opt caps (block_id, idx) in
    let upd ?cap v range = if write ?cap v range then changed := true in
    match instr with
    | Ir.Instr.Bin { dst; op; a; b } ->
      upd ?cap dst (eval_bin op (read a) (read b))
    | Ir.Instr.Mul { dst; a; b } -> upd dst (mul (read a) (read b))
    | Ir.Instr.Div { dst; a; b } -> upd dst (div_iv (read a) (read b))
    | Ir.Instr.Rem { dst; a; b } -> upd dst (div_iv (read a) (read b))
    | Ir.Instr.Un { dst; op; a } -> upd dst (eval_un op (read a))
    | Ir.Instr.Mov { dst; src } -> upd dst (read src)
    | Ir.Instr.Select { dst; if_true; if_false; _ } ->
      upd dst (join (read if_true) (read if_false))
    | Ir.Instr.Load { dst; arr; _ } -> (
      match Hashtbl.find_opt arrays arr with
      | Some r -> upd dst r
      | None -> upd dst top)
    | Ir.Instr.Store { arr; value; _ } -> (
      (* stores only widen the (non-const) array's content range *)
      match Hashtbl.find_opt arrays arr with
      | Some r ->
        let r' = join r (read value) in
        if r'.lo < r.lo || r'.hi > r.hi then begin
          Hashtbl.replace arrays arr r';
          changed := true
        end
      | None -> ())
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    for b = 0 to n - 1 do
      List.iteri
        (fun idx instr -> transfer_instr changed b idx instr)
        (Ir.Cfg.block cfg b).Ir.Block.instrs
    done
  done;
  (* narrowing: recompute every register from the converged environment
     and keep the intersection — recovers the precision widening threw
     away on derived values (sound: one application of the transfer to a
     post-fixpoint stays above the least fixpoint) *)
  for _ = 1 to 2 do
    let fresh : (int, interval) Hashtbl.t = Hashtbl.create 64 in
    let record (v : Ir.Instr.var) range =
      let range =
        match Hashtbl.find_opt fresh v.vid with
        | Some prev -> join prev range
        | None -> range
      in
      Hashtbl.replace fresh v.vid range
    in
    for b = 0 to n - 1 do
      List.iteri
        (fun idx instr ->
          let cap = Hashtbl.find_opt caps (b, idx) in
          let capped range =
            match cap with
            | Some c -> { range with hi = min range.hi c }
            | None -> range
          in
          match instr with
          | Ir.Instr.Bin { dst; op; a; b = rb } ->
            record dst (capped (eval_bin op (read a) (read rb)))
          | Ir.Instr.Mul { dst; a; b = rb } -> record dst (mul (read a) (read rb))
          | Ir.Instr.Div { dst; a; b = rb } -> record dst (div_iv (read a) (read rb))
          | Ir.Instr.Rem { dst; a; b = rb } -> record dst (div_iv (read a) (read rb))
          | Ir.Instr.Un { dst; op; a } -> record dst (eval_un op (read a))
          | Ir.Instr.Mov { dst; src } -> record dst (read src)
          | Ir.Instr.Select { dst; if_true; if_false; _ } ->
            record dst (join (read if_true) (read if_false))
          | Ir.Instr.Load { dst; arr; _ } ->
            record dst
              (match Hashtbl.find_opt arrays arr with Some r -> r | None -> top)
          | Ir.Instr.Store _ -> ())
        (Ir.Cfg.block cfg b).Ir.Block.instrs
    done;
    Hashtbl.iter
      (fun vid recomputed ->
        match Hashtbl.find_opt env vid with
        | Some current ->
          let lo = max current.lo recomputed.lo in
          let hi = min current.hi recomputed.hi in
          if lo <= hi then Hashtbl.replace env vid { lo; hi }
        | None -> ())
      fresh
  done;
  Hashtbl.fold (fun _ v acc -> v :: acc) vars []
  |> List.sort (fun (a : Ir.Instr.var) b -> compare a.vid b.vid)
  |> List.map (fun (v : Ir.Instr.var) ->
         let range =
           match Hashtbl.find_opt env v.vid with Some r -> r | None -> top
         in
         let declared = width_range v.vwidth in
         {
           var = v;
           range;
           declared;
           fits = range.lo >= declared.lo && range.hi <= declared.hi;
         })

let overflow_risks cdfg = List.filter (fun r -> not r.fits) (analyse cdfg)

let pp_interval ppf i = Format.fprintf ppf "[%d, %d]" i.lo i.hi

let pp_report ppf r =
  Format.fprintf ppf "%s#%d width=%d inferred=%a declared=%a %s" r.var.vname
    r.var.vid r.var.vwidth pp_interval r.range pp_interval r.declared
    (if r.fits then "ok" else "OVERFLOW RISK")
