(** Value-range (interval) analysis over the CDFG.

    Declared bit-widths drive the fine-grain area model and the
    operation-weight model, so widths that silently overflow would skew
    every downstream number.  This analysis infers a conservative
    [lo, hi] interval for every scalar register (forward data-flow with
    interval arithmetic, joining at control-flow merges and widening at
    loop heads) and flags registers whose inferred range exceeds their
    declared signed width.

    Array contents are handled flow-insensitively: a [const] array's
    range comes from its initialiser; any other array is assumed to hold
    values of its full declared element width (arrays are the program's
    input surface). *)

type interval = { lo : int; hi : int }

val top : interval
(** The widened "unknown" interval (large symmetric bounds, safely inside
    native-int arithmetic). *)

val width_range : int -> interval
(** The representable signed range of a bit-width: [[-2^(w-1), 2^(w-1)-1]]. *)

(** {2 Interval arithmetic}

    The clamped operations the analysis itself runs on, exposed so other
    analyses (the {!Lint} rules in particular) can evaluate expressions
    over the inferred ranges without re-implementing the arithmetic. *)

val const : int -> interval
val join : interval -> interval -> interval
val add : interval -> interval -> interval
val sub : interval -> interval -> interval
val mul : interval -> interval -> interval
val neg : interval -> interval

val contains : interval -> int -> bool
(** [contains i n] — is [n] inside [[i.lo, i.hi]]? *)

val eval_bin : Hypar_ir.Types.alu_op -> interval -> interval -> interval
(** Conservative interval result of a binary ALU operation (comparisons
    evaluate to [[0, 1]]). *)

val eval_un : Hypar_ir.Types.un_op -> interval -> interval

val div_iv : interval -> interval -> interval
(** Division/remainder: the magnitude of the result never exceeds the
    dividend's. *)

type report = {
  var : Hypar_ir.Instr.var;
  range : interval;
  declared : interval;  (** from the variable's width *)
  fits : bool;
}

val analyse : Hypar_ir.Cdfg.t -> report list
(** One report per distinct register, ordered by variable id. *)

val overflow_risks : Hypar_ir.Cdfg.t -> report list
(** Only the registers whose inferred range escapes their declared
    width. *)

val pp_interval : Format.formatter -> interval -> unit
val pp_report : Format.formatter -> report -> unit
