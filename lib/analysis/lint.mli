(** Source-level diagnostics for Mini-C programs.

    A static pre-analysis of the kernels before they enter the Figure-2
    flow: purely syntactic rules run on the parsed AST (so they work even
    on programs the semantic checks reject), and value-range rules run on
    the unoptimised lowered CDFG through {!Range.analyse}, mapped back to
    source declarations by register name.

    Every diagnostic carries a stable code usable in CI gates
    ([hypar lint --deny CODE]):

    - [W001] [unused-variable] — a declared variable is never read;
    - [W002] [unused-parameter] — a function parameter is never read;
    - [W003] [dead-assignment] — an assigned value is overwritten or
      falls out of scope without ever being read;
    - [W004] [unreachable-code] — a statement after a [return] or an
      infinite loop, or a branch/loop body a constant condition disables;
    - [W005] [constant-condition] — an [if]/loop/ternary condition that
      folds to a constant;
    - [W006] [possible-div-by-zero] — the inferred range of a [/] or [%]
      right operand includes zero;
    - [W007] [shift-out-of-range] — a shift amount that may be negative
      or exceed 31;
    - [W008] [width-overflow] — a declared register whose inferred value
      range escapes its declared bit-width ({!Range.overflow_risks});
    - [W009] [induction-write] — a [for] body writes the loop's own
      induction variable. *)

type code =
  | Unused_variable
  | Unused_parameter
  | Dead_assignment
  | Unreachable_code
  | Constant_condition
  | Division_by_zero
  | Shift_out_of_range
  | Width_overflow
  | Induction_write

val all_codes : code list

val code_id : code -> string
(** Stable identifier, ["W001"] … ["W009"]. *)

val code_mnemonic : code -> string
(** Stable kebab-case name, e.g. ["unused-variable"]. *)

val code_of_string : string -> code option
(** Accepts an id ([W003]), a mnemonic ([dead-assignment]), either case. *)

type diagnostic = {
  code : code;
  line : int;  (** 1-based; 0 when no source position exists *)
  col : int;
  message : string;
}

val check_ast : Hypar_minic.Ast.program -> diagnostic list
(** The syntactic rules (W001–W005, W009) over a parsed program, sorted
    by position. *)

val check : ?name:string -> string -> (diagnostic list, string) result
(** Parse the source and run every rule; the range-powered rules
    (W006–W008) additionally need the program to typecheck and lower, and
    are skipped (silently) when it does not.  [Error] only on lex/parse
    failure, with a [line:col: message] string. *)

val render : ?file:string -> diagnostic list -> string
(** Human-readable, one diagnostic per line:
    [file:line:col: warning W00N [mnemonic]: message]. *)

val render_json : ?file:string -> diagnostic list -> string
(** A JSON object [{"file": …, "count": N, "diagnostics": […]}]. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
