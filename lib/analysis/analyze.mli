(** IR-level diagnostics over the CDFG ([hypar analyze]).

    Where {!Lint} inspects the Mini-C source, this engine inspects the
    lowered CDFG, so it also covers hand-written or machine-generated
    [.ir] files (the decompilation frontends of the
    partitioning-for-binaries line of work) that never had a source
    program.  Every rule is a client of the {!Hypar_ir.Dataflow} solver:

    - [A001] [use-before-def] — a register read on some path before any
      definition (complement of the {!Hypar_ir.Dataflow.Assigned}
      must-analysis);
    - [A002] [dead-store] — a computed value never read afterwards
      ({!Hypar_ir.Dataflow.Liveness});
    - [A003] [unreachable-block] — a block no path from the entry
      reaches;
    - [A004] [constant-branch] — a branch both of whose arms coincide, or
      whose condition the {!Hypar_ir.Dataflow.Consts} lattice proves
      constant;
    - [A005] [possible-out-of-bounds] — an array access whose index
      interval escapes [[0, size-1]] (interval analysis on
      {!Range} arithmetic, with branch-condition narrowing);
    - [A006] [possible-div-by-zero] — a division or remainder whose
      divisor interval contains zero;
    - [A007] [unhoisted-invariant-load] — a loop-invariant load of an
      array no instruction in the loop stores to (the optimiser's LICM
      would hoist it);
    - [A008] [write-only-variable] — a register defined somewhere but
      never read anywhere.

    Findings are positioned by basic block id and instruction index
    (there may be no source file to point into). *)

type code =
  | Use_before_def
  | Dead_store
  | Unreachable_block
  | Constant_branch
  | Possible_out_of_bounds
  | Possible_div_by_zero
  | Unhoisted_invariant_load
  | Write_only_variable

val all_codes : code list

val code_id : code -> string
(** Stable identifier, ["A001"] … ["A008"]. *)

val code_mnemonic : code -> string
(** Stable kebab-case name, e.g. ["use-before-def"]. *)

val code_of_string : string -> code option
(** Accepts an id ([A004]), a mnemonic ([constant-branch]), either
    case. *)

type finding = {
  code : code;
  block : int;  (** basic-block id; for A003 the block itself *)
  index : int;  (** instruction index in the block; -1 = the terminator *)
  message : string;
}

val check : Hypar_ir.Cdfg.t -> finding list
(** Run every rule, sorted by (block, index, code).  The input is
    typically the {e unoptimised} CDFG: the optimiser deliberately
    removes most of what A002/A004/A007 report. *)

val render : ?file:string -> finding list -> string
(** Human-readable, one finding per line:
    [file:BBn.i: note A00N [mnemonic]: message]. *)

val render_json : ?file:string -> finding list -> string
(** A JSON object [{"file": …, "count": N, "findings": […]}]. *)

val pp_finding : Format.formatter -> finding -> unit
