module Ir = Hypar_ir
module Dataflow = Ir.Dataflow
module Int_map = Dataflow.Int_map

type code =
  | Use_before_def
  | Dead_store
  | Unreachable_block
  | Constant_branch
  | Possible_out_of_bounds
  | Possible_div_by_zero
  | Unhoisted_invariant_load
  | Write_only_variable

let all_codes =
  [
    Use_before_def; Dead_store; Unreachable_block; Constant_branch;
    Possible_out_of_bounds; Possible_div_by_zero; Unhoisted_invariant_load;
    Write_only_variable;
  ]

let code_id = function
  | Use_before_def -> "A001"
  | Dead_store -> "A002"
  | Unreachable_block -> "A003"
  | Constant_branch -> "A004"
  | Possible_out_of_bounds -> "A005"
  | Possible_div_by_zero -> "A006"
  | Unhoisted_invariant_load -> "A007"
  | Write_only_variable -> "A008"

let code_mnemonic = function
  | Use_before_def -> "use-before-def"
  | Dead_store -> "dead-store"
  | Unreachable_block -> "unreachable-block"
  | Constant_branch -> "constant-branch"
  | Possible_out_of_bounds -> "possible-out-of-bounds"
  | Possible_div_by_zero -> "possible-div-by-zero"
  | Unhoisted_invariant_load -> "unhoisted-invariant-load"
  | Write_only_variable -> "write-only-variable"

let code_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun c -> String.lowercase_ascii (code_id c) = s || code_mnemonic c = s)
    all_codes

type finding = { code : code; block : int; index : int; message : string }

let finding code block index fmt =
  Format.kasprintf (fun message -> { code; block; index; message }) fmt

let pp_var = Ir.Instr.pp_var

(* --- the interval lattice ----------------------------------------------- *)

(* Register intervals as a {!Dataflow} analysis: absent registers default
   to their declared-width range, branch edges narrow the operands of the
   branch condition, and loop growth is widened to {!Range.top}'s bounds
   after {!Dataflow.widen_threshold} visits.

   Widening is {e with thresholds}: a moving bound jumps to the nearest
   enclosing program constant (comparison immediates and array sizes,
   [±1]) instead of straight to {!Range.top}'s bound.  A loop counter
   guarded by [i < 56] climbs [0,1], [0,2], … until the threshold kicks
   in and lands it on [0,55] — where the branch constraint holds it —
   while a genuine accumulator burns through the finite ladder and tops
   out, keeping every ascending chain bounded. *)
type ienv =
  | Iunreached
  | Ienv of (Ir.Instr.var * Range.interval) Int_map.t

(* flow-insensitive per-array content range, as in {!Range} *)
let array_ranges cdfg =
  let tbl : (string, Range.interval) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Ir.Cdfg.array_decl) ->
      let base =
        match (d.is_const, d.init) with
        | true, Some init ->
          Array.fold_left
            (fun acc v -> Range.join acc (Range.const v))
            (Range.const init.(0)) init
        | _ -> Range.width_range d.elem_width
      in
      Hashtbl.replace tbl d.aname base)
    (Ir.Cdfg.arrays cdfg);
  tbl

let default_iv (v : Ir.Instr.var) = Range.width_range v.Ir.Instr.vwidth

let read_iv m = function
  | Ir.Instr.Imm k -> Range.const k
  | Ir.Instr.Var v -> (
    match Int_map.find_opt v.Ir.Instr.vid m with
    | Some (_, r) -> r
    | None -> default_iv v)

let meet a b =
  let lo = max a.Range.lo b.Range.lo and hi = min a.Range.hi b.Range.hi in
  if lo > hi then None else Some { Range.lo; hi }

(* Narrow the intervals of [x cmp y] being [true].  Returns [None] when
   the constraint is unsatisfiable (the edge is infeasible). *)
let constrain op x y m =
  let ix = read_iv m x and iy = read_iv m y in
  let bound_x, bound_y =
    match (op : Ir.Types.alu_op) with
    | Ir.Types.Lt ->
      ( Some { ix with Range.hi = min ix.Range.hi (iy.Range.hi - 1) },
        Some { iy with Range.lo = max iy.Range.lo (ix.Range.lo + 1) } )
    | Ir.Types.Le ->
      ( Some { ix with Range.hi = min ix.Range.hi iy.Range.hi },
        Some { iy with Range.lo = max iy.Range.lo ix.Range.lo } )
    | Ir.Types.Gt ->
      ( Some { ix with Range.lo = max ix.Range.lo (iy.Range.lo + 1) },
        Some { iy with Range.hi = min iy.Range.hi (ix.Range.hi - 1) } )
    | Ir.Types.Ge ->
      ( Some { ix with Range.lo = max ix.Range.lo iy.Range.lo },
        Some { iy with Range.hi = min iy.Range.hi ix.Range.hi } )
    | Ir.Types.Eq -> (
      match meet ix iy with
      | Some both -> (Some both, Some both)
      | None -> (Some { Range.lo = 1; hi = 0 }, None) (* infeasible *))
    | Ir.Types.Ne | Ir.Types.Add | Ir.Types.Sub | Ir.Types.And | Ir.Types.Or
    | Ir.Types.Xor | Ir.Types.Shl | Ir.Types.Shr | Ir.Types.Ashr
    | Ir.Types.Min | Ir.Types.Max ->
      (None, None)
  in
  let apply m op bound =
    match (m, op, bound) with
    | None, _, _ -> None
    | Some m, Ir.Instr.Var v, Some (r : Range.interval) ->
      if r.Range.lo > r.Range.hi then None
      else Some (Int_map.add v.Ir.Instr.vid (v, r) m)
    | Some m, _, _ -> Some m
  in
  apply (apply (Some m) x bound_x) y bound_y

let negate_cmp = function
  | Ir.Types.Lt -> Some Ir.Types.Ge
  | Ir.Types.Le -> Some Ir.Types.Gt
  | Ir.Types.Gt -> Some Ir.Types.Le
  | Ir.Types.Ge -> Some Ir.Types.Lt
  | Ir.Types.Eq -> Some Ir.Types.Ne
  | Ir.Types.Ne -> Some Ir.Types.Eq
  | Ir.Types.Add | Ir.Types.Sub | Ir.Types.And | Ir.Types.Or | Ir.Types.Xor
  | Ir.Types.Shl | Ir.Types.Shr | Ir.Types.Ashr | Ir.Types.Min | Ir.Types.Max
    ->
    None

(* The comparison feeding a branch condition, provided neither it nor its
   operands are redefined between the compare and the block end. *)
let branch_compare (b : Ir.Block.t) (cond : Ir.Instr.var) =
  let instrs = Array.of_list b.Ir.Block.instrs in
  let n = Array.length instrs in
  let rec last_def k =
    if k < 0 then None
    else
      match Ir.Instr.def instrs.(k) with
      | Some d when Ir.Instr.var_equal d cond -> Some k
      | Some _ | None -> last_def (k - 1)
  in
  match last_def (n - 1) with
  | None -> None
  | Some k -> (
    match instrs.(k) with
    | Ir.Instr.Bin { op; a; b = rb; _ } when negate_cmp op <> None ->
      let operand_vids =
        List.filter_map
          (function Ir.Instr.Var v -> Some v.Ir.Instr.vid | Ir.Instr.Imm _ -> None)
          [ a; rb ]
      in
      let redefined_later =
        List.exists
          (fun j ->
            match Ir.Instr.def instrs.(j) with
            | Some d -> List.mem d.Ir.Instr.vid operand_vids
            | None -> false)
          (List.init (n - 1 - k) (fun i -> k + 1 + i))
      in
      if redefined_later then None else Some (op, a, rb)
    | _ -> None)

(* Widening thresholds: the constants the program compares against (±1,
   and negated), the array sizes — the bounds loop counters actually
   settle on.  Ascending, without duplicates. *)
let widen_thresholds cdfg =
  let module S = Set.Make (Int) in
  let consts = ref (S.of_list [ -1; 0; 1 ]) in
  let imm k =
    consts := S.add (k - 1) (S.add k (S.add (k + 1) (S.add (-k) !consts)))
  in
  List.iter
    (fun (d : Ir.Cdfg.array_decl) ->
      consts := S.add d.Ir.Cdfg.size (S.add (d.Ir.Cdfg.size - 1) !consts))
    (Ir.Cdfg.arrays cdfg);
  let cfg = Ir.Cdfg.cfg cdfg in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    List.iter
      (function
        | Ir.Instr.Bin { op; a; b; _ } when negate_cmp op <> None ->
          List.iter
            (function Ir.Instr.Imm k -> imm k | Ir.Instr.Var _ -> ())
            [ a; b ]
        | _ -> ())
      (Ir.Cfg.block cfg i).Ir.Block.instrs
  done;
  S.elements !consts

(* smallest threshold at or above [v] / largest at or below it *)
let threshold_hi thresholds v =
  match List.find_opt (fun t -> t >= v) thresholds with
  | Some t -> t
  | None -> Range.top.Range.hi

let threshold_lo thresholds v =
  List.fold_left
    (fun acc t -> if t <= v then Some t else acc)
    None thresholds
  |> Option.value ~default:Range.top.Range.lo

let interval_analysis cdfg :
    (module Dataflow.ANALYSIS with type t = ienv) =
  let arrays = array_ranges cdfg in
  let thresholds = widen_thresholds cdfg in
  (module struct
    type t = ienv

    let name = "intervals"
    let direction = Dataflow.Forward
    let init = Iunreached
    let boundary = Ienv Int_map.empty

    let join a b =
      match (a, b) with
      | Iunreached, x | x, Iunreached -> x
      | Ienv m1, Ienv m2 ->
        Ienv
          (Int_map.merge
             (fun _ a b ->
               match (a, b) with
               | Some (v, r1), Some (_, r2) -> Some (v, Range.join r1 r2)
               | Some (v, r), None | None, Some (v, r) ->
                 (* absent on the other side: its declared-width default *)
                 Some (v, Range.join r (default_iv v))
               | None, None -> None)
             m1 m2)

    let equal a b =
      match (a, b) with
      | Iunreached, Iunreached -> true
      | Ienv m1, Ienv m2 ->
        Int_map.equal (fun (_, r1) (_, r2) -> r1 = r2) m1 m2
      | Iunreached, Ienv _ | Ienv _, Iunreached -> false

    let transfer _ instr t =
      match t with
      | Iunreached -> Iunreached
      | Ienv m ->
        let set (d : Ir.Instr.var) r = Int_map.add d.Ir.Instr.vid (d, r) m in
        Ienv
          (match instr with
          | Ir.Instr.Bin { dst; op; a; b } ->
            set dst (Range.eval_bin op (read_iv m a) (read_iv m b))
          | Ir.Instr.Mul { dst; a; b } ->
            set dst (Range.mul (read_iv m a) (read_iv m b))
          | Ir.Instr.Div { dst; a; b } | Ir.Instr.Rem { dst; a; b } ->
            set dst (Range.div_iv (read_iv m a) (read_iv m b))
          | Ir.Instr.Un { dst; op; a } ->
            set dst (Range.eval_un op (read_iv m a))
          | Ir.Instr.Mov { dst; src } -> set dst (read_iv m src)
          | Ir.Instr.Select { dst; if_true; if_false; _ } ->
            set dst (Range.join (read_iv m if_true) (read_iv m if_false))
          | Ir.Instr.Load { dst; arr; _ } ->
            set dst
              (match Hashtbl.find_opt arrays arr with
              | Some r -> r
              | None -> Range.top)
          | Ir.Instr.Store _ -> m)

    let transfer_term _ _ t = t

    let edge =
      Some
        (fun (pred : Ir.Block.t) target v ->
          match v with
          | Iunreached -> Iunreached
          | Ienv m -> (
            match pred.Ir.Block.term with
            | Ir.Block.Branch { cond = Ir.Instr.Var c; if_true; if_false }
              when if_true <> if_false -> (
              match branch_compare pred c with
              | None -> v
              | Some (op, a, b) ->
                let op =
                  if target = if_true then Some op else negate_cmp op
                in
                (match op with
                | None -> v
                | Some op -> (
                  match constrain op a b m with
                  | Some m' -> Ienv m'
                  | None -> Iunreached)))
            | Ir.Block.Branch _ | Ir.Block.Jump _ | Ir.Block.Return _ -> v))

    (* a moving bound jumps to the next enclosing threshold; a stable
       bound is kept (the chain per bound is the ladder, so finite) *)
    let widen =
      Some
        (fun old_v new_v ->
          match (old_v, new_v) with
          | Iunreached, x | x, Iunreached -> x
          | Ienv old_m, Ienv new_m ->
            Ienv
              (Int_map.merge
                 (fun _ o n ->
                   match (o, n) with
                   | Some (v, (ro : Range.interval)), Some (_, rn) ->
                     Some
                       ( v,
                         {
                           Range.lo =
                             (if rn.Range.lo < ro.Range.lo then
                                threshold_lo thresholds rn.Range.lo
                              else ro.Range.lo);
                           hi =
                             (if rn.Range.hi > ro.Range.hi then
                                threshold_hi thresholds rn.Range.hi
                              else ro.Range.hi);
                         } )
                   | None, n -> n
                   | o, None -> o)
                 old_m new_m))
  end)

(* --- the rules ----------------------------------------------------------- *)

let check_use_before_def cfg acc =
  let module A = Dataflow.Assigned in
  let sol = Dataflow.solve (module A) cfg in
  let reachable = Ir.Cfg.reachable cfg in
  let acc = ref acc in
  List.iter
    (fun i ->
      if reachable.(i) then begin
        (* per-instruction facts: the value holding *before* each one *)
        List.iteri
          (fun k (instr, fact) ->
            List.iter
              (fun (v : Ir.Instr.var) ->
                if not (A.mem v.Ir.Instr.vid fact) then
                  acc :=
                    finding Use_before_def i k
                      "%a may be read before any definition reaches it" pp_var
                      v
                    :: !acc)
              (Ir.Instr.used_vars instr))
          (Dataflow.instr_facts (module A) cfg sol i);
        let term_fact = Dataflow.term_fact (module A) cfg sol i in
        List.iter
          (fun (v : Ir.Instr.var) ->
            if not (A.mem v.Ir.Instr.vid term_fact) then
              acc :=
                finding Use_before_def i (-1)
                  "%a may be read by the terminator before any definition"
                  pp_var v
                :: !acc)
          (Ir.Block.terminator_uses (Ir.Cfg.block cfg i))
      end)
    (List.init (Ir.Cfg.block_count cfg) Fun.id);
  !acc

let check_dead_stores cfg acc =
  let module L = Dataflow.Liveness in
  let sol = Dataflow.solve (module L) cfg in
  let reachable = Ir.Cfg.reachable cfg in
  let acc = ref acc in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    if reachable.(i) then
      List.iteri
        (fun k (instr, after) ->
          match Ir.Instr.def instr with
          | Some d when not (Int_map.mem d.Ir.Instr.vid after) ->
            acc :=
              finding Dead_store i k "value of %a is never read" pp_var d
              :: !acc
          | Some _ | None -> ())
        (Dataflow.instr_facts (module L) cfg sol i)
  done;
  !acc

let check_unreachable cfg acc =
  let reachable = Ir.Cfg.reachable cfg in
  let acc = ref acc in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    if not reachable.(i) then
      acc :=
        finding Unreachable_block i 0 "block %s is unreachable from the entry"
          (Ir.Cfg.block cfg i).Ir.Block.label
        :: !acc
  done;
  !acc

let check_constant_branches cfg acc =
  let module C = Dataflow.Consts in
  let sol = Dataflow.solve (module C) cfg in
  let reachable = Ir.Cfg.reachable cfg in
  let acc = ref acc in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    if reachable.(i) then
      match (Ir.Cfg.block cfg i).Ir.Block.term with
      | Ir.Block.Branch { cond; if_true; if_false } ->
        if if_true = if_false then
          acc :=
            finding Constant_branch i (-1) "both branch arms target %s"
              if_true
            :: !acc
        else begin
          let value =
            match cond with
            | Ir.Instr.Imm n -> Some n
            | Ir.Instr.Var v ->
              C.find v.Ir.Instr.vid (Dataflow.term_fact (module C) cfg sol i)
          in
          match value with
          | Some n ->
            acc :=
              finding Constant_branch i (-1)
                "branch condition is always %s; only %s is ever taken"
                (if n <> 0 then "true" else "false")
                (if n <> 0 then if_true else if_false)
              :: !acc
          | None -> ()
        end
      | Ir.Block.Jump _ | Ir.Block.Return _ -> ()
  done;
  !acc

let check_intervals cdfg cfg acc =
  (* one solve powers both the bounds rule and the divisor rule *)
  let m = interval_analysis cdfg in
  let (module I) = m in
  (* two narrowing sweeps claw back the bounds widening blew away *)
  let sol =
    Dataflow.solve (module I) cfg
    |> Dataflow.refine (module I) cfg
    |> Dataflow.refine (module I) cfg
  in
  let reachable = Ir.Cfg.reachable cfg in
  let size_of arr =
    Option.map
      (fun (d : Ir.Cdfg.array_decl) -> d.Ir.Cdfg.size)
      (Ir.Cdfg.array_decl cdfg arr)
  in
  let acc = ref acc in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    if reachable.(i) then
      List.iteri
        (fun k (instr, fact) ->
          match fact with
          | Iunreached -> ()
          | Ienv env ->
            let index_check arr index =
              match size_of arr with
              | None -> ()
              | Some size ->
                let iv = read_iv env index in
                if iv.Range.lo < 0 || iv.Range.hi > size - 1 then
                  acc :=
                    finding Possible_out_of_bounds i k
                      "index of %s may be out of bounds: inferred %a, valid \
                       [0, %d]"
                      arr Range.pp_interval iv (size - 1)
                    :: !acc
            in
            (match instr with
            | Ir.Instr.Load { arr; index; _ } -> index_check arr index
            | Ir.Instr.Store { arr; index; _ } -> index_check arr index
            | _ -> ());
            (match instr with
            | Ir.Instr.Div { b; _ } | Ir.Instr.Rem { b; _ } -> (
              match b with
              | Ir.Instr.Imm 0 ->
                acc :=
                  finding Possible_div_by_zero i k
                    "divisor is the constant zero"
                  :: !acc
              | Ir.Instr.Imm _ -> ()
              | Ir.Instr.Var _ ->
                let iv = read_iv env b in
                if Range.contains iv 0 then
                  acc :=
                    finding Possible_div_by_zero i k
                      "divisor may be zero: inferred %a" Range.pp_interval iv
                    :: !acc)
            | _ -> ())
        )
        (Dataflow.instr_facts (module I) cfg sol i)
  done;
  !acc

let check_invariant_loads cfg acc =
  let acc = ref acc in
  List.iter
    (fun (loop : Ir.Loop.t) ->
      let in_loop = Hashtbl.create 8 in
      List.iter (fun b -> Hashtbl.replace in_loop b ()) loop.Ir.Loop.body;
      (* variables defined and arrays stored inside the loop *)
      let defined = Hashtbl.create 32 in
      let stored = Hashtbl.create 4 in
      List.iter
        (fun b ->
          List.iter
            (fun instr ->
              (match Ir.Instr.def instr with
              | Some d -> Hashtbl.replace defined d.Ir.Instr.vid ()
              | None -> ());
              if Ir.Instr.is_store instr then
                match Ir.Instr.accessed_array instr with
                | Some arr -> Hashtbl.replace stored arr ()
                | None -> ())
            (Ir.Cfg.block cfg b).Ir.Block.instrs)
        loop.Ir.Loop.body;
      List.iter
        (fun b ->
          List.iteri
            (fun k instr ->
              match instr with
              | Ir.Instr.Load { arr; index; _ }
                when not (Hashtbl.mem stored arr) ->
                let invariant =
                  match index with
                  | Ir.Instr.Imm _ -> true
                  | Ir.Instr.Var v -> not (Hashtbl.mem defined v.Ir.Instr.vid)
                in
                if invariant then
                  acc :=
                    finding Unhoisted_invariant_load b k
                      "loop-invariant load of %s could be hoisted out of the \
                       loop headed by %s"
                      arr
                      (Ir.Cfg.block cfg loop.Ir.Loop.header).Ir.Block.label
                    :: !acc
              | _ -> ())
            (Ir.Cfg.block cfg b).Ir.Block.instrs)
        loop.Ir.Loop.body)
    (Ir.Loop.find cfg);
  !acc

let check_write_only cfg acc =
  let used = Hashtbl.create 64 in
  let first_def : (int, Ir.Instr.var * int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    let b = Ir.Cfg.block cfg i in
    List.iteri
      (fun k instr ->
        List.iter
          (fun (v : Ir.Instr.var) -> Hashtbl.replace used v.Ir.Instr.vid ())
          (Ir.Instr.used_vars instr);
        match Ir.Instr.def instr with
        | Some d when not (Hashtbl.mem first_def d.Ir.Instr.vid) ->
          Hashtbl.replace first_def d.Ir.Instr.vid (d, i, k)
        | Some _ | None -> ())
      b.Ir.Block.instrs;
    List.iter
      (fun (v : Ir.Instr.var) -> Hashtbl.replace used v.Ir.Instr.vid ())
      (Ir.Block.terminator_uses b)
  done;
  Hashtbl.fold
    (fun vid (v, i, k) acc ->
      if Hashtbl.mem used vid then acc
      else
        finding Write_only_variable i k "%a is written but never read" pp_var v
        :: acc)
    first_def acc

let sort_findings fs =
  List.sort_uniq
    (fun a b ->
      compare
        (a.block, a.index, code_id a.code, a.message)
        (b.block, b.index, code_id b.code, b.message))
    fs

let check cdfg =
  let cfg = Ir.Cdfg.cfg cdfg in
  []
  |> check_use_before_def cfg
  |> check_dead_stores cfg
  |> check_unreachable cfg
  |> check_constant_branches cfg
  |> check_intervals cdfg cfg
  |> check_invariant_loads cfg
  |> check_write_only cfg
  |> sort_findings

(* --- rendering ----------------------------------------------------------- *)

let pp_finding ppf f =
  let pos =
    if f.index < 0 then Printf.sprintf "BB%d.term" f.block
    else Printf.sprintf "BB%d.%d" f.block f.index
  in
  Format.fprintf ppf "%s: note %s [%s]: %s" pos (code_id f.code)
    (code_mnemonic f.code) f.message

let render ?(file = "<ir>") fs =
  String.concat ""
    (List.map (fun f -> Format.asprintf "%s:%a\n" file pp_finding f) fs)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ?(file = "<ir>") fs =
  let entry f =
    Printf.sprintf
      "    {\"code\": %S, \"name\": %S, \"block\": %d, \"index\": %d, \
       \"message\": \"%s\"}"
      (code_id f.code) (code_mnemonic f.code) f.block f.index
      (json_escape f.message)
  in
  Printf.sprintf
    "{\n  \"file\": \"%s\",\n  \"count\": %d,\n  \"findings\": [\n%s\n  ]\n}\n"
    (json_escape file) (List.length fs)
    (String.concat ",\n" (List.map entry fs))
