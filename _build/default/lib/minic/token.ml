type pos = { line : int; col : int }

type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_int8
  | Kw_int32
  | Kw_void
  | Kw_const
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_for
  | Kw_return
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Shl_assign
  | Shr_assign
  | Amp_assign
  | Bar_assign
  | Caret_assign
  | Plus_plus
  | Minus_minus
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Bar
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Bar_bar
  | Question
  | Colon
  | Eof

type located = { tok : t; pos : pos }

let describe = function
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Ident s -> Printf.sprintf "identifier %S" s
  | Kw_int -> "'int'"
  | Kw_int8 -> "'int8'"
  | Kw_int32 -> "'int32'"
  | Kw_void -> "'void'"
  | Kw_const -> "'const'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_while -> "'while'"
  | Kw_do -> "'do'"
  | Kw_for -> "'for'"
  | Kw_return -> "'return'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Comma -> "','"
  | Assign -> "'='"
  | Plus_assign -> "'+='"
  | Minus_assign -> "'-='"
  | Star_assign -> "'*='"
  | Shl_assign -> "'<<='"
  | Shr_assign -> "'>>='"
  | Amp_assign -> "'&='"
  | Bar_assign -> "'|='"
  | Caret_assign -> "'^='"
  | Plus_plus -> "'++'"
  | Minus_minus -> "'--'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Amp -> "'&'"
  | Bar -> "'|'"
  | Caret -> "'^'"
  | Tilde -> "'~'"
  | Bang -> "'!'"
  | Shl -> "'<<'"
  | Shr -> "'>>'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Eq_eq -> "'=='"
  | Bang_eq -> "'!='"
  | Amp_amp -> "'&&'"
  | Bar_bar -> "'||'"
  | Question -> "'?'"
  | Colon -> "':'"
  | Eof -> "end of input"
