(** Hand-written lexer for Mini-C.

    Plays the role of the Lex scanner the authors used for their analysis
    scripts; here it feeds the recursive-descent parser.  Supports decimal
    and hexadecimal literals, [//] line comments and [/* ... */] block
    comments. *)

exception Error of { pos : Token.pos; msg : string }

val tokenize : string -> Token.located list
(** The token stream of a source string, ending with {!Token.Eof}.
    Raises {!Error} on an unexpected character or an unterminated
    comment. *)
