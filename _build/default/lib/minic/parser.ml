exception Error of { pos : Token.pos; msg : string }

let error pos fmt = Format.kasprintf (fun msg -> raise (Error { pos; msg })) fmt

type state = { toks : Token.located array; mutable k : int }

let peek st = st.toks.(st.k)
let peek2 st = st.toks.(min (st.k + 1) (Array.length st.toks - 1))

let next st =
  let t = st.toks.(st.k) in
  if st.k < Array.length st.toks - 1 then st.k <- st.k + 1;
  t

let expect st tok =
  let t = next st in
  if t.Token.tok <> tok then
    error t.Token.pos "expected %s but found %s" (Token.describe tok)
      (Token.describe t.Token.tok)

let accept st tok =
  if (peek st).Token.tok = tok then begin
    ignore (next st);
    true
  end
  else false

let expect_ident st =
  let t = next st in
  match t.Token.tok with
  | Token.Ident s -> (s, t.Token.pos)
  | other -> error t.Token.pos "expected identifier, found %s" (Token.describe other)

let expect_int st =
  let t = next st in
  match t.Token.tok with
  | Token.Int_lit n -> n
  | Token.Minus -> (
    let t2 = next st in
    match t2.Token.tok with
    | Token.Int_lit n -> -n
    | other ->
      error t2.Token.pos "expected integer, found %s" (Token.describe other))
  | other -> error t.Token.pos "expected integer, found %s" (Token.describe other)

let width_of_kw = function
  | Token.Kw_int8 -> Some 8
  | Token.Kw_int -> Some 16
  | Token.Kw_int32 -> Some 32
  | _ -> None

(* --- expressions ------------------------------------------------------ *)

let mk pos desc = { Ast.desc; epos = pos }

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_lor st in
  if accept st Token.Question then begin
    let t = parse_expr st in
    expect st Token.Colon;
    let f = parse_ternary st in
    mk cond.Ast.epos (Ast.Ternary (cond, t, f))
  end
  else cond

and parse_binary_level st ops sub =
  let lhs = sub st in
  let rec loop lhs =
    let t = peek st in
    match List.assoc_opt t.Token.tok ops with
    | Some op ->
      ignore (next st);
      let rhs = sub st in
      loop (mk lhs.Ast.epos (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_lor st =
  parse_binary_level st [ (Token.Bar_bar, Ast.Lor) ] parse_land

and parse_land st =
  parse_binary_level st [ (Token.Amp_amp, Ast.Land) ] parse_bor

and parse_bor st = parse_binary_level st [ (Token.Bar, Ast.Bor) ] parse_bxor
and parse_bxor st = parse_binary_level st [ (Token.Caret, Ast.Bxor) ] parse_band
and parse_band st = parse_binary_level st [ (Token.Amp, Ast.Band) ] parse_equality

and parse_equality st =
  parse_binary_level st
    [ (Token.Eq_eq, Ast.Eq); (Token.Bang_eq, Ast.Ne) ]
    parse_relational

and parse_relational st =
  parse_binary_level st
    [ (Token.Lt, Ast.Lt); (Token.Le, Ast.Le); (Token.Gt, Ast.Gt); (Token.Ge, Ast.Ge) ]
    parse_shift

and parse_shift st =
  parse_binary_level st [ (Token.Shl, Ast.Shl); (Token.Shr, Ast.Shr) ] parse_additive

and parse_additive st =
  parse_binary_level st [ (Token.Plus, Ast.Add); (Token.Minus, Ast.Sub) ]
    parse_multiplicative

and parse_multiplicative st =
  parse_binary_level st
    [ (Token.Star, Ast.Mul); (Token.Slash, Ast.Div); (Token.Percent, Ast.Mod) ]
    parse_unary

and parse_unary st =
  let t = peek st in
  match t.Token.tok with
  | Token.Minus ->
    ignore (next st);
    mk t.Token.pos (Ast.Unary (Ast.Neg, parse_unary st))
  | Token.Bang ->
    ignore (next st);
    mk t.Token.pos (Ast.Unary (Ast.Lognot, parse_unary st))
  | Token.Tilde ->
    ignore (next st);
    mk t.Token.pos (Ast.Unary (Ast.Bitnot, parse_unary st))
  | Token.Plus ->
    ignore (next st);
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.Token.tok with
  | Token.Int_lit n -> mk t.Token.pos (Ast.Num n)
  | Token.Lparen ->
    let e = parse_expr st in
    expect st Token.Rparen;
    e
  | Token.Ident name -> (
    match (peek st).Token.tok with
    | Token.Lbracket ->
      ignore (next st);
      let ix = parse_expr st in
      expect st Token.Rbracket;
      mk t.Token.pos (Ast.Index (name, ix))
    | Token.Lparen ->
      ignore (next st);
      let args =
        if (peek st).Token.tok = Token.Rparen then []
        else
          let rec more acc =
            let e = parse_expr st in
            if accept st Token.Comma then more (e :: acc)
            else List.rev (e :: acc)
          in
          more []
      in
      expect st Token.Rparen;
      mk t.Token.pos (Ast.Call (name, args))
    | _ -> mk t.Token.pos (Ast.Ident name))
  | other ->
    error t.Token.pos "expected expression, found %s" (Token.describe other)

(* --- statements ------------------------------------------------------- *)

let mk_stmt pos sdesc = { Ast.sdesc; spos = pos }

(* Compound assignments desugar in the parser: [x op= e] becomes
   [x = x op e]; for array stores the (pure) index is duplicated. *)
let compound_op = function
  | Token.Plus_assign -> Some Ast.Add
  | Token.Minus_assign -> Some Ast.Sub
  | Token.Star_assign -> Some Ast.Mul
  | Token.Shl_assign -> Some Ast.Shl
  | Token.Shr_assign -> Some Ast.Shr
  | Token.Amp_assign -> Some Ast.Band
  | Token.Bar_assign -> Some Ast.Bor
  | Token.Caret_assign -> Some Ast.Bxor
  | _ -> None

(* A "simple" statement: declaration, assignment (plain, compound, ++/--),
   array store or call — no trailing ';' (used for 'for' init/step and
   reused with ';' for ordinary statements). *)
let rec parse_simple_stmt st =
  let t = peek st in
  match width_of_kw t.Token.tok with
  | Some width ->
    ignore (next st);
    let name, pos = expect_ident st in
    let init = if accept st Token.Assign then Some (parse_expr st) else None in
    mk_stmt pos (Ast.Decl { name; width; init })
  | None -> (
    match (t.Token.tok, (peek2 st).Token.tok) with
    | Token.Ident name, Token.Assign ->
      ignore (next st);
      ignore (next st);
      let value = parse_expr st in
      mk_stmt t.Token.pos (Ast.Assign { name; value })
    | Token.Ident name, op_tok when compound_op op_tok <> None ->
      ignore (next st);
      ignore (next st);
      let op = Option.get (compound_op op_tok) in
      let rhs = parse_expr st in
      let value =
        mk t.Token.pos (Ast.Binary (op, mk t.Token.pos (Ast.Ident name), rhs))
      in
      mk_stmt t.Token.pos (Ast.Assign { name; value })
    | Token.Ident name, (Token.Plus_plus | Token.Minus_minus) ->
      ignore (next st);
      let op_tok = (next st).Token.tok in
      let op = if op_tok = Token.Plus_plus then Ast.Add else Ast.Sub in
      let value =
        mk t.Token.pos
          (Ast.Binary (op, mk t.Token.pos (Ast.Ident name), mk t.Token.pos (Ast.Num 1)))
      in
      mk_stmt t.Token.pos (Ast.Assign { name; value })
    | Token.Ident arr, Token.Lbracket ->
      (* A store "a[i] = e" / "a[i] op= e" / "a[i]++", or an expression
         starting with a[i]. *)
      let save = st.k in
      ignore (next st);
      ignore (next st);
      let index = parse_expr st in
      expect st Token.Rbracket;
      let store_of value = mk_stmt t.Token.pos (Ast.Array_assign { arr; index; value }) in
      let current = (peek st).Token.tok in
      if accept st Token.Assign then store_of (parse_expr st)
      else if compound_op current <> None then begin
        ignore (next st);
        let op = Option.get (compound_op current) in
        let rhs = parse_expr st in
        store_of
          (mk t.Token.pos (Ast.Binary (op, mk t.Token.pos (Ast.Index (arr, index)), rhs)))
      end
      else if current = Token.Plus_plus || current = Token.Minus_minus then begin
        ignore (next st);
        let op = if current = Token.Plus_plus then Ast.Add else Ast.Sub in
        store_of
          (mk t.Token.pos
             (Ast.Binary
                (op, mk t.Token.pos (Ast.Index (arr, index)), mk t.Token.pos (Ast.Num 1))))
      end
      else begin
        st.k <- save;
        let e = parse_expr st in
        mk_stmt t.Token.pos (Ast.Expr_stmt e)
      end
    | _ ->
      let e = parse_expr st in
      mk_stmt t.Token.pos (Ast.Expr_stmt e))

and parse_stmt st =
  let t = peek st in
  match t.Token.tok with
  | Token.Lbrace -> mk_stmt t.Token.pos (Ast.Block (parse_block st))
  | Token.Kw_if ->
    ignore (next st);
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    let then_branch = parse_branch st in
    let else_branch =
      if accept st Token.Kw_else then parse_branch st else []
    in
    mk_stmt t.Token.pos (Ast.If { cond; then_branch; else_branch })
  | Token.Kw_while ->
    ignore (next st);
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    let body = parse_branch st in
    mk_stmt t.Token.pos (Ast.While { cond; body })
  | Token.Kw_do ->
    ignore (next st);
    let body = parse_branch st in
    let kw = next st in
    if kw.Token.tok <> Token.Kw_while then
      error kw.Token.pos "expected 'while' after 'do' body";
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    expect st Token.Semi;
    mk_stmt t.Token.pos (Ast.Do_while { body; cond })
  | Token.Kw_for ->
    ignore (next st);
    expect st Token.Lparen;
    let init =
      if (peek st).Token.tok = Token.Semi then None else Some (parse_simple_stmt st)
    in
    expect st Token.Semi;
    let cond =
      if (peek st).Token.tok = Token.Semi then None else Some (parse_expr st)
    in
    expect st Token.Semi;
    let step =
      if (peek st).Token.tok = Token.Rparen then None
      else Some (parse_simple_stmt st)
    in
    expect st Token.Rparen;
    let body = parse_branch st in
    mk_stmt t.Token.pos (Ast.For { init; cond; step; body })
  | Token.Kw_return ->
    ignore (next st);
    let value =
      if (peek st).Token.tok = Token.Semi then None else Some (parse_expr st)
    in
    expect st Token.Semi;
    mk_stmt t.Token.pos (Ast.Return value)
  | _ ->
    let s = parse_simple_stmt st in
    expect st Token.Semi;
    s

and parse_branch st =
  if (peek st).Token.tok = Token.Lbrace then parse_block st else [ parse_stmt st ]

and parse_block st =
  expect st Token.Lbrace;
  let rec stmts acc =
    if accept st Token.Rbrace then List.rev acc else stmts (parse_stmt st :: acc)
  in
  stmts []

(* --- top level --------------------------------------------------------- *)

let parse_params st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else begin
    let rec more acc =
      let t = next st in
      match width_of_kw t.Token.tok with
      | Some width ->
        let name, _ = expect_ident st in
        let param =
          if accept st Token.Lbracket then begin
            expect st Token.Rbracket;
            Ast.Array_param { pname = name; pelem_width = width }
          end
          else Ast.Scalar_param { pname = name; pwidth = width }
        in
        if accept st Token.Comma then more (param :: acc)
        else begin
          expect st Token.Rparen;
          List.rev (param :: acc)
        end
      | None ->
        error t.Token.pos "expected parameter type, found %s"
          (Token.describe t.Token.tok)
    in
    more []
  end

let parse_array_init st =
  expect st Token.Lbrace;
  if accept st Token.Rbrace then []
  else begin
    let rec more acc =
      let n = expect_int st in
      if accept st Token.Comma then
        if (peek st).Token.tok = Token.Rbrace then begin
          ignore (next st);
          List.rev (n :: acc)
        end
        else more (n :: acc)
      else begin
        expect st Token.Rbrace;
        List.rev (n :: acc)
      end
    in
    more []
  end

let parse_top_level st =
  let t = peek st in
  let is_const = t.Token.tok = Token.Kw_const in
  if is_const then ignore (next st);
  let t = next st in
  match (width_of_kw t.Token.tok, t.Token.tok) with
  | Some width, _ -> (
    let name, pos = expect_ident st in
    match (peek st).Token.tok with
    | Token.Lparen ->
      if is_const then error pos "functions cannot be 'const'";
      let params = parse_params st in
      let body = parse_block st in
      `Func { Ast.fname = name; params; returns_value = true; body; fpos = pos }
    | Token.Lbracket ->
      ignore (next st);
      let size = expect_int st in
      expect st Token.Rbracket;
      let ginit =
        if accept st Token.Assign then Some (parse_array_init st) else None
      in
      expect st Token.Semi;
      `Global
        (Ast.Global_array
           { gname = name; size; ginit; is_const; gelem_width = width })
    | Token.Assign ->
      ignore (next st);
      let v = expect_int st in
      expect st Token.Semi;
      `Global (Ast.Global_scalar { gname = name; gwidth = width; gvalue = Some v })
    | Token.Semi ->
      ignore (next st);
      `Global (Ast.Global_scalar { gname = name; gwidth = width; gvalue = None })
    | other ->
      error pos "unexpected %s after global declaration" (Token.describe other))
  | None, Token.Kw_void ->
    let name, pos = expect_ident st in
    let params = parse_params st in
    let body = parse_block st in
    `Func { Ast.fname = name; params; returns_value = false; body; fpos = pos }
  | None, other ->
    error t.Token.pos "expected a declaration, found %s" (Token.describe other)

let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; k = 0 } in
  let rec go globals funcs =
    if (peek st).Token.tok = Token.Eof then
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else
      match parse_top_level st with
      | `Global g -> go (g :: globals) funcs
      | `Func f -> go globals (f :: funcs)
  in
  go [] []

let parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; k = 0 } in
  let e = parse_expr st in
  expect st Token.Eof;
  e
