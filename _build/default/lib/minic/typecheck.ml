type error = { pos : Token.pos; msg : string }

exception Err of error

let fail pos fmt = Format.kasprintf (fun msg -> raise (Err { pos; msg })) fmt

type binding = Scalar | Array of { is_const : bool }

type env = {
  funcs : (string, Ast.func) Hashtbl.t;
  globals : (string, binding) Hashtbl.t;
}

let build_env (prog : Ast.program) =
  let funcs = Hashtbl.create 16 in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun g ->
      match g with
      | Ast.Global_array { gname; size; ginit; is_const; _ } ->
        if Hashtbl.mem globals gname then
          fail { Token.line = 0; col = 0 } "duplicate global %S" gname;
        if size <= 0 then
          fail { Token.line = 0; col = 0 } "array %S has non-positive size" gname;
        (match ginit with
        | Some init when List.length init > size ->
          fail { Token.line = 0; col = 0 }
            "array %S: %d initialisers for size %d" gname (List.length init) size
        | _ -> ());
        if is_const && ginit = None then
          fail { Token.line = 0; col = 0 } "const array %S lacks an initialiser"
            gname;
        Hashtbl.replace globals gname (Array { is_const })
      | Ast.Global_scalar { gname; _ } ->
        if Hashtbl.mem globals gname then
          fail { Token.line = 0; col = 0 } "duplicate global %S" gname;
        Hashtbl.replace globals gname Scalar)
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.fname then fail f.fpos "duplicate function %S" f.fname;
      if List.mem f.fname Ast.builtins then
        fail f.fpos "function %S shadows a builtin" f.fname;
      if Hashtbl.mem globals f.fname then
        fail f.fpos "function %S shadows a global" f.fname;
      Hashtbl.replace funcs f.fname f)
    prog.funcs;
  { funcs; globals }

(* Scopes: a stack of hash tables; lookup walks outward. *)
type scope = (string, binding) Hashtbl.t list

let lookup env (scope : scope) name =
  let rec walk = function
    | [] -> Hashtbl.find_opt env.globals name
    | tbl :: rest -> (
      match Hashtbl.find_opt tbl name with Some b -> Some b | None -> walk rest)
  in
  walk scope

let rec check_scalar_expr env scope (e : Ast.expr) =
  match e.desc with
  | Ast.Num _ -> ()
  | Ast.Ident name -> (
    match lookup env scope name with
    | Some Scalar -> ()
    | Some (Array _) ->
      fail e.epos "array %S used where a scalar value is expected" name
    | None -> fail e.epos "undeclared variable %S" name)
  | Ast.Index (arr, ix) ->
    (match lookup env scope arr with
    | Some (Array _) -> ()
    | Some Scalar -> fail e.epos "scalar %S indexed like an array" arr
    | None -> fail e.epos "undeclared array %S" arr);
    check_scalar_expr env scope ix
  | Ast.Call (fname, args) ->
    if List.mem fname Ast.builtins then begin
      let arity = if fname = "abs" then 1 else 2 in
      if List.length args <> arity then
        fail e.epos "builtin %S expects %d argument(s), got %d" fname arity
          (List.length args);
      List.iter (check_scalar_expr env scope) args
    end
    else begin
      match Hashtbl.find_opt env.funcs fname with
      | None -> fail e.epos "call to undefined function %S" fname
      | Some f ->
        if not f.returns_value then
          fail e.epos "void function %S used in an expression" fname;
        check_call env scope e.epos f args
    end
  | Ast.Unary (_, a) -> check_scalar_expr env scope a
  | Ast.Binary (_, a, b) ->
    check_scalar_expr env scope a;
    check_scalar_expr env scope b
  | Ast.Ternary (a, b, c) ->
    check_scalar_expr env scope a;
    check_scalar_expr env scope b;
    check_scalar_expr env scope c

and check_call env scope pos (f : Ast.func) args =
  if List.length args <> List.length f.params then
    fail pos "function %S expects %d argument(s), got %d" f.fname
      (List.length f.params) (List.length args);
  List.iter2
    (fun param (arg : Ast.expr) ->
      match param with
      | Ast.Scalar_param _ -> check_scalar_expr env scope arg
      | Ast.Array_param _ -> (
        match arg.desc with
        | Ast.Ident name -> (
          match lookup env scope name with
          | Some (Array _) -> ()
          | Some Scalar ->
            fail arg.epos "scalar %S passed for array parameter" name
          | None -> fail arg.epos "undeclared array %S" name)
        | _ -> fail arg.epos "array arguments must be bare array names"))
    f.params args

let rec check_stmt env scope (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl { name; init; _ } ->
    (match init with Some e -> check_scalar_expr env scope e | None -> ());
    let top =
      match scope with
      | tbl :: _ -> tbl
      | [] -> fail s.spos "internal: empty scope"
    in
    if Hashtbl.mem top name then
      fail s.spos "variable %S redeclared in the same scope" name;
    Hashtbl.replace top name Scalar
  | Ast.Assign { name; value } ->
    (match lookup env scope name with
    | Some Scalar -> ()
    | Some (Array _) -> fail s.spos "cannot assign to array %S" name
    | None -> fail s.spos "assignment to undeclared variable %S" name);
    check_scalar_expr env scope value
  | Ast.Array_assign { arr; index; value } ->
    (match lookup env scope arr with
    | Some (Array { is_const }) ->
      if is_const then fail s.spos "store to const array %S" arr
    | Some Scalar -> fail s.spos "scalar %S indexed like an array" arr
    | None -> fail s.spos "store to undeclared array %S" arr);
    check_scalar_expr env scope index;
    check_scalar_expr env scope value
  | Ast.If { cond; then_branch; else_branch } ->
    check_scalar_expr env scope cond;
    check_stmts env scope then_branch;
    check_stmts env scope else_branch
  | Ast.While { cond; body } ->
    check_scalar_expr env scope cond;
    check_stmts env scope body
  | Ast.Do_while { body; cond } ->
    check_stmts env scope body;
    check_scalar_expr env scope cond
  | Ast.For { init; cond; step; body } ->
    let inner = Hashtbl.create 4 :: scope in
    (match init with Some s0 -> check_stmt env inner s0 | None -> ());
    (match cond with Some e -> check_scalar_expr env inner e | None -> ());
    check_stmts env inner body;
    (match step with Some s0 -> check_stmt env inner s0 | None -> ())
  | Ast.Return value -> (
    match value with Some e -> check_scalar_expr env scope e | None -> ())
  | Ast.Expr_stmt e -> (
    (* statement calls may be void; anything else must still scope-check *)
    match e.desc with
    | Ast.Call (fname, args) when not (List.mem fname Ast.builtins) -> (
      match Hashtbl.find_opt env.funcs fname with
      | None -> fail e.epos "call to undefined function %S" fname
      | Some f -> check_call env scope e.epos f args)
    | _ -> check_scalar_expr env scope e)
  | Ast.Block body -> check_stmts env scope body

and check_stmts env scope stmts =
  let inner = Hashtbl.create 8 :: scope in
  List.iter (check_stmt env inner) stmts

(* Count/locate return statements to enforce the single-trailing-return
   shape the inliner relies on. *)
let rec returns_in stmts =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.sdesc with
      | Ast.Return v -> [ (s.spos, v) ]
      | Ast.If { then_branch; else_branch; _ } ->
        returns_in then_branch @ returns_in else_branch
      | Ast.While { body; _ } | Ast.Do_while { body; _ } -> returns_in body
      | Ast.For { body; _ } -> returns_in body
      | Ast.Block body -> returns_in body
      | Ast.Decl _ | Ast.Assign _ | Ast.Array_assign _ | Ast.Expr_stmt _ -> [])
    stmts

let check_func env (f : Ast.func) =
  let scope = [ Hashtbl.create 8 ] in
  List.iter
    (fun p ->
      match p with
      | Ast.Scalar_param { pname; _ } ->
        (match scope with
        | tbl :: _ -> Hashtbl.replace tbl pname Scalar
        | [] -> assert false)
      | Ast.Array_param { pname; _ } -> (
        match scope with
        | tbl :: _ -> Hashtbl.replace tbl pname (Array { is_const = false })
        | [] -> assert false))
    f.params;
  check_stmts env scope f.body;
  let rets = returns_in f.body in
  if f.returns_value then begin
    match rets with
    | [ (_, Some _) ] -> (
      (* must also be the last top-level statement *)
      match List.rev f.body with
      | { Ast.sdesc = Ast.Return (Some _); _ } :: _ -> ()
      | _ ->
        fail f.fpos
          "function %S: the single 'return' must be the last statement"
          f.fname)
    | [] -> fail f.fpos "function %S must return a value" f.fname
    | [ (pos, None) ] -> fail pos "function %S must return a value" f.fname
    | _ :: _ :: _ ->
      fail f.fpos "function %S has multiple returns (one trailing return only)"
        f.fname
  end
  else
    match rets with
    | [] -> ()
    | (pos, _) :: _ -> fail pos "void function %S cannot contain 'return'" f.fname

let check prog =
  try
    let env = build_env prog in
    List.iter (check_func env) prog.funcs;
    (match Hashtbl.find_opt env.funcs "main" with
    | None -> fail { Token.line = 0; col = 0 } "program lacks a 'main' function"
    | Some f ->
      if f.params <> [] then fail f.fpos "'main' must take no parameters");
    Ok ()
  with Err e -> Error e

let check_exn prog =
  match check prog with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%d:%d: %s" e.pos.line e.pos.col e.msg)
