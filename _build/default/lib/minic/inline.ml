exception Recursive of string

type ctx = {
  funcs : (string, Ast.func) Hashtbl.t;
  mutable counter : int;
}

let fresh ctx base =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s__%d" base ctx.counter

(* --- renaming --------------------------------------------------------- *)

type rename_scope = (string, string) Hashtbl.t list

let rename_lookup (scope : rename_scope) name =
  let rec walk = function
    | [] -> name
    | tbl :: rest -> (
      match Hashtbl.find_opt tbl name with Some n -> n | None -> walk rest)
  in
  walk scope

let rec rename_expr scope (e : Ast.expr) =
  let desc =
    match e.Ast.desc with
    | Ast.Num n -> Ast.Num n
    | Ast.Ident name -> Ast.Ident (rename_lookup scope name)
    | Ast.Index (arr, ix) -> Ast.Index (rename_lookup scope arr, rename_expr scope ix)
    | Ast.Call (f, args) -> Ast.Call (f, List.map (rename_expr scope) args)
    | Ast.Unary (op, a) -> Ast.Unary (op, rename_expr scope a)
    | Ast.Binary (op, a, b) ->
      Ast.Binary (op, rename_expr scope a, rename_expr scope b)
    | Ast.Ternary (a, b, c) ->
      Ast.Ternary (rename_expr scope a, rename_expr scope b, rename_expr scope c)
  in
  { e with Ast.desc }

let rec rename_stmt ctx scope (s : Ast.stmt) =
  let sdesc =
    match s.Ast.sdesc with
    | Ast.Decl { name; width; init } ->
      let init = Option.map (rename_expr scope) init in
      let name' = fresh ctx name in
      (match scope with
      | tbl :: _ -> Hashtbl.replace tbl name name'
      | [] -> assert false);
      Ast.Decl { name = name'; width; init }
    | Ast.Assign { name; value } ->
      Ast.Assign { name = rename_lookup scope name; value = rename_expr scope value }
    | Ast.Array_assign { arr; index; value } ->
      Ast.Array_assign
        {
          arr = rename_lookup scope arr;
          index = rename_expr scope index;
          value = rename_expr scope value;
        }
    | Ast.If { cond; then_branch; else_branch } ->
      Ast.If
        {
          cond = rename_expr scope cond;
          then_branch = rename_stmts ctx scope then_branch;
          else_branch = rename_stmts ctx scope else_branch;
        }
    | Ast.While { cond; body } ->
      Ast.While { cond = rename_expr scope cond; body = rename_stmts ctx scope body }
    | Ast.Do_while { body; cond } ->
      Ast.Do_while { body = rename_stmts ctx scope body; cond = rename_expr scope cond }
    | Ast.For { init; cond; step; body } ->
      let inner = Hashtbl.create 4 :: scope in
      let init = Option.map (rename_stmt ctx inner) init in
      let cond = Option.map (rename_expr inner) cond in
      let body = rename_stmts ctx inner body in
      let step = Option.map (rename_stmt ctx inner) step in
      Ast.For { init; cond; step; body }
    | Ast.Return v -> Ast.Return (Option.map (rename_expr scope) v)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (rename_expr scope e)
    | Ast.Block body -> Ast.Block (rename_stmts ctx scope body)
  in
  { s with Ast.sdesc }

and rename_stmts ctx scope stmts =
  let inner = Hashtbl.create 8 :: scope in
  List.map (rename_stmt ctx inner) stmts

(* --- inlining --------------------------------------------------------- *)

(* [inline_call ctx stack pos f args] returns the statements computing the
   call and, when the callee returns a value, the name of the temporary
   holding the result. Arguments have already been call-extracted. *)
let rec inline_call ctx stack pos (f : Ast.func) args =
  if List.mem f.Ast.fname stack then raise (Recursive f.Ast.fname);
  let stack = f.Ast.fname :: stack in
  (* Bind parameters. *)
  let scope = [ Hashtbl.create 8 ] in
  let binding_stmts =
    List.concat
      (List.map2
         (fun param (arg : Ast.expr) ->
           match param with
           | Ast.Scalar_param { pname; pwidth } ->
             let tmp = fresh ctx (f.Ast.fname ^ "_" ^ pname) in
             (match scope with
             | tbl :: _ -> Hashtbl.replace tbl pname tmp
             | [] -> assert false);
             [ { Ast.sdesc = Ast.Decl { name = tmp; width = pwidth; init = Some arg };
                 spos = pos } ]
           | Ast.Array_param { pname; _ } ->
             let actual =
               match arg.Ast.desc with
               | Ast.Ident name -> name
               | _ -> invalid_arg "inline: array argument is not a name"
             in
             (match scope with
             | tbl :: _ -> Hashtbl.replace tbl pname actual
             | [] -> assert false);
             [])
         f.Ast.params args)
  in
  let body = rename_stmts ctx scope f.Ast.body in
  if f.Ast.returns_value then begin
    match List.rev body with
    | { Ast.sdesc = Ast.Return (Some ret_expr); spos } :: rev_rest ->
      let body_no_ret = List.rev rev_rest in
      let inlined = inline_stmts ctx stack (body_no_ret) in
      let ret_tmp = fresh ctx (f.Ast.fname ^ "_ret") in
      let prelude_of_ret, ret_expr = extract_calls ctx stack ret_expr in
      ( binding_stmts @ inlined @ prelude_of_ret
        @ [ { Ast.sdesc = Ast.Decl { name = ret_tmp; width = 32; init = Some ret_expr };
              spos } ],
        Some ret_tmp )
    | _ -> invalid_arg "inline: missing trailing return"
  end
  else (binding_stmts @ inline_stmts ctx stack body, None)

(* Replace every call in [e] by a temporary computed by prelude
   statements (callee bodies are spliced recursively). *)
and extract_calls ctx stack (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Num _ | Ast.Ident _ -> ([], e)
  | Ast.Index (arr, ix) ->
    let p, ix = extract_calls ctx stack ix in
    (p, { e with Ast.desc = Ast.Index (arr, ix) })
  | Ast.Unary (op, a) ->
    let p, a = extract_calls ctx stack a in
    (p, { e with Ast.desc = Ast.Unary (op, a) })
  | Ast.Binary (op, a, b) ->
    let pa, a = extract_calls ctx stack a in
    let pb, b = extract_calls ctx stack b in
    (pa @ pb, { e with Ast.desc = Ast.Binary (op, a, b) })
  | Ast.Ternary (a, b, c) ->
    let pa, a = extract_calls ctx stack a in
    let pb, b = extract_calls ctx stack b in
    let pc, c = extract_calls ctx stack c in
    (pa @ pb @ pc, { e with Ast.desc = Ast.Ternary (a, b, c) })
  | Ast.Call (fname, args) when List.mem fname Ast.builtins ->
    let preludes, args =
      List.split (List.map (extract_calls ctx stack) args)
    in
    (List.concat preludes, { e with Ast.desc = Ast.Call (fname, args) })
  | Ast.Call (fname, args) -> (
    let preludes, args = List.split (List.map (extract_calls ctx stack) args) in
    let f =
      match Hashtbl.find_opt ctx.funcs fname with
      | Some f -> f
      | None -> invalid_arg ("inline: unknown function " ^ fname)
    in
    let call_stmts, ret = inline_call ctx stack e.Ast.epos f args in
    match ret with
    | Some tmp ->
      ( List.concat preludes @ call_stmts,
        { e with Ast.desc = Ast.Ident tmp } )
    | None -> invalid_arg ("inline: void call in expression " ^ fname))

and inline_stmt ctx stack (s : Ast.stmt) : Ast.stmt list =
  let with_prelude prelude sdesc = prelude @ [ { s with Ast.sdesc } ] in
  match s.Ast.sdesc with
  | Ast.Decl { name; width; init } -> (
    match init with
    | None -> [ s ]
    | Some e ->
      let p, e = extract_calls ctx stack e in
      with_prelude p (Ast.Decl { name; width; init = Some e }))
  | Ast.Assign { name; value } ->
    let p, value = extract_calls ctx stack value in
    with_prelude p (Ast.Assign { name; value })
  | Ast.Array_assign { arr; index; value } ->
    let pi, index = extract_calls ctx stack index in
    let pv, value = extract_calls ctx stack value in
    with_prelude (pi @ pv) (Ast.Array_assign { arr; index; value })
  | Ast.If { cond; then_branch; else_branch } ->
    let p, cond = extract_calls ctx stack cond in
    with_prelude p
      (Ast.If
         {
           cond;
           then_branch = inline_stmts ctx stack then_branch;
           else_branch = inline_stmts ctx stack else_branch;
         })
  | Ast.While { cond; body } ->
    (* Calls in loop conditions would need body duplication; typecheckable
       programs in this codebase avoid them, and we reject them here. *)
    if Ast.expr_calls cond <> [] then
      invalid_arg "inline: call in while-condition is not supported";
    [ { s with Ast.sdesc = Ast.While { cond; body = inline_stmts ctx stack body } } ]
  | Ast.Do_while { body; cond } ->
    if Ast.expr_calls cond <> [] then
      invalid_arg "inline: call in do-while-condition is not supported";
    [ { s with Ast.sdesc = Ast.Do_while { body = inline_stmts ctx stack body; cond } } ]
  | Ast.For { init; cond; step; body } ->
    (match cond with
    | Some c when Ast.expr_calls c <> [] ->
      invalid_arg "inline: call in for-condition is not supported"
    | _ -> ());
    let init_stmts, init' =
      match init with
      | None -> ([], None)
      | Some s0 -> (
        match inline_stmt ctx stack s0 with
        | [] -> ([], None)
        | [ single ] -> ([], Some single)
        | multi -> (
          (* calls in the init: hoist the prelude before the loop *)
          match List.rev multi with
          | last :: rev_prefix -> (List.rev rev_prefix, Some last)
          | [] -> assert false))
    in
    let step' =
      match step with
      | None -> None
      | Some s0 -> (
        match inline_stmt ctx stack s0 with
        | [ single ] -> Some single
        | _ -> invalid_arg "inline: call in for-step is not supported")
    in
    init_stmts
    @ [ { s with
          Ast.sdesc =
            Ast.For { init = init'; cond; step = step'; body = inline_stmts ctx stack body } } ]
  | Ast.Return v -> (
    match v with
    | None -> [ s ]
    | Some e ->
      let p, e = extract_calls ctx stack e in
      with_prelude p (Ast.Return (Some e)))
  | Ast.Expr_stmt e -> (
    match e.Ast.desc with
    | Ast.Call (fname, args) when not (List.mem fname Ast.builtins) -> (
      let preludes, args = List.split (List.map (extract_calls ctx stack) args) in
      match Hashtbl.find_opt ctx.funcs fname with
      | None -> invalid_arg ("inline: unknown function " ^ fname)
      | Some f ->
        let call_stmts, _ret = inline_call ctx stack e.Ast.epos f args in
        List.concat preludes @ call_stmts)
    | _ ->
      let p, e = extract_calls ctx stack e in
      with_prelude p (Ast.Expr_stmt e))
  | Ast.Block body -> [ { s with Ast.sdesc = Ast.Block (inline_stmts ctx stack body) } ]

and inline_stmts ctx stack stmts = List.concat_map (inline_stmt ctx stack) stmts

let program (prog : Ast.program) =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace funcs f.Ast.fname f) prog.funcs;
  let ctx = { funcs; counter = 0 } in
  let main =
    match Hashtbl.find_opt funcs "main" with
    | Some f -> f
    | None -> invalid_arg "inline: no main function"
  in
  (* Rename main's own locals apart first: lowering maps source names to
     registers globally, so shadowed declarations must not collide. *)
  let renamed = rename_stmts ctx [ Hashtbl.create 8 ] main.Ast.body in
  let body = inline_stmts ctx [ "main" ] renamed in
  { prog with Ast.funcs = [ { main with Ast.body } ] }
