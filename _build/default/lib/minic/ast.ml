type pos = Token.pos

type unop = Neg | Lognot | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type expr = { desc : expr_desc; epos : pos }

and expr_desc =
  | Num of int
  | Ident of string
  | Index of string * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of { name : string; width : int; init : expr option }
  | Assign of { name : string; value : expr }
  | Array_assign of { arr : string; index : expr; value : expr }
  | If of { cond : expr; then_branch : stmt list; else_branch : stmt list }
  | While of { cond : expr; body : stmt list }
  | Do_while of { body : stmt list; cond : expr }
  | For of {
      init : stmt option;
      cond : expr option;
      step : stmt option;
      body : stmt list;
    }
  | Return of expr option
  | Expr_stmt of expr
  | Block of stmt list

type param =
  | Scalar_param of { pname : string; pwidth : int }
  | Array_param of { pname : string; pelem_width : int }

type func = {
  fname : string;
  params : param list;
  returns_value : bool;
  body : stmt list;
  fpos : pos;
}

type global =
  | Global_array of {
      gname : string;
      size : int;
      ginit : int list option;
      is_const : bool;
      gelem_width : int;
    }
  | Global_scalar of { gname : string; gwidth : int; gvalue : int option }

type program = { globals : global list; funcs : func list }

let builtins = [ "min"; "max"; "abs" ]

let rec expr_calls e =
  match e.desc with
  | Num _ | Ident _ -> []
  | Index (_, ix) -> expr_calls ix
  | Call (f, args) ->
    let inner = List.concat_map expr_calls args in
    if List.mem f builtins then inner else inner @ [ f ]
  | Unary (_, a) -> expr_calls a
  | Binary (_, a, b) -> expr_calls a @ expr_calls b
  | Ternary (a, b, c) -> expr_calls a @ expr_calls b @ expr_calls c

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let pp_binop ppf op = Format.pp_print_string ppf (binop_name op)

let pp_unop ppf op =
  Format.pp_print_string ppf
    (match op with Neg -> "-" | Lognot -> "!" | Bitnot -> "~")
