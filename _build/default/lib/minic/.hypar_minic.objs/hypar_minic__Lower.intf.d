lib/minic/lower.mli: Ast Hypar_ir
