lib/minic/ast.mli: Format Token
