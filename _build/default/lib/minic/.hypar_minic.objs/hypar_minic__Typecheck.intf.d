lib/minic/typecheck.mli: Ast Token
