lib/minic/token.mli:
