lib/minic/inline.ml: Ast Hashtbl List Option Printf
