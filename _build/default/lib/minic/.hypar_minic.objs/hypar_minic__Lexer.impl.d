lib/minic/lexer.ml: Format List String Token
