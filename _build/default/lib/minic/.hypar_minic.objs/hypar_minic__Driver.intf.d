lib/minic/driver.mli: Hypar_ir
