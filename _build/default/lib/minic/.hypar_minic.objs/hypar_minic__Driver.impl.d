lib/minic/driver.ml: Hypar_ir Inline Lexer Lower Parser Printf Token Typecheck
