lib/minic/lower.ml: Array Ast Hashtbl Hypar_ir List Option Printf Token
