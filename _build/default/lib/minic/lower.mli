(** Lowering of an inlined Mini-C program to the {!Hypar_ir.Cdfg.t} the
    methodology consumes (step 1 of the paper's flow).

    Control structures become basic blocks in the canonical shapes that
    make loop headers natural-loop headers ([for]/[while]: a condition
    block dominating the body; [do-while]: the body block with a trailing
    conditional branch).  Expressions are lowered to three-address code
    with fresh temporaries; logical operators are strict (no
    short-circuiting) and normalise their operands to 0/1 only when the
    operand is not already boolean-valued. *)

val program : ?name:string -> Ast.program -> Hypar_ir.Cdfg.t
(** Lowers the (typechecked, inlined — a single [main]) program.
    Raises [Invalid_argument] on programs that were not inlined. *)
