module Ir = Hypar_ir

type state = {
  mutable next_var : int;
  mutable next_label : int;
  vars : (string, Ir.Instr.var) Hashtbl.t;  (* source name -> register *)
  bool_vars : (int, unit) Hashtbl.t;  (* vids known to hold 0/1 *)
  mutable pending : Ir.Instr.t list;  (* reversed *)
  mutable current_label : string;
  mutable block_open : bool;
  mutable blocks : Ir.Block.t list;  (* reversed *)
}

let fresh_var st ?(width = 16) name =
  let v = { Ir.Instr.vname = name; vid = st.next_var; vwidth = width } in
  st.next_var <- st.next_var + 1;
  v

let new_label st hint =
  let l = Printf.sprintf "L%d_%s" st.next_label hint in
  st.next_label <- st.next_label + 1;
  l

let emit st i = st.pending <- i :: st.pending

let finish st term =
  let instrs = List.rev st.pending in
  st.pending <- [];
  st.block_open <- false;
  st.blocks <-
    Ir.Block.make ~label:st.current_label ~instrs ~term :: st.blocks

let start st label =
  st.current_label <- label;
  st.block_open <- true

let source_var st name ~width =
  match Hashtbl.find_opt st.vars name with
  | Some v -> v
  | None ->
    let v = fresh_var st ~width name in
    Hashtbl.replace st.vars name v;
    v

let lookup_var st name =
  match Hashtbl.find_opt st.vars name with
  | Some v -> v
  | None -> invalid_arg ("lower: unbound variable " ^ name)

(* --- widths ------------------------------------------------------------ *)

let width_of_int n =
  let n = abs n in
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  let w = 1 + bits 0 n in
  if w > 32 then 32 else w

let width_of_operand = function
  | Ir.Instr.Var v -> v.Ir.Instr.vwidth
  | Ir.Instr.Imm n -> width_of_int n

let clamp_width w = if w > 32 then 32 else if w < 1 then 1 else w

(* --- expressions -------------------------------------------------------- *)

let is_bool_operand st = function
  | Ir.Instr.Imm (0 | 1) -> true
  | Ir.Instr.Imm _ -> false
  | Ir.Instr.Var v -> Hashtbl.mem st.bool_vars v.Ir.Instr.vid

let alu_of_binop = function
  | Ast.Add -> Some Ir.Types.Add
  | Ast.Sub -> Some Ir.Types.Sub
  | Ast.Band -> Some Ir.Types.And
  | Ast.Bor -> Some Ir.Types.Or
  | Ast.Bxor -> Some Ir.Types.Xor
  | Ast.Shl -> Some Ir.Types.Shl
  | Ast.Shr -> Some Ir.Types.Ashr (* C '>>' on signed ints: arithmetic *)
  | Ast.Lt -> Some Ir.Types.Lt
  | Ast.Le -> Some Ir.Types.Le
  | Ast.Gt -> Some Ir.Types.Gt
  | Ast.Ge -> Some Ir.Types.Ge
  | Ast.Eq -> Some Ir.Types.Eq
  | Ast.Ne -> Some Ir.Types.Ne
  | Ast.Mul | Ast.Div | Ast.Mod | Ast.Land | Ast.Lor -> None

let is_comparison = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor ->
    false

let result_width op a b =
  match op with
  | Ast.Mul -> clamp_width (width_of_operand a + width_of_operand b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor -> 1
  | Ast.Add | Ast.Sub ->
    clamp_width (1 + max (width_of_operand a) (width_of_operand b))
  | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    clamp_width (max (width_of_operand a) (width_of_operand b))

let rec lower_expr st (e : Ast.expr) : Ir.Instr.operand =
  match e.Ast.desc with
  | Ast.Num n -> Ir.Instr.Imm n
  | Ast.Ident name -> Ir.Instr.Var (lookup_var st name)
  | Ast.Index (arr, ix) ->
    let index = lower_expr st ix in
    let dst = fresh_var st ~width:16 "t_load" in
    emit st (Ir.Instr.Load { dst; arr; index });
    Ir.Instr.Var dst
  | Ast.Call (fname, args) -> lower_builtin st e.Ast.epos fname args
  | Ast.Unary (op, a) -> lower_unary st op a
  | Ast.Binary (op, a, b) -> lower_binary st op a b
  | Ast.Ternary (c, t, f) ->
    let cond = lower_expr st c in
    let if_true = lower_expr st t in
    let if_false = lower_expr st f in
    let width = max (width_of_operand if_true) (width_of_operand if_false) in
    let dst = fresh_var st ~width "t_sel" in
    emit st (Ir.Instr.Select { dst; cond; if_true; if_false });
    Ir.Instr.Var dst

and lower_builtin st pos fname args =
  match (fname, args) with
  | "min", [ a; b ] | "max", [ a; b ] ->
    let a = lower_expr st a and b = lower_expr st b in
    let op = if fname = "min" then Ir.Types.Min else Ir.Types.Max in
    let width = max (width_of_operand a) (width_of_operand b) in
    let dst = fresh_var st ~width ("t_" ^ fname) in
    emit st (Ir.Instr.Bin { dst; op; a; b });
    Ir.Instr.Var dst
  | "abs", [ a ] ->
    let a = lower_expr st a in
    let dst = fresh_var st ~width:(width_of_operand a) "t_abs" in
    emit st (Ir.Instr.Un { dst; op = Ir.Types.Abs; a });
    Ir.Instr.Var dst
  | _ ->
    invalid_arg
      (Printf.sprintf "lower: unexpected call to %S at %d:%d (program not inlined?)"
         fname pos.Token.line pos.Token.col)

and lower_unary st op a =
  match op with
  | Ast.Neg ->
    let a = lower_expr st a in
    let dst = fresh_var st ~width:(clamp_width (1 + width_of_operand a)) "t_neg" in
    emit st (Ir.Instr.Un { dst; op = Ir.Types.Neg; a });
    Ir.Instr.Var dst
  | Ast.Bitnot ->
    let a = lower_expr st a in
    let dst = fresh_var st ~width:(width_of_operand a) "t_not" in
    emit st (Ir.Instr.Un { dst; op = Ir.Types.Not; a });
    Ir.Instr.Var dst
  | Ast.Lognot ->
    let a = lower_expr st a in
    let dst = fresh_var st ~width:1 "t_lnot" in
    emit st (Ir.Instr.Bin { dst; op = Ir.Types.Eq; a; b = Ir.Instr.Imm 0 });
    Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ();
    Ir.Instr.Var dst

and as_bool st op =
  if is_bool_operand st op then op
  else begin
    let dst = fresh_var st ~width:1 "t_bool" in
    emit st (Ir.Instr.Bin { dst; op = Ir.Types.Ne; a = op; b = Ir.Instr.Imm 0 });
    Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ();
    Ir.Instr.Var dst
  end

and lower_binary st op a b =
  match op with
  | Ast.Land | Ast.Lor ->
    let a = as_bool st (lower_expr st a) in
    let b = as_bool st (lower_expr st b) in
    let ir_op = if op = Ast.Land then Ir.Types.And else Ir.Types.Or in
    let dst = fresh_var st ~width:1 "t_log" in
    emit st (Ir.Instr.Bin { dst; op = ir_op; a; b });
    Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ();
    Ir.Instr.Var dst
  | Ast.Mul ->
    let a = lower_expr st a and b = lower_expr st b in
    let dst = fresh_var st ~width:(result_width Ast.Mul a b) "t_mul" in
    emit st (Ir.Instr.Mul { dst; a; b });
    Ir.Instr.Var dst
  | Ast.Div ->
    let a = lower_expr st a and b = lower_expr st b in
    let dst = fresh_var st ~width:(result_width Ast.Div a b) "t_div" in
    emit st (Ir.Instr.Div { dst; a; b });
    Ir.Instr.Var dst
  | Ast.Mod ->
    let a = lower_expr st a and b = lower_expr st b in
    let dst = fresh_var st ~width:(result_width Ast.Mod a b) "t_mod" in
    emit st (Ir.Instr.Rem { dst; a; b });
    Ir.Instr.Var dst
  | other -> (
    match alu_of_binop other with
    | Some ir_op ->
      let a = lower_expr st a and b = lower_expr st b in
      let dst = fresh_var st ~width:(result_width other a b) "t" in
      emit st (Ir.Instr.Bin { dst; op = ir_op; a; b });
      if is_comparison other then Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ();
      Ir.Instr.Var dst
    | None -> assert false)

(* Lower [e] directly into destination register [dst] (avoids a trailing
   move for the common "x = a op b" statements). *)
let lower_expr_into st (dst : Ir.Instr.var) (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Binary (op, a, b) when alu_of_binop op <> None && op <> Ast.Land && op <> Ast.Lor ->
    let ir_op = Option.get (alu_of_binop op) in
    let a = lower_expr st a and b = lower_expr st b in
    emit st (Ir.Instr.Bin { dst; op = ir_op; a; b });
    if is_comparison op then Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ()
    else Hashtbl.remove st.bool_vars dst.Ir.Instr.vid
  | Ast.Binary (Ast.Mul, a, b) ->
    let a = lower_expr st a and b = lower_expr st b in
    Hashtbl.remove st.bool_vars dst.Ir.Instr.vid;
    emit st (Ir.Instr.Mul { dst; a; b })
  | Ast.Binary (Ast.Div, a, b) ->
    let a = lower_expr st a and b = lower_expr st b in
    Hashtbl.remove st.bool_vars dst.Ir.Instr.vid;
    emit st (Ir.Instr.Div { dst; a; b })
  | Ast.Binary (Ast.Mod, a, b) ->
    let a = lower_expr st a and b = lower_expr st b in
    Hashtbl.remove st.bool_vars dst.Ir.Instr.vid;
    emit st (Ir.Instr.Rem { dst; a; b })
  | Ast.Index (arr, ix) ->
    let index = lower_expr st ix in
    Hashtbl.remove st.bool_vars dst.Ir.Instr.vid;
    emit st (Ir.Instr.Load { dst; arr; index })
  | _ ->
    let src = lower_expr st e in
    if is_bool_operand st src then Hashtbl.replace st.bool_vars dst.Ir.Instr.vid ()
    else Hashtbl.remove st.bool_vars dst.Ir.Instr.vid;
    emit st (Ir.Instr.Mov { dst; src })

(* --- statements ---------------------------------------------------------- *)

let rec lower_stmt st (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl { name; width; init } -> (
    let v = source_var st name ~width in
    match init with
    | Some e -> lower_expr_into st v e
    | None -> emit st (Ir.Instr.Mov { dst = v; src = Ir.Instr.Imm 0 }))
  | Ast.Assign { name; value } -> lower_expr_into st (lookup_var st name) value
  | Ast.Array_assign { arr; index; value } ->
    let index = lower_expr st index in
    let value = lower_expr st value in
    emit st (Ir.Instr.Store { arr; index; value })
  | Ast.If { cond; then_branch; else_branch } ->
    let cond_op = lower_expr st cond in
    let then_l = new_label st "then" in
    let join_l = new_label st "join" in
    let else_l =
      if else_branch = [] then join_l else new_label st "else"
    in
    finish st (Ir.Block.Branch { cond = cond_op; if_true = then_l; if_false = else_l });
    start st then_l;
    lower_stmts st then_branch;
    finish st (Ir.Block.Jump join_l);
    if else_branch <> [] then begin
      start st else_l;
      lower_stmts st else_branch;
      finish st (Ir.Block.Jump join_l)
    end;
    start st join_l
  | Ast.While { cond; body } ->
    (* Loop rotation: guard at entry, latch condition at the body's tail,
       so simple loop bodies become single self-looping basic blocks (the
       shape of the paper's CDFG kernels). *)
    let body_l = new_label st "while_body" in
    let exit_l = new_label st "while_exit" in
    let guard = lower_expr st cond in
    finish st (Ir.Block.Branch { cond = guard; if_true = body_l; if_false = exit_l });
    start st body_l;
    lower_stmts st body;
    let latch = lower_expr st cond in
    finish st (Ir.Block.Branch { cond = latch; if_true = body_l; if_false = exit_l });
    start st exit_l
  | Ast.Do_while { body; cond } ->
    let body_l = new_label st "do_body" in
    let exit_l = new_label st "do_exit" in
    finish st (Ir.Block.Jump body_l);
    start st body_l;
    lower_stmts st body;
    let cond_op = lower_expr st cond in
    finish st (Ir.Block.Branch { cond = cond_op; if_true = body_l; if_false = exit_l });
    start st exit_l
  | Ast.For { init; cond; step; body } ->
    (* Rotated like [while]: init and guard in the preheader; body, step
       and latch condition in one tail block. *)
    (match init with Some s0 -> lower_stmt st s0 | None -> ());
    let body_l = new_label st "for_body" in
    let exit_l = new_label st "for_exit" in
    let guard =
      match cond with Some c -> lower_expr st c | None -> Ir.Instr.Imm 1
    in
    finish st (Ir.Block.Branch { cond = guard; if_true = body_l; if_false = exit_l });
    start st body_l;
    lower_stmts st body;
    (match step with Some s0 -> lower_stmt st s0 | None -> ());
    let latch =
      match cond with Some c -> lower_expr st c | None -> Ir.Instr.Imm 1
    in
    finish st (Ir.Block.Branch { cond = latch; if_true = body_l; if_false = exit_l });
    start st exit_l
  | Ast.Return value ->
    (* typecheck guarantees this is the last statement of the program *)
    let op = Option.map (lower_expr st) value in
    finish st (Ir.Block.Return op)
  | Ast.Expr_stmt e ->
    (* evaluated for effect only; loads/ops are dead and cleaned by DCE *)
    ignore (lower_expr st e)
  | Ast.Block body -> lower_stmts st body

and lower_stmts st stmts = List.iter (lower_stmt st) stmts

(* --- program ------------------------------------------------------------- *)

let array_decl_of_global = function
  | Ast.Global_array { gname; size; ginit; is_const; gelem_width } ->
    let init =
      Option.map
        (fun vals ->
          let arr = Array.make size 0 in
          List.iteri (fun i v -> if i < size then arr.(i) <- v) vals;
          arr)
        ginit
    in
    Some
      { Ir.Cdfg.aname = gname; size; init; is_const; elem_width = gelem_width }
  | Ast.Global_scalar _ -> None

let program ?name (prog : Ast.program) =
  let main =
    match prog.Ast.funcs with
    | [ f ] when f.Ast.fname = "main" -> f
    | _ -> invalid_arg "lower: expected a single inlined 'main'"
  in
  let st =
    {
      next_var = 0;
      next_label = 0;
      vars = Hashtbl.create 64;
      bool_vars = Hashtbl.create 64;
      pending = [];
      current_label = "entry";
      block_open = true;
      blocks = [];
    }
  in
  (* global scalar initialisation belongs to the entry block *)
  List.iter
    (fun g ->
      match g with
      | Ast.Global_scalar { gname; gwidth; gvalue } ->
        let v = source_var st gname ~width:gwidth in
        emit st (Ir.Instr.Mov { dst = v; src = Ir.Instr.Imm (Option.value gvalue ~default:0) })
      | Ast.Global_array _ -> ())
    prog.Ast.globals;
  lower_stmts st main.Ast.body;
  if st.block_open then finish st (Ir.Block.Return None);
  let blocks = List.rev st.blocks in
  let arrays = List.filter_map array_decl_of_global prog.Ast.globals in
  let cdfg_name =
    match name with Some n -> n | None -> "minic"
  in
  Ir.Cdfg.make ~name:cdfg_name ~arrays (Ir.Cfg.of_blocks blocks)
