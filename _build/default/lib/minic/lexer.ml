exception Error of { pos : Token.pos; msg : string }

let error pos fmt = Format.kasprintf (fun msg -> raise (Error { pos; msg })) fmt

let keywords =
  [
    ("int", Token.Kw_int);
    ("int8", Token.Kw_int8);
    ("int16", Token.Kw_int);
    ("int32", Token.Kw_int32);
    ("void", Token.Kw_void);
    ("const", Token.Kw_const);
    ("if", Token.Kw_if);
    ("else", Token.Kw_else);
    ("while", Token.Kw_while);
    ("do", Token.Kw_do);
    ("for", Token.Kw_for);
    ("return", Token.Kw_return);
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

type state = { src : string; mutable i : int; mutable line : int; mutable col : int }

let peek st k =
  let j = st.i + k in
  if j < String.length st.src then Some st.src.[j] else None

let advance st =
  (match peek st 0 with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.i <- st.i + 1

let current_pos st = { Token.line = st.line; col = st.col }

let rec skip_ws_and_comments st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' -> (
    match peek st 1 with
    | Some '/' ->
      let rec to_eol () =
        match peek st 0 with
        | Some '\n' | None -> ()
        | Some _ ->
          advance st;
          to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
    | Some '*' ->
      let start = current_pos st in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st 0, peek st 1) with
        | Some '*', Some '/' ->
          advance st;
          advance st
        | Some _, _ ->
          advance st;
          to_close ()
        | None, _ -> error start "unterminated block comment"
      in
      to_close ();
      skip_ws_and_comments st
    | Some _ | None -> ())
  | Some _ | None -> ()

let lex_number st =
  let pos = current_pos st in
  let start = st.i in
  let hex =
    match (peek st 0, peek st 1) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      true
    | _ -> false
  in
  let valid = if hex then is_hex else is_digit in
  let rec consume () =
    match peek st 0 with
    | Some c when valid c ->
      advance st;
      consume ()
    | Some _ | None -> ()
  in
  consume ();
  let text = String.sub st.src start (st.i - start) in
  match int_of_string_opt text with
  | Some n -> { Token.tok = Int_lit n; pos }
  | None -> error pos "invalid integer literal %S" text

let lex_ident st =
  let pos = current_pos st in
  let start = st.i in
  let rec consume () =
    match peek st 0 with
    | Some c when is_ident_char c ->
      advance st;
      consume ()
    | Some _ | None -> ()
  in
  consume ();
  let text = String.sub st.src start (st.i - start) in
  let tok =
    match List.assoc_opt text keywords with
    | Some kw -> kw
    | None -> Token.Ident text
  in
  { Token.tok; pos }

let lex_symbol st =
  let pos = current_pos st in
  let two tok =
    advance st;
    advance st;
    { Token.tok; pos }
  in
  let one tok =
    advance st;
    { Token.tok; pos }
  in
  let three tok =
    advance st;
    advance st;
    advance st;
    { Token.tok; pos }
  in
  match (peek st 0, peek st 1, peek st 2) with
  | Some '<', Some '<', Some '=' -> three Token.Shl_assign
  | Some '>', Some '>', Some '=' -> three Token.Shr_assign
  | _ -> (
  match (peek st 0, peek st 1) with
  | Some '<', Some '<' -> two Token.Shl
  | Some '>', Some '>' -> two Token.Shr
  | Some '<', Some '=' -> two Token.Le
  | Some '>', Some '=' -> two Token.Ge
  | Some '=', Some '=' -> two Token.Eq_eq
  | Some '!', Some '=' -> two Token.Bang_eq
  | Some '&', Some '&' -> two Token.Amp_amp
  | Some '|', Some '|' -> two Token.Bar_bar
  | Some '+', Some '=' -> two Token.Plus_assign
  | Some '-', Some '=' -> two Token.Minus_assign
  | Some '*', Some '=' -> two Token.Star_assign
  | Some '&', Some '=' -> two Token.Amp_assign
  | Some '|', Some '=' -> two Token.Bar_assign
  | Some '^', Some '=' -> two Token.Caret_assign
  | Some '+', Some '+' -> two Token.Plus_plus
  | Some '-', Some '-' -> two Token.Minus_minus
  | Some c, _ -> (
    match c with
    | '(' -> one Token.Lparen
    | ')' -> one Token.Rparen
    | '{' -> one Token.Lbrace
    | '}' -> one Token.Rbrace
    | '[' -> one Token.Lbracket
    | ']' -> one Token.Rbracket
    | ';' -> one Token.Semi
    | ',' -> one Token.Comma
    | '=' -> one Token.Assign
    | '+' -> one Token.Plus
    | '-' -> one Token.Minus
    | '*' -> one Token.Star
    | '/' -> one Token.Slash
    | '%' -> one Token.Percent
    | '&' -> one Token.Amp
    | '|' -> one Token.Bar
    | '^' -> one Token.Caret
    | '~' -> one Token.Tilde
    | '!' -> one Token.Bang
    | '<' -> one Token.Lt
    | '>' -> one Token.Gt
    | '?' -> one Token.Question
    | ':' -> one Token.Colon
    | c -> error pos "unexpected character %C" c)
  | None, _ -> { Token.tok = Eof; pos })

let tokenize src =
  let st = { src; i = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_ws_and_comments st;
    match peek st 0 with
    | None -> List.rev ({ Token.tok = Eof; pos = current_pos st } :: acc)
    | Some c when is_digit c -> go (lex_number st :: acc)
    | Some c when is_ident_start c -> go (lex_ident st :: acc)
    | Some _ -> go (lex_symbol st :: acc)
  in
  go []
