(** Whole-program function inlining.

    The paper's CDFG covers one flat procedure (the code handed to the
    reconfigurable hardware), so after type checking every call in [main]
    is inlined — recursively, with locals renamed apart, scalar arguments
    bound to fresh temporaries and array parameters substituted by the
    caller's array names.  Recursion is rejected. *)

exception Recursive of string
(** Raised (with the offending function name) if the call graph is
    cyclic. *)

val program : Ast.program -> Ast.program
(** The same program with [main]'s body fully inlined (other functions
    are dropped). The input must have passed {!Typecheck.check}. *)
