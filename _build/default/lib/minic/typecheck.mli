(** Static semantic checks for Mini-C programs.

    Beyond scope/arity checking, this pass enforces the structural
    restrictions that keep the function inliner simple and the lowering
    faithful to the paper's CDFG model:

    - no recursion is allowed (checked later by {!Inline}), and a function
      that returns a value must do so in exactly one [return], as the last
      statement of its body; [void] functions contain no [return];
    - array arguments must be bare array names (global arrays or array
      parameters);
    - [const] arrays cannot be stored to;
    - a [main] function with no parameters must exist (the program entry
      point lowered to the CDFG). *)

type error = { pos : Token.pos; msg : string }

val check : Ast.program -> (unit, error) result

val check_exn : Ast.program -> unit
(** Like {!check} but raises {!Failure} with a formatted message. *)
