(** Recursive-descent parser for Mini-C. *)

exception Error of { pos : Token.pos; msg : string }

val parse_program : string -> Ast.program
(** Parses a full translation unit. Raises {!Error} (or {!Lexer.Error})
    on malformed input. *)

val parse_expr_string : string -> Ast.expr
(** Parses a single expression (used by unit tests). *)
