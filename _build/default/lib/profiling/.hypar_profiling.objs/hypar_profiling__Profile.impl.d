lib/profiling/profile.ml: Array Format Hypar_ir Interp List
