lib/profiling/profile.mli: Format Hypar_ir Interp
