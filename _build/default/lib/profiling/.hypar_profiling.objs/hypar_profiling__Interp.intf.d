lib/profiling/interp.mli: Hypar_ir
