lib/profiling/interp.ml: Array Bytes Format Hashtbl Hypar_ir List Option
