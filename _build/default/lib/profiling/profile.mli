(** Profiles: the dynamic-analysis product handed to the analysis step.

    Combines the interpreter's per-block execution frequencies with static
    per-block operation counts — the two ingredients of the paper's Eq. 1
    ([total_weight = exec_freq * bb_weight]). *)

type block_stats = {
  block_id : int;
  label : string;
  freq : int;  (** dynamic execution count, the paper's [exec_freq] *)
  static_ops : int;  (** instructions in the block *)
  dynamic_ops : int;  (** freq * static_ops *)
  loads : int;  (** dynamic load count *)
  stores : int;  (** dynamic store count *)
  loop_depth : int;
}

type t = {
  cdfg_name : string;
  blocks : block_stats array;
  edges : ((int * int) * int) list;  (** CFG edge traversal counts *)
  total_instrs_executed : int;
  return_value : int option;
}

val collect :
  ?fuel:int -> ?inputs:(string * int array) list -> Hypar_ir.Cdfg.t -> t
(** Runs the program (see {!Interp.run}) and assembles per-block stats. *)

val of_result : Hypar_ir.Cdfg.t -> Interp.result -> t
(** Assembles a profile from an existing interpreter run. *)

val freq : t -> int -> int
(** Execution frequency of a block id (0 when never executed). *)

val hottest : ?limit:int -> t -> block_stats list
(** Blocks sorted by decreasing [dynamic_ops] (default all). *)

val edge_freq : t -> int -> int -> int
(** Traversal count of the CFG edge (src, dst); 0 when never taken. *)

val pp : Format.formatter -> t -> unit
