(** Temporal partitioning — the paper's Figure 3 algorithm, verbatim.

    Nodes are visited level by level (ASAP order) and packed greedily
    into temporal partitions: a node joins the current partition while
    the accumulated area fits in [A_FPGA]; otherwise a new partition is
    opened with that node.  Dependences never break: every predecessor
    of a node sits at a lower level, hence in the same or an earlier
    partition — the invariant property tests check. *)

type partition = {
  index : int;  (** 1-based, as in the paper *)
  node_ids : int list;  (** in assignment order *)
  area_used : int;
}

type t = {
  partitions : partition list;  (** ascending index *)
  assignment : int array;  (** node id -> partition index *)
}

val partition :
  area:int -> size:(Hypar_ir.Instr.t -> int) -> Hypar_ir.Dfg.t -> t
(** Raises [Invalid_argument] if [area <= 0].  A node larger than the
    whole device still receives its own partition, as in the paper's
    pseudocode. *)

val partition_best_fit :
  area:int -> size:(Hypar_ir.Instr.t -> int) -> Hypar_ir.Dfg.t -> t
(** Baseline for comparison: like the paper's algorithm, nodes are
    visited level by level, but each node is placed into the
    lowest-indexed partition that still has room *and* comes no earlier
    than any of its predecessors' partitions (first-fit with backfill).
    Never produces more partitions than {!partition}; the
    [ablation:temporal] bench quantifies the gap. *)

val count : t -> int
(** Number of temporal partitions (0 for an empty DFG). *)

val is_valid : Hypar_ir.Dfg.t -> t -> bool
(** Checks the dependence invariant: for every edge [u -> v],
    [assignment u <= assignment v]. *)

val pp : Format.formatter -> t -> unit
