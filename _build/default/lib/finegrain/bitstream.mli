(** Configuration bit-stream generation for temporal partitions.

    The paper: "For each temporal segment a configuration bit-stream is
    generated... full reconfiguration of the fine-grain hardware is
    performed, thus the reconfiguration time has the same value for each
    partition."  This module makes that concrete with a Virtex-style
    frame-organised device model: the usable area maps to a CLB grid
    configured column by column; a partition's operations are placed
    row-major and a deterministic bit-stream (with a CRC-16 trailer) is
    produced.  Reconfiguration time then *derives* from bit-stream length
    and configuration-port width — full-device streams for the paper's
    model (constant per partition, as stated), per-column partial streams
    as the ablation alternative ([ablation:reconfig]). *)

type device = {
  clb_area : int;  (** area units per CLB *)
  clbs : int;  (** total CLBs = usable area / clb_area *)
  column_height : int;  (** CLBs per configuration column *)
  columns : int;  (** configuration columns *)
  bits_per_clb : int;  (** configuration bits per CLB *)
  port_bits_per_cycle : int;  (** configuration-port width *)
  header_bits : int;  (** per-stream command header *)
}

val device_of_fpga :
  ?clb_area:int ->
  ?column_height:int ->
  ?bits_per_clb:int ->
  ?port_bits_per_cycle:int ->
  ?header_bits:int ->
  Fpga.t ->
  device
(** Defaults: 4 area units/CLB, 16-CLB columns, 64 bits/CLB, a 64-bit
    configuration port and a 256-bit header. *)

type t = {
  device : device;
  clbs_used : int;
  columns_used : int;
  bit_count : int;  (** header + configured frames + CRC *)
  words : int array;  (** the stream, 16-bit words *)
  crc : int;  (** CRC-16 of the payload (also the last word) *)
}

val generate : device -> op_areas:int list -> t
(** The partial (column-wise) bit-stream configuring one temporal
    partition, operations placed row-major.  Raises [Invalid_argument] if
    the partition does not fit the device (a single oversized operation is
    clamped to the whole device, mirroring {!Temporal.partition}). *)

val generate_full : device -> op_areas:int list -> t
(** The full-device bit-stream (every column configured) — the paper's
    model; its length is independent of the partition's contents. *)

val reconfig_cycles : t -> int
(** Cycles to load the stream: ceil(bit_count / port width). *)

val crc16 : int array -> int
(** CRC-16/CCITT over the 16-bit payload words (exposed for tests). *)

val verify : t -> bool
(** Recomputes the CRC over the payload and compares with the trailer. *)
