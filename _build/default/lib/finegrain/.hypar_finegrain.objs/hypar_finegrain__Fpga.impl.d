lib/finegrain/fpga.ml: Format Hypar_ir
