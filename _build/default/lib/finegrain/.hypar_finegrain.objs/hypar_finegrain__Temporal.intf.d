lib/finegrain/temporal.mli: Format Hypar_ir
