lib/finegrain/bitstream.mli: Fpga
