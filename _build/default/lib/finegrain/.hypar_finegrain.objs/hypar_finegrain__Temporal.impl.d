lib/finegrain/temporal.ml: Array Format Fun Hashtbl Hypar_ir List String
