lib/finegrain/fpga.mli: Format Hypar_ir
