lib/finegrain/fine_map.ml: Array Format Fpga Hashtbl Hypar_ir List Temporal
