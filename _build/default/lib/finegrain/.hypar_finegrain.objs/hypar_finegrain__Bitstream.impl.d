lib/finegrain/bitstream.ml: Array Fpga List
