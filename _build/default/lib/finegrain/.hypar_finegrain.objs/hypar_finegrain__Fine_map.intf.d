lib/finegrain/fine_map.mli: Format Fpga Hypar_ir Temporal
