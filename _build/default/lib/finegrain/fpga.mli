(** Fine-grain (embedded FPGA) device model.

    The methodology is parametric in the fine-grain hardware: a usable
    area budget [A_FPGA] (the paper already folds the ~70% routability
    factor into the values it quotes — 1500 and 5000 units), an area cost
    per mapped DFG node ([size(u)], width-dependent), a delay per
    operation class in FPGA clock cycles, and a full-reconfiguration cost
    charged to every temporal partition. *)

type frame_params = {
  clb_area : int;  (** area units per CLB *)
  column_height : int;  (** CLBs per configuration column *)
  bits_per_clb : int;
  port_bits_per_cycle : int;
  header_bits : int;
}

type reconfig_model =
  | Flat  (** the calibrated constant [reconfig_cycles] per partition *)
  | Frame_full of frame_params
      (** full-device bit-stream per partition — the paper's stated model,
          priced from the device size *)
  | Frame_partial of frame_params
      (** per-column partial bit-stream — priced from the partition area *)

type t = {
  area : int;  (** usable area budget, the paper's [A_FPGA] *)
  area_scale : int;  (** area units per bit of operand width *)
  reconfig_cycles : int;  (** per temporal partition, in FPGA cycles *)
  reconfig_model : reconfig_model;
  alu_delay : int;
  mul_delay : int;
  div_delay : int;
  mem_delay : int;
  move_delay : int;
}

val default_frame_params : frame_params
(** 4 area units/CLB, 16-CLB columns, 64 bits/CLB, 64-bit port, 256-bit
    header — matching {!Bitstream.device_of_fpga}. *)

val make :
  ?area_scale:int ->
  ?reconfig_cycles:int ->
  ?reconfig_model:reconfig_model ->
  ?alu_delay:int ->
  ?mul_delay:int ->
  ?div_delay:int ->
  ?mem_delay:int ->
  ?move_delay:int ->
  area:int ->
  unit ->
  t
(** Defaults: area scale 4, flat 24-cycle reconfiguration; delays
    ALU/MEM/MOVE 1, MUL 2, DIV 8. *)

val partition_reconfig_cycles : t -> partition_area:int -> int
(** Reconfiguration cost of loading one temporal partition, under the
    device's {!reconfig_model}.  [Flat] ignores the partition area;
    [Frame_full] prices the whole device; [Frame_partial] prices the
    columns the partition touches. *)

val op_area : t -> Hypar_ir.Instr.t -> int
(** [size(u)] of a DFG node: proportional to operand width scaled by
    [area_scale] — with [s = width * area_scale], an ALU costs [s] units,
    a multiplier [2s], a divider [4s], memory interface logic [s], a move
    [max 1 (s/2)]. *)

val op_delay : t -> Hypar_ir.Instr.t -> int
(** Delay of the node in FPGA cycles, per operation class. *)

val pp : Format.formatter -> t -> unit
