type device = {
  clb_area : int;
  clbs : int;
  column_height : int;
  columns : int;
  bits_per_clb : int;
  port_bits_per_cycle : int;
  header_bits : int;
}

let device_of_fpga ?(clb_area = 4) ?(column_height = 16) ?(bits_per_clb = 64)
    ?(port_bits_per_cycle = 64) ?(header_bits = 256) (fpga : Fpga.t) =
  if clb_area <= 0 || column_height <= 0 || bits_per_clb <= 0
     || port_bits_per_cycle <= 0
  then invalid_arg "Bitstream.device_of_fpga: parameters must be positive";
  let clbs = max 1 (fpga.Fpga.area / clb_area) in
  let columns = (clbs + column_height - 1) / column_height in
  { clb_area; clbs; column_height; columns; bits_per_clb; port_bits_per_cycle;
    header_bits }

type t = {
  device : device;
  clbs_used : int;
  columns_used : int;
  bit_count : int;
  words : int array;
  crc : int;
}

(* CRC-16/CCITT (polynomial 0x1021, init 0xFFFF) over 16-bit words. *)
let crc16 words =
  let crc = ref 0xFFFF in
  Array.iter
    (fun word ->
      for bit = 15 downto 0 do
        let data_bit = (word lsr bit) land 1 in
        let msb = (!crc lsr 15) land 1 in
        crc := (!crc lsl 1) land 0xFFFF;
        if msb lxor data_bit = 1 then crc := !crc lxor 0x1021
      done)
    words;
  !crc

(* Deterministic frame contents: a cheap hash of (column, clb slot,
   occupying-op index) — stands in for LUT masks and routing bits. *)
let frame_word ~column ~slot ~op =
  let h = (column * 73856093) lxor (slot * 19349663) lxor ((op + 1) * 83492791) in
  (h lsr 7) land 0xFFFF

let generate_gen ~full device ~op_areas =
  List.iter
    (fun a -> if a <= 0 then invalid_arg "Bitstream.generate: non-positive op area")
    op_areas;
  (* row-major placement: op i occupies ceil(area/clb_area) consecutive CLBs *)
  let occupancy = Array.make device.clbs (-1) in
  let cursor = ref 0 in
  List.iteri
    (fun op area ->
      let needed = min device.clbs ((area + device.clb_area - 1) / device.clb_area) in
      if !cursor + needed > device.clbs then
        invalid_arg "Bitstream.generate: partition exceeds the device";
      for k = !cursor to !cursor + needed - 1 do
        occupancy.(k) <- op
      done;
      cursor := !cursor + needed)
    op_areas;
  let clbs_used = !cursor in
  let last_column =
    if full then device.columns
    else if clbs_used = 0 then 0
    else ((clbs_used - 1) / device.column_height) + 1
  in
  let words_per_clb = (device.bits_per_clb + 15) / 16 in
  let payload = ref [] in
  (* frames cover whole columns: slots past the last device CLB are
     configuration padding *)
  for column = 0 to last_column - 1 do
    for slot = 0 to device.column_height - 1 do
      let clb = (column * device.column_height) + slot in
      let op = if clb < device.clbs then occupancy.(clb) else -1 in
      for w = 0 to words_per_clb - 1 do
        payload := frame_word ~column ~slot:((slot * words_per_clb) + w) ~op :: !payload
      done
    done
  done;
  let payload = Array.of_list (List.rev !payload) in
  let crc = crc16 payload in
  let words = Array.append payload [| crc |] in
  let bit_count = device.header_bits + (Array.length payload * 16) + 16 in
  { device; clbs_used; columns_used = last_column; bit_count; words; crc }

let generate device ~op_areas = generate_gen ~full:false device ~op_areas
let generate_full device ~op_areas = generate_gen ~full:true device ~op_areas

let reconfig_cycles t =
  (t.bit_count + t.device.port_bits_per_cycle - 1) / t.device.port_bits_per_cycle

let verify t =
  let n = Array.length t.words in
  n >= 1 && crc16 (Array.sub t.words 0 (n - 1)) = t.words.(n - 1) && t.crc = t.words.(n - 1)
