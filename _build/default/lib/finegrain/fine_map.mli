(** Mapping to the fine-grain hardware and its cycle accounting (paper
    §3.2 and Eq. 4).

    Within a temporal partition, nodes execute in increasing ASAP-level
    order; nodes of one level inside one partition run in parallel, so a
    (partition, level) group costs the maximum FPGA delay of its
    operations.  Every temporal partition additionally pays the full
    reconfiguration cost.  Application-level cycles follow Eq. 4:
    [t_FPGA = Σ_i t_to_FPGA(BB_i) · Iter(BB_i)]. *)

type block_mapping = {
  block_id : int;
  partition_count : int;
  compute_cycles : int;  (** per invocation, without reconfiguration *)
  reconfig_cycles : int;
      (** per invocation: the sum of each partition's reconfiguration cost
          under the device's {!Fpga.reconfig_model} *)
  cycles_per_iteration : int;  (** compute + reconfiguration *)
  partitions : Temporal.t;
}

val map_dfg : Fpga.t -> Hypar_ir.Dfg.t -> block_mapping
(** Map a single DFG (block id is set to [-1]). *)

val map_block : Fpga.t -> Hypar_ir.Cdfg.t -> int -> block_mapping

val map_cdfg : Fpga.t -> Hypar_ir.Cdfg.t -> block_mapping array
(** One mapping per basic block ("the mapping methodology also handles
    CDFGs by iteratively mapping the DFGs composing the CDFG"). *)

val app_cycles :
  Fpga.t -> Hypar_ir.Cdfg.t -> freq:(int -> int) -> on_fpga:(int -> bool) -> int
(** Eq. 4 over the blocks selected by [on_fpga], weighting each block's
    per-iteration cycles by its execution frequency. *)

val pp_block_mapping : Format.formatter -> block_mapping -> unit
