module Ir = Hypar_ir

type frame_params = {
  clb_area : int;
  column_height : int;
  bits_per_clb : int;
  port_bits_per_cycle : int;
  header_bits : int;
}

type reconfig_model =
  | Flat
  | Frame_full of frame_params
  | Frame_partial of frame_params

type t = {
  area : int;
  area_scale : int;
  reconfig_cycles : int;
  reconfig_model : reconfig_model;
  alu_delay : int;
  mul_delay : int;
  div_delay : int;
  mem_delay : int;
  move_delay : int;
}

let default_frame_params =
  { clb_area = 4; column_height = 16; bits_per_clb = 64;
    port_bits_per_cycle = 64; header_bits = 256 }

let make ?(area_scale = 4) ?(reconfig_cycles = 24) ?(reconfig_model = Flat)
    ?(alu_delay = 1) ?(mul_delay = 2) ?(div_delay = 8) ?(mem_delay = 1)
    ?(move_delay = 1) ~area () =
  if area <= 0 then invalid_arg "Fpga.make: area must be positive";
  if area_scale <= 0 then invalid_arg "Fpga.make: area_scale must be positive";
  { area; area_scale; reconfig_cycles; reconfig_model; alu_delay; mul_delay;
    div_delay; mem_delay; move_delay }

let ceil_div a b = (a + b - 1) / b

let frame_cycles fp ~clbs_configured =
  let bits = fp.header_bits + (clbs_configured * fp.bits_per_clb) + 16 in
  ceil_div bits fp.port_bits_per_cycle

let partition_reconfig_cycles t ~partition_area =
  match t.reconfig_model with
  | Flat -> t.reconfig_cycles
  | Frame_full fp ->
    let clbs = max 1 (t.area / fp.clb_area) in
    let columns = ceil_div clbs fp.column_height in
    frame_cycles fp ~clbs_configured:(columns * fp.column_height)
  | Frame_partial fp ->
    let device_clbs = max 1 (t.area / fp.clb_area) in
    let clbs = min device_clbs (max 1 (ceil_div partition_area fp.clb_area)) in
    let columns = ceil_div clbs fp.column_height in
    frame_cycles fp ~clbs_configured:(columns * fp.column_height)

let width_of_instr instr =
  match Ir.Instr.def instr with
  | Some v -> v.Ir.Instr.vwidth
  | None -> (
    (* stores: width of the stored value *)
    match Ir.Instr.uses instr with
    | [ _; Ir.Instr.Var v ] -> v.Ir.Instr.vwidth
    | _ -> 16)

let op_area t instr =
  let w = width_of_instr instr * t.area_scale in
  match Ir.Instr.op_class instr with
  | Ir.Types.Class_alu -> w
  | Ir.Types.Class_mul -> 2 * w
  | Ir.Types.Class_div -> 4 * w
  | Ir.Types.Class_mem -> w
  | Ir.Types.Class_move -> max 1 (w / 2)

let op_delay t instr =
  match Ir.Instr.op_class instr with
  | Ir.Types.Class_alu -> t.alu_delay
  | Ir.Types.Class_mul -> t.mul_delay
  | Ir.Types.Class_div -> t.div_delay
  | Ir.Types.Class_mem -> t.mem_delay
  | Ir.Types.Class_move -> t.move_delay

let pp ppf t =
  Format.fprintf ppf "fpga{area=%d reconfig=%d}" t.area t.reconfig_cycles
