(** Imperative convenience API for constructing CDFGs in tests, synthetic
    workload generators and hand-written examples. *)

type t

val create : unit -> t

val fresh_var : ?width:Types.width -> t -> string -> Instr.var
(** A new variable with a unique id. *)

val var : Instr.var -> Instr.operand
val imm : int -> Instr.operand

val emit : t -> Instr.t -> unit
(** Append an instruction to the block under construction. *)

val bin : ?width:Types.width -> t -> Types.alu_op -> string
  -> Instr.operand -> Instr.operand -> Instr.var
(** [bin b op name a b'] emits [name := a op b'] and returns the fresh
    destination. *)

val mul : ?width:Types.width -> t -> string -> Instr.operand -> Instr.operand -> Instr.var
val un : ?width:Types.width -> t -> Types.un_op -> string -> Instr.operand -> Instr.var
val mov : ?width:Types.width -> t -> string -> Instr.operand -> Instr.var
val load : ?width:Types.width -> t -> string -> arr:string -> Instr.operand -> Instr.var
val store : t -> arr:string -> Instr.operand -> Instr.operand -> unit

val finish_block : t -> label:Block.label -> term:Block.terminator -> unit
(** Close the pending instruction list as a block with the given label. *)

val declare_array : ?init:int array -> ?is_const:bool -> ?elem_width:Types.width
  -> t -> string -> int -> unit

val cdfg : ?name:string -> t -> Cdfg.t
(** Build the final CDFG from the accumulated blocks (first block is the
    entry). Raises {!Cfg.Malformed} if no block was finished. *)

val dfg_of : (t -> unit) -> Dfg.t
(** [dfg_of f] runs [f] on a fresh builder and returns the DFG of the
    instructions it emitted — handy for DFG-level unit tests. *)
