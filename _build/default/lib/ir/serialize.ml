exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- a tiny s-expression layer ----------------------------------------- *)

type sexp = Atom of string | Str of string | List of sexp list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Atom a -> Buffer.add_string buf a
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        write buf item)
      items;
    Buffer.add_char buf ')'

let tokenize src =
  let toks = ref [] in
  let i = ref 0 in
  let n = String.length src in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      toks := `Lparen :: !toks;
      incr i
    | ')' ->
      toks := `Rparen :: !toks;
      incr i
    | '"' ->
      let buf = Buffer.create 16 in
      incr i;
      let rec scan () =
        if !i >= n then fail "unterminated string"
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' ->
            if !i + 1 >= n then fail "dangling escape";
            Buffer.add_char buf src.[!i + 1];
            i := !i + 2;
            scan ()
          | c ->
            Buffer.add_char buf c;
            incr i;
            scan ()
      in
      scan ();
      toks := `Str (Buffer.contents buf) :: !toks
    | _ ->
      let start = !i in
      while
        !i < n
        && not
             (match src.[!i] with
             | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' -> true
             | _ -> false)
      do
        incr i
      done;
      toks := `Atom (String.sub src start (!i - start)) :: !toks);
    ()
  done;
  List.rev !toks

let parse_sexp src =
  let toks = ref (tokenize src) in
  let rec parse_one () =
    match !toks with
    | [] -> fail "unexpected end of input"
    | `Lparen :: rest ->
      toks := rest;
      let items = ref [] in
      let rec items_loop () =
        match !toks with
        | `Rparen :: rest ->
          toks := rest;
          List (List.rev !items)
        | [] -> fail "missing ')'"
        | _ ->
          items := parse_one () :: !items;
          items_loop ()
      in
      items_loop ()
    | `Rparen :: _ -> fail "unexpected ')'"
    | `Atom a :: rest ->
      toks := rest;
      Atom a
    | `Str s :: rest ->
      toks := rest;
      Str s
  in
  let result = parse_one () in
  (match !toks with [] -> () | _ -> fail "trailing input");
  result

(* --- encoding ------------------------------------------------------------ *)

let int_atom n = Atom (string_of_int n)

let sexp_of_var (v : Instr.var) =
  List [ Atom "var"; Str v.vname; int_atom v.vid; int_atom v.vwidth ]

let sexp_of_operand = function
  | Instr.Var v -> sexp_of_var v
  | Instr.Imm n -> List [ Atom "imm"; int_atom n ]

let sexp_of_instr (instr : Instr.t) =
  match instr with
  | Instr.Bin { dst; op; a; b } ->
    List
      [ Atom "bin"; Atom (Types.string_of_alu_op op); sexp_of_var dst;
        sexp_of_operand a; sexp_of_operand b ]
  | Instr.Mul { dst; a; b } ->
    List [ Atom "mul"; sexp_of_var dst; sexp_of_operand a; sexp_of_operand b ]
  | Instr.Div { dst; a; b } ->
    List [ Atom "div"; sexp_of_var dst; sexp_of_operand a; sexp_of_operand b ]
  | Instr.Rem { dst; a; b } ->
    List [ Atom "rem"; sexp_of_var dst; sexp_of_operand a; sexp_of_operand b ]
  | Instr.Un { dst; op; a } ->
    List
      [ Atom "un"; Atom (Types.string_of_un_op op); sexp_of_var dst;
        sexp_of_operand a ]
  | Instr.Mov { dst; src } ->
    List [ Atom "mov"; sexp_of_var dst; sexp_of_operand src ]
  | Instr.Select { dst; cond; if_true; if_false } ->
    List
      [ Atom "select"; sexp_of_var dst; sexp_of_operand cond;
        sexp_of_operand if_true; sexp_of_operand if_false ]
  | Instr.Load { dst; arr; index } ->
    List [ Atom "load"; sexp_of_var dst; Str arr; sexp_of_operand index ]
  | Instr.Store { arr; index; value } ->
    List [ Atom "store"; Str arr; sexp_of_operand index; sexp_of_operand value ]

let sexp_of_terminator = function
  | Block.Jump l -> List [ Atom "jump"; Str l ]
  | Block.Branch { cond; if_true; if_false } ->
    List [ Atom "branch"; sexp_of_operand cond; Str if_true; Str if_false ]
  | Block.Return None -> List [ Atom "return" ]
  | Block.Return (Some op) -> List [ Atom "return"; sexp_of_operand op ]

let sexp_of_block (b : Block.t) =
  List
    [
      Atom "block";
      Str b.label;
      List (Atom "instrs" :: List.map sexp_of_instr b.instrs);
      List [ Atom "term"; sexp_of_terminator b.term ];
    ]

let sexp_of_array (d : Cdfg.array_decl) =
  let base =
    [
      Atom "array"; Str d.aname; int_atom d.size; int_atom d.elem_width;
      Atom (if d.is_const then "const" else "mutable");
    ]
  in
  match d.init with
  | None -> List base
  | Some init ->
    List (base @ [ List (Atom "init" :: Array.to_list (Array.map int_atom init)) ])

let to_string cdfg =
  let buf = Buffer.create 4096 in
  let sexp =
    List
      [
        Atom "cdfg";
        Str (Cdfg.name cdfg);
        List (Atom "arrays" :: List.map sexp_of_array (Cdfg.arrays cdfg));
        List
          (Atom "blocks"
          :: Array.to_list (Array.map sexp_of_block (Cfg.blocks (Cdfg.cfg cdfg))));
      ]
  in
  write buf sexp;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- decoding ------------------------------------------------------------ *)

let as_int = function
  | Atom a -> (
    match int_of_string_opt a with Some n -> n | None -> fail "expected integer, got %S" a)
  | Str _ | List _ -> fail "expected integer"

let as_string = function
  | Str s -> s
  | Atom a -> a
  | List _ -> fail "expected string"

let var_of_sexp = function
  | List [ Atom "var"; name; vid; width ] ->
    { Instr.vname = as_string name; vid = as_int vid; vwidth = as_int width }
  | _ -> fail "malformed variable"

let operand_of_sexp = function
  | List [ Atom "imm"; n ] -> Instr.Imm (as_int n)
  | List (Atom "var" :: _) as v -> Instr.Var (var_of_sexp v)
  | _ -> fail "malformed operand"

let alu_op_of_string s =
  match List.find_opt (fun op -> Types.string_of_alu_op op = s) Types.all_alu_ops with
  | Some op -> op
  | None -> fail "unknown ALU op %S" s

let un_op_of_string s =
  match List.find_opt (fun op -> Types.string_of_un_op op = s) Types.all_un_ops with
  | Some op -> op
  | None -> fail "unknown unary op %S" s

let instr_of_sexp = function
  | List [ Atom "bin"; Atom op; dst; a; b ] ->
    Instr.Bin
      { dst = var_of_sexp dst; op = alu_op_of_string op;
        a = operand_of_sexp a; b = operand_of_sexp b }
  | List [ Atom "mul"; dst; a; b ] ->
    Instr.Mul { dst = var_of_sexp dst; a = operand_of_sexp a; b = operand_of_sexp b }
  | List [ Atom "div"; dst; a; b ] ->
    Instr.Div { dst = var_of_sexp dst; a = operand_of_sexp a; b = operand_of_sexp b }
  | List [ Atom "rem"; dst; a; b ] ->
    Instr.Rem { dst = var_of_sexp dst; a = operand_of_sexp a; b = operand_of_sexp b }
  | List [ Atom "un"; Atom op; dst; a ] ->
    Instr.Un { dst = var_of_sexp dst; op = un_op_of_string op; a = operand_of_sexp a }
  | List [ Atom "mov"; dst; src ] ->
    Instr.Mov { dst = var_of_sexp dst; src = operand_of_sexp src }
  | List [ Atom "select"; dst; cond; t; f ] ->
    Instr.Select
      { dst = var_of_sexp dst; cond = operand_of_sexp cond;
        if_true = operand_of_sexp t; if_false = operand_of_sexp f }
  | List [ Atom "load"; dst; arr; index ] ->
    Instr.Load
      { dst = var_of_sexp dst; arr = as_string arr; index = operand_of_sexp index }
  | List [ Atom "store"; arr; index; value ] ->
    Instr.Store
      { arr = as_string arr; index = operand_of_sexp index;
        value = operand_of_sexp value }
  | _ -> fail "malformed instruction"

let terminator_of_sexp = function
  | List [ Atom "jump"; l ] -> Block.Jump (as_string l)
  | List [ Atom "branch"; cond; t; f ] ->
    Block.Branch
      { cond = operand_of_sexp cond; if_true = as_string t; if_false = as_string f }
  | List [ Atom "return" ] -> Block.Return None
  | List [ Atom "return"; op ] -> Block.Return (Some (operand_of_sexp op))
  | _ -> fail "malformed terminator"

let block_of_sexp = function
  | List [ Atom "block"; label; List (Atom "instrs" :: instrs); List [ Atom "term"; term ] ]
    ->
    Block.make ~label:(as_string label)
      ~instrs:(List.map instr_of_sexp instrs)
      ~term:(terminator_of_sexp term)
  | _ -> fail "malformed block"

let array_of_sexp = function
  | List (Atom "array" :: name :: size :: width :: Atom kind :: rest) ->
    let init =
      match rest with
      | [] -> None
      | [ List (Atom "init" :: values) ] ->
        Some (Array.of_list (List.map as_int values))
      | _ -> fail "malformed array initialiser"
    in
    let is_const =
      match kind with
      | "const" -> true
      | "mutable" -> false
      | other -> fail "unknown array kind %S" other
    in
    {
      Cdfg.aname = as_string name;
      size = as_int size;
      init;
      is_const;
      elem_width = as_int width;
    }
  | _ -> fail "malformed array declaration"

let of_string src =
  match parse_sexp src with
  | List [ Atom "cdfg"; name; List (Atom "arrays" :: arrays); List (Atom "blocks" :: blocks) ]
    ->
    let arrays = List.map array_of_sexp arrays in
    let blocks = List.map block_of_sexp blocks in
    Cdfg.make ~name:(as_string name) ~arrays (Cfg.of_blocks blocks)
  | _ -> fail "expected (cdfg ...)"
