type t = { header : int; latches : int list; body : int list }

(* Natural loop of a back edge n->h: h plus all blocks that reach n
   without passing through h (standard worklist over predecessors). *)
let body_of_back_edges cfg header latches =
  let in_body = Hashtbl.create 16 in
  Hashtbl.replace in_body header ();
  let rec add n =
    if not (Hashtbl.mem in_body n) then begin
      Hashtbl.replace in_body n ();
      List.iter add (Cfg.predecessors cfg n)
    end
  in
  List.iter add latches;
  Hashtbl.fold (fun b () acc -> b :: acc) in_body [] |> List.sort compare

let find cfg =
  let edges = Cfg.back_edges cfg in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (n, h) ->
      let existing =
        match Hashtbl.find_opt by_header h with Some l -> l | None -> []
      in
      Hashtbl.replace by_header h (n :: existing))
    edges;
  Hashtbl.fold
    (fun header latches acc ->
      let latches = List.sort compare latches in
      { header; latches; body = body_of_back_edges cfg header latches } :: acc)
    by_header []
  |> List.sort (fun l1 l2 -> compare l1.header l2.header)

let depth_map cfg =
  let depth = Array.make (Cfg.block_count cfg) 0 in
  List.iter
    (fun loop -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) loop.body)
    (find cfg);
  depth

let in_loop cfg i = (depth_map cfg).(i) > 0

let pp ppf l =
  Format.fprintf ppf "loop header=%d latches=[%s] body=[%s]" l.header
    (String.concat ";" (List.map string_of_int l.latches))
    (String.concat ";" (List.map string_of_int l.body))
