type t = {
  mutable next_id : int;
  mutable pending : Instr.t list;  (* reversed *)
  mutable blocks : Block.t list;  (* reversed *)
  mutable arrays : Cdfg.array_decl list;  (* reversed *)
}

let create () = { next_id = 0; pending = []; blocks = []; arrays = [] }

let fresh_var ?(width = 16) t name =
  let v = { Instr.vname = name; vid = t.next_id; vwidth = width } in
  t.next_id <- t.next_id + 1;
  v

let var v = Instr.Var v
let imm n = Instr.Imm n

let emit t instr = t.pending <- instr :: t.pending

let bin ?width t op name a b =
  let dst = fresh_var ?width t name in
  emit t (Instr.Bin { dst; op; a; b });
  dst

let mul ?width t name a b =
  let dst = fresh_var ?width t name in
  emit t (Instr.Mul { dst; a; b });
  dst

let un ?width t op name a =
  let dst = fresh_var ?width t name in
  emit t (Instr.Un { dst; op; a });
  dst

let mov ?width t name src =
  let dst = fresh_var ?width t name in
  emit t (Instr.Mov { dst; src });
  dst

let load ?width t name ~arr index =
  let dst = fresh_var ?width t name in
  emit t (Instr.Load { dst; arr; index });
  dst

let store t ~arr index value = emit t (Instr.Store { arr; index; value })

let finish_block t ~label ~term =
  let instrs = List.rev t.pending in
  t.pending <- [];
  t.blocks <- Block.make ~label ~instrs ~term :: t.blocks

let declare_array ?init ?(is_const = false) ?(elem_width = 16) t aname size =
  t.arrays <-
    { Cdfg.aname; size; init; is_const; elem_width } :: t.arrays

let cdfg ?name t =
  let cfg = Cfg.of_blocks (List.rev t.blocks) in
  Cdfg.make ?name ~arrays:(List.rev t.arrays) cfg

let dfg_of f =
  let t = create () in
  f t;
  Dfg.of_instrs (List.rev t.pending)
