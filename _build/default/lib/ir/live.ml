module Var_map = Map.Make (Int)

type var_set = Instr.var Var_map.t

type t = { cfg : Cfg.t; live_in : var_set array; live_out : var_set array }

let to_sorted_list set = List.map snd (Var_map.bindings set)

(* use = upward-exposed reads; def = all variables written in the block. *)
let use_def_sets (b : Block.t) =
  let defs = ref Var_map.empty in
  let uses = ref Var_map.empty in
  let see_use (v : Instr.var) =
    if not (Var_map.mem v.vid !defs) then uses := Var_map.add v.vid v !uses
  in
  List.iter
    (fun instr ->
      List.iter see_use (Instr.used_vars instr);
      match Instr.def instr with
      | Some v -> defs := Var_map.add v.vid v !defs
      | None -> ())
    b.Block.instrs;
  List.iter see_use (Block.terminator_uses b);
  (!uses, !defs)

let use_set cfg i = to_sorted_list (fst (use_def_sets (Cfg.block cfg i)))

let analyse cfg =
  let n = Cfg.block_count cfg in
  let use = Array.make n Var_map.empty in
  let def = Array.make n Var_map.empty in
  for i = 0 to n - 1 do
    let u, d = use_def_sets (Cfg.block cfg i) in
    use.(i) <- u;
    def.(i) <- d
  done;
  let live_in = Array.make n Var_map.empty in
  let live_out = Array.make n Var_map.empty in
  let changed = ref true in
  (* Standard backward data-flow fixpoint; iterating blocks in reverse
     postorder reversed converges quickly on reducible CFGs. *)
  let order = List.rev (Cfg.reverse_postorder cfg) in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        let out =
          List.fold_left
            (fun acc s -> Var_map.union (fun _ v _ -> Some v) acc live_in.(s))
            Var_map.empty (Cfg.successors cfg i)
        in
        let inn =
          Var_map.union
            (fun _ v _ -> Some v)
            use.(i)
            (Var_map.filter (fun vid _ -> not (Var_map.mem vid def.(i))) out)
        in
        if not (Var_map.equal (fun _ _ -> true) out live_out.(i)) then begin
          live_out.(i) <- out;
          changed := true
        end;
        if not (Var_map.equal (fun _ _ -> true) inn live_in.(i)) then begin
          live_in.(i) <- inn;
          changed := true
        end)
      order
  done;
  { cfg; live_in; live_out }

let live_in t i = to_sorted_list t.live_in.(i)
let live_out t i = to_sorted_list t.live_out.(i)

let defs_live_out t i =
  let b = Cfg.block t.cfg i in
  let defs = ref Var_map.empty in
  List.iter
    (fun instr ->
      match Instr.def instr with
      | Some v -> defs := Var_map.add v.vid v !defs
      | None -> ())
    b.Block.instrs;
  to_sorted_list
    (Var_map.filter (fun vid _ -> Var_map.mem vid t.live_out.(i)) !defs)
