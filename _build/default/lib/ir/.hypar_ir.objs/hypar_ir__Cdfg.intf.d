lib/ir/cdfg.mli: Block Cfg Dfg Format Types
