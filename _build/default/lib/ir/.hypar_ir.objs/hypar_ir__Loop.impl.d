lib/ir/loop.ml: Array Cfg Format Hashtbl List String
