lib/ir/builder.ml: Block Cdfg Cfg Dfg Instr List
