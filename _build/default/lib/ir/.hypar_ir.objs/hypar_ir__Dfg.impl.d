lib/ir/dfg.ml: Array Fun Hashtbl Instr Int List Set Types
