lib/ir/dot.ml: Array Block Buffer Cdfg Cfg Dfg Instr List Printf String
