lib/ir/serialize.mli: Cdfg
