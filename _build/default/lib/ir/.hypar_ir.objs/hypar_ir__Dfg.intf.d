lib/ir/dfg.mli: Instr Types
