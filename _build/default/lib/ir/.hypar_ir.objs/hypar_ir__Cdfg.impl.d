lib/ir/cdfg.ml: Array Block Cfg Dfg Format Fun Instr List Loop Types
