lib/ir/passes.mli: Cdfg
