lib/ir/serialize.ml: Array Block Buffer Cdfg Cfg Format Instr List String Types
