lib/ir/live.mli: Cfg Instr
