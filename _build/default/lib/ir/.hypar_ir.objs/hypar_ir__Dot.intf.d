lib/ir/dot.mli: Cdfg Dfg
