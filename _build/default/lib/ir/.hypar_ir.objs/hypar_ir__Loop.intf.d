lib/ir/loop.mli: Cfg Format
