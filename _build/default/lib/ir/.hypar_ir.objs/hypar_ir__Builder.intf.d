lib/ir/builder.mli: Block Cdfg Dfg Instr Types
