lib/ir/live.ml: Array Block Cfg Instr Int List Map
