lib/ir/passes.ml: Array Block Cdfg Cfg Hashtbl Instr Int List Live Loop Map Option Printf Types
