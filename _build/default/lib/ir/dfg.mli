(** Per-basic-block data-flow graphs.

    One node per instruction; edges are true (read-after-write) data
    dependences plus the ordering edges needed for correct hardware
    execution: write-after-write and write-after-read on scalar registers,
    and load/store ordering on each array.  ASAP levelling over this graph
    is the backbone of both mapping algorithms: the fine-grain temporal
    partitioner consumes ASAP levels directly (paper §3.2, Figure 3), and
    the coarse-grain list scheduler uses ALAP-based priorities. *)

type node = { id : int; instr : Instr.t }

type t

val of_instrs : Instr.t list -> t
(** Build the DFG of a straight-line instruction sequence (program order
    is the order of the list). *)

val node_count : t -> int
val node : t -> int -> node
val nodes : t -> node list
val succs : t -> int -> int list
val preds : t -> int -> int list

val asap : t -> int array
(** Unit-delay ASAP level of every node, starting at 1 (paper convention:
    nodes with no predecessors are level 1). *)

val alap : t -> int array
(** Unit-delay ALAP level of every node within [max_level]. *)

val max_level : t -> int
(** Highest ASAP level ([0] for an empty graph). *)

val slack : t -> int array
(** [alap - asap], per node; critical nodes have slack 0. *)

val nodes_at_level : t -> int -> int list
(** Node ids whose ASAP level equals the given level, in program order. *)

val critical_path : t -> int
(** Longest path length in nodes — equals [max_level]. *)

val topological : t -> int list
(** A topological order (program order is always one). *)

val live_in_vars : t -> Instr.var list
(** Variables read before any definition in the block (operand inputs). *)

val is_well_formed : t -> bool
(** All edges point forward in program order (guaranteed by construction;
    exposed for property tests). *)

val op_counts : t -> (Types.op_class * int) list
(** Instruction count per operation class, in a fixed class order. *)
