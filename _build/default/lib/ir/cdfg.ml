type array_decl = {
  aname : string;
  size : int;
  init : int array option;
  is_const : bool;
  elem_width : Types.width;
}

type block_info = { block : Block.t; dfg : Dfg.t; loop_depth : int }

type t = {
  name : string;
  cfg : Cfg.t;
  arrays : array_decl list;
  infos : block_info array;
}

let make ?(name = "program") ~arrays cfg =
  let depth = Loop.depth_map cfg in
  let infos =
    Array.mapi
      (fun i (b : Block.t) ->
        { block = b; dfg = Dfg.of_instrs b.instrs; loop_depth = depth.(i) })
      (Cfg.blocks cfg)
  in
  { name; cfg; arrays; infos }

let name t = t.name
let cfg t = t.cfg
let arrays t = t.arrays

let array_decl t aname =
  List.find_opt (fun d -> d.aname = aname) t.arrays

let block_count t = Array.length t.infos
let info t i = t.infos.(i)
let infos t = t.infos
let block_ids t = List.init (Array.length t.infos) Fun.id
let total_instrs t = Cfg.instr_count t.cfg

let validate t =
  let error = ref None in
  let fail fmt = Format.kasprintf (fun s -> if !error = None then error := Some s) fmt in
  Array.iter
    (fun bi ->
      List.iter
        (fun instr ->
          match Instr.accessed_array instr with
          | None -> ()
          | Some arr -> (
            match array_decl t arr with
            | None -> fail "block %s: access to undeclared array %S" bi.block.Block.label arr
            | Some d ->
              if d.is_const && Instr.is_store instr then
                fail "block %s: store to const array %S" bi.block.Block.label arr))
        bi.block.Block.instrs)
    t.infos;
  match !error with None -> Ok () | Some msg -> Error msg

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>CDFG %s: %d blocks, %d instrs@," t.name
    (block_count t) (total_instrs t);
  Array.iteri
    (fun i bi ->
      Format.fprintf ppf "  BB%-3d %-16s instrs=%-4d levels=%-3d loop-depth=%d@,"
        i bi.block.Block.label
        (Block.instr_count bi.block)
        (Dfg.max_level bi.dfg) bi.loop_depth)
    t.infos;
  Format.fprintf ppf "@]"
