(** Shared primitive types of the HYPAR intermediate representation.

    Operations are split along the axis the paper cares about: ALU-class
    word-level operations (weight 1 by default), multiplications (weight 2),
    divisions (supported by the IR but absent from the benchmark DFGs, as in
    the paper), memory accesses, and register moves. *)

type width = int
(** Bit-width of a value (metadata for the area model; the interpreter
    computes on native integers). *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl  (** logical shift left *)
  | Shr  (** logical shift right *)
  | Ashr (** arithmetic shift right *)
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge
  | Min
  | Max

type un_op = Neg | Not | Abs

type op_class =
  | Class_alu  (** ALU-type arithmetic/logic/comparison *)
  | Class_mul  (** multiplication *)
  | Class_div  (** division / remainder *)
  | Class_mem  (** shared-memory load/store *)
  | Class_move (** register move / select *)

val string_of_alu_op : alu_op -> string
val string_of_un_op : un_op -> string
val string_of_op_class : op_class -> string
val pp_op_class : Format.formatter -> op_class -> unit

val eval_alu_op : alu_op -> int -> int -> int
(** [eval_alu_op op a b] computes the operation on native integers.
    Comparisons yield 0/1; shifts clamp their amount to [0, 62]. *)

val eval_un_op : un_op -> int -> int

val all_alu_ops : alu_op list
val all_un_ops : un_op list
