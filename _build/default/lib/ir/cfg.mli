(** Control-flow graphs over {!Block.t}.

    Blocks are indexed by dense integer ids (the position in the block
    array); the entry block is the first one given to {!of_blocks}. *)

type t

exception Malformed of string

val of_blocks : Block.t list -> t
(** Builds a CFG. Raises {!Malformed} if the list is empty, a label is
    duplicated, or a terminator targets an unknown label. *)

val entry : t -> int
val block_count : t -> int
val block : t -> int -> Block.t
val blocks : t -> Block.t array
val id_of_label : t -> Block.label -> int
val successors : t -> int -> int list
val predecessors : t -> int -> int list

val reverse_postorder : t -> int list
(** Reverse postorder over blocks reachable from the entry. *)

val reachable : t -> bool array

val idom : t -> int array
(** Immediate dominators ([idom.(entry) = entry]; unreachable blocks map to
    [-1]), computed with the Cooper–Harvey–Kennedy iterative algorithm. *)

val dominates : t -> int -> int -> bool
(** [dominates cfg a b] — does block [a] dominate block [b]?  Both must be
    reachable. *)

val back_edges : t -> (int * int) list
(** Edges [n -> h] where [h] dominates [n] (loop back-edges). *)

val instr_count : t -> int
val pp : Format.formatter -> t -> unit
