type label = string

type terminator =
  | Jump of label
  | Branch of { cond : Instr.operand; if_true : label; if_false : label }
  | Return of Instr.operand option

type t = { label : label; instrs : Instr.t list; term : terminator }

let make ~label ~instrs ~term = { label; instrs; term }

let successor_labels b =
  match b.term with
  | Jump l -> [ l ]
  | Branch { if_true; if_false; _ } ->
    if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Return _ -> []

let instr_count b = List.length b.instrs

let terminator_uses b =
  let of_operand = function Instr.Var v -> [ v ] | Instr.Imm _ -> [] in
  match b.term with
  | Jump _ -> []
  | Branch { cond; _ } -> of_operand cond
  | Return None -> []
  | Return (Some op) -> of_operand op

let pp_terminator ppf = function
  | Jump l -> Format.fprintf ppf "jump %s" l
  | Branch { cond; if_true; if_false } ->
    Format.fprintf ppf "branch %a ? %s : %s" Instr.pp_operand cond if_true
      if_false
  | Return None -> Format.pp_print_string ppf "return"
  | Return (Some op) -> Format.fprintf ppf "return %a" Instr.pp_operand op

let pp ppf b =
  Format.fprintf ppf "@[<v 2>%s:" b.label;
  List.iter (fun i -> Format.fprintf ppf "@,%a" Instr.pp i) b.instrs;
  Format.fprintf ppf "@,%a@]" pp_terminator b.term
