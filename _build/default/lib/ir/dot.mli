(** Graphviz (DOT) export of CFGs and DFGs, for inspection and docs. *)

val cfg_to_dot : ?highlight:int list -> Cdfg.t -> string
(** The control-flow graph; blocks in [highlight] (e.g. kernels moved to
    the coarse-grain data-path) are drawn filled. *)

val dfg_to_dot : ?title:string -> Dfg.t -> string
(** One DFG, ranked by ASAP level. *)
