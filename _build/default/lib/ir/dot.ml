let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let cfg_to_dot ?(highlight = []) cdfg =
  let buf = Buffer.create 1024 in
  let cfg = Cdfg.cfg cdfg in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box fontname=\"monospace\"];\n";
  for i = 0 to Cfg.block_count cfg - 1 do
    let b = Cfg.block cfg i in
    let extra =
      if List.mem i highlight then " style=filled fillcolor=lightblue" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"BB%d %s\\n%d instrs\"%s];\n" i i
         (escape b.Block.label)
         (Block.instr_count b) extra)
  done;
  for i = 0 to Cfg.block_count cfg - 1 do
    List.iter
      (fun j -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i j))
      (Cfg.successors cfg i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dfg_to_dot ?(title = "dfg") dfg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  node [shape=ellipse fontname=\"monospace\"];\n"
       (escape title));
  let asap = Dfg.asap dfg in
  List.iter
    (fun (nd : Dfg.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%d: %s (L%d)\"];\n" nd.id nd.id
           (escape (Instr.mnemonic nd.instr))
           asap.(nd.id)))
    (Dfg.nodes dfg);
  List.iter
    (fun (nd : Dfg.node) ->
      List.iter
        (fun j ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" nd.id j))
        (Dfg.succs dfg nd.id))
    (Dfg.nodes dfg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
