(** The Control-Data Flow Graph: the paper's model of computation
    (step 1 of the methodology).

    A CDFG couples a control-flow graph of basic blocks with one data-flow
    graph per block, plus the array (memory) declarations the program
    touches.  This is the single input consumed by the analysis step, both
    mappers and the partitioning engine. *)

type array_decl = {
  aname : string;
  size : int;
  init : int array option;  (** initial contents; ROM tables set this *)
  is_const : bool;  (** ROM: stores to it are rejected by validation *)
  elem_width : Types.width;
}

type block_info = {
  block : Block.t;
  dfg : Dfg.t;
  loop_depth : int;  (** number of natural loops containing the block *)
}

type t

val make : ?name:string -> arrays:array_decl list -> Cfg.t -> t
(** Builds per-block DFGs and loop information. Raises {!Cfg.Malformed}
    on inconsistencies found by {!validate}. *)

val name : t -> string
val cfg : t -> Cfg.t
val arrays : t -> array_decl list
val array_decl : t -> string -> array_decl option
val block_count : t -> int
val info : t -> int -> block_info
val infos : t -> block_info array
val block_ids : t -> int list
val total_instrs : t -> int

val validate : t -> (unit, string) result
(** Structural checks: every accessed array is declared, no store to a
    const array, branch conditions are defined or block-live-in. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per block: id, label, instruction count, DFG depth, loop
    depth. *)
