type width = int

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ashr
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge
  | Min
  | Max

type un_op = Neg | Not | Abs

type op_class = Class_alu | Class_mul | Class_div | Class_mem | Class_move

let string_of_alu_op = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ashr -> "ashr"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"
  | Gt -> "gt"
  | Ge -> "ge"
  | Min -> "min"
  | Max -> "max"

let string_of_un_op = function Neg -> "neg" | Not -> "not" | Abs -> "abs"

let string_of_op_class = function
  | Class_alu -> "alu"
  | Class_mul -> "mul"
  | Class_div -> "div"
  | Class_mem -> "mem"
  | Class_move -> "move"

let pp_op_class ppf c = Format.pp_print_string ppf (string_of_op_class c)

let bool_to_int b = if b then 1 else 0

(* Shift amounts are clamped so that hostile inputs cannot trigger
   undefined native shifts; 62 keeps results within OCaml's int range. *)
let clamp_shift n = if n < 0 then 0 else if n > 62 then 62 else n

let eval_alu_op op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl clamp_shift b
  | Shr -> a lsr clamp_shift b
  | Ashr -> a asr clamp_shift b
  | Lt -> bool_to_int (a < b)
  | Le -> bool_to_int (a <= b)
  | Eq -> bool_to_int (a = b)
  | Ne -> bool_to_int (a <> b)
  | Gt -> bool_to_int (a > b)
  | Ge -> bool_to_int (a >= b)
  | Min -> min a b
  | Max -> max a b

let eval_un_op op a =
  match op with Neg -> -a | Not -> lnot a | Abs -> abs a

let all_alu_ops =
  [ Add; Sub; And; Or; Xor; Shl; Shr; Ashr; Lt; Le; Eq; Ne; Gt; Ge; Min; Max ]

let all_un_ops = [ Neg; Not; Abs ]
