(** Textual serialisation of CDFGs (an s-expression format).

    The authors' framework passed SUIF IR files between its tools; this
    module plays that role: a CDFG can be dumped after frontend +
    optimisation and re-loaded by any later stage (analysis, mapping,
    partitioning) without recompiling the source.  The format round-trips
    exactly: [of_string (to_string g)] reproduces the same blocks,
    terminators and array declarations. *)

exception Parse_error of string

val to_string : Cdfg.t -> string
(** Serialise, including array initialisers. *)

val of_string : string -> Cdfg.t
(** Parse back. Raises {!Parse_error} on malformed input and
    {!Cfg.Malformed} on structurally invalid graphs. *)
