type t = {
  blocks : Block.t array;
  entry : int;
  by_label : (Block.label, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
}

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let of_blocks block_list =
  if block_list = [] then malformed "empty control-flow graph";
  let blocks = Array.of_list block_list in
  let by_label = Hashtbl.create (Array.length blocks) in
  Array.iteri
    (fun i (b : Block.t) ->
      if Hashtbl.mem by_label b.label then
        malformed "duplicate block label %S" b.label;
      Hashtbl.add by_label b.label i)
    blocks;
  let resolve lbl =
    match Hashtbl.find_opt by_label lbl with
    | Some i -> i
    | None -> malformed "branch to unknown label %S" lbl
  in
  let succs =
    Array.map (fun b -> List.map resolve (Block.successor_labels b)) blocks
  in
  let preds = Array.make (Array.length blocks) [] in
  Array.iteri
    (fun i targets -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) targets)
    succs;
  Array.iteri (fun j l -> preds.(j) <- List.rev l) preds;
  { blocks; entry = 0; by_label; succs; preds }

let entry t = t.entry
let block_count t = Array.length t.blocks
let block t i = t.blocks.(i)
let blocks t = t.blocks

let id_of_label t lbl =
  match Hashtbl.find_opt t.by_label lbl with
  | Some i -> i
  | None -> raise Not_found

let successors t i = t.succs.(i)
let predecessors t i = t.preds.(i)

let reverse_postorder t =
  let n = Array.length t.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succs.(i);
      order := i :: !order
    end
  in
  dfs t.entry;
  !order

let reachable t =
  let seen = Array.make (Array.length t.blocks) false in
  List.iter (fun i -> seen.(i) <- true) (reverse_postorder t);
  seen

(* Cooper–Harvey–Kennedy "A Simple, Fast Dominance Algorithm". *)
let idom t =
  let rpo = reverse_postorder t in
  let n = Array.length t.blocks in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun k i -> rpo_index.(i) <- k) rpo;
  let idom = Array.make n (-1) in
  idom.(t.entry) <- t.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let process i =
      if i <> t.entry then begin
        let processed_preds =
          List.filter (fun p -> idom.(p) <> -1) t.preds.(i)
        in
        match processed_preds with
        | [] -> ()
        | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      end
    in
    List.iter process rpo
  done;
  idom

let dominates t a b =
  let idom = idom t in
  let rec walk x = if x = a then true else if x = idom.(x) then false else walk idom.(x) in
  if idom.(b) = -1 then false else walk b

let back_edges t =
  let idom = idom t in
  let dominates_cached a b =
    let rec walk x =
      if x = a then true else if x = idom.(x) then false else walk idom.(x)
    in
    if idom.(b) = -1 then false else walk b
  in
  let acc = ref [] in
  Array.iteri
    (fun n targets ->
      if idom.(n) <> -1 then
        List.iter
          (fun h -> if dominates_cached h n then acc := (n, h) :: !acc)
          targets)
    t.succs;
  List.rev !acc

let instr_count t =
  Array.fold_left (fun acc b -> acc + Block.instr_count b) 0 t.blocks

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i b ->
      if i > 0 then Format.fprintf ppf "@,";
      Block.pp ppf b)
    t.blocks;
  Format.fprintf ppf "@]"
