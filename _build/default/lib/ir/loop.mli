(** Natural-loop detection.

    The paper's kernels are "basic blocks inside loops"; this module finds
    the natural loops of a CFG (via back edges) and the loop-nesting depth
    of each block, which drives kernel identification in the analysis
    step. *)

type t = {
  header : int;  (** loop header block id *)
  latches : int list;  (** sources of back edges into [header] *)
  body : int list;  (** all block ids in the loop, including the header *)
}

val find : Cfg.t -> t list
(** All natural loops, one per header (back edges sharing a header are
    merged into a single loop, as usual). *)

val depth_map : Cfg.t -> int array
(** [depth_map cfg] gives for every block the number of loops containing
    it (0 = not in any loop). *)

val in_loop : Cfg.t -> int -> bool

val pp : Format.formatter -> t -> unit
