type node = { id : int; instr : Instr.t }

type t = {
  nodes : node array;
  succs : int list array;
  preds : int list array;
  asap_levels : int array;
  alap_levels : int array;
  max_level : int;
  live_ins : Instr.var list;
}

module Int_set = Set.Make (Int)

(* Dependence edges of a straight-line sequence:
   - RAW: use of v depends on the last def of v;
   - WAW: a def of v depends on the previous def of v;
   - WAR: a def of v depends on every use of v since its last def;
   - memory: a load depends on the last store to the same array, a store
     depends on the last store and on every load since it (per array). *)
let edges_of_instrs instrs =
  let n = Array.length instrs in
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let uses_since_def : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let last_store : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let loads_since_store : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let live_ins = ref [] in
  let seen_live_in = Hashtbl.create 16 in
  let edge_set = ref Int_set.empty in
  let edges = Array.make n [] in
  let add_edge src dst =
    if src <> dst then begin
      let key = (src * n) + dst in
      if not (Int_set.mem key !edge_set) then begin
        edge_set := Int_set.add key !edge_set;
        edges.(src) <- dst :: edges.(src)
      end
    end
  in
  for i = 0 to n - 1 do
    let instr = instrs.(i) in
    let record_use (v : Instr.var) =
      (match Hashtbl.find_opt last_def v.vid with
      | Some d -> add_edge d i
      | None ->
        if not (Hashtbl.mem seen_live_in v.vid) then begin
          Hashtbl.replace seen_live_in v.vid ();
          live_ins := v :: !live_ins
        end);
      let prev =
        match Hashtbl.find_opt uses_since_def v.vid with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace uses_since_def v.vid (i :: prev)
    in
    List.iter record_use (Instr.used_vars instr);
    (match Instr.accessed_array instr with
    | None -> ()
    | Some arr ->
      if Instr.is_load instr then begin
        (match Hashtbl.find_opt last_store arr with
        | Some s -> add_edge s i
        | None -> ());
        let prev =
          match Hashtbl.find_opt loads_since_store arr with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace loads_since_store arr (i :: prev)
      end
      else begin
        (match Hashtbl.find_opt last_store arr with
        | Some s -> add_edge s i
        | None -> ());
        (match Hashtbl.find_opt loads_since_store arr with
        | Some loads -> List.iter (fun l -> add_edge l i) loads
        | None -> ());
        Hashtbl.replace last_store arr i;
        Hashtbl.replace loads_since_store arr []
      end);
    match Instr.def instr with
    | None -> ()
    | Some v ->
      (match Hashtbl.find_opt last_def v.vid with
      | Some d -> add_edge d i
      | None -> ());
      (match Hashtbl.find_opt uses_since_def v.vid with
      | Some us -> List.iter (fun u -> add_edge u i) us
      | None -> ());
      Hashtbl.replace last_def v.vid i;
      Hashtbl.replace uses_since_def v.vid []
  done;
  (Array.map List.rev edges, List.rev !live_ins)

let of_instrs instr_list =
  let instrs = Array.of_list instr_list in
  let n = Array.length instrs in
  let succs, live_ins = edges_of_instrs instrs in
  let preds = Array.make n [] in
  Array.iteri
    (fun src targets ->
      List.iter (fun dst -> preds.(dst) <- src :: preds.(dst)) targets)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* Edges always point forward in program order, so a single forward
     (resp. backward) sweep computes ASAP (resp. ALAP). *)
  let asap_levels = Array.make n 1 in
  for i = 0 to n - 1 do
    List.iter
      (fun p ->
        if asap_levels.(p) + 1 > asap_levels.(i) then
          asap_levels.(i) <- asap_levels.(p) + 1)
      preds.(i)
  done;
  let max_level = Array.fold_left max 0 asap_levels in
  let alap_levels = Array.make n max_level in
  for i = n - 1 downto 0 do
    List.iter
      (fun s ->
        if alap_levels.(s) - 1 < alap_levels.(i) then
          alap_levels.(i) <- alap_levels.(s) - 1)
      succs.(i)
  done;
  let nodes = Array.mapi (fun id instr -> { id; instr }) instrs in
  { nodes; succs; preds; asap_levels; alap_levels; max_level; live_ins }

let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = Array.to_list t.nodes
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let asap t = Array.copy t.asap_levels
let alap t = Array.copy t.alap_levels
let max_level t = t.max_level

let slack t =
  Array.init (Array.length t.nodes) (fun i ->
      t.alap_levels.(i) - t.asap_levels.(i))

let nodes_at_level t level =
  let acc = ref [] in
  Array.iteri
    (fun i l -> if l = level then acc := i :: !acc)
    t.asap_levels;
  List.rev !acc

let critical_path t = t.max_level

let topological t = List.init (Array.length t.nodes) Fun.id

let live_in_vars t = t.live_ins

let is_well_formed t =
  let ok = ref true in
  Array.iteri
    (fun src targets -> List.iter (fun dst -> if dst <= src then ok := false) targets)
    t.succs;
  !ok

let op_counts t =
  let classes =
    [ Types.Class_alu; Types.Class_mul; Types.Class_div; Types.Class_mem;
      Types.Class_move ]
  in
  let count c =
    Array.fold_left
      (fun acc nd -> if Instr.op_class nd.instr = c then acc + 1 else acc)
      0 t.nodes
  in
  List.map (fun c -> (c, count c)) classes
