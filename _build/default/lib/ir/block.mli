(** Basic blocks: a straight-line instruction sequence ended by a single
    terminator, exactly the paper's unit of analysis and partitioning. *)

type label = string

type terminator =
  | Jump of label
  | Branch of { cond : Instr.operand; if_true : label; if_false : label }
  | Return of Instr.operand option

type t = { label : label; instrs : Instr.t list; term : terminator }

val make : label:label -> instrs:Instr.t list -> term:terminator -> t

val successor_labels : t -> label list
(** Labels this block may transfer control to (empty for returns). *)

val instr_count : t -> int

val terminator_uses : t -> Instr.var list
(** Variables read by the terminator. *)

val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
