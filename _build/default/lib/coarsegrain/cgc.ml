type t = {
  cgcs : int;
  rows : int;
  cols : int;
  mem_ports : int;
  register_bank : int;
}

let make ?(mem_ports = 2) ?(register_bank = 64) ~cgcs ~rows ~cols () =
  if cgcs <= 0 || rows <= 0 || cols <= 0 || mem_ports <= 0 then
    invalid_arg "Cgc.make: dimensions must be positive";
  { cgcs; rows; cols; mem_ports; register_bank }

let two_by_two k = make ~cgcs:k ~rows:2 ~cols:2 ()

let chains t = t.cgcs * t.cols
let node_slots t = t.cgcs * t.rows * t.cols

let describe t =
  let count =
    match t.cgcs with
    | 1 -> "one"
    | 2 -> "two"
    | 3 -> "three"
    | 4 -> "four"
    | n -> string_of_int n ^ "x"
  in
  Printf.sprintf "%s %dx%d" count t.rows t.cols

let pp ppf t =
  Format.fprintf ppf "cgc{%d x %dx%d, mem_ports=%d, regs=%d}" t.cgcs t.rows
    t.cols t.mem_ports t.register_bank
