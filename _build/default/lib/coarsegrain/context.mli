(** CGC context words — the coarse-grain configuration stream.

    The paper's CGCs "can slightly modify their functionality according
    to the application requirements": like classic coarse-grain
    reconfigurable arrays, each cycle of a mapped kernel is described by
    one context word per node (which unit is active — multiplier or ALU —
    its opcode, and where its operands are routed from: the register
    bank, an immediate, or the chained node above).  This module encodes
    a scheduled+bound block into its context stream and decodes it back,
    giving the coarse-grain analogue of {!Hypar_finegrain.Bitstream}. *)

type word = int
(** A 16-bit context word:
    bit 0 — active; bit 1 — unit (0 ALU / 1 MUL);
    bits 2..6 — opcode; bits 7..9 — operand-A routing;
    bits 10..12 — operand-B routing (0 register bank, 1 chained row
    above, 2 immediate, 3 unused). *)

type t = {
  cycles : int;  (** context depth = schedule makespan *)
  words : word array array;  (** [cycle][slot]: slot-major, CGC, row, col *)
  slots : int;  (** node slots per cycle *)
  total_bits : int;
}

val generate : Cgc.t -> Hypar_ir.Dfg.t -> Schedule.t -> Binding.t -> t

val decode_mnemonic : word -> string option
(** Mnemonic of the operation an active word configures; [None] for an
    idle slot. *)

val utilization : t -> float
(** Fraction of node slots active over the whole context stream. *)

val load_cycles : t -> port_bits_per_cycle:int -> int
(** Cycles to load the whole context stream through a configuration port
    — the CGC's (small) analogue of FPGA reconfiguration. *)
