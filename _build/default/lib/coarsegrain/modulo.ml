module Ir = Hypar_ir

type t = {
  ii : int;
  res_mii : int;
  rec_mii : int;
  latency : int;
  recurrences : Ir.Instr.var list;
}

let ceil_div a b = (a + b - 1) / b

let res_mii cgc dfg =
  let node_ops = ref 0 and mem_ops = ref 0 in
  List.iter
    (fun (nd : Ir.Dfg.node) ->
      match nd.instr with
      | Ir.Instr.Mov _ -> ()
      | Ir.Instr.Load _ | Ir.Instr.Store _ -> incr mem_ops
      | Ir.Instr.Bin _ | Ir.Instr.Un _ | Ir.Instr.Mul _ | Ir.Instr.Select _
      | Ir.Instr.Div _ | Ir.Instr.Rem _ ->
        incr node_ops)
    (Ir.Dfg.nodes dfg);
  max 1
    (max
       (ceil_div !node_ops (Cgc.node_slots cgc))
       (ceil_div !mem_ops cgc.Cgc.mem_ports))

(* Recurrence bound from the base schedule: the cycle span from the first
   use of a carried scalar to its redefinition cannot overlap with the
   next iteration's same span. *)
let rec_mii dfg (sched : Schedule.t) carried =
  let span (v : Ir.Instr.var) =
    let first_use = ref max_int in
    let def_cycle = ref 0 in
    List.iter
      (fun (nd : Ir.Dfg.node) ->
        let cycle = sched.Schedule.placements.(nd.id).Schedule.cycle in
        if
          List.exists
            (fun (u : Ir.Instr.var) -> Ir.Instr.var_equal u v)
            (Ir.Instr.used_vars nd.instr)
        then first_use := min !first_use cycle;
        (match Ir.Instr.def nd.instr with
        | Some d when Ir.Instr.var_equal d v ->
          def_cycle := max !def_cycle cycle
        | Some _ | None -> ()))
      (Ir.Dfg.nodes dfg);
    if !first_use = max_int then max 1 !def_cycle
    else max 1 (!def_cycle - !first_use + 1)
  in
  List.fold_left (fun acc v -> max acc (span v)) 1 carried

let analyse cgc dfg ~carried =
  if not (Schedule.supported dfg) then None
  else begin
    let sched = Schedule.schedule cgc dfg in
    let latency = max 1 sched.Schedule.makespan in
    (* only scalars actually redefined by this block recur *)
    let defined (v : Ir.Instr.var) =
      List.exists
        (fun (nd : Ir.Dfg.node) ->
          match Ir.Instr.def nd.instr with
          | Some d -> Ir.Instr.var_equal d v
          | None -> false)
        (Ir.Dfg.nodes dfg)
    in
    let recurrences = List.filter defined carried in
    let res = res_mii cgc dfg in
    let rc = rec_mii dfg sched recurrences in
    let ii = min latency (max res rc) in
    Some { ii; res_mii = res; rec_mii = rc; latency; recurrences }
  end

let pipelined_cycles t ~iterations =
  if iterations <= 0 then 0
  else ((iterations - 1) * t.ii) + t.latency

let pp ppf t =
  Format.fprintf ppf "II=%d (res=%d rec=%d) latency=%d carried=[%s]" t.ii
    t.res_mii t.rec_mii t.latency
    (String.concat ";"
       (List.map (fun (v : Ir.Instr.var) -> v.vname) t.recurrences))
