module Ir = Hypar_ir

type word = int

type t = {
  cycles : int;
  words : word array array;
  slots : int;
  total_bits : int;
}

let word_bits = 16

(* opcode space: 0..15 ALU ops, 16..18 unary, 19 select, 20 mul *)
let opcode_of_instr (instr : Ir.Instr.t) =
  match instr with
  | Ir.Instr.Bin { op; _ } ->
    let rec index k = function
      | [] -> assert false
      | o :: rest -> if o = op then k else index (k + 1) rest
    in
    index 0 Ir.Types.all_alu_ops
  | Ir.Instr.Un { op; _ } -> (
    16 + (match op with Ir.Types.Neg -> 0 | Ir.Types.Not -> 1 | Ir.Types.Abs -> 2))
  | Ir.Instr.Select _ -> 19
  | Ir.Instr.Mul _ -> 20
  | Ir.Instr.Div _ | Ir.Instr.Rem _ | Ir.Instr.Mov _ | Ir.Instr.Load _
  | Ir.Instr.Store _ ->
    invalid_arg "Context: not a CGC node operation"

let mnemonic_table =
  Array.of_list
    (List.map Ir.Types.string_of_alu_op Ir.Types.all_alu_ops
    @ [ "neg"; "not"; "abs"; "select"; "mul" ])

(* operand routing: 0 register bank, 1 chained row above, 2 immediate *)
let route_of dfg (sched : Schedule.t) node operand =
  match operand with
  | Ir.Instr.Imm _ -> 2
  | Ir.Instr.Var _ -> (
    let my = sched.Schedule.placements.(node) in
    (* chained iff some predecessor shares cycle and column *)
    let chained =
      List.exists
        (fun p ->
          let pp = sched.Schedule.placements.(p) in
          pp.Schedule.cycle = my.Schedule.cycle
          && pp.Schedule.chain = my.Schedule.chain
          && pp.Schedule.chain >= 0
          && pp.Schedule.depth = my.Schedule.depth - 1)
        (Ir.Dfg.preds dfg node)
    in
    if chained then 1 else 0)

let encode dfg sched node =
  let instr = (Ir.Dfg.node dfg node).Ir.Dfg.instr in
  let unit_bit = match instr with Ir.Instr.Mul _ -> 1 | _ -> 0 in
  let ops = Ir.Instr.uses instr in
  let route k =
    match List.nth_opt ops k with
    | Some operand -> route_of dfg sched node operand
    | None -> 3
  in
  1 lor (unit_bit lsl 1)
  lor (opcode_of_instr instr lsl 2)
  lor (route 0 lsl 7)
  lor (route 1 lsl 10)

let generate (cgc : Cgc.t) dfg (sched : Schedule.t) (binding : Binding.t) =
  let cycles = max 1 sched.Schedule.makespan in
  let slots = Cgc.node_slots cgc in
  let words = Array.make_matrix cycles slots 0 in
  let slot_index (s : Binding.slot) =
    (s.Binding.cgc * cgc.Cgc.rows * cgc.Cgc.cols)
    + (s.Binding.row * cgc.Cgc.cols)
    + s.Binding.col
  in
  List.iter
    (fun (s : Binding.slot) ->
      if s.Binding.cycle >= 1 && s.Binding.cycle <= cycles then
        words.(s.Binding.cycle - 1).(slot_index s) <- encode dfg sched s.Binding.node)
    binding.Binding.slots;
  { cycles; words; slots; total_bits = cycles * slots * word_bits }

let decode_mnemonic word =
  if word land 1 = 0 then None
  else begin
    let opcode = (word lsr 2) land 0x1F in
    if opcode < Array.length mnemonic_table then Some mnemonic_table.(opcode)
    else None
  end

let utilization t =
  let active = ref 0 in
  Array.iter
    (fun row -> Array.iter (fun w -> if w land 1 = 1 then incr active) row)
    t.words;
  if t.cycles * t.slots = 0 then 0.0
  else float_of_int !active /. float_of_int (t.cycles * t.slots)

let load_cycles t ~port_bits_per_cycle =
  if port_bits_per_cycle <= 0 then
    invalid_arg "Context.load_cycles: port width must be positive";
  (t.total_bits + port_bits_per_cycle - 1) / port_bits_per_cycle
