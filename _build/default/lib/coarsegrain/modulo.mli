(** Loop pipelining (modulo scheduling) of kernels on the CGC data-path.

    A kernel moved to the coarse-grain hardware is a self-looping basic
    block executed thousands of times; Eq. 3 prices it at
    [latency × iterations], leaving the data-path idle between dependent
    steps.  Software pipelining overlaps iterations at an initiation
    interval [II = max(ResMII, RecMII)]:

    - [ResMII] — resource bound: node ops per node slot and memory ops
      per port, per cycle;
    - [RecMII] — recurrence bound: for every loop-carried scalar (live-in
      to the block and redefined by it), the cycle span from its first
      use to its (re)definition in the base schedule.

    Pipelined execution then takes [(iterations-1)·II + latency] CGC
    cycles.  This realises the paper's §3 observation that "through the
    pipelining among the stages of computations, the reconfigurable
    processing units are always utilized", applied within the coarse
    grain; the engine exposes it as [~cgc_pipelining]. *)

type t = {
  ii : int;  (** achieved initiation interval (CGC cycles) *)
  res_mii : int;
  rec_mii : int;
  latency : int;  (** single-iteration latency (base schedule makespan) *)
  recurrences : Hypar_ir.Instr.var list;  (** the loop-carried scalars *)
}

val analyse : Cgc.t -> Hypar_ir.Dfg.t -> carried:Hypar_ir.Instr.var list -> t option
(** [carried] are the block's loop-carried scalars (live-in ∩ defined —
    the engine derives them from liveness).  [None] when the DFG is not
    CGC-executable. *)

val pipelined_cycles : t -> iterations:int -> int
(** [(iterations-1)·II + latency], at least one iteration's latency;
    0 for 0 iterations. *)

val pp : Format.formatter -> t -> unit
