lib/coarsegrain/coarse_map.mli: Binding Cgc Format Hypar_ir Schedule
