lib/coarsegrain/schedule.ml: Array Cgc Format Fun Hashtbl Hypar_ir List
