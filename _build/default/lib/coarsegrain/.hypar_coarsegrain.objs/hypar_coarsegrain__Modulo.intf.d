lib/coarsegrain/modulo.mli: Cgc Format Hypar_ir
