lib/coarsegrain/cgc.mli: Format
