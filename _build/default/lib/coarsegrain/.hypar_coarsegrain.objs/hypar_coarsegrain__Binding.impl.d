lib/coarsegrain/binding.ml: Array Buffer Cgc Format Hashtbl Hypar_ir List Printf Schedule String
