lib/coarsegrain/binding.mli: Cgc Format Hypar_ir Schedule
