lib/coarsegrain/context.ml: Array Binding Cgc Hypar_ir List Schedule
