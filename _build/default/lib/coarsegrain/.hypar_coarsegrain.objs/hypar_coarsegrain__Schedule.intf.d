lib/coarsegrain/schedule.mli: Cgc Format Hypar_ir
