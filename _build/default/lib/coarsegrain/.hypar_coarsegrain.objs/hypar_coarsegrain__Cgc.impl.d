lib/coarsegrain/cgc.ml: Format Printf
