lib/coarsegrain/context.mli: Binding Cgc Hypar_ir Schedule
