lib/coarsegrain/coarse_map.ml: Binding Format Hypar_ir List Printf Schedule
