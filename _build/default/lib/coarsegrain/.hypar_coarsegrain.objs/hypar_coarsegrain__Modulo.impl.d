lib/coarsegrain/modulo.ml: Array Cgc Format Hypar_ir List Schedule String
