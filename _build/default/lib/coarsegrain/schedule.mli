(** Resource-constrained list scheduling onto the CGC data-path
    (paper §3.3, step (a) of the coarse-grain mapping).

    Cycle-driven list scheduling with ALAP-based priority.  Per CGC cycle
    the data-path offers [Cgc.chains cgc] columns of [rows] node slots:
    independent operations may share a column (every CGC node is a full
    compute unit), while a *same-cycle dependent* operation must extend
    its producer's column below the current chain tail — the steering
    logic's row chaining, realising the paper's single-cycle "complex
    operations (like a multiply-add)".  Loads/stores use the
    shared-memory ports; register moves are realised by the steering
    interconnect and cost no cycle.  Divisions are not executable by CGC
    nodes: {!schedule} rejects DFGs containing them. *)

type placement = {
  cycle : int;  (** 1-based start cycle; 0 for free moves of constants *)
  chain : int;  (** column id within the cycle; -1 for moves and memory ops *)
  depth : int;  (** 1-based row slot in the column; 0 for moves/memory *)
}

type t = {
  placements : placement array;  (** per node id *)
  makespan : int;  (** latency in CGC cycles *)
}

exception Unsupported of string
(** Raised for DFGs containing divisions/remainders. *)

val schedule : ?priority:[ `Alap | `Asap | `Program ] -> Cgc.t -> Hypar_ir.Dfg.t -> t
(** [priority] selects the list-scheduling order (default [`Alap] —
    most critical first, the choice the [ablation:priority] bench
    justifies). *)

val supported : Hypar_ir.Dfg.t -> bool
(** [true] when the DFG contains no division/remainder. *)

val is_valid : Cgc.t -> Hypar_ir.Dfg.t -> t -> bool
(** Re-checks all constraints: dependences respected (same-cycle only via
    chaining), chain count and depth per cycle, memory ports per cycle. *)

val chains_in_cycle : t -> int -> int
(** Number of distinct columns used in the given cycle. *)

val pp : Format.formatter -> t -> unit
