(** Coarse-Grain Component (CGC) data-path model, after the authors'
    FPL'04 design used as the coarse-grain hardware in the paper.

    The data-path is a set of [cgcs] identical CGC components, a
    reconfigurable interconnect and a register bank.  Each CGC is an
    [rows]×[cols] array of nodes; every node contains a multiplier and an
    ALU (one active per cycle), and the steering logic chains nodes along
    a column so that up to [rows] *dependent* operations (e.g. a
    multiply-add) complete within a single CGC cycle.  All node operations
    have unit delay in [T_CGC] ("this period is set for having unit
    execution delay for the CGCs"). *)

type t = {
  cgcs : int;  (** number of CGC components *)
  rows : int;  (** chain depth executable in one cycle *)
  cols : int;  (** independent chains per CGC per cycle *)
  mem_ports : int;  (** shared-data-memory ports per CGC cycle *)
  register_bank : int;  (** capacity of the register bank (for stats) *)
}

val make :
  ?mem_ports:int -> ?register_bank:int -> cgcs:int -> rows:int -> cols:int
  -> unit -> t
(** Defaults: 2 memory ports, 64 registers. Raises [Invalid_argument] on
    non-positive dimensions. *)

val two_by_two : int -> t
(** [two_by_two k] — the paper's data-path of [k] 2×2 CGCs. *)

val chains : t -> int
(** Total chains available per cycle: [cgcs * cols]. *)

val node_slots : t -> int
(** Total node slots per cycle: [cgcs * rows * cols]. *)

val describe : t -> string
(** e.g. ["two 2x2"] / ["three 2x2"] / ["4x 3x2"]. *)

val pp : Format.formatter -> t -> unit
