lib/analysis/range.ml: Array Format Fun Hashtbl Hypar_ir List Option
