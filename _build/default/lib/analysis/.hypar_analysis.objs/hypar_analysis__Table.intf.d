lib/analysis/table.mli: Kernel
