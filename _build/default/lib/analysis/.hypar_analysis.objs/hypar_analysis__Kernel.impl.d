lib/analysis/kernel.ml: Array Format Hypar_ir Hypar_profiling List Weights
