lib/analysis/kernel.mli: Format Hypar_ir Hypar_profiling Weights
