lib/analysis/table.ml: Buffer Kernel List Printf
