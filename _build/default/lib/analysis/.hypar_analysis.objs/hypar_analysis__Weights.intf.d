lib/analysis/weights.mli: Format Hypar_ir
