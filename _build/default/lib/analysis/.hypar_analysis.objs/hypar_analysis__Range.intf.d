lib/analysis/range.mli: Format Hypar_ir
