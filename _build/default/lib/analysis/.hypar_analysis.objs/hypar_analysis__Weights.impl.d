lib/analysis/weights.ml: Format Hypar_ir List
