module Ir = Hypar_ir

type t = { alu : int; mul : int; div : int; mem : int; move : int }

let paper = { alu = 1; mul = 2; div = 4; mem = 1; move = 1 }

let make ?(alu = paper.alu) ?(mul = paper.mul) ?(div = paper.div)
    ?(mem = paper.mem) ?(move = paper.move) () =
  { alu; mul; div; mem; move }

let of_class t = function
  | Ir.Types.Class_alu -> t.alu
  | Ir.Types.Class_mul -> t.mul
  | Ir.Types.Class_div -> t.div
  | Ir.Types.Class_mem -> t.mem
  | Ir.Types.Class_move -> t.move

let instr_weight t instr = of_class t (Ir.Instr.op_class instr)

let bb_weight t dfg =
  List.fold_left
    (fun acc (nd : Ir.Dfg.node) -> acc + instr_weight t nd.instr)
    0 (Ir.Dfg.nodes dfg)

let pp ppf t =
  Format.fprintf ppf "weights{alu=%d mul=%d div=%d mem=%d move=%d}" t.alu t.mul
    t.div t.mem t.move
