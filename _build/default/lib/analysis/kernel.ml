module Ir = Hypar_ir
module Profiling = Hypar_profiling

type entry = {
  block_id : int;
  label : string;
  exec_freq : int;
  bb_weight : int;
  total_weight : int;
  loop_depth : int;
  is_kernel : bool;
}

type t = {
  weights : Weights.t;
  entries : entry array;
  kernels : entry list;
}

let analyse ?(weights = Weights.paper) cdfg (profile : Profiling.Profile.t) =
  let entries =
    Array.mapi
      (fun i (bi : Ir.Cdfg.block_info) ->
        let exec_freq = Profiling.Profile.freq profile i in
        let bb_weight = Weights.bb_weight weights bi.dfg in
        let total_weight = exec_freq * bb_weight in
        {
          block_id = i;
          label = bi.block.Ir.Block.label;
          exec_freq;
          bb_weight;
          total_weight;
          loop_depth = bi.loop_depth;
          is_kernel = bi.loop_depth > 0 && exec_freq > 0 && bb_weight > 0;
        })
      (Ir.Cdfg.infos cdfg)
  in
  let kernels =
    Array.to_list entries
    |> List.filter (fun e -> e.is_kernel)
    |> List.sort (fun a b ->
           match compare b.total_weight a.total_weight with
           | 0 -> compare a.block_id b.block_id
           | c -> c)
  in
  { weights; entries; kernels }

let top t n = List.filteri (fun i _ -> i < n) t.kernels

let entry t i = t.entries.(i)

let total_application_weight t =
  Array.fold_left (fun acc e -> acc + e.total_weight) 0 t.entries

let pp_entry ppf e =
  Format.fprintf ppf "BB%-3d freq=%-9d bb_weight=%-5d total=%-11d depth=%d%s"
    e.block_id e.exec_freq e.bb_weight e.total_weight e.loop_depth
    (if e.is_kernel then " [kernel]" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>analysis (%a):@," Weights.pp t.weights;
  List.iter (fun e -> Format.fprintf ppf "  %a@," pp_entry e) t.kernels;
  Format.fprintf ppf "@]"
