(** Kernel extraction and ordering (paper §3.1, Eq. 1).

    Combines the dynamic profile with the static weight model:
    [total_weight = exec_freq * bb_weight].  Kernels are the blocks inside
    loops that were actually executed; they are returned in decreasing
    total weight, the order in which the partitioning engine moves them to
    the coarse-grain hardware. *)

type entry = {
  block_id : int;
  label : string;
  exec_freq : int;
  bb_weight : int;
  total_weight : int;
  loop_depth : int;
  is_kernel : bool;
}

type t = {
  weights : Weights.t;
  entries : entry array;  (** one per block, in block-id order *)
  kernels : entry list;  (** decreasing total weight; ties by block id *)
}

val analyse :
  ?weights:Weights.t -> Hypar_ir.Cdfg.t -> Hypar_profiling.Profile.t -> t
(** Runs the static analysis against a collected profile
    (default weights: {!Weights.paper}). *)

val top : t -> int -> entry list
(** The [n] heaviest kernels. *)

val entry : t -> int -> entry
(** Entry for a block id. *)

val total_application_weight : t -> int
(** Sum of all blocks' total weights — a size measure of the workload. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
