(** Table-1-style rendering of the analysis results: the N most
    computation-intensive basic blocks with their execution frequency,
    operation weight and total weight, in decreasing total-weight order. *)

val render : ?top:int -> title:string -> Kernel.t -> string
(** A plain-text table matching the paper's Table 1 columns
    ([Basic Block no. | exec. freq. | Operations weight | Total weight]);
    [top] defaults to 8, the number of rows the paper prints per
    application. *)

val render_csv : ?top:int -> Kernel.t -> string
(** The same rows as CSV (header included). *)
