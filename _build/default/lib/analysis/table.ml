let render ?(top = 8) ~title analysis =
  let buf = Buffer.create 512 in
  let rows = Kernel.top analysis top in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  Buffer.add_string buf
    "Basic Block no. | exec. freq. | Operations weight | Total weight\n";
  Buffer.add_string buf
    "----------------+-------------+-------------------+-------------\n";
  List.iter
    (fun (e : Kernel.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%15d | %11d | %17d | %12d\n" e.block_id e.exec_freq
           e.bb_weight e.total_weight))
    rows;
  Buffer.contents buf

let render_csv ?(top = 8) analysis =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "block_id,exec_freq,bb_weight,total_weight\n";
  List.iter
    (fun (e : Kernel.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d\n" e.block_id e.exec_freq e.bb_weight
           e.total_weight))
    (Kernel.top analysis top);
  Buffer.contents buf
