(** Static operation-weight model (paper §3.1).

    "Since operations in a basic block do not have a uniform cost, a
    weighted sum is calculated and aggregated at the basic block level...
    we give a weight equal to 1 for the ALU operations and a weight equal
    to 2 for the multiplication ones."  Weights are per operation class
    and fully parametric. *)

type t = {
  alu : int;
  mul : int;
  div : int;
  mem : int;  (** memory accesses are counted, per the paper *)
  move : int;
}

val paper : t
(** The paper's weights: ALU 1, MUL 2; memory accesses and moves count 1,
    divisions 4 (absent from the benchmark DFGs). *)

val make : ?alu:int -> ?mul:int -> ?div:int -> ?mem:int -> ?move:int -> unit -> t
(** [paper] with selected fields overridden. *)

val of_class : t -> Hypar_ir.Types.op_class -> int
val instr_weight : t -> Hypar_ir.Instr.t -> int

val bb_weight : t -> Hypar_ir.Dfg.t -> int
(** The paper's [bb_weight]: weighted operation count of a block's DFG. *)

val pp : Format.formatter -> t -> unit
