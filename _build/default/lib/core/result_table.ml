let moved_blocks_string (r : Engine.t) =
  String.concat ", " (List.map string_of_int r.Engine.moved)

let status_string (r : Engine.t) =
  match r.Engine.status with
  | Engine.Met_without_partitioning -> "met (all-FPGA)"
  | Engine.Met_after k -> Printf.sprintf "met after %d move(s)" k
  | Engine.Infeasible -> "infeasible"

let render ~title runs =
  let buf = Buffer.create 1024 in
  let col_width = 18 in
  let label_width = 22 in
  let pad s w =
    if String.length s >= w then s else s ^ String.make (w - String.length s) ' '
  in
  let row label cells =
    Buffer.add_string buf (pad label label_width);
    List.iter
      (fun c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad c col_width))
      cells;
    Buffer.add_char buf '\n'
  in
  (match runs with
  | r :: _ ->
    Buffer.add_string buf
      (Printf.sprintf "%s (timing constraint %d cycles)\n" title
         r.Engine.timing_constraint)
  | [] -> Buffer.add_string buf (title ^ "\n"));
  let fpga_area (r : Engine.t) =
    r.Engine.platform.Platform.fpga.Hypar_finegrain.Fpga.area
  in
  let cgc_desc (r : Engine.t) =
    Hypar_coarsegrain.Cgc.describe r.Engine.platform.Platform.cgc
  in
  row "A_FPGA" (List.map (fun r -> string_of_int (fpga_area r)) runs);
  row "CGCs no." (List.map cgc_desc runs);
  row "Initial cycles"
    (List.map (fun (r : Engine.t) -> string_of_int r.Engine.initial.Engine.t_total) runs);
  row "Cycles in CGC"
    (List.map (fun r -> string_of_int (Engine.coarse_cycles_of_moved r)) runs);
  row "BB no." (List.map moved_blocks_string runs);
  row "Final cycles"
    (List.map (fun (r : Engine.t) -> string_of_int r.Engine.final.Engine.t_total) runs);
  row "% cycles reduction"
    (List.map (fun r -> Printf.sprintf "%.1f" (Engine.reduction_percent r)) runs);
  row "Status" (List.map status_string runs);
  Buffer.contents buf

let render_csv runs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "platform,a_fpga,cgcs,initial_cycles,cycles_in_cgc,moved_bbs,final_cycles,reduction_percent,status\n";
  List.iter
    (fun (r : Engine.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%d,%d,\"%s\",%d,%.2f,%s\n"
           r.Engine.platform.Platform.name
           r.Engine.platform.Platform.fpga.Hypar_finegrain.Fpga.area
           (Hypar_coarsegrain.Cgc.describe r.Engine.platform.Platform.cgc)
           r.Engine.initial.Engine.t_total
           (Engine.coarse_cycles_of_moved r)
           (moved_blocks_string r) r.Engine.final.Engine.t_total
           (Engine.reduction_percent r) (status_string r)))
    runs;
  Buffer.contents buf
