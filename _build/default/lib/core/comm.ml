module Ir = Hypar_ir

type model = { cycles_per_word : int; ports : int; fixed_overhead : int }

let default = { cycles_per_word = 1; ports = 2; fixed_overhead = 4 }

let make ?(cycles_per_word = default.cycles_per_word) ?(ports = default.ports)
    ?(fixed_overhead = default.fixed_overhead) () =
  if cycles_per_word < 0 || ports <= 0 || fixed_overhead < 0 then
    invalid_arg "Comm.make: invalid parameters";
  { cycles_per_word; ports; fixed_overhead }

let block_words live i =
  List.length (Ir.Live.live_in live i) + List.length (Ir.Live.defs_live_out live i)

let ceil_div a b = (a + b - 1) / b

let block_cycles model live i =
  let words = block_words live i in
  model.fixed_overhead + ceil_div (words * model.cycles_per_word) model.ports

let total_cycles model live ~freq ~moved =
  List.fold_left (fun acc i -> acc + (block_cycles model live i * freq i)) 0 moved

let words_cost model words =
  model.fixed_overhead + ceil_div (words * model.cycles_per_word) model.ports

let transition_cycles model live ~edges ~on_cgc =
  List.fold_left
    (fun acc (((src, dst), count) : (int * int) * int) ->
      let src_cgc = on_cgc src and dst_cgc = on_cgc dst in
      if src_cgc = dst_cgc then acc
      else
        let words =
          if dst_cgc then List.length (Hypar_ir.Live.live_in live dst)
          else List.length (Hypar_ir.Live.defs_live_out live src)
        in
        acc + (count * words_cost model words))
    0 edges
