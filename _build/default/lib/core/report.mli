(** Markdown report of a partitioning run — the artifact a user files with
    their design review: platform, constraint, the kernel analysis, every
    engine step, and the final block-by-block assignment. *)

val markdown : ?top_kernels:int -> Engine.t -> string
(** Renders the full report ([top_kernels] rows in the analysis table,
    default 8). *)
