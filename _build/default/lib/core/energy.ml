module Ir = Hypar_ir
module Analysis = Hypar_analysis
module Profiling = Hypar_profiling
module Finegrain = Hypar_finegrain

type class_energy = { alu : int; mul : int; div : int; mem : int; move : int }

type model = {
  fpga_op : class_energy;
  cgc_op : class_energy;
  reconfig : int;
  comm_word : int;
}

let default =
  {
    fpga_op = { alu = 10; mul = 30; div = 80; mem = 12; move = 3 };
    cgc_op = { alu = 2; mul = 6; div = 80; mem = 12; move = 1 };
    reconfig = 500;
    comm_word = 8;
  }

let of_class (ce : class_energy) = function
  | Ir.Types.Class_alu -> ce.alu
  | Ir.Types.Class_mul -> ce.mul
  | Ir.Types.Class_div -> ce.div
  | Ir.Types.Class_mem -> ce.mem
  | Ir.Types.Class_move -> ce.move

let ops_energy ce dfg =
  List.fold_left
    (fun acc (nd : Ir.Dfg.node) -> acc + of_class ce (Ir.Instr.op_class nd.instr))
    0 (Ir.Dfg.nodes dfg)

let block_energy_fpga model (platform : Platform.t) cdfg i =
  let dfg = (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg in
  let mapping = Finegrain.Fine_map.map_block platform.Platform.fpga cdfg i in
  ops_energy model.fpga_op dfg
  + (mapping.Finegrain.Fine_map.partition_count * model.reconfig)

let block_energy_cgc model cdfg i =
  ops_energy model.cgc_op (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg

let comm_energy model live i = Comm.block_words live i * model.comm_word

let app_energy model platform cdfg ~freq ~moved =
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  List.fold_left
    (fun acc i ->
      let f = freq i in
      if f = 0 then acc
      else if List.mem i moved then
        acc + (f * (block_energy_cgc model cdfg i + comm_energy model live i))
      else acc + (f * block_energy_fpga model platform cdfg i))
    0 (Ir.Cdfg.block_ids cdfg)

type step = { moved_block : int; energy : int; meets_budget : bool }

type t = {
  model : model;
  energy_budget : int;
  initial_energy : int;
  steps : step list;
  final_energy : int;
  moved : int list;
  feasible : bool;
}

let partition ?weights model (platform : Platform.t) ~energy_budget cdfg profile =
  let n = Ir.Cdfg.block_count cdfg in
  let freq = Array.init n (fun i -> Profiling.Profile.freq profile i) in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let fpga_e = Array.init n (fun i -> block_energy_fpga model platform cdfg i) in
  let cgc_e = Array.init n (fun i -> block_energy_cgc model cdfg i) in
  let comm_e = Array.init n (fun i -> comm_energy model live i) in
  let cgc_ok =
    Array.init n (fun i ->
        Hypar_coarsegrain.Schedule.supported (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg)
  in
  let total moved =
    let is_moved = Array.make n false in
    List.iter (fun i -> is_moved.(i) <- true) moved;
    let acc = ref 0 in
    for i = 0 to n - 1 do
      if freq.(i) > 0 then
        if is_moved.(i) then acc := !acc + (freq.(i) * (cgc_e.(i) + comm_e.(i)))
        else acc := !acc + (freq.(i) * fpga_e.(i))
    done;
    !acc
  in
  let initial_energy = total [] in
  let analysis = Analysis.Kernel.analyse ?weights cdfg profile in
  let rec go kernels steps moved current =
    if current <= energy_budget then
      {
        model;
        energy_budget;
        initial_energy;
        steps = List.rev steps;
        final_energy = current;
        moved = List.rev moved;
        feasible = true;
      }
    else
      match kernels with
      | [] ->
        {
          model;
          energy_budget;
          initial_energy;
          steps = List.rev steps;
          final_energy = current;
          moved = List.rev moved;
          feasible = false;
        }
      | (k : Analysis.Kernel.entry) :: rest ->
        if not cgc_ok.(k.block_id) then go rest steps moved current
        else begin
          let candidate = k.block_id :: moved in
          let e = total candidate in
          if e >= current then
            (* moving this kernel does not help (communication dominates) *)
            go rest steps moved current
          else
            let step =
              { moved_block = k.block_id; energy = e; meets_budget = e <= energy_budget }
            in
            go rest (step :: steps) candidate e
        end
  in
  go analysis.Analysis.Kernel.kernels [] [] initial_energy

let reduction_percent t =
  if t.initial_energy = 0 then 0.0
  else
    100.0
    *. float_of_int (t.initial_energy - t.final_energy)
    /. float_of_int t.initial_energy

let pp ppf t =
  Format.fprintf ppf
    "@[<v>energy partitioning (budget %d):@,  initial=%d final=%d (%.1f%% saved) moved=[%s] %s@]"
    t.energy_budget t.initial_energy t.final_energy (reduction_percent t)
    (String.concat ";" (List.map string_of_int t.moved))
    (if t.feasible then "met" else "INFEASIBLE")
