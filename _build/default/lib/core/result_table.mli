(** Rendering of partitioning results in the layout of the paper's
    Tables 2 and 3: one column per platform configuration, rows for the
    initial all-FPGA cycles, the cycles spent in the CGC data-path, the
    moved basic blocks, the final cycles and the percentage reduction. *)

val render : title:string -> Engine.t list -> string
(** All runs must target the same application and timing constraint. *)

val render_csv : Engine.t list -> string
(** The same data as CSV (one row per configuration). *)

val moved_blocks_string : Engine.t -> string
(** e.g. ["22, 12, 3"] — moved kernels in move order. *)
