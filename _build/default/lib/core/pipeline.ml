type t = {
  frames : int;
  sequential_total : int;
  fine_per_frame : float;
  coarse_comm_per_frame : float;
  pipelined_total : float;
  speedup : float;
  bottleneck : [ `Fine | `Coarse ];
}

let analyse ~frames (r : Engine.t) =
  if frames <= 0 then invalid_arg "Pipeline.analyse: frames must be positive";
  let final = r.Engine.final in
  let a = float_of_int final.Engine.t_fpga /. float_of_int frames in
  let b =
    float_of_int (final.Engine.t_coarse + final.Engine.t_comm)
    /. float_of_int frames
  in
  let pipelined_total = a +. b +. (float_of_int (frames - 1) *. max a b) in
  let sequential_total = final.Engine.t_total in
  let speedup =
    if pipelined_total > 0.0 then float_of_int sequential_total /. pipelined_total
    else 1.0
  in
  {
    frames;
    sequential_total;
    fine_per_frame = a;
    coarse_comm_per_frame = b;
    pipelined_total;
    speedup;
    bottleneck = (if a >= b then `Fine else `Coarse);
  }

let pp ppf t =
  Format.fprintf ppf
    "pipeline over %d frames: seq=%d pipe=%.0f speedup=%.2fx bottleneck=%s"
    t.frames t.sequential_total t.pipelined_total t.speedup
    (match t.bottleneck with `Fine -> "fine" | `Coarse -> "coarse")
