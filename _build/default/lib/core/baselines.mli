(** Baseline kernel-selection strategies.

    The paper's engine moves kernels greedily in decreasing Eq.-1 weight.
    This module provides the comparison points an evaluation of that
    choice needs:

    - {!Paper_greedy} — the paper's strategy (weight order, stop at first
      feasible point);
    - {!Benefit_greedy} — greedy on *measured* standalone benefit
      (Eq.-2 delta of moving just that kernel) instead of the static
      Eq.-1 weight;
    - {!Loop_greedy} — greedy over whole innermost loops;
    - {!Random_order} — seeded random kernel order (a sanity floor);
    - {!Exhaustive} — optimal subset over the top-[k] kernels: the
      feasible moved set with the fewest moves (ties broken by lowest
      [t_total]), or the best-[t_total] subset when nothing is feasible.

    All strategies skip CGC-unmappable kernels and price moved sets with
    the same Eq.-2 evaluator as the engine. *)

type strategy =
  | Paper_greedy
  | Benefit_greedy
  | Loop_greedy
      (** moves *whole innermost loops* (all mappable kernel blocks of a
          natural loop together), heaviest loop first — multi-block loop
          bodies like the ADPCM sample loop then never straddle the
          fine/coarse boundary *)
  | Random_order of int  (** seed *)
  | Exhaustive of int  (** consider the top-k kernels (k <= 20) *)

type outcome = {
  strategy : strategy;
  name : string;
  moved : int list;  (** in move order (or the chosen subset) *)
  met : bool;
  t_total : int;
  evaluations : int;  (** Eq.-2 evaluations spent *)
}

val name_of : strategy -> string

val run :
  Platform.t ->
  timing_constraint:int ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  strategy ->
  outcome

val compare_all :
  ?strategies:strategy list ->
  Platform.t ->
  timing_constraint:int ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  outcome list
(** Defaults: paper greedy, benefit greedy, loop greedy, random (seed 1),
    exhaustive over the top 12 kernels. *)
