(** Energy-constrained partitioning — the paper's "future work".

    A parametric energy model prices every dynamic operation on either
    side of the platform (coarse-grain ASIC operations are substantially
    cheaper than their FPGA equivalents), plus the FPGA reconfiguration
    energy per temporal partition and the shared-memory traffic of moved
    kernels.  {!partition} runs the same greedy kernel-movement loop as
    the timing engine, but against an energy budget. *)

type class_energy = { alu : int; mul : int; div : int; mem : int; move : int }

type model = {
  fpga_op : class_energy;  (** per dynamic operation on the FPGA *)
  cgc_op : class_energy;  (** per dynamic operation on a CGC node *)
  reconfig : int;  (** per temporal-partition reconfiguration *)
  comm_word : int;  (** per word through the shared memory *)
}

val default : model
(** FPGA ops cost ~5x their CGC equivalents (the coarse-grain advantage
    the paper cites [1]); reconfiguration 500, memory word 8 units. *)

val block_energy_fpga : model -> Platform.t -> Hypar_ir.Cdfg.t -> int -> int
(** Energy of one invocation of a block mapped on the FPGA (operations +
    per-partition reconfiguration). *)

val block_energy_cgc : model -> Hypar_ir.Cdfg.t -> int -> int
(** Energy of one invocation on the CGC data-path (operations only). *)

val comm_energy : model -> Hypar_ir.Live.t -> int -> int
(** Shared-memory transfer energy per invocation of a moved block. *)

val app_energy :
  model -> Platform.t -> Hypar_ir.Cdfg.t -> freq:(int -> int) -> moved:int list -> int
(** Total energy of a partitioned execution. *)

type step = { moved_block : int; energy : int; meets_budget : bool }

type t = {
  model : model;
  energy_budget : int;
  initial_energy : int;  (** all-FPGA *)
  steps : step list;
  final_energy : int;
  moved : int list;
  feasible : bool;
}

val partition :
  ?weights:Hypar_analysis.Weights.t ->
  model ->
  Platform.t ->
  energy_budget:int ->
  Hypar_ir.Cdfg.t ->
  Hypar_profiling.Profile.t ->
  t
(** Greedy kernel movement (decreasing Eq.-1 weight) until the energy
    budget is met; kernel movements that *increase* energy (communication
    dominating) are rolled back and skipped. *)

val reduction_percent : t -> float
val pp : Format.formatter -> t -> unit
