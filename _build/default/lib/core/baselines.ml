module Ir = Hypar_ir
module Analysis = Hypar_analysis

type strategy =
  | Paper_greedy
  | Benefit_greedy
  | Loop_greedy
  | Random_order of int
  | Exhaustive of int

type outcome = {
  strategy : strategy;
  name : string;
  moved : int list;
  met : bool;
  t_total : int;
  evaluations : int;
}

let name_of = function
  | Paper_greedy -> "paper greedy (Eq.1 weight)"
  | Benefit_greedy -> "benefit greedy"
  | Loop_greedy -> "loop greedy (whole loops)"
  | Random_order seed -> Printf.sprintf "random order (seed %d)" seed
  | Exhaustive k -> Printf.sprintf "exhaustive (top %d)" k

let shuffle seed l =
  let a = Array.of_list l in
  let state = ref (if seed = 0 then 1 else seed) in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Greedy over a given order of kernel *groups*: move group by group
   until feasible. *)
let greedy_groups evaluate timing_constraint groups =
  let evaluations = ref 0 in
  let eval moved =
    incr evaluations;
    (evaluate moved : Engine.times)
  in
  let rec go groups moved last =
    if last.Engine.t_total <= timing_constraint then (List.rev moved, last, true)
    else
      match groups with
      | [] -> (List.rev moved, last, false)
      | g :: rest ->
        let moved = List.rev_append g moved in
        go rest moved (eval (List.rev moved))
  in
  let moved, times, met = go groups [] (eval []) in
  (moved, times, met, !evaluations)

(* Greedy over a given kernel order: move until feasible. *)
let greedy evaluate timing_constraint order =
  let evaluations = ref 0 in
  let eval moved =
    incr evaluations;
    (evaluate moved : Engine.times)
  in
  let rec go order moved last =
    if last.Engine.t_total <= timing_constraint then (List.rev moved, last, true)
    else
      match order with
      | [] -> (List.rev moved, last, false)
      | b :: rest ->
        let moved = b :: moved in
        go rest moved (eval (List.rev moved))
  in
  let moved, times, met = go order [] (eval []) in
  (moved, times, met, !evaluations)

(* All subsets of the top-k kernels; prefer feasible with fewest moves,
   then lowest total; else lowest total. *)
let exhaustive evaluate timing_constraint candidates =
  let cands = Array.of_list candidates in
  let k = Array.length cands in
  if k > 20 then invalid_arg "Baselines: exhaustive beyond top-20 kernels";
  let evaluations = ref 0 in
  let best = ref None in
  let better (subset, (times : Engine.times)) =
    let met = times.Engine.t_total <= timing_constraint in
    let key = (not met, (if met then List.length subset else 0), times.Engine.t_total) in
    match !best with
    | None -> best := Some (subset, times, met, key)
    | Some (_, _, _, best_key) ->
      if key < best_key then best := Some (subset, times, met, key)
  in
  for mask = 0 to (1 lsl k) - 1 do
    let subset = ref [] in
    for bit = k - 1 downto 0 do
      if mask land (1 lsl bit) <> 0 then subset := cands.(bit) :: !subset
    done;
    incr evaluations;
    better (!subset, evaluate !subset)
  done;
  match !best with
  | Some (subset, times, met, _) -> (subset, times, met, !evaluations)
  | None -> assert false

let run (platform : Platform.t) ~timing_constraint cdfg profile strategy =
  let evaluate = Engine.evaluate platform cdfg profile in
  let analysis = Analysis.Kernel.analyse cdfg profile in
  let kernels =
    List.filter_map
      (fun (e : Analysis.Kernel.entry) ->
        if Engine.mappable platform cdfg e.block_id then Some e.block_id
        else None)
      analysis.Analysis.Kernel.kernels
  in
  let moved, times, met, evaluations =
    match strategy with
    | Paper_greedy -> greedy evaluate timing_constraint kernels
    | Loop_greedy ->
      (* group the mappable kernels by the innermost loop containing
         them, keep each group in kernel-weight order, and order groups
         by their summed Eq.-1 weight *)
      let cfg = Ir.Cdfg.cfg cdfg in
      let loops = Ir.Loop.find cfg in
      let innermost_of b =
        List.fold_left
          (fun acc (l : Ir.Loop.t) ->
            if List.mem b l.Ir.Loop.body then
              match acc with
              | Some (best : Ir.Loop.t)
                when List.length best.Ir.Loop.body <= List.length l.Ir.Loop.body
                ->
                acc
              | _ -> Some l
            else acc)
          None loops
      in
      let weight_of b =
        (Analysis.Kernel.entry analysis b).Analysis.Kernel.total_weight
      in
      let groups : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun b ->
          let key =
            match innermost_of b with
            | Some l -> l.Ir.Loop.header
            | None -> -1 - b
          in
          let prev = Option.value (Hashtbl.find_opt groups key) ~default:[] in
          Hashtbl.replace groups key (b :: prev))
        kernels;
      let group_list =
        Hashtbl.fold (fun _ blocks acc -> List.rev blocks :: acc) groups []
      in
      let group_weight g = List.fold_left (fun acc b -> acc + weight_of b) 0 g in
      let ordered =
        List.sort (fun g1 g2 -> compare (group_weight g2) (group_weight g1))
          group_list
      in
      greedy_groups evaluate timing_constraint ordered
    | Random_order seed -> greedy evaluate timing_constraint (shuffle seed kernels)
    | Benefit_greedy ->
      let base = (evaluate []).Engine.t_total in
      let benefits =
        List.map (fun b -> (b, base - (evaluate [ b ]).Engine.t_total)) kernels
      in
      let order =
        List.map fst
          (List.sort (fun (_, b1) (_, b2) -> compare b2 b1) benefits)
      in
      let moved, times, met, evals = greedy evaluate timing_constraint order in
      (moved, times, met, evals + List.length kernels)
    | Exhaustive k ->
      let top = List.filteri (fun i _ -> i < k) kernels in
      exhaustive evaluate timing_constraint top
  in
  {
    strategy;
    name = name_of strategy;
    moved;
    met;
    t_total = times.Engine.t_total;
    evaluations;
  }

let compare_all ?strategies platform ~timing_constraint cdfg profile =
  let strategies =
    match strategies with
    | Some s -> s
    | None ->
      [ Paper_greedy; Benefit_greedy; Loop_greedy; Random_order 1; Exhaustive 12 ]
  in
  List.map (run platform ~timing_constraint cdfg profile) strategies
