(** Frame-pipelined execution — the paper's "ongoing work" extension.

    The baseline methodology assumes mutually exclusive execution of the
    fine- and coarse-grain blocks (Eq. 2 adds the three terms).  DSP and
    multimedia applications, however, process a stream of frames, so the
    fine-grain part of frame [i+1] can overlap the coarse-grain part of
    frame [i] — the pipelining the paper sketches in §3 and names as
    ongoing work in §5.  This model splits the partitioned execution into
    per-frame stages and reports the pipelined cycle count and speedup. *)

type t = {
  frames : int;
  sequential_total : int;  (** Eq. 2 value for the whole run *)
  fine_per_frame : float;
  coarse_comm_per_frame : float;  (** coarse + communication stage *)
  pipelined_total : float;  (** fill + steady-state *)
  speedup : float;  (** sequential / pipelined *)
  bottleneck : [ `Fine | `Coarse ];
}

val analyse : frames:int -> Engine.t -> t
(** Two-stage pipeline model over the engine's final times: stage A is
    the fine-grain part of a frame, stage B its coarse-grain part plus
    shared-memory transfers; total = (A+B) fill + (frames-1)·max(A,B).
    Raises [Invalid_argument] if [frames <= 0]. *)

val pp : Format.formatter -> t -> unit
