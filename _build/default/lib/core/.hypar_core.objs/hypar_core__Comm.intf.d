lib/core/comm.mli: Hypar_ir
