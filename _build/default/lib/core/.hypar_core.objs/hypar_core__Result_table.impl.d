lib/core/result_table.ml: Buffer Engine Hypar_coarsegrain Hypar_finegrain List Platform Printf String
