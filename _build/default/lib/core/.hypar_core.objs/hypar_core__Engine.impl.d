lib/core/engine.ml: Array Comm Format Hashtbl Hypar_analysis Hypar_coarsegrain Hypar_finegrain Hypar_ir Hypar_profiling List Option Platform
