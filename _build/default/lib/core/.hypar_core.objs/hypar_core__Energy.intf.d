lib/core/energy.mli: Format Hypar_analysis Hypar_ir Hypar_profiling Platform
