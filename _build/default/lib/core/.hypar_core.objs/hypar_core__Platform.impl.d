lib/core/platform.ml: Comm Format Hypar_coarsegrain Hypar_finegrain Printf
