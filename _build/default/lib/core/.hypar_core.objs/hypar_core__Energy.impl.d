lib/core/energy.ml: Array Comm Format Hypar_analysis Hypar_coarsegrain Hypar_finegrain Hypar_ir Hypar_profiling List Platform String
