lib/core/pipeline.mli: Engine Format
