lib/core/comm.ml: Hypar_ir List
