lib/core/report.ml: Array Buffer Engine Hypar_analysis List Platform Printf
