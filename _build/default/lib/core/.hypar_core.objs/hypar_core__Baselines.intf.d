lib/core/baselines.mli: Hypar_ir Hypar_profiling Platform
