lib/core/platform.mli: Comm Format Hypar_coarsegrain Hypar_finegrain
