lib/core/report.mli: Engine
