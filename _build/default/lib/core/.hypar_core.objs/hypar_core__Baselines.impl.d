lib/core/baselines.ml: Array Engine Hashtbl Hypar_analysis Hypar_ir List Option Platform Printf
