lib/core/pipeline.ml: Engine Format
