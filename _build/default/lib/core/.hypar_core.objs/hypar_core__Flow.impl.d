lib/core/flow.ml: Engine Hypar_ir Hypar_minic Hypar_profiling
