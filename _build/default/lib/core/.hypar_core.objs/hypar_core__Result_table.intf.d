lib/core/result_table.mli: Engine
