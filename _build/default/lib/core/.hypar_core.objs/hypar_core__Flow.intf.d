lib/core/flow.mli: Engine Hypar_analysis Hypar_ir Hypar_profiling Platform
