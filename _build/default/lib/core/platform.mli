(** The generic hybrid reconfigurable platform of Figure 1: fine-grain
    (FPGA) blocks, a coarse-grain CGC data-path, a shared data memory and
    the clock relationship between the two domains. *)

type t = {
  name : string;
  fpga : Hypar_finegrain.Fpga.t;
  cgc : Hypar_coarsegrain.Cgc.t;
  clock_ratio : int;  (** [T_FPGA / T_CGC]; the paper assumes 3 *)
  comm : Comm.model;
}

val make :
  ?name:string ->
  ?clock_ratio:int ->
  ?comm:Comm.model ->
  fpga:Hypar_finegrain.Fpga.t ->
  cgc:Hypar_coarsegrain.Cgc.t ->
  unit ->
  t
(** Defaults: clock ratio 3 (paper §4), {!Comm.default}. *)

val paper_configs : unit -> t list
(** The four platform configurations of Tables 2–3:
    [A_FPGA ∈ {1500, 5000}] × data-paths of two / three 2×2 CGCs. *)

val cgc_to_fpga_cycles : t -> int -> int
(** Convert CGC cycles to FPGA cycle units (ceiling division by the clock
    ratio). *)

val pp : Format.formatter -> t -> unit
