(** JPEG encoder — the paper's second benchmark application, re-implemented
    in Mini-C.

    Pipeline per 8×8 block of a 256×256 greyscale image (1024 blocks, the
    paper's input size): level shift, 2-D integer DCT (LLM/libjpeg-islow
    style, unrolled 1-D row and column passes in Q13 with PASS1 scaling),
    quantisation with the standard JPEG luminance table via reciprocal
    multiplication (keeping the DFGs division-free, as the paper notes),
    zig-zag reordering, and run/size entropy coding: standard JPEG DC
    Huffman codes, fixed 8-bit run/size AC symbols (a simplified Huffman
    stage — see DESIGN.md substitutions), symbol buffering and an MSB-first
    bit packer whose inner loop is the hottest kernel. *)

val width : int
val height : int
val blocks : int
(** 32×32 = 1024 blocks. *)

val source : string
(** The Mini-C program (with generated constant tables), at the standard
    table (quality 50). *)

val source_for : quality:int -> string
(** The encoder with a libjpeg-style quality-scaled quantisation table
    (1..100; 50 = the standard table). *)

val inputs : ?seed:int -> unit -> (string * int array) list
(** A deterministic synthetic 256×256 image: gradient + sinusoidal
    texture + pseudo-random noise, values 0..255. *)

type golden_result = {
  bytes : int array;  (** packed bitstream, [len] bytes used *)
  len : int;
  dc_values : int array;  (** quantised DC per block, for diagnostics *)
}

val golden : (string * int array) list -> golden_result
(** Bit-exact OCaml reference encoder. *)

val golden_for : quality:int -> (string * int array) list -> golden_result
(** Reference encoder at a scaled quality (matches {!source_for}). *)

val quant_table_for : quality:int -> int array
(** The quality-scaled quantisation table (for the decoder oracle). *)

val prepared : unit -> Hypar_core.Flow.prepared
(** Compiled and profiled with [inputs ()] (memoised; default seed). *)

val timing_constraint : int
(** The timing constraint used in the Table 3 reproduction. *)

val zigzag : int array
val quant_table : int array

val dc_lengths : int array
(** Standard JPEG luminance DC Huffman code lengths per size category. *)

val dc_code_of : int -> int
(** Code value for a DC size category (see {!dc_lengths}). *)
