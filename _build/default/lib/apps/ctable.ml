let const_array name values =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "const int %s[%d] = { " name (Array.length values));
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (string_of_int v))
    values;
  Buffer.add_string buf " };\n";
  Buffer.contents buf

let int_array name size = Printf.sprintf "int %s[%d];\n" name size
