(** IEEE 802.11a OFDM transmitter front-end — the paper's first benchmark
    application, re-implemented in Mini-C.

    Pipeline per payload symbol: 16-QAM mapping of 48 data subcarriers
    (Gray-coded, Q11 amplitudes), pilot insertion (±26-subcarrier 802.11a
    layout), 64-point radix-2 DIT IFFT in Q14 fixed point with per-stage
    scaling, and 16-sample cyclic-prefix insertion — 80 output samples per
    symbol, {!symbols} = 6 payload symbols as in the paper's experiments.

    The module provides the Mini-C source, deterministic input
    generation, a bit-exact OCaml golden model and a memoised prepared
    (compiled + profiled) instance. *)

val symbols : int
(** 6 payload symbols, the input size of Tables 1 and 2. *)

val samples_per_symbol : int
(** 80 = 16 cyclic prefix + 64 IFFT outputs. *)

val source : string
(** The Mini-C program for {!symbols} payload symbols (with generated
    constant tables). *)

val source_for : symbols:int -> string
(** The same transmitter sized for a different payload length (used by
    the input-scaling ablation). *)

val inputs : ?seed:int -> unit -> (string * int array) list
(** Deterministic pseudo-random 16-QAM input symbols ([bits] array,
    one 0..15 value per data subcarrier). *)

val inputs_for : ?seed:int -> symbols:int -> unit -> (string * int array) list

val golden : (string * int array) list -> int array * int array
(** Bit-exact OCaml reference: returns (out_re, out_im), each
    [symbols * samples_per_symbol] long; the symbol count follows the
    input length. *)

val prepared : unit -> Hypar_core.Flow.prepared
(** Compiled and profiled with [inputs ()] (memoised; default seed). *)

val timing_constraint : int
(** The timing constraint used in the Table 2 reproduction. *)

val carrier_map : int array
(** FFT bin of each of the 48 data subcarriers (802.11a layout), used by
    the receiver oracle ({!Decode.ofdm_demodulate}). *)
