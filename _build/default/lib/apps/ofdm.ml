let symbols = 6
let samples_per_symbol = 80
let data_carriers = 48
let timing_constraint = 60_000

(* Q14 twiddles of the 64-point IFFT: w_k = e^{+j 2 pi k / 64}. *)
let tw_re =
  Array.init 32 (fun k ->
      int_of_float
        (Float.round (16384.0 *. cos (2.0 *. Float.pi *. float_of_int k /. 64.0))))

let tw_im =
  Array.init 32 (fun k ->
      int_of_float
        (Float.round (16384.0 *. sin (2.0 *. Float.pi *. float_of_int k /. 64.0))))

(* 16-QAM, Gray-coded per axis (00 -3, 01 -1, 11 +1, 10 +3), Q10 scale. *)
let gray_level = [| -3; -1; 3; 1 |]

let qam_re = Array.init 16 (fun v -> gray_level.((v lsr 2) land 3) * 1024)
let qam_im = Array.init 16 (fun v -> gray_level.(v land 3) * 1024)

(* 802.11a data subcarriers: -26..26 without 0 and the pilots +-7, +-21;
   negative frequencies map to FFT bins 64+k. *)
let carrier_map =
  let pilots = [ -21; -7; 7; 21 ] in
  let ks =
    List.filter
      (fun k -> k <> 0 && not (List.mem k pilots))
      (List.init 53 (fun i -> i - 26))
  in
  assert (List.length ks = data_carriers);
  Array.of_list (List.map (fun k -> if k < 0 then 64 + k else k) ks)

let bit_reverse_6 i =
  let r = ref 0 in
  for b = 0 to 5 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (5 - b))
  done;
  !r

let bitrev = Array.init 64 bit_reverse_6

let source_for ~symbols =
  String.concat ""
    [
      Ctable.const_array "qam_re" qam_re;
      Ctable.const_array "qam_im" qam_im;
      Ctable.const_array "carrier_map" carrier_map;
      Ctable.const_array "bitrev" bitrev;
      Ctable.const_array "tw_re" tw_re;
      Ctable.const_array "tw_im" tw_im;
      Ctable.int_array "bits" (symbols * data_carriers);
      Ctable.int_array "xre" 64;
      Ctable.int_array "xim" 64;
      Ctable.int_array "yre" 64;
      Ctable.int_array "yim" 64;
      Ctable.int_array "out_re" (symbols * samples_per_symbol);
      Ctable.int_array "out_im" (symbols * samples_per_symbol);
      Printf.sprintf {|
void main() {
  int s;
  for (s = 0; s < %d; s = s + 1) {|} symbols;
      {|
    int k;
    for (k = 0; k < 64; k = k + 1) {
      xre[k] = 0;
      xim[k] = 0;
    }
    int j;
    for (j = 0; j < 48; j = j + 1) {
      int v = bits[s * 48 + j];
      int pos = carrier_map[j];
      xre[pos] = qam_re[v];
      xim[pos] = qam_im[v];
    }
    xre[7] = 1024;
    xre[21] = 0 - 1024;
    xre[43] = 1024;
    xre[57] = 1024;
    int i;
    for (i = 0; i < 64; i = i + 1) {
      int r = bitrev[i];
      yre[i] = xre[r];
      yim[i] = xim[r];
    }
    int half = 1;
    int st;
    for (st = 0; st < 6; st = st + 1) {
      int stride = 32 >> st;
      int base;
      for (base = 0; base < 64; base = base + (half << 1)) {
        int q;
        for (q = 0; q < half; q = q + 1) {
          int a = base + q;
          int b = a + half;
          int wr = tw_re[q * stride];
          int wi = tw_im[q * stride];
          int br = yre[b];
          int bi = yim[b];
          int tr = (br * wr - bi * wi) >> 14;
          int ti = (br * wi + bi * wr) >> 14;
          int ar = yre[a];
          int ai = yim[a];
          yre[a] = (ar + tr) >> 1;
          yim[a] = (ai + ti) >> 1;
          yre[b] = (ar - tr) >> 1;
          yim[b] = (ai - ti) >> 1;
        }
      }
      half = half << 1;
    }
    int c;
    for (c = 0; c < 16; c = c + 1) {
      out_re[s * 80 + c] = yre[48 + c];
      out_im[s * 80 + c] = yim[48 + c];
    }
    int m;
    for (m = 0; m < 64; m = m + 1) {
      out_re[s * 80 + 16 + m] = yre[m];
      out_im[s * 80 + 16 + m] = yim[m];
    }
  }
}
|};
    ]

let source = source_for ~symbols

(* Deterministic LCG so tests and benches are reproducible. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

let inputs_for ?(seed = 42) ~symbols () =
  let next = lcg seed in
  [ ("bits", Array.init (symbols * data_carriers) (fun _ -> next 16)) ]

let inputs ?seed () = inputs_for ?seed ~symbols ()

(* --- bit-exact golden model -------------------------------------------- *)

let golden input_list =
  let bits =
    match List.assoc_opt "bits" input_list with
    | Some b -> b
    | None -> invalid_arg "Ofdm.golden: missing \"bits\" input"
  in
  (* the symbol count follows the input length *)
  let symbols = Array.length bits / data_carriers in
  let out_re = Array.make (symbols * samples_per_symbol) 0 in
  let out_im = Array.make (symbols * samples_per_symbol) 0 in
  let yre = Array.make 64 0 and yim = Array.make 64 0 in
  for s = 0 to symbols - 1 do
    let xre = Array.make 64 0 and xim = Array.make 64 0 in
    for j = 0 to data_carriers - 1 do
      let v = bits.((s * data_carriers) + j) in
      let pos = carrier_map.(j) in
      xre.(pos) <- qam_re.(v);
      xim.(pos) <- qam_im.(v)
    done;
    xre.(7) <- 1024;
    xre.(21) <- -1024;
    xre.(43) <- 1024;
    xre.(57) <- 1024;
    for i = 0 to 63 do
      yre.(i) <- xre.(bitrev.(i));
      yim.(i) <- xim.(bitrev.(i))
    done;
    let half = ref 1 in
    for st = 0 to 5 do
      let stride = 32 asr st in
      let base = ref 0 in
      while !base < 64 do
        for q = 0 to !half - 1 do
          let a = !base + q in
          let b = a + !half in
          let wr = tw_re.(q * stride) and wi = tw_im.(q * stride) in
          let br = yre.(b) and bi = yim.(b) in
          let tr = ((br * wr) - (bi * wi)) asr 14 in
          let ti = ((br * wi) + (bi * wr)) asr 14 in
          let ar = yre.(a) and ai = yim.(a) in
          yre.(a) <- (ar + tr) asr 1;
          yim.(a) <- (ai + ti) asr 1;
          yre.(b) <- (ar - tr) asr 1;
          yim.(b) <- (ai - ti) asr 1
        done;
        base := !base + (!half * 2)
      done;
      half := !half * 2
    done;
    for c = 0 to 15 do
      out_re.((s * 80) + c) <- yre.(48 + c);
      out_im.((s * 80) + c) <- yim.(48 + c)
    done;
    for m = 0 to 63 do
      out_re.((s * 80) + 16 + m) <- yre.(m);
      out_im.((s * 80) + 16 + m) <- yim.(m)
    done
  done;
  (out_re, out_im)

let prepared_memo = ref None

let prepared () =
  match !prepared_memo with
  | Some p -> p
  | None ->
    let p = Hypar_core.Flow.prepare ~name:"ofdm" ~inputs:(inputs ()) source in
    prepared_memo := Some p;
    p
