(* --- OFDM receiver ------------------------------------------------------- *)

(* complex forward DFT, float: the receiver is a test oracle, so float
   precision is appropriate *)
let dft64 re im =
  let out_re = Array.make 64 0.0 and out_im = Array.make 64 0.0 in
  for k = 0 to 63 do
    let sr = ref 0.0 and si = ref 0.0 in
    for n = 0 to 63 do
      let angle = -2.0 *. Float.pi *. float_of_int (k * n) /. 64.0 in
      let c = cos angle and s = sin angle in
      sr := !sr +. (re.(n) *. c) -. (im.(n) *. s);
      si := !si +. (re.(n) *. s) +. (im.(n) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)

(* The transmitter applies >>1 per IFFT stage (a /64 overall) on Q10
   constellation points; the forward DFT multiplies by 64, so a received
   carrier is back at Q10 scale: levels at -3072, -1024, +1024, +3072. *)
let demap_level v =
  if v < -2048.0 then 0 (* -3 -> Gray 00 *)
  else if v < 0.0 then 1 (* -1 -> Gray 01 *)
  else if v < 2048.0 then 3 (* +1 -> Gray 11 *)
  else 2 (* +3 -> Gray 10 *)

let ofdm_demodulate ~re ~im =
  let symbols = Array.length re / Ofdm.samples_per_symbol in
  let out = Array.make (symbols * 48) 0 in
  for s = 0 to symbols - 1 do
    let base = (s * Ofdm.samples_per_symbol) + 16 (* skip the CP *) in
    let t_re = Array.init 64 (fun n -> float_of_int re.(base + n)) in
    let t_im = Array.init 64 (fun n -> float_of_int im.(base + n)) in
    let f_re, f_im = dft64 t_re t_im in
    Array.iteri
      (fun j carrier ->
        let i_bits = demap_level f_re.(carrier) in
        let q_bits = demap_level f_im.(carrier) in
        out.((s * 48) + j) <- (i_bits lsl 2) lor q_bits)
      Ofdm.carrier_map
  done;
  out

let ofdm_bit_errors ~sent ~received =
  let errors = ref 0 in
  Array.iteri
    (fun i v ->
      let diff = v lxor received.(i) in
      for b = 0 to 3 do
        if diff land (1 lsl b) <> 0 then incr errors
      done)
    sent;
  !errors

(* --- JPEG decoder --------------------------------------------------------- *)

type jpeg_image = { pixels : int array; width : int; height : int }

type bit_reader = { data : int array; len : int; mutable bitpos : int }

let read_bit r =
  let byte = r.bitpos / 8 in
  if byte >= r.len then failwith "jpeg_decode: bitstream exhausted";
  let bit = (r.data.(byte) lsr (7 - (r.bitpos mod 8))) land 1 in
  r.bitpos <- r.bitpos + 1;
  bit

let read_bits r n =
  let v = ref 0 in
  for _ = 1 to n do
    v := (!v lsl 1) lor read_bit r
  done;
  !v

(* canonical decode against the DC code table *)
let read_dc_category r =
  let code = ref 0 and len = ref 0 in
  let result = ref None in
  while !result = None do
    if !len > 9 then failwith "jpeg_decode: invalid DC code";
    code := (!code lsl 1) lor read_bit r;
    incr len;
    Array.iteri
      (fun cat l ->
        if !result = None && l = !len && Jpeg.dc_code_of cat = !code then
          result := Some cat)
      Jpeg.dc_lengths
  done;
  Option.get !result

let extend_amplitude amp cat =
  if cat = 0 then 0
  else if amp < 1 lsl (cat - 1) then amp - ((1 lsl cat) - 1)
  else amp

(* float IDCT oracle (the encoder's coefficients are 8x the standard
   JPEG DCT, libjpeg convention) *)
let idct_8x8 coeffs =
  let c u = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
  let out = Array.make 64 0 in
  for y = 0 to 7 do
    for x = 0 to 7 do
      let acc = ref 0.0 in
      for v = 0 to 7 do
        for u = 0 to 7 do
          let f = float_of_int coeffs.((v * 8) + u) /. 8.0 in
          acc :=
            !acc
            +. (c u *. c v *. f
               *. cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int u *. Float.pi /. 16.0)
               *. cos ((2.0 *. float_of_int y +. 1.0) *. float_of_int v *. Float.pi /. 16.0))
        done
      done;
      let p = int_of_float (Float.round (!acc /. 4.0)) + 128 in
      out.((y * 8) + x) <- (if p < 0 then 0 else if p > 255 then 255 else p)
    done
  done;
  out

let jpeg_decode ?(quant_table = Jpeg.quant_table) ~bytes_in ~len () =
  let r = { data = bytes_in; len; bitpos = 0 } in
  let width = Jpeg.width and height = Jpeg.height in
  let pixels = Array.make (width * height) 0 in
  let prev_dc = ref 0 in
  for by = 0 to (height / 8) - 1 do
    for bx = 0 to (width / 8) - 1 do
      let zz = Array.make 64 0 in
      (* DC *)
      let cat = read_dc_category r in
      let amp = read_bits r cat in
      let diff = extend_amplitude amp cat in
      prev_dc := !prev_dc + diff;
      zz.(0) <- !prev_dc;
      (* AC: fixed 8-bit run/size symbols, 0 = EOB, 240 = ZRL *)
      let k = ref 1 in
      while !k < 64 do
        let symbol = read_bits r 8 in
        if symbol = 0 then k := 64 (* EOB *)
        else if symbol = 240 then k := !k + 16 (* ZRL *)
        else begin
          let run = symbol lsr 4 and size = symbol land 15 in
          k := !k + run;
          if !k > 63 then failwith "jpeg_decode: run past end of block";
          let amp = read_bits r size in
          zz.(!k) <- extend_amplitude amp size;
          incr k
        end
      done;
      (* dequantise through the zig-zag order *)
      let coeffs = Array.make 64 0 in
      Array.iteri
        (fun i natural -> coeffs.(natural) <- zz.(i) * quant_table.(natural) * 8)
        Jpeg.zigzag;
      let blk = idct_8x8 coeffs in
      for yy = 0 to 7 do
        for xx = 0 to 7 do
          pixels.((((by * 8) + yy) * width) + (bx * 8) + xx) <- blk.((yy * 8) + xx)
        done
      done
    done
  done;
  { pixels; width; height }

let psnr a b =
  if Array.length a <> Array.length b then invalid_arg "psnr: size mismatch";
  let mse = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = float_of_int (v - b.(i)) in
      mse := !mse +. (d *. d))
    a;
  let mse = !mse /. float_of_int (Array.length a) in
  if mse = 0.0 then infinity else 10.0 *. log10 (255.0 *. 255.0 /. mse)

(* --- ADPCM decoder --------------------------------------------------------- *)

let adpcm_decode ~codes =
  let out = Array.make Adpcm.samples 0 in
  let predicted = ref 0 and index = ref 0 in
  for n = 0 to Adpcm.samples - 1 do
    let byte = codes.(n asr 1) in
    let nibble = if n land 1 = 0 then byte land 15 else (byte lsr 4) land 15 in
    let sign = nibble land 8 and code = nibble land 7 in
    let step = Adpcm.step_table.(!index) in
    let vpdiff = ref (step asr 3) in
    if code land 4 <> 0 then vpdiff := !vpdiff + step;
    if code land 2 <> 0 then vpdiff := !vpdiff + (step asr 1);
    if code land 1 <> 0 then vpdiff := !vpdiff + (step asr 2);
    if sign <> 0 then predicted := !predicted - !vpdiff
    else predicted := !predicted + !vpdiff;
    predicted := min 32767 (max (-32768) !predicted);
    index := min 88 (max 0 (!index + Adpcm.index_table.(code)));
    out.(n) <- !predicted
  done;
  out

let snr_db ~reference ~decoded =
  if Array.length reference <> Array.length decoded then
    invalid_arg "snr_db: size mismatch";
  let signal = ref 0.0 and noise = ref 0.0 in
  Array.iteri
    (fun i v ->
      let s = float_of_int v in
      let e = float_of_int (v - decoded.(i)) in
      signal := !signal +. (s *. s);
      noise := !noise +. (e *. e))
    reference;
  if !noise = 0.0 then infinity else 10.0 *. log10 (!signal /. !noise)
