lib/apps/sobel.ml: Array Ctable Hypar_core List String
