lib/apps/ofdm.mli: Hypar_core
