lib/apps/synth.mli: Hypar_ir
