lib/apps/sobel.mli: Hypar_core
