lib/apps/ctable.mli:
