lib/apps/ctable.ml: Array Buffer Printf
