lib/apps/adpcm.mli: Hypar_core
