lib/apps/jpeg.mli: Hypar_core
