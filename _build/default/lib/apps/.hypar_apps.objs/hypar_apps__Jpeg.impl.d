lib/apps/jpeg.ml: Array Ctable Float Fun Hypar_core List Printf String
