lib/apps/decode.mli:
