lib/apps/synth.ml: Array Buffer Hypar_ir List Printf String
