lib/apps/ofdm.ml: Array Ctable Float Hypar_core List Printf String
