lib/apps/adpcm.ml: Array Ctable Hypar_core List String
