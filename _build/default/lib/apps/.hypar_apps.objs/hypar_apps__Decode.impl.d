lib/apps/decode.ml: Adpcm Array Float Jpeg Ofdm Option
