(** Helpers for splicing OCaml-computed constant tables into generated
    Mini-C source (ROM tables: twiddle factors, QAM constellations,
    zig-zag order, quantiser reciprocals...). *)

val const_array : string -> int array -> string
(** [const_array "tw_re" [|1;2|]] = ["const int tw_re[2] = { 1, 2 };\n"]. *)

val int_array : string -> int -> string
(** Uninitialised global array declaration of a given size. *)
