(** Synthetic workload generators for property tests and benchmarks.

    All generators are deterministic in their [seed]. *)

val random_dfg : ?seed:int -> nodes:int -> unit -> Hypar_ir.Dfg.t
(** A random straight-line DFG over fresh temporaries: mixes ALU ops,
    multiplications, moves and loads/stores on a scratch array, with
    operands drawn from earlier results (guaranteeing forward edges). *)

val random_straightline_main : ?seed:int -> ops:int -> unit -> string
(** A Mini-C program whose [main] is a single straight-line block of
    random integer arithmetic over previously defined locals, storing
    its last value to [out[0]] — used to cross-check passes and the
    interpreter against direct evaluation. *)

val random_structured_main : ?seed:int -> depth:int -> unit -> string
(** A Mini-C program with random nested structure (bounded [for] loops,
    [if]/[else], arithmetic on an accumulator) writing its result to
    [out[0]].  All loops have static bounds, so the program always
    terminates. *)

val matmul_source : n:int -> string
(** Dense [n×n] integer matrix multiplication (a classic third workload
    for examples/benches): reads [a] and [b], writes [c]. *)

val fir_source : taps:int -> samples:int -> string
(** FIR filter over [samples] inputs with [taps] coefficients: reads
    [x] and [h], writes [y]. *)
