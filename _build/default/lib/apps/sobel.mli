(** Sobel edge detector — a third multimedia workload (beyond the paper's
    two case studies) exercising the public API on a classic image-filter
    kernel: per interior pixel, the 3×3 Sobel gradients, an |Gx|+|Gy|
    magnitude and a threshold. Division-free; the hot block is the single
    inner-loop body. *)

val width : int
val height : int
val threshold : int

val source : string
(** The Mini-C program. *)

val inputs : ?seed:int -> unit -> (string * int array) list
(** Deterministic synthetic image with edge-rich content. *)

val golden : (string * int array) list -> int array
(** Bit-exact reference: the [edges] output plane (0 or 255 per pixel;
    borders 0). *)

val prepared : unit -> Hypar_core.Flow.prepared
(** Compiled and profiled with [inputs ()] (memoised). *)

val timing_constraint : int
(** 500 000 FPGA cycles — infeasible all-FPGA on both paper areas,
    requiring the kernel to move to the CGC data-path. *)
