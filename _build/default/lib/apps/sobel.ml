let width = 128
let height = 128
let threshold = 160
let timing_constraint = 500_000

let source =
  String.concat "\n"
    [
      Ctable.int_array "image" (width * height);
      Ctable.int_array "edges" (width * height);
      {|
void main() {
  int y;
  for (y = 1; y < 127; y = y + 1) {
    int x;
    for (x = 1; x < 127; x = x + 1) {
      int p = y * 128 + x;
      int a = image[p - 129];
      int b = image[p - 128];
      int c = image[p - 127];
      int d = image[p - 1];
      int f = image[p + 1];
      int g = image[p + 127];
      int h = image[p + 128];
      int i2 = image[p + 129];
      int gx = (c + f + f + i2) - (a + d + d + g);
      int gy = (g + h + h + i2) - (a + b + b + c);
      int mag = abs(gx) + abs(gy);
      edges[p] = mag > 160 ? 255 : 0;
    }
  }
}
|};
    ]

let inputs ?(seed = 3) () =
  let state = ref seed in
  let noise () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod 25
  in
  let pixel x y =
    (* blocks of contrasting brightness + diagonal stripe + noise *)
    let base = if ((x / 16) + (y / 16)) mod 2 = 0 then 60 else 190 in
    let stripe = if (x + y) mod 37 < 4 then 80 else 0 in
    let v = base + stripe + noise () in
    if v > 255 then 255 else v
  in
  [
    ( "image",
      Array.init (width * height) (fun i -> pixel (i mod width) (i / width)) );
  ]

let golden input_list =
  let image =
    match List.assoc_opt "image" input_list with
    | Some a -> a
    | None -> invalid_arg "Sobel.golden: missing \"image\" input"
  in
  let edges = Array.make (width * height) 0 in
  for y = 1 to height - 2 do
    for x = 1 to width - 2 do
      let p = (y * width) + x in
      let a = image.(p - 129)
      and b = image.(p - 128)
      and c = image.(p - 127)
      and d = image.(p - 1)
      and f = image.(p + 1)
      and g = image.(p + 127)
      and h = image.(p + 128)
      and i2 = image.(p + 129) in
      let gx = c + f + f + i2 - (a + d + d + g) in
      let gy = g + h + h + i2 - (a + b + b + c) in
      let mag = abs gx + abs gy in
      edges.(p) <- (if mag > threshold then 255 else 0)
    done
  done;
  edges

let prepared_memo = ref None

let prepared () =
  match !prepared_memo with
  | Some p -> p
  | None ->
    let p = Hypar_core.Flow.prepare ~name:"sobel" ~inputs:(inputs ()) source in
    prepared_memo := Some p;
    p
