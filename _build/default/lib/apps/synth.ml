module Ir = Hypar_ir

let lcg seed =
  let state = ref (if seed = 0 then 1 else seed) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

let random_dfg ?(seed = 1) ~nodes () =
  let next = lcg seed in
  let b = Ir.Builder.create () in
  Ir.Builder.declare_array b "scratch" 64;
  let temps = ref [] in
  let operand () =
    match !temps with
    | [] -> Ir.Builder.imm (next 100)
    | l ->
      if next 4 = 0 then Ir.Builder.imm (next 100)
      else Ir.Builder.var (List.nth l (next (List.length l)))
  in
  let alu_ops = Array.of_list Ir.Types.all_alu_ops in
  for _ = 1 to nodes do
    let v =
      match next 10 with
      | 0 -> Ir.Builder.mul b "t" (operand ()) (operand ())
      | 1 -> Ir.Builder.load b "t" ~arr:"scratch" (Ir.Builder.imm (next 64))
      | 2 ->
        Ir.Builder.store b ~arr:"scratch" (Ir.Builder.imm (next 64)) (operand ());
        Ir.Builder.mov b "t" (operand ())
      | 3 -> Ir.Builder.mov b "t" (operand ())
      | 4 -> Ir.Builder.un b Ir.Types.Neg "t" (operand ())
      | _ ->
        let op = alu_ops.(next (Array.length alu_ops)) in
        Ir.Builder.bin b op "t" (operand ()) (operand ())
    in
    temps := v :: !temps
  done;
  Ir.Builder.finish_block b ~label:"body" ~term:(Ir.Block.Return None);
  let cdfg = Ir.Builder.cdfg ~name:"random_dfg" b in
  (Ir.Cdfg.info cdfg 0).Ir.Cdfg.dfg

let binops = [| "+"; "-"; "*"; "&"; "|"; "^" |]

let random_straightline_main ?(seed = 1) ~ops () =
  let next = lcg seed in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "int out[4];\nvoid main() {\n";
  Buffer.add_string buf "  int v0 = 13;\n  int v1 = 7;\n";
  for i = 2 to ops + 1 do
    let a = next i and b = next i in
    let op = binops.(next (Array.length binops)) in
    (* keep magnitudes bounded so products stay far from overflow *)
    Buffer.add_string buf
      (Printf.sprintf "  int v%d = ((v%d %s v%d) & 65535) - 32768;\n" i a op b)
  done;
  Buffer.add_string buf (Printf.sprintf "  out[0] = v%d;\n}\n" (ops + 1));
  Buffer.contents buf

let random_structured_main ?(seed = 1) ~depth () =
  let next = lcg seed in
  let buf = Buffer.create 1024 in
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      Printf.sprintf "i%d" !n
  in
  let rec stmt level indent =
    let pad = String.make indent ' ' in
    match (if level <= 0 then 2 + next 2 else next 4) with
    | 0 ->
      let v = fresh () in
      let bound = 2 + next 5 in
      Buffer.add_string buf
        (Printf.sprintf "%sint %s;\n%sfor (%s = 0; %s < %d; %s = %s + 1) {\n"
           pad v pad v v bound v v);
      stmt (level - 1) (indent + 2);
      Buffer.add_string buf (pad ^ "}\n")
    | 1 ->
      Buffer.add_string buf
        (Printf.sprintf "%sif ((acc & %d) > %d) {\n" pad (1 + next 15) (next 8));
      stmt (level - 1) (indent + 2);
      Buffer.add_string buf (pad ^ "} else {\n");
      stmt (level - 1) (indent + 2);
      Buffer.add_string buf (pad ^ "}\n")
    | 2 ->
      Buffer.add_string buf
        (Printf.sprintf "%sacc = ((acc * %d + %d) & 262143) - 131072;\n" pad
           (1 + next 9) (next 100))
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf "%sacc = (acc ^ (acc >> %d)) + %d;\n" pad (1 + next 6)
           (next 50))
  in
  Buffer.add_string buf "int out[4];\nint acc;\nvoid main() {\n  acc = 1;\n";
  stmt depth 2;
  stmt depth 2;
  Buffer.add_string buf "  out[0] = acc;\n}\n";
  Buffer.contents buf

let matmul_source ~n =
  String.concat "\n"
    [
      Printf.sprintf "int a[%d];" (n * n);
      Printf.sprintf "int b[%d];" (n * n);
      Printf.sprintf "int c[%d];" (n * n);
      "void main() {";
      "  int i;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1) {" n;
      "    int j;";
      Printf.sprintf "    for (j = 0; j < %d; j = j + 1) {" n;
      "      int s = 0;";
      "      int k;";
      Printf.sprintf "      for (k = 0; k < %d; k = k + 1) {" n;
      Printf.sprintf "        s = s + a[i * %d + k] * b[k * %d + j];" n n;
      "      }";
      Printf.sprintf "      c[i * %d + j] = s;" n;
      "    }";
      "  }";
      "}";
    ]

let fir_source ~taps ~samples =
  String.concat "\n"
    [
      Printf.sprintf "int x[%d];" (samples + taps);
      Printf.sprintf "int h[%d];" taps;
      Printf.sprintf "int y[%d];" samples;
      "void main() {";
      "  int i;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1) {" samples;
      "    int s = 0;";
      "    int t;";
      Printf.sprintf "    for (t = 0; t < %d; t = t + 1) {" taps;
      "      s = s + x[i + t] * h[t];";
      "    }";
      "    y[i] = s >> 8;";
      "  }";
      "}";
    ]
