let width = 256
let height = 256
let blocks = width / 8 * (height / 8)
let timing_constraint = 11_000_000

(* Standard JPEG luminance quantisation table, natural (row-major) order. *)
let quant_table =
  [|
    16; 11; 10; 16; 24; 40; 51; 61;
    12; 12; 14; 19; 26; 58; 60; 55;
    14; 13; 16; 24; 40; 57; 69; 56;
    14; 17; 22; 29; 51; 87; 80; 62;
    18; 22; 37; 56; 68; 109; 103; 77;
    24; 35; 55; 64; 81; 104; 113; 92;
    49; 64; 78; 87; 103; 121; 120; 101;
    72; 92; 95; 98; 112; 100; 103; 99;
  |]

(* libjpeg-style quality scaling of the base table (quality 50 = the
   table itself; higher = finer quantisation). *)
let quant_table_for ~quality =
  let quality = if quality < 1 then 1 else if quality > 100 then 100 else quality in
  let scale =
    if quality < 50 then 5000 / quality else 200 - (2 * quality)
  in
  Array.map
    (fun q ->
      let v = ((q * scale) + 50) / 100 in
      if v < 1 then 1 else if v > 255 then 255 else v)
    quant_table

(* Reciprocals in Q19 of (quant * 8): the DCT leaves coefficients scaled
   by 8 (libjpeg-islow convention), so dividing by quant*8 quantises. *)
let qrecip_for table =
  Array.map
    (fun q -> int_of_float (Float.round (524288.0 /. float_of_int (q * 8))))
    table

let qrecip = qrecip_for quant_table

(* Zig-zag scan order: zigzag.(i) = natural index of the i-th coefficient. *)
let zigzag =
  let zz = Array.make 64 0 in
  let i = ref 0 in
  for d = 0 to 14 do
    let cells =
      List.filter_map
        (fun r ->
          let c = d - r in
          if r < 8 && c >= 0 && c < 8 then Some (r, c) else None)
        (List.init 8 Fun.id)
    in
    let cells = if d mod 2 = 0 then List.rev cells else cells in
    List.iter
      (fun (r, c) ->
        zz.(!i) <- (r * 8) + c;
        incr i)
      cells
  done;
  zz

(* Standard JPEG luminance DC Huffman table: code/length per size category. *)
let dc_len = [| 2; 3; 3; 3; 3; 3; 4; 5; 6; 7; 8; 9 |]
let dc_code = [| 0; 2; 3; 4; 5; 6; 14; 30; 62; 126; 254; 510 |]

let amp_mask = Array.init 16 (fun c -> (1 lsl c) - 1)

let dc_lengths = dc_len
let dc_code_of cat = dc_code.(cat)

(* One unrolled LLM (libjpeg-islow) 1-D DCT pass as Mini-C text.
   [load i] / [store i expr] produce the access expressions; the first
   pass up-scales by PASS1_BITS=2, the second descales to the final 8x
   coefficient scale. *)
let llm_pass_c ~first ~load ~store =
  let shift = if first then 11 else 15 in
  let round = 1 lsl (shift - 1) in
  let even0, even4 =
    if first then
      ( Printf.sprintf "%s" (store 0 "(tmp10 + tmp11) << 2"),
        Printf.sprintf "%s" (store 4 "(tmp10 - tmp11) << 2") )
    else
      ( store 0 "(tmp10 + tmp11 + 2) >> 2",
        store 4 "(tmp10 - tmp11 + 2) >> 2" )
  in
  String.concat "\n"
    [
      Printf.sprintf "  int d0 = %s;" (load 0);
      Printf.sprintf "  int d1 = %s;" (load 1);
      Printf.sprintf "  int d2 = %s;" (load 2);
      Printf.sprintf "  int d3 = %s;" (load 3);
      Printf.sprintf "  int d4 = %s;" (load 4);
      Printf.sprintf "  int d5 = %s;" (load 5);
      Printf.sprintf "  int d6 = %s;" (load 6);
      Printf.sprintf "  int d7 = %s;" (load 7);
      "  int tmp0 = d0 + d7;";
      "  int tmp7 = d0 - d7;";
      "  int tmp1 = d1 + d6;";
      "  int tmp6 = d1 - d6;";
      "  int tmp2 = d2 + d5;";
      "  int tmp5 = d2 - d5;";
      "  int tmp3 = d3 + d4;";
      "  int tmp4 = d3 - d4;";
      "  int tmp10 = tmp0 + tmp3;";
      "  int tmp13 = tmp0 - tmp3;";
      "  int tmp11 = tmp1 + tmp2;";
      "  int tmp12 = tmp1 - tmp2;";
      "  " ^ even0 ^ ";";
      "  " ^ even4 ^ ";";
      "  int32 z1 = (tmp12 + tmp13) * 4433;";
      Printf.sprintf "  %s;" (store 2 (Printf.sprintf "(z1 + tmp13 * 6270 + %d) >> %d" round shift));
      Printf.sprintf "  %s;" (store 6 (Printf.sprintf "(z1 - tmp12 * 15137 + %d) >> %d" round shift));
      "  int z1b = tmp4 + tmp7;";
      "  int z2 = tmp5 + tmp6;";
      "  int z3 = tmp4 + tmp6;";
      "  int z4 = tmp5 + tmp7;";
      "  int32 z5 = (z3 + z4) * 9633;";
      "  int32 t4 = tmp4 * 2446;";
      "  int32 t5 = tmp5 * 16819;";
      "  int32 t6 = tmp6 * 25172;";
      "  int32 t7 = tmp7 * 12299;";
      "  int32 z1c = 0 - z1b * 7373;";
      "  int32 z2c = 0 - z2 * 20995;";
      "  int32 z3c = 0 - z3 * 16069;";
      "  int32 z4c = 0 - z4 * 3196;";
      "  int32 z3d = z3c + z5;";
      "  int32 z4d = z4c + z5;";
      Printf.sprintf "  %s;" (store 7 (Printf.sprintf "(t4 + z1c + z3d + %d) >> %d" round shift));
      Printf.sprintf "  %s;" (store 5 (Printf.sprintf "(t5 + z2c + z4d + %d) >> %d" round shift));
      Printf.sprintf "  %s;" (store 3 (Printf.sprintf "(t6 + z2c + z3d + %d) >> %d" round shift));
      Printf.sprintf "  %s;" (store 1 (Printf.sprintf "(t7 + z1c + z4d + %d) >> %d" round shift));
    ]

let dct_row_c =
  String.concat "\n"
    [
      "void dct_row(int r) {";
      "  int base = r << 3;";
      llm_pass_c ~first:true
        ~load:(fun i -> Printf.sprintf "blk[base + %d]" i)
        ~store:(fun i e -> Printf.sprintf "tmpq[base + %d] = %s" i e);
      "}";
    ]

let dct_col_c =
  String.concat "\n"
    [
      "void dct_col(int c) {";
      llm_pass_c ~first:false
        ~load:(fun i -> Printf.sprintf "tmpq[c + %d]" (i * 8))
        ~store:(fun i e -> Printf.sprintf "coef[c + %d] = %s" (i * 8) e);
      "}";
    ]

let source_with ~qrecip =
  String.concat "\n"
    [
      Ctable.const_array "qrecip" qrecip;
      Ctable.const_array "zigzag" zigzag;
      Ctable.const_array "dc_len" dc_len;
      Ctable.const_array "dc_code" dc_code;
      Ctable.const_array "mask" amp_mask;
      Ctable.int_array "image" (width * height);
      Ctable.int_array "out_bytes" 65536;
      "int out_len;";
      "int bit_buf;";
      "int bit_cnt;";
      "int prev_dc;";
      Ctable.int_array "blk" 64;
      Ctable.int_array "tmpq" 64;
      Ctable.int_array "coef" 64;
      Ctable.int_array "zz" 64;
      Ctable.int_array "sym_val" 256;
      Ctable.int_array "sym_len" 256;
      "int nsym;";
      dct_row_c;
      dct_col_c;
      {|
void append(int val, int n) {
  sym_val[nsym] = val;
  sym_len[nsym] = n;
  nsym = nsym + 1;
}

void main() {
  out_len = 0;
  bit_buf = 0;
  bit_cnt = 0;
  prev_dc = 0;
  int by;
  for (by = 0; by < 32; by = by + 1) {
    int bx;
    for (bx = 0; bx < 32; bx = bx + 1) {
      int i;
      for (i = 0; i < 64; i = i + 1) {
        int r = i >> 3;
        int c = i & 7;
        blk[i] = image[(by * 8 + r) * 256 + bx * 8 + c] - 128;
      }
      int r2;
      for (r2 = 0; r2 < 8; r2 = r2 + 1) {
        dct_row(r2);
      }
      int c2;
      for (c2 = 0; c2 < 8; c2 = c2 + 1) {
        dct_col(c2);
      }
      nsym = 0;
      int i2;
      for (i2 = 0; i2 < 64; i2 = i2 + 1) {
        int idx = zigzag[i2];
        int v = coef[idx];
        int q = v < 0
          ? 0 - (((0 - v) * qrecip[idx] + 262144) >> 19)
          : ((v * qrecip[idx] + 262144) >> 19);
        zz[i2] = q;
      }
      int dc = zz[0];
      int diff = dc - prev_dc;
      prev_dc = dc;
      int adiff = abs(diff);
      int cat = 0;
      while (adiff > 0) {
        adiff = adiff >> 1;
        cat = cat + 1;
      }
      int amp = diff < 0 ? diff + mask[cat] : diff;
      append((dc_code[cat] << cat) | (amp & mask[cat]), dc_len[cat] + cat);
      int run = 0;
      int k;
      for (k = 1; k < 64; k = k + 1) {
        int v2 = zz[k];
        if (v2 == 0) {
          run = run + 1;
        } else {
          while (run > 15) {
            append(240, 8);
            run = run - 16;
          }
          int av = abs(v2);
          int cat2 = 0;
          while (av > 0) {
            av = av >> 1;
            cat2 = cat2 + 1;
          }
          int amp2 = v2 < 0 ? v2 + mask[cat2] : v2;
          append((((run << 4) | cat2) << cat2) | (amp2 & mask[cat2]), 8 + cat2);
          run = 0;
        }
      }
      if (run > 0) {
        append(0, 8);
      }
      int t;
      for (t = 0; t < nsym; t = t + 1) {
        int val = sym_val[t];
        int n = sym_len[t];
        int p;
        for (p = n - 1; p >= 0; p = p - 1) {
          int bit = (val >> p) & 1;
          bit_buf = (bit_buf << 1) | bit;
          bit_cnt = bit_cnt + 1;
          if (bit_cnt == 8) {
            out_bytes[out_len] = bit_buf;
            out_len = out_len + 1;
            bit_buf = 0;
            bit_cnt = 0;
          }
        }
      }
    }
  }
  if (bit_cnt > 0) {
    out_bytes[out_len] = bit_buf << (8 - bit_cnt);
    out_len = out_len + 1;
  }
}
|};
    ]

let source = source_with ~qrecip

let source_for ~quality =
  source_with ~qrecip:(qrecip_for (quant_table_for ~quality))

(* Deterministic synthetic image: gradients, sinusoidal texture, noise. *)
let inputs ?(seed = 7) () =
  let state = ref seed in
  let noise () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod 61
  in
  let pixel x y =
    let fx = float_of_int x and fy = float_of_int y in
    let v =
      80.0 +. (56.0 *. sin (fx /. 3.1)) +. (40.0 *. cos (fy /. 2.3))
      +. (24.0 *. sin ((fx +. (2.0 *. fy)) /. 5.7))
      +. (0.15 *. fx) +. (0.1 *. fy)
    in
    let v = int_of_float v + noise () in
    if v < 0 then 0 else if v > 255 then 255 else v
  in
  [
    ( "image",
      Array.init (width * height) (fun i -> pixel (i mod width) (i / width)) );
  ]

type golden_result = { bytes : int array; len : int; dc_values : int array }

(* --- bit-exact golden model -------------------------------------------- *)

let llm_pass ~first d =
  let shift = if first then 11 else 15 in
  let round = 1 lsl (shift - 1) in
  let out = Array.make 8 0 in
  let tmp0 = d.(0) + d.(7) and tmp7 = d.(0) - d.(7) in
  let tmp1 = d.(1) + d.(6) and tmp6 = d.(1) - d.(6) in
  let tmp2 = d.(2) + d.(5) and tmp5 = d.(2) - d.(5) in
  let tmp3 = d.(3) + d.(4) and tmp4 = d.(3) - d.(4) in
  let tmp10 = tmp0 + tmp3 and tmp13 = tmp0 - tmp3 in
  let tmp11 = tmp1 + tmp2 and tmp12 = tmp1 - tmp2 in
  if first then begin
    out.(0) <- (tmp10 + tmp11) lsl 2;
    out.(4) <- (tmp10 - tmp11) lsl 2
  end
  else begin
    out.(0) <- (tmp10 + tmp11 + 2) asr 2;
    out.(4) <- (tmp10 - tmp11 + 2) asr 2
  end;
  let z1 = (tmp12 + tmp13) * 4433 in
  out.(2) <- (z1 + (tmp13 * 6270) + round) asr shift;
  out.(6) <- (z1 - (tmp12 * 15137) + round) asr shift;
  let z1b = tmp4 + tmp7 and z2 = tmp5 + tmp6 in
  let z3 = tmp4 + tmp6 and z4 = tmp5 + tmp7 in
  let z5 = (z3 + z4) * 9633 in
  let t4 = tmp4 * 2446 and t5 = tmp5 * 16819 in
  let t6 = tmp6 * 25172 and t7 = tmp7 * 12299 in
  let z1c = -(z1b * 7373) and z2c = -(z2 * 20995) in
  let z3c = -(z3 * 16069) and z4c = -(z4 * 3196) in
  let z3d = z3c + z5 and z4d = z4c + z5 in
  out.(7) <- (t4 + z1c + z3d + round) asr shift;
  out.(5) <- (t5 + z2c + z4d + round) asr shift;
  out.(3) <- (t6 + z2c + z3d + round) asr shift;
  out.(1) <- (t7 + z1c + z4d + round) asr shift;
  out

let golden_with ~qrecip input_list =
  let image =
    match List.assoc_opt "image" input_list with
    | Some a -> a
    | None -> invalid_arg "Jpeg.golden: missing \"image\" input"
  in
  let out_bytes = Array.make 65536 0 in
  let out_len = ref 0 in
  let bit_buf = ref 0 and bit_cnt = ref 0 in
  let prev_dc = ref 0 in
  let dc_values = Array.make blocks 0 in
  let putbits value n =
    for p = n - 1 downto 0 do
      let bit = (value asr p) land 1 in
      bit_buf := (!bit_buf lsl 1) lor bit;
      incr bit_cnt;
      if !bit_cnt = 8 then begin
        out_bytes.(!out_len) <- !bit_buf;
        incr out_len;
        bit_buf := 0;
        bit_cnt := 0
      end
    done
  in
  let category v =
    let a = ref (abs v) and c = ref 0 in
    while !a > 0 do
      a := !a asr 1;
      incr c
    done;
    !c
  in
  let blk = Array.make 64 0 in
  let tmpq = Array.make 64 0 in
  let coef = Array.make 64 0 in
  let zz_out = Array.make 64 0 in
  for by = 0 to 31 do
    for bx = 0 to 31 do
      for i = 0 to 63 do
        let r = i asr 3 and c = i land 7 in
        blk.(i) <- image.((((by * 8) + r) * 256) + (bx * 8) + c) - 128
      done;
      for r = 0 to 7 do
        let d = Array.init 8 (fun i -> blk.((r * 8) + i)) in
        let out = llm_pass ~first:true d in
        Array.iteri (fun i v -> tmpq.((r * 8) + i) <- v) out
      done;
      for c = 0 to 7 do
        let d = Array.init 8 (fun i -> tmpq.(c + (i * 8))) in
        let out = llm_pass ~first:false d in
        Array.iteri (fun i v -> coef.(c + (i * 8)) <- v) out
      done;
      for i = 0 to 63 do
        let idx = zigzag.(i) in
        let v = coef.(idx) in
        let q =
          if v < 0 then -(((-v * qrecip.(idx)) + 262144) asr 19)
          else ((v * qrecip.(idx)) + 262144) asr 19
        in
        zz_out.(i) <- q
      done;
      let dc = zz_out.(0) in
      dc_values.((by * 32) + bx) <- dc;
      let diff = dc - !prev_dc in
      prev_dc := dc;
      let cat = category diff in
      let amp = if diff < 0 then diff + amp_mask.(cat) else diff in
      putbits
        ((dc_code.(cat) lsl cat) lor (amp land amp_mask.(cat)))
        (dc_len.(cat) + cat);
      let run = ref 0 in
      for k = 1 to 63 do
        let v = zz_out.(k) in
        if v = 0 then incr run
        else begin
          while !run > 15 do
            putbits 240 8;
            run := !run - 16
          done;
          let cat = category v in
          let amp = if v < 0 then v + amp_mask.(cat) else v in
          putbits
            ((((!run lsl 4) lor cat) lsl cat) lor (amp land amp_mask.(cat)))
            (8 + cat);
          run := 0
        end
      done;
      if !run > 0 then putbits 0 8
    done
  done;
  if !bit_cnt > 0 then begin
    out_bytes.(!out_len) <- !bit_buf lsl (8 - !bit_cnt);
    incr out_len
  end;
  { bytes = out_bytes; len = !out_len; dc_values }

let golden input_list = golden_with ~qrecip input_list

let golden_for ~quality input_list =
  golden_with ~qrecip:(qrecip_for (quant_table_for ~quality)) input_list

let prepared_memo = ref None

let prepared () =
  match !prepared_memo with
  | Some p -> p
  | None ->
    let p = Hypar_core.Flow.prepare ~name:"jpeg" ~inputs:(inputs ()) source in
    prepared_memo := Some p;
    p
