(** IMA ADPCM encoder — a fourth workload with a *branchy* kernel.

    Unlike the OFDM/JPEG/Sobel kernels (single self-looping blocks), the
    ADPCM sample loop spans several basic blocks (sign handling, the
    3-step quantisation ladder, predictor clamping), so a partitioning has
    fine/coarse transitions *inside* the loop — the stress case for the
    transition-priced [t_comm] model.  Standard IMA: 89-entry step table,
    8-entry index adaptation, 4-bit codes packed two per byte. *)

val samples : int
(** 4096 input samples. *)

val source : string
val inputs : ?seed:int -> unit -> (string * int array) list

type golden_result = {
  codes : int array;  (** packed bytes, samples/2 long *)
  final_predicted : int;
  final_index : int;
}

val golden : (string * int array) list -> golden_result
val prepared : unit -> Hypar_core.Flow.prepared
val timing_constraint : int

val step_table : int array
(** The standard 89-entry IMA step-size table (for the decoder oracle). *)

val index_table : int array
(** Index adaptation per 3-bit magnitude code. *)
