let samples = 4096
let timing_constraint = 600_000

(* Standard IMA ADPCM step-size table. *)
let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8 |]

let source =
  String.concat "\n"
    [
      Ctable.const_array "steptab" step_table;
      Ctable.const_array "indextab" index_table;
      Ctable.int_array "pcm" samples;
      Ctable.int_array "adpcm" (samples / 2);
      Ctable.int_array "state" 2;
      {|
void main() {
  int predicted = 0;
  int index = 0;
  int n;
  for (n = 0; n < 4096; n++) {
    int sample = pcm[n];
    int diff = sample - predicted;
    int sign = 0;
    if (diff < 0) {
      sign = 8;
      diff = 0 - diff;
    }
    int step = steptab[index];
    int code = 0;
    int vpdiff = step >> 3;
    if (diff >= step) {
      code = 4;
      diff -= step;
      vpdiff += step;
    }
    int half = step >> 1;
    if (diff >= half) {
      code |= 2;
      diff -= half;
      vpdiff += half;
    }
    int quarter = step >> 2;
    if (diff >= quarter) {
      code |= 1;
      vpdiff += quarter;
    }
    if (sign) {
      predicted -= vpdiff;
    } else {
      predicted += vpdiff;
    }
    predicted = min(32767, max(0 - 32768, predicted));
    index += indextab[code];
    index = min(88, max(0, index));
    int nibble = sign | code;
    int pos = n >> 1;
    if (n & 1) {
      adpcm[pos] |= nibble << 4;
    } else {
      adpcm[pos] = nibble;
    }
  }
  state[0] = predicted;
  state[1] = index;
}
|};
    ]

(* A 16-bit test signal: two sines plus pseudo-random noise. *)
let inputs ?(seed = 11) () =
  let state = ref seed in
  let noise () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state mod 1601) - 800
  in
  let sample n =
    let t = float_of_int n in
    let v =
      (9000.0 *. sin (t /. 13.0)) +. (4000.0 *. sin (t /. 89.0))
    in
    let v = int_of_float v + noise () in
    if v > 32767 then 32767 else if v < -32768 then -32768 else v
  in
  [ ("pcm", Array.init samples sample) ]

type golden_result = {
  codes : int array;
  final_predicted : int;
  final_index : int;
}

let golden input_list =
  let pcm =
    match List.assoc_opt "pcm" input_list with
    | Some a -> a
    | None -> invalid_arg "Adpcm.golden: missing \"pcm\" input"
  in
  let adpcm = Array.make (samples / 2) 0 in
  let predicted = ref 0 and index = ref 0 in
  for n = 0 to samples - 1 do
    let sample = pcm.(n) in
    let diff = ref (sample - !predicted) in
    let sign = if !diff < 0 then 8 else 0 in
    if !diff < 0 then diff := - !diff;
    let step = step_table.(!index) in
    let code = ref 0 in
    let vpdiff = ref (step asr 3) in
    if !diff >= step then begin
      code := 4;
      diff := !diff - step;
      vpdiff := !vpdiff + step
    end;
    let half = step asr 1 in
    if !diff >= half then begin
      code := !code lor 2;
      diff := !diff - half;
      vpdiff := !vpdiff + half
    end;
    let quarter = step asr 2 in
    if !diff >= quarter then begin
      code := !code lor 1;
      vpdiff := !vpdiff + quarter
    end;
    if sign <> 0 then predicted := !predicted - !vpdiff
    else predicted := !predicted + !vpdiff;
    predicted := min 32767 (max (-32768) !predicted);
    index := !index + index_table.(!code);
    index := min 88 (max 0 !index);
    let nibble = sign lor !code in
    let pos = n asr 1 in
    if n land 1 <> 0 then adpcm.(pos) <- adpcm.(pos) lor (nibble lsl 4)
    else adpcm.(pos) <- nibble
  done;
  { codes = adpcm; final_predicted = !predicted; final_index = !index }

let prepared_memo = ref None

let prepared () =
  match !prepared_memo with
  | Some p -> p
  | None ->
    let p = Hypar_core.Flow.prepare ~name:"adpcm" ~inputs:(inputs ()) source in
    prepared_memo := Some p;
    p
