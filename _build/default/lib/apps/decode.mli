(** Decode-side oracles for the benchmark applications.

    Each encoder's output is actually decodable: the OFDM receiver
    (CP removal → forward FFT → nearest-constellation demapping) recovers
    the transmitted QAM symbols, the JPEG decoder (entropy decode →
    dequantise → IDCT) reconstructs the image, and the IMA ADPCM decoder
    reconstructs the waveform.  The test suite uses these to check
    bit-error rates, PSNR and SNR — end-to-end evidence that the Mini-C
    applications implement the real pipelines, not stand-ins. *)

val ofdm_demodulate : re:int array -> im:int array -> int array
(** Recovers the per-carrier 4-bit values from the transmitter output
    (length [Ofdm.symbols * 48]). *)

val ofdm_bit_errors : sent:int array -> received:int array -> int
(** Hamming distance over the 4-bit symbol values. *)

type jpeg_image = { pixels : int array; width : int; height : int }

val jpeg_decode : ?quant_table:int array -> bytes_in:int array -> len:int -> unit -> jpeg_image
(** Decodes the encoder's bitstream back to a 256×256 image
    ([quant_table] defaults to the standard table; pass
    {!Jpeg.quant_table_for} for quality-scaled streams).
    Raises [Failure] on a malformed stream. *)

val psnr : int array -> int array -> float
(** Peak signal-to-noise ratio (dB, peak 255) between two images.
    [infinity] for identical inputs. *)

val adpcm_decode : codes:int array -> int array
(** Standard IMA ADPCM decode of the packed nibble stream
    ([Adpcm.samples] outputs). *)

val snr_db : reference:int array -> decoded:int array -> float
(** Signal-to-noise ratio of a reconstruction, in dB. *)
