(* A fourth domain scenario: the IMA ADPCM encoder.  Its sample loop is
   *branchy* — several basic blocks per iteration — so kernels move to the
   coarse grain one block at a time and the communication bill visibly
   drops once adjacent blocks cluster on the same side.

   Run with:  dune exec examples/adpcm_flow.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Adpcm = Hypar_apps.Adpcm

let () =
  let prepared = Adpcm.prepared () in

  let g = Adpcm.golden (Adpcm.inputs ()) in
  let got = Hypar_profiling.Interp.array_exn prepared.Flow.interp "adpcm" in
  Format.printf "golden model check: %s (%d packed bytes, 4 bits/sample)@."
    (if got = g.Adpcm.codes then "bit-exact" else "MISMATCH")
    (Array.length g.Adpcm.codes);

  let r =
    Flow.partition
      (List.hd (Hypar_core.Platform.paper_configs ()))
      ~timing_constraint:Adpcm.timing_constraint prepared
  in
  Format.printf "@.%a@." Engine.pp r;

  (* watch t_comm across the steps: it rises while the loop is split
     between the two fabrics and falls as blocks cluster *)
  Format.printf "@.t_comm per engine step: %s@."
    (String.concat " -> "
       (List.map
          (fun (s : Engine.step) -> string_of_int s.Engine.times.Engine.t_comm)
          r.Engine.steps))
