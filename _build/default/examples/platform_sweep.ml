(* Design-space exploration with the engine: sweep A_FPGA, the CGC count
   and the clock ratio for a matrix-multiplication workload, printing one
   series per axis (the shape behind the paper's §4 observations).

   Run with:  dune exec examples/platform_sweep.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform

let platform ?(area = 1500) ?(cgcs = 2) ?(ratio = 3) () =
  Platform.make ~clock_ratio:ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area ())
    ~cgc:(Hypar_coarsegrain.Cgc.two_by_two cgcs)
    ()

let () =
  let n = 16 in
  let inputs =
    [
      ("a", Array.init (n * n) (fun i -> (i * 7) mod 23));
      ("b", Array.init (n * n) (fun i -> (i * 5) mod 19));
    ]
  in
  let prepared =
    Flow.prepare ~name:"matmul16" ~inputs (Hypar_apps.Synth.matmul_source ~n)
  in
  let initial area =
    (Flow.partition (platform ~area ()) ~timing_constraint:max_int prepared)
      .Engine.initial.Engine.t_total
  in
  let budget = initial 1500 / 2 in
  Printf.printf "matmul %dx%d — timing constraint %d cycles\n\n" n n budget;

  Printf.printf "A_FPGA sweep (two 2x2 CGCs):\n";
  Printf.printf "%8s %14s %14s %10s %8s\n" "A_FPGA" "initial" "final" "reduction"
    "moved";
  List.iter
    (fun area ->
      let r = Flow.partition (platform ~area ()) ~timing_constraint:budget prepared in
      Printf.printf "%8d %14d %14d %9.1f%% %8d\n" area
        r.Engine.initial.Engine.t_total r.Engine.final.Engine.t_total
        (Engine.reduction_percent r)
        (List.length r.Engine.moved))
    [ 500; 1000; 1500; 2500; 5000; 10000 ];

  Printf.printf "\nCGC count sweep (A_FPGA = 1500):\n";
  Printf.printf "%8s %14s %14s %10s\n" "CGCs" "cycles-in-CGC" "final" "reduction";
  List.iter
    (fun cgcs ->
      let r = Flow.partition (platform ~cgcs ()) ~timing_constraint:budget prepared in
      Printf.printf "%8d %14d %14d %9.1f%%\n" cgcs
        (Engine.coarse_cycles_of_moved r)
        r.Engine.final.Engine.t_total
        (Engine.reduction_percent r))
    [ 1; 2; 3; 4 ];

  Printf.printf "\nClock-ratio sweep (A_FPGA = 1500, two 2x2 CGCs):\n";
  Printf.printf "%8s %14s %10s\n" "ratio" "final" "reduction";
  List.iter
    (fun ratio ->
      let r =
        Flow.partition (platform ~ratio ()) ~timing_constraint:budget prepared
      in
      Printf.printf "%8d %14d %9.1f%%\n" ratio r.Engine.final.Engine.t_total
        (Engine.reduction_percent r))
    [ 1; 2; 3; 4; 6 ]
