(* The paper's second case study: the JPEG encoder over a 256x256 image,
   partitioned on the four platform configurations of Table 3 — plus the
   energy-constrained variant (the paper's "future work").

   Run with:  dune exec examples/jpeg_flow.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Jpeg = Hypar_apps.Jpeg

let () =
  let prepared = Jpeg.prepared () in

  (* functional sanity against the golden encoder *)
  let g = Jpeg.golden (Jpeg.inputs ()) in
  let got = Hypar_profiling.Interp.array_exn prepared.Flow.interp "out_bytes" in
  let matches = ref true in
  for i = 0 to g.Jpeg.len - 1 do
    if got.(i) <> g.Jpeg.bytes.(i) then matches := false
  done;
  Format.printf "golden model check: %s (%d bytes, %.2f bits/pixel)@."
    (if !matches then "bit-exact" else "MISMATCH")
    g.Jpeg.len
    (float_of_int (8 * g.Jpeg.len) /. float_of_int (Jpeg.width * Jpeg.height));

  (* Table 1 (JPEG half) *)
  let analysis =
    Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
  in
  print_string
    (Hypar_analysis.Table.render ~top:8
       ~title:"Ordered total weights (JPEG, 256x256 image)" analysis);

  (* Table 3 *)
  let runs =
    List.map
      (fun pl ->
        Flow.partition pl ~timing_constraint:Jpeg.timing_constraint prepared)
      (Hypar_core.Platform.paper_configs ())
  in
  print_newline ();
  print_string
    (Hypar_core.Result_table.render ~title:"JPEG partitioning (Table 3)" runs);

  (* extension: partition for an energy budget instead of a deadline *)
  print_newline ();
  let platform = List.hd (Hypar_core.Platform.paper_configs ()) in
  let baseline =
    Hypar_core.Energy.partition Hypar_core.Energy.default platform
      ~energy_budget:0 prepared.Flow.cdfg prepared.Flow.profile
  in
  let budget = baseline.Hypar_core.Energy.initial_energy / 2 in
  let e =
    Hypar_core.Energy.partition Hypar_core.Energy.default platform
      ~energy_budget:budget prepared.Flow.cdfg prepared.Flow.profile
  in
  Format.printf "%a@." Hypar_core.Energy.pp e
