examples/sobel_flow.ml: Array Format Hypar_analysis Hypar_apps Hypar_core Hypar_profiling List
