examples/ofdm_flow.ml: Format Hypar_analysis Hypar_apps Hypar_core Hypar_profiling List
