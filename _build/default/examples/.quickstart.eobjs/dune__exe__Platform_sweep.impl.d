examples/platform_sweep.ml: Array Hypar_apps Hypar_coarsegrain Hypar_core Hypar_finegrain List Printf
