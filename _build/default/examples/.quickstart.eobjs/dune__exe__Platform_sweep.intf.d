examples/platform_sweep.mli:
