examples/adpcm_flow.ml: Array Format Hypar_apps Hypar_core Hypar_profiling List String
