examples/adpcm_flow.mli:
