examples/quickstart.mli:
