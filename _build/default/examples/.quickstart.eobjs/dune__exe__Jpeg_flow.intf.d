examples/jpeg_flow.mli:
