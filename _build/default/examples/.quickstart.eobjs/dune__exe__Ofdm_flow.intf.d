examples/ofdm_flow.mli:
