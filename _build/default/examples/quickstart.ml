(* Quickstart: partition a small Mini-C kernel between the fine-grain
   (FPGA) and coarse-grain (CGC) blocks of a hybrid platform.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
int x[256];
int h[16];
int y[256];

void main() {
  int i;
  for (i = 0; i < 240; i = i + 1) {
    int s = 0;
    int t;
    for (t = 0; t < 16; t = t + 1) {
      s = s + x[i + t] * h[t];
    }
    y[i] = s >> 8;
  }
}
|}

let () =
  (* 1. Compile (lex/parse/typecheck/inline/lower + clean-up passes) and
        profile the program on representative inputs. *)
  let inputs =
    [
      ("x", Array.init 256 (fun i -> (i * 37) mod 256));
      ("h", Array.init 16 (fun i -> 16 - i));
    ]
  in
  let prepared = Hypar_core.Flow.prepare ~name:"fir" ~inputs source in

  Format.printf "== Profile ==@.%a@." Hypar_profiling.Profile.pp
    prepared.Hypar_core.Flow.profile;

  (* 2. The analysis step: Eq. 1 kernels, heaviest first (paper Table 1). *)
  let analysis =
    Hypar_analysis.Kernel.analyse prepared.Hypar_core.Flow.cdfg
      prepared.Hypar_core.Flow.profile
  in
  print_string (Hypar_analysis.Table.render ~top:4 ~title:"== Kernels ==" analysis);

  (* 3. Describe the platform: A_FPGA = 1500 units, two 2x2 CGCs,
        T_FPGA = 3 T_CGC — the paper's first configuration. *)
  let platform =
    Hypar_core.Platform.make
      ~fpga:(Hypar_finegrain.Fpga.make ~area:1500 ())
      ~cgc:(Hypar_coarsegrain.Cgc.two_by_two 2)
      ()
  in

  (* 4. Run the partitioning engine against a timing constraint. *)
  let all_fine =
    (Hypar_core.Flow.partition platform ~timing_constraint:max_int prepared)
      .Hypar_core.Engine.initial
  in
  let timing_constraint = all_fine.Hypar_core.Engine.t_total / 2 in
  let result = Hypar_core.Flow.partition platform ~timing_constraint prepared in
  Format.printf "@.== Partitioning ==@.%a@." Hypar_core.Engine.pp result
