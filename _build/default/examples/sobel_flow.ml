(* A third domain scenario beyond the paper's two case studies: a Sobel
   edge detector over a 128x128 image — single hot kernel, heavy memory
   traffic — partitioned on the paper's platforms.

   Run with:  dune exec examples/sobel_flow.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Sobel = Hypar_apps.Sobel

let () =
  let prepared = Sobel.prepared () in

  let golden = Sobel.golden (Sobel.inputs ()) in
  let got = Hypar_profiling.Interp.array_exn prepared.Flow.interp "edges" in
  let edge_pixels = Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 golden in
  Format.printf "golden model check: %s (%d edge pixels)@."
    (if golden = got then "bit-exact" else "MISMATCH")
    edge_pixels;

  let analysis =
    Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
  in
  print_string
    (Hypar_analysis.Table.render ~top:4 ~title:"Sobel kernels" analysis);

  let runs =
    List.map
      (fun pl ->
        Flow.partition pl ~timing_constraint:Sobel.timing_constraint prepared)
      (Hypar_core.Platform.paper_configs ())
  in
  print_newline ();
  print_string (Hypar_core.Result_table.render ~title:"Sobel partitioning" runs)
