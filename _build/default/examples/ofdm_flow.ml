(* The paper's first case study, end to end: the IEEE 802.11a OFDM
   transmitter front-end (QAM -> 64-point IFFT -> cyclic prefix) over 6
   payload symbols, partitioned on the four platform configurations of
   Table 2 — plus the frame-pipelining extension (the paper's "ongoing
   work").

   Run with:  dune exec examples/ofdm_flow.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Ofdm = Hypar_apps.Ofdm

let () =
  let prepared = Ofdm.prepared () in

  (* functional sanity: the interpreted Mini-C matches the golden model *)
  let golden_re, golden_im = Ofdm.golden (Ofdm.inputs ()) in
  let got_re = Hypar_profiling.Interp.array_exn prepared.Flow.interp "out_re" in
  let got_im = Hypar_profiling.Interp.array_exn prepared.Flow.interp "out_im" in
  Format.printf "golden model check: %s@."
    (if golden_re = got_re && golden_im = got_im then "bit-exact" else "MISMATCH");

  (* Table 1 (OFDM half): the ordered kernel weights *)
  let analysis =
    Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
  in
  print_string
    (Hypar_analysis.Table.render ~top:8
       ~title:"Ordered total weights (OFDM, 6 payload symbols)" analysis);

  (* Table 2: the four platform configurations *)
  let runs =
    List.map
      (fun pl ->
        Flow.partition pl ~timing_constraint:Ofdm.timing_constraint prepared)
      (Hypar_core.Platform.paper_configs ())
  in
  print_newline ();
  print_string
    (Hypar_core.Result_table.render ~title:"OFDM partitioning (Table 2)" runs);

  (* extension: pipeline the fine and coarse parts across the 6 symbols *)
  print_newline ();
  List.iter
    (fun (r : Engine.t) ->
      let p = Hypar_core.Pipeline.analyse ~frames:Ofdm.symbols r in
      Format.printf "%-28s %a@." r.Engine.platform.Hypar_core.Platform.name
        Hypar_core.Pipeline.pp p)
    runs
