(* Unit tests for the frame-pipelining extension (the paper's ongoing
   work). *)

module Engine = Hypar_core.Engine
module Pipeline = Hypar_core.Pipeline
module Platform = Hypar_core.Platform
module Flow = Hypar_core.Flow
module Fpga = Hypar_finegrain.Fpga
module Cgc = Hypar_coarsegrain.Cgc

let platform () =
  Platform.make ~fpga:(Fpga.make ~area:1500 ()) ~cgc:(Cgc.two_by_two 2) ()

let result =
  lazy
    (Flow.partition (platform ())
       ~timing_constraint:Hypar_apps.Ofdm.timing_constraint
       (Hypar_apps.Ofdm.prepared ()))

let test_speedup_bounds () =
  let r = Lazy.force result in
  let p = Pipeline.analyse ~frames:Hypar_apps.Ofdm.symbols r in
  Alcotest.(check bool) "speedup at least 1" true (p.Pipeline.speedup >= 1.0);
  Alcotest.(check bool) "speedup at most 2 (two-stage pipeline)" true
    (p.Pipeline.speedup <= 2.0 +. 1e-9);
  Alcotest.(check bool) "pipelined never slower" true
    (p.Pipeline.pipelined_total <= float_of_int p.Pipeline.sequential_total +. 1e-6)

let test_single_frame_no_gain () =
  let r = Lazy.force result in
  let p = Pipeline.analyse ~frames:1 r in
  Alcotest.(check (float 1e-6)) "one frame = sequential"
    (float_of_int p.Pipeline.sequential_total)
    p.Pipeline.pipelined_total

let test_stage_accounting () =
  let r = Lazy.force result in
  let p = Pipeline.analyse ~frames:6 r in
  let total_stages =
    (p.Pipeline.fine_per_frame +. p.Pipeline.coarse_comm_per_frame) *. 6.0
  in
  Alcotest.(check (float 0.5)) "stages cover the sequential time"
    (float_of_int p.Pipeline.sequential_total)
    total_stages

let test_balanced_pipeline_approaches_2x () =
  (* a fabricated perfectly balanced result *)
  let r = Lazy.force result in
  let balanced =
    {
      r with
      Engine.final =
        {
          Engine.t_fpga = 50_000;
          t_coarse_cgc = 120_000;
          t_coarse = 40_000;
          t_comm = 10_000;
          t_total = 100_000;
        };
    }
  in
  let p = Pipeline.analyse ~frames:1000 balanced in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.3f close to 2" p.Pipeline.speedup)
    true
    (p.Pipeline.speedup > 1.9)

let test_invalid_frames () =
  match Pipeline.analyse ~frames:0 (Lazy.force result) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "frames=0 must be rejected"

let test_bottleneck_identification () =
  let r = Lazy.force result in
  let p = Pipeline.analyse ~frames:6 r in
  let expected =
    if p.Pipeline.fine_per_frame >= p.Pipeline.coarse_comm_per_frame then `Fine
    else `Coarse
  in
  Alcotest.(check bool) "bottleneck matches stage times" true
    (p.Pipeline.bottleneck = expected)

let suite =
  [
    Alcotest.test_case "speedup bounds" `Quick test_speedup_bounds;
    Alcotest.test_case "single frame" `Quick test_single_frame_no_gain;
    Alcotest.test_case "stage accounting" `Quick test_stage_accounting;
    Alcotest.test_case "balanced pipeline" `Quick test_balanced_pipeline_approaches_2x;
    Alcotest.test_case "invalid frames" `Quick test_invalid_frames;
    Alcotest.test_case "bottleneck" `Quick test_bottleneck_identification;
  ]
