test/test_coarse_map.ml: Alcotest Array Hypar_apps Hypar_coarsegrain Hypar_ir Hypar_minic Hypar_profiling List Printf
