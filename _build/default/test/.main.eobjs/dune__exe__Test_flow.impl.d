test/test_flow.ml: Alcotest Array Hypar_core Hypar_ir Hypar_profiling List Str_contains
