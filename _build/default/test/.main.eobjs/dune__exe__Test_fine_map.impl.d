test/test_fine_map.ml: Alcotest Array Hypar_finegrain Hypar_ir Hypar_minic Hypar_profiling List
