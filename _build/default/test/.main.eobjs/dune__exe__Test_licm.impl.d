test/test_licm.ml: Alcotest Array Hypar_apps Hypar_ir Hypar_minic Hypar_profiling Printf
