test/test_loop.ml: Alcotest Array Hypar_ir Hypar_minic List
