test/test_engine.ml: Alcotest Hypar_analysis Hypar_apps Hypar_coarsegrain Hypar_core Hypar_finegrain Hypar_ir Lazy List Printf Str_contains
