test/test_energy.ml: Alcotest Array Hypar_coarsegrain Hypar_core Hypar_finegrain Hypar_ir Hypar_profiling Lazy List Printf
