test/test_temporal.ml: Alcotest Array Hypar_apps Hypar_finegrain Hypar_ir List Printf
