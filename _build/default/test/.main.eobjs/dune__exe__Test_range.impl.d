test/test_range.ml: Alcotest Hypar_analysis Hypar_apps Hypar_core Hypar_ir Hypar_minic List Printf String
