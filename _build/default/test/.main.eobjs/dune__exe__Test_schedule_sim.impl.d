test/test_schedule_sim.ml: Alcotest Array Fun Hashtbl Hypar_apps Hypar_coarsegrain Hypar_core Hypar_ir List Printf
