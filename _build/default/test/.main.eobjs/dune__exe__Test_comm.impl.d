test/test_comm.ml: Alcotest Hypar_core Hypar_ir Hypar_minic Hypar_profiling List Printf
