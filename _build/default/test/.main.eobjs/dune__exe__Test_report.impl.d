test/test_report.ml: Alcotest Hypar_coarsegrain Hypar_core Hypar_ir Lazy List Printf Str_contains String
