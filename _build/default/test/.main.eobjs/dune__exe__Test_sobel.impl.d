test/test_sobel.ml: Alcotest Array Hypar_apps Hypar_core Hypar_ir Hypar_profiling List
