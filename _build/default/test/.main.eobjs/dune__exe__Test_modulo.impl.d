test/test_modulo.ml: Alcotest Hypar_coarsegrain Hypar_core Hypar_ir Lazy List Printf
