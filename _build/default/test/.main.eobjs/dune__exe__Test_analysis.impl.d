test/test_analysis.ml: Alcotest Hypar_analysis Hypar_ir Hypar_minic Hypar_profiling List Printf Str_contains String
