test/test_passes.ml: Alcotest Array Hypar_apps Hypar_ir Hypar_minic Hypar_profiling List Printf
