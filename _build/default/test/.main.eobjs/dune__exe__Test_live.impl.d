test/test_live.ml: Alcotest Array Hypar_ir Hypar_minic List String
