test/test_bitstream.ml: Alcotest Array Hypar_apps Hypar_core Hypar_finegrain Hypar_ir List
