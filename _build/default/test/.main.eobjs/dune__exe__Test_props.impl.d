test/test_props.ml: Array Fun Hypar_apps Hypar_coarsegrain Hypar_core Hypar_finegrain Hypar_ir Hypar_minic Hypar_profiling List Printf QCheck QCheck_alcotest String
