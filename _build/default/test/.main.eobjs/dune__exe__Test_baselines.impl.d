test/test_baselines.ml: Alcotest Buffer Hypar_apps Hypar_core Hypar_finegrain Hypar_ir Lazy List Printf
