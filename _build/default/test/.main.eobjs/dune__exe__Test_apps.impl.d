test/test_apps.ml: Alcotest Array Hypar_analysis Hypar_apps Hypar_core Hypar_ir Hypar_minic Hypar_profiling List Printf
