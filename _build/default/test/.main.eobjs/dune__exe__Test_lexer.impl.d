test/test_lexer.ml: Alcotest Fmt Hypar_minic List
