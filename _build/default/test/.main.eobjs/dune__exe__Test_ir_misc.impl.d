test/test_ir_misc.ml: Alcotest Format Hypar_ir Hypar_minic List Str_contains
