test/test_platform.ml: Alcotest Hypar_coarsegrain Hypar_core Hypar_finegrain List Str_contains
