test/test_binding.ml: Alcotest Hashtbl Hypar_apps Hypar_coarsegrain Hypar_ir List
