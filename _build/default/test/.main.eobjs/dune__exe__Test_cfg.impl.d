test/test_cfg.ml: Alcotest Array Hypar_ir Int List Option
