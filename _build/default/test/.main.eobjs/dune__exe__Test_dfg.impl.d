test/test_dfg.ml: Alcotest Array Hypar_apps Hypar_ir List
