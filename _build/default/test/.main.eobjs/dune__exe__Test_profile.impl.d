test/test_profile.ml: Alcotest Array Hypar_apps Hypar_core Hypar_ir Hypar_minic Hypar_profiling List Printf
