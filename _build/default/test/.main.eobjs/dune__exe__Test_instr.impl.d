test/test_instr.ml: Alcotest Hypar_ir List
