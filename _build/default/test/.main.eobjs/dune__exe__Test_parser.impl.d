test/test_parser.ml: Alcotest Format Hypar_minic List Printf String
