test/test_inline.ml: Alcotest Array Hypar_minic Hypar_profiling List
