test/test_cfg_simplify.ml: Alcotest Array Hypar_apps Hypar_ir Hypar_minic Hypar_profiling List Printf
