test/test_types.ml: Alcotest Hypar_ir List
