test/test_typecheck.ml: Alcotest Hypar_minic Str_contains String
