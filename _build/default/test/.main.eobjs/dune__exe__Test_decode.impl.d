test/test_decode.ml: Alcotest Array Hypar_apps Hypar_core Hypar_minic Hypar_profiling List Printf
