test/test_pipeline.ml: Alcotest Hypar_apps Hypar_coarsegrain Hypar_core Hypar_finegrain Lazy Printf
