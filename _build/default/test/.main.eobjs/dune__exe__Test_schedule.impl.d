test/test_schedule.ml: Alcotest Array Hypar_apps Hypar_coarsegrain Hypar_ir List Printf QCheck
