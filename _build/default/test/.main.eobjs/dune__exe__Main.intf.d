test/main.mli:
