test/test_reconfig.ml: Alcotest Hypar_finegrain Hypar_ir Printf
