test/test_lower.ml: Alcotest Array Hypar_apps Hypar_ir Hypar_minic Hypar_profiling List
