test/test_context.ml: Alcotest Array Hypar_apps Hypar_coarsegrain Hypar_core Hypar_ir List
