test/test_interp.ml: Alcotest Array Hypar_apps Hypar_core Hypar_ir Hypar_minic Hypar_profiling List Str_contains
