test/test_fuzz.ml: Alcotest Bytes Hypar_minic List Printexc Printf String
