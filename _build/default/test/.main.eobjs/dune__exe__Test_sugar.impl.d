test/test_sugar.ml: Alcotest Array Hypar_minic Hypar_profiling
