(* End-to-end tests of the Sobel edge-detector workload. *)

module Ir = Hypar_ir
module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Interp = Hypar_profiling.Interp
module Sobel = Hypar_apps.Sobel

let test_golden () =
  let prepared = Sobel.prepared () in
  let golden = Sobel.golden (Sobel.inputs ()) in
  let got = Interp.array_exn prepared.Flow.interp "edges" in
  Alcotest.(check bool) "bit-exact" true (golden = got)

let test_borders_are_zero () =
  let golden = Sobel.golden (Sobel.inputs ()) in
  for x = 0 to Sobel.width - 1 do
    if golden.(x) <> 0 then Alcotest.fail "top border not zero";
    if golden.(((Sobel.height - 1) * Sobel.width) + x) <> 0 then
      Alcotest.fail "bottom border not zero"
  done;
  for y = 0 to Sobel.height - 1 do
    if golden.(y * Sobel.width) <> 0 then Alcotest.fail "left border not zero";
    if golden.((y * Sobel.width) + Sobel.width - 1) <> 0 then
      Alcotest.fail "right border not zero"
  done

let test_flat_image_no_edges () =
  let flat = [ ("image", Array.make (Sobel.width * Sobel.height) 77) ] in
  let golden = Sobel.golden flat in
  Alcotest.(check int) "no edges in a flat image" 0
    (Array.fold_left ( + ) 0 golden)

let test_step_edge_detected () =
  (* a vertical step between two brightness plateaus must fire *)
  let img =
    Array.init (Sobel.width * Sobel.height) (fun i ->
        if i mod Sobel.width < 64 then 0 else 255)
  in
  let golden = Sobel.golden [ ("image", img) ] in
  (* pixel just left of the step, middle row *)
  let p = (64 * Sobel.width) + 63 in
  Alcotest.(check int) "edge fires at the step" 255 golden.(p);
  Alcotest.(check int) "plateau stays dark" 0 golden.(p - 30)

let test_binary_output () =
  let golden = Sobel.golden (Sobel.inputs ()) in
  Array.iter
    (fun v -> if v <> 0 && v <> 255 then Alcotest.fail "non-binary edge value")
    golden

let test_kernel_frequency () =
  let prepared = Sobel.prepared () in
  let freqs =
    Array.map
      (fun (b : Hypar_profiling.Profile.block_stats) -> b.freq)
      prepared.Flow.profile.Hypar_profiling.Profile.blocks
  in
  Alcotest.(check bool) "inner body runs 126*126 times" true
    (Array.exists (fun f -> f = 126 * 126) freqs)

let test_partitioning () =
  let prepared = Sobel.prepared () in
  let r =
    Flow.partition
      (List.hd (Hypar_core.Platform.paper_configs ()))
      ~timing_constraint:Sobel.timing_constraint prepared
  in
  Alcotest.(check bool) "needs partitioning" true
    (r.Engine.initial.Engine.t_total > Sobel.timing_constraint);
  Alcotest.(check bool) "met by moving the single kernel" true (Engine.met r);
  Alcotest.(check int) "one move suffices" 1 (List.length r.Engine.moved)

let suite =
  [
    Alcotest.test_case "golden model" `Quick test_golden;
    Alcotest.test_case "borders zero" `Quick test_borders_are_zero;
    Alcotest.test_case "flat image" `Quick test_flat_image_no_edges;
    Alcotest.test_case "step edge" `Quick test_step_edge_detected;
    Alcotest.test_case "binary output" `Quick test_binary_output;
    Alcotest.test_case "kernel frequency" `Quick test_kernel_frequency;
    Alcotest.test_case "partitioning" `Quick test_partitioning;
  ]
