(* Unit tests for AST -> CDFG lowering: control-flow shapes (rotated
   loops), operator semantics through the interpreter, and global
   handling. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile = Driver.compile_exn

let run_out0 ?(inputs = []) src =
  (Interp.array_exn (Interp.run ~inputs (compile src)) "out").(0)

let test_rotated_for_shape () =
  let cdfg =
    compile {|
int out[4];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    s = s + i;
  }
  out[0] = s;
}
|}
  in
  (* rotation: entry (with guard), body (self-looping), exit — 3 blocks *)
  Alcotest.(check int) "three blocks" 3 (Ir.Cdfg.block_count cdfg);
  let cfg = Ir.Cdfg.cfg cdfg in
  let body = Ir.Cfg.id_of_label cfg (Ir.Cfg.block cfg 1).Ir.Block.label in
  Alcotest.(check bool) "body loops to itself" true
    (List.mem body (Ir.Cfg.successors cfg body))

let test_zero_trip_loop () =
  let v = run_out0 {|
int out[4];
void main() {
  int s = 5;
  int i;
  for (i = 0; i < 0; i = i + 1) {
    s = 999;
  }
  out[0] = s;
}
|} in
  Alcotest.(check int) "guard skips body entirely" 5 v

let test_do_while () =
  let v = run_out0 {|
int out[4];
void main() {
  int s = 0;
  int i = 10;
  do {
    s = s + 1;
  } while (i < 5);
  out[0] = s;
}
|} in
  Alcotest.(check int) "do-while executes at least once" 1 v

let test_operator_semantics () =
  let check src expected =
    Alcotest.(check int) src expected (run_out0 src)
  in
  check "int out[4]; void main() { out[0] = 7 % 3; }" 1;
  check "int out[4]; void main() { out[0] = 7 / 2; }" 3;
  check "int out[4]; void main() { out[0] = (0 - 13) >> 2; }" (-4);
  check "int out[4]; void main() { out[0] = 1 << 10; }" 1024;
  check "int out[4]; void main() { out[0] = 5 & 3; }" 1;
  check "int out[4]; void main() { out[0] = 5 | 3; }" 7;
  check "int out[4]; void main() { out[0] = 5 ^ 3; }" 6;
  check "int out[4]; void main() { out[0] = ~0; }" (-1);
  check "int out[4]; void main() { out[0] = !5; }" 0;
  check "int out[4]; void main() { out[0] = !0; }" 1;
  check "int out[4]; void main() { out[0] = 3 && 0; }" 0;
  check "int out[4]; void main() { out[0] = 3 && 2; }" 1;
  check "int out[4]; void main() { out[0] = 0 || 7; }" 1;
  check "int out[4]; void main() { out[0] = min(3, 9); }" 3;
  check "int out[4]; void main() { out[0] = max(3, 9); }" 9;
  check "int out[4]; void main() { out[0] = abs(0 - 9); }" 9;
  check "int out[4]; void main() { out[0] = 1 ? 11 : 22; }" 11;
  check "int out[4]; void main() { out[0] = 0 ? 11 : 22; }" 22

let test_comparison_chain () =
  let v = run_out0 {|
int out[4];
void main() {
  int a = 3;
  int b = 5;
  out[0] = (a < b) + (a <= 3) + (b > 4) + (b >= 6) + (a == 3) + (a != 3);
}
|} in
  Alcotest.(check int) "comparison results are 0/1" 4 v

let test_global_scalars_initialised () =
  let v = run_out0 {|
int out[4];
int g = 40;
int h;
void main() { out[0] = g + h + 2; }
|} in
  Alcotest.(check int) "g=40, h defaults to 0" 42 v

let test_const_rom () =
  let cdfg = compile {|
const int rom[4] = { 10, 20, 30 };
int out[4];
void main() { out[0] = rom[1] + rom[3]; }
|} in
  (match Ir.Cdfg.array_decl cdfg "rom" with
  | Some d ->
    Alcotest.(check bool) "is const" true d.Ir.Cdfg.is_const;
    (match d.Ir.Cdfg.init with
    | Some init -> Alcotest.(check int) "padded with zeros" 0 init.(3)
    | None -> Alcotest.fail "missing init")
  | None -> Alcotest.fail "rom not declared");
  let r = Interp.run cdfg in
  Alcotest.(check int) "rom read" 20 (Interp.array_exn r "out").(0)

let test_if_without_else () =
  let v = run_out0 {|
int out[4];
void main() {
  int x = 1;
  if (x > 0) { x = x + 10; }
  if (x < 0) { x = 999; }
  out[0] = x;
}
|} in
  Alcotest.(check int) "if-only joins correctly" 11 v

let test_nested_control () =
  let v = run_out0 {|
int out[4];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) {
    if (i & 1) {
      int j;
      for (j = 0; j < i; j = j + 1) { s = s + 1; }
    } else {
      s = s + 10;
    }
  }
  out[0] = s;
}
|} in
  (* i=0: +10, i=1: +1, i=2: +10, i=3: +3 *)
  Alcotest.(check int) "nested loops and branches" 24 v

let test_validate_passes () =
  let cdfg = compile Hypar_apps.Ofdm.source in
  (match Ir.Cdfg.validate cdfg with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ofdm failed validation: %s" msg);
  Alcotest.(check bool) "all DFGs well-formed" true
    (Array.for_all
       (fun (bi : Ir.Cdfg.block_info) -> Ir.Dfg.is_well_formed bi.dfg)
       (Ir.Cdfg.infos cdfg))

let suite =
  [
    Alcotest.test_case "rotated for shape" `Quick test_rotated_for_shape;
    Alcotest.test_case "zero-trip loop" `Quick test_zero_trip_loop;
    Alcotest.test_case "do-while" `Quick test_do_while;
    Alcotest.test_case "operator semantics" `Quick test_operator_semantics;
    Alcotest.test_case "comparison chain" `Quick test_comparison_chain;
    Alcotest.test_case "global scalars" `Quick test_global_scalars_initialised;
    Alcotest.test_case "const ROM arrays" `Quick test_const_rom;
    Alcotest.test_case "if without else" `Quick test_if_without_else;
    Alcotest.test_case "nested control" `Quick test_nested_control;
    Alcotest.test_case "validation of OFDM" `Quick test_validate_passes;
  ]
