(* Unit tests for Hypar_ir.Instr: def/use sets, classification, printing. *)

module Ir = Hypar_ir

let v name id = { Ir.Instr.vname = name; vid = id; vwidth = 16 }

let test_def () =
  let x = v "x" 0 and a = v "a" 1 in
  let bin = Ir.Instr.Bin { dst = x; op = Ir.Types.Add; a = Var a; b = Imm 1 } in
  (match Ir.Instr.def bin with
  | Some d -> Alcotest.(check int) "bin defines dst" 0 d.Ir.Instr.vid
  | None -> Alcotest.fail "bin must define");
  let st = Ir.Instr.Store { arr = "m"; index = Imm 0; value = Var a } in
  Alcotest.(check bool) "store defines nothing" true (Ir.Instr.def st = None)

let test_uses () =
  let x = v "x" 0 and a = v "a" 1 and b = v "b" 2 in
  let sel =
    Ir.Instr.Select { dst = x; cond = Var a; if_true = Var b; if_false = Imm 3 }
  in
  Alcotest.(check int) "select uses 3 operands" 3 (List.length (Ir.Instr.uses sel));
  Alcotest.(check int) "select uses 2 vars" 2 (List.length (Ir.Instr.used_vars sel));
  let ld = Ir.Instr.Load { dst = x; arr = "m"; index = Var a } in
  Alcotest.(check int) "load uses index" 1 (List.length (Ir.Instr.used_vars ld))

let test_classification () =
  let x = v "x" 0 in
  let checks =
    [
      (Ir.Instr.Bin { dst = x; op = Ir.Types.Add; a = Imm 1; b = Imm 2 }, Ir.Types.Class_alu);
      (Ir.Instr.Un { dst = x; op = Ir.Types.Abs; a = Imm 1 }, Ir.Types.Class_alu);
      (Ir.Instr.Mul { dst = x; a = Imm 1; b = Imm 2 }, Ir.Types.Class_mul);
      (Ir.Instr.Div { dst = x; a = Imm 1; b = Imm 2 }, Ir.Types.Class_div);
      (Ir.Instr.Rem { dst = x; a = Imm 1; b = Imm 2 }, Ir.Types.Class_div);
      (Ir.Instr.Mov { dst = x; src = Imm 1 }, Ir.Types.Class_move);
      (Ir.Instr.Load { dst = x; arr = "m"; index = Imm 0 }, Ir.Types.Class_mem);
      (Ir.Instr.Store { arr = "m"; index = Imm 0; value = Imm 1 }, Ir.Types.Class_mem);
    ]
  in
  List.iter
    (fun (instr, expected) ->
      Alcotest.(check string)
        (Ir.Instr.mnemonic instr)
        (Ir.Types.string_of_op_class expected)
        (Ir.Types.string_of_op_class (Ir.Instr.op_class instr)))
    checks

let test_arrays_and_predicates () =
  let x = v "x" 0 in
  let ld = Ir.Instr.Load { dst = x; arr = "mem"; index = Imm 0 } in
  let st = Ir.Instr.Store { arr = "mem"; index = Imm 0; value = Imm 1 } in
  let mv = Ir.Instr.Mov { dst = x; src = Imm 1 } in
  Alcotest.(check (option string)) "load array" (Some "mem") (Ir.Instr.accessed_array ld);
  Alcotest.(check (option string)) "mov array" None (Ir.Instr.accessed_array mv);
  Alcotest.(check bool) "is_load" true (Ir.Instr.is_load ld);
  Alcotest.(check bool) "is_store" true (Ir.Instr.is_store st);
  Alcotest.(check bool) "load is not store" false (Ir.Instr.is_store ld)

let test_pp () =
  let x = v "x" 0 and a = v "a" 1 in
  let bin = Ir.Instr.Bin { dst = x; op = Ir.Types.Add; a = Var a; b = Imm 1 } in
  Alcotest.(check string) "pp bin" "x#0 = add a#1, 1" (Ir.Instr.to_string bin);
  let st = Ir.Instr.Store { arr = "m"; index = Imm 2; value = Var a } in
  Alcotest.(check string) "pp store" "m[2] = a#1" (Ir.Instr.to_string st)

let suite =
  [
    Alcotest.test_case "def" `Quick test_def;
    Alcotest.test_case "uses" `Quick test_uses;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "arrays and predicates" `Quick test_arrays_and_predicates;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
