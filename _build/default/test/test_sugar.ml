(* Unit tests for Mini-C syntactic sugar: compound assignments and
   increment/decrement statements. *)

module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let out cdfg = Interp.array_exn (Interp.run cdfg) "out"

let run src = (out (Driver.compile_exn src)).(0)

let test_compound_scalar () =
  let v = run {|
int out[1];
void main() {
  int x = 10;
  x += 5;
  x -= 3;
  x *= 4;
  x <<= 1;
  x >>= 2;
  x &= 31;
  x |= 64;
  x ^= 1;
  out[0] = x;
}
|} in
  (* 10+5-3=12 *4=48 <<1=96 >>2=24 &31=24 |64=88 ^1=89 *)
  Alcotest.(check int) "compound chain" 89 v

let test_increment_decrement () =
  let v = run {|
int out[1];
void main() {
  int x = 5;
  x++;
  x++;
  x--;
  out[0] = x;
}
|} in
  Alcotest.(check int) "x = 6" 6 v

let test_for_with_increment () =
  let v = run {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i++) {
    s += i;
  }
  out[0] = s;
}
|} in
  Alcotest.(check int) "sum 0..9" 45 v

let test_array_compound () =
  let cdfg = Driver.compile_exn {|
int out[4];
void main() {
  out[0] = 10;
  out[0] += 32;
  out[1] = 8;
  out[1] *= 3;
  out[2] = 5;
  out[2]++;
  out[3] = 5;
  out[3]--;
}
|} in
  let o = out cdfg in
  Alcotest.(check int) "+=" 42 o.(0);
  Alcotest.(check int) "*=" 24 o.(1);
  Alcotest.(check int) "++" 6 o.(2);
  Alcotest.(check int) "--" 4 o.(3)

let test_array_compound_with_computed_index () =
  let v = run {|
int out[1];
int t[8];
void main() {
  int i = 3;
  t[i + 1] = 7;
  t[i + 1] += t[i + 1];
  out[0] = t[4];
}
|} in
  Alcotest.(check int) "index evaluated consistently" 14 v

let test_shr_assign_is_arithmetic () =
  let v = run {|
int out[1];
void main() {
  int x = 0 - 16;
  x >>= 2;
  out[0] = x;
}
|} in
  Alcotest.(check int) "arithmetic shift on negatives" (-4) v

let test_lexer_disambiguation () =
  (* 'a+++b' lexes as 'a ++ + b' in C; our statement grammar only allows
     ++ as a statement, so 'a + ++b' style input must fail cleanly *)
  let v = run {|
int out[1];
void main() {
  int a = 1;
  int b = 2;
  out[0] = a + + b;
}
|} in
  Alcotest.(check int) "unary plus still works" 3 v

let suite =
  [
    Alcotest.test_case "compound scalar" `Quick test_compound_scalar;
    Alcotest.test_case "increment/decrement" `Quick test_increment_decrement;
    Alcotest.test_case "for with i++" `Quick test_for_with_increment;
    Alcotest.test_case "array compound" `Quick test_array_compound;
    Alcotest.test_case "computed index" `Quick test_array_compound_with_computed_index;
    Alcotest.test_case ">>= is arithmetic" `Quick test_shr_assign_is_arithmetic;
    Alcotest.test_case "lexer disambiguation" `Quick test_lexer_disambiguation;
  ]
