(* Unit tests for CGC context-word generation. *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Schedule = Hypar_coarsegrain.Schedule
module Binding = Hypar_coarsegrain.Binding
module Context = Hypar_coarsegrain.Context
module Coarse_map = Hypar_coarsegrain.Coarse_map

let cgc2 = Cgc.two_by_two 2

let map dfg =
  match Coarse_map.map_dfg cgc2 dfg with
  | Some m -> m
  | None -> Alcotest.fail "expected mapping"

let mac_dfg () =
  Ir.Builder.dfg_of (fun b ->
      let a = Ir.Builder.fresh_var b "a" in
      let c = Ir.Builder.fresh_var b "c" in
      let t = Ir.Builder.mul b "t" (Ir.Builder.var a) (Ir.Builder.var a) in
      ignore (Ir.Builder.bin b Ir.Types.Add "u" (Ir.Builder.var t) (Ir.Builder.var c)))

let test_multiply_add_encoding () =
  let dfg = mac_dfg () in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  Alcotest.(check int) "one context cycle" 1 ctx.Context.cycles;
  let mnemonics =
    Array.to_list ctx.Context.words.(0)
    |> List.filter_map Context.decode_mnemonic
    |> List.sort compare
  in
  Alcotest.(check (list string)) "mul and add configured" [ "add"; "mul" ] mnemonics

let test_chained_routing () =
  let dfg = mac_dfg () in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  (* the add consumes the mul through the chain: one operand routed from
     the row above (code 1) *)
  let add_word =
    Array.to_list ctx.Context.words.(0)
    |> List.find (fun w -> Context.decode_mnemonic w = Some "add")
  in
  let route_a = (add_word lsr 7) land 7 in
  let route_b = (add_word lsr 10) land 7 in
  Alcotest.(check bool) "one chained operand" true (route_a = 1 || route_b = 1)

let test_idle_slots_inactive () =
  let dfg = mac_dfg () in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  let active =
    Array.fold_left
      (fun acc w -> if w land 1 = 1 then acc + 1 else acc)
      0 ctx.Context.words.(0)
  in
  Alcotest.(check int) "exactly two active slots" 2 active;
  Alcotest.(check (float 0.001)) "utilization 2/8" 0.25 (Context.utilization ctx)

let test_context_matches_gantt () =
  (* context decoding recovers exactly the ops the Gantt shows *)
  let jpeg = Hypar_apps.Jpeg.prepared () in
  let dfg = (Ir.Cdfg.info jpeg.Hypar_core.Flow.cdfg 5).Ir.Cdfg.dfg in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  let decoded =
    Array.fold_left
      (fun acc row ->
        acc
        + List.length (List.filter_map Context.decode_mnemonic (Array.to_list row)))
      0 ctx.Context.words
  in
  Alcotest.(check int) "one word per bound node op" decoded
    (List.length m.Coarse_map.binding.Binding.slots)

let test_load_cycles () =
  let dfg = mac_dfg () in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  Alcotest.(check int) "16-bit words over a 64-bit port"
    ((ctx.Context.total_bits + 63) / 64)
    (Context.load_cycles ctx ~port_bits_per_cycle:64);
  (* tiny compared with an FPGA bitstream: one kernel cycle is 8 slots x
     16 bits = 128 bits *)
  Alcotest.(check int) "total bits" (8 * 16) ctx.Context.total_bits

let test_immediate_routing () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        ignore (Ir.Builder.bin b Ir.Types.Shl "t" (Ir.Builder.var x) (Ir.Builder.imm 3)))
  in
  let m = map dfg in
  let ctx = Context.generate cgc2 dfg m.Coarse_map.schedule m.Coarse_map.binding in
  let word =
    Array.to_list ctx.Context.words.(0) |> List.find (fun w -> w land 1 = 1)
  in
  Alcotest.(check int) "operand A from register bank" 0 ((word lsr 7) land 7);
  Alcotest.(check int) "operand B immediate" 2 ((word lsr 10) land 7)

let suite =
  [
    Alcotest.test_case "multiply-add encoding" `Quick test_multiply_add_encoding;
    Alcotest.test_case "chained routing" `Quick test_chained_routing;
    Alcotest.test_case "idle slots" `Quick test_idle_slots_inactive;
    Alcotest.test_case "matches Gantt" `Quick test_context_matches_gantt;
    Alcotest.test_case "load cycles" `Quick test_load_cycles;
    Alcotest.test_case "immediate routing" `Quick test_immediate_routing;
  ]
