(* Executable proof that CGC schedules preserve semantics: executing a
   block's instructions in *schedule order* (cycle by cycle, chained ops
   after their producers) yields exactly the same registers and memory as
   executing them in program order. *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Schedule = Hypar_coarsegrain.Schedule

let cgc2 = Cgc.two_by_two 2

(* a tiny straight-line evaluator over one DFG *)
let execute_order dfg order =
  let regs : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let mem : (string, int array) Hashtbl.t = Hashtbl.create 4 in
  let array_of arr =
    match Hashtbl.find_opt mem arr with
    | Some a -> a
    | None ->
      let a = Array.init 64 (fun i -> (i * 7) mod 23) in
      Hashtbl.replace mem arr a;
      a
  in
  let read = function
    | Ir.Instr.Imm n -> n
    | Ir.Instr.Var v -> (
      match Hashtbl.find_opt regs v.vid with
      | Some x -> x
      | None ->
        (* live-ins: a deterministic value per variable *)
        (v.vid * 31) mod 97)
  in
  let write v x = Hashtbl.replace regs v.Ir.Instr.vid x in
  List.iter
    (fun id ->
      match (Ir.Dfg.node dfg id).Ir.Dfg.instr with
      | Ir.Instr.Bin { dst; op; a; b } ->
        write dst (Ir.Types.eval_alu_op op (read a) (read b))
      | Ir.Instr.Mul { dst; a; b } -> write dst (read a * read b)
      | Ir.Instr.Un { dst; op; a } -> write dst (Ir.Types.eval_un_op op (read a))
      | Ir.Instr.Mov { dst; src } -> write dst (read src)
      | Ir.Instr.Select { dst; cond; if_true; if_false } ->
        write dst (if read cond <> 0 then read if_true else read if_false)
      | Ir.Instr.Load { dst; arr; index } ->
        let a = array_of arr in
        write dst a.(abs (read index) mod Array.length a)
      | Ir.Instr.Store { arr; index; value } ->
        let a = array_of arr in
        a.(abs (read index) mod Array.length a) <- read value
      | Ir.Instr.Div _ | Ir.Instr.Rem _ -> ())
    order;
  let regs_list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) regs [] |> List.sort compare
  in
  let mem_list =
    Hashtbl.fold (fun k v acc -> (k, Array.to_list v) :: acc) mem []
    |> List.sort compare
  in
  (regs_list, mem_list)

(* schedule order: earliest (cycle, chain depth) first among the nodes
   whose DFG predecessors have already issued — free moves share their
   producer's cycle, so a plain sort would put them too early *)
let schedule_order dfg (s : Schedule.t) =
  let n = Ir.Dfg.node_count dfg in
  let key v =
    let p = s.Schedule.placements.(v) in
    (p.Schedule.cycle, p.Schedule.depth, v)
  in
  let issued = Array.make n false in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref None in
    for v = 0 to n - 1 do
      if
        (not issued.(v))
        && List.for_all (fun p -> issued.(p)) (Ir.Dfg.preds dfg v)
      then
        match !best with
        | Some b when key b <= key v -> ()
        | _ -> best := Some v
    done;
    match !best with
    | Some v ->
      issued.(v) <- true;
      order := v :: !order
    | None -> Alcotest.fail "schedule order: no issuable node (cycle?)"
  done;
  List.rev !order

let check_dfg name dfg =
  if Schedule.supported dfg then begin
    let s = Schedule.schedule cgc2 dfg in
    let program = execute_order dfg (List.init (Ir.Dfg.node_count dfg) Fun.id) in
    let scheduled = execute_order dfg (schedule_order dfg s) in
    if program <> scheduled then
      Alcotest.failf "%s: schedule order changes the block's semantics" name
  end

let test_random_dfgs () =
  for seed = 30 to 60 do
    check_dfg
      (Printf.sprintf "random seed %d" seed)
      (Hypar_apps.Synth.random_dfg ~seed ~nodes:70 ())
  done

let test_app_blocks () =
  List.iter
    (fun (name, prepared) ->
      let cdfg = prepared.Hypar_core.Flow.cdfg in
      List.iter
        (fun i ->
          check_dfg
            (Printf.sprintf "%s BB%d" name i)
            (Ir.Cdfg.info cdfg i).Ir.Cdfg.dfg)
        (Ir.Cdfg.block_ids cdfg))
    [
      ("ofdm", Hypar_apps.Ofdm.prepared ());
      ("jpeg", Hypar_apps.Jpeg.prepared ());
      ("sobel", Hypar_apps.Sobel.prepared ());
      ("adpcm", Hypar_apps.Adpcm.prepared ());
    ]

let suite =
  [
    Alcotest.test_case "random DFGs execute identically" `Quick test_random_dfgs;
    Alcotest.test_case "every app block executes identically" `Quick test_app_blocks;
  ]
