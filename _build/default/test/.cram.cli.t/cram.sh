  $ hypar analyze fir.mc --top 3
  $ hypar partition fir.mc -t 8000
  $ hypar partition fir.mc -t 1
  $ hypar dot fir.mc | head -3
  $ hypar dump fir.mc > fir.ir
  $ hypar analyze fir.ir --top 1
  $ hypar ranges fir.mc
  $ hypar baselines fir.mc -t 8000
  $ hypar sweep fir.mc -t 8000 | head -4
