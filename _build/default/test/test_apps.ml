(* End-to-end tests of the two benchmark applications: functional
   correctness against the OCaml golden models, structural facts from the
   paper, and the partitioning outcomes' shape claims. *)

module Ir = Hypar_ir
module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Interp = Hypar_profiling.Interp
module Ofdm = Hypar_apps.Ofdm
module Jpeg = Hypar_apps.Jpeg

let test_ofdm_golden () =
  let prepared = Ofdm.prepared () in
  let golden_re, golden_im = Ofdm.golden (Ofdm.inputs ()) in
  let got_re = Interp.array_exn prepared.Flow.interp "out_re" in
  let got_im = Interp.array_exn prepared.Flow.interp "out_im" in
  Alcotest.(check bool) "real parts bit-exact" true (golden_re = got_re);
  Alcotest.(check bool) "imaginary parts bit-exact" true (golden_im = got_im)

let test_ofdm_golden_other_seed () =
  let inputs = Ofdm.inputs ~seed:123 () in
  let cdfg = Hypar_minic.Driver.compile_exn ~name:"ofdm" Ofdm.source in
  let r = Interp.run ~inputs cdfg in
  let golden_re, golden_im = Ofdm.golden inputs in
  Alcotest.(check bool) "seed 123 matches" true
    (golden_re = Interp.array_exn r "out_re"
    && golden_im = Interp.array_exn r "out_im")

let test_ofdm_cyclic_prefix_property () =
  (* the first 16 samples of each symbol equal its last 16 *)
  let golden_re, _ = Ofdm.golden (Ofdm.inputs ()) in
  for s = 0 to Ofdm.symbols - 1 do
    for c = 0 to 15 do
      let prefix = golden_re.((s * 80) + c) in
      let tail = golden_re.((s * 80) + 16 + 48 + c) in
      if prefix <> tail then Alcotest.failf "CP mismatch at symbol %d, %d" s c
    done
  done

let test_ofdm_nonzero_output () =
  let golden_re, golden_im = Ofdm.golden (Ofdm.inputs ()) in
  let energy =
    Array.fold_left (fun acc v -> acc + (v * v)) 0 golden_re
    + Array.fold_left (fun acc v -> acc + (v * v)) 0 golden_im
  in
  Alcotest.(check bool) "signal has energy" true (energy > 0)

let test_ofdm_block_count () =
  (* the paper's OFDM CDFG has 18 basic blocks; ours lands nearby *)
  let n = Ir.Cdfg.block_count (Ofdm.prepared ()).Flow.cdfg in
  Alcotest.(check bool)
    (Printf.sprintf "block count %d within [15, 25]" n)
    true
    (n >= 15 && n <= 25)

let test_jpeg_golden () =
  let prepared = Jpeg.prepared () in
  let g = Jpeg.golden (Jpeg.inputs ()) in
  let got = Interp.array_exn prepared.Flow.interp "out_bytes" in
  let mismatch = ref None in
  for i = 0 to g.Jpeg.len - 1 do
    if !mismatch = None && got.(i) <> g.Jpeg.bytes.(i) then mismatch := Some i
  done;
  (match !mismatch with
  | Some i -> Alcotest.failf "bitstreams differ at byte %d" i
  | None -> ());
  Alcotest.(check bool) "bitstream non-trivial" true (g.Jpeg.len > 1000)

let test_jpeg_compresses () =
  let g = Jpeg.golden (Jpeg.inputs ()) in
  (* entropy coding beats the 8-bit/pixel raw size *)
  Alcotest.(check bool) "under 8 bits per pixel" true
    (g.Jpeg.len < Jpeg.width * Jpeg.height)

let test_jpeg_dc_tracks_brightness () =
  (* an all-128 image level-shifts to zero: every DC is 0 and the AC
     stream collapses *)
  let flat = [ ("image", Array.make (Jpeg.width * Jpeg.height) 128) ] in
  let g = Jpeg.golden flat in
  Array.iter
    (fun dc -> if dc <> 0 then Alcotest.fail "flat image has non-zero DC")
    g.Jpeg.dc_values;
  Alcotest.(check bool) "tiny bitstream" true (g.Jpeg.len < 2048)

let test_jpeg_block_count () =
  (* the paper's JPEG CDFG has 22 basic blocks; ours lands nearby *)
  let n = Ir.Cdfg.block_count (Jpeg.prepared ()).Flow.cdfg in
  Alcotest.(check bool)
    (Printf.sprintf "block count %d within [20, 40]" n)
    true
    (n >= 20 && n <= 40)

let paper_runs prepared timing_constraint =
  List.map
    (fun pl -> Flow.partition pl ~timing_constraint prepared)
    (Platform.paper_configs ())

let test_table2_shape () =
  let runs = paper_runs (Ofdm.prepared ()) Ofdm.timing_constraint in
  List.iter
    (fun (r : Engine.t) ->
      Alcotest.(check bool) "initial violates the constraint" true
        (r.Engine.initial.Engine.t_total > Ofdm.timing_constraint);
      Alcotest.(check bool) "partitioning meets it" true (Engine.met r);
      Alcotest.(check bool) "within a handful of moves" true
        (List.length r.Engine.moved <= 6);
      Alcotest.(check bool) "double-digit reduction" true
        (Engine.reduction_percent r > 30.0))
    runs;
  (* paper §4: bigger A_FPGA, smaller relative gain *)
  match runs with
  | [ a1500_2; _; a5000_2; _ ] ->
    Alcotest.(check bool) "reduction smaller at A=5000" true
      (Engine.reduction_percent a5000_2 < Engine.reduction_percent a1500_2)
  | _ -> Alcotest.fail "expected 4 configurations"

let test_table3_shape () =
  let runs = paper_runs (Jpeg.prepared ()) Jpeg.timing_constraint in
  List.iter
    (fun (r : Engine.t) ->
      Alcotest.(check bool) "initial violates the constraint" true
        (r.Engine.initial.Engine.t_total > Jpeg.timing_constraint);
      Alcotest.(check bool) "partitioning meets it" true (Engine.met r))
    runs;
  match runs with
  | [ a1500_2; _; a5000_2; _ ] ->
    Alcotest.(check bool) "initial cycles drop with area" true
      (a5000_2.Engine.initial.Engine.t_total
      < a1500_2.Engine.initial.Engine.t_total);
    Alcotest.(check bool) "reduction smaller at A=5000" true
      (Engine.reduction_percent a5000_2 < Engine.reduction_percent a1500_2)
  | _ -> Alcotest.fail "expected 4 configurations"

let test_moved_kernels_are_hot () =
  (* the engine's first OFDM move is the IFFT butterfly (freq 1152) *)
  let prepared = Ofdm.prepared () in
  let r =
    Flow.partition (List.hd (Platform.paper_configs ()))
      ~timing_constraint:Ofdm.timing_constraint prepared
  in
  match r.Engine.steps with
  | first :: _ ->
    Alcotest.(check int) "butterfly moved first" 1152
      first.Engine.kernel.Hypar_analysis.Kernel.exec_freq
  | [] -> Alcotest.fail "no moves"

let test_matmul_and_fir_compile_and_run () =
  let matmul = Hypar_apps.Synth.matmul_source ~n:8 in
  let prepared =
    Flow.prepare ~name:"matmul" matmul
      ~inputs:
        [ ("a", Array.init 64 (fun i -> i mod 7)); ("b", Array.init 64 (fun i -> i mod 5)) ]
  in
  let c = Interp.array_exn prepared.Flow.interp "c" in
  (* spot-check c[0][0] = sum_k a[0][k] * b[k][0] *)
  let expected = ref 0 in
  for k = 0 to 7 do
    expected := !expected + (k mod 7 * (k * 8 mod 5))
  done;
  Alcotest.(check int) "matmul c00" !expected c.(0);
  let fir = Hypar_apps.Synth.fir_source ~taps:8 ~samples:32 in
  let prepared_fir =
    Flow.prepare ~name:"fir" fir
      ~inputs:
        [ ("x", Array.init 40 (fun i -> i * 3)); ("h", Array.make 8 32) ]
  in
  let y = Interp.array_exn prepared_fir.Flow.interp "y" in
  (* y[0] = (sum_{t<8} x[t]*32) >> 8 = (32*3*28) >> 8 *)
  Alcotest.(check int) "fir y0" ((32 * 3 * 28) asr 8) y.(0)

let suite =
  [
    Alcotest.test_case "OFDM golden model" `Quick test_ofdm_golden;
    Alcotest.test_case "OFDM golden (other seed)" `Quick test_ofdm_golden_other_seed;
    Alcotest.test_case "OFDM cyclic prefix" `Quick test_ofdm_cyclic_prefix_property;
    Alcotest.test_case "OFDM signal energy" `Quick test_ofdm_nonzero_output;
    Alcotest.test_case "OFDM block count" `Quick test_ofdm_block_count;
    Alcotest.test_case "JPEG golden model" `Quick test_jpeg_golden;
    Alcotest.test_case "JPEG compresses" `Quick test_jpeg_compresses;
    Alcotest.test_case "JPEG flat image" `Quick test_jpeg_dc_tracks_brightness;
    Alcotest.test_case "JPEG block count" `Quick test_jpeg_block_count;
    Alcotest.test_case "Table 2 shape" `Quick test_table2_shape;
    Alcotest.test_case "Table 3 shape" `Quick test_table3_shape;
    Alcotest.test_case "moved kernels are hot" `Quick test_moved_kernels_are_hot;
    Alcotest.test_case "matmul and FIR" `Quick test_matmul_and_fir_compile_and_run;
  ]

let test_ofdm_scaling () =
  (* the parameterised transmitter stays bit-exact and scales linearly *)
  let check symbols =
    let inputs = Hypar_apps.Ofdm.inputs_for ~symbols () in
    let cdfg =
      Hypar_minic.Driver.compile_exn ~name:"ofdm-scaled"
        (Hypar_apps.Ofdm.source_for ~symbols)
    in
    let r = Interp.run ~inputs cdfg in
    let golden_re, golden_im = Hypar_apps.Ofdm.golden inputs in
    Alcotest.(check bool)
      (Printf.sprintf "%d symbols bit-exact" symbols)
      true
      (golden_re = Interp.array_exn r "out_re"
      && golden_im = Interp.array_exn r "out_im");
    Array.fold_left ( + ) 0 r.Interp.exec_freq
  in
  let blocks2 = check 2 and blocks4 = check 4 in
  (* dynamic block count scales ~2x with the payload (entry overhead aside) *)
  Alcotest.(check bool)
    (Printf.sprintf "linear scaling (%d vs %d)" blocks2 blocks4)
    true
    (abs (blocks4 - (2 * blocks2)) < blocks2 / 4)

let scaling_suite =
  [ Alcotest.test_case "OFDM payload scaling" `Quick test_ofdm_scaling ]

let suite = suite @ scaling_suite
