(* Unit tests for the coarse-grain mapping layer (Eq. 3). *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Coarse_map = Hypar_coarsegrain.Coarse_map
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let cgc2 = Cgc.two_by_two 2

let test_latency_minimum_one () =
  let dfg =
    Ir.Builder.dfg_of (fun b -> ignore (Ir.Builder.mov b "t" (Ir.Builder.imm 1)))
  in
  match Coarse_map.map_dfg cgc2 dfg with
  | Some m -> Alcotest.(check int) "all-moves block still takes a cycle" 1 m.Coarse_map.latency
  | None -> Alcotest.fail "expected mapping"

let test_unmappable_division () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        Ir.Builder.emit b
          (Ir.Instr.Div { dst = Ir.Builder.fresh_var b "q"; a = Var x; b = Imm 3 }))
  in
  Alcotest.(check bool) "division blocks are unmappable" true
    (Coarse_map.map_dfg cgc2 dfg = None)

let loop_src = {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 30; i = i + 1) { s = s + i * i; }
  out[0] = s;
}
|}

let test_app_cycles_eq3 () =
  let cdfg = Driver.compile_exn loop_src in
  let freqs = (Interp.run cdfg).Interp.exec_freq in
  let freq i = freqs.(i) in
  let total = Coarse_map.app_cycles cgc2 cdfg ~freq ~on_cgc:(fun _ -> true) in
  let expected =
    List.fold_left
      (fun acc i ->
        match Coarse_map.map_block cgc2 cdfg i with
        | Some m when freq i > 0 -> acc + (m.Coarse_map.latency * freq i)
        | Some _ | None -> acc)
      0 (Ir.Cdfg.block_ids cdfg)
  in
  Alcotest.(check int) "Eq. 3" expected total

let test_app_cycles_rejects_divisions () =
  let cdfg = Driver.compile_exn {|
int out[1];
int in[1];
void main() {
  int s = 1;
  int i;
  for (i = 1; i < 5; i = i + 1) { s = s + in[0] / i; }
  out[0] = s;
}
|} in
  let freqs = (Interp.run ~inputs:[ ("in", [| 10 |]) ] cdfg).Interp.exec_freq in
  match
    Coarse_map.app_cycles cgc2 cdfg ~freq:(fun i -> freqs.(i)) ~on_cgc:(fun _ -> true)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of division block"

let test_faster_than_sequential () =
  (* CGC latency is never worse than executing nodes one per cycle *)
  for seed = 1 to 6 do
    let dfg = Hypar_apps.Synth.random_dfg ~seed ~nodes:50 () in
    match Coarse_map.map_dfg cgc2 dfg with
    | Some m ->
      Alcotest.(check bool)
        (Printf.sprintf "latency %d <= nodes" m.Coarse_map.latency)
        true
        (m.Coarse_map.latency <= Ir.Dfg.node_count dfg)
    | None -> ()
  done

let test_binding_is_valid () =
  let cdfg = Driver.compile_exn loop_src in
  List.iter
    (fun i ->
      match Coarse_map.map_block cgc2 cdfg i with
      | Some m ->
        Alcotest.(check bool) "binding valid" true
          (Hypar_coarsegrain.Binding.is_valid cgc2 m.Coarse_map.binding)
      | None -> ())
    (Ir.Cdfg.block_ids cdfg)

let suite =
  [
    Alcotest.test_case "minimum latency" `Quick test_latency_minimum_one;
    Alcotest.test_case "unmappable division" `Quick test_unmappable_division;
    Alcotest.test_case "Eq. 3 application cycles" `Quick test_app_cycles_eq3;
    Alcotest.test_case "divisions rejected" `Quick test_app_cycles_rejects_divisions;
    Alcotest.test_case "no worse than sequential" `Quick test_faster_than_sequential;
    Alcotest.test_case "binding validity" `Quick test_binding_is_valid;
  ]
