(* Unit tests for the value-range (width) analysis. *)

module Ir = Hypar_ir
module Range = Hypar_analysis.Range
module Driver = Hypar_minic.Driver

let compile = Driver.compile_exn ~simplify:false

let report_for cdfg name_prefix =
  List.find_opt
    (fun (r : Range.report) ->
      String.length r.var.vname >= String.length name_prefix
      && String.sub r.var.vname 0 (String.length name_prefix) = name_prefix)
    (Range.analyse cdfg)

let test_constant_ranges () =
  let cdfg = compile {|
int out[1];
void main() {
  int a = 5;
  int b = a + 10;
  out[0] = b;
}
|} in
  match report_for cdfg "b" with
  | Some r ->
    Alcotest.(check int) "exact lo" 15 r.range.Range.lo;
    Alcotest.(check int) "exact hi" 15 r.range.Range.hi;
    Alcotest.(check bool) "fits int16" true r.fits
  | None -> Alcotest.fail "no report for b"

let test_input_arrays_assume_width () =
  let cdfg = compile {|
int out[1];
int in[4];
void main() {
  int x = in[0];
  out[0] = x;
}
|} in
  match report_for cdfg "x" with
  | Some r ->
    Alcotest.(check int) "width-derived lo" (-32768) r.range.Range.lo;
    Alcotest.(check int) "width-derived hi" 32767 r.range.Range.hi
  | None -> Alcotest.fail "no report for x"

let test_const_rom_exact () =
  let cdfg = compile {|
const int rom[3] = { -5, 10, 40 };
int out[1];
int in[1];
void main() {
  int x = rom[in[0] & 1];
  out[0] = x;
}
|} in
  match report_for cdfg "x" with
  | Some r ->
    Alcotest.(check int) "rom lo" (-5) r.range.Range.lo;
    Alcotest.(check int) "rom hi" 40 r.range.Range.hi
  | None -> Alcotest.fail "no report for x"

let test_overflow_flagged () =
  (* an int16 product of two full-width int16 inputs overflows *)
  let cdfg = compile {|
int out[1];
int in[2];
void main() {
  int a = in[0];
  int b = in[1];
  int16 p = a * b;
  out[0] = p;
}
|} in
  let risky = Range.overflow_risks cdfg in
  Alcotest.(check bool) "product flagged" true
    (List.exists (fun (r : Range.report) -> r.var.vname.[0] = 'p') risky)

let test_clamped_values_fit () =
  (* explicit min/max clamping keeps the predictor inside int16 *)
  let cdfg = compile {|
int out[1];
int in[1];
void main() {
  int32 wide = in[0] * 4;
  int clamped = min(32767, max(0 - 32768, wide));
  out[0] = clamped;
}
|} in
  match report_for cdfg "clamped" with
  | Some r ->
    Alcotest.(check bool) "clamp proves the width" true r.fits;
    Alcotest.(check int) "hi bounded" 32767 r.range.Range.hi
  | None -> Alcotest.fail "no report for clamped"

let test_comparison_is_boolean () =
  let cdfg = compile {|
int out[1];
int in[2];
void main() {
  int c = in[0] < in[1];
  out[0] = c;
}
|} in
  match report_for cdfg "c" with
  | Some r ->
    Alcotest.(check int) "lo 0" 0 r.range.Range.lo;
    Alcotest.(check int) "hi 1" 1 r.range.Range.hi
  | None -> Alcotest.fail "no report for c"

let test_loop_accumulator_widens () =
  (* an unbounded-looking accumulator widens to top rather than looping
     forever, and is flagged against int16 *)
  let cdfg = compile {|
int out[1];
int in[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < in[0]; i++) {
    s = s + 1000;
  }
  out[0] = s;
}
|} in
  match report_for cdfg "s" with
  | Some r ->
    Alcotest.(check bool) "widened beyond int16" true (not r.fits)
  | None -> Alcotest.fail "no report for s"

let test_apps_declared_widths () =
  (* the ADPCM implementation clamps its predictor: its stored state fits *)
  let cdfg = (Hypar_apps.Adpcm.prepared ()).Hypar_core.Flow.cdfg in
  let reports = Range.analyse cdfg in
  Alcotest.(check bool) "analysis covers many registers" true
    (List.length reports > 20);
  (* abs/shift results of the interval machinery must stay ordered *)
  List.iter
    (fun (r : Range.report) ->
      if r.range.Range.lo > r.range.Range.hi then
        Alcotest.failf "inverted interval on %s" r.var.vname)
    reports

let test_width_range () =
  Alcotest.(check bool) "w1 is a 0/1 flag" true
    (Range.width_range 1 = { Range.lo = 0; hi = 1 });
  Alcotest.(check bool) "w8" true
    (Range.width_range 8 = { Range.lo = -128; hi = 127 });
  Alcotest.(check bool) "w16" true
    (Range.width_range 16 = { Range.lo = -32768; hi = 32767 })

let suite =
  [
    Alcotest.test_case "constant ranges" `Quick test_constant_ranges;
    Alcotest.test_case "input arrays" `Quick test_input_arrays_assume_width;
    Alcotest.test_case "const ROM exact" `Quick test_const_rom_exact;
    Alcotest.test_case "overflow flagged" `Quick test_overflow_flagged;
    Alcotest.test_case "clamping proves widths" `Quick test_clamped_values_fit;
    Alcotest.test_case "comparisons boolean" `Quick test_comparison_is_boolean;
    Alcotest.test_case "loop accumulator widens" `Quick test_loop_accumulator_widens;
    Alcotest.test_case "apps analysed" `Quick test_apps_declared_widths;
    Alcotest.test_case "width_range" `Quick test_width_range;
  ]

let test_counter_cap_precision () =
  (* bounded loop counters are inferred precisely, not widened *)
  let cdfg = compile {|
int y[64];
void main() {
  int i;
  for (i = 0; i < 56; i = i + 1) {
    y[i] = i;
  }
}
|} in
  match report_for cdfg "i" with
  | Some r ->
    Alcotest.(check int) "lo 0" 0 r.range.Range.lo;
    Alcotest.(check int) "hi 56 (post-increment)" 56 r.range.Range.hi;
    Alcotest.(check bool) "fits" true r.fits
  | None -> Alcotest.fail "no report for i"

let test_narrowing_recovers_derived_values () =
  (* i + t with both counters bounded: the sum must be tight even though
     the counters converge slowly *)
  let cdfg = compile {|
int y[64];
void main() {
  int i;
  for (i = 0; i < 56; i = i + 1) {
    int t;
    for (t = 0; t < 8; t = t + 1) {
      int sum = i + t;
      y[sum & 63] = sum;
    }
  }
}
|} in
  match report_for cdfg "sum" with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "tight bound [%d,%d]" r.range.Range.lo r.range.Range.hi)
      true
      (r.range.Range.lo >= 0 && r.range.Range.hi <= 64)
  | None -> Alcotest.fail "no report for sum"

let test_genuine_accumulator_risk_still_flagged () =
  (* the classic MAC-into-int16 bug must not be silenced by the caps *)
  let cdfg = compile {|
int out[1];
int x[8];
void main() {
  int16 s = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    s = s + x[i] * x[i];
  }
  out[0] = s;
}
|} in
  Alcotest.(check bool) "accumulator flagged" true
    (List.exists
       (fun (r : Range.report) -> r.var.vname.[0] = 's')
       (Range.overflow_risks cdfg))

let precision_suite =
  [
    Alcotest.test_case "counter cap precision" `Quick test_counter_cap_precision;
    Alcotest.test_case "narrowing" `Quick test_narrowing_recovers_derived_values;
    Alcotest.test_case "real risks still flagged" `Quick test_genuine_accumulator_risk_still_flagged;
  ]

let suite = suite @ precision_suite
