(* End-to-end tests of the ADPCM workload (branchy multi-block kernel). *)

module Ir = Hypar_ir
module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Interp = Hypar_profiling.Interp
module Adpcm = Hypar_apps.Adpcm

let test_golden () =
  let p = Adpcm.prepared () in
  let g = Adpcm.golden (Adpcm.inputs ()) in
  Alcotest.(check bool) "codes bit-exact" true
    (Interp.array_exn p.Flow.interp "adpcm" = g.Adpcm.codes);
  let st = Interp.array_exn p.Flow.interp "state" in
  Alcotest.(check int) "final predictor" g.Adpcm.final_predicted st.(0);
  Alcotest.(check int) "final index" g.Adpcm.final_index st.(1)

let test_silence_encodes_to_zeros () =
  let g = Adpcm.golden [ ("pcm", Array.make Adpcm.samples 0) ] in
  Alcotest.(check int) "silent input, zero codes" 0
    (Array.fold_left ( + ) 0 g.Adpcm.codes);
  Alcotest.(check int) "predictor stays put" 0 g.Adpcm.final_predicted;
  Alcotest.(check int) "index floors at 0" 0 g.Adpcm.final_index

let test_step_index_saturates () =
  (* a full-scale square wave drives the step index to its ceiling *)
  let square =
    Array.init Adpcm.samples (fun n -> if n land 1 = 0 then 32767 else -32768)
  in
  let g = Adpcm.golden [ ("pcm", square) ] in
  Alcotest.(check int) "index saturates at 88" 88 g.Adpcm.final_index

let test_nibbles_in_range () =
  let g = Adpcm.golden (Adpcm.inputs ()) in
  Array.iter
    (fun byte ->
      if byte < 0 || byte > 255 then Alcotest.fail "packed byte out of range")
    g.Adpcm.codes

let test_predictor_tracks_signal () =
  (* decode-side sanity: predictor must stay within 16-bit range *)
  let g = Adpcm.golden (Adpcm.inputs ()) in
  Alcotest.(check bool) "predictor in range" true
    (g.Adpcm.final_predicted >= -32768 && g.Adpcm.final_predicted <= 32767)

let test_loop_body_is_multi_block () =
  (* the kernel loop spans several blocks (the stress case for t_comm) *)
  let p = Adpcm.prepared () in
  let cfg = Ir.Cdfg.cfg p.Flow.cdfg in
  let in_loop =
    List.filter
      (fun i -> (Ir.Loop.depth_map cfg).(i) > 0)
      (Ir.Cdfg.block_ids p.Flow.cdfg)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d blocks in the loop" (List.length in_loop))
    true
    (List.length in_loop >= 6)

let test_partitioning_clusters () =
  let p = Adpcm.prepared () in
  let r =
    Flow.partition
      (List.hd (Platform.paper_configs ()))
      ~timing_constraint:Adpcm.timing_constraint p
  in
  Alcotest.(check bool) "needs partitioning" true
    (r.Engine.initial.Engine.t_total > Adpcm.timing_constraint);
  Alcotest.(check bool) "met" true (Engine.met r);
  Alcotest.(check bool) "moves several loop blocks" true
    (List.length r.Engine.moved >= 3)

let suite =
  [
    Alcotest.test_case "golden model" `Quick test_golden;
    Alcotest.test_case "silence" `Quick test_silence_encodes_to_zeros;
    Alcotest.test_case "index saturation" `Quick test_step_index_saturates;
    Alcotest.test_case "nibble packing" `Quick test_nibbles_in_range;
    Alcotest.test_case "predictor range" `Quick test_predictor_tracks_signal;
    Alcotest.test_case "multi-block loop" `Quick test_loop_body_is_multi_block;
    Alcotest.test_case "partitioning clusters" `Quick test_partitioning_clusters;
  ]
