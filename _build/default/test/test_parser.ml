(* Unit tests for the Mini-C parser: precedence, associativity, statement
   and top-level forms, and error reporting. *)

module Ast = Hypar_minic.Ast
module Parser = Hypar_minic.Parser

let rec expr_to_string (e : Ast.expr) =
  match e.desc with
  | Ast.Num n -> string_of_int n
  | Ast.Ident s -> s
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_to_string args))
  | Ast.Unary (op, a) ->
    Printf.sprintf "(%s%s)" (Format.asprintf "%a" Ast.pp_unop op) (expr_to_string a)
  | Ast.Binary (op, a, b) ->
    Printf.sprintf "(%s%s%s)" (expr_to_string a)
      (Format.asprintf "%a" Ast.pp_binop op)
      (expr_to_string b)
  | Ast.Ternary (a, b, c) ->
    Printf.sprintf "(%s?%s:%s)" (expr_to_string a) (expr_to_string b)
      (expr_to_string c)

let parses_as src expected =
  Alcotest.(check string) src expected (expr_to_string (Parser.parse_expr_string src))

let test_precedence () =
  parses_as "1 + 2 * 3" "(1+(2*3))";
  parses_as "1 * 2 + 3" "((1*2)+3)";
  parses_as "1 + 2 - 3" "((1+2)-3)";
  parses_as "1 << 2 + 3" "(1<<(2+3))";
  parses_as "1 < 2 << 3" "(1<(2<<3))";
  parses_as "1 == 2 < 3" "(1==(2<3))";
  parses_as "1 & 2 == 3" "(1&(2==3))";
  parses_as "1 ^ 2 & 3" "(1^(2&3))";
  parses_as "1 | 2 ^ 3" "(1|(2^3))";
  parses_as "1 && 2 | 3" "(1&&(2|3))";
  parses_as "1 || 2 && 3" "(1||(2&&3))"

let test_unary_and_paren () =
  parses_as "-x * 2" "((-x)*2)";
  parses_as "-(x * 2)" "(-(x*2))";
  parses_as "!x && y" "((!x)&&y)";
  parses_as "~x + 1" "((~x)+1)";
  parses_as "- -x" "(-(-x))";
  parses_as "+x" "x"

let test_ternary () =
  parses_as "a ? b : c" "(a?b:c)";
  parses_as "a ? b : c ? d : e" "(a?b:(c?d:e))";
  parses_as "a < 0 ? 0 - a : a" "((a<0)?(0-a):a)"

let test_calls_and_index () =
  parses_as "f(1, 2 + 3)" "f(1,(2+3))";
  parses_as "min(a, b) + 1" "(min(a,b)+1)";
  parses_as "t[i + 1] * 2" "(t[(i+1)]*2)";
  parses_as "g()" "g()"

let test_program_forms () =
  let prog =
    Parser.parse_program
      {|
const int rom[3] = { 1, 2, 3 };
int buf[8];
int counter = 5;
int flag;

int helper(int a, int b[]) {
  return a + b[0];
}

void main() {
  int x = helper(1, buf);
  buf[0] = x;
}
|}
  in
  Alcotest.(check int) "4 globals" 4 (List.length prog.Ast.globals);
  Alcotest.(check int) "2 functions" 2 (List.length prog.Ast.funcs);
  (match prog.Ast.globals with
  | Ast.Global_array { gname; size; ginit; is_const; _ } :: _ ->
    Alcotest.(check string) "rom name" "rom" gname;
    Alcotest.(check int) "rom size" 3 size;
    Alcotest.(check bool) "rom const" true is_const;
    Alcotest.(check (option (list int))) "rom init" (Some [ 1; 2; 3 ]) ginit
  | _ -> Alcotest.fail "expected const array first");
  match prog.Ast.funcs with
  | f :: _ ->
    Alcotest.(check string) "helper name" "helper" f.Ast.fname;
    Alcotest.(check bool) "helper returns value" true f.Ast.returns_value;
    Alcotest.(check int) "helper arity" 2 (List.length f.Ast.params)
  | [] -> Alcotest.fail "missing functions"

let test_statements () =
  let prog =
    Parser.parse_program
      {|
void main() {
  int i;
  for (i = 0; i < 4; i = i + 1) { }
  while (i > 0) { i = i - 1; }
  do { i = i + 1; } while (i < 2);
  if (i == 2) { i = 0; } else { i = 1; }
  if (i == 0) i = 9;
}
|}
  in
  match prog.Ast.funcs with
  | [ f ] -> Alcotest.(check int) "6 top statements" 6 (List.length f.Ast.body)
  | _ -> Alcotest.fail "expected main only"

let test_negative_init () =
  let prog = Parser.parse_program "const int t[2] = { -5, 7 };\nvoid main() { }" in
  match prog.Ast.globals with
  | [ Ast.Global_array { ginit = Some [ -5; 7 ]; _ } ] -> ()
  | _ -> Alcotest.fail "negative initialiser not parsed"

let test_errors () =
  let raises src =
    match Parser.parse_program src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  raises "void main() { int }";
  raises "void main() { x = ; }";
  raises "void main() { if x { } }";
  raises "void main() { for (;;) }";
  raises "int x[] ;";
  raises "void main() { do { } while (1) }" (* missing ';' *)

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "unary and parentheses" `Quick test_unary_and_paren;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "calls and indexing" `Quick test_calls_and_index;
    Alcotest.test_case "program forms" `Quick test_program_forms;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "negative initialisers" `Quick test_negative_init;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
