(* Unit tests for the algebraic simplification and local CSE passes. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile_raw src = Driver.compile_exn ~simplify:false src

let out0 ?(inputs = []) cdfg =
  (Interp.array_exn (Interp.run ~inputs cdfg) "out").(0)

let count_class cdfg cls =
  Array.fold_left
    (fun acc (bi : Ir.Cdfg.block_info) ->
      acc
      + List.length
          (List.filter
             (fun i -> Ir.Instr.op_class i = cls)
             bi.block.Ir.Block.instrs))
    0 (Ir.Cdfg.infos cdfg)

let test_mul_by_power_of_two () =
  let cdfg = compile_raw {|
int out[1];
int in[1];
void main() { out[0] = in[0] * 8; }
|} in
  let opt = Ir.Passes.algebraic_simplify cdfg in
  Alcotest.(check int) "multiplier became a shift" 0
    (count_class opt Ir.Types.Class_mul);
  Alcotest.(check int) "value preserved" 40 (out0 ~inputs:[ ("in", [| 5 |]) ] opt)

let test_identities () =
  let src = {|
int out[4];
int in[1];
void main() {
  int x = in[0];
  out[0] = x + 0;
  out[1] = x * 1;
  out[2] = (x ^ x) + (x | x);
  out[3] = x << 0;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.simplify raw in
  let run cdfg = Interp.array_exn (Interp.run ~inputs:[ ("in", [| 9 |]) ] cdfg) "out" in
  Alcotest.(check (array int)) "same results" (run raw) (run opt);
  (* x+0, x*1, x<<0 all vanish; x^x and x|x fold *)
  Alcotest.(check bool) "fewer instructions" true
    (Ir.Cdfg.total_instrs opt < Ir.Cdfg.total_instrs raw)

let test_cse_pure_expression () =
  let cdfg = compile_raw {|
int out[1];
int in[2];
void main() {
  int a = in[0];
  int b = in[1];
  out[0] = (a * b + 3) + (a * b + 3);
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "one multiplication left" 1
    (count_class opt Ir.Types.Class_mul);
  Alcotest.(check int) "value preserved" 70
    (out0 ~inputs:[ ("in", [| 4; 8 |]) ] opt)

let test_cse_commutative () =
  let cdfg = compile_raw {|
int out[1];
int in[2];
void main() {
  int a = in[0];
  int b = in[1];
  out[0] = a * b + b * a;
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "a*b and b*a share one multiplier" 1
    (count_class opt Ir.Types.Class_mul)

let test_cse_respects_redefinition () =
  let cdfg = compile_raw {|
int out[1];
int in[1];
void main() {
  int a = in[0];
  int x = a + 1;
  a = a * 2;
  int y = a + 1;
  out[0] = x + y;
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  (* (5+1) + (10+1) = 17, not (5+1)*2 *)
  Alcotest.(check int) "redefinition invalidates the expression" 17
    (out0 ~inputs:[ ("in", [| 5 |]) ] opt)

let test_cse_loads_blocked_by_store () =
  let cdfg = compile_raw {|
int out[1];
int t[2];
int in[1];
void main() {
  t[0] = in[0];
  int a = t[0];
  t[0] = a + 1;
  int b = t[0];
  out[0] = a * 100 + b;
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "store invalidates cached load" 506
    (out0 ~inputs:[ ("in", [| 5 |]) ] opt)

let test_cse_reuses_loads () =
  let cdfg = compile_raw {|
int out[1];
int in[4];
void main() {
  out[0] = in[2] + in[2] + in[2];
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  let loads = count_class opt Ir.Types.Class_mem in
  (* 1 reused load + 1 store to out *)
  Alcotest.(check int) "single load survives" 2 loads

let test_self_comparison () =
  let cdfg = compile_raw {|
int out[1];
int in[1];
void main() {
  int a = in[0];
  out[0] = (a == a) + (a != a) + (a <= a) + (a < a);
}
|} in
  let opt = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "1 + 0 + 1 + 0" 2 (out0 ~inputs:[ ("in", [| -3 |]) ] opt)

let test_random_semantics_with_full_pipeline () =
  for seed = 50 to 65 do
    let src = Hypar_apps.Synth.random_straightline_main ~seed ~ops:50 () in
    let raw = compile_raw src in
    let opt = Ir.Passes.simplify raw in
    Alcotest.(check int) (Printf.sprintf "seed %d" seed) (out0 raw) (out0 opt)
  done

let suite =
  [
    Alcotest.test_case "mul by power of two" `Quick test_mul_by_power_of_two;
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "CSE pure expressions" `Quick test_cse_pure_expression;
    Alcotest.test_case "CSE commutativity" `Quick test_cse_commutative;
    Alcotest.test_case "CSE respects redefinition" `Quick test_cse_respects_redefinition;
    Alcotest.test_case "CSE blocked by stores" `Quick test_cse_loads_blocked_by_store;
    Alcotest.test_case "CSE reuses loads" `Quick test_cse_reuses_loads;
    Alcotest.test_case "self comparisons" `Quick test_self_comparison;
    Alcotest.test_case "random full pipeline" `Quick test_random_semantics_with_full_pipeline;
  ]
