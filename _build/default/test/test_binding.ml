(* Unit tests for CGC binding: physical placement, port assignment and
   register-bank pressure. *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Schedule = Hypar_coarsegrain.Schedule
module Binding = Hypar_coarsegrain.Binding

let cgc2 = Cgc.two_by_two 2

let bind_of dfg =
  let s = Schedule.schedule cgc2 dfg in
  (s, Binding.bind cgc2 dfg s)

let test_slots_within_bounds () =
  let dfg = Hypar_apps.Synth.random_dfg ~seed:4 ~nodes:60 () in
  let _, b = bind_of dfg in
  Alcotest.(check bool) "binding valid" true (Binding.is_valid cgc2 b);
  List.iter
    (fun (s : Binding.slot) ->
      Alcotest.(check bool) "cgc in range" true (s.cgc >= 0 && s.cgc < 2);
      Alcotest.(check bool) "row in range" true (s.row >= 0 && s.row < 2);
      Alcotest.(check bool) "col in range" true (s.col >= 0 && s.col < 2))
    b.Binding.slots

let test_no_double_occupancy () =
  let dfg = Hypar_apps.Synth.random_dfg ~seed:9 ~nodes:100 () in
  let _, b = bind_of dfg in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Binding.slot) ->
      let key = (s.cycle, s.cgc, s.row, s.col) in
      if Hashtbl.mem seen key then Alcotest.fail "slot used twice";
      Hashtbl.replace seen key ())
    b.Binding.slots

let test_chained_ops_same_column () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let a = Ir.Builder.fresh_var b "a" in
        let t = Ir.Builder.mul b "t" (Ir.Builder.var a) (Ir.Builder.var a) in
        ignore (Ir.Builder.bin b Ir.Types.Add "u" (Ir.Builder.var t) (Ir.Builder.imm 1)))
  in
  let _, b = bind_of dfg in
  match b.Binding.slots with
  | [ s0; s1 ] ->
    Alcotest.(check int) "same cgc" s0.Binding.cgc s1.Binding.cgc;
    Alcotest.(check int) "same column" s0.Binding.col s1.Binding.col;
    Alcotest.(check int) "rows 0 and 1" 0 s0.Binding.row;
    Alcotest.(check int) "second row" 1 s1.Binding.row
  | l -> Alcotest.failf "expected 2 slots, got %d" (List.length l)

let test_mem_ports_assigned () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        for i = 0 to 3 do
          ignore (Ir.Builder.load b "t" ~arr:"m" (Ir.Builder.imm i))
        done)
  in
  let _, b = bind_of dfg in
  Alcotest.(check int) "4 memory ops" 4 (List.length b.Binding.mem_ports);
  List.iter
    (fun (_, port) ->
      Alcotest.(check bool) "port id < 2" true (port >= 0 && port < 2))
    b.Binding.mem_ports

let test_register_pressure () =
  (* a value produced in cycle 1 and consumed only after a long chain
     stays in the register bank *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let a = Ir.Builder.fresh_var b "a" in
        let early = Ir.Builder.bin b Ir.Types.Add "early" (Ir.Builder.var a) (Ir.Builder.imm 1) in
        let prev = ref (Ir.Builder.var a) in
        for _ = 1 to 6 do
          let v = Ir.Builder.mul b "c" !prev !prev in
          prev := Ir.Builder.var v
        done;
        ignore (Ir.Builder.bin b Ir.Types.Add "last" (Ir.Builder.var early) !prev))
  in
  let _, b = bind_of dfg in
  Alcotest.(check bool) "live value tracked" true (b.Binding.max_live >= 1);
  Alcotest.(check bool) "fits default bank" true b.Binding.fits_register_bank

let test_tiny_register_bank_overflows () =
  let tiny = Cgc.make ~register_bank:1 ~cgcs:2 ~rows:2 ~cols:2 () in
  let dfg = Hypar_apps.Synth.random_dfg ~seed:21 ~nodes:120 () in
  let s = Schedule.schedule tiny dfg in
  let b = Binding.bind tiny dfg s in
  Alcotest.(check bool) "pressure detected" true (b.Binding.max_live > 1);
  Alcotest.(check bool) "spill reported" false b.Binding.fits_register_bank

let suite =
  [
    Alcotest.test_case "slots within bounds" `Quick test_slots_within_bounds;
    Alcotest.test_case "no double occupancy" `Quick test_no_double_occupancy;
    Alcotest.test_case "chained ops share a column" `Quick test_chained_ops_same_column;
    Alcotest.test_case "memory ports assigned" `Quick test_mem_ports_assigned;
    Alcotest.test_case "register pressure" `Quick test_register_pressure;
    Alcotest.test_case "tiny register bank overflows" `Quick test_tiny_register_bank_overflows;
  ]
