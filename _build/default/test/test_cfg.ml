(* Unit tests for the control-flow graph: construction, validation,
   orders, dominators and back edges. *)

module Ir = Hypar_ir

let block label ~term = Ir.Block.make ~label ~instrs:[] ~term

let jump l = Ir.Block.Jump l
let ret = Ir.Block.Return None

let branch l1 l2 =
  Ir.Block.Branch { cond = Ir.Instr.Imm 1; if_true = l1; if_false = l2 }

(* entry -> (a | b) -> exit *)
let diamond () =
  Ir.Cfg.of_blocks
    [
      block "entry" ~term:(branch "a" "b");
      block "a" ~term:(jump "exit");
      block "b" ~term:(jump "exit");
      block "exit" ~term:ret;
    ]

(* entry -> header; header -> (body | exit); body -> header *)
let simple_loop () =
  Ir.Cfg.of_blocks
    [
      block "entry" ~term:(jump "header");
      block "header" ~term:(branch "body" "exit");
      block "body" ~term:(jump "header");
      block "exit" ~term:ret;
    ]

let test_construction () =
  let cfg = diamond () in
  Alcotest.(check int) "4 blocks" 4 (Ir.Cfg.block_count cfg);
  Alcotest.(check int) "entry id" 0 (Ir.Cfg.entry cfg);
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (Ir.Cfg.successors cfg 0);
  Alcotest.(check (list int)) "exit preds" [ 1; 2 ] (Ir.Cfg.predecessors cfg 3);
  Alcotest.(check int) "label lookup" 2 (Ir.Cfg.id_of_label cfg "b")

let test_malformed () =
  let raises f =
    match f () with
    | exception Ir.Cfg.Malformed _ -> ()
    | _ -> Alcotest.fail "expected Malformed"
  in
  raises (fun () -> Ir.Cfg.of_blocks []);
  raises (fun () ->
      Ir.Cfg.of_blocks [ block "a" ~term:ret; block "a" ~term:ret ]);
  raises (fun () -> Ir.Cfg.of_blocks [ block "a" ~term:(jump "nowhere") ])

let test_reverse_postorder () =
  let cfg = diamond () in
  let rpo = Ir.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "covers all blocks" 4 (List.length rpo);
  (match rpo with
  | first :: _ -> Alcotest.(check int) "starts at entry" 0 first
  | [] -> Alcotest.fail "empty order");
  (* entry before its successors, successors before exit *)
  let pos x = Option.get (List.find_index (Int.equal x) rpo) in
  Alcotest.(check bool) "entry before a" true (pos 0 < pos 1);
  Alcotest.(check bool) "a before exit" true (pos 1 < pos 3)

let test_dominators_diamond () =
  let cfg = diamond () in
  let idom = Ir.Cfg.idom cfg in
  Alcotest.(check int) "idom entry" 0 idom.(0);
  Alcotest.(check int) "idom a" 0 idom.(1);
  Alcotest.(check int) "idom b" 0 idom.(2);
  Alcotest.(check int) "idom exit" 0 idom.(3);
  Alcotest.(check bool) "entry dominates all" true (Ir.Cfg.dominates cfg 0 3);
  Alcotest.(check bool) "a does not dominate exit" false (Ir.Cfg.dominates cfg 1 3)

let test_back_edges () =
  let cfg = simple_loop () in
  Alcotest.(check (list (pair int int))) "body->header is the back edge"
    [ (2, 1) ] (Ir.Cfg.back_edges cfg);
  Alcotest.(check (list (pair int int))) "diamond has no back edges" []
    (Ir.Cfg.back_edges (diamond ()))

let test_unreachable () =
  let cfg =
    Ir.Cfg.of_blocks [ block "entry" ~term:ret; block "island" ~term:ret ]
  in
  let reach = Ir.Cfg.reachable cfg in
  Alcotest.(check bool) "entry reachable" true reach.(0);
  Alcotest.(check bool) "island unreachable" false reach.(1);
  Alcotest.(check int) "unreachable idom is -1" (-1) (Ir.Cfg.idom cfg).(1)

let test_self_loop () =
  let cfg =
    Ir.Cfg.of_blocks
      [ block "entry" ~term:(jump "spin"); block "spin" ~term:(branch "spin" "done");
        block "done" ~term:ret ]
  in
  Alcotest.(check (list (pair int int))) "self back edge" [ (1, 1) ]
    (Ir.Cfg.back_edges cfg)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "malformed graphs" `Quick test_malformed;
    Alcotest.test_case "reverse postorder" `Quick test_reverse_postorder;
    Alcotest.test_case "dominators (diamond)" `Quick test_dominators_diamond;
    Alcotest.test_case "back edges" `Quick test_back_edges;
    Alcotest.test_case "unreachable blocks" `Quick test_unreachable;
    Alcotest.test_case "self loop" `Quick test_self_loop;
  ]
