(* Unit tests for Hypar_ir.Types: operator semantics and printing. *)

module Types = Hypar_ir.Types

let check = Alcotest.(check int)

let test_arithmetic () =
  check "add" 7 (Types.eval_alu_op Types.Add 3 4);
  check "sub" (-1) (Types.eval_alu_op Types.Sub 3 4);
  check "and" 0b100 (Types.eval_alu_op Types.And 0b110 0b101);
  check "or" 0b111 (Types.eval_alu_op Types.Or 0b110 0b101);
  check "xor" 0b011 (Types.eval_alu_op Types.Xor 0b110 0b101);
  check "min" 3 (Types.eval_alu_op Types.Min 3 4);
  check "max" 4 (Types.eval_alu_op Types.Max 3 4)

let test_shifts () =
  check "shl" 24 (Types.eval_alu_op Types.Shl 3 3);
  check "shr" 3 (Types.eval_alu_op Types.Shr 24 3);
  check "ashr positive" 3 (Types.eval_alu_op Types.Ashr 24 3);
  check "ashr negative" (-4) (Types.eval_alu_op Types.Ashr (-13) 2);
  check "shl clamps negative amount" 5 (Types.eval_alu_op Types.Shl 5 (-3));
  check "shl clamps huge amount" (5 lsl 62) (Types.eval_alu_op Types.Shl 5 1000)

let test_comparisons () =
  check "lt true" 1 (Types.eval_alu_op Types.Lt 1 2);
  check "lt false" 0 (Types.eval_alu_op Types.Lt 2 1);
  check "le equal" 1 (Types.eval_alu_op Types.Le 2 2);
  check "eq" 1 (Types.eval_alu_op Types.Eq 5 5);
  check "ne" 1 (Types.eval_alu_op Types.Ne 5 6);
  check "gt" 1 (Types.eval_alu_op Types.Gt 3 2);
  check "ge" 0 (Types.eval_alu_op Types.Ge 1 2)

let test_unary () =
  check "neg" (-5) (Types.eval_un_op Types.Neg 5);
  check "not" (-1) (Types.eval_un_op Types.Not 0);
  check "abs negative" 5 (Types.eval_un_op Types.Abs (-5));
  check "abs positive" 5 (Types.eval_un_op Types.Abs 5)

let test_names () =
  Alcotest.(check string) "alu name" "add" (Types.string_of_alu_op Types.Add);
  Alcotest.(check string) "un name" "abs" (Types.string_of_un_op Types.Abs);
  Alcotest.(check string) "class name" "mul" (Types.string_of_op_class Types.Class_mul);
  Alcotest.(check int) "all alu ops" 16 (List.length Types.all_alu_ops);
  Alcotest.(check int) "all un ops" 3 (List.length Types.all_un_ops)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "names" `Quick test_names;
  ]
