(* Unit tests for configuration bit-stream generation. *)

module Fpga = Hypar_finegrain.Fpga
module Bitstream = Hypar_finegrain.Bitstream
module Temporal = Hypar_finegrain.Temporal
module Ir = Hypar_ir

let fpga = Fpga.make ~area:1500 ()
let device = Bitstream.device_of_fpga fpga

let test_device_geometry () =
  Alcotest.(check int) "375 CLBs at 4 units each" 375 device.Bitstream.clbs;
  Alcotest.(check int) "24 columns of 16" 24 device.Bitstream.columns

let test_full_stream_constant_size () =
  (* the paper's full-reconfiguration model: size independent of content *)
  let s1 = Bitstream.generate_full device ~op_areas:[ 16 ] in
  let s2 = Bitstream.generate_full device ~op_areas:[ 16; 64; 128; 32 ] in
  Alcotest.(check int) "same bit count" s1.Bitstream.bit_count s2.Bitstream.bit_count;
  Alcotest.(check int) "covers every column" device.Bitstream.columns
    s1.Bitstream.columns_used;
  Alcotest.(check bool) "streams differ in content" true
    (s1.Bitstream.words <> s2.Bitstream.words)

let test_partial_stream_grows_with_area () =
  let small = Bitstream.generate device ~op_areas:[ 16 ] in
  let large = Bitstream.generate device ~op_areas:[ 400; 400; 400 ] in
  Alcotest.(check bool) "bigger partition, longer stream" true
    (large.Bitstream.bit_count > small.Bitstream.bit_count);
  Alcotest.(check bool) "partial smaller than full" true
    (large.Bitstream.bit_count
    <= (Bitstream.generate_full device ~op_areas:[ 16 ]).Bitstream.bit_count)

let test_reconfig_cycles () =
  let s = Bitstream.generate_full device ~op_areas:[ 16 ] in
  let expected =
    (s.Bitstream.bit_count + 63) / 64
  in
  Alcotest.(check int) "port-width division" expected (Bitstream.reconfig_cycles s)

let test_crc_detects_corruption () =
  let s = Bitstream.generate device ~op_areas:[ 64; 64 ] in
  Alcotest.(check bool) "fresh stream verifies" true (Bitstream.verify s);
  let corrupted = { s with Bitstream.words = Array.copy s.Bitstream.words } in
  corrupted.Bitstream.words.(0) <- corrupted.Bitstream.words.(0) lxor 0x0100;
  Alcotest.(check bool) "bit flip detected" false (Bitstream.verify corrupted)

let test_crc_known_value () =
  (* CRC-16/CCITT of an empty message is the initial value *)
  Alcotest.(check int) "empty payload" 0xFFFF (Bitstream.crc16 [||]);
  (* deterministic: same payload, same CRC *)
  let words = [| 1; 2; 3; 0xFFFF |] in
  Alcotest.(check int) "stable" (Bitstream.crc16 words) (Bitstream.crc16 words)

let test_oversized_partition_rejected () =
  (* a single oversized op is clamped to the whole device (mirroring the
     Figure-3 behaviour)... *)
  let s = Bitstream.generate device ~op_areas:[ 3000 ] in
  Alcotest.(check int) "clamped to the device" device.Bitstream.clbs
    s.Bitstream.clbs_used;
  (* ...but a partition that genuinely exceeds the device is rejected *)
  match Bitstream.generate device ~op_areas:[ 3000; 16 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection: partition larger than device"

let test_streams_for_real_partitions () =
  (* every temporal partition of the JPEG DCT block yields a valid stream *)
  let jpeg = Hypar_apps.Jpeg.prepared () in
  let dfg = (Ir.Cdfg.info jpeg.Hypar_core.Flow.cdfg 5).Ir.Cdfg.dfg in
  let tp = Temporal.partition ~area:1500 ~size:(Fpga.op_area fpga) dfg in
  List.iter
    (fun (p : Temporal.partition) ->
      let op_areas =
        List.map
          (fun id -> Fpga.op_area fpga (Ir.Dfg.node dfg id).Ir.Dfg.instr)
          p.node_ids
      in
      let s = Bitstream.generate device ~op_areas in
      Alcotest.(check bool) "verifies" true (Bitstream.verify s);
      Alcotest.(check bool) "loads in bounded time" true
        (Bitstream.reconfig_cycles s > 0
        && Bitstream.reconfig_cycles s
           <= Bitstream.reconfig_cycles (Bitstream.generate_full device ~op_areas)))
    tp.Temporal.partitions

let suite =
  [
    Alcotest.test_case "device geometry" `Quick test_device_geometry;
    Alcotest.test_case "full stream constant size" `Quick test_full_stream_constant_size;
    Alcotest.test_case "partial stream grows" `Quick test_partial_stream_grows_with_area;
    Alcotest.test_case "reconfiguration cycles" `Quick test_reconfig_cycles;
    Alcotest.test_case "CRC detects corruption" `Quick test_crc_detects_corruption;
    Alcotest.test_case "CRC known values" `Quick test_crc_known_value;
    Alcotest.test_case "oversized partition" `Quick test_oversized_partition_rejected;
    Alcotest.test_case "real partitions" `Quick test_streams_for_real_partitions;
  ]
