(* Unit tests for the profiling layer (Profile). *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Profile = Hypar_profiling.Profile

let profile src = Profile.collect (Driver.compile_exn src)

let loop_src = {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 25; i = i + 1) {
    s = s + i * i;
  }
  out[0] = s;
}
|}

let test_freq_and_dynamic_ops () =
  let p = profile loop_src in
  let body =
    match List.find_opt (fun (b : Profile.block_stats) -> b.freq = 25) (Array.to_list p.Profile.blocks) with
    | Some b -> b
    | None -> Alcotest.fail "no block with freq 25"
  in
  Alcotest.(check int) "dynamic = freq * static" (25 * body.static_ops)
    body.dynamic_ops;
  Alcotest.(check int) "loop depth 1" 1 body.loop_depth

let test_hottest_ordering () =
  let p = profile loop_src in
  let hottest = Profile.hottest p in
  let rec decreasing = function
    | (a : Profile.block_stats) :: (b :: _ as rest) ->
      a.dynamic_ops >= b.dynamic_ops && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by dynamic ops" true (decreasing hottest);
  let top2 = Profile.hottest ~limit:2 p in
  Alcotest.(check int) "limit respected" 2 (List.length top2)

let test_freq_accessor () =
  let p = profile loop_src in
  Alcotest.(check int) "entry runs once" 1 (Profile.freq p 0);
  Alcotest.(check int) "out of range is 0" 0 (Profile.freq p 999)

let test_edge_accessor () =
  let p = profile loop_src in
  let total_edges =
    List.fold_left (fun acc (_, c) -> acc + c) 0 p.Profile.edges
  in
  Alcotest.(check bool) "edges recorded" true (total_edges > 0);
  Alcotest.(check int) "missing edge is 0" 0 (Profile.edge_freq p 500 501)

let test_ofdm_expected_frequencies () =
  (* structural facts about the OFDM profile that mirror the paper's
     workload: 6 symbols, 64-sample clears, 48-carrier mapping, 1152
     butterflies (6 symbols x 6 stages x 32), 96 cyclic-prefix copies. *)
  let p = (Hypar_apps.Ofdm.prepared ()).Hypar_core.Flow.profile in
  let freqs = Array.to_list (Array.map (fun (b : Profile.block_stats) -> b.freq) p.Profile.blocks) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "some block has freq %d" expected)
        true
        (List.mem expected freqs))
    [ 6; 384; 288; 1152; 96 ]

let test_jpeg_expected_frequencies () =
  (* 1024 blocks, 65536 pixel-level iterations, 8192 DCT row passes. *)
  let p = (Hypar_apps.Jpeg.prepared ()).Hypar_core.Flow.profile in
  let freqs = Array.to_list (Array.map (fun (b : Profile.block_stats) -> b.freq) p.Profile.blocks) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "some block has freq %d" expected)
        true
        (List.mem expected freqs))
    [ 1024; 65536; 8192 ]

let suite =
  [
    Alcotest.test_case "freq and dynamic ops" `Quick test_freq_and_dynamic_ops;
    Alcotest.test_case "hottest ordering" `Quick test_hottest_ordering;
    Alcotest.test_case "freq accessor" `Quick test_freq_accessor;
    Alcotest.test_case "edge accessor" `Quick test_edge_accessor;
    Alcotest.test_case "OFDM frequencies" `Quick test_ofdm_expected_frequencies;
    Alcotest.test_case "JPEG frequencies" `Quick test_jpeg_expected_frequencies;
  ]
