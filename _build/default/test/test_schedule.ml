(* Unit tests for the CGC list scheduler: chaining, resource bounds,
   memory ports and rejection of divisions. *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Schedule = Hypar_coarsegrain.Schedule

let cgc2 = Cgc.two_by_two 2

let test_multiply_add_chains () =
  (* t = a*b; u = t+c — the paper's flagship single-cycle pattern *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let a = Ir.Builder.fresh_var b "a" in
        let c = Ir.Builder.fresh_var b "c" in
        let t = Ir.Builder.mul b "t" (Ir.Builder.var a) (Ir.Builder.var a) in
        ignore (Ir.Builder.bin b Ir.Types.Add "u" (Ir.Builder.var t) (Ir.Builder.var c)))
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check int) "multiply-add in one cycle" 1 s.Schedule.makespan;
  Alcotest.(check bool) "valid" true (Schedule.is_valid cgc2 dfg s);
  let p0 = s.Schedule.placements.(0) and p1 = s.Schedule.placements.(1) in
  Alcotest.(check int) "same chain" p0.Schedule.chain p1.Schedule.chain;
  Alcotest.(check int) "depths 1 then 2" 1 p0.Schedule.depth;
  Alcotest.(check int) "depth 2" 2 p1.Schedule.depth

let test_chain_depth_limited () =
  (* a 3-deep dependent chain cannot fit one cycle on 2-row CGCs *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let a = Ir.Builder.fresh_var b "a" in
        let t = Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var a) (Ir.Builder.imm 1) in
        let u = Ir.Builder.bin b Ir.Types.Add "u" (Ir.Builder.var t) (Ir.Builder.imm 2) in
        ignore (Ir.Builder.bin b Ir.Types.Add "v" (Ir.Builder.var u) (Ir.Builder.imm 3)))
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check int) "2 cycles for depth 3" 2 s.Schedule.makespan;
  Alcotest.(check bool) "valid" true (Schedule.is_valid cgc2 dfg s)

let test_chain_capacity_limited () =
  (* 9 independent ALU ops on two 2x2 CGCs (8 slots/cycle) need 2 cycles *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        for _ = 1 to 9 do
          ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %d >= 2" s.Schedule.makespan)
    true
    (s.Schedule.makespan >= 2);
  Alcotest.(check bool) "valid" true (Schedule.is_valid cgc2 dfg s);
  (* chains per cycle bounded by 4 *)
  for c = 1 to s.Schedule.makespan do
    Alcotest.(check bool) "chain bound" true (Schedule.chains_in_cycle s c <= Cgc.chains cgc2)
  done

let test_more_cgcs_help_wide_dfgs () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        for _ = 1 to 24 do
          ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let m k = (Schedule.schedule (Cgc.two_by_two k) dfg).Schedule.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "three CGCs at least as fast (%d vs %d)" (m 3) (m 2))
    true
    (m 3 <= m 2);
  Alcotest.(check int) "two 2x2: 24 ops / 8 slots" 3 (m 2);
  Alcotest.(check int) "three 2x2: 24 ops / 12 slots" 2 (m 3)

let test_memory_ports () =
  (* 4 independent loads on 2 ports take 2 cycles *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        for i = 0 to 3 do
          ignore (Ir.Builder.load b "t" ~arr:"m" (Ir.Builder.imm i))
        done)
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check int) "2 cycles on 2 ports" 2 s.Schedule.makespan;
  let one_port = Cgc.make ~mem_ports:1 ~cgcs:2 ~rows:2 ~cols:2 () in
  let s1 = Schedule.schedule one_port dfg in
  Alcotest.(check int) "4 cycles on 1 port" 4 s1.Schedule.makespan

let test_moves_are_free () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let t = Ir.Builder.mov b "t" (Ir.Builder.imm 3) in
        let u = Ir.Builder.mov b "u" (Ir.Builder.var t) in
        ignore (Ir.Builder.bin b Ir.Types.Add "v" (Ir.Builder.var u) (Ir.Builder.imm 1)))
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check int) "only the add takes a cycle" 1 s.Schedule.makespan;
  Alcotest.(check int) "mov placed at cycle 0" 0 s.Schedule.placements.(0).Schedule.cycle

let test_division_unsupported () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        Ir.Builder.emit b
          (Ir.Instr.Div { dst = Ir.Builder.fresh_var b "q"; a = Var x; b = Imm 2 }))
  in
  Alcotest.(check bool) "supported is false" false (Schedule.supported dfg);
  match Schedule.schedule cgc2 dfg with
  | exception Schedule.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_dependences_across_cycles () =
  (* load -> mul -> store must strictly serialise (no chaining through
     memory ops) *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let t = Ir.Builder.load b "t" ~arr:"m" (Ir.Builder.imm 0) in
        let u = Ir.Builder.mul b "u" (Ir.Builder.var t) (Ir.Builder.var t) in
        Ir.Builder.store b ~arr:"m" (Ir.Builder.imm 1) (Ir.Builder.var u))
  in
  let s = Schedule.schedule cgc2 dfg in
  Alcotest.(check int) "3 cycles" 3 s.Schedule.makespan;
  Alcotest.(check bool) "valid" true (Schedule.is_valid cgc2 dfg s)

let test_random_dfgs_valid () =
  for seed = 1 to 10 do
    let dfg = Hypar_apps.Synth.random_dfg ~seed ~nodes:80 () in
    if Schedule.supported dfg then begin
      let s = Schedule.schedule cgc2 dfg in
      if not (Schedule.is_valid cgc2 dfg s) then
        Alcotest.failf "invalid schedule for seed %d" seed;
      (* resource lower bounds: node ops per slot, memory ops per port *)
      let node_ops = ref 0 and mem_ops = ref 0 in
      List.iter
        (fun (nd : Ir.Dfg.node) ->
          match Ir.Instr.op_class nd.instr with
          | Ir.Types.Class_mem -> incr mem_ops
          | Ir.Types.Class_move -> ()
          | Ir.Types.Class_alu | Ir.Types.Class_mul | Ir.Types.Class_div ->
            incr node_ops)
        (Ir.Dfg.nodes dfg);
      let ceil_div a b = (a + b - 1) / b in
      let bound =
        max
          (ceil_div !node_ops (Cgc.node_slots cgc2))
          (ceil_div !mem_ops cgc2.Cgc.mem_ports)
      in
      if s.Schedule.makespan < bound then
        Alcotest.failf "makespan below resource bound for seed %d" seed
    end
  done

let suite =
  [
    Alcotest.test_case "multiply-add chains" `Quick test_multiply_add_chains;
    Alcotest.test_case "chain depth limit" `Quick test_chain_depth_limited;
    Alcotest.test_case "chain capacity limit" `Quick test_chain_capacity_limited;
    Alcotest.test_case "more CGCs help wide DFGs" `Quick test_more_cgcs_help_wide_dfgs;
    Alcotest.test_case "memory ports" `Quick test_memory_ports;
    Alcotest.test_case "moves are free" `Quick test_moves_are_free;
    Alcotest.test_case "division unsupported" `Quick test_division_unsupported;
    Alcotest.test_case "memory serialisation" `Quick test_dependences_across_cycles;
    Alcotest.test_case "random DFGs valid" `Quick test_random_dfgs_valid;
  ]

let test_priority_orders_all_valid () =
  let dfg = Hypar_apps.Synth.random_dfg ~seed:17 ~nodes:90 () in
  QCheck.assume (Schedule.supported dfg);
  List.iter
    (fun priority ->
      let s = Schedule.schedule ~priority cgc2 dfg in
      if not (Schedule.is_valid cgc2 dfg s) then
        Alcotest.fail "priority variant produced invalid schedule")
    [ `Alap; `Asap; `Program ]

let test_alap_no_worse_on_critical_dfg () =
  (* a DFG with one long chain and many leaves: ALAP priority starts the
     chain first and wins (or ties) *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        let prev = ref (Ir.Builder.var x) in
        for _ = 1 to 10 do
          let v = Ir.Builder.mul b "c" !prev !prev in
          prev := Ir.Builder.var v
        done;
        for _ = 1 to 20 do
          ignore (Ir.Builder.bin b Ir.Types.Add "leaf" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let m priority = (Schedule.schedule ~priority cgc2 dfg).Schedule.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "ALAP %d <= program %d" (m `Alap) (m `Program))
    true
    (m `Alap <= m `Program)

let priority_suite =
  [
    Alcotest.test_case "priority variants valid" `Quick test_priority_orders_all_valid;
    Alcotest.test_case "ALAP wins on critical DFGs" `Quick test_alap_no_worse_on_critical_dfg;
  ]

let suite = suite @ priority_suite
