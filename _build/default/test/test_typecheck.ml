(* Unit tests for the Mini-C type checker. *)

module Parser = Hypar_minic.Parser
module Typecheck = Hypar_minic.Typecheck

let ok src =
  match Typecheck.check (Parser.parse_program src) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e.Typecheck.msg

let rejects ~substr src =
  match Typecheck.check (Parser.parse_program src) with
  | Ok () -> Alcotest.failf "expected rejection (%s)" substr
  | Error e ->
    let lower = String.lowercase_ascii e.Typecheck.msg in
    if
      not
        (String.length substr = 0
        || Str_contains.contains lower (String.lowercase_ascii substr))
    then Alcotest.failf "wrong error %S (wanted %S)" e.Typecheck.msg substr

let test_accepts () =
  ok "void main() { }";
  ok "int g = 3;\nvoid main() { g = g + 1; }";
  ok {|
int buf[4];
int f(int x) { return x * 2; }
void main() { buf[0] = f(21); }
|};
  ok {|
int buf[4];
void fill(int b[], int v) { b[0] = v; }
void main() { fill(buf, 9); }
|};
  ok "void main() { int x = max(1, min(2, 3)) + abs(0 - 4); x = x; }"

let test_scoping () =
  rejects ~substr:"undeclared" "void main() { x = 1; }";
  rejects ~substr:"undeclared" "void main() { int y = x + 1; }";
  rejects ~substr:"redeclared" "void main() { int x; int x; }";
  ok "void main() { int x = 1; if (x) { int y = 2; x = y; } }";
  (* block-scoped variable not visible outside *)
  rejects ~substr:"undeclared" "void main() { if (1) { int y = 2; y = y; } y = 3; }"

let test_arrays () =
  rejects ~substr:"array" "int a[4];\nvoid main() { a = 3; }";
  rejects ~substr:"indexed" "void main() { int s = 0; s[0] = 1; }";
  rejects ~substr:"const" "const int t[1] = { 1 };\nvoid main() { t[0] = 2; }";
  rejects ~substr:"initialiser" "const int t[4];\nvoid main() { }";
  rejects ~substr:"size" "int t[0];\nvoid main() { }";
  rejects ~substr:"" "int t[2] = { 1, 2, 3 };\nvoid main() { }";
  ok "const int t[4] = { 1, 2 };\nvoid main() { int x = t[3]; x = x; }"

let test_functions () =
  rejects ~substr:"undefined" "void main() { ghost(); }";
  rejects ~substr:"argument" "int f(int a) { return a; }\nvoid main() { int x = f(); x = x; }";
  rejects ~substr:"void" "void f() { }\nvoid main() { int x = f(); x = x; }";
  rejects ~substr:"return" "int f(int a) { a = a + 1; }\nvoid main() { int x = f(1); x = x; }";
  rejects ~substr:"return" "void f() { return 3; }\nvoid main() { f(); }";
  rejects ~substr:"multiple" {|
int f(int a) {
  if (a) { return 1; }
  return 2;
}
void main() { int x = f(1); x = x; }
|};
  rejects ~substr:"last" {|
int f(int a) {
  return 1;
  a = 2;
}
void main() { int x = f(1); x = x; }
|};
  rejects ~substr:"array" "int f(int b[]) { return b[0]; }\nvoid main() { int x = f(3); x = x; }";
  rejects ~substr:"bare" "int buf[2];\nint f(int b[]) { return b[0]; }\nvoid main() { int x = f(buf[0]); x = x; }"

let test_main_requirements () =
  rejects ~substr:"main" "int f(int a) { return a; }";
  rejects ~substr:"parameters" "void main(int argc) { }"

let test_builtins () =
  rejects ~substr:"builtin" "void main() { int x = min(1); x = x; }";
  rejects ~substr:"builtin" "void main() { int x = abs(1, 2); x = x; }";
  rejects ~substr:"shadows" "int min(int a, int b) { return a; }\nvoid main() { }"

let test_duplicates () =
  rejects ~substr:"duplicate" "int g;\nint g;\nvoid main() { }";
  rejects ~substr:"duplicate" "void f() { }\nvoid f() { }\nvoid main() { }";
  rejects ~substr:"shadows" "int f;\nvoid f() { }\nvoid main() { }"

let suite =
  [
    Alcotest.test_case "accepts valid programs" `Quick test_accepts;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "main requirements" `Quick test_main_requirements;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
  ]
