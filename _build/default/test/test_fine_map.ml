(* Unit tests for the fine-grain cycle model (Eq. 4 and the per-level
   group cost). *)

module Ir = Hypar_ir
module Fpga = Hypar_finegrain.Fpga
module Fine_map = Hypar_finegrain.Fine_map

let big_fpga = Fpga.make ~area:1_000_000 ~reconfig_cycles:10 ()

let test_chain_cycles () =
  (* a 4-deep chain of ALU ops on one partition: 4 level groups x 1 cycle *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let prev = ref (Ir.Builder.imm 1) in
        for _ = 1 to 4 do
          let v = Ir.Builder.bin b Ir.Types.Add "t" !prev (Ir.Builder.imm 1) in
          prev := Ir.Builder.var v
        done)
  in
  let m = Fine_map.map_dfg big_fpga dfg in
  Alcotest.(check int) "1 partition" 1 m.Fine_map.partition_count;
  Alcotest.(check int) "4 compute cycles" 4 m.Fine_map.compute_cycles;
  Alcotest.(check int) "reconfig charged once" 10 m.Fine_map.reconfig_cycles;
  Alcotest.(check int) "total" 14 m.Fine_map.cycles_per_iteration

let test_parallel_ops_share_cycle () =
  (* 6 independent ALU ops in one partition: a single level group *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        for _ = 1 to 6 do
          ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let m = Fine_map.map_dfg big_fpga dfg in
  Alcotest.(check int) "one cycle for the level" 1 m.Fine_map.compute_cycles

let test_mul_dominates_level () =
  (* a level mixing ALU and MUL costs the MUL delay *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1));
        ignore (Ir.Builder.mul b "u" (Ir.Builder.var x) (Ir.Builder.var x)))
  in
  let m = Fine_map.map_dfg big_fpga dfg in
  Alcotest.(check int) "mul delay (2) dominates" 2 m.Fine_map.compute_cycles

let test_partition_split_costs_more () =
  (* the same level split across two partitions costs two groups *)
  let wide =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        for _ = 1 to 8 do
          ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let small = Fpga.make ~area:256 ~reconfig_cycles:10 () in
  let m_small = Fine_map.map_dfg small wide in
  let m_big = Fine_map.map_dfg big_fpga wide in
  Alcotest.(check bool) "small device has more partitions" true
    (m_small.Fine_map.partition_count > m_big.Fine_map.partition_count);
  Alcotest.(check bool) "small device needs more cycles" true
    (m_small.Fine_map.cycles_per_iteration > m_big.Fine_map.cycles_per_iteration)

let test_app_cycles_eq4 () =
  let cdfg =
    Hypar_minic.Driver.compile_exn {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 50; i = i + 1) { s = s + i; }
  out[0] = s;
}
|}
  in
  let freqs = (Hypar_profiling.Interp.run cdfg).Hypar_profiling.Interp.exec_freq in
  let freq i = freqs.(i) in
  let total =
    Fine_map.app_cycles big_fpga cdfg ~freq ~on_fpga:(fun _ -> true)
  in
  (* Eq. 4 check: recompute by hand from the per-block mappings *)
  let expected =
    List.fold_left
      (fun acc i ->
        let m = Fine_map.map_block big_fpga cdfg i in
        acc + (m.Fine_map.cycles_per_iteration * freq i))
      0
      (Ir.Cdfg.block_ids cdfg)
  in
  Alcotest.(check int) "Eq. 4" expected total;
  let nothing = Fine_map.app_cycles big_fpga cdfg ~freq ~on_fpga:(fun _ -> false) in
  Alcotest.(check int) "empty selection is 0 cycles" 0 nothing

let suite =
  [
    Alcotest.test_case "chain cycles" `Quick test_chain_cycles;
    Alcotest.test_case "parallel ops share a cycle" `Quick test_parallel_ops_share_cycle;
    Alcotest.test_case "mul dominates its level" `Quick test_mul_dominates_level;
    Alcotest.test_case "partition split costs more" `Quick test_partition_split_costs_more;
    Alcotest.test_case "Eq. 4 application cycles" `Quick test_app_cycles_eq4;
  ]
