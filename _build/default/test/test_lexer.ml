(* Unit tests for the Mini-C lexer. *)

module Token = Hypar_minic.Token
module Lexer = Hypar_minic.Lexer

let toks src = List.map (fun (t : Token.located) -> t.tok) (Lexer.tokenize src)

let token = Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.describe t)) ( = )

let test_keywords_and_idents () =
  Alcotest.(check (list token)) "keywords"
    [ Token.Kw_int; Token.Ident "x"; Token.Assign; Token.Int_lit 1; Token.Semi; Token.Eof ]
    (toks "int x = 1;");
  Alcotest.(check (list token)) "int16 is int"
    [ Token.Kw_int; Token.Eof ] (toks "int16");
  Alcotest.(check (list token)) "widths"
    [ Token.Kw_int8; Token.Kw_int32; Token.Kw_void; Token.Kw_const; Token.Eof ]
    (toks "int8 int32 void const");
  Alcotest.(check (list token)) "ident containing keyword"
    [ Token.Ident "integer"; Token.Eof ] (toks "integer")

let test_numbers () =
  Alcotest.(check (list token)) "decimal" [ Token.Int_lit 12345; Token.Eof ] (toks "12345");
  Alcotest.(check (list token)) "hex" [ Token.Int_lit 255; Token.Eof ] (toks "0xFF");
  Alcotest.(check (list token)) "hex lowercase" [ Token.Int_lit 48879; Token.Eof ] (toks "0xbeef");
  Alcotest.(check (list token)) "zero" [ Token.Int_lit 0; Token.Eof ] (toks "0")

let test_operators () =
  Alcotest.(check (list token)) "two-char operators"
    [ Token.Shl; Token.Shr; Token.Le; Token.Ge; Token.Eq_eq; Token.Bang_eq;
      Token.Amp_amp; Token.Bar_bar; Token.Eof ]
    (toks "<< >> <= >= == != && ||");
  Alcotest.(check (list token)) "one-char operators"
    [ Token.Plus; Token.Minus; Token.Star; Token.Slash; Token.Percent;
      Token.Amp; Token.Bar; Token.Caret; Token.Tilde; Token.Bang; Token.Lt;
      Token.Gt; Token.Question; Token.Colon; Token.Eof ]
    (toks "+ - * / % & | ^ ~ ! < > ? :");
  Alcotest.(check (list token)) "adjacent < <" [ Token.Shl; Token.Lt; Token.Eof ]
    (toks "<<<")

let test_comments () =
  Alcotest.(check (list token)) "line comment"
    [ Token.Int_lit 1; Token.Int_lit 2; Token.Eof ]
    (toks "1 // comment here\n2");
  Alcotest.(check (list token)) "block comment"
    [ Token.Int_lit 1; Token.Int_lit 2; Token.Eof ]
    (toks "1 /* multi\nline */ 2");
  Alcotest.(check (list token)) "nested stars" [ Token.Int_lit 3; Token.Eof ]
    (toks "/* ** * */ 3")

let test_positions () =
  match Lexer.tokenize "x\n  y" with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "x line" 1 a.Token.pos.line;
    Alcotest.(check int) "x col" 1 a.Token.pos.col;
    Alcotest.(check int) "y line" 2 b.Token.pos.line;
    Alcotest.(check int) "y col" 3 b.Token.pos.col
  | _ -> Alcotest.fail "unexpected token count"

let test_errors () =
  let raises src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  raises "@";
  raises "/* unterminated";
  raises "$"

let test_empty () =
  Alcotest.(check (list token)) "only eof" [ Token.Eof ] (toks "");
  Alcotest.(check (list token)) "whitespace only" [ Token.Eof ] (toks "  \n\t ")

let suite =
  [
    Alcotest.test_case "keywords and identifiers" `Quick test_keywords_and_idents;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "empty input" `Quick test_empty;
  ]
