(* Unit tests for the energy extension (the paper's future work). *)

module Ir = Hypar_ir
module Energy = Hypar_core.Energy
module Platform = Hypar_core.Platform
module Flow = Hypar_core.Flow
module Fpga = Hypar_finegrain.Fpga
module Cgc = Hypar_coarsegrain.Cgc

let platform () =
  Platform.make ~fpga:(Fpga.make ~area:1500 ()) ~cgc:(Cgc.two_by_two 2) ()

let prepared = lazy (Flow.prepare ~name:"hot" {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 5000; i = i + 1) {
    s = s + i * i;
  }
  out[0] = s;
}
|})

let test_default_model_sane () =
  let m = Energy.default in
  Alcotest.(check bool) "CGC ops cheaper than FPGA ops" true
    (m.Energy.cgc_op.Energy.alu < m.Energy.fpga_op.Energy.alu
    && m.Energy.cgc_op.Energy.mul < m.Energy.fpga_op.Energy.mul)

let test_block_energy_positive () =
  let p = Lazy.force prepared in
  let cdfg = p.Flow.cdfg in
  List.iter
    (fun i ->
      let fpga_e = Energy.block_energy_fpga Energy.default (platform ()) cdfg i in
      Alcotest.(check bool) "fpga energy includes reconfiguration" true
        (fpga_e >= Energy.default.Energy.reconfig))
    (Ir.Cdfg.block_ids cdfg)

let test_moving_kernels_saves_energy () =
  let p = Lazy.force prepared in
  let cdfg = p.Flow.cdfg in
  let freqs = p.Flow.interp.Hypar_profiling.Interp.exec_freq in
  let freq i = freqs.(i) in
  let body =
    match
      List.find_opt
        (fun i -> (Ir.Cdfg.info cdfg i).Ir.Cdfg.loop_depth > 0)
        (Ir.Cdfg.block_ids cdfg)
    with
    | Some i -> i
    | None -> Alcotest.fail "no loop"
  in
  let base = Energy.app_energy Energy.default (platform ()) cdfg ~freq ~moved:[] in
  let moved = Energy.app_energy Energy.default (platform ()) cdfg ~freq ~moved:[ body ] in
  Alcotest.(check bool)
    (Printf.sprintf "energy drops (%d -> %d)" base moved)
    true (moved < base)

let test_partition_meets_budget () =
  let p = Lazy.force prepared in
  let base =
    (Energy.partition Energy.default (platform ()) ~energy_budget:0 p.Flow.cdfg
       p.Flow.profile)
      .Energy.initial_energy
  in
  let budget = base / 2 in
  let r =
    Energy.partition Energy.default (platform ()) ~energy_budget:budget
      p.Flow.cdfg p.Flow.profile
  in
  Alcotest.(check bool) "feasible" true r.Energy.feasible;
  Alcotest.(check bool) "final within budget" true (r.Energy.final_energy <= budget);
  Alcotest.(check bool) "kernels were moved" true (r.Energy.moved <> []);
  Alcotest.(check bool) "reduction positive" true (Energy.reduction_percent r > 0.0)

let test_partition_trivially_met () =
  let p = Lazy.force prepared in
  let r =
    Energy.partition Energy.default (platform ()) ~energy_budget:max_int
      p.Flow.cdfg p.Flow.profile
  in
  Alcotest.(check (list int)) "nothing moved" [] r.Energy.moved;
  Alcotest.(check bool) "feasible" true r.Energy.feasible

let test_partition_infeasible () =
  let p = Lazy.force prepared in
  let r =
    Energy.partition Energy.default (platform ()) ~energy_budget:1 p.Flow.cdfg
      p.Flow.profile
  in
  Alcotest.(check bool) "budget 1 infeasible" false r.Energy.feasible;
  Alcotest.(check bool) "still improved" true
    (r.Energy.final_energy <= r.Energy.initial_energy)

let suite =
  [
    Alcotest.test_case "default model" `Quick test_default_model_sane;
    Alcotest.test_case "block energies" `Quick test_block_energy_positive;
    Alcotest.test_case "moving kernels saves energy" `Quick test_moving_kernels_saves_energy;
    Alcotest.test_case "meets budget" `Quick test_partition_meets_budget;
    Alcotest.test_case "trivially met" `Quick test_partition_trivially_met;
    Alcotest.test_case "infeasible" `Quick test_partition_infeasible;
  ]
