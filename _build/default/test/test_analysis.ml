(* Unit tests for the analysis step: weights, Eq. 1, kernel extraction and
   ordering, Table-1 rendering. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Profile = Hypar_profiling.Profile
module Weights = Hypar_analysis.Weights
module Kernel = Hypar_analysis.Kernel
module Table = Hypar_analysis.Table

let analyse ?weights src =
  let cdfg = Driver.compile_exn src in
  let profile = Profile.collect cdfg in
  (cdfg, Kernel.analyse ?weights cdfg profile)

let two_loops_src = {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    s = s + i * i * i;
  }
  int j;
  for (j = 0; j < 10; j = j + 1) {
    s = s + j;
  }
  out[0] = s;
}
|}

let test_weight_model () =
  let w = Weights.paper in
  Alcotest.(check int) "alu weight" 1 w.Weights.alu;
  Alcotest.(check int) "mul weight" 2 w.Weights.mul;
  let custom = Weights.make ~mul:5 () in
  Alcotest.(check int) "override mul" 5 custom.Weights.mul;
  Alcotest.(check int) "alu inherited" 1 custom.Weights.alu

let test_bb_weight () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        let t = Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1) in
        let u = Ir.Builder.mul b "u" (Ir.Builder.var t) (Ir.Builder.var t) in
        ignore (Ir.Builder.load b "v" ~arr:"m" (Ir.Builder.var u)))
  in
  (* add(1) + mul(2) + load(1) = 4 *)
  Alcotest.(check int) "weighted sum" 4 (Weights.bb_weight Weights.paper dfg)

let test_eq1_total_weight () =
  let _, analysis = analyse two_loops_src in
  List.iter
    (fun (e : Kernel.entry) ->
      Alcotest.(check int)
        (Printf.sprintf "Eq.1 on BB%d" e.block_id)
        (e.exec_freq * e.bb_weight) e.total_weight)
    analysis.Kernel.kernels

let test_kernel_ordering () =
  let _, analysis = analyse two_loops_src in
  (match analysis.Kernel.kernels with
  | first :: second :: _ ->
    Alcotest.(check bool) "descending order" true
      (first.Kernel.total_weight >= second.Kernel.total_weight);
    Alcotest.(check int) "hot loop runs 100x" 100 first.Kernel.exec_freq
  | _ -> Alcotest.fail "expected at least two kernels");
  let top1 = Kernel.top analysis 1 in
  Alcotest.(check int) "top 1" 1 (List.length top1)

let test_kernels_only_in_loops () =
  let _, analysis = analyse two_loops_src in
  List.iter
    (fun (e : Kernel.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "kernel BB%d is in a loop" e.block_id)
        true (e.loop_depth > 0))
    analysis.Kernel.kernels;
  (* entry block is never a kernel *)
  Alcotest.(check bool) "entry not kernel" false (Kernel.entry analysis 0).Kernel.is_kernel

let test_unexecuted_blocks_excluded () =
  let _, analysis =
    analyse {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 0; i = i + 1) { s = s + 1; }
  int j;
  for (j = 0; j < 3; j = j + 1) { s = s + 1; }
  out[0] = s;
}
|}
  in
  List.iter
    (fun (e : Kernel.entry) ->
      Alcotest.(check bool) "kernels were executed" true (e.exec_freq > 0))
    analysis.Kernel.kernels;
  Alcotest.(check int) "only the executed loop is a kernel" 1
    (List.length analysis.Kernel.kernels)

let test_weights_change_order () =
  (* a mul-heavy small loop vs an alu-heavy big loop: boosting the mul
     weight reorders the kernels *)
  let src = {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 20; i = i + 1) {
    s = s + i * i * i * i * i * i * i * i;
  }
  int j;
  for (j = 0; j < 40; j = j + 1) {
    s = s + j + j + j + j;
  }
  out[0] = s;
}
|} in
  let _, flat = analyse ~weights:(Weights.make ~mul:1 ()) src in
  let _, boosted = analyse ~weights:(Weights.make ~mul:50 ()) src in
  let first (a : Kernel.t) =
    match a.Kernel.kernels with
    | e :: _ -> e.Kernel.exec_freq
    | [] -> Alcotest.fail "no kernels"
  in
  Alcotest.(check int) "flat weights favour the 40x loop" 40 (first flat);
  Alcotest.(check int) "boosted mul favours the 20x loop" 20 (first boosted)

let test_table_rendering () =
  let _, analysis = analyse two_loops_src in
  let table = Table.render ~top:2 ~title:"demo" analysis in
  Alcotest.(check bool) "title present" true (Str_contains.contains table "demo");
  Alcotest.(check bool) "header present" true
    (Str_contains.contains table "Total weight");
  let csv = Table.render_csv ~top:2 analysis in
  Alcotest.(check int) "csv has header + 2 rows" 3
    (List.length (String.split_on_char '\n' (String.trim csv)))

let test_total_application_weight () =
  let _, analysis = analyse two_loops_src in
  let total = Kernel.total_application_weight analysis in
  let sum_kernels =
    List.fold_left (fun acc (e : Kernel.entry) -> acc + e.total_weight) 0
      analysis.Kernel.kernels
  in
  Alcotest.(check bool) "total covers at least the kernels" true
    (total >= sum_kernels)

let suite =
  [
    Alcotest.test_case "weight model" `Quick test_weight_model;
    Alcotest.test_case "bb_weight" `Quick test_bb_weight;
    Alcotest.test_case "Eq.1 total weight" `Quick test_eq1_total_weight;
    Alcotest.test_case "kernel ordering" `Quick test_kernel_ordering;
    Alcotest.test_case "kernels only in loops" `Quick test_kernels_only_in_loops;
    Alcotest.test_case "unexecuted excluded" `Quick test_unexecuted_blocks_excluded;
    Alcotest.test_case "weights change order" `Quick test_weights_change_order;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "total application weight" `Quick test_total_application_weight;
  ]
