(* Unit tests for CDFG serialisation. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let roundtrip cdfg = Ir.Serialize.of_string (Ir.Serialize.to_string cdfg)

let blocks_equal c1 c2 =
  Array.to_list (Ir.Cfg.blocks (Ir.Cdfg.cfg c1))
  = Array.to_list (Ir.Cfg.blocks (Ir.Cdfg.cfg c2))

let arrays_equal c1 c2 = Ir.Cdfg.arrays c1 = Ir.Cdfg.arrays c2

let test_roundtrip_small () =
  let cdfg = Driver.compile_exn {|
const int rom[3] = { 5, -6, 7 };
int out[2];
int g = 9;
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 3; i++) {
    s += rom[i] * g;
  }
  out[0] = s;
  out[1] = s < 0 ? 0 - s : s;
}
|} in
  let back = roundtrip cdfg in
  Alcotest.(check bool) "blocks identical" true (blocks_equal cdfg back);
  Alcotest.(check bool) "arrays identical" true (arrays_equal cdfg back);
  Alcotest.(check string) "name preserved" (Ir.Cdfg.name cdfg) (Ir.Cdfg.name back)

let test_roundtrip_preserves_semantics () =
  let cdfg = Driver.compile_exn (Hypar_apps.Synth.random_structured_main ~seed:77 ~depth:3 ()) in
  let back = roundtrip cdfg in
  let out c = (Interp.array_exn (Interp.run c) "out").(0) in
  Alcotest.(check int) "same result after reload" (out cdfg) (out back)

let test_roundtrip_apps () =
  List.iter
    (fun (name, cdfg) ->
      let back = roundtrip cdfg in
      Alcotest.(check bool) (name ^ " blocks") true (blocks_equal cdfg back);
      Alcotest.(check bool) (name ^ " arrays") true (arrays_equal cdfg back))
    [
      ("ofdm", (Hypar_apps.Ofdm.prepared ()).Hypar_core.Flow.cdfg);
      ("sobel", (Hypar_apps.Sobel.prepared ()).Hypar_core.Flow.cdfg);
    ]

let test_special_label_characters () =
  (* labels and names with quotes/backslashes survive *)
  let b =
    Ir.Block.make ~label:{|odd "label"\x|} ~instrs:[]
      ~term:(Ir.Block.Return None)
  in
  let cdfg = Ir.Cdfg.make ~name:{|we"ird|} ~arrays:[] (Ir.Cfg.of_blocks [ b ]) in
  let back = roundtrip cdfg in
  Alcotest.(check bool) "escaped round trip" true (blocks_equal cdfg back)

let test_parse_errors () =
  let raises s =
    match Ir.Serialize.of_string s with
    | exception Ir.Serialize.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  raises "";
  raises "(cdfg";
  raises "(not-a-cdfg)";
  raises "(cdfg \"x\" (arrays) (blocks (block)))";
  raises "(cdfg \"x\" (arrays (array)) (blocks))"

let test_all_instruction_forms () =
  (* one of each instruction kind survives the round trip *)
  let b = Ir.Builder.create () in
  Ir.Builder.declare_array ~init:[| 1; 2 |] ~is_const:true b "rom" 2;
  Ir.Builder.declare_array b "ram" 4;
  let x = Ir.Builder.fresh_var b "x" in
  Ir.Builder.emit b (Ir.Instr.Mov { dst = x; src = Imm 3 });
  let a1 = Ir.Builder.bin b Ir.Types.Ashr "a" (Ir.Builder.var x) (Ir.Builder.imm 1) in
  let m = Ir.Builder.mul b "m" (Ir.Builder.var a1) (Ir.Builder.var x) in
  let u = Ir.Builder.un b Ir.Types.Abs "u" (Ir.Builder.var m) in
  Ir.Builder.emit b
    (Ir.Instr.Div { dst = Ir.Builder.fresh_var b "d"; a = Var u; b = Imm 2 });
  Ir.Builder.emit b
    (Ir.Instr.Rem { dst = Ir.Builder.fresh_var b "r"; a = Var u; b = Imm 3 });
  let sel = Ir.Builder.fresh_var b "sel" in
  Ir.Builder.emit b
    (Ir.Instr.Select { dst = sel; cond = Var x; if_true = Var u; if_false = Imm 0 });
  let ld = Ir.Builder.load b "ld" ~arr:"rom" (Ir.Builder.imm 1) in
  Ir.Builder.store b ~arr:"ram" (Ir.Builder.imm 0) (Ir.Builder.var ld);
  Ir.Builder.finish_block b ~label:"entry"
    ~term:(Ir.Block.Branch { cond = Var sel; if_true = "entry"; if_false = "done" });
  Ir.Builder.finish_block b ~label:"done" ~term:(Ir.Block.Return (Some (Imm 0)));
  let cdfg = Ir.Builder.cdfg ~name:"forms" b in
  let back = roundtrip cdfg in
  Alcotest.(check bool) "all forms round trip" true (blocks_equal cdfg back)

let suite =
  [
    Alcotest.test_case "round trip (small)" `Quick test_roundtrip_small;
    Alcotest.test_case "round trip semantics" `Quick test_roundtrip_preserves_semantics;
    Alcotest.test_case "round trip (apps)" `Quick test_roundtrip_apps;
    Alcotest.test_case "special characters" `Quick test_special_label_characters;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "all instruction forms" `Quick test_all_instruction_forms;
  ]
