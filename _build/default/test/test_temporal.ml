(* Unit tests for the Figure-3 temporal partitioning algorithm. *)

module Ir = Hypar_ir
module Fpga = Hypar_finegrain.Fpga
module Temporal = Hypar_finegrain.Temporal

let unit_size _ = 10

let chain nodes =
  Ir.Builder.dfg_of (fun b ->
      let prev = ref (Ir.Builder.imm 1) in
      for _ = 1 to nodes do
        let v = Ir.Builder.bin b Ir.Types.Add "t" !prev (Ir.Builder.imm 1) in
        prev := Ir.Builder.var v
      done)

let wide nodes =
  Ir.Builder.dfg_of (fun b ->
      let x = Ir.Builder.fresh_var b "x" in
      for _ = 1 to nodes do
        ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
      done)

let test_everything_fits () =
  let dfg = chain 5 in
  let tp = Temporal.partition ~area:1000 ~size:unit_size dfg in
  Alcotest.(check int) "single partition" 1 (Temporal.count tp);
  Alcotest.(check bool) "valid" true (Temporal.is_valid dfg tp)

let test_splits_on_area () =
  (* 10 nodes x 10 area, budget 35 -> ceil(100/35) or slightly more *)
  let dfg = chain 10 in
  let tp = Temporal.partition ~area:35 ~size:unit_size dfg in
  Alcotest.(check int) "4 partitions (3 per part)" 4 (Temporal.count tp);
  Alcotest.(check bool) "valid" true (Temporal.is_valid dfg tp);
  List.iter
    (fun (p : Temporal.partition) ->
      Alcotest.(check bool) "area bound respected" true (p.area_used <= 35))
    tp.Temporal.partitions

let test_same_level_splits () =
  (* a wide level also splits, per the paper's inner loop *)
  let dfg = wide 7 in
  let tp = Temporal.partition ~area:30 ~size:unit_size dfg in
  Alcotest.(check int) "7 unit nodes / 3 per partition" 3 (Temporal.count tp);
  Alcotest.(check bool) "valid" true (Temporal.is_valid dfg tp)

let test_oversized_node () =
  let dfg = chain 3 in
  let tp = Temporal.partition ~area:5 ~size:unit_size dfg in
  (* every node exceeds the device: one partition each *)
  Alcotest.(check int) "one partition per node" 3 (Temporal.count tp);
  Alcotest.(check bool) "still valid" true (Temporal.is_valid dfg tp)

let test_empty_dfg () =
  let dfg = Ir.Dfg.of_instrs [] in
  let tp = Temporal.partition ~area:100 ~size:unit_size dfg in
  Alcotest.(check int) "no partitions" 0 (Temporal.count tp)

let test_invalid_area () =
  match Temporal.partition ~area:0 ~size:unit_size (chain 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_monotone_in_area () =
  let dfg = Hypar_apps.Synth.random_dfg ~seed:11 ~nodes:120 () in
  let fpga a = Fpga.make ~area:a () in
  let count a =
    Temporal.count
      (Temporal.partition ~area:a ~size:(Fpga.op_area (fpga a)) dfg)
  in
  let c1 = count 500 and c2 = count 2000 and c3 = count 10000 in
  Alcotest.(check bool)
    (Printf.sprintf "larger area, fewer partitions (%d >= %d >= %d)" c1 c2 c3)
    true
    (c1 >= c2 && c2 >= c3);
  Alcotest.(check bool) "big device has 1 or 2 partitions" true (c3 <= 2)

let test_assignment_covers_all () =
  let dfg = chain 10 in
  let tp = Temporal.partition ~area:35 ~size:unit_size dfg in
  Array.iteri
    (fun i p -> if p < 1 then Alcotest.failf "node %d unassigned" i)
    tp.Temporal.assignment;
  let total_nodes =
    List.fold_left
      (fun acc (p : Temporal.partition) -> acc + List.length p.node_ids)
      0 tp.Temporal.partitions
  in
  Alcotest.(check int) "partitions cover all nodes" 10 total_nodes

let suite =
  [
    Alcotest.test_case "everything fits" `Quick test_everything_fits;
    Alcotest.test_case "splits on area" `Quick test_splits_on_area;
    Alcotest.test_case "same level splits" `Quick test_same_level_splits;
    Alcotest.test_case "oversized node" `Quick test_oversized_node;
    Alcotest.test_case "empty DFG" `Quick test_empty_dfg;
    Alcotest.test_case "invalid area" `Quick test_invalid_area;
    Alcotest.test_case "monotone in area" `Quick test_monotone_in_area;
    Alcotest.test_case "assignment covers all" `Quick test_assignment_covers_all;
  ]
