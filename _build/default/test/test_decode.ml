(* End-to-end decode tests: every encoder's output is decodable and the
   reconstruction quality is what the pipelines promise. *)

module Flow = Hypar_core.Flow
module Interp = Hypar_profiling.Interp
module Ofdm = Hypar_apps.Ofdm
module Jpeg = Hypar_apps.Jpeg
module Adpcm = Hypar_apps.Adpcm
module Decode = Hypar_apps.Decode

let test_ofdm_roundtrip_zero_ber () =
  let inputs = Ofdm.inputs () in
  let sent =
    match List.assoc_opt "bits" inputs with Some b -> b | None -> assert false
  in
  let re, im = Ofdm.golden inputs in
  let received = Decode.ofdm_demodulate ~re ~im in
  Alcotest.(check int) "zero bit errors over 6 symbols" 0
    (Decode.ofdm_bit_errors ~sent ~received)

let test_ofdm_roundtrip_other_seed () =
  let inputs = Ofdm.inputs ~seed:2024 () in
  let sent = List.assoc "bits" inputs in
  let re, im = Ofdm.golden inputs in
  Alcotest.(check int) "zero bit errors (seed 2024)" 0
    (Decode.ofdm_bit_errors ~sent
       ~received:(Decode.ofdm_demodulate ~re ~im))

let test_jpeg_decode_psnr () =
  let inputs = Jpeg.inputs () in
  let original = List.assoc "image" inputs in
  let g = Jpeg.golden inputs in
  let img = Decode.jpeg_decode ~bytes_in:g.Jpeg.bytes ~len:g.Jpeg.len () in
  let p = Decode.psnr original img.Decode.pixels in
  Alcotest.(check bool)
    (Printf.sprintf "PSNR %.1f dB above 24" p)
    true (p > 24.0)

let test_jpeg_decode_flat_image_exact () =
  (* a flat 128 image quantises to all zeros and must reconstruct
     exactly *)
  let flat = Array.make (Jpeg.width * Jpeg.height) 128 in
  let g = Jpeg.golden [ ("image", flat) ] in
  let img = Decode.jpeg_decode ~bytes_in:g.Jpeg.bytes ~len:g.Jpeg.len () in
  Alcotest.(check bool) "exact reconstruction" true (img.Decode.pixels = flat)

let test_jpeg_decode_interpreted_stream () =
  (* decode the *interpreted Mini-C* bitstream, not just the golden one *)
  let prepared = Jpeg.prepared () in
  let g = Jpeg.golden (Jpeg.inputs ()) in
  let got = Interp.array_exn prepared.Flow.interp "out_bytes" in
  let img = Decode.jpeg_decode ~bytes_in:got ~len:g.Jpeg.len () in
  let original = List.assoc "image" (Jpeg.inputs ()) in
  Alcotest.(check bool) "interpreted stream decodes" true
    (Decode.psnr original img.Decode.pixels > 24.0)

let test_psnr_properties () =
  let a = Array.init 64 (fun i -> i * 4) in
  Alcotest.(check bool) "identical images" true (Decode.psnr a a = infinity);
  let b = Array.map (fun v -> min 255 (v + 10)) a in
  let c = Array.map (fun v -> min 255 (v + 40)) a in
  Alcotest.(check bool) "smaller error, higher PSNR" true
    (Decode.psnr a b > Decode.psnr a c)

let test_adpcm_decode_snr () =
  let inputs = Adpcm.inputs () in
  let pcm = List.assoc "pcm" inputs in
  let g = Adpcm.golden inputs in
  let decoded = Decode.adpcm_decode ~codes:g.Adpcm.codes in
  let snr = Decode.snr_db ~reference:pcm ~decoded in
  Alcotest.(check bool)
    (Printf.sprintf "SNR %.1f dB above 10" snr)
    true (snr > 10.0)

let test_adpcm_decoder_tracks_encoder_state () =
  (* the decoder's final predictor equals the encoder's *)
  let inputs = Adpcm.inputs () in
  let g = Adpcm.golden inputs in
  let decoded = Decode.adpcm_decode ~codes:g.Adpcm.codes in
  Alcotest.(check int) "final predictor agrees" g.Adpcm.final_predicted
    decoded.(Adpcm.samples - 1)

let test_adpcm_silence_roundtrip () =
  let silent = Array.make Adpcm.samples 0 in
  let g = Adpcm.golden [ ("pcm", silent) ] in
  let decoded = Decode.adpcm_decode ~codes:g.Adpcm.codes in
  Array.iter
    (fun v -> if abs v > 1 then Alcotest.fail "silence decodes to near-zero")
    decoded

let suite =
  [
    Alcotest.test_case "OFDM zero BER" `Quick test_ofdm_roundtrip_zero_ber;
    Alcotest.test_case "OFDM other seed" `Quick test_ofdm_roundtrip_other_seed;
    Alcotest.test_case "JPEG PSNR" `Quick test_jpeg_decode_psnr;
    Alcotest.test_case "JPEG flat exact" `Quick test_jpeg_decode_flat_image_exact;
    Alcotest.test_case "JPEG interpreted stream" `Quick test_jpeg_decode_interpreted_stream;
    Alcotest.test_case "PSNR properties" `Quick test_psnr_properties;
    Alcotest.test_case "ADPCM SNR" `Quick test_adpcm_decode_snr;
    Alcotest.test_case "ADPCM state tracking" `Quick test_adpcm_decoder_tracks_encoder_state;
    Alcotest.test_case "ADPCM silence" `Quick test_adpcm_silence_roundtrip;
  ]

let test_jpeg_quality_sweep () =
  (* higher quality -> finer quantisation -> higher PSNR and more bits;
     full round trip through the *interpreted Mini-C* encoder at each
     quality *)
  let inputs = Jpeg.inputs () in
  let original = List.assoc "image" inputs in
  let run quality =
    let g = Jpeg.golden_for ~quality inputs in
    let img =
      Decode.jpeg_decode
        ~quant_table:(Jpeg.quant_table_for ~quality)
        ~bytes_in:g.Jpeg.bytes ~len:g.Jpeg.len ()
    in
    (Decode.psnr original img.Decode.pixels, g.Jpeg.len)
  in
  let p25, l25 = run 25 in
  let p50, l50 = run 50 in
  let p90, l90 = run 90 in
  Alcotest.(check bool)
    (Printf.sprintf "PSNR increases with quality (%.1f < %.1f < %.1f)" p25 p50 p90)
    true
    (p25 < p50 && p50 < p90);
  Alcotest.(check bool)
    (Printf.sprintf "bitstream grows with quality (%d < %d < %d)" l25 l50 l90)
    true
    (l25 < l50 && l50 < l90)

let test_jpeg_quality_minic_matches_golden () =
  (* the quality-parameterised Mini-C encoder stays bit-exact *)
  let quality = 75 in
  let inputs = Jpeg.inputs () in
  let cdfg =
    Hypar_minic.Driver.compile_exn ~name:"jpeg75" (Jpeg.source_for ~quality)
  in
  let r = Interp.run ~inputs cdfg in
  let g = Jpeg.golden_for ~quality inputs in
  let got = Interp.array_exn r "out_bytes" in
  let ok = ref true in
  for i = 0 to g.Jpeg.len - 1 do
    if got.(i) <> g.Jpeg.bytes.(i) then ok := false
  done;
  Alcotest.(check bool) "quality-75 stream bit-exact" true !ok

let quality_suite =
  [
    Alcotest.test_case "quality sweep" `Quick test_jpeg_quality_sweep;
    Alcotest.test_case "quality Mini-C bit-exact" `Quick test_jpeg_quality_minic_matches_golden;
  ]

let suite = suite @ quality_suite
