(* Coverage for the smaller IR API surface: block printing, CDFG
   validation, builder conveniences, summary rendering. *)

module Ir = Hypar_ir

let contains = Str_contains.contains

let test_block_pp () =
  let b =
    Ir.Block.make ~label:"body"
      ~instrs:[ Ir.Instr.Mov { dst = { vname = "x"; vid = 0; vwidth = 16 }; src = Imm 7 } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let s = Format.asprintf "%a" Ir.Block.pp b in
  Alcotest.(check bool) "label shown" true (contains s "body:");
  Alcotest.(check bool) "instr shown" true (contains s "x#0 = 7");
  Alcotest.(check bool) "terminator shown" true (contains s "jump exit")

let test_terminator_pp () =
  let cases =
    [
      (Ir.Block.Jump "a", "jump a");
      ( Ir.Block.Branch { cond = Imm 1; if_true = "t"; if_false = "f" },
        "branch 1 ? t : f" );
      (Ir.Block.Return None, "return");
      (Ir.Block.Return (Some (Imm 3)), "return 3");
    ]
  in
  List.iter
    (fun (t, expected) ->
      Alcotest.(check string) expected expected
        (Format.asprintf "%a" Ir.Block.pp_terminator t))
    cases

let test_cdfg_validate_undeclared_array () =
  let b = Ir.Builder.create () in
  ignore (Ir.Builder.load b "t" ~arr:"ghost" (Ir.Builder.imm 0));
  Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None);
  let cdfg = Ir.Builder.cdfg b in
  match Ir.Cdfg.validate cdfg with
  | Error msg ->
    Alcotest.(check bool) "names the array" true (contains msg "ghost")
  | Ok () -> Alcotest.fail "expected validation error"

let test_cdfg_validate_const_store () =
  let b = Ir.Builder.create () in
  Ir.Builder.declare_array ~init:[| 1 |] ~is_const:true b "rom" 1;
  Ir.Builder.store b ~arr:"rom" (Ir.Builder.imm 0) (Ir.Builder.imm 9);
  Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None);
  match Ir.Cdfg.validate (Ir.Builder.cdfg b) with
  | Error msg -> Alcotest.(check bool) "mentions const" true (contains msg "const")
  | Ok () -> Alcotest.fail "expected validation error"

let test_cdfg_summary () =
  let cdfg =
    Hypar_minic.Driver.compile_exn ~name:"summary-demo" {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 4; i++) { s += i; }
  out[0] = s;
}
|}
  in
  let s = Format.asprintf "%a" Ir.Cdfg.pp_summary cdfg in
  Alcotest.(check bool) "names the program" true (contains s "summary-demo");
  Alcotest.(check bool) "reports loop depth" true (contains s "loop-depth=1")

let test_builder_helpers () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var ~width:8 b "x" in
        Alcotest.(check int) "explicit width" 8 x.Ir.Instr.vwidth;
        let m = Ir.Builder.mov b "m" (Ir.Builder.imm 5) in
        let u = Ir.Builder.un b Ir.Types.Neg "u" (Ir.Builder.var m) in
        ignore (Ir.Builder.bin b Ir.Types.Add "a" (Ir.Builder.var u) (Ir.Builder.var x)))
  in
  Alcotest.(check int) "three instructions" 3 (Ir.Dfg.node_count dfg)

let test_cfg_instr_count () =
  let cdfg =
    Hypar_minic.Driver.compile_exn ~simplify:false {|
int out[1];
void main() { out[0] = 1 + 2 + 3; }
|}
  in
  Alcotest.(check bool) "counts all instructions" true
    (Ir.Cfg.instr_count (Ir.Cdfg.cfg cdfg) >= 3)

let test_loop_pp () =
  let cdfg = Hypar_minic.Driver.compile_exn {|
int out[1];
void main() {
  int i;
  for (i = 0; i < 3; i++) { out[0] = i; }
}
|} in
  match Ir.Loop.find (Ir.Cdfg.cfg cdfg) with
  | [ l ] ->
    let s = Format.asprintf "%a" Ir.Loop.pp l in
    Alcotest.(check bool) "prints header" true (contains s "header=")
  | _ -> Alcotest.fail "expected one loop"

let suite =
  [
    Alcotest.test_case "block pp" `Quick test_block_pp;
    Alcotest.test_case "terminator pp" `Quick test_terminator_pp;
    Alcotest.test_case "validate undeclared array" `Quick test_cdfg_validate_undeclared_array;
    Alcotest.test_case "validate const store" `Quick test_cdfg_validate_const_store;
    Alcotest.test_case "summary rendering" `Quick test_cdfg_summary;
    Alcotest.test_case "builder helpers" `Quick test_builder_helpers;
    Alcotest.test_case "instr count" `Quick test_cfg_instr_count;
    Alcotest.test_case "loop pp" `Quick test_loop_pp;
  ]
