(* Unit tests for the CDFG interpreter: semantics, inputs, runtime errors,
   fuel, counters and edge profiling. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile = Driver.compile_exn

let test_inputs_preloaded () =
  let cdfg = compile {|
int in[4];
int out[4];
void main() { out[0] = in[0] * in[1]; }
|} in
  let r = Interp.run ~inputs:[ ("in", [| 6; 7 |]) ] cdfg in
  Alcotest.(check int) "6*7" 42 (Interp.array_exn r "out").(0)

let test_partial_input_fills_prefix () =
  let cdfg = compile {|
int in[4];
int out[4];
void main() { out[0] = in[0] + in[3]; }
|} in
  let r = Interp.run ~inputs:[ ("in", [| 5 |]) ] cdfg in
  Alcotest.(check int) "rest is zero" 5 (Interp.array_exn r "out").(0)

let test_return_value () =
  let cdfg = compile "int main() { return 42; }" in
  let r = Interp.run cdfg in
  Alcotest.(check (option int)) "return" (Some 42) r.Interp.return_value

let test_out_of_bounds () =
  let cdfg = compile {|
int t[4];
void main() { t[4] = 1; }
|} in
  match Interp.run cdfg with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions bounds" true (Str_contains.contains msg "bounds")
  | _ -> Alcotest.fail "expected out-of-bounds error"

let test_negative_index () =
  let cdfg = compile {|
int t[4];
int in[1];
void main() { t[in[0] - 1] = 1; }
|} in
  match Interp.run cdfg with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected error on index -1"

let test_division_by_zero () =
  let cdfg = compile {|
int out[1];
int in[1];
void main() { out[0] = 10 / in[0]; }
|} in
  match Interp.run cdfg with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions division" true (Str_contains.contains msg "division")
  | _ -> Alcotest.fail "expected division error"

let test_fuel_exhaustion () =
  let cdfg = compile {|
int out[1];
void main() {
  int i = 0;
  while (i < 1000000) { i = i + 1; }
  out[0] = i;
}
|} in
  match Interp.run ~fuel:1000 cdfg with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions fuel" true (Str_contains.contains msg "fuel")
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_counters () =
  let cdfg = compile {|
int t[8];
void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) { t[i] = t[7 - i] + 1; }
}
|} in
  let r = Interp.run cdfg in
  let total_reads = Array.fold_left ( + ) 0 r.Interp.mem_reads in
  let total_writes = Array.fold_left ( + ) 0 r.Interp.mem_writes in
  Alcotest.(check int) "8 loads" 8 total_reads;
  Alcotest.(check int) "8 stores" 8 total_writes;
  Alcotest.(check bool) "instrs counted" true (r.Interp.instrs_executed > 0)

let test_exec_freq () =
  let cdfg = compile {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 37; i = i + 1) { s = s + i; }
  out[0] = s;
}
|} in
  let r = Interp.run cdfg in
  Alcotest.(check bool) "some block ran exactly 37 times" true
    (Array.exists (fun f -> f = 37) r.Interp.exec_freq)

let test_edge_freq () =
  let cdfg = compile {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) { s = s + 1; }
  out[0] = s;
}
|} in
  let r = Interp.run cdfg in
  (* the rotated body's self-edge is traversed 9 times *)
  let self_edges =
    List.filter (fun (((a, b), _) : (int * int) * int) -> a = b) r.Interp.edge_freq
  in
  match self_edges with
  | [ (_, count) ] -> Alcotest.(check int) "9 back-edge traversals" 9 count
  | _ -> Alcotest.fail "expected exactly one self edge"

let test_edge_freq_consistency () =
  (* sum of incoming edge counts = block frequency (except the entry) *)
  let prepared = Hypar_apps.Ofdm.prepared () in
  let r = prepared.Hypar_core.Flow.interp in
  let cdfg = prepared.Hypar_core.Flow.cdfg in
  let incoming = Array.make (Ir.Cdfg.block_count cdfg) 0 in
  List.iter
    (fun (((_, dst), c) : (int * int) * int) -> incoming.(dst) <- incoming.(dst) + c)
    r.Interp.edge_freq;
  Array.iteri
    (fun i freq ->
      let expected = if i = Ir.Cfg.entry (Ir.Cdfg.cfg cdfg) then freq - 1 else freq in
      if incoming.(i) <> expected then
        Alcotest.failf "block %d: incoming %d <> freq %d" i incoming.(i) freq)
    r.Interp.exec_freq

let test_const_array_integrity () =
  let cdfg = compile {|
const int rom[2] = { 7, 8 };
int out[1];
void main() { out[0] = rom[0]; }
|} in
  match Interp.run ~inputs:[ ("rom", [| 1; 2 |]) ] cdfg with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of const-array input"

let suite =
  [
    Alcotest.test_case "inputs preloaded" `Quick test_inputs_preloaded;
    Alcotest.test_case "partial input" `Quick test_partial_input_fills_prefix;
    Alcotest.test_case "return value" `Quick test_return_value;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "negative index" `Quick test_negative_index;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "memory counters" `Quick test_counters;
    Alcotest.test_case "execution frequencies" `Quick test_exec_freq;
    Alcotest.test_case "edge frequencies" `Quick test_edge_freq;
    Alcotest.test_case "edge/block consistency" `Quick test_edge_freq_consistency;
    Alcotest.test_case "const arrays protected" `Quick test_const_array_integrity;
  ]
